// Dataintegration plays out Example 5 of the paper: a database integrated
// from sources of varying reliability violates a key constraint, and the
// trust-based repairing Markov chain generator turns per-source trust
// levels into repair probabilities — including the case where *neither*
// conflicting source is believed, which classical CQA cannot express.
//
// Run with: go run ./examples/dataintegration
package main

import (
	"fmt"
	"log"
	"math/big"

	"repro/internal/core"
	"repro/internal/generators"
	"repro/internal/markov"
	"repro/internal/parse"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/repair"
)

func main() {
	// city(name, population-bracket) integrated from three feeds. Two
	// feeds disagree on the bracket of lyon and of nice.
	db, err := parse.Database(`
		city(paris, huge).
		city(lyon, large).   # from feed A (reliable)
		city(lyon, medium).  # from feed B (sloppy)
		city(nice, medium).  # from feed B (sloppy)
		city(nice, small).   # from feed C (sloppy too)
	`)
	if err != nil {
		log.Fatal(err)
	}
	sigma, err := parse.Constraints(`city(X, Y), city(X, Z) -> Y = Z.`)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := repair.NewInstance(db, sigma)
	if err != nil {
		log.Fatal(err)
	}

	// Trust levels per fact, from source reliability: feed A 0.9,
	// feed B 0.5, feed C 0.4.
	gen := generators.NewTrust(big.NewRat(1, 2))
	set := func(f relation.Fact, num, den int64) {
		if err := gen.Set(f, big.NewRat(num, den)); err != nil {
			log.Fatal(err)
		}
	}
	set(relation.NewFact("city", "lyon", "large"), 9, 10)
	set(relation.NewFact("city", "lyon", "medium"), 1, 2)
	set(relation.NewFact("city", "nice", "medium"), 1, 2)
	set(relation.NewFact("city", "nice", "small"), 2, 5)

	fmt.Println("first repairing step (probabilities from relative trust):")
	root := inst.Root()
	exts := root.Extensions()
	ps, err := gen.Transitions(root, exts)
	if err != nil {
		log.Fatal(err)
	}
	for i, op := range exts {
		if ps[i].Sign() > 0 {
			fmt.Printf("  P(%-38s) = %s\n", op, prob.Format(ps[i]))
		}
	}

	sem, err := core.Compute(inst, gen, markov.ExploreOptions{MaxStates: 100000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noperational repairs:")
	for _, r := range sem.Repairs {
		fmt.Printf("  P = %-18s %s\n", prob.Format(r.P), r.DB)
	}

	// How likely is each bracket classification to survive repair?
	q, err := parse.Query(`Bracket(C, B) := city(C, B).`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(sem.OCA(q))
	fmt.Println("\nnote how lyon's feed-A bracket (trust 0.9) survives with much")
	fmt.Println("higher probability than feed B's, and how each conflicting pair also")
	fmt.Println("leaves mass on dropping *both* facts — the introduction's 'trust")
	fmt.Println("neither source' case that the ABC semantics cannot model.")
}
