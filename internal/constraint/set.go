package constraint

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"repro/internal/intern"
	"repro/internal/logic"
	"repro/internal/relation"
)

// Set is an ordered collection of constraints with stable identifiers.
// Identifiers ("c0", "c1", ...) name constraints inside violation keys, so
// a Set must not be mutated once violations derived from it are in flight.
type Set struct {
	constraints []*Constraint
	byID        map[string]*Constraint
	// bodyPreds and tgdHeadPreds cache which predicates occur in constraint
	// bodies and in TGD heads, so MayIntroduceViolations is a map probe per
	// touched predicate instead of a scan over the whole set.
	bodyPreds    map[intern.Sym]bool
	tgdHeadPreds map[intern.Sym]bool
	hasTGD       bool
}

// NewSet builds a set from the given constraints, assigning sequential IDs
// to those that do not have one. Constraints are shared, not copied; a
// constraint may belong to only one set.
func NewSet(cs ...*Constraint) *Set {
	s := &Set{
		byID:         map[string]*Constraint{},
		bodyPreds:    map[intern.Sym]bool{},
		tgdHeadPreds: map[intern.Sym]bool{},
	}
	for _, c := range cs {
		s.Add(c)
	}
	return s
}

// Add appends a constraint, assigning it an ID if needed.
func (s *Set) Add(c *Constraint) {
	if c.id == "" {
		c.id = fmt.Sprintf("c%d", len(s.constraints))
		c.refreshViolationKeys()
	}
	if _, dup := s.byID[c.id]; dup {
		panic(fmt.Sprintf("constraint: duplicate id %q in set", c.id))
	}
	s.constraints = append(s.constraints, c)
	s.byID[c.id] = c
	for _, a := range c.body {
		s.bodyPreds[a.Pred] = true
	}
	if c.kind == TGD {
		s.hasTGD = true
		for _, a := range c.head {
			s.tgdHeadPreds[a.Pred] = true
		}
	}
}

// HasTGDs reports whether the set contains a tuple-generating dependency.
// Without TGDs the repairing operation space is deletion-only: every
// justified operation removes a subset of some violation body, which lets
// the repair layer derive a state's extensions from its parent's.
func (s *Set) HasTGDs() bool { return s.hasTGD }

// Len reports the number of constraints.
func (s *Set) Len() int { return len(s.constraints) }

// All returns the constraints in insertion order; the slice must not be
// modified.
func (s *Set) All() []*Constraint { return s.constraints }

// ByID looks a constraint up by identifier.
func (s *Set) ByID(id string) (*Constraint, bool) {
	c, ok := s.byID[id]
	return c, ok
}

// Satisfied reports whether D |= Σ.
func (s *Set) Satisfied(d *relation.Database) bool {
	for _, c := range s.constraints {
		if !c.Satisfied(d) {
			return false
		}
	}
	return true
}

// Schema collects the predicates mentioned by the constraints into schema,
// checking arity consistency.
func (s *Set) Schema(schema *relation.Schema) error {
	for _, c := range s.constraints {
		for _, a := range c.body {
			if err := schema.AddSym(a.Pred, a.Arity()); err != nil {
				return err
			}
		}
		for _, a := range c.head {
			if err := schema.AddSym(a.Pred, a.Arity()); err != nil {
				return err
			}
		}
	}
	return nil
}

// Consts returns the distinct constant names mentioned anywhere in the set.
func (s *Set) Consts() []string { return intern.Names(s.ConstSyms()) }

// ConstSyms returns the distinct constant symbols mentioned anywhere in the
// set.
func (s *Set) ConstSyms() []intern.Sym {
	seen := map[intern.Sym]bool{}
	var out []intern.Sym
	for _, c := range s.constraints {
		for _, t := range c.Consts() {
			if !seen[t.Sym()] {
				seen[t.Sym()] = true
				out = append(out, t.Sym())
			}
		}
	}
	return out
}

// Base constructs B(D,Σ): the base whose schema covers both the database
// and the constraints and whose constants are dom(D) plus the constants of
// the constraints.
func (s *Set) Base(d *relation.Database) (*relation.Base, error) {
	schema := relation.NewSchema()
	if err := schema.AddDatabase(d); err != nil {
		return nil, err
	}
	if err := s.Schema(schema); err != nil {
		return nil, err
	}
	consts := append([]intern.Sym(nil), d.DomSyms()...)
	consts = append(consts, s.ConstSyms()...)
	return relation.NewBaseSyms(schema, consts), nil
}

// String renders the set one constraint per line, each terminated by a dot.
func (s *Set) String() string {
	var b strings.Builder
	for _, c := range s.constraints {
		b.WriteString(c.String())
		b.WriteString(".\n")
	}
	return b.String()
}

// Violation is a pair (κ, h): constraint κ is violated in a database via
// the body homomorphism h (Definition 2). h binds exactly the universal
// variables of κ. Construct violations with NewViolation so the interned
// identity and cached body image are populated; they sit on the hot path
// of incremental violation maintenance.
type Violation struct {
	Constraint *Constraint
	H          logic.Subst

	entry *vioEntry
}

// NewViolation builds a violation, interning its identity. The first
// construction of a given violation computes and caches its body image and
// canonical encodings; every later construction is a table lookup. The
// substitution is restricted to the universal variables (which internal
// callers always bind exactly) and shared with the cache; callers must not
// modify it.
func NewViolation(c *Constraint, h logic.Subst) Violation {
	e := c.vioEntryFor(h)
	return Violation{Constraint: c, H: e.h, entry: e}
}

// ID returns the interned identity of the violation: the constraint's
// process-unique number in the high word and the dense per-constraint
// violation id in the low word. All hot-path violation bookkeeping is keyed
// by this.
func (v Violation) ID() uint64 {
	if v.entry != nil {
		return v.entry.id
	}
	if v.Constraint == nil {
		return 0
	}
	return NewViolation(v.Constraint, v.H).ID()
}

// Key returns the canonical string encoding of the violation, stable across
// processes: the constraint ID together with the encoded assignment.
func (v Violation) Key() string {
	if v.entry != nil {
		return v.entry.legacyKey
	}
	if v.Constraint == nil {
		return "|"
	}
	return v.Constraint.id + "|" + v.H.Key()
}

// BodyKey returns the canonical string encoding of h(ϕ) as a fact set;
// violations with equal body images (e.g. the two orientations of an EGD
// match) share it. It is built lazily — hot paths use the interned body
// image directly.
func (v Violation) BodyKey() string {
	e := v.entry
	if e == nil {
		if v.Constraint == nil {
			return ""
		}
		e = v.Constraint.vioEntryFor(v.H)
	}
	if k := e.bodyKey.Load(); k != nil {
		return *k
	}
	var b strings.Builder
	for i, f := range e.bodyFacts {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(f.Key())
	}
	k := b.String()
	e.bodyKey.Store(&k)
	return k
}

// bodyPack returns the process-local packed encoding of the body image,
// used as the deletion-operation cache key.
func (v Violation) bodyPack() string {
	if v.entry != nil {
		return v.entry.bodyPack
	}
	if v.Constraint == nil {
		return ""
	}
	return v.Constraint.vioEntryFor(v.H).bodyPack
}

// BodyPack exposes bodyPack for intra-module callers (the repair package's
// deletion cache); the encoding is process-local and must not be persisted.
func (v Violation) BodyPack() string { return v.bodyPack() }

// BodyFacts returns h(ϕ): the (distinct) facts of the body image under h.
// For a violation of D, these facts all belong to D. The slice is shared;
// callers must not modify it.
func (v Violation) BodyFacts() []relation.Fact {
	if v.entry != nil {
		return v.entry.bodyFacts
	}
	if v.Constraint == nil || len(v.Constraint.body) == 0 {
		return nil
	}
	return v.Constraint.vioEntryFor(v.H).bodyFacts
}

// bodyHasFact reports whether h(ϕ) contains the fact; body images are a
// handful of facts, so a linear scan of interned ids beats any hashing.
func (v Violation) bodyHasFact(f relation.Fact) bool {
	for _, g := range v.BodyFacts() {
		if g == f {
			return true
		}
	}
	return false
}

// String renders the violation as (id: constraint, {x -> a, ...}).
func (v Violation) String() string {
	return fmt.Sprintf("(%s: %s, %s)", v.Constraint.id, v.Constraint, v.H)
}

// Violations is the set V(D,Σ) for some database D. It is stored as a
// slice sorted by Violation.ID — violation ids are contiguous per
// constraint, so per-constraint operations work on subranges, membership
// is a binary search, and set difference is a linear merge. Construction
// appends (normalizing lazily on first read), which keeps incremental
// maintenance allocation-light: one slice per update instead of a rebuilt
// hash map.
type Violations struct {
	vs     []Violation
	sorted bool
}

// NewViolations returns an empty violation set.
func NewViolations() *Violations { return &Violations{sorted: true} }

// FindViolations computes V(D,Σ).
func FindViolations(d *relation.Database, s *Set) *Violations {
	vs := NewViolations()
	for _, c := range s.constraints {
		relation.ForEachHom(c.body, d, logic.NewSubst(), func(h logic.Subst) bool {
			if c.violatedBy(d, h) {
				vs.add(NewViolation(c, h))
			}
			return true
		})
	}
	vs.norm()
	return vs
}

// ViolationsOf builds a violation set from an explicit slice (copied, then
// normalized). Callers that already know V(D,Σ) — e.g. a conflict island
// carrying exactly its component's violations — use it to seed downstream
// consumers without re-running the homomorphism search.
func ViolationsOf(vs []Violation) *Violations {
	out := &Violations{vs: append([]Violation(nil), vs...)}
	out.norm()
	return out
}

func (vs *Violations) add(v Violation) {
	if n := len(vs.vs); vs.sorted && n > 0 && vs.vs[n-1].ID() >= v.ID() {
		vs.sorted = false
	}
	vs.vs = append(vs.vs, v)
}

// appendRun bulk-appends a run that is itself ID-sorted and deduplicated
// (a subslice of a normalized set), checking sortedness once at the seam
// instead of once per element. The incremental-maintenance paths copy whole
// per-constraint ranges this way.
func (vs *Violations) appendRun(run []Violation) {
	if len(run) == 0 {
		return
	}
	if n := len(vs.vs); vs.sorted && n > 0 && vs.vs[n-1].ID() >= run[0].ID() {
		vs.sorted = false
	}
	vs.vs = append(vs.vs, run...)
}

// norm sorts the slice by id and drops duplicate ids (adds are idempotent,
// matching the map-based predecessor).
func (vs *Violations) norm() {
	if vs.sorted {
		return
	}
	slices.SortFunc(vs.vs, func(a, b Violation) int {
		ai, bi := a.ID(), b.ID()
		switch {
		case ai < bi:
			return -1
		case ai > bi:
			return 1
		}
		return 0
	})
	out := vs.vs[:0]
	for i, v := range vs.vs {
		if i == 0 || v.ID() != out[len(out)-1].ID() {
			out = append(out, v)
		}
	}
	vs.vs = out
	vs.sorted = true
}

// Len reports the number of violations.
func (vs *Violations) Len() int {
	vs.norm()
	return len(vs.vs)
}

// Empty reports whether there are no violations, i.e. D |= Σ.
func (vs *Violations) Empty() bool {
	vs.norm()
	return len(vs.vs) == 0
}

// search returns the index of id in the sorted slice, or -1.
func (vs *Violations) search(id uint64) int {
	vs.norm()
	lo, hi := 0, len(vs.vs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if vs.vs[mid].ID() < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(vs.vs) && vs.vs[lo].ID() == id {
		return lo
	}
	return -1
}

// Has reports whether the violation with the given interned id is present.
func (vs *Violations) Has(id uint64) bool { return vs.search(id) >= 0 }

// constraintRange returns the subslice of violations belonging to c;
// violation ids are namespaced by the constraint's process-unique number,
// so they occupy a contiguous id range.
func (vs *Violations) constraintRange(c *Constraint) []Violation {
	vs.norm()
	lo := uint64(c.cnum) << 32
	hi := uint64(c.cnum+1) << 32
	start, end := len(vs.vs), len(vs.vs)
	l, r := 0, len(vs.vs)
	for l < r {
		mid := int(uint(l+r) >> 1)
		if vs.vs[mid].ID() < lo {
			l = mid + 1
		} else {
			r = mid
		}
	}
	start = l
	r = len(vs.vs)
	for l < r {
		mid := int(uint(l+r) >> 1)
		if vs.vs[mid].ID() < hi {
			l = mid + 1
		} else {
			r = mid
		}
	}
	end = l
	return vs.vs[start:end]
}

// Get returns the violation with the given interned id.
func (vs *Violations) Get(id uint64) (Violation, bool) {
	if i := vs.search(id); i >= 0 {
		return vs.vs[i], true
	}
	return Violation{}, false
}

// ByID returns the violations sorted by interned id; the slice is shared
// and must not be modified. This is the iteration order hot paths use — it
// is deterministic for a fixed instance but process-dependent; use All for
// the stable canonical order.
func (vs *Violations) ByID() []Violation {
	vs.norm()
	return vs.vs
}

// All returns the violations in deterministic (key-sorted) order, matching
// the order the string-keyed predecessor produced.
func (vs *Violations) All() []Violation {
	vs.norm()
	out := append([]Violation(nil), vs.vs...)
	slices.SortFunc(out, func(a, b Violation) int { return strings.Compare(a.Key(), b.Key()) })
	return out
}

// Keys returns the sorted canonical violation keys.
func (vs *Violations) Keys() []string {
	vs.norm()
	keys := make([]string, 0, len(vs.vs))
	for _, v := range vs.vs {
		keys = append(keys, v.Key())
	}
	sort.Strings(keys)
	return keys
}

// Minus returns the violations of vs whose ids are not in other:
// V(D,Σ) − V(D',Σ). Both sets are id-sorted, so this is a linear merge.
func (vs *Violations) Minus(other *Violations) []Violation {
	vs.norm()
	other.norm()
	var out []Violation
	j := 0
	for _, v := range vs.vs {
		id := v.ID()
		for j < len(other.vs) && other.vs[j].ID() < id {
			j++
		}
		if j >= len(other.vs) || other.vs[j].ID() != id {
			out = append(out, v)
		}
	}
	return out
}

// InvolvedFacts returns the union of h(ϕ) over all violations: the facts of
// the database that participate in at least one violation. This is the set
// V_Σ(D) of atoms used by the preference generator of Example 4 and the
// localization optimization of Section 6.
func (vs *Violations) InvolvedFacts() []relation.Fact {
	vs.norm()
	seen := map[relation.Fact]struct{}{}
	var out []relation.Fact
	for _, v := range vs.vs {
		for _, f := range v.BodyFacts() {
			if _, dup := seen[f]; !dup {
				seen[f] = struct{}{}
				out = append(out, f)
			}
		}
	}
	relation.SortFacts(out)
	return out
}
