package core

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"sort"

	"repro/internal/constraint"
	"repro/internal/fo"
	"repro/internal/markov"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/repair"
)

// This file implements the "localization of repairs" optimization sketched
// in Section 6 of the paper (after Eiter et al.): for EGD and denial
// constraints — where every chain is deletion-only and violations never
// span conflict components — the repairing process factorizes: the
// connected components of the conflict hypergraph repair independently and
// the repair distribution of the whole database is the product of the
// per-component distributions over the untouched facts.
//
// Factorization additionally requires the chain generator to be *local*:
// the relative probabilities it assigns to operations fixing one component
// must not depend on the state of other components. The uniform generator
// and the trust generator are local (their weights are per-conflict
// constants); the preference generator of Example 4 is not (its weights
// count facts across the whole database), and using it here would silently
// change the semantics, so ComputeFactored requires the caller to assert
// locality via the Local marker interface.

// LocalGenerator marks generators whose per-component transition weights
// are independent of the rest of the database, licensing factorization.
type LocalGenerator interface {
	markov.Generator
	// LocalWeights documents (and asserts) locality; implementations
	// simply return true.
	LocalWeights() bool
}

// ErrNotFactorable is returned when the instance or generator does not
// support component-wise factorization.
var ErrNotFactorable = errors.New("core: instance/generator does not factorize across conflict components")

// Component is one conflict component together with its exact local
// semantics.
type Component struct {
	// Facts are the component's facts (each belongs to exactly one
	// component).
	Facts []relation.Fact
	// Sem is the exact semantics of the component repaired in isolation.
	Sem *Semantics
}

// Factored is the factorized exact semantics: the untouched core plus one
// independent Semantics per conflict component. The full repair
// distribution is the product distribution.
type Factored struct {
	inst *repair.Instance
	gen  markov.Generator
	// Untouched holds the facts in no violation; they survive every
	// deletion-only repair.
	Untouched *relation.Database
	// Components lists the conflict components in deterministic order.
	Components []Component
}

// ComputeFactored builds the factorized semantics. It requires a
// constraint set without TGDs (so chains are deletion-only and components
// never interact) and a LocalGenerator.
func ComputeFactored(inst *repair.Instance, g LocalGenerator, opt markov.ExploreOptions) (*Factored, error) {
	for _, c := range inst.Sigma().All() {
		if c.Kind() == constraint.TGD {
			return nil, fmt.Errorf("%w: TGD %s allows insertions that may couple components", ErrNotFactorable, c)
		}
	}
	if !g.LocalWeights() {
		return nil, fmt.Errorf("%w: generator %s is not local", ErrNotFactorable, g.Name())
	}

	vs := constraint.FindViolations(inst.Initial(), inst.Sigma())
	// Union-find over violation bodies to form components.
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	factByKey := map[string]relation.Fact{}
	for _, v := range vs.All() {
		body := v.BodyFacts()
		for _, f := range body {
			k := f.Key()
			factByKey[k] = f
			if _, ok := parent[k]; !ok {
				parent[k] = k
			}
		}
		for i := 1; i < len(body); i++ {
			ra, rb := find(body[0].Key()), find(body[i].Key())
			if ra != rb {
				parent[ra] = rb
			}
		}
	}
	groups := map[string][]relation.Fact{}
	for k, f := range factByKey {
		groups[find(k)] = append(groups[find(k)], f)
	}
	var roots []string
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Strings(roots)

	untouched := inst.Initial().Clone()
	out := &Factored{inst: inst, gen: g, Untouched: untouched}
	for _, r := range roots {
		facts := groups[r]
		relation.SortFacts(facts)
		untouched.DeleteAll(facts)

		sub := relation.FromFacts(facts...)
		subInst, err := repair.NewInstance(sub, inst.Sigma())
		if err != nil {
			return nil, err
		}
		sem, err := Compute(subInst, g, opt)
		if err != nil {
			return nil, fmt.Errorf("component %s: %w", relation.FactsString(facts), err)
		}
		out.Components = append(out.Components, Component{Facts: facts, Sem: sem})
	}
	return out, nil
}

// NumRepairs returns the number of distinct operational repairs of the full
// database: the product of the per-component repair counts.
func (f *Factored) NumRepairs() *big.Int {
	n := big.NewInt(1)
	for _, c := range f.Components {
		n.Mul(n, big.NewInt(int64(len(c.Sem.Repairs))))
	}
	return n
}

// FactProbability returns the exact probability that the fact appears in an
// operational repair: 1 for untouched facts, the component-local marginal
// for conflicted facts, and 0 for facts absent from the database. This
// answers atomic queries exactly in time polynomial in the component sizes
// even when the full repair count is astronomical.
func (f *Factored) FactProbability(fact relation.Fact) *big.Rat {
	if f.Untouched.Contains(fact) {
		return prob.One()
	}
	for _, c := range f.Components {
		inComponent := false
		for _, cf := range c.Facts {
			if cf.Equal(fact) {
				inComponent = true
				break
			}
		}
		if !inComponent {
			continue
		}
		p := prob.Zero()
		for _, r := range c.Sem.Repairs {
			if r.DB.Contains(fact) {
				p.Add(p, r.P)
			}
		}
		if c.Sem.SuccessP.Sign() != 0 {
			p.Quo(p, c.Sem.SuccessP)
		}
		return p
	}
	return prob.Zero()
}

// maxEnumeratedRepairs bounds full repair enumeration in CP.
const maxEnumeratedRepairs = 1 << 20

// CP computes the exact conditional probability of a tuple for an
// arbitrary query by enumerating the product distribution. When the
// product exceeds maxEnumeratedRepairs it returns an error instead of
// running forever; use FactProbability (atomic queries) or EstimateCP
// (sampling) at that scale.
func (f *Factored) CP(q *fo.Query, tuple []string) (*big.Rat, error) {
	total := f.NumRepairs()
	if !total.IsInt64() || total.Int64() > maxEnumeratedRepairs {
		return nil, fmt.Errorf("core: %s repairs exceed the enumeration budget %d; use FactProbability or EstimateCP",
			total.String(), maxEnumeratedRepairs)
	}
	num := prob.Zero()
	den := prob.Zero()
	db := f.Untouched.Clone()
	var rec func(i int, p *big.Rat)
	rec = func(i int, p *big.Rat) {
		if i == len(f.Components) {
			den.Add(den, p)
			if q.Holds(db, tuple) {
				num.Add(num, p)
			}
			return
		}
		for _, r := range f.Components[i].Sem.Repairs {
			for _, fact := range r.DB.Facts() {
				db.Insert(fact)
			}
			rec(i+1, new(big.Rat).Mul(p, r.P))
			for _, fact := range r.DB.Facts() {
				db.Delete(fact)
			}
		}
	}
	rec(0, prob.One())
	if den.Sign() == 0 {
		return prob.Zero(), nil
	}
	return num.Quo(num, den), nil
}

// SampleRepair draws one full repair exactly from the factorized
// distribution: one local repair per component, independently. Unlike a
// chain walk this costs O(|D| + Σ |component repairs|) per draw.
func (f *Factored) SampleRepair(rng *rand.Rand) *relation.Database {
	db := f.Untouched.Clone()
	for _, c := range f.Components {
		weights := make([]*big.Rat, len(c.Sem.Repairs))
		for i, r := range c.Sem.Repairs {
			weights[i] = r.P
		}
		pick := c.Sem.Repairs[prob.Pick(rng, weights)]
		for _, fact := range pick.DB.Facts() {
			db.Insert(fact)
		}
	}
	return db
}

// EstimateCP approximates CP(t̄) with the additive (ε, δ) guarantee of
// Theorem 9, drawing exact factored repairs instead of chain walks; each
// sample is orders of magnitude cheaper than a walk on large instances.
func (f *Factored) EstimateCP(q *fo.Query, tuple []string, eps, delta float64, seed int64) (float64, error) {
	n, err := prob.HoeffdingSamples(eps, delta)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	hits := 0
	for i := 0; i < n; i++ {
		if q.Holds(f.SampleRepair(rng), tuple) {
			hits++
		}
	}
	return float64(hits) / float64(n), nil
}

// Monolithic recomputes the unfactored semantics (for tests and the
// ablation benchmarks).
func (f *Factored) Monolithic(opt markov.ExploreOptions) (*Semantics, error) {
	return Compute(f.inst, f.gen, opt)
}
