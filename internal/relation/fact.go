package relation

import (
	"fmt"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/intern"
	"repro/internal/logic"
)

// Fact is a ground atom R(c1, ..., cn): a predicate applied to constants.
// Facts are immutable interned values; the zero Fact is invalid.
type Fact struct {
	id uint32
}

type factEntry struct {
	pred intern.Sym
	args []intern.Sym
	// hash is a precomputed 64-bit FNV-1a over the id tuple; exposed for
	// hash-structured consumers (e.g. partitioners) so they never rebuild
	// string keys.
	hash uint64
	// key and str cache the canonical string encoding and display form;
	// both are built lazily (at most once) since hot paths never need them.
	key atomic.Pointer[string]
	str atomic.Pointer[string]
}

// The fact table is GC-friendly: entries live in fixed-size chunks (so the
// garbage collector scans a handful of large objects instead of one object
// per fact, and entry addresses are stable for the lazy atomic caches) and
// argument symbols are bump-allocated from pointer-free arena slabs. New
// chunks are published by swapping an atomic chunk-list snapshot, so the
// id→entry direction is lock-free.
const (
	factChunkBits = 10
	factChunkSize = 1 << factChunkBits
	argSlabSize   = 8192
)

type factChunk [factChunkSize]factEntry

var (
	factMu     sync.RWMutex
	factNext   = uint32(1) // id 0 is the invalid fact
	factChunks atomic.Pointer[[]*factChunk]
	argArena   []intern.Sym
	// factSlots is an open-addressing index over the entries' precomputed
	// hashes (0 = empty slot): content→id lookups probe it under the read
	// lock and compare symbols directly, so the index holds no strings and
	// is invisible to the garbage collector.
	factSlots []uint32
)

func init() {
	initial := []*factChunk{new(factChunk)}
	factChunks.Store(&initial)
	factSlots = make([]uint32, 1024)
}

// factProbe looks the content up in the slot index; the caller must hold
// factMu (read or write).
func factProbe(h uint64, pred intern.Sym, args []intern.Sym) (uint32, bool) {
	mask := uint32(len(factSlots) - 1)
	chunks := *factChunks.Load()
	for i := uint32(h) & mask; ; i = (i + 1) & mask {
		id := factSlots[i]
		if id == 0 {
			return 0, false
		}
		e := &chunks[id>>factChunkBits][id&(factChunkSize-1)]
		if e.hash != h || e.pred != pred || len(e.args) != len(args) {
			continue
		}
		match := true
		for j, a := range args {
			if e.args[j] != a {
				match = false
				break
			}
		}
		if match {
			return id, true
		}
	}
}

// factIndexInsert adds id to the slot index, growing it at 70% load; the
// caller must hold the write lock.
func factIndexInsert(h uint64, id uint32) {
	if 10*int(factNext) >= 7*len(factSlots) {
		grown := make([]uint32, 2*len(factSlots))
		mask := uint32(len(grown) - 1)
		chunks := *factChunks.Load()
		for _, old := range factSlots {
			if old == 0 {
				continue
			}
			oh := chunks[old>>factChunkBits][old&(factChunkSize-1)].hash
			for i := uint32(oh) & mask; ; i = (i + 1) & mask {
				if grown[i] == 0 {
					grown[i] = old
					break
				}
			}
		}
		factSlots = grown
	}
	mask := uint32(len(factSlots) - 1)
	for i := uint32(h) & mask; ; i = (i + 1) & mask {
		if factSlots[i] == 0 {
			factSlots[i] = id
			return
		}
	}
}

func factEntryOf(f Fact) *factEntry {
	if f.id == 0 {
		return nil
	}
	chunks := *factChunks.Load()
	if int(f.id>>factChunkBits) < len(chunks) {
		return &chunks[f.id>>factChunkBits][f.id&(factChunkSize-1)]
	}
	return nil
}

// internArgs copies args into the shared pointer-free arena; the returned
// slice is capacity-capped so later arena appends can never alias it.
func internArgs(args []intern.Sym) []intern.Sym {
	if len(args) == 0 {
		return nil
	}
	if len(argArena)+len(args) > cap(argArena) {
		size := argSlabSize
		if len(args) > size {
			size = len(args)
		}
		argArena = make([]intern.Sym, 0, size)
	}
	start := len(argArena)
	argArena = append(argArena, args...)
	return argArena[start:len(argArena):len(argArena)]
}

const fnvOffset, fnvPrime = 14695981039346656037, 1099511628211

func hashSyms(pred intern.Sym, args []intern.Sym) uint64 {
	h := uint64(fnvOffset)
	h = (h ^ uint64(pred)) * fnvPrime
	for _, a := range args {
		h = (h ^ uint64(a)) * fnvPrime
	}
	return h
}

// FactOf returns the interned fact for a predicate symbol and argument
// symbols; it is the allocation-free constructor on the hot path (existing
// facts cost one hash probe under a read lock).
func FactOf(pred intern.Sym, args []intern.Sym) Fact {
	h := hashSyms(pred, args)
	factMu.RLock()
	id, ok := factProbe(h, pred, args)
	factMu.RUnlock()
	if ok {
		return Fact{id: id}
	}
	factMu.Lock()
	defer factMu.Unlock()
	if id, ok := factProbe(h, pred, args); ok {
		return Fact{id: id}
	}
	id = factNext
	factNext++
	chunks := *factChunks.Load()
	if int(id>>factChunkBits) >= len(chunks) {
		next := append(append(make([]*factChunk, 0, len(chunks)+1), chunks...), new(factChunk))
		factChunks.Store(&next)
		chunks = next
	}
	e := &chunks[id>>factChunkBits][id&(factChunkSize-1)]
	e.pred = pred
	e.args = internArgs(args)
	e.hash = h
	factIndexInsert(h, id)
	return Fact{id: id}
}

// LookupFact returns the interned fact for the given content without
// interning it; ok is false when no such fact has ever been constructed
// (and therefore the fact cannot be in any database).
func LookupFact(pred intern.Sym, args []intern.Sym) (Fact, bool) {
	h := hashSyms(pred, args)
	factMu.RLock()
	id, ok := factProbe(h, pred, args)
	factMu.RUnlock()
	return Fact{id: id}, ok
}

// NewFact constructs a fact from a predicate name and constant names.
func NewFact(pred string, args ...string) Fact {
	syms := make([]intern.Sym, len(args))
	for i, a := range args {
		syms[i] = intern.S(a)
	}
	return FactOf(intern.S(pred), syms)
}

// FactFromAtom converts a ground atom to a fact. It returns an error when
// the atom contains variables.
func FactFromAtom(a logic.Atom) (Fact, error) {
	var stack [16]intern.Sym
	args := stack[:0]
	for _, t := range a.Args {
		if t.IsVar() {
			return Fact{}, fmt.Errorf("atom %s is not ground: variable %s", a, t.Name())
		}
		args = append(args, t.Sym())
	}
	return FactOf(a.Pred, args), nil
}

// LookupFactFromAtom is FactFromAtom without interning: it reports whether
// the ground atom names an already-interned fact. Ground atoms that were
// never materialized as facts cannot belong to any database, so membership
// tests use this to avoid growing the fact table.
func LookupFactFromAtom(a logic.Atom) (Fact, bool) {
	var stack [16]intern.Sym
	args := stack[:0]
	for _, t := range a.Args {
		if t.IsVar() {
			return Fact{}, false
		}
		args = append(args, t.Sym())
	}
	return LookupFact(a.Pred, args)
}

// MustFactFromAtom is FactFromAtom that panics on non-ground atoms; for use
// with atoms that are ground by construction.
func MustFactFromAtom(a logic.Atom) Fact {
	f, err := FactFromAtom(a)
	if err != nil {
		panic(err)
	}
	return f
}

// FactsFromAtoms converts a list of ground atoms into facts.
func FactsFromAtoms(atoms []logic.Atom) ([]Fact, error) {
	out := make([]Fact, len(atoms))
	for i, a := range atoms {
		f, err := FactFromAtom(a)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

// Valid reports whether the fact is a real interned fact (the zero Fact is
// not).
func (f Fact) Valid() bool { return f.id != 0 }

// Pred reports the predicate symbol.
func (f Fact) Pred() intern.Sym {
	if e := factEntryOf(f); e != nil {
		return e.pred
	}
	return 0
}

// PredName reports the predicate name.
func (f Fact) PredName() string { return intern.Name(f.Pred()) }

// Args reports the argument symbols; the slice is shared and must not be
// modified.
func (f Fact) Args() []intern.Sym {
	if e := factEntryOf(f); e != nil {
		return e.args
	}
	return nil
}

// Arity reports the number of arguments.
func (f Fact) Arity() int { return len(f.Args()) }

// Arg reports the i-th argument symbol.
func (f Fact) Arg(i int) intern.Sym { return f.Args()[i] }

// ArgNames reports the argument names as strings.
func (f Fact) ArgNames() []string { return intern.Names(f.Args()) }

// Hash reports the precomputed 64-bit hash of the fact's content.
func (f Fact) Hash() uint64 {
	if e := factEntryOf(f); e != nil {
		return e.hash
	}
	return 0
}

// ID reports the dense interned id of the fact (0 for the zero Fact).
func (f Fact) ID() uint32 { return f.id }

// Atom converts the fact back into a ground atom.
func (f Fact) Atom() logic.Atom {
	args := f.Args()
	ts := make([]logic.Term, len(args))
	for i, c := range args {
		ts[i] = logic.ConstSym(c)
	}
	return logic.Atom{Pred: f.Pred(), Args: ts}
}

// Key returns the canonical string encoding of the fact, usable as a map
// key and stable across processes. Every token is length-prefixed, so
// distinct facts never collide regardless of the characters in predicate or
// constants. Hot paths identify facts by their interned id; Key is built at
// most once per distinct fact and cached.
func (f Fact) Key() string {
	e := factEntryOf(f)
	if e == nil {
		return "0:"
	}
	if k := e.key.Load(); k != nil {
		return *k
	}
	pred := intern.Name(e.pred)
	n := len(pred) + 8
	names := make([]string, len(e.args))
	for i, a := range e.args {
		names[i] = intern.Name(a)
		n += len(names[i]) + 8
	}
	var b strings.Builder
	b.Grow(n)
	b.WriteString(strconv.Itoa(len(pred)))
	b.WriteByte(':')
	b.WriteString(pred)
	for _, a := range names {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(len(a)))
		b.WriteByte(':')
		b.WriteString(a)
	}
	k := b.String()
	e.key.Store(&k)
	return k
}

// String renders the fact in the text format, e.g. R(a, b); the rendering
// is cached per distinct fact.
func (f Fact) String() string {
	e := factEntryOf(f)
	if e == nil {
		return "<invalid fact>"
	}
	if s := e.str.Load(); s != nil {
		return *s
	}
	s := f.Atom().String()
	e.str.Store(&s)
	return s
}

// Equal reports whether two facts are identical.
func (f Fact) Equal(g Fact) bool { return f.id == g.id }

// CompareFacts orders facts by predicate name, then arity, then argument
// names; it is used to produce deterministic output. The order matches the
// string-based predecessor exactly, so rendered fact sets are unchanged.
func CompareFacts(a, b Fact) int {
	if a.id == b.id {
		return 0
	}
	ea, eb := factEntryOf(a), factEntryOf(b)
	if ea == nil || eb == nil {
		switch {
		case ea == nil && eb == nil:
			return 0
		case ea == nil:
			return -1
		default:
			return 1
		}
	}
	if ea.pred != eb.pred {
		pa, pb := intern.Name(ea.pred), intern.Name(eb.pred)
		if pa != pb {
			if pa < pb {
				return -1
			}
			return 1
		}
	}
	if len(ea.args) != len(eb.args) {
		if len(ea.args) < len(eb.args) {
			return -1
		}
		return 1
	}
	for i := range ea.args {
		if ea.args[i] != eb.args[i] {
			ca, cb := intern.Name(ea.args[i]), intern.Name(eb.args[i])
			if ca != cb {
				if ca < cb {
					return -1
				}
				return 1
			}
		}
	}
	return 0
}

// SortFacts sorts a slice of facts in place into the canonical order.
func SortFacts(fs []Fact) {
	slices.SortFunc(fs, CompareFacts)
}

// FactsString renders a set of facts as a sorted, comma-separated list in
// braces, e.g. {R(a, b), T(a, b)}.
func FactsString(fs []Fact) string {
	sorted := make([]Fact, len(fs))
	copy(sorted, fs)
	SortFacts(sorted)
	parts := make([]string, len(sorted))
	for i, f := range sorted {
		parts[i] = f.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// InternedFacts reports the number of distinct facts interned process-wide
// (excluding the reserved invalid id); for diagnostics and tests.
func InternedFacts() int {
	factMu.RLock()
	defer factMu.RUnlock()
	return int(factNext) - 1
}
