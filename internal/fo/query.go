package fo

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/intern"
	"repro/internal/logic"
	"repro/internal/relation"
)

// Query is a first-order query Q(x̄) = {x̄ | ϕ}: a named formula with an
// explicit tuple of output variables. The declared output variables must
// cover the free variables of the formula; extra output variables simply
// range over the active domain.
type Query struct {
	Name string
	Out  []logic.Term
	F    Formula

	// The conjunctive-query analysis — whether the formula is a CQ, its
	// atom list, and the output positions unconstrained by the body — is a
	// pure function of the query, so it is computed once and shared. The
	// exact engines evaluate the same query over thousands of repairs;
	// re-deriving the analysis per database was visible in OCA profiles.
	cqOnce          sync.Once
	cqAtoms         []logic.Atom
	cqOK            bool
	cqUnconstrained []int
}

// NewQuery builds and validates a query.
func NewQuery(name string, out []logic.Term, f Formula) (*Query, error) {
	q := &Query{Name: name, Out: out, F: f}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustQuery is NewQuery that panics on error.
func MustQuery(name string, out []logic.Term, f Formula) *Query {
	q, err := NewQuery(name, out, f)
	if err != nil {
		panic(err)
	}
	return q
}

// Validate checks that output variables are distinct variables covering the
// free variables of the formula.
func (q *Query) Validate() error {
	seen := map[string]bool{}
	for _, v := range q.Out {
		if !v.IsVar() {
			return fmt.Errorf("query %s: output term %s is not a variable", q.Name, v)
		}
		if seen[v.Name()] {
			return fmt.Errorf("query %s: duplicate output variable %s", q.Name, v.Name())
		}
		seen[v.Name()] = true
	}
	for _, fv := range FreeVars(q.F) {
		if !seen[fv] {
			return fmt.Errorf("query %s: free variable %s is not among the output variables", q.Name, fv)
		}
	}
	return nil
}

// Arity reports the number of output variables.
func (q *Query) Arity() int { return len(q.Out) }

// IsBoolean reports whether the query has no output variables.
func (q *Query) IsBoolean() bool { return len(q.Out) == 0 }

// String renders the query in the text format, e.g.
// Q(X) := forall Y: (Pref(X, Y) | X = Y).
func (q *Query) String() string {
	names := make([]string, len(q.Out))
	for i, v := range q.Out {
		names[i] = v.Name()
	}
	return fmt.Sprintf("%s(%s) := %s", q.Name, strings.Join(names, ", "), q.F)
}

// Holds reports whether D ⊨ ϕ(t̄) for the given tuple of constants. Note
// that per the paper's semantics a tuple outside dom(D)^{|x̄|} is never an
// answer on D; Holds checks exactly that before evaluating.
func (q *Query) Holds(d *relation.Database, tuple []string) bool {
	if len(tuple) != len(q.Out) {
		return false
	}
	env := logic.NewSubst()
	for i, v := range q.Out {
		// A constant that was never interned cannot occur in any database,
		// so the symbol lookup doubles as the dom(D) membership test.
		c, ok := intern.Lookup(tuple[i])
		if !ok || !d.HasConst(c) {
			return false
		}
		env[v.Sym()] = c
	}
	return q.F.Eval(d, d.DomSyms(), env)
}

// Answers computes Q(D) = {c̄ ∈ dom(D)^{|x̄|} | D ⊨ ϕ(c̄)} as a sorted list
// of tuples. Conjunctions of positive atoms take the homomorphism-search
// fast path; general formulas enumerate dom(D)^{|x̄|}.
//
// Answers deliberately does not route through ForEachAnswerSyms: collecting
// through a per-answer callback costs an indirect call the compiler cannot
// inline, measurable on answer-dense queries (BenchmarkFOEval), so the
// collecting form appends directly inside the enumeration.
func (q *Query) Answers(d *relation.Database) [][]string {
	if atoms, ok := q.asConjunctiveBody(); ok {
		return q.answersCQ(d, atoms)
	}
	return q.answersEnum(d)
}

// ForEachAnswerSyms enumerates the distinct answers of Q(D) as interned
// symbol tuples, in unspecified order, without materializing names or
// sorting — the tallying form used by the sampling estimator and the
// practical pipeline, whose per-walk/per-round counters key answers by
// packed symbols and only ever render the distinct tuples once. The tuple
// slice is reused between calls; clone it to retain.
func (q *Query) ForEachAnswerSyms(d *relation.Database, fn func(tuple []intern.Sym)) {
	if atoms, ok := q.asConjunctiveBody(); ok {
		q.forEachAnswerCQ(d, atoms, fn)
		return
	}
	q.forEachAnswerEnum(d, fn)
}

// answersEnum is the generic active-domain evaluation, collecting names
// directly (see the Answers note); tuples are distinct by enumeration.
func (q *Query) answersEnum(d *relation.Database) [][]string {
	dom := d.DomSyms()
	var out [][]string
	env := logic.NewSubst()
	tuple := make([]intern.Sym, len(q.Out))
	var rec func(i int)
	rec = func(i int) {
		if i == len(q.Out) {
			if q.F.Eval(d, dom, env) {
				out = append(out, intern.Names(tuple))
			}
			return
		}
		for _, c := range dom {
			env[q.Out[i].Sym()] = c
			tuple[i] = c
			rec(i + 1)
		}
		delete(env, q.Out[i].Sym())
	}
	rec(0)
	SortTuples(out)
	return out
}

// forEachAnswerEnum is answersEnum in callback form for ForEachAnswerSyms.
func (q *Query) forEachAnswerEnum(d *relation.Database, fn func([]intern.Sym)) {
	dom := d.DomSyms()
	env := logic.NewSubst()
	tuple := make([]intern.Sym, len(q.Out))
	var rec func(i int)
	rec = func(i int) {
		if i == len(q.Out) {
			if q.F.Eval(d, dom, env) {
				fn(tuple)
			}
			return
		}
		for _, c := range dom {
			env[q.Out[i].Sym()] = c
			tuple[i] = c
			rec(i + 1)
		}
		delete(env, q.Out[i].Sym())
	}
	rec(0)
}

// CQ exposes the cached conjunctive-query analysis: the body atoms, the
// output positions whose variables do not occur in the body (they range
// over the active domain), and whether the formula is a CQ at all. The
// SAT certain-answer compiler keys on this to decide whether a query is
// compilable to witness clauses.
func (q *Query) CQ() (atoms []logic.Atom, unconstrained []int, ok bool) {
	atoms, ok = q.asConjunctiveBody()
	return atoms, q.cqUnconstrained, ok
}

// asConjunctiveBody reports whether the formula is a pure conjunction of
// positive relational atoms (possibly under existential quantifiers) whose
// free variables are exactly the output variables — i.e. a conjunctive
// query — and returns its atoms. The analysis (including the projection of
// cqProjection) is computed on first use and cached.
func (q *Query) asConjunctiveBody() ([]logic.Atom, bool) {
	q.cqOnce.Do(func() {
		f := q.F
		// Strip one layer of existential quantifiers.
		if ex, ok := f.(Exists); ok {
			f = ex.F
		}
		var atoms []logic.Atom
		var collect func(Formula) bool
		collect = func(g Formula) bool {
			switch t := g.(type) {
			case Atom:
				atoms = append(atoms, t.A)
				return true
			case And:
				return collect(t.L) && collect(t.R)
			case Exists:
				return false // nested quantifiers: fall back to enumeration
			default:
				return false
			}
		}
		if !collect(f) {
			return
		}
		q.cqAtoms, q.cqOK = atoms, true
		bodyVars := map[intern.Sym]bool{}
		for _, v := range logic.VarsOf(atoms) {
			bodyVars[v.Sym()] = true
		}
		for i, v := range q.Out {
			if !bodyVars[v.Sym()] {
				q.cqUnconstrained = append(q.cqUnconstrained, i)
			}
		}
	})
	return q.cqAtoms, q.cqOK
}

// answersCQ is the direct-collect CQ evaluation behind Answers. It mirrors
// forEachAnswerCQ with the collection inlined: answer-dense queries pay a
// measurable per-answer cost for an extra uninlinable callback
// (BenchmarkFOEval/cq-fast-path), so the two forms keep separate bodies;
// TestAnswersCQMatchesEnum and the estimator/practical equivalence suites
// pin them together.
func (q *Query) answersCQ(d *relation.Database, atoms []logic.Atom) [][]string {
	unconstrained, dom := q.cqProjection(d, atoms)
	seen := map[string]bool{}
	var out [][]string
	var packBuf [64]byte
	emit := func(tuple []intern.Sym) {
		k := intern.PackSyms(packBuf[:0], tuple)
		if !seen[string(k)] {
			seen[string(k)] = true
			out = append(out, intern.Names(tuple))
		}
	}
	// One output buffer for the whole enumeration: emit reads it before
	// returning and copies what it keeps, so each homomorphism (and each
	// domain expansion below) may overwrite it in place.
	tuple := make([]intern.Sym, len(q.Out))
	relation.ForEachHom(atoms, d, logic.NewSubst(), func(h logic.Subst) bool {
		for i, v := range q.Out {
			if c, ok := h.Lookup(v.Sym()); ok {
				tuple[i] = c
			}
		}
		// Expand unconstrained output variables over the domain.
		var expand func(j int)
		expand = func(j int) {
			if j == len(unconstrained) {
				emit(tuple)
				return
			}
			for _, c := range dom {
				tuple[unconstrained[j]] = c
				expand(j + 1)
			}
		}
		expand(0)
		return true
	})
	SortTuples(out)
	return out
}

// cqProjection returns the cached output positions whose variables do not
// occur in the body (they range over the active domain) and materializes
// the domain only when such positions exist. Callers reach it through
// asConjunctiveBody, which fills the cache.
func (q *Query) cqProjection(d *relation.Database, atoms []logic.Atom) ([]int, []intern.Sym) {
	var dom []intern.Sym
	if len(q.cqUnconstrained) > 0 {
		dom = d.DomSyms()
	}
	return q.cqUnconstrained, dom
}

// forEachAnswerCQ evaluates a conjunctive query via homomorphism search
// and projects onto the output variables. Output variables that do not
// occur in the body range over the full active domain, preserving the
// active-domain semantics of forEachAnswerEnum.
func (q *Query) forEachAnswerCQ(d *relation.Database, atoms []logic.Atom, fn func([]intern.Sym)) {
	unconstrained, dom := q.cqProjection(d, atoms)
	seen := map[string]bool{}
	var packBuf [64]byte
	emit := func(tuple []intern.Sym) {
		k := intern.PackSyms(packBuf[:0], tuple)
		if !seen[string(k)] {
			seen[string(k)] = true
			fn(tuple)
		}
	}
	// One output buffer for the whole enumeration: emit reads it before
	// returning and the callback copies what it keeps, so each homomorphism
	// (and each domain expansion below) may overwrite it in place.
	tuple := make([]intern.Sym, len(q.Out))
	relation.ForEachHom(atoms, d, logic.NewSubst(), func(h logic.Subst) bool {
		for i, v := range q.Out {
			if c, ok := h.Lookup(v.Sym()); ok {
				tuple[i] = c
			}
		}
		// Expand unconstrained output variables over the domain.
		var expand func(j int)
		expand = func(j int) {
			if j == len(unconstrained) {
				emit(tuple)
				return
			}
			for _, c := range dom {
				tuple[unconstrained[j]] = c
				expand(j + 1)
			}
		}
		expand(0)
		return true
	})
}

// TupleKey encodes an answer tuple canonically for map keys: the packed
// interned symbols of its elements. Equal tuples (and only equal tuples)
// share a key. The encoding is process-local — interning order varies
// between runs — so keys must never be persisted or ordered; sort by the
// tuples themselves (SortTuples) for deterministic output.
//
// Symbols are looked up, never created: answer tuples are drawn from the
// active domain, whose constants are interned already, and a tuple with a
// never-interned element cannot equal any such tuple. The two cases carry
// distinct tags so their namespaces cannot collide.
func TupleKey(tuple []string) string {
	var symBuf [16]intern.Sym
	syms := symBuf[:0]
	for _, c := range tuple {
		s, ok := intern.Lookup(c)
		if !ok {
			// Foreign tuple (e.g. a caller probing for an answer that was
			// never in any database): quote it without touching the
			// process-wide symbol table.
			parts := make([]string, len(tuple))
			for i, e := range tuple {
				parts[i] = fmt.Sprintf("%q", e)
			}
			return "s(" + strings.Join(parts, ",") + ")"
		}
		syms = append(syms, s)
	}
	var packBuf [64]byte
	packBuf[0] = 'p'
	return string(intern.PackSyms(packBuf[:1], syms))
}

// TupleString renders a tuple for display, e.g. (a, b).
func TupleString(tuple []string) string {
	return "(" + strings.Join(tuple, ", ") + ")"
}
