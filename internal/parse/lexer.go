package parse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString // quoted constant
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokArrow   // ->
	tokIff     // <->
	tokEq      // =
	tokNeq     // !=
	tokBang    // !
	tokAmp     // &
	tokPipe    // |
	tokColon   // :
	tokDefined // :=
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "quoted constant"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokArrow:
		return "'->'"
	case tokIff:
		return "'<->'"
	case tokEq:
		return "'='"
	case tokNeq:
		return "'!='"
	case tokBang:
		return "'!'"
	case tokAmp:
		return "'&'"
	case tokPipe:
		return "'|'"
	case tokColon:
		return "':'"
	case tokDefined:
		return "':='"
	}
	return fmt.Sprintf("token(%d)", int(k))
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// Error is a parse error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("parse error at line %d, column %d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) errf(format string, args ...any) *Error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekRune() (rune, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

// skipSpace consumes whitespace and comments (# and % to end of line).
func (l *lexer) skipSpace() {
	for {
		r, ok := l.peekRune()
		if !ok {
			return
		}
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '#' || r == '%':
			for {
				r, ok := l.peekRune()
				if !ok || r == '\n' {
					break
				}
				_ = r
				l.advance()
			}
		default:
			return
		}
	}
}

func (l *lexer) next() (token, *Error) {
	l.skipSpace()
	line, col := l.line, l.col
	r, ok := l.peekRune()
	if !ok {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	mk := func(kind tokenKind, text string) token {
		return token{kind: kind, text: text, line: line, col: col}
	}
	switch r {
	case '(':
		l.advance()
		return mk(tokLParen, "("), nil
	case ')':
		l.advance()
		return mk(tokRParen, ")"), nil
	case ',':
		l.advance()
		return mk(tokComma, ","), nil
	case '.':
		l.advance()
		return mk(tokDot, "."), nil
	case '&':
		l.advance()
		return mk(tokAmp, "&"), nil
	case '|':
		l.advance()
		return mk(tokPipe, "|"), nil
	case '=':
		l.advance()
		return mk(tokEq, "="), nil
	case ':':
		l.advance()
		if r2, ok := l.peekRune(); ok && r2 == '=' {
			l.advance()
			return mk(tokDefined, ":="), nil
		}
		return mk(tokColon, ":"), nil
	case '!':
		l.advance()
		if r2, ok := l.peekRune(); ok && r2 == '=' {
			l.advance()
			return mk(tokNeq, "!="), nil
		}
		return mk(tokBang, "!"), nil
	case '-':
		l.advance()
		if r2, ok := l.peekRune(); ok && r2 == '>' {
			l.advance()
			return mk(tokArrow, "->"), nil
		}
		return token{}, &Error{Line: line, Col: col, Msg: "expected '>' after '-'"}
	case '<':
		l.advance()
		if r2, ok := l.peekRune(); ok && r2 == '-' {
			l.advance()
			if r3, ok := l.peekRune(); ok && r3 == '>' {
				l.advance()
				return mk(tokIff, "<->"), nil
			}
		}
		return token{}, &Error{Line: line, Col: col, Msg: "expected '<->'"}
	case '"':
		l.advance()
		var b strings.Builder
		for {
			r, ok := l.peekRune()
			if !ok {
				return token{}, &Error{Line: line, Col: col, Msg: "unterminated string"}
			}
			l.advance()
			if r == '"' {
				return mk(tokString, b.String()), nil
			}
			if r == '\\' {
				esc, ok := l.peekRune()
				if !ok {
					return token{}, &Error{Line: line, Col: col, Msg: "unterminated escape"}
				}
				l.advance()
				switch esc {
				case 'n':
					b.WriteRune('\n')
				case 't':
					b.WriteRune('\t')
				default:
					b.WriteRune(esc)
				}
				continue
			}
			b.WriteRune(r)
		}
	}
	if unicode.IsDigit(r) {
		var b strings.Builder
		for {
			r, ok := l.peekRune()
			if !ok || (!unicode.IsDigit(r) && r != '.') {
				break
			}
			// A dot followed by a non-digit terminates the statement, not
			// the number.
			if r == '.' {
				if l.pos+1 >= len(l.src) || !unicode.IsDigit(l.src[l.pos+1]) {
					break
				}
			}
			b.WriteRune(r)
			l.advance()
		}
		return mk(tokNumber, b.String()), nil
	}
	if unicode.IsLetter(r) || r == '_' {
		var b strings.Builder
		for {
			r, ok := l.peekRune()
			if !ok || (!unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_') {
				break
			}
			b.WriteRune(r)
			l.advance()
		}
		return mk(tokIdent, b.String()), nil
	}
	return token{}, &Error{Line: line, Col: col, Msg: fmt.Sprintf("unexpected character %q", r)}
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, *Error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
