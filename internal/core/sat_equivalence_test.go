package core_test

// The strongest correctness artifact in the repo: four independent exact
// engines — sequence tree, collapsed DAG, factored components, and the
// SAT pipeline (which never explores a chain at all) — must report the
// identical certain-answer set on every instance, for every full-support
// local generator, under both semantics modes, for every worker count.
// The SAT engine shares no exploration code with the others (it reasons
// about the repair space propositionally), so agreement here is evidence
// about the semantics itself, not about shared plumbing.

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/generators"
	"repro/internal/logic"
	"repro/internal/markov"
	"repro/internal/relation"
	"repro/internal/repair"
	"repro/internal/sat"
	"repro/internal/workload"
)

func certainDiff(label string, a, b [][]string) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%s: %v vs %v", label, a, b)
	}
	for i := range a {
		if fo.TupleKey(a[i]) != fo.TupleKey(b[i]) {
			return fmt.Sprintf("%s: tuple %d: %v vs %v", label, i, a[i], b[i])
		}
	}
	return ""
}

// checkCertainEngines computes the certain answers of q on (db, sigma)
// through every exact pipeline and requires bit-identical sets:
// tree and DAG under both semantics modes, the factored engine across
// Workers=1..8, and SAT.
func checkCertainEngines(t *testing.T, label string, db *relation.Database, sigma *constraint.Set, gen core.LocalGenerator, q *fo.Query) {
	t.Helper()
	inst := repair.MustInstance(db, sigma)
	opt := markov.ExploreOptions{MaxStates: 2_000_000}

	satRes, err := core.ComputeCertainSAT(db, sigma, q)
	if err != nil {
		t.Fatalf("%s: sat: %v", label, err)
	}

	tree, err := core.ComputeTreeMode(inst, gen, opt, core.WalkInduced)
	if err != nil {
		t.Fatalf("%s: tree: %v", label, err)
	}
	if d := certainDiff("tree vs sat", tree.Certain(q), satRes.Answers); d != "" {
		t.Fatalf("%s: %s", label, d)
	}

	dag, err := core.ComputeDAGMode(inst, gen, opt, core.WalkInduced)
	if err != nil {
		t.Fatalf("%s: dag: %v", label, err)
	}
	if d := certainDiff("dag vs sat", dag.Certain(q), satRes.Answers); d != "" {
		t.Fatalf("%s: %s", label, d)
	}

	// Certain answers are semantics-mode independent: the uniform mode
	// reweighs the same repairs, and a reweighing cannot change which
	// tuples hold with probability 1.
	uni, err := core.ComputeDAGMode(inst, gen, opt, core.SequenceUniform)
	if err != nil {
		t.Fatalf("%s: dag/uniform: %v", label, err)
	}
	if d := certainDiff("dag-uniform vs sat", uni.Certain(q), satRes.Answers); d != "" {
		t.Fatalf("%s: %s", label, d)
	}

	for workers := 1; workers <= 8; workers++ {
		f, err := core.ComputeFactored(inst, gen, markov.ExploreOptions{Workers: workers, MaxStates: 2_000_000})
		if err != nil {
			t.Fatalf("%s: factored workers=%d: %v", label, workers, err)
		}
		fc, err := f.Certain(q)
		if err != nil {
			t.Fatalf("%s: factored certain workers=%d: %v", label, workers, err)
		}
		if d := certainDiff(fmt.Sprintf("factored(w=%d) vs sat", workers), fc, satRes.Answers); d != "" {
			t.Fatalf("%s: %s", label, d)
		}
	}
}

// randomTwoTableInstance builds a small random instance over keyed tables
// R(k,v) and S(k,w): small key/value domains force random violating
// groups; total conflict facts stay small enough for the tree engine.
func randomTwoTableInstance(rng *rand.Rand) (*relation.Database, *constraint.Set) {
	d := relation.NewDatabase()
	rKeys, sKeys := 1+rng.Intn(3), 1+rng.Intn(3)
	for i := 0; i < 2+rng.Intn(4); i++ {
		d.Insert(relation.NewFact("R",
			fmt.Sprintf("k%d", rng.Intn(rKeys)), fmt.Sprintf("v%d", rng.Intn(3))))
	}
	for i := 0; i < 2+rng.Intn(3); i++ {
		d.Insert(relation.NewFact("S",
			fmt.Sprintf("k%d", rng.Intn(sKeys)), fmt.Sprintf("w%d", rng.Intn(3))))
	}
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	keyOf := func(pred string) *constraint.Constraint {
		return constraint.MustEGD(
			[]logic.Atom{logic.NewAtom(pred, x, y), logic.NewAtom(pred, x, z)}, y, z)
	}
	return d, constraint.NewSet(keyOf("R"), keyOf("S"))
}

func satJoinQuery() *fo.Query {
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	return fo.MustQuery("J", []logic.Term{x},
		fo.Exists{Vars: []logic.Term{y, z}, F: fo.And{
			L: fo.Atom{A: logic.NewAtom("R", x, y)},
			R: fo.Atom{A: logic.NewAtom("S", x, z)},
		}})
}

func satBoolQuery() *fo.Query {
	x, y := logic.Var("x"), logic.Var("y")
	return fo.MustQuery("B", nil,
		fo.Exists{Vars: []logic.Term{x, y}, F: fo.Atom{A: logic.NewAtom("R", x, y)}})
}

// TestSATEquivalenceUniform: tree ≡ DAG ≡ factored ≡ SAT on randomized
// two-table instances under the uniform generator, for an atomic-style
// exists query, a cross-table join, and a boolean query.
func TestSATEquivalenceUniform(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(400 + trial)))
		d, sigma := randomTwoTableInstance(rng)
		label := fmt.Sprintf("uniform/trial=%d", trial)
		checkCertainEngines(t, label+"/exists", d, sigma, generators.Uniform{}, keysEquivQuery())
		checkCertainEngines(t, label+"/join", d, sigma, generators.Uniform{}, satJoinQuery())
		checkCertainEngines(t, label+"/bool", d, sigma, generators.Uniform{}, satBoolQuery())
	}
}

// TestSATEquivalenceUniformDeletions: same instances, deletion-only
// uniform generator (the canonical non-failing chain for EGD-only Σ).
func TestSATEquivalenceUniformDeletions(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		d, sigma := randomTwoTableInstance(rng)
		label := fmt.Sprintf("uniform-deletions/trial=%d", trial)
		checkCertainEngines(t, label+"/exists", d, sigma, generators.UniformDeletions{}, keysEquivQuery())
		checkCertainEngines(t, label+"/join", d, sigma, generators.UniformDeletions{}, satJoinQuery())
	}
}

// TestSATEquivalenceTrust: the trust generator with randomized full-
// support levels (every level in (0,1], so every repair keeps positive
// probability — the regime where certain answers are generator-free).
func TestSATEquivalenceTrust(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(600 + trial)))
		d, sigma := randomTwoTableInstance(rng)
		gen := workload.RandomTrust(d, 4, int64(trial))
		label := fmt.Sprintf("trust/trial=%d", trial)
		checkCertainEngines(t, label+"/exists", d, sigma, gen, keysEquivQuery())
		checkCertainEngines(t, label+"/join", d, sigma, gen, satJoinQuery())
	}
}

// TestSATEquivalenceCliques: the huge-sequence-space family at a size
// every engine can still handle, both repair-space corners (all-violating
// and violation-free).
func TestSATEquivalenceCliques(t *testing.T) {
	for _, cfg := range []workload.CliqueConfig{
		{Groups: 2, GroupSize: 3, Core: 2, Seed: 1},
		{Groups: 3, GroupSize: 2, Core: 0, Seed: 2},
		{Groups: 0, GroupSize: 2, Core: 3, Seed: 3},
	} {
		d, sigma := workload.Cliques(cfg)
		label := fmt.Sprintf("cliques/%+v", cfg)
		checkCertainEngines(t, label, d, sigma, generators.Uniform{}, keysEquivQuery())
	}
}

// TestFactoredCertainSATFallback: on an instance whose repair space
// exceeds the factored enumeration budget (4^22 repairs) and whose
// sequence space exceeds any DAG budget, Factored.Certain must route
// through SAT and still produce the exact certain set — here provably
// the conflict-free core keys, cross-checked against the direct SAT
// engine. This is the per-instance engine selection the issue asks for:
// distribution queries keep the factored path, over-budget certain
// queries jump to SAT.
func TestFactoredCertainSATFallback(t *testing.T) {
	cfg := workload.CliqueConfig{Groups: 22, GroupSize: 3, Core: 5, Seed: 11}
	d, sigma := workload.Cliques(cfg)
	inst := repair.MustInstance(d, sigma)
	q := keysEquivQuery()

	f, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The enumeration really is over budget for this query.
	if _, err := f.OCA(q); !errors.Is(err, core.ErrEnumerationBudget) {
		t.Fatalf("OCA err = %v, want ErrEnumerationBudget", err)
	}

	got, err := f.Certain(q)
	if err != nil {
		t.Fatalf("Factored.Certain fallback: %v", err)
	}
	satRes, err := core.ComputeCertainSAT(d, sigma, q)
	if err != nil {
		t.Fatal(err)
	}
	if diff := certainDiff("factored-fallback vs sat", got, satRes.Answers); diff != "" {
		t.Fatal(diff)
	}
	if len(got) != cfg.Core {
		t.Fatalf("certain = %v, want exactly the %d core keys", got, cfg.Core)
	}
	for i, tup := range got {
		if want := fmt.Sprintf("c%d", i); len(tup) != 1 || tup[0] != want {
			t.Fatalf("certain[%d] = %v, want [%s]", i, tup, want)
		}
	}
}

// TestSATMatchesMaximalSemanticsOnly documents why the encoding uses
// at-most-one and not the issue text's exactly-one: on a single
// 2-fact violating group the operational chain reaches the empty
// resolution with positive probability, so the group's key is NOT
// certain — which the chain engines and the at-most-one encoding agree
// on, while an exactly-one (maximal-repair) encoding would call it
// certain.
func TestSATMatchesOperationalNotMaximal(t *testing.T) {
	d, sigma := workload.Cliques(workload.CliqueConfig{Groups: 1, GroupSize: 2, Core: 0, Seed: 1})
	inst := repair.MustInstance(d, sigma)
	q := keysEquivQuery()

	sem, err := core.Compute(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chainCertain := sem.Certain(q)
	if len(chainCertain) != 0 {
		t.Fatalf("chain certain = %v, want empty (the empty resolution is reachable)", chainCertain)
	}

	satRes, err := core.ComputeCertainSAT(d, sigma, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(satRes.Answers) != 0 {
		t.Fatalf("sat certain = %v, want empty", satRes.Answers)
	}

	enc, err := sat.NewEncoder(d, sigma, sat.Options{MaximalRepairs: true})
	if err != nil {
		t.Fatal(err)
	}
	mx, err := enc.CertainAnswers(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(mx.Answers) != 1 {
		t.Fatalf("maximal-repair certain = %v, want the group key", mx.Answers)
	}
}
