// Package workload generates the synthetic inputs used by the examples,
// benchmarks, and experiments. Each generator is deterministic given its
// seed, so experiment tables and property tests are reproducible.
//
// # Key pieces
//
//   - Preferences: preference tournaments with controlled symmetric
//     conflicts (the paper's running example at scale) plus the asymmetry
//     denial constraint.
//   - KeyViolations: R(k,v) with a configurable number of two-tuple key
//     conflicts — the clique-shaped conflict workload every scaling
//     experiment uses (k independent conflicts → 3^k·k! sequences, 4^k
//     distinct databases).
//   - Chain: the path-shaped conflict workload E(n0,n1), E(n1,n2), ...
//     under ¬∃x,y,z (E(x,y) ∧ E(y,z)). Middle facts sit in two violations,
//     end facts in one — the asymmetry on which the walk-induced and
//     sequence-uniform semantics provably differ (see E17 and
//     examples/semantics).
//   - Inclusion: an inclusion-dependency instance with dangling R facts,
//     exercising TGD repairs, insertions, and failing sequences.
//   - RandomTrust: pseudo-random trust levels for the Example 5 generator.
//   - Orders: the relational workload of the Section 5 rewriting
//     experiment, emitted as a plan.Catalog over the interned substrate.
//
// # Invariants
//
//   - Generators never consult global randomness; everything derives from
//     the explicit Seed (Chain takes none — it is fully determined by its
//     size).
//
// # Neighbors
//
// Below: internal/relation, internal/constraint, internal/logic,
// internal/plan, internal/generators. Above: bench_test.go,
// cmd/experiments, examples/*, and the equivalence test suites.
package workload
