package cliutil

import (
	"fmt"
	"math/big"
	"os"
	"strings"

	"repro/internal/constraint"
	"repro/internal/fo"
	"repro/internal/generators"
	"repro/internal/markov"
	"repro/internal/parse"
	"repro/internal/relation"
	"repro/internal/workload"
)

// LoadText returns the contents of the file at path, or, when path starts
// with "inline:", the remainder of the string verbatim.
func LoadText(path string) (string, error) {
	if rest, ok := strings.CutPrefix(path, "inline:"); ok {
		return rest, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// LoadDatabase parses a database file.
func LoadDatabase(path string) (*relation.Database, error) {
	src, err := LoadText(path)
	if err != nil {
		return nil, fmt.Errorf("loading database: %w", err)
	}
	d, perr := parse.Database(src)
	if perr != nil {
		return nil, fmt.Errorf("parsing database %s: %w", path, perr)
	}
	return d, nil
}

// LoadConstraints parses a constraint file.
func LoadConstraints(path string) (*constraint.Set, error) {
	src, err := LoadText(path)
	if err != nil {
		return nil, fmt.Errorf("loading constraints: %w", err)
	}
	set, perr := parse.Constraints(src)
	if perr != nil {
		return nil, fmt.Errorf("parsing constraints %s: %w", path, perr)
	}
	return set, nil
}

// LoadQuery parses a query file.
func LoadQuery(path string) (*fo.Query, error) {
	src, err := LoadText(path)
	if err != nil {
		return nil, fmt.Errorf("loading query: %w", err)
	}
	q, perr := parse.Query(src)
	if perr != nil {
		return nil, fmt.Errorf("parsing query %s: %w", path, perr)
	}
	return q, nil
}

// GeneratorNames lists the generators resolvable by ResolveGenerator.
func GeneratorNames() string {
	return "uniform, uniform-deletions, preference, trust (trust uses level 1/2 everywhere; seed trust levels via trust:<seed> for random levels)"
}

// ResolveGenerator maps a CLI name to a chain generator. The trust
// generator accepts an optional ":<seed>" suffix that assigns random trust
// levels to the database facts.
func ResolveGenerator(name string, d *relation.Database) (markov.Generator, error) {
	switch {
	case name == "uniform" || name == "":
		return generators.Uniform{}, nil
	case name == "uniform-deletions":
		return generators.UniformDeletions{}, nil
	case name == "preference":
		return generators.Preference{}, nil
	case name == "trust":
		return generators.NewTrust(big.NewRat(1, 2)), nil
	case strings.HasPrefix(name, "trust:"):
		var seed int64
		if _, err := fmt.Sscanf(name, "trust:%d", &seed); err != nil {
			return nil, fmt.Errorf("bad trust seed in %q: %w", name, err)
		}
		return workload.RandomTrust(d, 10, seed), nil
	default:
		return nil, fmt.Errorf("unknown generator %q (have: %s)", name, GeneratorNames())
	}
}
