package practical

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/engine"
)

func catalogWithConflicts() *engine.Catalog {
	orders := engine.NewRelation("orders", "oid", "cust", "amount").
		Add("o1", "c1", "100").
		Add("o1", "c2", "150").
		Add("o2", "c1", "200").
		Add("o3", "c3", "50").
		Add("o3", "c4", "60").
		Add("o3", "c5", "70")
	customers := engine.NewRelation("customers", "cust", "region").
		Add("c1", "north").Add("c2", "south").Add("c3", "north").
		Add("c4", "west").Add("c5", "east")
	cat := engine.NewCatalog().AddTable(orders).AddTable(customers)
	if err := cat.DeclareKey("orders", "oid"); err != nil {
		panic(err)
	}
	return cat
}

func TestKeyGroups(t *testing.T) {
	cat := catalogWithConflicts()
	rel, err := cat.Table("orders")
	if err != nil {
		t.Fatal(err)
	}
	groups := KeyGroups(rel, cat.Key("orders"))
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want 2 (o1 and o3)", groups)
	}
	sizes := map[int]bool{len(groups[0]): true, len(groups[1]): true}
	if !sizes[2] || !sizes[3] {
		t.Errorf("group sizes = %v, want {2,3}", sizes)
	}
}

func TestSampleRdelKeepsExactlyOne(t *testing.T) {
	cat := catalogWithConflicts()
	rel, _ := cat.Table("orders")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		del := SampleRdel(rng, rel, cat.Key("orders"), Policy{})
		// o1 group: 2 rows → 1 deleted; o3 group: 3 rows → 2 deleted.
		if del.Len() != 3 {
			t.Fatalf("R_del size = %d, want 3", del.Len())
		}
		// The survivor set must keep exactly one per violating key.
		kept := map[string]int{"o1": 0, "o3": 0}
		drop := map[string]bool{}
		for _, row := range del.Rows {
			drop[row[0]+"|"+row[1]] = true
		}
		for _, row := range rel.Rows {
			if row[0] == "o2" {
				continue
			}
			if !drop[row[0]+"|"+row[1]] {
				kept[row[0]]++
			}
		}
		if kept["o1"] != 1 || kept["o3"] != 1 {
			t.Fatalf("kept = %v, want one per group", kept)
		}
	}
}

func TestSampleRdelDropAll(t *testing.T) {
	cat := catalogWithConflicts()
	rel, _ := cat.Table("orders")
	rng := rand.New(rand.NewSource(2))
	del := SampleRdel(rng, rel, cat.Key("orders"), Policy{DropAll: 1.0})
	// Everything in violating groups goes: 2 + 3 rows.
	if del.Len() != 5 {
		t.Errorf("R_del size = %d, want 5", del.Len())
	}
}

func TestRunnerFrequencies(t *testing.T) {
	cat := catalogWithConflicts()
	r := &Runner{Catalog: cat, Seed: 7}
	// Which customers own an order? Project cust from orders.
	plan := engine.Distinct{Input: engine.Project{Input: engine.Scan{Table: "orders"}, Cols: []string{"cust"}}}
	res, err := r.Run(plan, 4000)
	if err != nil {
		t.Fatal(err)
	}
	// c1 appears via clean o2 in every round → frequency 1.
	if got := res.Lookup([]string{"c1"}).P; got != 1 {
		t.Errorf("P(c1) = %v, want 1", got)
	}
	// c2 survives only when o1 keeps its second row: ≈ 1/2.
	if got := res.Lookup([]string{"c2"}).P; math.Abs(got-0.5) > 0.03 {
		t.Errorf("P(c2) = %v, want ≈ 0.5", got)
	}
	// c3/c4/c5 each ≈ 1/3 (o3 keeps one of three rows).
	for _, cust := range []string{"c3", "c4", "c5"} {
		if got := res.Lookup([]string{cust}).P; math.Abs(got-1.0/3) > 0.03 {
			t.Errorf("P(%s) = %v, want ≈ 1/3", cust, got)
		}
	}
}

func TestRunnerJoinQuery(t *testing.T) {
	cat := catalogWithConflicts()
	r := &Runner{Catalog: cat, Seed: 11}
	// Regions with at least one order.
	plan := engine.Distinct{Input: engine.Project{
		Input: engine.Join{L: engine.Scan{Table: "orders"}, R: engine.Scan{Table: "customers"}},
		Cols:  []string{"region"},
	}}
	res, err := r.Run(plan, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// north holds via o2→c1 regardless of repairs.
	if got := res.Lookup([]string{"north"}).P; got != 1 {
		t.Errorf("P(north) = %v, want 1", got)
	}
	// south requires o1 keeping c2: ≈ 0.5.
	if got := res.Lookup([]string{"south"}).P; math.Abs(got-0.5) > 0.04 {
		t.Errorf("P(south) = %v, want ≈ 0.5", got)
	}
}

func TestRunWithGuaranteeUsesHoeffdingN(t *testing.T) {
	cat := catalogWithConflicts()
	r := &Runner{Catalog: cat, Seed: 3}
	plan := engine.Distinct{Input: engine.Project{Input: engine.Scan{Table: "orders"}, Cols: []string{"cust"}}}
	res, err := r.RunWithGuarantee(plan, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 150 {
		t.Errorf("N = %d, want the paper's 150", res.N)
	}
	if res.Eps != 0.1 || res.Delta != 0.1 {
		t.Errorf("guarantee parameters lost: %+v", res)
	}
}

func TestRunnerDeterministicPerSeed(t *testing.T) {
	cat := catalogWithConflicts()
	plan := engine.Distinct{Input: engine.Project{Input: engine.Scan{Table: "orders"}, Cols: []string{"cust"}}}
	a, err := (&Runner{Catalog: cat, Seed: 5}).Run(plan, 200)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Runner{Catalog: cat, Seed: 5}).Run(plan, 200)
	if err != nil {
		t.Fatal(err)
	}
	if a.Lookup([]string{"c2"}).Count != b.Lookup([]string{"c2"}).Count {
		t.Error("same seed must reproduce counts")
	}
}

func TestRunnerBadN(t *testing.T) {
	cat := catalogWithConflicts()
	r := &Runner{Catalog: cat, Seed: 1}
	if _, err := r.Run(engine.Scan{Table: "orders"}, 0); err == nil {
		t.Error("n = 0 must fail")
	}
}
