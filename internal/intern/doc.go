// Package intern provides process-wide interning of the strings that flow
// through the repair stack: predicate names, constants, and labeled nulls
// are mapped to dense uint32 symbols (Sym) so that every hot-path
// comparison — fact identity, violation identity, homomorphism bindings,
// state bookkeeping — is an integer comparison instead of a string build.
//
// # Key types
//
//   - Sym: a dense uint32 symbol id. Symbol 0 is never issued, so Sym(0)
//     doubles as "no symbol" in the packages above.
//   - PackSyms / tuple.go: a length-prefixed varint encoding of symbol
//     tuples used as map keys (answer tallies, join hashing) without
//     materializing strings.
//
// # Invariants
//
//   - The symbol table is append-only and never evicts: a Sym, once
//     issued, resolves to the same name for the process lifetime, so ids
//     may be stored freely in long-lived structures.
//   - Interning is deterministic per process but NOT across processes:
//     Sym values and packed-tuple encodings are process-local and carry no
//     stable order. Anything user-visible must be sorted by name (the
//     convention everywhere above: sort by the strings, never by Sym).
//   - Concurrency: lookups of existing symbols take a read lock on the
//     name→symbol map; the symbol→name direction is lock-free through an
//     atomically published snapshot, so parallel chain walkers resolve
//     names without contention.
//
// # Neighbors
//
// Everything sits above this package: internal/logic builds terms and
// atoms over Sym, internal/relation interns facts keyed by packed symbol
// tuples, and internal/fo / internal/plan key query answers by PackSyms.
package intern
