// Package prob provides small utilities over exact rational probabilities
// (math/big.Rat) used throughout the library: normalization, summation,
// formatting, weighted random choice, and the Hoeffding sample-size bound
// n = ⌈ln(2/δ) / (2ε²)⌉ that drives the additive-error approximation scheme
// of Theorem 9.
package prob

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/rand"
)

// Zero returns a fresh rational 0.
func Zero() *big.Rat { return new(big.Rat) }

// One returns a fresh rational 1.
func One() *big.Rat { return big.NewRat(1, 1) }

// R is shorthand for big.NewRat.
func R(num, den int64) *big.Rat { return big.NewRat(num, den) }

// Sum returns the sum of the rationals (zero for an empty list).
func Sum(rs []*big.Rat) *big.Rat {
	total := new(big.Rat)
	for _, r := range rs {
		total.Add(total, r)
	}
	return total
}

// IsZero reports whether r equals 0.
func IsZero(r *big.Rat) bool { return r.Sign() == 0 }

// IsOne reports whether r equals 1.
func IsOne(r *big.Rat) bool { return r.Cmp(One()) == 0 }

// InUnit reports whether 0 ≤ r ≤ 1.
func InUnit(r *big.Rat) bool { return r.Sign() >= 0 && r.Cmp(One()) <= 0 }

// ErrBadWeights is returned by Normalize when weights are unusable.
var ErrBadWeights = errors.New("prob: weights must be non-negative with positive sum")

// Normalize scales non-negative weights to sum to exactly 1. It fails when
// any weight is negative or all weights are zero. The input is not
// modified.
func Normalize(ws []*big.Rat) ([]*big.Rat, error) {
	total := new(big.Rat)
	for _, w := range ws {
		if w.Sign() < 0 {
			return nil, ErrBadWeights
		}
		total.Add(total, w)
	}
	if total.Sign() == 0 {
		return nil, ErrBadWeights
	}
	out := make([]*big.Rat, len(ws))
	for i, w := range ws {
		out[i] = new(big.Rat).Quo(w, total)
	}
	return out, nil
}

// SumsToOne reports whether the rationals sum to exactly 1.
func SumsToOne(rs []*big.Rat) bool { return IsOne(Sum(rs)) }

// Float converts a rational to float64 (for reporting only; all chain
// arithmetic stays exact).
func Float(r *big.Rat) float64 {
	f, _ := r.Float64()
	return f
}

// Format renders a rational as "num/den (decimal)", e.g. "9/20 (0.4500)".
func Format(r *big.Rat) string {
	if r.IsInt() {
		return fmt.Sprintf("%s (%.4f)", r.Num().String(), Float(r))
	}
	return fmt.Sprintf("%s/%s (%.4f)", r.Num().String(), r.Denom().String(), Float(r))
}

// HoeffdingSamples returns the number of independent samples
// n = ⌈ln(2/δ) / (2ε²)⌉ sufficient for the sample mean of {0,1} variables
// to lie within ε of its expectation with probability at least 1−δ
// (Hoeffding's inequality, as used in the proof of Theorem 9). For
// ε = δ = 0.1 this yields the paper's n = 150.
func HoeffdingSamples(eps, delta float64) (int, error) {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("prob: need ε > 0 and 0 < δ < 1, got ε=%v δ=%v", eps, delta)
	}
	n := math.Ceil(math.Log(2/delta) / (2 * eps * eps))
	if n < 1 {
		n = 1
	}
	if n > math.MaxInt32 {
		return 0, fmt.Errorf("prob: sample size %.0f is impractically large", n)
	}
	return int(n), nil
}

// Pick draws an index with probability proportional to the given
// non-negative weights, using the provided source of randomness. It panics
// on an empty or all-zero weight list (the chain machinery validates
// weights before sampling).
func Pick(rng *rand.Rand, ws []*big.Rat) int {
	total := Sum(ws)
	if len(ws) == 0 || total.Sign() <= 0 {
		panic("prob: Pick requires non-empty weights with positive sum")
	}
	// Draw u uniform in [0, total) as an exact rational with a 53-bit
	// numerator, then walk the cumulative sum. Precision is bounded by the
	// RNG, not by floating-point accumulation.
	const resolution = 1 << 53
	u := new(big.Rat).SetFrac64(rng.Int63n(resolution), resolution)
	u.Mul(u, total)
	acc := new(big.Rat)
	for i, w := range ws {
		if w.Sign() == 0 {
			continue
		}
		acc.Add(acc, w)
		if u.Cmp(acc) < 0 {
			return i
		}
	}
	// Numerically unreachable; return the last positive-weight index.
	for i := len(ws) - 1; i >= 0; i-- {
		if ws[i].Sign() > 0 {
			return i
		}
	}
	panic("prob: unreachable")
}

// Equal reports whether two rationals are equal.
func Equal(a, b *big.Rat) bool { return a.Cmp(b) == 0 }

// AbsDiff returns |a − b| as a float64; used by approximation tests to
// compare estimates against exact values.
func AbsDiff(a float64, b *big.Rat) float64 {
	return math.Abs(a - Float(b))
}
