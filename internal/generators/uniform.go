package generators

import (
	"fmt"
	"math/big"

	"repro/internal/markov"
	"repro/internal/ops"
	"repro/internal/prob"
	"repro/internal/repair"
)

// Uniform is the uniform Markov chain generator M^u_Σ: if a repairing
// sequence s has exactly the extensions s·op_1, ..., s·op_k, each gets
// probability 1/k. Proposition 4: every ABC repair is an operational repair
// with respect to this generator.
type Uniform struct{}

// Name implements markov.Generator.
func (Uniform) Name() string { return "uniform" }

// LocalWeights asserts that uniform choice within a conflict component is
// independent of the rest of the database, enabling the factorized exact
// semantics of core.ComputeFactored.
func (Uniform) LocalWeights() bool { return true }

// StructuralWeights asserts that the uniform weights are invariant under
// renaming of constants — 1/k never inspects a constant — so isomorphic
// conflict components share one exploration through the structural
// semantics cache of core.ComputeFactored (core.StructuralGenerator).
func (Uniform) StructuralWeights() bool { return true }

// Memoryless implements markov.Markovian: 1/k depends only on the number of
// extensions, a function of the state's database, so the chain collapses to
// the DAG of distinct sub-databases.
func (Uniform) Memoryless() bool { return true }

// Transitions implements markov.Generator. Every extension shares one
// 1/k rational value: callers treat transition probabilities as read-only,
// and the shared pointer lets the chain machinery recognize the uniform
// case without arithmetic.
func (Uniform) Transitions(_ *repair.State, exts []ops.Op) ([]*big.Rat, error) {
	if len(exts) == 0 {
		return nil, nil
	}
	p := big.NewRat(1, int64(len(exts)))
	out := make([]*big.Rat, len(exts))
	for i := range out {
		out[i] = p
	}
	return out, nil
}

// IntWeights implements markov.IntWeighter: every extension has weight 1.
func (Uniform) IntWeights(_ *repair.State, exts []ops.Op) ([]int64, bool, error) {
	out := make([]int64, len(exts))
	for i := range out {
		out[i] = 1
	}
	return out, true, nil
}

// UniformDeletions is the uniform generator restricted to deletion
// operations: additions get probability zero and the deletions share the
// mass equally. By Proposition 8 the resulting generator is non-failing for
// every set of TGDs, EGDs, and DCs.
type UniformDeletions struct{}

// Name implements markov.Generator.
func (UniformDeletions) Name() string { return "uniform-deletions" }

// LocalWeights asserts locality (see Uniform.LocalWeights).
func (UniformDeletions) LocalWeights() bool { return true }

// StructuralWeights asserts renaming-invariance (see
// Uniform.StructuralWeights; the deletion mask never inspects constants).
func (UniformDeletions) StructuralWeights() bool { return true }

// Memoryless implements markov.Markovian (see Uniform.Memoryless; the
// deletion mask is a property of the extensions themselves).
func (UniformDeletions) Memoryless() bool { return true }

// Transitions implements markov.Generator.
func (UniformDeletions) Transitions(s *repair.State, exts []ops.Op) ([]*big.Rat, error) {
	var dels int64
	for _, op := range exts {
		if op.IsDelete() {
			dels++
		}
	}
	if dels == 0 {
		return nil, fmt.Errorf("generators: no deletion extension at state %q; deletion-only chain undefined", s)
	}
	p := big.NewRat(1, dels)
	zero := prob.Zero()
	out := make([]*big.Rat, len(exts))
	for i, op := range exts {
		if op.IsDelete() {
			out[i] = p
		} else {
			out[i] = zero
		}
	}
	return out, nil
}

// WeightFunc adapts a user-supplied weight function into a generator: each
// valid extension receives weight fn(s, op) ≥ 0 and the weights are
// normalized to probabilities. It returns an error at states where every
// weight is zero.
type WeightFunc struct {
	// Label names the generator.
	Label string
	// Fn assigns a non-negative weight to an extension.
	Fn func(s *repair.State, op ops.Op) *big.Rat
}

// Name implements markov.Generator.
func (w WeightFunc) Name() string {
	if w.Label != "" {
		return w.Label
	}
	return "weight-func"
}

// Transitions implements markov.Generator.
func (w WeightFunc) Transitions(s *repair.State, exts []ops.Op) ([]*big.Rat, error) {
	weights := make([]*big.Rat, len(exts))
	for i, op := range exts {
		weights[i] = w.Fn(s, op)
	}
	ps, err := prob.Normalize(weights)
	if err != nil {
		return nil, fmt.Errorf("generators: %s at state %q: %w", w.Name(), s, err)
	}
	return ps, nil
}

// IntWeights implements markov.IntWeighter: deletions weigh 1, additions 0.
func (UniformDeletions) IntWeights(s *repair.State, exts []ops.Op) ([]int64, bool, error) {
	out := make([]int64, len(exts))
	var dels int64
	for i, op := range exts {
		if op.IsDelete() {
			out[i] = 1
			dels++
		}
	}
	if dels == 0 {
		return nil, false, fmt.Errorf("generators: no deletion extension at state %q; deletion-only chain undefined", s)
	}
	return out, true, nil
}

// Compile-time interface checks. WeightFunc is deliberately NOT Markovian:
// the user-supplied weight function receives the full state and may depend
// on its history, so it always takes the sequence-tree engine.
var (
	_ markov.Generator   = Uniform{}
	_ markov.Generator   = UniformDeletions{}
	_ markov.Generator   = WeightFunc{}
	_ markov.IntWeighter = Uniform{}
	_ markov.IntWeighter = UniformDeletions{}
	_ markov.Markovian   = Uniform{}
	_ markov.Markovian   = UniformDeletions{}
)
