package constraint

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/logic"
	"repro/internal/relation"
)

// mixedSet builds a constraint set covering all three classes over R/2,
// S/2, T/1: a key on R, a DC forbidding R(x,x), and the inclusion
// R(x,y) → ∃z S(y,z).
func mixedSet() *Set {
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	key := MustEGD(
		[]logic.Atom{logic.NewAtom("R", x, y), logic.NewAtom("R", x, z)},
		y, z,
	)
	dc := MustDC([]logic.Atom{logic.NewAtom("R", x, x)})
	tgd := MustTGD(
		[]logic.Atom{logic.NewAtom("R", x, y)},
		[]logic.Atom{logic.NewAtom("S", y, z)},
	)
	return NewSet(key, dc, tgd)
}

// randomDB draws a small random database over a tiny domain so that
// violations of all three constraints arise frequently.
func randomDB(rng *rand.Rand) *relation.Database {
	dom := []string{"a", "b", "c"}
	d := relation.NewDatabase()
	n := 1 + rng.Intn(6)
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0, 1:
			d.Insert(relation.NewFact("R", dom[rng.Intn(3)], dom[rng.Intn(3)]))
		default:
			d.Insert(relation.NewFact("S", dom[rng.Intn(3)], dom[rng.Intn(3)]))
		}
	}
	return d
}

// TestUpdateViolationsMatchesFull: the incremental maintenance agrees with
// the from-scratch computation over random databases and random updates of
// both polarities (the delta path is what the repair machinery trusts).
func TestUpdateViolationsMatchesFull(t *testing.T) {
	set := mixedSet()
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDB(rng)
		before := FindViolations(d, set)

		// Random update: insert or delete 1–2 facts.
		insert := rng.Intn(2) == 0
		var changed []relation.Fact
		dNew := d.Clone()
		k := 1 + rng.Intn(2)
		for i := 0; i < k; i++ {
			dom := []string{"a", "b", "c"}
			var f relation.Fact
			if rng.Intn(2) == 0 {
				f = relation.NewFact("R", dom[rng.Intn(3)], dom[rng.Intn(3)])
			} else {
				f = relation.NewFact("S", dom[rng.Intn(3)], dom[rng.Intn(3)])
			}
			if insert {
				if dNew.Insert(f) {
					changed = append(changed, f)
				}
			} else {
				if dNew.Delete(f) {
					changed = append(changed, f)
				}
			}
		}

		got := UpdateViolations(dNew, set, before, changed, insert)
		want := FindViolations(dNew, set)
		if got.Len() != want.Len() {
			t.Logf("seed %d: delta has %d violations, full has %d", seed, got.Len(), want.Len())
			return false
		}
		for _, v := range want.All() {
			if !got.Has(v.ID()) {
				t.Logf("seed %d: delta missing violation %s", seed, v.Key())
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestUpdateViolationsDeletionFastPath: EGD/DC deletions never invoke
// homomorphism search; spot-check the filtering on a concrete case.
func TestUpdateViolationsDeletionFastPath(t *testing.T) {
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	key := MustEGD(
		[]logic.Atom{logic.NewAtom("R", x, y), logic.NewAtom("R", x, z)},
		y, z,
	)
	set := NewSet(key)
	d := relation.FromFacts(
		relation.NewFact("R", "a", "b"),
		relation.NewFact("R", "a", "c"),
		relation.NewFact("R", "q", "r"),
		relation.NewFact("R", "q", "s"),
	)
	before := FindViolations(d, set)
	if before.Len() != 4 {
		t.Fatalf("before = %d violations, want 4", before.Len())
	}
	f := relation.NewFact("R", "a", "b")
	dNew := d.Clone()
	dNew.Delete(f)
	after := UpdateViolations(dNew, set, before, []relation.Fact{f}, false)
	if after.Len() != 2 {
		t.Fatalf("after = %d violations, want 2 (only the q pair)", after.Len())
	}
	for _, v := range after.All() {
		for _, bf := range v.BodyFacts() {
			if bf.ArgNames()[0] != "q" {
				t.Errorf("unexpected surviving violation %s", v.Key())
			}
		}
	}
}

// TestUpdateViolationsInsertionDelta: inserting a conflicting fact adds
// exactly the new violations.
func TestUpdateViolationsInsertionDelta(t *testing.T) {
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	key := MustEGD(
		[]logic.Atom{logic.NewAtom("R", x, y), logic.NewAtom("R", x, z)},
		y, z,
	)
	set := NewSet(key)
	d := relation.FromFacts(relation.NewFact("R", "a", "b"))
	before := FindViolations(d, set)
	if !before.Empty() {
		t.Fatal("single fact cannot violate the key")
	}
	f := relation.NewFact("R", "a", "c")
	dNew := d.Clone()
	dNew.Insert(f)
	after := UpdateViolations(dNew, set, before, []relation.Fact{f}, true)
	if after.Len() != 2 {
		t.Fatalf("after = %d violations, want 2 (both orientations)", after.Len())
	}
}

// TestUpdateViolationsDeltaTransition: on random transitions the reported
// eliminated and introduced sets are exactly the set differences against
// the from-scratch recompute, and TouchedFacts covers every fact whose
// component membership the transition can alter.
func TestUpdateViolationsDeltaTransition(t *testing.T) {
	set := mixedSet()
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDB(rng)
		before := FindViolations(d, set)

		insert := rng.Intn(2) == 0
		dom := []string{"a", "b", "c"}
		var f relation.Fact
		if rng.Intn(2) == 0 {
			f = relation.NewFact("R", dom[rng.Intn(3)], dom[rng.Intn(3)])
		} else {
			f = relation.NewFact("S", dom[rng.Intn(3)], dom[rng.Intn(3)])
		}
		dNew := d.Clone()
		var ok bool
		if insert {
			ok = dNew.Insert(f)
		} else {
			ok = dNew.Delete(f)
		}
		if !ok {
			return true // no-op update, nothing to check
		}
		changed := []relation.Fact{f}

		after, elim, intro := UpdateViolationsDelta(dNew, set, before, changed, insert)
		want := FindViolations(dNew, set)
		wantElim := before.Minus(want)
		wantIntro := want.Minus(before)
		if !sameViolations(elim, wantElim) {
			t.Logf("seed %d: eliminated = %v, want %v", seed, ids(elim), ids(wantElim))
			return false
		}
		if !sameViolations(intro, wantIntro) {
			t.Logf("seed %d: introduced = %v, want %v", seed, ids(intro), ids(wantIntro))
			return false
		}
		touched := TouchedFacts(changed, elim, intro)
		has := func(x relation.Fact) bool {
			for _, g := range touched {
				if g == x {
					return true
				}
			}
			return false
		}
		if !has(f) {
			t.Logf("seed %d: touched set misses the changed fact", seed)
			return false
		}
		for _, v := range append(append([]Violation{}, elim...), intro...) {
			for _, bf := range v.BodyFacts() {
				if !has(bf) {
					t.Logf("seed %d: touched set misses body fact %s", seed, bf)
					return false
				}
			}
		}
		_ = after
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func ids(vs []Violation) []uint64 {
	out := make([]uint64, len(vs))
	for i, v := range vs {
		out[i] = v.ID()
	}
	return out
}

func sameViolations(got, want []Violation) bool {
	if len(got) != len(want) {
		return false
	}
	seen := map[uint64]int{}
	for _, v := range got {
		seen[v.ID()]++
	}
	for _, v := range want {
		if seen[v.ID()] == 0 {
			return false
		}
		seen[v.ID()]--
	}
	return true
}

// TestUpdateViolationsUnrelatedPredicate: updates to predicates outside
// every constraint leave the violation set untouched.
func TestUpdateViolationsUnrelatedPredicate(t *testing.T) {
	set := mixedSet()
	d := relation.FromFacts(
		relation.NewFact("R", "a", "b"),
		relation.NewFact("R", "a", "c"),
	)
	before := FindViolations(d, set)
	f := relation.NewFact("Unrelated", "w")
	dNew := d.Clone()
	dNew.Insert(f)
	after := UpdateViolations(dNew, set, before, []relation.Fact{f}, true)
	if after.Len() != before.Len() {
		t.Errorf("unrelated insert changed violations: %d vs %d", after.Len(), before.Len())
	}
}
