package relation

import "testing"

// TestSealedCompact: Sealed tracks the copy-on-write delta, and Compact
// folds it only past the limit — the publication policy long-lived writers
// (internal/serve) rely on to keep reader clones O(delta).
func TestSealedCompact(t *testing.T) {
	d := FromFacts(NewFact("R", "a", "b"), NewFact("R", "c", "d"))
	d.Seal()
	if !d.Sealed() {
		t.Fatal("sealed database does not report sealed")
	}
	c := d.Clone()
	c.Insert(NewFact("R", "e", "f"))
	if c.Sealed() {
		t.Fatal("clone with a pending insert reports sealed")
	}
	if c.Compact(8) {
		t.Fatal("Compact folded below the limit")
	}
	if c.Sealed() {
		t.Fatal("Compact below the limit must not seal")
	}
	if !c.Compact(0) {
		t.Fatal("Compact above the limit did not fold")
	}
	if !c.Sealed() || c.DeltaSize() != 0 {
		t.Fatalf("after Compact: sealed=%v delta=%d", c.Sealed(), c.DeltaSize())
	}
	if c.Size() != 3 || !c.Contains(NewFact("R", "e", "f")) {
		t.Fatal("Compact lost facts")
	}
	if d.Size() != 2 {
		t.Fatal("Compact of the clone disturbed the parent")
	}
}
