package prob

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSum(t *testing.T) {
	if !IsZero(Sum(nil)) {
		t.Error("empty sum must be 0")
	}
	s := Sum([]*big.Rat{R(1, 2), R(1, 3), R(1, 6)})
	if !IsOne(s) {
		t.Errorf("1/2+1/3+1/6 = %s, want 1", s.RatString())
	}
}

func TestNormalize(t *testing.T) {
	ps, err := Normalize([]*big.Rat{R(1, 1), R(3, 1)})
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if ps[0].Cmp(R(1, 4)) != 0 || ps[1].Cmp(R(3, 4)) != 0 {
		t.Errorf("Normalize = %s, %s", ps[0].RatString(), ps[1].RatString())
	}
	if !SumsToOne(ps) {
		t.Error("normalized weights must sum to 1")
	}
}

func TestNormalizeErrors(t *testing.T) {
	if _, err := Normalize([]*big.Rat{Zero(), Zero()}); err == nil {
		t.Error("all-zero weights must fail")
	}
	if _, err := Normalize([]*big.Rat{R(-1, 2), R(3, 2)}); err == nil {
		t.Error("negative weight must fail")
	}
}

func TestNormalizeDoesNotMutateInput(t *testing.T) {
	in := []*big.Rat{R(2, 1), R(2, 1)}
	if _, err := Normalize(in); err != nil {
		t.Fatal(err)
	}
	if in[0].Cmp(R(2, 1)) != 0 {
		t.Error("Normalize mutated its input")
	}
}

func TestInUnit(t *testing.T) {
	for _, tc := range []struct {
		r    *big.Rat
		want bool
	}{
		{Zero(), true}, {One(), true}, {R(1, 2), true},
		{R(-1, 2), false}, {R(3, 2), false},
	} {
		if got := InUnit(tc.r); got != tc.want {
			t.Errorf("InUnit(%s) = %v, want %v", tc.r.RatString(), got, tc.want)
		}
	}
}

func TestFormat(t *testing.T) {
	if got := Format(R(9, 20)); got != "9/20 (0.4500)" {
		t.Errorf("Format(9/20) = %q", got)
	}
	if got := Format(R(2, 1)); got != "2 (2.0000)" {
		t.Errorf("Format(2) = %q", got)
	}
}

func TestHoeffdingSamplesPaperValue(t *testing.T) {
	// The paper: "for ε = δ = 0.1, it is 150".
	n, err := HoeffdingSamples(0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 150 {
		t.Errorf("n(0.1, 0.1) = %d, want 150", n)
	}
}

func TestHoeffdingSamplesTable(t *testing.T) {
	cases := []struct {
		eps, delta float64
		want       int
	}{
		{0.05, 0.1, 600},
		{0.1, 0.05, 185}, // ceil(ln(40)/0.02) = ceil(184.44)
		{0.2, 0.2, 29},   // ceil(ln(10)/0.08) = ceil(28.78)
		{0.01, 0.01, 26492},
	}
	for _, tc := range cases {
		n, err := HoeffdingSamples(tc.eps, tc.delta)
		if err != nil {
			t.Fatal(err)
		}
		if n != tc.want {
			t.Errorf("n(%v, %v) = %d, want %d", tc.eps, tc.delta, n, tc.want)
		}
	}
}

func TestHoeffdingSamplesErrors(t *testing.T) {
	for _, tc := range [][2]float64{{0, 0.1}, {-1, 0.1}, {0.1, 0}, {0.1, 1}, {0.1, 2}} {
		if _, err := HoeffdingSamples(tc[0], tc[1]); err == nil {
			t.Errorf("HoeffdingSamples(%v, %v) must fail", tc[0], tc[1])
		}
	}
}

func TestHoeffdingBoundIsSufficient(t *testing.T) {
	// The defining inequality: 2·exp(−2nε²) ≤ δ at the returned n.
	f := func(e, d float64) bool {
		eps := 0.01 + math.Mod(math.Abs(e), 0.5)
		delta := 0.01 + math.Mod(math.Abs(d), 0.9)
		n, err := HoeffdingSamples(eps, delta)
		if err != nil {
			return false
		}
		return 2*math.Exp(-2*float64(n)*eps*eps) <= delta+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPickRespectsZeroWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ws := []*big.Rat{Zero(), R(1, 2), Zero(), R(1, 2), Zero()}
	for i := 0; i < 200; i++ {
		idx := Pick(rng, ws)
		if idx != 1 && idx != 3 {
			t.Fatalf("picked zero-weight index %d", idx)
		}
	}
}

func TestPickDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ws := []*big.Rat{R(1, 4), R(3, 4)}
	n := 20000
	count := 0
	for i := 0; i < n; i++ {
		if Pick(rng, ws) == 1 {
			count++
		}
	}
	got := float64(count) / float64(n)
	if math.Abs(got-0.75) > 0.02 {
		t.Errorf("Pick frequency of index 1 = %.3f, want ≈ 0.75", got)
	}
}

func TestPickUnnormalizedWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ws := []*big.Rat{R(2, 1), R(6, 1)} // 1/4 vs 3/4 after normalization
	n := 20000
	count := 0
	for i := 0; i < n; i++ {
		if Pick(rng, ws) == 1 {
			count++
		}
	}
	got := float64(count) / float64(n)
	if math.Abs(got-0.75) > 0.02 {
		t.Errorf("Pick frequency = %.3f, want ≈ 0.75", got)
	}
}

func TestPickPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pick over zero weights must panic")
		}
	}()
	Pick(rand.New(rand.NewSource(1)), []*big.Rat{Zero()})
}

func TestAbsDiff(t *testing.T) {
	if d := AbsDiff(0.5, R(1, 4)); math.Abs(d-0.25) > 1e-12 {
		t.Errorf("AbsDiff = %v", d)
	}
}

// TestPickBigIntMatchesPickInt: for weights that fit in int64, PickBigInt
// must return exactly the index PickInt returns from the same RNG draw (and
// hence the index Pick returns for the rational weights) — randomized over
// weight vectors including zeros and weights large enough to exercise the
// 128-bit comparison.
func TestPickBigIntMatchesPickInt(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		k := 1 + rng.Intn(6)
		ws := make([]int64, k)
		bigWs := make([]*big.Int, k)
		positive := false
		for i := range ws {
			switch rng.Intn(3) {
			case 0:
				ws[i] = 0
			case 1:
				ws[i] = 1 + rng.Int63n(10)
			default:
				ws[i] = 1 + rng.Int63n(1<<40)
			}
			if ws[i] > 0 {
				positive = true
			}
			bigWs[i] = big.NewInt(ws[i])
		}
		if !positive {
			ws[0], bigWs[0] = 1, big.NewInt(1)
		}
		seed := rng.Int63()
		a := PickInt(rand.New(rand.NewSource(seed)), ws)
		b := PickBigInt(rand.New(rand.NewSource(seed)), bigWs)
		if a != b {
			t.Fatalf("trial %d: PickInt = %d, PickBigInt = %d for %v", trial, a, b, ws)
		}
	}
}

// TestPickBigIntHugeWeights: weights beyond int64 must still partition the
// draw space proportionally — a weight-2^80 entry next to a weight-2^78
// entry should be drawn about 4 times as often.
func TestPickBigIntHugeWeights(t *testing.T) {
	big0 := new(big.Int).Lsh(big.NewInt(1), 80)
	big1 := new(big.Int).Lsh(big.NewInt(1), 78)
	ws := []*big.Int{big0, big1}
	rng := rand.New(rand.NewSource(2))
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if PickBigInt(rng, ws) == 0 {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.8) > 0.02 {
		t.Fatalf("P(index 0) = %f, want 0.8", got)
	}
}

// TestPickBigIntPanicsOnBadInput mirrors the Pick/PickInt contracts.
func TestPickBigIntPanicsOnBadInput(t *testing.T) {
	for _, ws := range [][]*big.Int{
		nil,
		{big.NewInt(0)},
		{big.NewInt(-1), big.NewInt(2)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("PickBigInt(%v) did not panic", ws)
				}
			}()
			PickBigInt(rand.New(rand.NewSource(1)), ws)
		}()
	}
}
