package markov

import (
	"errors"
	"fmt"
	"math/big"
	"runtime"
	"sort"
	"sync"

	"repro/internal/ops"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/repair"
)

// This file implements the DAG-collapsed exact engine. The sequence tree of
// Definition 5 distinguishes states by their whole history, so it is
// factorial in the number of operations; but for a Collapsible chain
// (memoryless generator, TGD-free constraints) states with equal databases
// are interchangeable, and the tree quotients into a DAG whose nodes are
// the distinct reachable sub-databases. The engine accumulates each node's
// incoming path mass π (and the number of sequences reaching it) and pushes
// mass along edges computed once per node, instead of once per sequence
// prefix.
//
// Topological order comes for free: every operation of a TGD-free chain is
// a deletion, so each edge strictly shrinks the database and the nodes
// partition into levels by database size. A node's mass is complete once
// every strictly larger level has been processed, so the engine sweeps
// sizes downward.
//
// States are merged by the packed binary Database.IDKey encoding, derived
// incrementally: each state caches its sorted fact ids (repair.FactIDs) and
// a child's key is the parent's minus the deleted entry — one binary search
// plus two packed runs (State.AppendChildIDKey), never a re-enumeration of
// the database. The human-readable Database.Key() appears only at the
// presentation boundary: DAGLeaf.Key is converted once per absorbing
// database when the leaf is emitted.
//
// Each level is processed in three phases. Phase 1 (parallel): every
// frontier node resolves its edges via Step and derives each edge's packed
// child key into a per-node byte arena — no child states yet. Phase 2
// (sequential, sorted-key order): edges are merged into child nodes,
// accumulating π with the small-rational fast path (prob.Rat) and sequence
// counts, and recording, for every *distinct* new child database, the
// deterministic (first in merge order) parent edge that creates it. Phase 3
// (parallel): only those creator edges materialize child states via
// repair.Child — one state per distinct database instead of one per edge.
// Phase 2's merge order is independent of scheduling and exact rational
// arithmetic is order-insensitive, so the result is bit-identical for every
// worker count. Once a level is merged its non-absorbing states are
// dropped, so retained memory tracks the live frontier (plus the witness
// chains pinned by it), not the whole DAG.
//
// The propagated per-leaf sequence counts are load-bearing beyond
// statistics: the sequence-uniform semantics (core.ComputeDAGMode with
// SequenceUniform) weighs each repair by Sequences/ΣSequences, and
// seqdag.go runs the mirror-image upward sweep over the same structure to
// sample complete sequences uniformly.

// ErrNotCollapsible is returned when ExploreDAG is asked to collapse a
// chain whose states are not interchangeable by database: a generator that
// does not declare Markovian memorylessness, or a constraint set with TGDs
// (whose histories prune extensions). Callers should fall back to Explore.
var ErrNotCollapsible = errors.New("markov: chain does not collapse to a DAG; use the sequence-tree engine")

// DAGLeaf is one absorbing database of the collapsed chain: a witness
// absorbing state (one representative sequence producing the database), the
// database's canonical string key (converted from the engine's packed merge
// key once, here, so consumers need not re-encode the database), the total
// hitting mass, and the number of absorbing sequences the sequence tree
// would enumerate for it.
type DAGLeaf struct {
	State     *repair.State
	Key       string // State.Result().Key()
	Pi        *big.Rat
	Sequences *big.Int
	// SeqsByLength[l] counts the absorbing sequences of length l producing
	// this database; Σ_l SeqsByLength[l] = Sequences. It is populated only
	// when ExploreOptions.TrackLengths is set (nil otherwise).
	SeqsByLength []*big.Int
}

// DAG summarizes a collapsed exploration.
type DAG struct {
	// Leaves lists the absorbing databases in deterministic order, one
	// entry per distinct result (leaves are merged by database identity, so
	// no two entries share a database).
	Leaves []DAGLeaf
	// States counts the distinct databases visited, including the root;
	// this is the quantity that replaces the tree's sequence count.
	States int
	// Edges counts the positive-probability transitions of the DAG.
	Edges int
	// Sequences is the total number of absorbing sequences of the
	// underlying tree (Σ leaf sequence counts) — the size of the
	// exploration the collapse avoided.
	Sequences *big.Int
}

// dagNode accumulates a distinct state's incoming mass until its level is
// processed. Nodes are carved from slabs (takeNode) and recycled through a
// free list once their level is merged — absorbing nodes included, whose
// accumulators are copied out into the emitted DAGLeaf first — so nothing
// a node owns outlives the exploration and the embedded seqs big.Int keeps
// its storage across reuses.
type dagNode struct {
	state *repair.State
	// key is the node's packed id key — the same string the level map is
	// keyed by, so retaining it costs a pointer (seqdag.go relies on this
	// sharing for its child references).
	key  string
	pi   prob.Rat
	seqs big.Int
	// seqsByLen[l] counts the sequences of length l reaching the node; only
	// maintained under ExploreOptions.TrackLengths.
	seqsByLen []*big.Int
}

// expansion is phase 1's per-node result: the node's outgoing edges and the
// packed id key of each edge's child database, derived incrementally from
// the parent (no child state is materialized here). keyOff[j]:keyOff[j+1]
// bounds edge j's key in arena; both arena and keyOff are reused across
// levels.
type expansion struct {
	edges  []ratEdge
	keyOff []int
	arena  []byte
	err    error
}

// childKey returns edge j's packed child database key.
func (exp *expansion) childKey(j int) []byte {
	return exp.arena[exp.keyOff[j]:exp.keyOff[j+1]]
}

// creator records the deterministic (parent, op) edge chosen to materialize
// a distinct child database's state in phase 3.
type creator struct {
	parent *dagNode
	child  *dagNode
	op     ops.Op
}

// ExploreDAG explores the support of a Collapsible chain M_Σ(D) merged by
// database and returns its absorbing databases with exact hitting
// probabilities. The leaf masses sum to exactly 1 (Proposition 3 survives
// the quotient: merging states preserves total mass). opt.MaxStates bounds
// the number of distinct databases; opt.Workers sizes the per-level worker
// pool. The result is bit-identical for every worker count.
func ExploreDAG(inst *repair.Instance, g Generator, opt ExploreOptions) (*DAG, error) {
	if !Collapsible(inst, g) {
		return nil, fmt.Errorf("%w (generator %s)", ErrNotCollapsible, g.Name())
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	root := inst.Root()
	rootSize := root.Result().Size()
	rootKey := string(relation.AppendIDKey(make([]byte, 0, 4*rootSize), root.FactIDs()))
	rootNode := &dagNode{state: root, key: rootKey, pi: prob.RatOne()}
	rootNode.seqs.SetInt64(1)
	if opt.TrackLengths {
		rootNode.seqsByLen = []*big.Int{big.NewInt(1)} // the empty sequence
	}
	// levels[n] holds the pending nodes whose database has n facts; edges
	// only shrink the database, so sizes range over [0, rootSize] and a
	// slice indexed by size replaces a map of levels.
	levels := make([]map[string]*dagNode, rootSize+1)
	levels[rootSize] = map[string]*dagNode{rootKey: rootNode}
	dag := &DAG{States: 1, Sequences: new(big.Int)}

	// Per-level scratch, reused across the sweep: the sorted frontier, its
	// expansions (each with its key arena), the new-database creator list,
	// and the dagNode free list.
	var (
		nodes    []*dagNode
		exps     []expansion
		creators []creator
		arena    nodeArena
		// total accumulates the emitted leaf mass for the Proposition 3
		// sanity check, entirely on the small-rational fast path.
		total prob.Rat
	)

	for size := rootSize; size >= 0; size-- {
		level := levels[size]
		levels[size] = nil
		if len(level) == 0 {
			continue
		}
		nodes = nodes[:0]
		for _, n := range level {
			nodes = append(nodes, n)
		}
		// Sequential merge in sorted-key order: deterministic leaf order
		// and mass accumulation independent of scheduling.
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].key < nodes[j].key })

		exps = expandLevel(g, nodes, exps, workers)

		creators = creators[:0]
		for i, n := range nodes {
			exp := &exps[i]
			if exp.err != nil {
				return nil, exp.err
			}
			if len(exp.edges) == 0 {
				// Absorbing: convert the packed merge key to the canonical
				// string key — the engine's only legacy-key encoding, once
				// per distinct absorbing database — and copy the accumulators
				// out, so the node itself can be recycled below.
				dag.Leaves = append(dag.Leaves, DAGLeaf{
					State: n.state, Key: n.state.Result().Key(), Pi: n.pi.Big(),
					Sequences: new(big.Int).Set(&n.seqs), SeqsByLength: n.seqsByLen,
				})
				dag.Sequences.Add(dag.Sequences, &n.seqs)
				total.Add(&n.pi)
				continue
			}
			for j := range exp.edges {
				e := &exp.edges[j]
				ck := exp.childKey(j)
				csize := len(ck) / 4
				if csize >= size {
					// Cannot happen for a TGD-free chain (every op deletes);
					// guard the topological order rather than corrupt masses.
					return nil, fmt.Errorf("%w: operation %s grew the database", ErrNotCollapsible, e.op)
				}
				dag.Edges++
				lvl := levels[csize]
				if lvl == nil {
					lvl = map[string]*dagNode{}
					levels[csize] = lvl
				}
				cn, ok := lvl[string(ck)] // compiles to a no-alloc lookup
				if !ok {
					cn = arena.take()
					cn.key = string(ck) // the one key allocation per distinct database
					lvl[cn.key] = cn
					creators = append(creators, creator{parent: n, child: cn, op: e.op})
					dag.States++
					if opt.MaxStates > 0 && dag.States > opt.MaxStates {
						return nil, ErrStateBudget
					}
				}
				cn.pi.AddMulRat(&n.pi, &e.p)
				cn.seqs.Add(&cn.seqs, &n.seqs)
				if opt.TrackLengths {
					// Every edge is one operation: sequences of length l at
					// the parent extend to length l+1 at the child.
					for len(cn.seqsByLen) < len(n.seqsByLen)+1 {
						cn.seqsByLen = append(cn.seqsByLen, new(big.Int))
					}
					for l, cnt := range n.seqsByLen {
						cn.seqsByLen[l+1].Add(cn.seqsByLen[l+1], cnt)
					}
				}
			}
		}

		materializeStates(creators, workers)

		// The level is merged: recycle every node and drop its state, so
		// peak memory tracks the frontier. (Whatever a leaf's DAGLeaf needs
		// was copied out or detached at emission.)
		for _, n := range nodes {
			n.state = nil
			n.key = ""
			n.pi = prob.Rat{}
			n.seqs.SetInt64(0)
			n.seqsByLen = nil
			arena.free = append(arena.free, n)
		}
	}

	if !total.IsOne() {
		return nil, fmt.Errorf("%w: hitting distribution sums to %s", ErrNotWellDefined, total.Big().RatString())
	}
	return dag, nil
}

// nodeArena hands out dagNodes from a free list (recycled merged levels)
// or geometrically growing slabs: tiny chains — the factored engine
// explores thousands of few-state components — pay for a handful of
// nodes, while large frontiers amortize to one allocation per slab. Nodes
// never escape the exploration (leaves copy their accumulators out), so
// pinning a slab until the run ends costs nothing extra.
type nodeArena struct {
	free []*dagNode
	slab []dagNode
	size int
}

func (a *nodeArena) take() *dagNode {
	if n := len(a.free); n > 0 {
		nd := a.free[n-1]
		a.free = a.free[:n-1]
		return nd
	}
	if len(a.slab) == 0 {
		switch {
		case a.size == 0:
			a.size = 8
		case a.size < 256:
			a.size *= 4
		}
		a.slab = make([]dagNode, a.size)
	}
	nd := &a.slab[0]
	a.slab = a.slab[1:]
	return nd
}

// expandLevel is phase 1: every node of the frontier resolves its edges via
// Step and derives each edge's packed child database key into the node's
// reused arena. Nodes are independent — each worker owns its node and only
// reads the shared instance caches — so the level splits across
// min(workers, len(nodes)) goroutines. exps is scratch from the previous
// level; it is grown as needed and returned.
func expandLevel(g Generator, nodes []*dagNode, exps []expansion, workers int) []expansion {
	if cap(exps) < len(nodes) {
		exps = append(exps[:cap(exps)], make([]expansion, len(nodes)-cap(exps))...)
	}
	exps = exps[:len(nodes)]
	expand := func(i int) {
		n, exp := nodes[i], &exps[i]
		exp.err = nil
		exp.arena = exp.arena[:0]
		exp.keyOff = append(exp.keyOff[:0], 0)
		edges, err := stepRats(g, n.state, exp.edges[:0])
		exp.edges = edges
		if err != nil {
			exp.err = err
			return
		}
		for i := range edges {
			exp.arena = n.state.AppendChildIDKey(exp.arena, edges[i].op)
			exp.keyOff = append(exp.keyOff, len(exp.arena))
		}
	}
	// Narrow frontiers (the first and last few levels of every chain, and
	// all of a small chain) are cheaper to expand inline than to fan out.
	const minParallelLevel = 16
	if workers > len(nodes) {
		workers = len(nodes)
	}
	if workers <= 1 || len(nodes) < minParallelLevel {
		for i := range nodes {
			expand(i)
		}
		return exps
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				expand(i)
			}
		}()
	}
	for i := range nodes {
		next <- i
	}
	close(next)
	wg.Wait()
	return exps
}

// materializeStates is phase 3: each distinct new child database gets its
// state from its recorded creator edge. Creators may share a parent state;
// repair.Child only reads the parent (its id and extension caches were
// warmed single-owner in phase 1), so the fan-out is safe. After the pool
// drains, every new state's sorted fact ids — exactly the decode of its
// packed merge key — are carved from one per-level arena and seeded with
// SetFactIDs, so the next level's key derivations never write lazily (and
// never allocate per state).
func materializeStates(creators []creator, workers int) {
	mk := func(i int) {
		c := &creators[i]
		c.child.state = c.parent.state.Child(c.op)
	}
	defer func() {
		total := 0
		for i := range creators {
			total += len(creators[i].child.key) / 4
		}
		arena := make([]uint32, 0, total)
		for i := range creators {
			start := len(arena)
			k := creators[i].child.key
			for j := 0; j+4 <= len(k); j += 4 {
				arena = append(arena, uint32(k[j])<<24|uint32(k[j+1])<<16|uint32(k[j+2])<<8|uint32(k[j+3]))
			}
			creators[i].child.state.SetFactIDs(arena[start:len(arena):len(arena)])
		}
	}()
	const minParallel = 16
	if workers > len(creators) {
		workers = len(creators)
	}
	if workers <= 1 || len(creators) < minParallel {
		for i := range creators {
			mk(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				mk(i)
			}
		}()
	}
	for i := range creators {
		next <- i
	}
	close(next)
	wg.Wait()
}
