package sampling_test

import (
	"fmt"
	"math/big"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/generators"
	"repro/internal/logic"
	"repro/internal/markov"
	"repro/internal/ops"
	"repro/internal/prob"
	"repro/internal/repair"
	"repro/internal/sampling"
	"repro/internal/workload"
)

func edgeQuery() *fo.Query {
	x, y := logic.Var("x"), logic.Var("y")
	return fo.MustQuery("Q", []logic.Term{x, y}, fo.Atom{A: logic.NewAtom("E", x, y)})
}

func keysUniformQuery() *fo.Query {
	x, y := logic.Var("x"), logic.Var("y")
	return fo.MustQuery("Keys", []logic.Term{x},
		fo.Exists{Vars: []logic.Term{y}, F: fo.Atom{A: logic.NewAtom("R", x, y)}})
}

// TestUniformEstimatorWithinHoeffding: the count-guided uniform estimator
// draws exactly uniform sequences, so the Theorem 9 additive (ε,δ) bound
// applies to the uniform semantics. Check against the exact uniform CP on
// factorizing key instances and on the chain family, with the seed fixed
// and the tolerance at the guarantee's ε.
func TestUniformEstimatorWithinHoeffding(t *testing.T) {
	const eps, delta = 0.1, 0.05
	cases := []struct {
		label string
		inst  *repair.Instance
		q     *fo.Query
	}{}
	for _, keys := range []int{2, 4, 6} {
		d, sigma := workload.KeyViolations(workload.KeyConfig{Keys: keys, Violations: keys, Seed: 3})
		cases = append(cases, struct {
			label string
			inst  *repair.Instance
			q     *fo.Query
		}{fmt.Sprintf("keys=%d", keys), repair.MustInstance(d, sigma), keysUniformQuery()})
	}
	for _, facts := range []int{3, 6} {
		d, sigma := workload.Chain(workload.ChainConfig{Facts: facts})
		cases = append(cases, struct {
			label string
			inst  *repair.Instance
			q     *fo.Query
		}{fmt.Sprintf("chain=%d", facts), repair.MustInstance(d, sigma), edgeQuery()})
	}
	for _, tc := range cases {
		exact, err := core.ComputeMode(tc.inst, generators.Uniform{}, markov.ExploreOptions{}, core.SequenceUniform)
		if err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		est := &sampling.Estimator{Inst: tc.inst, Gen: generators.Uniform{}, Seed: 11, Mode: core.SequenceUniform}
		run, err := est.EstimateAnswers(tc.q, eps, delta)
		if err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		if run.Weighted {
			t.Fatalf("%s: collapsible chain took the SNIS fallback", tc.label)
		}
		if run.TotalSequences == nil || run.TotalSequences.Cmp(exact.TotalSequences) != 0 {
			t.Fatalf("%s: sampler support %v, exact %s", tc.label, run.TotalSequences, exact.TotalSequences)
		}
		for _, a := range exact.OCA(tc.q).Answers {
			got := run.Lookup(a.Tuple).Conditional
			if diff := prob.AbsDiff(got, a.P); diff > eps {
				t.Fatalf("%s: tuple %v: estimate %f, exact %s (diff %f > ε)", tc.label, a.Tuple, got, a.P.RatString(), diff)
			}
		}
	}
}

// uniformNoClaim behaves exactly like generators.Uniform but does not
// declare Markovian memorylessness, forcing the estimator onto the SNIS
// fallback while keeping the target distribution identical — so the
// fallback can be checked against the same exact uniform semantics.
type uniformNoClaim struct{}

func (uniformNoClaim) Name() string { return "uniform-undeclared" }

func (uniformNoClaim) Transitions(s *repair.State, exts []ops.Op) ([]*big.Rat, error) {
	return generators.Uniform{}.Transitions(s, exts)
}

// TestUniformEstimatorSNISFallback: a non-collapsible chain (the generator
// hides its memorylessness) must route through self-normalized importance
// sampling and still converge to the exact uniform semantics. SNIS has no
// finite-sample guarantee, so the check uses a large n and a loose
// tolerance, plus the Run metadata contract.
func TestUniformEstimatorSNISFallback(t *testing.T) {
	d, sigma := workload.Chain(workload.ChainConfig{Facts: 4})
	inst := repair.MustInstance(d, sigma)
	q := edgeQuery()
	exact, err := core.ComputeMode(inst, uniformNoClaim{}, markov.ExploreOptions{}, core.SequenceUniform)
	if err != nil {
		t.Fatal(err)
	}
	est := &sampling.Estimator{Inst: inst, Gen: uniformNoClaim{}, Seed: 5, Mode: core.SequenceUniform}
	run, err := est.EstimateWithN(q, 6000)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Weighted {
		t.Fatal("non-collapsible chain must take the weighted SNIS path")
	}
	if run.TotalSequences != nil {
		t.Fatal("SNIS runs must not claim an exact support size")
	}
	if run.ESS <= 0 || run.ESS > float64(run.N) {
		t.Fatalf("ESS = %f out of (0, N]", run.ESS)
	}
	for _, a := range exact.OCA(q).Answers {
		got := run.Lookup(a.Tuple).Conditional
		if diff := prob.AbsDiff(got, a.P); diff > 0.05 {
			t.Fatalf("tuple %v: SNIS estimate %f, exact %s (diff %f)", a.Tuple, got, a.P.RatString(), diff)
		}
	}
}

// TestUniformEstimatorDeterministicAcrossWorkerCounts: both uniform paths
// must produce bit-identical Runs for every worker count — the count-guided
// path via per-walk RNGs, the SNIS path additionally via the index-ordered
// floating-point merge.
func TestUniformEstimatorDeterministicAcrossWorkerCounts(t *testing.T) {
	d, sigma := workload.KeyViolations(workload.KeyConfig{Keys: 5, Violations: 4, Seed: 9})
	inst := repair.MustInstance(d, sigma)
	q := keysUniformQuery()
	for _, gen := range []markov.Generator{generators.Uniform{}, uniformNoClaim{}} {
		var base *sampling.Run
		for workers := 1; workers <= 8; workers++ {
			est := &sampling.Estimator{
				Inst: inst, Gen: gen, Seed: 23, Workers: workers,
				Mode: core.SequenceUniform,
			}
			run, err := est.EstimateWithN(q, 301)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", gen.Name(), workers, err)
			}
			if base == nil {
				base = run
				continue
			}
			if !reflect.DeepEqual(base, run) {
				t.Fatalf("%s: workers=%d differs from workers=1", gen.Name(), workers)
			}
		}
	}
}

// TestUniformEstimatorMatchesWalkModeOnSymmetric: on a perfectly symmetric
// instance the walk-induced and uniform semantics coincide, so the two
// estimator modes must agree within sampling noise — a cheap cross-check
// that the uniform path estimates the right thing.
func TestUniformEstimatorMatchesWalkModeOnSymmetric(t *testing.T) {
	d, sigma := workload.KeyViolations(workload.KeyConfig{Keys: 1, Violations: 1, Seed: 1})
	inst := repair.MustInstance(d, sigma)
	q := keysUniformQuery()
	walk := &sampling.Estimator{Inst: inst, Gen: generators.Uniform{}, Seed: 3}
	uni := &sampling.Estimator{Inst: inst, Gen: generators.Uniform{}, Seed: 3, Mode: core.SequenceUniform}
	rw, err := walk.EstimateWithN(q, 2000)
	if err != nil {
		t.Fatal(err)
	}
	ru, err := uni.EstimateWithN(q, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rw.Estimates {
		if diff := e.P - ru.Lookup(e.Tuple).P; diff > 0.05 || diff < -0.05 {
			t.Fatalf("tuple %v: walk %f vs uniform %f", e.Tuple, e.P, ru.Lookup(e.Tuple).P)
		}
	}
}
