package parse

import (
	"fmt"
	"unicode"
	"unicode/utf8"

	"repro/internal/constraint"
	"repro/internal/fo"
	"repro/internal/logic"
	"repro/internal/relation"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func newParser(src string) (*parser, *Error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	return &parser{toks: toks}, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...any) *Error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(kind tokenKind) (token, *Error) {
	t := p.next()
	if t.kind != kind {
		return token{}, p.errf(t, "expected %s, found %s %q", kind, t.kind, t.text)
	}
	return t, nil
}

// isVariableName applies the case convention: leading uppercase (or '_')
// means variable.
func isVariableName(s string) bool {
	r, _ := utf8.DecodeRuneInString(s)
	return r == '_' || unicode.IsUpper(r)
}

// term parses a single term: identifier (variable or constant by case),
// quoted string, or number (constants).
func (p *parser) term() (logic.Term, *Error) {
	t := p.next()
	switch t.kind {
	case tokIdent:
		if isVariableName(t.text) {
			return logic.Var(t.text), nil
		}
		return logic.Const(t.text), nil
	case tokString, tokNumber:
		return logic.Const(t.text), nil
	default:
		return logic.Term{}, p.errf(t, "expected a term, found %s %q", t.kind, t.text)
	}
}

// atom parses pred(t1, ..., tn). The predicate is any identifier.
func (p *parser) atom() (logic.Atom, *Error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return logic.Atom{}, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return logic.Atom{}, err
	}
	var args []logic.Term
	if p.peek().kind != tokRParen {
		for {
			t, err := p.term()
			if err != nil {
				return logic.Atom{}, err
			}
			args = append(args, t)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return logic.Atom{}, err
	}
	if len(args) == 0 {
		return logic.Atom{}, p.errf(name, "predicate %s must have at least one argument", name.text)
	}
	return logic.NewAtom(name.text, args...), nil
}

// atomList parses atom {',' atom}.
func (p *parser) atomList() ([]logic.Atom, *Error) {
	var out []logic.Atom
	for {
		a, err := p.atom()
		if err != nil {
			return nil, err
		}
		out = append(out, a)
		if p.peek().kind != tokComma {
			return out, nil
		}
		p.next()
	}
}

// Database parses a list of facts, each terminated by a dot:
//
//	Pref(a, b). Pref(a, c).
//	R("quoted constant", 42).
func Database(src string) (*relation.Database, error) {
	p, perr := newParser(src)
	if perr != nil {
		return nil, perr
	}
	d := relation.NewDatabase()
	for p.peek().kind != tokEOF {
		a, err := p.atom()
		if err != nil {
			return nil, err
		}
		f, ferr := relation.FactFromAtom(a)
		if ferr != nil {
			return nil, p.errf(p.peek(), "fact %s contains variables", a)
		}
		d.Insert(f)
		if _, err := p.expect(tokDot); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Constraints parses a constraint set, one statement per dot:
//
//	R(X, Y), R(X, Z) -> Y = Z.            # EGD (key)
//	R(X, Y) -> exists Z: S(Z, X).         # TGD (explicit existentials)
//	T(X, Y) -> R(X, Y).                   # TGD (full)
//	Pref(X, Y), Pref(Y, X) -> false.      # DC
//	!(Pref(X, Y), Pref(Y, X)).            # DC, alternative syntax
//
// Head variables absent from the body are implicitly existential even
// without the 'exists' keyword.
func Constraints(src string) (*constraint.Set, error) {
	p, perr := newParser(src)
	if perr != nil {
		return nil, perr
	}
	set := constraint.NewSet()
	for p.peek().kind != tokEOF {
		c, err := p.constraintStmt()
		if err != nil {
			return nil, err
		}
		set.Add(c)
		if _, err := p.expect(tokDot); err != nil {
			return nil, err
		}
	}
	return set, nil
}

func (p *parser) constraintStmt() (*constraint.Constraint, *Error) {
	// Denial syntax: !(atoms)
	if p.peek().kind == tokBang {
		bang := p.next()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		body, err := p.atomList()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		c, cerr := constraint.NewDC(body)
		if cerr != nil {
			return nil, p.errf(bang, "%v", cerr)
		}
		return c, nil
	}

	body, err := p.atomList()
	if err != nil {
		return nil, err
	}
	arrow, err := p.expect(tokArrow)
	if err != nil {
		return nil, err
	}

	switch t := p.peek(); {
	case t.kind == tokIdent && t.text == "false":
		p.next()
		c, cerr := constraint.NewDC(body)
		if cerr != nil {
			return nil, p.errf(arrow, "%v", cerr)
		}
		return c, nil

	case t.kind == tokIdent && t.text == "exists":
		p.next()
		// Explicit existential prefix: exists Z1, Z2: head
		var exVars []logic.Term
		for {
			v, err := p.term()
			if err != nil {
				return nil, err
			}
			if !v.IsVar() {
				return nil, p.errf(t, "existential binder requires variables, found constant %s", v)
			}
			exVars = append(exVars, v)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		head, err := p.atomList()
		if err != nil {
			return nil, err
		}
		c, cerr := constraint.NewTGD(body, head)
		if cerr != nil {
			return nil, p.errf(arrow, "%v", cerr)
		}
		// Verify the declared existentials match the implicit ones.
		implicit := map[string]bool{}
		for _, v := range c.ExistentialVars() {
			implicit[v.Name()] = true
		}
		for _, v := range exVars {
			if !implicit[v.Name()] {
				return nil, p.errf(t, "existential variable %s occurs in the body (or not in the head)", v.Name())
			}
		}
		if len(exVars) != len(implicit) {
			return nil, p.errf(t, "existential binder lists %d variables but the head has %d body-free variables",
				len(exVars), len(implicit))
		}
		return c, nil

	default:
		// Either an EGD (var = var) or a TGD head (atom list). Disambiguate
		// by looking ahead: an EGD continues with ident '='.
		if t.kind == tokIdent && p.toks[p.pos+1].kind == tokEq {
			left, err := p.term()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokEq); err != nil {
				return nil, err
			}
			right, err := p.term()
			if err != nil {
				return nil, err
			}
			c, cerr := constraint.NewEGD(body, left, right)
			if cerr != nil {
				return nil, p.errf(arrow, "%v", cerr)
			}
			return c, nil
		}
		head, err := p.atomList()
		if err != nil {
			return nil, err
		}
		c, cerr := constraint.NewTGD(body, head)
		if cerr != nil {
			return nil, p.errf(arrow, "%v", cerr)
		}
		return c, nil
	}
}

// Query parses a named first-order query:
//
//	Q(X) := forall Y: (Pref(X, Y) | X = Y).
//	Boolean() := exists X: R(X, X).
func Query(src string) (*fo.Query, error) {
	p, perr := newParser(src)
	if perr != nil {
		return nil, perr
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var out []logic.Term
	if p.peek().kind != tokRParen {
		for {
			v, verr := p.term()
			if verr != nil {
				return nil, verr
			}
			if !v.IsVar() {
				return nil, p.errf(name, "query output terms must be variables, found %s", v)
			}
			out = append(out, v)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokDefined); err != nil {
		return nil, err
	}
	f, ferr := p.formula()
	if ferr != nil {
		return nil, ferr
	}
	if p.peek().kind == tokDot {
		p.next()
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, p.errf(t, "unexpected %s %q after query", t.kind, t.text)
	}
	q, qerr := fo.NewQuery(name.text, out, f)
	if qerr != nil {
		return nil, qerr
	}
	return q, nil
}

// formula parses with the precedence !, quantifiers > & > | > -> > <->.
func (p *parser) formula() (fo.Formula, *Error) { return p.iff() }

func (p *parser) iff() (fo.Formula, *Error) {
	l, err := p.implies()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokIff {
		p.next()
		r, err := p.implies()
		if err != nil {
			return nil, err
		}
		l = fo.Iff{L: l, R: r}
	}
	return l, nil
}

func (p *parser) implies() (fo.Formula, *Error) {
	l, err := p.disj()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokArrow {
		p.next()
		r, err := p.implies() // right-associative
		if err != nil {
			return nil, err
		}
		return fo.Implies{L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) disj() (fo.Formula, *Error) {
	l, err := p.conj()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokPipe {
		p.next()
		r, err := p.conj()
		if err != nil {
			return nil, err
		}
		l = fo.Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) conj() (fo.Formula, *Error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokAmp {
		p.next()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = fo.And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (fo.Formula, *Error) {
	t := p.peek()
	switch {
	case t.kind == tokBang:
		p.next()
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return fo.Not{F: f}, nil
	case t.kind == tokIdent && (t.text == "exists" || t.text == "forall"):
		p.next()
		var vars []logic.Term
		for {
			v, err := p.term()
			if err != nil {
				return nil, err
			}
			if !v.IsVar() {
				return nil, p.errf(t, "%s binds variables, found constant %s", t.text, v)
			}
			vars = append(vars, v)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		body, err := p.unary()
		if err != nil {
			return nil, err
		}
		if t.text == "exists" {
			return fo.Exists{Vars: vars, F: body}, nil
		}
		return fo.ForAll{Vars: vars, F: body}, nil
	default:
		return p.primary()
	}
}

func (p *parser) primary() (fo.Formula, *Error) {
	t := p.peek()
	switch t.kind {
	case tokLParen:
		p.next()
		f, err := p.formula()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return f, nil
	case tokIdent:
		if t.text == "true" {
			p.next()
			return fo.Truth{Value: true}, nil
		}
		if t.text == "false" {
			p.next()
			return fo.Truth{Value: false}, nil
		}
		// Either an atom pred(...) or an equality term (=|!=) term.
		if p.toks[p.pos+1].kind == tokLParen {
			a, err := p.atom()
			if err != nil {
				return nil, err
			}
			return fo.Atom{A: a}, nil
		}
		return p.equality()
	case tokString, tokNumber:
		return p.equality()
	default:
		return nil, p.errf(t, "expected a formula, found %s %q", t.kind, t.text)
	}
}

func (p *parser) equality() (fo.Formula, *Error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	t := p.next()
	switch t.kind {
	case tokEq:
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		return fo.Eq{L: l, R: r}, nil
	case tokNeq:
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		return fo.Not{F: fo.Eq{L: l, R: r}}, nil
	default:
		return nil, p.errf(t, "expected '=' or '!=' after term %s", l)
	}
}
