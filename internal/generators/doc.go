// Package generators provides repairing Markov chain generators M_Σ: the
// uniform generator M^u_Σ of Proposition 4, the support-based preference
// generator of Example 4, the trust-based data-integration generator of
// Example 5, deletion-only generators (Proposition 8), and a generic
// weight-function generator for user-defined policies.
//
// # Key types
//
//   - Uniform: 1/k over the k valid extensions. Memoryless, integer
//     weights, local — eligible for every engine in the stack.
//   - UniformDeletions: uniform over deletion extensions only; non-failing
//     for every TGD/EGD/DC set by Proposition 8.
//   - Preference: weighs deletions by support counts across the whole
//     database (Example 4) — memoryless but NOT local, the canonical
//     witness that the DAG collapse needs less than factorization does.
//   - Trust: per-fact trust levels (Example 5); NewTrust sets a default,
//     Set overrides per fact.
//   - WeightFunc: adapts a user callback. Deliberately NOT Markovian —
//     the callback sees the whole state and may depend on history, so it
//     always takes the sequence-tree engine.
//
// # Invariants
//
//   - Each generator declares its capabilities honestly via the optional
//     interfaces (markov.Markovian, markov.IntWeighter, core's
//     LocalGenerator): the engines trust the declarations, and the
//     equivalence suites exist to keep them honest.
//   - Transitions must return non-negative probabilities summing to
//     exactly 1 for every reachable state; the uniform family shares one
//     *big.Rat across equal-weight edges so the chain machinery can
//     recognize uniformity by pointer.
//   - Memoryless generators must tolerate concurrent Transitions /
//     IntWeights calls (parallel DAG frontiers).
//
// # Neighbors
//
// Below: internal/markov (the Generator contract), internal/repair,
// internal/ops, internal/prob. Above: every pipeline that explores or
// samples a chain (core, sampling, cmd/*).
package generators
