// Package core implements the paper's central contribution: operational
// repairs (Definition 6), the repair semantics [[D]]_{MΣ} of an
// inconsistent database, exact operational consistent query answering
// (Definition 7 and the OCQA problem of Section 4), and the TPC decision
// problem of Section 5 — under two semantics modes: the walk-induced
// distribution of PODS 2018 and the sequence-uniform distribution of
// PODS 2022 (uniform over complete repairing sequences).
//
// # Key types
//
//   - Semantics: [[D]]_{MΣ} — repairs with exact big.Rat probabilities,
//     success/fail mass, and exact big.Int sequence counts. Derived
//     observables: CP (conditional probability), OCA (operational
//     consistent answers), Certain, TPC, AnswerCountDistribution.
//   - SemanticsMode (mode.go, aliasing markov.SemanticsMode): WalkInduced
//     weighs a repair by Σ π(s) over the sequences producing it;
//     SequenceUniform weighs it by its share of complete sequences. The
//     support is identical either way — only the mass moves.
//   - Compute / ComputeMode: entry points. Exact computation explores the
//     full chain and is exponential in general (Theorem 5: OCQA is
//     FP^{#P}-complete). Collapsible chains (memoryless generator,
//     TGD-free Σ) route to the DAG engine; everything else takes the
//     sequence tree.
//   - ComputeTreeMode / ComputeDAGMode: the two engines, mode-threaded.
//     The tree under SequenceUniform *is* brute-force sequence
//     enumeration; the DAG reads uniform weights off the propagated
//     sequence counts, so the uniform mode is exact even when the counts
//     exceed 2^63.
//   - ComputeFactored (factored.go): the Section 6 conflict-component
//     factorization for *local* generators — walk-induced only (uniform
//     mass does not factor across components, because interleavings weigh
//     components by sequence length; exact sequence *counts* still factor,
//     via Factored.TotalSequences under ExploreOptions.TrackLengths).
//     Components explore on a worker pool (ExploreOptions.Workers) and,
//     for StructuralGenerator weights (uniform, uniform-deletions),
//     isomorphic components share one exploration through a cache keyed
//     by the component's canonical form up to constant renaming — exact
//     conditional probabilities at million-fact scale (experiment E18).
//   - Aggregate queries (aggregate.go) and UniformOverRepairs (the
//     "equally likely repairs" measure of Section 6) round out the
//     semantics variants.
//
// # Invariants
//
//   - All probability arithmetic is exact (big.Rat); floats appear only in
//     formatting. Engine equivalence (tree ≡ DAG, both modes) is proven
//     bit-identically by dag_equivalence_test.go and uniform_test.go.
//   - Repairs are reported in database-key order; answers in lexicographic
//     tuple order — never in interned-id order, which is process-local.
//
// # Neighbors
//
// Below: internal/markov (exploration), internal/repair, internal/fo
// (query evaluation), internal/prob. Sibling: internal/sampling is the
// approximate counterpart of both modes. Above: cmd/ocqa,
// cmd/experiments, examples/*.
package core
