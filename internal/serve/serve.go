package serve

import (
	"errors"
	"math/big"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/abc"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/markov"
	"repro/internal/relation"
)

// ErrClosed is returned by Ingest after Close.
var ErrClosed = errors.New("serve: server closed")

// Options tunes a Server.
type Options struct {
	// Workers sizes the component worker pool of the initial build and the
	// inner DAG exploration of single-island deltas (≤ 0 means GOMAXPROCS).
	// Served answers are bit-identical for every value.
	Workers int
	// Shards sizes the resident writer shard pool: conflict islands hash to
	// shards by content, and each shard explores its islands on its own
	// goroutine (default min(GOMAXPROCS, 8)). Served answers are
	// bit-identical for every value.
	Shards int
	// MaxStates bounds each component's DAG exploration (0 = unbounded).
	MaxStates int
	// Eps and Delta are the sampling guarantee used when a non-atomic query
	// overflows the exact enumeration budget and degrades to the (ε, δ)
	// estimator; they default to 0.05 each.
	Eps, Delta float64
	// Seed seeds the degradation estimator, so a query repeated against the
	// same snapshot returns the same estimate.
	Seed int64
	// CompactLimit bounds the copy-on-write delta a served database may
	// accumulate before publication folds it into a fresh snapshot
	// (default 4096). Smaller keeps reader clones cheaper; larger amortizes
	// the O(|D|) fold over more ingests.
	CompactLimit int
	// QueueDepth sizes the ingest queue feeding the writer goroutine and
	// bounds how many queued requests one publication may coalesce
	// (default 64).
	QueueDepth int
	// NoCache disables the structural semantics cache (cold-cache
	// benchmarks and the trust-style generators that bypass it anyway).
	NoCache bool
	// LogPath, when non-empty, persists every publication's applied
	// operations to an append-only op log at that path and replays the log
	// on startup, so a restarted server rebuilds the exact pre-shutdown
	// snapshot — same version, same stats — instead of serving the stale
	// base database. Replay parity requires restarting with the same base
	// database and Options. Records are not fsynced: an OS crash can lose
	// the tail, and a torn final record is truncated away on restart.
	LogPath string
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
		if o.Shards > 8 {
			o.Shards = 8
		}
	}
	if o.Eps <= 0 {
		o.Eps = 0.05
	}
	if o.Delta <= 0 {
		o.Delta = 0.05
	}
	if o.CompactLimit <= 0 {
		o.CompactLimit = 4096
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	return o
}

// Op is one ingested change: a fact inserted or retracted.
type Op struct {
	Fact   relation.Fact
	Insert bool
}

// ShardStats describes one writer shard.
type ShardStats struct {
	// Islands and Violations size the shard's slice of the current
	// snapshot's conflict partition.
	Islands    int `json:"islands"`
	Violations int `json:"violations"`
	// Recomputed counts the component explorations this shard has run over
	// the server's lifetime, including its share of the initial build.
	Recomputed uint64 `json:"recomputed"`
}

// Stats describes a published snapshot.
type Stats struct {
	// Version counts the published snapshots (0 = the initial build).
	Version uint64 `json:"version"`
	// Facts, Violations, and Components size the snapshot.
	Facts      int `json:"facts"`
	Violations int `json:"violations"`
	Components int `json:"components"`
	// Untouched counts the facts outside every conflict component.
	Untouched int `json:"untouched"`
	// Reused, Recomputed, CacheHits, and CacheMisses describe the build
	// that published this snapshot: components carried verbatim from the
	// previous snapshot, components explored, and the structural-cache
	// traffic among the explored ones.
	Reused      int `json:"reused"`
	Recomputed  int `json:"recomputed"`
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// LastBatchOps and MaxBatchOps describe ingest coalescing: the applied
	// operations folded into the latest publication and the largest such
	// batch over the server's lifetime.
	LastBatchOps int `json:"last_batch_ops"`
	MaxBatchOps  int `json:"max_batch_ops"`
	// CumOps and CumRecomputed accumulate applied operations and component
	// recomputes across the server's lifetime.
	CumOps        uint64 `json:"cum_ops"`
	CumRecomputed uint64 `json:"cum_recomputed"`
	// CacheShapes is the number of distinct component shapes resident in
	// the structural cache.
	CacheShapes int `json:"cache_shapes"`
	// Shards describes the writer shards' partition slices and cumulative
	// recompute counts.
	Shards []ShardStats `json:"shards"`
}

// Snapshot is one published, immutable serving state: the database, its
// violations, the conflict partition, and the factored semantics, all
// consistent with each other. Readers obtain one via Server.Snapshot and
// may query it for as long as they like — later ingests publish new
// snapshots without invalidating old ones.
type Snapshot struct {
	DB         *relation.Database
	Violations *constraint.Violations
	Part       *abc.Partition
	Fac        *core.Factored
	stats      Stats
}

// Version returns the snapshot's publication version.
func (sn *Snapshot) Version() uint64 { return sn.stats.Version }

// Stats returns the snapshot's statistics.
func (sn *Snapshot) Stats() Stats { return sn.stats }

// Server is a resident OCQA engine: it holds the current Snapshot behind an
// atomic pointer (readers never block, never see a half-applied ingest) and
// funnels all ingests through a coordinator goroutine that re-maintains
// violations, the conflict partition, and the factored semantics with work
// proportional to the delta's touched region. The coordinator drains every
// request queued behind the one it is serving into the same publication, so
// N concurrent callers pay one recompute and one snapshot publish between
// them; the touched islands are hashed by content across Options.Shards
// resident shard goroutines, each exploring its slice of the partition, and
// a publication barrier reassembles the snapshot — served answers are
// bit-identical to the single-shard path for every shard count. The
// structural semantics cache stays warm across deltas, so a recomputed
// component that is isomorphic to anything ever explored costs one
// renaming, not a DAG exploration.
type Server struct {
	sigma *constraint.Set
	gen   core.LocalGenerator
	opts  Options
	cache *core.SemanticsCache

	cur atomic.Pointer[Snapshot]

	shards  []*shard
	shardWG sync.WaitGroup

	oplog *opLog

	mu              sync.Mutex // serializes apply; the coordinator loop is the usual sole caller
	cumOps          uint64
	cumRecomputed   uint64
	lastBatchOps    int
	maxBatchOps     int
	shardRecomputed []uint64

	reqs      chan ingestReq
	done      chan struct{}
	loopDone  chan struct{}
	closeOnce sync.Once
}

type applyResult struct {
	snap *Snapshot
	err  error
}

type ingestReq struct {
	ops   []Op
	reply chan applyResult
}

// shard is one resident writer shard: a goroutine draining exploration
// tasks for the islands that hash to it.
type shard struct {
	tasks chan shardTask
}

// shardTask is one island exploration: the shard explores isl under scope,
// parks the result (or the error) in the coordinator's slot, attaches the
// component as the island's payload, and signals the publication barrier.
type shardTask struct {
	scope *core.BuildScope
	isl   *abc.Island
	out   *core.Explored
	errp  *error
	wg    *sync.WaitGroup
}

func (sh *shard) run() {
	for t := range sh.tasks {
		e, err := t.scope.Explore(t.isl)
		if err != nil {
			*t.errp = err
		} else {
			*t.out = e
			t.isl.Payload = e.Comp
		}
		t.wg.Done()
	}
}

// testHookApply, when set before New, observes every apply's coalesced
// operation batch before it runs; tests use it to hold a publication open
// while further ingests queue behind it.
var testHookApply func(ops []Op)

// New builds the initial snapshot from the database (which is copied, not
// retained), replays the op log when Options.LogPath names one, and starts
// the writer goroutines. The generator must be local (the factored
// engine's requirement) and Σ must be TGD-free.
func New(db *relation.Database, sigma *constraint.Set, gen core.LocalGenerator, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	s := &Server{
		sigma:           sigma,
		gen:             gen,
		opts:            opts,
		cache:           core.NewSemanticsCache(),
		shards:          make([]*shard, opts.Shards),
		shardRecomputed: make([]uint64, opts.Shards),
		reqs:            make(chan ingestReq, opts.QueueDepth),
		done:            make(chan struct{}),
		loopDone:        make(chan struct{}),
	}
	initial := db.Clone()
	initial.Seal()
	vs := constraint.FindViolations(initial, sigma)
	part := abc.NewPartition(vs)
	fac, err := core.ComputeFactoredDelta(initial, sigma, gen, s.explore(), s.fopt(), core.FactoredDelta{Part: part})
	if err != nil {
		return nil, err
	}
	s.cumRecomputed = uint64(len(fac.Components))
	for _, isl := range part.Islands() {
		s.shardRecomputed[s.shardOf(isl)]++
	}
	snap := &Snapshot{DB: initial, Violations: vs, Part: part, Fac: fac}
	snap.stats = s.statsFor(snap, 0)
	s.cur.Store(snap)
	s.startShards()
	if opts.LogPath != "" {
		// Replay before accepting traffic: each logged record was one live
		// publication's applied operations, so re-applying them batch by
		// batch — against the same base database, options, and (initially
		// empty) structural cache — walks the identical publication
		// sequence and lands on the identical snapshot and stats. The log
		// handle is attached only afterwards so replayed batches are not
		// re-appended.
		lg, batches, err := openOpLog(opts.LogPath)
		if err != nil {
			s.stopShards()
			return nil, err
		}
		for _, ops := range batches {
			if _, err := s.apply(ops); err != nil {
				lg.Close()
				s.stopShards()
				return nil, err
			}
		}
		s.oplog = lg
	}
	go s.loop()
	return s, nil
}

func (s *Server) explore() markov.ExploreOptions {
	return markov.ExploreOptions{MaxStates: s.opts.MaxStates, Workers: s.opts.Workers}
}

func (s *Server) fopt() core.FactoredOptions {
	return core.FactoredOptions{NoCache: s.opts.NoCache, Cache: s.cache}
}

// shardOf routes an island to its writer shard by content hash, so the
// assignment is a pure function of the island's data — identical across
// restarts and replays.
func (s *Server) shardOf(isl *abc.Island) int {
	return int(isl.Hash() % uint64(len(s.shards)))
}

// shardTaskBuffer bounds a shard's pending exploration queue; a full queue
// only stalls the coordinator's dispatch, never loses a task.
const shardTaskBuffer = 256

func (s *Server) startShards() {
	for i := range s.shards {
		sh := &shard{tasks: make(chan shardTask, shardTaskBuffer)}
		s.shards[i] = sh
		s.shardWG.Add(1)
		go func() {
			defer s.shardWG.Done()
			sh.run()
		}()
	}
}

func (s *Server) stopShards() {
	for _, sh := range s.shards {
		close(sh.tasks)
	}
	s.shardWG.Wait()
}

func (s *Server) statsFor(snap *Snapshot, version uint64) Stats {
	shards := make([]ShardStats, len(s.shards))
	for _, isl := range snap.Part.Islands() {
		i := s.shardOf(isl)
		shards[i].Islands++
		shards[i].Violations += len(isl.Violations())
	}
	for i := range shards {
		shards[i].Recomputed = s.shardRecomputed[i]
	}
	return Stats{
		Version:       version,
		Facts:         snap.DB.Size(),
		Violations:    snap.Violations.Len(),
		Components:    len(snap.Fac.Components),
		Untouched:     snap.Fac.Untouched.Size(),
		Reused:        snap.Fac.Reused,
		Recomputed:    len(snap.Fac.Components) - snap.Fac.Reused,
		CacheHits:     snap.Fac.CacheHits,
		CacheMisses:   snap.Fac.CacheMisses,
		LastBatchOps:  s.lastBatchOps,
		MaxBatchOps:   s.maxBatchOps,
		CumOps:        s.cumOps,
		CumRecomputed: s.cumRecomputed,
		CacheShapes:   s.cache.Len(),
		Shards:        shards,
	}
}

// Snapshot returns the current published state; never nil, never blocks.
func (s *Server) Snapshot() *Snapshot { return s.cur.Load() }

// Stats returns the current snapshot's statistics.
func (s *Server) Stats() Stats { return s.cur.Load().stats }

// Ingest hands the batch to the coordinator and waits for a snapshot that
// includes it. Batches from concurrent callers are applied in queue order,
// each atomically: readers see either none or all of a batch. Requests
// queued while a publication is in flight are coalesced into the next one
// — the returned snapshot then also carries the other coalesced batches
// (all applied atomically together), and a failed build fails every caller
// it coalesced.
func (s *Server) Ingest(ops []Op) (*Snapshot, error) {
	req := ingestReq{ops: ops, reply: make(chan applyResult, 1)}
	select {
	case s.reqs <- req:
	case <-s.done:
		return nil, ErrClosed
	}
	select {
	case r := <-req.reply:
		return r.snap, r.err
	case <-s.loopDone:
		// The loop drained the queue on shutdown; it may have answered this
		// request on its way out.
		select {
		case r := <-req.reply:
			return r.snap, r.err
		default:
			return nil, ErrClosed
		}
	}
}

// Close stops the writer goroutines and closes the op log; pending ingests
// fail with ErrClosed. Queries keep answering from the last published
// snapshot.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.done) })
	<-s.loopDone
}

func (s *Server) loop() {
	defer close(s.loopDone)
	defer func() {
		s.stopShards()
		if s.oplog != nil {
			s.oplog.Close()
		}
	}()
	for {
		select {
		case req := <-s.reqs:
			// Coalesce: everything already queued behind req joins its
			// publication, so the whole backlog pays one recompute and one
			// publish. The yield is the group-commit window — senders made
			// runnable alongside this goroutine (on a small GOMAXPROCS the
			// scheduler otherwise runs the woken coordinator before the
			// remaining senders, serializing them into one-op publications)
			// get one quantum to reach the queue. The drain is bounded by
			// QueueDepth (the channel's capacity plus the request in hand)
			// so a hot ingest stream cannot defer publication indefinitely.
			runtime.Gosched()
			batch := append([]ingestReq(nil), req)
		drain:
			for len(batch) <= s.opts.QueueDepth {
				select {
				case r := <-s.reqs:
					batch = append(batch, r)
				default:
					break drain
				}
			}
			var ops []Op
			for _, r := range batch {
				ops = append(ops, r.ops...)
			}
			snap, err := s.apply(ops)
			for _, r := range batch {
				r.reply <- applyResult{snap, err}
			}
		case <-s.done:
			for {
				select {
				case req := <-s.reqs:
					req.reply <- applyResult{nil, ErrClosed}
				default:
					return
				}
			}
		}
	}
}

// apply advances the served state by one coalesced batch: an O(delta)
// clone of the current database, violation maintenance per operation, one
// batched partition update, then a delta-scoped rebuild — the fresh islands
// are hashed across the writer shards, explored in parallel, and the
// publication barrier reassembles the factored semantics from the
// partition's payloads. The new snapshot is logged (when an op log is
// attached) and published atomically; the previous one stays valid for
// readers still holding it, and a failed build leaves the served state,
// counters, and log untouched.
func (s *Server) apply(ops []Op) (*Snapshot, error) {
	if h := testHookApply; h != nil {
		h(ops)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.cur.Load()
	db := cur.DB.Clone()
	vs := cur.Violations
	var applied []core.FactDelta
	var changed []relation.Fact
	// Violation deltas accumulate across the batch netted by ID: presence
	// strictly alternates per violation, so an elimination cancels the
	// batch's earlier introduction of the same violation (and vice versa),
	// and what survives is exactly the before/after difference. Dead
	// entries stay in the slices to keep the surviving order deterministic.
	type netVio struct {
		v    constraint.Violation
		live bool
	}
	var elims, intros []netVio
	elimIdx := map[uint64]int{}
	introIdx := map[uint64]int{}
	cancel := func(idx map[uint64]int, vios []netVio, id uint64) bool {
		j, ok := idx[id]
		if ok {
			vios[j].live = false
			delete(idx, id)
		}
		return ok
	}
	// Consecutive effective operations of the same kind form one multi-fact
	// violation delta: the facts in a group are distinct (a repeat would
	// have been ineffective) and the delta algorithm is exact for set
	// deltas, so one call replaces len(group) copy-on-write passes over the
	// violation set. The group flushes when the kind flips, keeping the
	// per-fact application order.
	var group []relation.Fact
	var groupInsert bool
	flush := func() {
		if len(group) == 0 {
			return
		}
		after, elim, intro := constraint.UpdateViolationsDelta(db, s.sigma, vs, group, groupInsert)
		vs = after
		group = nil
		for _, v := range elim {
			if id := v.ID(); !cancel(introIdx, intros, id) {
				elimIdx[id] = len(elims)
				elims = append(elims, netVio{v, true})
			}
		}
		for _, v := range intro {
			if id := v.ID(); !cancel(elimIdx, elims, id) {
				introIdx[id] = len(intros)
				intros = append(intros, netVio{v, true})
			}
		}
	}
	for _, op := range ops {
		// Flush before touching db, so the pending group's delta search runs
		// against exactly the database its own facts produced.
		if len(group) > 0 && groupInsert != op.Insert {
			flush()
		}
		var eff bool
		if op.Insert {
			eff = db.Insert(op.Fact)
		} else {
			eff = db.Delete(op.Fact)
		}
		if !eff {
			continue
		}
		groupInsert = op.Insert
		group = append(group, op.Fact)
		changed = append(changed, op.Fact)
		applied = append(applied, core.FactDelta{Fact: op.Fact, Insert: op.Insert})
	}
	flush()
	if len(applied) == 0 {
		return cur, nil
	}
	db.Compact(s.opts.CompactLimit)

	// One partition update covers the whole batch — the O(islands) merge is
	// paid per publication, not per operation, which is most of what
	// coalescing amortizes. The net deltas describe the before/after
	// violation difference, so the touched region re-partitions directly
	// against the final violation set; the returned fresh islands are
	// exactly those without a component payload (carried islands brought
	// theirs along), and removed is the dissolved originals.
	surviving := func(vios []netVio) []constraint.Violation {
		out := make([]constraint.Violation, 0, len(vios))
		for _, e := range vios {
			if e.live {
				out = append(out, e.v)
			}
		}
		return out
	}
	part, fresh, removed := cur.Part.Update(surviving(elims), surviving(intros), changed)
	islands := part.Islands()

	// Shard the fresh region: each island explores on the shard its
	// content hash names, the WaitGroup is the publication barrier, and
	// errors settle in deterministic island order. Explorations are pure
	// functions of the island's facts, so the shard count never shows in
	// the result.
	inner := s.explore()
	if len(fresh) > 1 {
		inner.Workers = 1
	}
	scope := core.NewBuildScope(s.sigma, s.gen, inner, s.fopt())
	explored := make([]core.Explored, len(fresh))
	errs := make([]error, len(fresh))
	var wg sync.WaitGroup
	wg.Add(len(fresh))
	for fi, isl := range fresh {
		s.shards[s.shardOf(isl)].tasks <- shardTask{scope: scope, isl: isl, out: &explored[fi], errp: &errs[fi], wg: &wg}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	hits, misses := scope.Accounting(explored)
	untouched := core.UpdateUntouched(cur.Fac.Untouched, db, part, applied, removed, fresh)
	fac, err := core.AssembleFactored(db, s.sigma, s.gen, part, untouched, len(islands)-len(fresh), hits, misses)
	if err != nil {
		return nil, err
	}
	if s.oplog != nil {
		if err := s.oplog.append(applied); err != nil {
			return nil, err
		}
	}
	// The build succeeded and (when logging) persisted; only now touch the
	// resident counters, so a failed publication cannot skew them.
	s.cumOps += uint64(len(applied))
	s.cumRecomputed += uint64(len(fresh))
	for _, isl := range fresh {
		s.shardRecomputed[s.shardOf(isl)]++
	}
	s.lastBatchOps = len(applied)
	if s.lastBatchOps > s.maxBatchOps {
		s.maxBatchOps = s.lastBatchOps
	}
	next := &Snapshot{DB: db, Violations: vs, Part: part, Fac: fac}
	next.stats = s.statsFor(next, cur.stats.Version+1)
	s.cur.Store(next)
	return next, nil
}

// FactProbability answers the atomic query "does the fact survive
// repairing" from the resident fact→component index of the current
// snapshot: an O(1) index probe plus a read of the component's exact
// marginal.
func (s *Server) FactProbability(f relation.Fact) (*big.Rat, uint64) {
	sn := s.cur.Load()
	return sn.Fac.FactProbability(f), sn.stats.Version
}

// CP answers the conditional-probability query on the current snapshot.
// Atomic queries read exact marginals; other queries enumerate the product
// distribution exactly while it fits the budget and degrade to the (ε, δ)
// sampling estimate past it — exact reports which route answered.
func (s *Server) CP(q *fo.Query, tuple []string) (p *big.Rat, exact bool, version uint64, err error) {
	sn := s.cur.Load()
	p, exact, err = sn.Fac.CPOrEstimate(q, tuple, s.opts.Eps, s.opts.Delta, s.opts.Seed)
	return p, exact, sn.stats.Version, err
}

// OCA answers the operational consistent answers on the current snapshot.
// Atomic queries scan once and read marginals; others enumerate under the
// exact budget.
func (s *Server) OCA(q *fo.Query) (*core.AnswerSet, uint64, error) {
	sn := s.cur.Load()
	as, err := sn.Fac.OCA(q)
	return as, sn.stats.Version, err
}
