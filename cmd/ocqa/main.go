// Command ocqa answers a first-order query over an inconsistent database
// under the operational CQA semantics of Calautti, Libkin and Pieris
// (PODS 2018). It computes the exact operational consistent answers
// (exponential; Theorem 5), the additive-error approximation of Theorem 9,
// or the Section 5 practical scheme (keep at most one tuple per violated
// key, evaluate the query over the copy-on-write repair R − R_del, repeat
// n = ⌈ln(2/δ)/(2ε²)⌉ times).
//
// Usage:
//
//	ocqa -db data.facts -constraints schema.rules -query query.fo \
//	     [-gen uniform|uniform-deletions|preference|trust[:seed]] \
//	     [-mode exact|factored|sat|approx|practical] [-semantics walk|uniform] \
//	     [-eps 0.1] [-delta 0.1] [-seed 1] [-workers 4] [-drop-all 0] \
//	     [-dimacs dir]
//
// File arguments also accept "inline:<text>". -semantics selects the
// distribution over complete repairing sequences: "walk" (default) is the
// PODS 2018 walk-induced semantics, "uniform" the PODS 2022 uniform
// operational semantics (every complete sequence equally likely) — exact
// in -mode exact via the sequence-count-weighted DAG, approximate in
// -mode approx via count-guided uniform draws (or importance sampling
// when the chain does not collapse). Factored mode (walk semantics,
// TGD-free constraints, local generators) repairs each conflict component
// independently on a -workers pool with a structural semantics cache
// across isomorphic components, and answers atomic queries exactly at any
// scale. Practical mode derives the keys it repairs from the key-shaped
// EGDs of the constraint file and runs rounds on a worker pool; factored
// and practical results are bit-identical for any -workers. SAT mode
// computes the certain answers only (tuples with probability 1), by
// compiling "this tuple is NOT certain" to CNF per candidate and running
// an embedded CDCL solver — no chain exploration at all, so it scales
// past any sequence-space budget; -dimacs exports the per-candidate
// formulas for external solvers.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/markov"
	"repro/internal/plan"
	"repro/internal/practical"
	"repro/internal/prob"
	"repro/internal/repair"
	"repro/internal/sampling"
	"repro/internal/sat"
)

func main() {
	var (
		dbPath    = flag.String("db", "", "database file (facts terminated by '.'), or inline:<text>")
		sigmaPath = flag.String("constraints", "", "constraint file (TGDs/EGDs/DCs), or inline:<text>")
		queryPath = flag.String("query", "", "query file (Q(X) := formula), or inline:<text>")
		genName   = flag.String("gen", "uniform", "chain generator: "+cliutil.GeneratorNames())
		mode      = flag.String("mode", "exact", "exact (full chain exploration), factored (per-component exact, Section 6 localization), sat (certain answers via CNF + CDCL), approx (Theorem 9 sampling), or practical (Section 5 scheme)")
		semantics = flag.String("semantics", "walk", "distribution over complete sequences: walk (PODS '18 walk-induced) or uniform (PODS '22 sequence-uniform)")
		eps       = flag.Float64("eps", 0.1, "additive error bound ε (approx/practical mode)")
		delta     = flag.Float64("delta", 0.1, "failure probability δ (approx/practical mode)")
		seed      = flag.Int64("seed", 1, "random seed (approx/practical mode)")
		workers   = flag.Int("workers", 1, "parallel walkers/rounds (approx/practical mode)")
		maxStates = flag.Int("max-states", 1_000_000, "exact-mode state budget (0 = unlimited)")
		nulls     = flag.Bool("nulls", false, "repair TGDs with labeled-null insertions (Section 6 extension)")
		dropAll   = flag.Float64("drop-all", 0, "practical mode: probability a violating key group keeps no tuple")
		dimacs    = flag.String("dimacs", "", "sat mode: directory to export one DIMACS CNF per candidate tuple")
	)
	flag.Parse()
	if *dbPath == "" || *sigmaPath == "" || *queryPath == "" {
		fmt.Fprintln(os.Stderr, "ocqa: -db, -constraints and -query are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*dbPath, *sigmaPath, *queryPath, *genName, *mode, *semantics, *eps, *delta, *seed, *workers, *maxStates, *nulls, *dropAll, *dimacs); err != nil {
		fmt.Fprintln(os.Stderr, "ocqa:", err)
		os.Exit(1)
	}
}

// validModes lists every -mode value run accepts, in the order the
// usage message reports them.
var validModes = []string{"exact", "factored", "sat", "approx", "practical"}

func run(dbPath, sigmaPath, queryPath, genName, mode, semantics string, eps, delta float64, seed int64, workers, maxStates int, nulls bool, dropAll float64, dimacsDir string) error {
	known := false
	for _, m := range validModes {
		known = known || mode == m
	}
	if !known {
		return fmt.Errorf("unknown -mode %q: valid modes are %s", mode, strings.Join(validModes, ", "))
	}
	semMode, err := core.ParseSemanticsMode(semantics)
	if err != nil {
		return err
	}
	d, err := cliutil.LoadDatabase(dbPath)
	if err != nil {
		return err
	}
	sigma, err := cliutil.LoadConstraints(sigmaPath)
	if err != nil {
		return err
	}
	q, err := cliutil.LoadQuery(queryPath)
	if err != nil {
		return err
	}
	gen, err := cliutil.ResolveGenerator(genName, d)
	if err != nil {
		return err
	}
	inst, err := repair.NewInstanceOpts(d, sigma, repair.Options{NullInsertions: nulls})
	if err != nil {
		return err
	}

	fmt.Printf("database: %d facts, %d constraints; consistent: %v\n",
		d.Size(), sigma.Len(), inst.Consistent())
	fmt.Printf("query: %s\ngenerator: %s\nsemantics: %s\n\n", q, gen.Name(), semMode)

	switch mode {
	case "exact":
		sem, err := core.ComputeMode(inst, gen, markov.ExploreOptions{MaxStates: maxStates}, semMode)
		if err != nil {
			return err
		}
		fmt.Printf("chain: %s complete sequences over %d absorbing states (%d failing); success mass %s\n",
			sem.TotalSequences, sem.AbsorbingStates, sem.FailingStates, prob.Format(sem.SuccessP))
		fmt.Printf("operational repairs: %d\n\n", len(sem.Repairs))
		fmt.Print(sem.OCA(q))
		return nil

	case "factored":
		if semMode != core.WalkInduced {
			return fmt.Errorf("-mode factored computes the walk-induced semantics; use -mode exact with -semantics uniform")
		}
		local, ok := gen.(core.LocalGenerator)
		if !ok {
			return fmt.Errorf("generator %s is not local; factored mode needs per-component weights (uniform, uniform-deletions, trust)", gen.Name())
		}
		fac, err := core.ComputeFactored(inst, local, markov.ExploreOptions{MaxStates: maxStates, Workers: workers})
		if err != nil {
			return err
		}
		fmt.Printf("factored chain: %d conflict components, %d untouched facts; %s distinct repairs\n",
			len(fac.Components), fac.Untouched.Size(), fac.NumRepairs())
		if fac.CacheHits+fac.CacheMisses > 0 {
			fmt.Printf("structural cache: %d explorations, %d components served by renaming\n",
				fac.CacheMisses, fac.CacheHits)
		}
		fmt.Println()
		as, err := fac.OCA(q)
		if err != nil {
			if errors.Is(err, core.ErrEnumerationBudget) {
				return fmt.Errorf("%w\n(non-atomic query over a huge repair space: use -mode approx, or an atomic query)", err)
			}
			return err
		}
		fmt.Print(as)
		return nil

	case "sat":
		if nulls {
			return fmt.Errorf("-mode sat reasons over deletion-only repairs of key EGDs; -nulls needs -mode exact")
		}
		enc, err := sat.NewEncoder(d, sigma, sat.Options{})
		if err != nil {
			if errors.Is(err, sat.ErrUnsupportedConstraints) {
				return fmt.Errorf("%w\n(-mode sat needs every constraint to be a key-shaped EGD; use -mode exact for general Σ)", err)
			}
			return err
		}
		res, err := enc.CertainAnswers(q)
		if err != nil {
			if errors.Is(err, sat.ErrUnsupportedQuery) {
				return fmt.Errorf("%w\n(-mode sat handles conjunctive queries whose output positions are all constrained; use -mode exact)", err)
			}
			return err
		}
		fmt.Printf("sat encoding: %d violating groups, %d conflicted facts; base CNF %d vars, %d clauses\n",
			res.Groups, enc.ConflictFacts(), res.Vars, res.Clauses)
		fmt.Printf("candidates: %d witnessed tuples; %d certain via a conflict-free witness, %d decided by the solver\n",
			res.Candidates, res.Immediate, res.Solved)
		if res.Solved > 0 {
			fmt.Printf("solver: %d decisions, %d propagations, %d conflicts, %d learned, %d restarts\n",
				res.Stats.Decisions, res.Stats.Propagations, res.Stats.Conflicts, res.Stats.Learned, res.Stats.Restarts)
		}
		if dimacsDir != "" {
			if err := exportDIMACS(enc, q, res.CandidateTuples, dimacsDir); err != nil {
				return err
			}
			fmt.Printf("dimacs: wrote %d candidate formulas to %s\n", len(res.CandidateTuples), dimacsDir)
		}
		fmt.Println()
		if len(res.Answers) == 0 {
			fmt.Printf("no certain answers for %s\n", q)
			return nil
		}
		fmt.Printf("certain answers for %s (probability 1 under every full-support generator, both semantics):\n", q)
		for _, tup := range res.Answers {
			fmt.Printf("  (%s) : 1\n", joinTuple(tup))
		}
		return nil

	case "approx":
		est := &sampling.Estimator{Inst: inst, Gen: gen, Seed: seed, Workers: workers, Mode: semMode}
		run, err := est.EstimateAnswers(q, eps, delta)
		if err != nil {
			return err
		}
		fmt.Printf("samples: n = %d (ε = %g, δ = %g); %d successful, %d failing walks\n",
			run.N, eps, delta, run.SuccessfulWalks, run.FailingWalks)
		switch {
		case run.TotalSequences != nil:
			fmt.Printf("uniform sampler: count-guided exact draws over %s complete sequences\n\n", run.TotalSequences)
		case run.Weighted:
			fmt.Printf("uniform sampler: importance-sampling fallback (no (ε,δ) guarantee); effective sample size %.1f\n\n", run.ESS)
		default:
			fmt.Println()
		}
		if len(run.Estimates) == 0 {
			fmt.Println("no tuple was observed in any successful repair")
			return nil
		}
		fmt.Printf("approximate OCA for %s:\n", q)
		for _, e := range run.Estimates {
			fmt.Printf("  (%s) : %.4f  (count %d/%d)\n",
				joinTuple(e.Tuple), e.P, e.Count, run.N)
		}
		if run.FailingWalks > 0 {
			fmt.Println("\nnote: failing walks present; the conditional (ratio) estimates are:")
			for _, e := range run.Estimates {
				fmt.Printf("  (%s) : %.4f\n", joinTuple(e.Tuple), e.Conditional)
			}
		}
		return nil

	case "practical":
		if semMode != core.WalkInduced {
			return fmt.Errorf("-mode practical estimates the walk-induced semantics only; use -mode exact or -mode approx with -semantics uniform")
		}
		if dropAll < 0 || dropAll > 1 {
			return fmt.Errorf("-drop-all must be a probability in [0, 1], got %g", dropAll)
		}
		cat := plan.NewCatalogOn(d)
		keyed, unrecognized := cat.DeriveKeys(sigma)
		if len(keyed) == 0 {
			return fmt.Errorf("practical mode needs at least one key-shaped EGD (R(x̄), R(ȳ) → xi = yi) in the constraints")
		}
		if unrecognized > 0 {
			fmt.Printf("note: %d of %d constraints are not key EGDs; the practical scheme repairs key violations only\n",
				unrecognized, sigma.Len())
		}
		r := &practical.Runner{
			Catalog: cat,
			Policy:  practical.Policy{DropAll: dropAll},
			Seed:    seed,
			Workers: workers,
		}
		res, err := r.RunQueryWithGuarantee(q, eps, delta)
		if err != nil {
			return err
		}
		groups := 0
		for _, table := range keyed {
			t, err := cat.Table(table)
			if err != nil {
				return err
			}
			groups += len(practical.KeyGroups(cat.DB(), t.Pred, len(t.Cols), cat.Key(table)))
		}
		fmt.Printf("practical scheme: n = %d rounds (ε = %g, δ = %g), %d keyed tables, %d violating groups, drop-all %g\n\n",
			res.N, eps, delta, len(keyed), groups, dropAll)
		if len(res.Tuples) == 0 {
			fmt.Println("no tuple was observed in any round")
			return nil
		}
		fmt.Printf("approximate answer frequencies for %s:\n", q)
		for _, tf := range res.Tuples {
			fmt.Printf("  (%s) : %.4f  (count %d/%d)\n", joinTuple(tf.Row), tf.P, tf.Count, res.N)
		}
		return nil

	default:
		// Unreachable: run validates mode against validModes up front.
		return fmt.Errorf("unknown -mode %q: valid modes are %s", mode, strings.Join(validModes, ", "))
	}
}

// exportDIMACS writes one DIMACS file per candidate tuple so the "tuple
// is NOT certain" formulas can be handed to an external solver as a
// cross-check of the embedded one.
func exportDIMACS(enc *sat.Encoder, q *fo.Query, tuples [][]string, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, tup := range tuples {
		path := filepath.Join(dir, fmt.Sprintf("candidate_%03d.cnf", i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := enc.WriteTupleDIMACS(f, q, tup); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func joinTuple(tuple []string) string {
	out := ""
	for i, c := range tuple {
		if i > 0 {
			out += ", "
		}
		out += c
	}
	return out
}
