package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Plan is a relational algebra expression evaluated against a catalog.
type Plan interface {
	fmt.Stringer
	// Exec evaluates the plan.
	Exec(c *Catalog) (*Relation, error)
}

// Scan reads a base table.
type Scan struct{ Table string }

// Literal wraps an in-memory relation as a leaf (used by the rewriter to
// splice R_del relations into plans).
type Literal struct{ Rel *Relation }

// Select filters rows by a condition.
type Select struct {
	Input Plan
	Cond  Cond
}

// Project keeps the named columns (in the given order; duplicates allowed).
type Project struct {
	Input Plan
	Cols  []string
}

// Join is a natural join: rows agreeing on all shared columns are combined;
// with no shared columns it degenerates to a cross product.
type Join struct{ L, R Plan }

// Diff is set difference L − R over identical headers (bag semantics:
// every row of L whose value appears anywhere in R is dropped, matching
// SQL's EXCEPT over the deduplicated R, which is what the R − R_del
// rewriting needs).
type Diff struct{ L, R Plan }

// Union concatenates two inputs with identical headers (bag semantics).
type Union struct{ L, R Plan }

// Distinct removes duplicate rows.
type Distinct struct{ Input Plan }

// GroupCount groups by the given columns and appends a count column.
type GroupCount struct {
	Input   Plan
	By      []string
	CountAs string
}

// Cond is a row predicate for Select.
type Cond interface {
	fmt.Stringer
	eval(cols map[string]int, row []string) (bool, error)
}

// ColEqVal compares a column to a literal value with the given operator
// (=, !=, <, <=, >, >=; order comparisons are numeric when both sides
// parse as numbers, lexicographic otherwise).
type ColEqVal struct {
	Col string
	Op  string
	Val string
}

// ColEqCol compares two columns with the given operator.
type ColEqCol struct {
	Col1 string
	Op   string
	Col2 string
}

// AndCond conjoins conditions.
type AndCond struct{ Conds []Cond }

// OrCond disjoins conditions.
type OrCond struct{ Conds []Cond }

// NotCond negates a condition.
type NotCond struct{ C Cond }

func compare(a, op, b string) (bool, error) {
	switch op {
	case "=":
		return a == b, nil
	case "!=":
		return a != b, nil
	}
	// Order comparisons: numeric when possible.
	var less, eq bool
	fa, errA := strconv.ParseFloat(a, 64)
	fb, errB := strconv.ParseFloat(b, 64)
	if errA == nil && errB == nil {
		less, eq = fa < fb, fa == fb
	} else {
		less, eq = a < b, a == b
	}
	switch op {
	case "<":
		return less, nil
	case "<=":
		return less || eq, nil
	case ">":
		return !less && !eq, nil
	case ">=":
		return !less, nil
	}
	return false, fmt.Errorf("engine: unknown comparison operator %q", op)
}

func (c ColEqVal) eval(cols map[string]int, row []string) (bool, error) {
	i, ok := cols[c.Col]
	if !ok {
		return false, fmt.Errorf("engine: unknown column %q in condition", c.Col)
	}
	return compare(row[i], c.Op, c.Val)
}

func (c ColEqCol) eval(cols map[string]int, row []string) (bool, error) {
	i, ok := cols[c.Col1]
	if !ok {
		return false, fmt.Errorf("engine: unknown column %q in condition", c.Col1)
	}
	j, ok := cols[c.Col2]
	if !ok {
		return false, fmt.Errorf("engine: unknown column %q in condition", c.Col2)
	}
	return compare(row[i], c.Op, row[j])
}

func (c AndCond) eval(cols map[string]int, row []string) (bool, error) {
	for _, sub := range c.Conds {
		ok, err := sub.eval(cols, row)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

func (c OrCond) eval(cols map[string]int, row []string) (bool, error) {
	for _, sub := range c.Conds {
		ok, err := sub.eval(cols, row)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

func (c NotCond) eval(cols map[string]int, row []string) (bool, error) {
	ok, err := c.C.eval(cols, row)
	return !ok, err
}

func (c ColEqVal) String() string { return fmt.Sprintf("%s %s %q", c.Col, c.Op, c.Val) }
func (c ColEqCol) String() string { return fmt.Sprintf("%s %s %s", c.Col1, c.Op, c.Col2) }
func (c AndCond) String() string  { return joinConds(c.Conds, " AND ") }
func (c OrCond) String() string   { return "(" + joinConds(c.Conds, " OR ") + ")" }
func (c NotCond) String() string  { return "NOT (" + c.C.String() + ")" }

func joinConds(cs []Cond, sep string) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, sep)
}

func colIndexMap(cols []string) map[string]int {
	m := make(map[string]int, len(cols))
	for i, c := range cols {
		m[c] = i
	}
	return m
}

func (p Scan) Exec(c *Catalog) (*Relation, error) { return c.Table(p.Table) }

func (p Literal) Exec(*Catalog) (*Relation, error) { return p.Rel, nil }

func (p Select) Exec(c *Catalog) (*Relation, error) {
	in, err := p.Input.Exec(c)
	if err != nil {
		return nil, err
	}
	cols := colIndexMap(in.Cols)
	out := &Relation{Name: "σ", Cols: in.Cols}
	for _, row := range in.Rows {
		ok, err := p.Cond.eval(cols, row)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func (p Project) Exec(c *Catalog) (*Relation, error) {
	in, err := p.Input.Exec(c)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(p.Cols))
	for i, col := range p.Cols {
		j, err := in.ColIndex(col)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	out := &Relation{Name: "π", Cols: append([]string(nil), p.Cols...)}
	for _, row := range in.Rows {
		proj := make([]string, len(idx))
		for i, j := range idx {
			proj[i] = row[j]
		}
		out.Rows = append(out.Rows, proj)
	}
	return out, nil
}

func (p Join) Exec(c *Catalog) (*Relation, error) {
	l, err := p.L.Exec(c)
	if err != nil {
		return nil, err
	}
	r, err := p.R.Exec(c)
	if err != nil {
		return nil, err
	}
	// Shared columns join; right-only columns are appended.
	var sharedL, sharedR []int
	rCols := colIndexMap(r.Cols)
	for i, col := range l.Cols {
		if j, ok := rCols[col]; ok {
			sharedL = append(sharedL, i)
			sharedR = append(sharedR, j)
		}
	}
	var rightOnly []int
	outCols := append([]string(nil), l.Cols...)
	lCols := colIndexMap(l.Cols)
	for j, col := range r.Cols {
		if _, ok := lCols[col]; !ok {
			rightOnly = append(rightOnly, j)
			outCols = append(outCols, col)
		}
	}
	out := &Relation{Name: "⋈", Cols: outCols}

	// Hash join on the shared columns.
	buckets := map[string][][]string{}
	for _, rrow := range r.Rows {
		key := joinKey(rrow, sharedR)
		buckets[key] = append(buckets[key], rrow)
	}
	for _, lrow := range l.Rows {
		key := joinKey(lrow, sharedL)
		for _, rrow := range buckets[key] {
			combined := append(append([]string(nil), lrow...), pick(rrow, rightOnly)...)
			out.Rows = append(out.Rows, combined)
		}
	}
	return out, nil
}

func joinKey(row []string, idx []int) string {
	parts := make([]string, len(idx))
	for i, j := range idx {
		parts[i] = fmt.Sprintf("%q", row[j])
	}
	return strings.Join(parts, ",")
}

func pick(row []string, idx []int) []string {
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = row[j]
	}
	return out
}

func (p Diff) Exec(c *Catalog) (*Relation, error) {
	l, err := p.L.Exec(c)
	if err != nil {
		return nil, err
	}
	r, err := p.R.Exec(c)
	if err != nil {
		return nil, err
	}
	if len(l.Cols) != len(r.Cols) {
		return nil, fmt.Errorf("engine: difference over mismatched headers (%d vs %d columns)", len(l.Cols), len(r.Cols))
	}
	drop := make(map[string]bool, len(r.Rows))
	for _, row := range r.Rows {
		drop[rowKey(row)] = true
	}
	out := &Relation{Name: "−", Cols: l.Cols}
	for _, row := range l.Rows {
		if !drop[rowKey(row)] {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func (p Union) Exec(c *Catalog) (*Relation, error) {
	l, err := p.L.Exec(c)
	if err != nil {
		return nil, err
	}
	r, err := p.R.Exec(c)
	if err != nil {
		return nil, err
	}
	if len(l.Cols) != len(r.Cols) {
		return nil, fmt.Errorf("engine: union over mismatched headers (%d vs %d columns)", len(l.Cols), len(r.Cols))
	}
	out := &Relation{Name: "∪", Cols: l.Cols}
	out.Rows = append(append(out.Rows, l.Rows...), r.Rows...)
	return out, nil
}

func (p Distinct) Exec(c *Catalog) (*Relation, error) {
	in, err := p.Input.Exec(c)
	if err != nil {
		return nil, err
	}
	out := &Relation{Name: "δ", Cols: in.Cols}
	seen := map[string]bool{}
	for _, row := range in.Rows {
		k := rowKey(row)
		if !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func (p GroupCount) Exec(c *Catalog) (*Relation, error) {
	in, err := p.Input.Exec(c)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(p.By))
	for i, col := range p.By {
		j, err := in.ColIndex(col)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	countCol := p.CountAs
	if countCol == "" {
		countCol = "count"
	}
	counts := map[string]int{}
	reps := map[string][]string{}
	for _, row := range in.Rows {
		k := joinKey(row, idx)
		counts[k]++
		if _, ok := reps[k]; !ok {
			reps[k] = pick(row, idx)
		}
	}
	out := &Relation{Name: "γ", Cols: append(append([]string(nil), p.By...), countCol)}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out.Rows = append(out.Rows, append(append([]string(nil), reps[k]...), strconv.Itoa(counts[k])))
	}
	return out, nil
}

func (p Scan) String() string    { return p.Table }
func (p Literal) String() string { return fmt.Sprintf("literal(%s)", p.Rel.Name) }
func (p Select) String() string  { return fmt.Sprintf("σ[%s](%s)", p.Cond, p.Input) }
func (p Project) String() string {
	return fmt.Sprintf("π[%s](%s)", strings.Join(p.Cols, ","), p.Input)
}
func (p Join) String() string  { return fmt.Sprintf("(%s ⋈ %s)", p.L, p.R) }
func (p Diff) String() string  { return fmt.Sprintf("(%s − %s)", p.L, p.R) }
func (p Union) String() string { return fmt.Sprintf("(%s ∪ %s)", p.L, p.R) }
func (p Distinct) String() string {
	return fmt.Sprintf("δ(%s)", p.Input)
}
func (p GroupCount) String() string {
	return fmt.Sprintf("γ[%s;count](%s)", strings.Join(p.By, ","), p.Input)
}

// RewriteScans returns a copy of the plan in which every Scan of a table
// with an entry in repl is replaced by (Scan − literal): the R → R − R_del
// rewriting of Section 5. Tables without an entry are left untouched.
func RewriteScans(p Plan, repl map[string]*Relation) Plan {
	switch n := p.(type) {
	case Scan:
		if del, ok := repl[n.Table]; ok {
			return Diff{L: n, R: Literal{Rel: del}}
		}
		return n
	case Literal:
		return n
	case Select:
		return Select{Input: RewriteScans(n.Input, repl), Cond: n.Cond}
	case Project:
		return Project{Input: RewriteScans(n.Input, repl), Cols: n.Cols}
	case Join:
		return Join{L: RewriteScans(n.L, repl), R: RewriteScans(n.R, repl)}
	case Diff:
		return Diff{L: RewriteScans(n.L, repl), R: RewriteScans(n.R, repl)}
	case Union:
		return Union{L: RewriteScans(n.L, repl), R: RewriteScans(n.R, repl)}
	case Distinct:
		return Distinct{Input: RewriteScans(n.Input, repl)}
	case GroupCount:
		return GroupCount{Input: RewriteScans(n.Input, repl), By: n.By, CountAs: n.CountAs}
	default:
		panic(fmt.Sprintf("engine: unknown plan node %T", p))
	}
}
