package relation

import (
	"slices"

	"repro/internal/intern"
)

// KeyViolatingGroups returns the groups of facts of pred with the given
// arity that agree on the key argument positions and have more than one
// member — the violating groups of a key constraint. The arity filter
// matters: the interned database keys facts by predicate alone, so a
// stray fact of a different arity (which the compiled CQ path ignores)
// must not manufacture a violation against the table's rows. Groups come
// from the sealed database's per-predicate argument index (one bucket
// enumeration, no string keys); for multi-column keys the first
// position's buckets are subdivided by the remaining positions. Members
// and groups are in canonical fact order, so the enumeration is
// deterministic across processes.
//
// Both the practical repair scheme (practical.KeyGroups) and the SAT
// certain-answer compiler (internal/sat) drive their per-group logic off
// this enumeration.
func KeyViolatingGroups(db *Database, pred intern.Sym, arity int, keyPos []int) [][]Fact {
	if len(keyPos) == 0 {
		return nil
	}
	var groups [][]Fact
	db.ForEachGroupAt(pred, keyPos[0], func(_ intern.Sym, fs []Fact) bool {
		if len(fs) < 2 {
			return true
		}
		if len(keyPos) == 1 {
			g := make([]Fact, 0, len(fs))
			for _, f := range fs {
				if f.Arity() == arity {
					g = append(g, f)
				}
			}
			if len(g) > 1 {
				groups = append(groups, g)
			}
			return true
		}
		// Subdivide the bucket by the remaining key positions.
		sub := map[string][]Fact{}
		var order []string
		var buf [64]byte
		rest := make([]intern.Sym, len(keyPos)-1)
		for _, f := range fs {
			if f.Arity() != arity {
				continue
			}
			args := f.Args()
			ok := true
			for i, kp := range keyPos[1:] {
				if kp >= len(args) {
					ok = false
					break
				}
				rest[i] = args[kp]
			}
			if !ok {
				continue
			}
			k := string(intern.PackSyms(buf[:0], rest))
			if _, seen := sub[k]; !seen {
				order = append(order, k)
			}
			sub[k] = append(sub[k], f)
		}
		for _, k := range order {
			if g := sub[k]; len(g) > 1 {
				groups = append(groups, g)
			}
		}
		return true
	})
	for _, g := range groups {
		SortFacts(g)
	}
	slices.SortFunc(groups, func(a, b []Fact) int {
		return CompareFacts(a[0], b[0])
	})
	return groups
}
