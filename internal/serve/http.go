package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/big"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/parse"
	"repro/internal/relation"
)

// This file is the HTTP/JSON surface over Server. Every query answers from
// the snapshot current at arrival and reports its version, so clients can
// correlate answers with the ingests they observed. Probabilities are
// reported both exactly (the rational "num/den") and as a float
// convenience.

// IngestRequest is the body of POST /v1/ingest. Facts are written in the
// text syntax of the corpus files, e.g. "E(a,b)", one per entry.
// Deletions are applied before insertions; within each list, order is
// preserved. The whole batch becomes visible atomically.
type IngestRequest struct {
	Insert []string `json:"insert,omitempty"`
	Delete []string `json:"delete,omitempty"`
}

// IngestResponse reports the snapshot that includes the batch.
type IngestResponse struct {
	Version uint64 `json:"version"`
	Stats   Stats  `json:"stats"`
}

// QueryRequest is the body of POST /v1/query: a first-order query in the
// corpus syntax ("Q(x) :- E(x,y)."). With Tuple set, the response is that
// tuple's conditional probability; without, the full answer set.
type QueryRequest struct {
	Query string   `json:"query"`
	Tuple []string `json:"tuple,omitempty"`
}

// Probability is an exact rational with a float rendering.
type Probability struct {
	Rat   string  `json:"rat"`
	Float float64 `json:"float"`
}

func newProbability(p *big.Rat) Probability {
	f, _ := p.Float64()
	return Probability{Rat: p.RatString(), Float: f}
}

// QueryResponse answers POST /v1/query. Exact is false when the query
// overflowed the enumeration budget and degraded to the (ε, δ) estimator.
type QueryResponse struct {
	Version uint64        `json:"version"`
	Exact   bool          `json:"exact"`
	P       *Probability  `json:"p,omitempty"`
	Answers []QueryAnswer `json:"answers,omitempty"`
}

// QueryAnswer is one tuple of an answer set.
type QueryAnswer struct {
	Tuple []string    `json:"tuple"`
	P     Probability `json:"p"`
}

// FactRequest is the body of POST /v1/fact: one fact in text syntax.
type FactRequest struct {
	Fact string `json:"fact"`
}

// FactResponse reports the fact's exact survival probability.
type FactResponse struct {
	Version uint64      `json:"version"`
	P       Probability `json:"p"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// parseFact parses one fact in the corpus text syntax, accepting both the
// bare form "E(a,b)" and the terminated corpus form "E(a,b).".
func parseFact(s string) (relation.Fact, error) {
	trimmed := strings.TrimRight(strings.TrimSpace(s), ".")
	db, err := parse.Database(trimmed + ".")
	if err != nil {
		return relation.Fact{}, fmt.Errorf("bad fact %q: %w", s, err)
	}
	facts := db.Facts()
	if len(facts) != 1 {
		return relation.Fact{}, fmt.Errorf("bad fact %q: expected exactly one fact, got %d", s, len(facts))
	}
	return facts[0], nil
}

// Handler returns the server's HTTP API:
//
//	GET  /healthz   — liveness; returns "ok".
//	GET  /v1/stats  — current snapshot statistics.
//	POST /v1/ingest — apply a batch of insertions and deletions atomically.
//	POST /v1/query  — conditional probability of a tuple, or the answer set.
//	POST /v1/fact   — exact survival probability of one fact.
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("POST /v1/ingest", func(w http.ResponseWriter, r *http.Request) {
		var req IngestRequest
		if !readJSON(w, r, &req) {
			return
		}
		ops := make([]Op, 0, len(req.Delete)+len(req.Insert))
		for _, s := range req.Delete {
			f, err := parseFact(s)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			ops = append(ops, Op{Fact: f})
		}
		for _, s := range req.Insert {
			f, err := parseFact(s)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			ops = append(ops, Op{Fact: f, Insert: true})
		}
		snap, err := s.Ingest(ops)
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, ErrClosed) {
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, http.StatusOK, IngestResponse{Version: snap.Version(), Stats: snap.Stats()})
	})
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if !readJSON(w, r, &req) {
			return
		}
		q, err := parse.Query(req.Query)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad query: %w", err))
			return
		}
		if req.Tuple != nil {
			p, exact, version, err := s.CP(q, req.Tuple)
			if err != nil {
				writeQueryError(w, err)
				return
			}
			pr := newProbability(p)
			writeJSON(w, http.StatusOK, QueryResponse{Version: version, Exact: exact, P: &pr})
			return
		}
		as, version, err := s.OCA(q)
		if err != nil {
			writeQueryError(w, err)
			return
		}
		resp := QueryResponse{Version: version, Exact: true, Answers: []QueryAnswer{}}
		for _, a := range as.Answers {
			resp.Answers = append(resp.Answers, QueryAnswer{Tuple: a.Tuple, P: newProbability(a.P)})
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/fact", func(w http.ResponseWriter, r *http.Request) {
		var req FactRequest
		if !readJSON(w, r, &req) {
			return
		}
		f, err := parseFact(req.Fact)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		p, version := s.FactProbability(f)
		writeJSON(w, http.StatusOK, FactResponse{Version: version, P: newProbability(p)})
	})
	return mux
}

// maxRequestBody bounds a request body; past it readJSON answers 413
// instead of letting a hostile client stream without limit.
const maxRequestBody = 1 << 20

func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeQueryError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	if errors.Is(err, core.ErrEnumerationBudget) {
		// Non-atomic OCA past the exact budget has no estimator; report the
		// budget overflow distinctly so clients can narrow the query.
		status = http.StatusUnprocessableEntity
	}
	writeError(w, status, err)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// logf is the package's error logger, a variable so tests can capture it.
var logf = log.Printf

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is gone, so the client cannot be told; surface the
		// truncated response server-side instead of dropping it silently.
		logf("serve: encoding %T response: %v", v, err)
	}
}
