package core_test

// Golden tests reproducing the paper's worked examples end to end:
// the Section 3 running example (product preferences), the Markov chain
// figure, Example 6 (repairs and their exact probabilities) and Example 7
// (operational consistent answers vs. the empty ABC certain answers).

import (
	"math/big"
	"testing"

	"repro/internal/abc"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/generators"
	"repro/internal/logic"
	"repro/internal/markov"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/repair"
)

// preferenceInstance builds the running example of Section 3:
// D = {Pref(a,b), Pref(a,c), Pref(a,d), Pref(b,a), Pref(b,d), Pref(c,a)}
// Σ = {Pref(x,y), Pref(y,x) → ⊥}.
func preferenceInstance(t *testing.T) *repair.Instance {
	t.Helper()
	d := relation.FromFacts(
		relation.NewFact("Pref", "a", "b"),
		relation.NewFact("Pref", "a", "c"),
		relation.NewFact("Pref", "a", "d"),
		relation.NewFact("Pref", "b", "a"),
		relation.NewFact("Pref", "b", "d"),
		relation.NewFact("Pref", "c", "a"),
	)
	x, y := logic.Var("x"), logic.Var("y")
	dc := constraint.MustDC([]logic.Atom{
		logic.NewAtom("Pref", x, y),
		logic.NewAtom("Pref", y, x),
	})
	sigma := constraint.NewSet(dc)
	inst, err := repair.NewInstance(d, sigma)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return inst
}

func prefFact(a, b string) relation.Fact { return relation.NewFact("Pref", a, b) }

// TestPreferenceChainFigure reproduces the edge probabilities of the
// Markov chain figure in Section 3.
func TestPreferenceChainFigure(t *testing.T) {
	inst := preferenceInstance(t)
	gen := generators.Preference{}

	tree, err := markov.BuildTree(inst, gen, markov.ExploreOptions{MaxStates: 1000})
	if err != nil {
		t.Fatalf("BuildTree: %v", err)
	}

	// Root edges: -(a,b): 2/9, -(b,a): 3/9, -(a,c): 1/9, -(c,a): 3/9.
	wantRoot := map[string]*big.Rat{
		"-" + prefFact("a", "b").Key(): big.NewRat(2, 9),
		"-" + prefFact("b", "a").Key(): big.NewRat(3, 9),
		"-" + prefFact("a", "c").Key(): big.NewRat(1, 9),
		"-" + prefFact("c", "a").Key(): big.NewRat(3, 9),
	}
	if len(tree.Children) != len(wantRoot) {
		t.Fatalf("root has %d positive-probability edges, want %d", len(tree.Children), len(wantRoot))
	}
	for _, c := range tree.Children {
		want, ok := wantRoot[c.Op.Key()]
		if !ok {
			t.Fatalf("unexpected root edge %s", c.Op)
		}
		if c.P.Cmp(want) != 0 {
			t.Errorf("edge %s has probability %s, want %s", c.Op, c.P.RatString(), want.RatString())
		}
	}

	// Second-level probabilities from the figure, keyed by (first op,
	// second op): after -(a,b): 1/3 and 2/3; after -(b,a): 1/4 and 3/4;
	// after -(a,c): 2/4 and 2/4; after -(c,a): 2/5 and 3/5.
	wantSecond := map[string]map[string]*big.Rat{
		"-" + prefFact("a", "b").Key(): {
			"-" + prefFact("a", "c").Key(): big.NewRat(1, 3),
			"-" + prefFact("c", "a").Key(): big.NewRat(2, 3),
		},
		"-" + prefFact("b", "a").Key(): {
			"-" + prefFact("a", "c").Key(): big.NewRat(1, 4),
			"-" + prefFact("c", "a").Key(): big.NewRat(3, 4),
		},
		"-" + prefFact("a", "c").Key(): {
			"-" + prefFact("a", "b").Key(): big.NewRat(2, 4),
			"-" + prefFact("b", "a").Key(): big.NewRat(2, 4),
		},
		"-" + prefFact("c", "a").Key(): {
			"-" + prefFact("a", "b").Key(): big.NewRat(2, 5),
			"-" + prefFact("b", "a").Key(): big.NewRat(3, 5),
		},
	}
	for _, c := range tree.Children {
		want := wantSecond[c.Op.Key()]
		if len(c.Node.Children) != len(want) {
			t.Fatalf("state %s has %d edges, want %d", c.Node.State, len(c.Node.Children), len(want))
		}
		for _, cc := range c.Node.Children {
			w, ok := want[cc.Op.Key()]
			if !ok {
				t.Fatalf("unexpected edge %s after %s", cc.Op, c.Op)
			}
			if cc.P.Cmp(w) != 0 {
				t.Errorf("edge %s after %s: probability %s, want %s", cc.Op, c.Op, cc.P.RatString(), w.RatString())
			}
			if !cc.Node.IsLeaf() {
				t.Errorf("state %s should be absorbing", cc.Node.State)
			}
		}
	}

	if got := tree.CountStates(); got != 13 {
		t.Errorf("chain has %d states, want 13 (1 root + 4 + 8 leaves)", got)
	}
}

// TestExample6Repairs checks the four operational repairs and their exact
// probabilities (Example 6): 7/54, 38/135, 5/36, 9/20.
func TestExample6Repairs(t *testing.T) {
	inst := preferenceInstance(t)
	sem, err := core.Compute(inst, generators.Preference{}, markov.ExploreOptions{MaxStates: 1000})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}

	if !prob.IsOne(sem.SuccessP) {
		t.Errorf("success probability is %s, want 1 (deletion-only chains are non-failing)", sem.SuccessP.RatString())
	}
	if sem.FailingStates != 0 {
		t.Errorf("found %d failing states, want 0", sem.FailingStates)
	}
	if sem.AbsorbingStates != 8 {
		t.Errorf("found %d absorbing states, want 8", sem.AbsorbingStates)
	}
	if len(sem.Repairs) != 4 {
		t.Fatalf("found %d repairs, want 4", len(sem.Repairs))
	}

	full := preferenceInstance(t).Initial()
	repairRemoving := func(fs ...relation.Fact) string {
		db := full.Clone()
		db.DeleteAll(fs)
		return db.Key()
	}
	want := map[string]*big.Rat{
		repairRemoving(prefFact("a", "b"), prefFact("a", "c")): big.NewRat(7, 54),
		repairRemoving(prefFact("a", "b"), prefFact("c", "a")): big.NewRat(38, 135),
		repairRemoving(prefFact("b", "a"), prefFact("a", "c")): big.NewRat(5, 36),
		repairRemoving(prefFact("b", "a"), prefFact("c", "a")): big.NewRat(9, 20),
	}
	total := prob.Zero()
	for _, r := range sem.Repairs {
		w, ok := want[r.DB.Key()]
		if !ok {
			t.Fatalf("unexpected repair %s", r.DB)
		}
		if r.P.Cmp(w) != 0 {
			t.Errorf("repair %s has probability %s, want %s", r.DB, r.P.RatString(), w.RatString())
		}
		if r.Sequences != 2 {
			t.Errorf("repair %s reached by %d sequences, want 2", r.DB, r.Sequences)
		}
		total.Add(total, r.P)
	}
	if !prob.IsOne(total) {
		t.Errorf("repair probabilities sum to %s, want 1", total.RatString())
	}
}

// mostPreferredQuery is Example 7's Q(x) := forall y (Pref(x,y) | x = y).
func mostPreferredQuery(t *testing.T) *fo.Query {
	t.Helper()
	x, y := logic.Var("x"), logic.Var("y")
	return fo.MustQuery("Q", []logic.Term{x}, fo.ForAll{
		Vars: []logic.Term{y},
		F: fo.Or{
			L: fo.Atom{A: logic.NewAtom("Pref", x, y)},
			R: fo.Eq{L: x, R: y},
		},
	})
}

// TestExample7OCA checks OCA = {(a, 0.45)} and that the ABC certain
// answers are empty on the same input.
func TestExample7OCA(t *testing.T) {
	inst := preferenceInstance(t)
	q := mostPreferredQuery(t)

	sem, err := core.Compute(inst, generators.Preference{}, markov.ExploreOptions{MaxStates: 1000})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	oca := sem.OCA(q)
	if len(oca.Answers) != 1 {
		t.Fatalf("OCA has %d answers, want 1: %v", len(oca.Answers), oca)
	}
	got := oca.Answers[0]
	if len(got.Tuple) != 1 || got.Tuple[0] != "a" {
		t.Fatalf("OCA answer is %v, want (a)", got.Tuple)
	}
	if want := big.NewRat(9, 20); got.P.Cmp(want) != 0 {
		t.Errorf("CP(a) = %s, want 9/20 = 0.45", got.P.RatString())
	}

	// Direct CP computation must agree.
	if cp := sem.CP(q, []string{"a"}); cp.Cmp(big.NewRat(9, 20)) != 0 {
		t.Errorf("CP(a) = %s, want 9/20", cp.RatString())
	}
	if cp := sem.CP(q, []string{"b"}); cp.Sign() != 0 {
		t.Errorf("CP(b) = %s, want 0", cp.RatString())
	}
	if sem.TPC(q, []string{"b"}) {
		t.Error("TPC(b) = true, want false")
	}
	if !sem.TPC(q, []string{"a"}) {
		t.Error("TPC(a) = false, want true")
	}

	// The classical baseline cannot return anything here: the ABC certain
	// answers are empty (the most preferred product is not certain).
	certain, err := abc.CertainAnswers(inst.Initial(), inst.Sigma(), q)
	if err != nil {
		t.Fatalf("CertainAnswers: %v", err)
	}
	if len(certain) != 0 {
		t.Errorf("ABC certain answers = %v, want empty", certain)
	}
}

// TestExample6UniformOverRepairs sanity-checks the equally-likely-repairs
// reweighting of Section 6: each of the 4 repairs gets probability 1/4.
func TestExample6UniformOverRepairs(t *testing.T) {
	inst := preferenceInstance(t)
	sem, err := core.Compute(inst, generators.Preference{}, markov.ExploreOptions{MaxStates: 1000})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	u := sem.UniformOverRepairs()
	if len(u.Repairs) != 4 {
		t.Fatalf("got %d repairs, want 4", len(u.Repairs))
	}
	for _, r := range u.Repairs {
		if want := big.NewRat(1, 4); r.P.Cmp(want) != 0 {
			t.Errorf("repair %s has probability %s, want 1/4", r.DB, r.P.RatString())
		}
	}
	q := mostPreferredQuery(t)
	if cp := u.CP(q, []string{"a"}); cp.Cmp(big.NewRat(1, 4)) != 0 {
		t.Errorf("uniform-repair CP(a) = %s, want 1/4", cp.RatString())
	}
}
