// Semantics: the same inconsistent database answered under the two
// operational semantics — the walk-induced distribution of PODS 2018 and
// the sequence-uniform distribution of PODS 2022 — exactly, then sampled.
//
// The instance is a road network whose sensor feed glitched: three
// consecutive road segments were reported, but a planning rule forbids two
// consecutive segments (roadworks may not close a path of two). The
// conflict graph is a path — the middle segment conflicts with both ends —
// and on asymmetric conflict graphs the two semantics provably disagree.
//
// Run with: go run ./examples/semantics
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/generators"
	"repro/internal/markov"
	"repro/internal/parse"
	"repro/internal/prob"
	"repro/internal/repair"
	"repro/internal/sampling"
)

func main() {
	db, err := parse.Database(`
		road(a, b).
		road(b, c).
		road(c, d).
	`)
	if err != nil {
		log.Fatal(err)
	}
	sigma, err := parse.Constraints(`
		!(road(X, Y), road(Y, Z)).
	`)
	if err != nil {
		log.Fatal(err)
	}
	q, err := parse.Query(`Open(X, Y) := road(X, Y).`)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := repair.NewInstance(db, sigma)
	if err != nil {
		log.Fatal(err)
	}

	// Exact semantics under both modes. The support — which repairs exist —
	// is identical; only the probabilities move. The repair {road(a,b),
	// road(c,d)} is reachable by exactly ONE complete sequence (delete the
	// middle segment and both conflicts vanish), while every other repair
	// has two; the walk nevertheless gives it mass 1/5, because the single
	// deletion -road(b,c) is one of five equally likely first steps.
	modes := []core.SemanticsMode{core.WalkInduced, core.SequenceUniform}
	sems := map[core.SemanticsMode]*core.Semantics{}
	for _, mode := range modes {
		sem, err := core.ComputeMode(inst, generators.Uniform{}, markov.ExploreOptions{MaxStates: 100000}, mode)
		if err != nil {
			log.Fatal(err)
		}
		sems[mode] = sem
	}
	uni := sems[core.SequenceUniform]
	fmt.Printf("%s complete repairing sequences, %d repairs\n\n", uni.TotalSequences, len(uni.Repairs))
	fmt.Println("repair                          seqs   walk P      uniform P")
	for i, r := range sems[core.WalkInduced].Repairs {
		u := uni.Repairs[i]
		fmt.Printf("%-30s  %4s   %-9s   %-9s\n", r.DB, u.SeqCount, r.P.RatString(), u.P.RatString())
	}

	// The divergence carries into the query answers: "is segment (x,y)
	// open?" under walk vs uniform semantics.
	fmt.Println("\nCP(tuple) under each semantics:")
	for _, tuple := range [][]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
		fmt.Printf("  road(%s, %s) : walk %-10s uniform %s\n", tuple[0], tuple[1],
			prob.Format(sems[core.WalkInduced].CP(q, tuple)),
			prob.Format(uni.CP(q, tuple)))
	}

	// The approximate path: the chain is collapsible (uniform generator,
	// no TGDs), so the estimator samples complete sequences *exactly*
	// uniformly via count-guided walks down the sequence DAG, and the
	// Theorem 9 (ε,δ) guarantee applies to the uniform semantics too.
	est := &sampling.Estimator{
		Inst: inst, Gen: generators.Uniform{}, Seed: 1,
		Mode: core.SequenceUniform,
	}
	run, err := est.EstimateAnswers(q, 0.1, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsampled uniform semantics (n = %d count-guided draws over %s sequences):\n",
		run.N, run.TotalSequences)
	for _, e := range run.Estimates {
		fmt.Printf("  road(%s, %s) : %.3f\n", e.Tuple[0], e.Tuple[1], e.P)
	}
}
