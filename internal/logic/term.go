package logic

import (
	"fmt"
	"strings"

	"repro/internal/intern"
)

// Term is either a constant or a variable appearing in an atom.
// Terms are immutable values; equality is structural.
type Term struct {
	sym   intern.Sym
	isVar bool
}

// Const returns a constant term with the given name. Constant names are
// drawn from the countably infinite set C of the paper; any non-empty
// string is a valid constant.
func Const(name string) Term { return Term{sym: intern.S(name)} }

// Var returns a variable term with the given name. Variables are drawn from
// the set V, disjoint from C; the disjointness is enforced by the isVar tag,
// so Const("x") and Var("x") are distinct terms.
func Var(name string) Term { return Term{sym: intern.S(name), isVar: true} }

// ConstSym returns a constant term over an already-interned symbol; this is
// the allocation-free constructor used on hot paths.
func ConstSym(s intern.Sym) Term { return Term{sym: s} }

// VarSym returns a variable term over an already-interned symbol.
func VarSym(s intern.Sym) Term { return Term{sym: s, isVar: true} }

// Name reports the identifier of the term.
func (t Term) Name() string { return intern.Name(t.sym) }

// Sym reports the interned symbol of the term's identifier.
func (t Term) Sym() intern.Sym { return t.sym }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.isVar }

// IsConst reports whether the term is a constant.
func (t Term) IsConst() bool { return !t.isVar }

// Zero reports whether the term is the zero value (no name). A zero term is
// not a valid constant or variable and only arises from uninitialized data.
func (t Term) Zero() bool { return t.sym == 0 }

// String renders the term. Variables print as-is; constants that could be
// mistaken for variables (per the parser's case convention) are quoted.
func (t Term) String() string {
	if t.isVar {
		return t.Name()
	}
	return QuoteConstIfNeeded(t.Name())
}

// QuoteConstIfNeeded returns the constant name, quoted when a reader (or the
// parser) could confuse it with a variable or when it contains delimiters.
func QuoteConstIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	plain := true
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
		case r >= '0' && r <= '9':
		case r == '_':
		case (r >= 'A' && r <= 'Z') && i > 0:
		default:
			plain = false
		}
		if i == 0 && r >= 'A' && r <= 'Z' {
			plain = false // leading uppercase means variable in the text format
		}
		if !plain {
			break
		}
	}
	if plain {
		return s
	}
	return fmt.Sprintf("%q", s)
}

// Atom is a predicate applied to a list of terms. An atom with no variables
// is a fact. The zero Atom has an empty predicate and is invalid. The
// predicate is stored interned; use PredName for the string.
type Atom struct {
	Pred intern.Sym
	Args []Term
}

// NewAtom constructs an atom, interning the predicate name.
func NewAtom(pred string, args ...Term) Atom {
	return Atom{Pred: intern.S(pred), Args: args}
}

// AtomOf constructs an atom over an already-interned predicate symbol.
func AtomOf(pred intern.Sym, args ...Term) Atom {
	return Atom{Pred: pred, Args: args}
}

// PredName reports the predicate name.
func (a Atom) PredName() string { return intern.Name(a.Pred) }

// Arity reports the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// IsGround reports whether the atom contains no variables.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// Vars returns the distinct variables of the atom in order of first
// occurrence.
func (a Atom) Vars() []Term {
	var out []Term
	seen := map[intern.Sym]bool{}
	for _, t := range a.Args {
		if t.IsVar() && !seen[t.sym] {
			seen[t.sym] = true
			out = append(out, t)
		}
	}
	return out
}

// String renders the atom in the text format, e.g. R(a, X).
func (a Atom) String() string {
	var b strings.Builder
	b.WriteString(a.PredName())
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports structural equality of two atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// VarsOf returns the distinct variables of a list of atoms in order of first
// occurrence; this is dom(A) ∩ V in the paper's notation.
func VarsOf(atoms []Atom) []Term {
	var out []Term
	seen := map[intern.Sym]bool{}
	for _, a := range atoms {
		for _, t := range a.Args {
			if t.IsVar() && !seen[t.sym] {
				seen[t.sym] = true
				out = append(out, t)
			}
		}
	}
	return out
}

// VarSymsOf returns the distinct variable symbols of a list of atoms in
// order of first occurrence.
func VarSymsOf(atoms []Atom) []intern.Sym {
	var out []intern.Sym
	seen := map[intern.Sym]bool{}
	for _, a := range atoms {
		for _, t := range a.Args {
			if t.IsVar() && !seen[t.sym] {
				seen[t.sym] = true
				out = append(out, t.sym)
			}
		}
	}
	return out
}

// ConstsOf returns the distinct constants of a list of atoms, sorted by
// name.
func ConstsOf(atoms []Atom) []Term {
	seen := map[intern.Sym]bool{}
	var syms []intern.Sym
	for _, a := range atoms {
		for _, t := range a.Args {
			if t.IsConst() && !seen[t.sym] {
				seen[t.sym] = true
				syms = append(syms, t.sym)
			}
		}
	}
	intern.SortSyms(syms)
	out := make([]Term, len(syms))
	for i, s := range syms {
		out[i] = ConstSym(s)
	}
	return out
}

// AtomsString renders a conjunction of atoms separated by commas.
func AtomsString(atoms []Atom) string {
	parts := make([]string, len(atoms))
	for i, a := range atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}
