package ops

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/constraint"
	"repro/internal/intern"
	"repro/internal/logic"
	"repro/internal/relation"
)

// maxSubsetFacts bounds the violation-body sizes for which the direct
// (exponential in |F|) Definition 3 test enumerates subsets. Constraint
// bodies are tiny in practice; 20 facts is far beyond anything realistic
// and keeps the bitmask enumeration within int range.
const maxSubsetFacts = 20

// IsFixing reports whether op is (D,Σ)-fixing: applying it removes at least
// one violation, i.e. V(D,Σ) − V(op(D),Σ) ≠ ∅ (requirement req1).
func IsFixing(op Op, d *relation.Database, sigma *constraint.Set) bool {
	before := constraint.FindViolations(d, sigma)
	if before.Empty() {
		return false
	}
	after := constraint.FindViolations(op.Apply(d), sigma)
	return len(before.Minus(after)) > 0
}

// IsJustified implements Definition 3 directly: op is (D,Σ)-justified if
// some violation (κ,h) eliminated by op satisfies the minimality side
// conditions over every non-empty proper subset G ⊊ F. This is the
// reference implementation used to validate the efficient enumeration in
// JustifiedOps and to check global justification of additions.
func IsJustified(op Op, d *relation.Database, sigma *constraint.Set) bool {
	facts := op.Facts()
	if len(facts) > maxSubsetFacts {
		panic(fmt.Sprintf("ops: |F| = %d exceeds the supported subset-enumeration bound", len(facts)))
	}
	before := constraint.FindViolations(d, sigma)
	after := constraint.FindViolations(op.Apply(d), sigma)
	eliminated := before.Minus(after)
	if len(eliminated) == 0 {
		return false
	}
	// Precompute V(op_G(D)) for every non-empty proper subset G ⊊ F.
	n := len(facts)
	subsetViolations := make(map[int]*constraint.Violations)
	for mask := 1; mask < (1<<n)-1; mask++ {
		var g []relation.Fact
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				g = append(g, facts[i])
			}
		}
		var sub Op
		if op.insert {
			sub = Insert(g...)
		} else {
			sub = Delete(g...)
		}
		subsetViolations[mask] = constraint.FindViolations(sub.Apply(d), sigma)
	}
	for _, v := range eliminated {
		id := v.ID()
		ok := true
		for mask := 1; mask < (1<<n)-1; mask++ {
			vg := subsetViolations[mask]
			if op.insert {
				// Condition 1: (κ,h) must still be violated after adding
				// any proper subset.
				if !vg.Has(id) {
					ok = false
					break
				}
			} else {
				// Condition 2: (κ,h) must already be eliminated after
				// deleting any proper subset.
				if vg.Has(id) {
					ok = false
					break
				}
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// JustifiedOps enumerates every justified operation at the state d, given
// its violation set vs = V(d,Σ) and the base B(D,Σ). Following
// Proposition 1:
//
//   - for every violation (κ,h) and every non-empty F ⊆ h(ϕ), the deletion
//     −F is justified;
//   - for every TGD violation (κ,h), the insertions +F with
//     F = h'(ψ) − d minimal (under strict inclusion) over the extensions h'
//     of h into dom(B(D,Σ)) are justified.
//
// The result is deduplicated and canonically ordered.
func JustifiedOps(d *relation.Database, sigma *constraint.Set, vs *constraint.Violations, base *relation.Base) []Op {
	seen := map[*opEntry]bool{}
	var out []Op
	for _, v := range vs.All() {
		for _, op := range JustifiedDeletions(v) {
			if !seen[op.entry] {
				seen[op.entry] = true
				out = append(out, op)
			}
		}
		if v.Constraint.Kind() == constraint.TGD {
			for _, op := range JustifiedAdditions(v, d, base) {
				if !seen[op.entry] {
					seen[op.entry] = true
					out = append(out, op)
				}
			}
		}
	}
	SortOps(out)
	return out
}

// JustifiedDeletions returns −F for every non-empty F ⊆ h(ϕ): the justified
// deletions fixing the violation (Proposition 1). The result depends only
// on the violation's body image, so callers may cache it by body key.
func JustifiedDeletions(v constraint.Violation) []Op {
	body := v.BodyFacts()
	n := len(body)
	if n > maxSubsetFacts {
		panic(fmt.Sprintf("ops: violation body with %d facts exceeds the subset-enumeration bound", n))
	}
	out := make([]Op, 0, (1<<n)-1)
	for mask := 1; mask < 1<<n; mask++ {
		var f []relation.Fact
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				f = append(f, body[i])
			}
		}
		out = append(out, Delete(f...))
	}
	return out
}

// JustifiedAdditions returns the minimal head-completion insertions for a
// TGD violation: +F with F = h'(ψ) − d over extensions h' of h that map the
// existential variables into the base domain, keeping only the candidates
// minimal under strict inclusion (Definition 3, condition 1).
func JustifiedAdditions(v constraint.Violation, d *relation.Database, base *relation.Base) []Op {
	c := v.Constraint
	exVars := c.ExistentialVars()
	dom := base.DomSyms()

	// Candidate facts are held as ground (pred, args...) tuples encoded as
	// packed byte strings until the minimality filter has chosen the
	// winners: the enumeration visits |dom|^|z̄| extensions, and interning
	// every rejected candidate into the process-wide fact table would grow
	// it without bound. Presence in d is checked through LookupFact, which
	// never interns (a fact that was never materialized is in no database).
	type candidate struct {
		facts []string // packed tuple per fact, sorted — candidate identity
	}
	var candidates []candidate
	keys := map[string]bool{}
	ground := make([]intern.Sym, 0, 8)
	var extend func(i int, h logic.Subst)
	extend = func(i int, h logic.Subst) {
		if i == len(exVars) {
			var facts []string
			for _, a := range c.Head() {
				ground = ground[:0]
				ground = append(ground, a.Pred)
				for _, t := range a.Args {
					s := t.Sym()
					if t.IsVar() {
						bound, ok := h[s]
						if !ok {
							panic(fmt.Sprintf("ops: TGD head atom %s not grounded by extension %s", a, h))
						}
						s = bound
					}
					ground = append(ground, s)
				}
				if f, ok := relation.LookupFact(ground[0], ground[1:]); ok && d.Contains(f) {
					continue
				}
				pack := string(intern.PackSyms(make([]byte, 0, 4*len(ground)), ground))
				dup := false
				for _, p := range facts {
					if p == pack {
						dup = true
						break
					}
				}
				if !dup {
					facts = append(facts, pack)
				}
			}
			if len(facts) == 0 {
				// The head is already satisfied; (κ,h) was not a violation.
				return
			}
			sort.Strings(facts)
			key := strings.Join(facts, ";")
			if !keys[key] {
				keys[key] = true
				candidates = append(candidates, candidate{facts: facts})
			}
			return
		}
		for _, cst := range dom {
			h[exVars[i].Sym()] = cst
			extend(i+1, h)
			delete(h, exVars[i].Sym())
		}
	}
	extend(0, v.H.Clone())

	// Keep only candidates minimal under strict inclusion: +F is justified
	// iff no other candidate F' ⊊ F (Definition 3, condition 1). Only the
	// winners are interned as facts and operations.
	var out []Op
	for i, f := range candidates {
		minimal := true
		for j, g := range candidates {
			if i != j && strictSubset(g.facts, f.facts) {
				minimal = false
				break
			}
		}
		if minimal {
			facts := make([]relation.Fact, len(f.facts))
			for k, pack := range f.facts {
				tuple := unpackSyms(pack)
				facts[k] = relation.FactOf(tuple[0], tuple[1:])
			}
			out = append(out, Insert(facts...))
		}
	}
	return out
}

// unpackSyms decodes a packed little-endian tuple.
func unpackSyms(pack string) []intern.Sym {
	out := make([]intern.Sym, len(pack)/4)
	for i := range out {
		out[i] = intern.Sym(uint32(pack[4*i]) | uint32(pack[4*i+1])<<8 |
			uint32(pack[4*i+2])<<16 | uint32(pack[4*i+3])<<24)
	}
	return out
}

// strictSubset reports whether a ⊊ b for sorted packed-fact slices.
func strictSubset(a, b []string) bool {
	if len(a) >= len(b) {
		return false
	}
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}
