package serve

import (
	"errors"
	"math/big"
	"sync"
	"sync/atomic"

	"repro/internal/abc"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/markov"
	"repro/internal/relation"
)

// ErrClosed is returned by Ingest after Close.
var ErrClosed = errors.New("serve: server closed")

// Options tunes a Server.
type Options struct {
	// Workers sizes the component worker pool of each recompute (≤ 0 means
	// GOMAXPROCS). Served answers are bit-identical for every value.
	Workers int
	// MaxStates bounds each component's DAG exploration (0 = unbounded).
	MaxStates int
	// Eps and Delta are the sampling guarantee used when a non-atomic query
	// overflows the exact enumeration budget and degrades to the (ε, δ)
	// estimator; they default to 0.05 each.
	Eps, Delta float64
	// Seed seeds the degradation estimator, so a query repeated against the
	// same snapshot returns the same estimate.
	Seed int64
	// CompactLimit bounds the copy-on-write delta a served database may
	// accumulate before publication folds it into a fresh snapshot
	// (default 4096). Smaller keeps reader clones cheaper; larger amortizes
	// the O(|D|) fold over more ingests.
	CompactLimit int
	// QueueDepth sizes the ingest queue feeding the writer goroutine
	// (default 64).
	QueueDepth int
	// NoCache disables the structural semantics cache (cold-cache
	// benchmarks and the trust-style generators that bypass it anyway).
	NoCache bool
}

func (o Options) withDefaults() Options {
	if o.Eps <= 0 {
		o.Eps = 0.05
	}
	if o.Delta <= 0 {
		o.Delta = 0.05
	}
	if o.CompactLimit <= 0 {
		o.CompactLimit = 4096
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	return o
}

// Op is one ingested change: a fact inserted or retracted.
type Op struct {
	Fact   relation.Fact
	Insert bool
}

// Stats describes a published snapshot.
type Stats struct {
	// Version counts the published snapshots (0 = the initial build).
	Version uint64 `json:"version"`
	// Facts, Violations, and Components size the snapshot.
	Facts      int `json:"facts"`
	Violations int `json:"violations"`
	Components int `json:"components"`
	// Untouched counts the facts outside every conflict component.
	Untouched int `json:"untouched"`
	// Reused, Recomputed, CacheHits, and CacheMisses describe the build
	// that published this snapshot: components carried verbatim from the
	// previous snapshot, components explored, and the structural-cache
	// traffic among the explored ones.
	Reused      int `json:"reused"`
	Recomputed  int `json:"recomputed"`
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// CumOps and CumRecomputed accumulate applied operations and component
	// recomputes across the server's lifetime.
	CumOps        uint64 `json:"cum_ops"`
	CumRecomputed uint64 `json:"cum_recomputed"`
	// CacheShapes is the number of distinct component shapes resident in
	// the structural cache.
	CacheShapes int `json:"cache_shapes"`
}

// Snapshot is one published, immutable serving state: the database, its
// violations, the conflict partition, and the factored semantics, all
// consistent with each other. Readers obtain one via Server.Snapshot and
// may query it for as long as they like — later ingests publish new
// snapshots without invalidating old ones.
type Snapshot struct {
	DB         *relation.Database
	Violations *constraint.Violations
	Part       *abc.Partition
	Fac        *core.Factored
	stats      Stats
}

// Version returns the snapshot's publication version.
func (sn *Snapshot) Version() uint64 { return sn.stats.Version }

// Stats returns the snapshot's statistics.
func (sn *Snapshot) Stats() Stats { return sn.stats }

// Server is a resident OCQA engine: it holds the current Snapshot behind an
// atomic pointer (readers never block, never see a half-applied ingest) and
// funnels all ingests through a single writer goroutine that re-maintains
// violations, the conflict partition, and the factored semantics with work
// proportional to the delta's touched region. The structural semantics
// cache stays warm across deltas, so a recomputed component that is
// isomorphic to anything ever explored costs one renaming, not a DAG
// exploration.
type Server struct {
	sigma *constraint.Set
	gen   core.LocalGenerator
	opts  Options
	cache *core.SemanticsCache

	cur atomic.Pointer[Snapshot]

	mu            sync.Mutex // serializes apply; the writer loop is the usual sole caller
	cumOps        uint64
	cumRecomputed uint64

	reqs      chan ingestReq
	done      chan struct{}
	loopDone  chan struct{}
	closeOnce sync.Once
}

type applyResult struct {
	snap *Snapshot
	err  error
}

type ingestReq struct {
	ops   []Op
	reply chan applyResult
}

// New builds the initial snapshot from the database (which is copied, not
// retained) and starts the writer goroutine. The generator must be local
// (the factored engine's requirement) and Σ must be TGD-free.
func New(db *relation.Database, sigma *constraint.Set, gen core.LocalGenerator, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	s := &Server{
		sigma:    sigma,
		gen:      gen,
		opts:     opts,
		cache:    core.NewSemanticsCache(),
		reqs:     make(chan ingestReq, opts.QueueDepth),
		done:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	initial := db.Clone()
	initial.Seal()
	vs := constraint.FindViolations(initial, sigma)
	part := abc.NewPartition(vs)
	fac, err := core.ComputeFactoredDelta(initial, sigma, gen, s.explore(), s.fopt(), core.FactoredDelta{Part: part})
	if err != nil {
		return nil, err
	}
	s.cumRecomputed = uint64(len(fac.Components))
	snap := &Snapshot{DB: initial, Violations: vs, Part: part, Fac: fac}
	snap.stats = s.statsFor(snap, 0)
	s.cur.Store(snap)
	go s.loop()
	return s, nil
}

func (s *Server) explore() markov.ExploreOptions {
	return markov.ExploreOptions{MaxStates: s.opts.MaxStates, Workers: s.opts.Workers}
}

func (s *Server) fopt() core.FactoredOptions {
	return core.FactoredOptions{NoCache: s.opts.NoCache, Cache: s.cache}
}

func (s *Server) statsFor(snap *Snapshot, version uint64) Stats {
	return Stats{
		Version:       version,
		Facts:         snap.DB.Size(),
		Violations:    snap.Violations.Len(),
		Components:    len(snap.Fac.Components),
		Untouched:     snap.Fac.Untouched.Size(),
		Reused:        snap.Fac.Reused,
		Recomputed:    len(snap.Fac.Components) - snap.Fac.Reused,
		CacheHits:     snap.Fac.CacheHits,
		CacheMisses:   snap.Fac.CacheMisses,
		CumOps:        s.cumOps,
		CumRecomputed: s.cumRecomputed,
		CacheShapes:   s.cache.Len(),
	}
}

// Snapshot returns the current published state; never nil, never blocks.
func (s *Server) Snapshot() *Snapshot { return s.cur.Load() }

// Stats returns the current snapshot's statistics.
func (s *Server) Stats() Stats { return s.cur.Load().stats }

// Ingest hands the batch to the writer goroutine and waits for the snapshot
// that includes it. Batches from concurrent callers are applied in queue
// order, each atomically: readers see either none or all of a batch.
func (s *Server) Ingest(ops []Op) (*Snapshot, error) {
	req := ingestReq{ops: ops, reply: make(chan applyResult, 1)}
	select {
	case s.reqs <- req:
	case <-s.done:
		return nil, ErrClosed
	}
	select {
	case r := <-req.reply:
		return r.snap, r.err
	case <-s.loopDone:
		// The loop drained the queue on shutdown; it may have answered this
		// request on its way out.
		select {
		case r := <-req.reply:
			return r.snap, r.err
		default:
			return nil, ErrClosed
		}
	}
}

// Close stops the writer goroutine; pending ingests fail with ErrClosed.
// Queries keep answering from the last published snapshot.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.done) })
	<-s.loopDone
}

func (s *Server) loop() {
	defer close(s.loopDone)
	for {
		select {
		case req := <-s.reqs:
			snap, err := s.apply(req.ops)
			req.reply <- applyResult{snap, err}
		case <-s.done:
			for {
				select {
				case req := <-s.reqs:
					req.reply <- applyResult{nil, ErrClosed}
				default:
					return
				}
			}
		}
	}
}

// apply advances the served state by one batch: an O(delta) clone of the
// current database, fused violation maintenance and partition updates per
// operation, then a delta-scoped factored rebuild that reuses every
// untouched component. The new snapshot is published atomically; the
// previous one stays valid for readers still holding it.
func (s *Server) apply(ops []Op) (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.cur.Load()
	db := cur.DB.Clone()
	vs := cur.Violations
	part := cur.Part
	var removed []*abc.Island
	var applied []core.FactDelta
	for _, op := range ops {
		var changed bool
		if op.Insert {
			changed = db.Insert(op.Fact)
		} else {
			changed = db.Delete(op.Fact)
		}
		if !changed {
			continue
		}
		cf := []relation.Fact{op.Fact}
		after, elim, intro := constraint.UpdateViolationsDelta(db, s.sigma, vs, cf, op.Insert)
		vs = after
		var rem []*abc.Island
		part, _, rem = part.Update(elim, intro, cf)
		removed = append(removed, rem...)
		applied = append(applied, core.FactDelta{Fact: op.Fact, Insert: op.Insert})
	}
	if len(applied) == 0 {
		return cur, nil
	}
	db.Compact(s.opts.CompactLimit)
	fac, err := core.ComputeFactoredDelta(db, s.sigma, s.gen, s.explore(), s.fopt(), core.FactoredDelta{
		Prev:    cur.Fac,
		Part:    part,
		Removed: removed,
		Ops:     applied,
	})
	if err != nil {
		return nil, err
	}
	s.cumOps += uint64(len(applied))
	s.cumRecomputed += uint64(len(fac.Components) - fac.Reused)
	next := &Snapshot{DB: db, Violations: vs, Part: part, Fac: fac}
	next.stats = s.statsFor(next, cur.stats.Version+1)
	s.cur.Store(next)
	return next, nil
}

// FactProbability answers the atomic query "does the fact survive
// repairing" from the resident fact→component index of the current
// snapshot: an O(1) index probe plus a read of the component's exact
// marginal.
func (s *Server) FactProbability(f relation.Fact) (*big.Rat, uint64) {
	sn := s.cur.Load()
	return sn.Fac.FactProbability(f), sn.stats.Version
}

// CP answers the conditional-probability query on the current snapshot.
// Atomic queries read exact marginals; other queries enumerate the product
// distribution exactly while it fits the budget and degrade to the (ε, δ)
// sampling estimate past it — exact reports which route answered.
func (s *Server) CP(q *fo.Query, tuple []string) (p *big.Rat, exact bool, version uint64, err error) {
	sn := s.cur.Load()
	p, exact, err = sn.Fac.CPOrEstimate(q, tuple, s.opts.Eps, s.opts.Delta, s.opts.Seed)
	return p, exact, sn.stats.Version, err
}

// OCA answers the operational consistent answers on the current snapshot.
// Atomic queries scan once and read marginals; others enumerate under the
// exact budget.
func (s *Server) OCA(q *fo.Query) (*core.AnswerSet, uint64, error) {
	sn := s.cur.Load()
	as, err := sn.Fac.OCA(q)
	return as, sn.stats.Version, err
}
