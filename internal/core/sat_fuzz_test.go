package core_test

// FuzzSATCertain is the differential fuzz target for the SAT engine:
// parse a database, a constraint set, and a query from the text formats,
// and require the SAT pipeline's certain answers to agree exactly with
// the DAG engine's on every instance both can handle. The two engines
// share no repair-space code — one merges explored chain states, the
// other reasons propositionally — so any divergence the fuzzer finds is
// a real semantics bug in one of them.
//
// Run continuously with:
//
//	go test -run '^$' -fuzz FuzzSATCertain ./internal/core
//
// CI runs a short smoke pass; seed corpus in testdata/fuzz/FuzzSATCertain.

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/generators"
	"repro/internal/markov"
	"repro/internal/parse"
	"repro/internal/repair"
	"repro/internal/sat"
)

func FuzzSATCertain(f *testing.F) {
	seeds := [][3]string{
		{
			"R(a, 1). R(a, 2). R(b, 3).",
			"R(X, Y), R(X, Z) -> Y = Z.",
			"Q(X) := exists Y: R(X, Y).",
		},
		{
			"R(a, 1). R(a, 2). S(a, x). S(b, y). S(b, z).",
			"R(X, Y), R(X, Z) -> Y = Z. S(X, Y), S(X, Z) -> Y = Z.",
			"J(X) := exists Y: exists Z: (R(X, Y) & S(X, Z)).",
		},
		{
			"R(k, v).",
			"R(X, Y), R(X, Z) -> Y = Z.",
			"B() := exists X: exists Y: R(X, Y).",
		},
		{
			"R(a, 1). R(a, 2). R(a, 3).",
			"R(X, Y), R(X, Z) -> Y = Z.",
			"Q(X, Y) := R(X, Y).",
		},
		{
			"R(a, 1). R(b, 2).",
			"",
			"Q(X) := exists Y: R(X, Y).",
		},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1], s[2])
	}
	f.Fuzz(func(t *testing.T, dbSrc, sigmaSrc, querySrc string) {
		db, err := parse.Database(dbSrc)
		if err != nil {
			return
		}
		sigma, err := parse.Constraints(sigmaSrc)
		if err != nil {
			return
		}
		q, err := parse.Query(querySrc)
		if err != nil {
			return
		}
		// Keep the chain side tractable: the differential property only
		// needs instances the DAG can finish, and the homomorphism side
		// bounded (a fuzzed cross-product query over a wide database is
		// legal but pointless to grind through).
		if len(db.Facts()) > 24 {
			return
		}
		if atoms, _, ok := q.CQ(); !ok || len(atoms) > 4 {
			return
		}

		enc, err := sat.NewEncoder(db, sigma, sat.Options{})
		if err != nil {
			if errors.Is(err, sat.ErrUnsupportedConstraints) {
				return
			}
			t.Fatalf("NewEncoder: %v", err)
		}
		if enc.ConflictFacts() > 12 {
			return // chain side would blow up; nothing differential to check
		}
		satRes, err := enc.CertainAnswers(q)
		if err != nil {
			if errors.Is(err, sat.ErrUnsupportedQuery) {
				return
			}
			t.Fatalf("CertainAnswers: %v", err)
		}

		inst, err := repair.NewInstance(db, sigma)
		if err != nil {
			return
		}
		sem, err := core.Compute(inst, generators.Uniform{}, markov.ExploreOptions{MaxStates: 500_000})
		if err != nil {
			if errors.Is(err, markov.ErrStateBudget) {
				return
			}
			t.Fatalf("Compute: %v", err)
		}
		dagCertain := sem.Certain(q)
		if len(dagCertain) != len(satRes.Answers) {
			t.Fatalf("certain sets differ: dag=%v sat=%v\ndb: %q\nsigma: %q\nquery: %q",
				dagCertain, satRes.Answers, dbSrc, sigmaSrc, querySrc)
		}
		for i := range dagCertain {
			if fo.TupleKey(dagCertain[i]) != fo.TupleKey(satRes.Answers[i]) {
				t.Fatalf("certain tuple %d differs: dag=%v sat=%v\ndb: %q\nsigma: %q\nquery: %q",
					i, dagCertain[i], satRes.Answers[i], dbSrc, sigmaSrc, querySrc)
			}
		}
	})
}
