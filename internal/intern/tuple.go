package intern

// PackTuple appends the little-endian encoding of the tuple to dst and
// returns it; with a stack-backed dst the subsequent map lookup or
// comparison is allocation-free. It is the shared encoding for the
// content-addressed intern tables (facts, violations, operations).
func PackTuple(dst []byte, tuple []uint32) []byte {
	for _, v := range tuple {
		dst = append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return dst
}

// PackSyms is PackTuple over symbol slices (Sym is a defined uint32).
func PackSyms(dst []byte, syms []Sym) []byte {
	for _, v := range syms {
		dst = append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return dst
}
