package main

// E6–E10: complexity-shape and approximation experiments.

import (
	"fmt"
	"math"
	"time"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/generators"
	"repro/internal/logic"
	"repro/internal/markov"
	"repro/internal/plan"
	"repro/internal/prob"
	"repro/internal/repair"
	"repro/internal/sampling"
	"repro/internal/workload"
)

func init() {
	register("E6", "Theorem 5 shape: exact OCQA explodes, sampling stays flat", func() error {
		fmt.Println("  conflicts | absorbing seqs | exact time | 150-sample time")
		q := existsKeyQuery()
		// The exact column now runs on the DAG-collapsed engine (the
		// uniform generator is memoryless), so points the sequence tree
		// could never finish — 8 conflicts is 3^8·8! ≈ 2.6·10^8 sequences —
		// are routine; the DAG visits only 4^8 = 65536 distinct databases.
		points := []int{1, 2, 3, 4, 5, 6, 8}
		if fullScale {
			points = append(points, 10)
		}
		for _, conflicts := range points {
			d, sigma := workload.KeyViolations(workload.KeyConfig{
				Keys: conflicts, Violations: conflicts, Seed: 1,
			})
			inst := repair.MustInstance(d, sigma)

			start := time.Now()
			sem, err := core.Compute(inst, generators.Uniform{}, markov.ExploreOptions{MaxStates: 5_000_000})
			if err != nil {
				return err
			}
			exactTime := time.Since(start)

			start = time.Now()
			est := &sampling.Estimator{Inst: inst, Gen: generators.Uniform{}, Seed: 1}
			if _, err := est.EstimateWithN(q, 150); err != nil {
				return err
			}
			sampleTime := time.Since(start)

			fmt.Printf("  %9d | %14d | %10s | %15s\n",
				conflicts, sem.AbsorbingStates, exactTime.Round(time.Microsecond), sampleTime.Round(time.Microsecond))
		}
		fmt.Println("  expected shape: absorbing sequences grow as 3^k·k! (each key conflict")
		fmt.Println("  contributes ops -α, -β, -{α,β} in any order); the DAG engine pays only")
		fmt.Println("  4^k distinct databases and sampling grows linearly.")
		return nil
	})

	register("E7", "Theorem 9: Hoeffding table and measured additive error", func() error {
		fmt.Println("  n(ε,δ) = ⌈ln(2/δ)/(2ε²)⌉:")
		for _, p := range [][2]float64{{0.1, 0.1}, {0.05, 0.1}, {0.1, 0.05}, {0.05, 0.05}, {0.02, 0.05}} {
			n, err := prob.HoeffdingSamples(p[0], p[1])
			if err != nil {
				return err
			}
			note := ""
			if p[0] == 0.1 && p[1] == 0.1 {
				note = "   <- the paper's example (n = 150)"
			}
			fmt.Printf("    ε = %-5g δ = %-5g → n = %d%s\n", p[0], p[1], n, note)
		}

		// Measured coverage on the preference example: CP(a) = 0.45 exactly.
		inst := preferenceInstance()
		q := mostPreferredQuery()
		sem, err := core.Compute(inst, generators.Preference{}, markov.ExploreOptions{MaxStates: 1000})
		if err != nil {
			return err
		}
		exact := prob.Float(sem.CP(q, []string{"a"}))
		const eps, delta = 0.1, 0.1
		trials, within := 100, 0
		maxErr := 0.0
		for i := 0; i < trials; i++ {
			est := &sampling.Estimator{Inst: inst, Gen: generators.Preference{}, Seed: int64(i)}
			e, _, err := est.EstimateTuple(q, []string{"a"}, eps, delta)
			if err != nil {
				return err
			}
			diff := math.Abs(e.P - exact)
			if diff <= eps {
				within++
			}
			if diff > maxErr {
				maxErr = diff
			}
		}
		fmt.Printf("  coverage over %d estimations of CP(a) = %.2f at ε = δ = 0.1:\n", trials, exact)
		fmt.Printf("    within ε: %d/%d = %.2f (guarantee: ≥ %.2f); max |error| = %.4f\n",
			within, trials, float64(within)/float64(trials), 1-delta, maxErr)
		return nil
	})

	register("E8", "Section 5 experiment: original vs R−R_del rewritten query", func() error {
		fmt.Println("  rows | query     | original | rewritten | ratio")
		for _, rows := range []int{1000, 5000, 20000} {
			oc := workload.Orders(workload.OrdersConfig{
				Orders: rows, Customers: rows / 10, ViolationRate: 0.1, Seed: 7,
			})
			for _, tc := range []struct {
				name string
				plan plan.Plan
			}{
				{"filter", plan.Select{
					Input: plan.Scan{Table: "orders"},
					Cond:  plan.ColEqVal{Col: "amount", Op: ">=", Val: "500"},
				}},
				{"join", plan.Project{
					Input: plan.Join{L: plan.Scan{Table: "orders"}, R: plan.Scan{Table: "customers"}},
					Cols:  []string{"oid", "region"},
				}},
				{"aggregate", plan.GroupCount{
					Input: plan.Join{L: plan.Scan{Table: "orders"}, R: plan.Scan{Table: "customers"}},
					By:    []string{"region"},
				}},
			} {
				origTime, err := timePlan(tc.plan, oc)
				if err != nil {
					return err
				}
				rewrTime, err := timeRewrittenPlan(tc.plan, oc)
				if err != nil {
					return err
				}
				ratio := float64(rewrTime) / float64(origTime)
				fmt.Printf("  %5d | %-9s | %8s | %9s | %.2fx\n",
					rows, tc.name, origTime.Round(time.Microsecond), rewrTime.Round(time.Microsecond), ratio)
			}
		}
		fmt.Println("  paper's claim: rewritten performance \"quite similar to that of the")
		fmt.Println("  original query\" — the ratio should stay near 1x.")
		return nil
	})

	register("E9", "Proposition 8: deletion-only chains never fail", func() error {
		for _, cfg := range []workload.PreferenceConfig{
			{Products: 6, Prefs: 10, ConflictRate: 0.4, Seed: 1},
			{Products: 8, Prefs: 12, ConflictRate: 0.3, Seed: 2},
		} {
			d, sigma := workload.Preferences(cfg)
			inst := repair.MustInstance(d, sigma)
			st := repair.Survey(inst)
			fmt.Printf("  preference instance (%d facts): %d complete sequences, %d failing\n",
				d.Size(), st.Complete, st.Failing)
		}
		// Contrast: the paper's insertion example does fail.
		inst := failingPaperInstance()
		st := repair.Survey(inst)
		fmt.Printf("  insertion instance {R(a)} with R→T, ¬T: %d complete, %d failing (paper: +T(a) fails)\n",
			st.Complete, st.Failing)
		return nil
	})

	register("E10", "Proposition 2: repairing sequences are short", func() error {
		fmt.Println("  conflicts | initial violations | max sequence length")
		for _, k := range []int{1, 2, 3, 4, 5} {
			d, sigma := workload.KeyViolations(workload.KeyConfig{Keys: k, Violations: k, Seed: 3})
			inst := repair.MustInstance(d, sigma)
			st := repair.Survey(inst)
			fmt.Printf("  %9d | %18d | %19d\n",
				k, 2*k, st.MaxLength)
		}
		fmt.Println("  the length is bounded by the number of conflicts (polynomial in |D|).")
		return nil
	})
}

func existsKeyQuery() *fo.Query {
	x, y := v("x"), v("y")
	return fo.MustQuery("Keys", []logic.Term{x},
		fo.Exists{Vars: []logic.Term{y}, F: fo.Atom{A: at("R", x, y)}})
}

func failingPaperInstance() *repair.Instance {
	d := relationFromFacts(fact("R", "a"))
	tgd := mustTGD(at("R", v("x")), at("T", v("x")))
	dc := mustDC(at("T", v("x")))
	return repair.MustInstance(d, newSet(tgd, dc))
}

func timePlan(p plan.Plan, oc *workload.OrdersCatalog) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := p.Exec(oc.Catalog); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / 5, nil
}

func timeRewrittenPlan(p plan.Plan, oc *workload.OrdersCatalog) (time.Duration, error) {
	// One fixed R_del draw; the timing compares plan shapes, not draws.
	runner := newPracticalSampler(oc)
	rewritten := plan.RewriteScans(p, runner)
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := rewritten.Exec(oc.Catalog); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / 5, nil
}

// fullScale enables the slow large-scale measurement points (-full).
var fullScale bool

func init() {
	register("E13", "extension: localization (Section 6) — factored exact OCQA", func() error {
		fmt.Println("  conflicts | monolithic exact | factored exact | exact fact marginal")
		for _, k := range []int{2, 4, 5, 64, 512} {
			d, sigma := workload.KeyViolations(workload.KeyConfig{Keys: k, Violations: k, Seed: 1})
			inst := repair.MustInstance(d, sigma)
			target := inst.Initial().Facts()[0]

			monoTime := "(skipped)"
			if k <= 5 {
				start := time.Now()
				if _, err := core.Compute(inst, generators.Uniform{}, markov.ExploreOptions{MaxStates: 5_000_000}); err != nil {
					return err
				}
				monoTime = time.Since(start).Round(time.Microsecond).String()
			}
			start := time.Now()
			fac, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{})
			if err != nil {
				return err
			}
			p := fac.FactProbability(target)
			facTime := time.Since(start).Round(time.Microsecond)
			fmt.Printf("  %9d | %16s | %14s | P(%s) = %s\n",
				k, monoTime, facTime, target, p.RatString())
		}
		fmt.Println("  independent key conflicts factor into components of 3 repairs each;")
		fmt.Println("  the factored engine answers atomic queries exactly at any scale.")
		return nil
	})
}

func init() {
	register("E14", "extension: null-based TGD insertions (Section 6)", func() error {
		fmt.Println("  R rows | grounded insertions | null insertions | grounded states | null states")
		for _, rows := range []int{2, 3, 4} {
			d, sigma := workload.Inclusion(workload.InclusionConfig{Rows: rows, MissingRate: 1.0, Seed: 1})
			grounded := repair.MustInstance(d, sigma)
			gRoot := grounded.Root()
			gIns := 0
			for _, op := range gRoot.Extensions() {
				if op.IsInsert() {
					gIns++
				}
			}
			gStats := repair.Survey(grounded)

			nulled, err := repair.NewInstanceOpts(d, sigma, repair.Options{NullInsertions: true})
			if err != nil {
				return err
			}
			nRoot := nulled.Root()
			nIns := 0
			for _, op := range nRoot.Extensions() {
				if op.IsInsert() {
					nIns++
				}
			}
			nStats := repair.Survey(nulled)
			fmt.Printf("  %6d | %19d | %15d | %15d | %11d\n",
				rows, gIns, nIns, gStats.Sequences, nStats.Sequences)
		}
		fmt.Println("  grounded mode offers |dom|^|z̄| insertions per TGD violation; the")
		fmt.Println("  null extension offers exactly one, shrinking the chain accordingly.")
		return nil
	})
}

func init() {
	register("E15", "Proposition 7 made executable: TPC decides 3-colorability", func() error {
		type graph struct {
			name  string
			nodes []string
			edges [][2]string
			want  bool
		}
		k4 := graph{name: "K4 (clique)", nodes: []string{"a", "b", "c", "d"}, want: false}
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				k4.edges = append(k4.edges, [2]string{k4.nodes[i], k4.nodes[j]})
			}
		}
		graphs := []graph{
			{name: "triangle", nodes: []string{"u", "v", "w"},
				edges: [][2]string{{"u", "v"}, {"v", "w"}, {"w", "u"}}, want: true},
			k4,
			{name: "5-cycle", nodes: []string{"1", "2", "3", "4", "5"},
				edges: [][2]string{{"1", "2"}, {"2", "3"}, {"3", "4"}, {"4", "5"}, {"5", "1"}}, want: true},
		}
		for _, g := range graphs {
			d := relationFromFacts()
			for _, n := range g.nodes {
				d.Insert(fact("Node", n))
				for _, c := range []string{"red", "green", "blue"} {
					d.Insert(fact("Color", n, c))
				}
			}
			for _, e := range g.edges {
				d.Insert(fact("Edge", e[0], e[1]))
			}
			x, y, z := v("x"), v("y"), v("z")
			key := constraint.MustEGD(
				[]logic.Atom{at("Color", x, y), at("Color", x, z)}, y, z)
			inst := repair.MustInstance(d, constraint.NewSet(key))
			fac, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{})
			if err != nil {
				return err
			}
			// CPOrEstimate degrades gracefully: exact while the product
			// distribution fits the enumeration budget (always, for these
			// graphs), (ε,δ)-sampled beyond it instead of erroring out.
			cp, exact, err := fac.CPOrEstimate(colorQuery(), nil, 0.05, 0.05, 15)
			if err != nil {
				return err
			}
			route := "exact"
			if !exact {
				route = "≈ sampled"
			}
			got := cp.Sign() > 0
			status := "✓"
			if got != g.want {
				status = "✗ MISMATCH"
			}
			fmt.Printf("  %-12s TPC(proper coloring) = %-5v CP = %-8s [%s] (3-colorable: %v) %s\n",
				g.name, got, cp.RatString(), route, g.want, status)
		}
		fmt.Println("  key repairs choose ≤1 color per node; 'the surviving coloring is")
		fmt.Println("  total and proper' has positive probability iff the graph is")
		fmt.Println("  3-colorable — the structure behind Proposition 7's NP-hardness.")
		return nil
	})
}

func init() {
	register("E16", "extension: DAG-collapsed exact engine vs the sequence tree", func() error {
		fmt.Println("  conflicts | tree sequences | DAG states | tree time | DAG time")
		points := []int{2, 3, 4, 5, 6, 8}
		if fullScale {
			points = append(points, 10)
		}
		for _, k := range points {
			d, sigma := workload.KeyViolations(workload.KeyConfig{Keys: k, Violations: k, Seed: 1})
			inst := repair.MustInstance(d, sigma)

			start := time.Now()
			dag, err := markov.ExploreDAG(inst, generators.Uniform{}, markov.ExploreOptions{})
			if err != nil {
				return err
			}
			dagTime := time.Since(start).Round(time.Microsecond)

			treeTime := "(skipped)"
			if k <= 5 {
				start = time.Now()
				if _, err := core.ComputeTree(inst, generators.Uniform{}, markov.ExploreOptions{}); err != nil {
					return err
				}
				treeTime = time.Since(start).Round(time.Microsecond).String()
			}
			fmt.Printf("  %9d | %14s | %10d | %9s | %8s\n",
				k, dag.Sequences, dag.States, treeTime, dagTime)
		}
		fmt.Println("  states modulo history: the memoryless uniform generator lets absorbing")
		fmt.Println("  sequences (3^k·k!) merge into distinct databases (4^k). Unlike the")
		fmt.Println("  E13 factorization this needs no locality — the preference generator of")
		fmt.Println("  Example 4 (weights spanning the whole database) collapses identically.")
		return nil
	})
}

func colorQuery() *fo.Query {
	x, y, c := v("x"), v("y"), v("c")
	total := fo.ForAll{Vars: []logic.Term{x}, F: fo.Implies{
		L: fo.Atom{A: at("Node", x)},
		R: fo.Exists{Vars: []logic.Term{c}, F: fo.Atom{A: at("Color", x, c)}},
	}}
	proper := fo.Not{F: fo.Exists{Vars: []logic.Term{x, y, c}, F: fo.Conj(
		fo.Atom{A: at("Edge", x, y)},
		fo.Atom{A: at("Color", x, c)},
		fo.Atom{A: at("Color", y, c)},
	)}}
	return fo.MustQuery("ProperColoring", nil, fo.And{L: total, R: proper})
}
