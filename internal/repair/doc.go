// Package repair implements repairing sequences of operations
// (Definition 4 of the paper): sequences of justified operations subject
// to req1 (every step eliminates a violation), req2 (eliminated violations
// never reappear), no-cancellation (a fact added is never removed and vice
// versa), and global justification of additions.
//
// # Key types
//
//   - Instance: the fixed context of a repairing process — the initial
//     database D (cloned and sealed once, so every walk's root clone is
//     O(1)), the constraint set Σ, the base B(D,Σ), and per-instance
//     caches: justified deletions per violation body, the root violation
//     set, and the root extension list, all computed once and shared by
//     every concurrent walker.
//   - State: one repairing sequence with the database it produces and the
//     incremental bookkeeping to check Definition 4 per step. States form
//     a tree; Child clones (O(depth) small-integer entries — databases are
//     copy-on-write, bookkeeping is id-sorted slices), ChildInPlace
//     transfers ownership for walk-style exploration that discards the
//     parent.
//   - Walk / Survey / Validate (walk.go): a full-tree traversal, summary
//     statistics, and an independent from-scratch transcription of
//     Definition 4 that the property tests check the incremental State
//     machinery against.
//
// # Invariants
//
//   - States are immutable after creation; Extensions() is cached,
//     deterministic, and canonically ordered (ops.SortOps order).
//   - For TGD-free Σ the operation space is deletion-only and a child's
//     extensions are exactly the parent's filtered to the surviving
//     violation bodies — the structural fact behind both the extension
//     filter fast path here and the DAG collapse in internal/markov.
//   - A state passed to ChildInPlace must not be used afterwards (its
//     database is nilled to surface misuse).
//
// # Neighbors
//
// Below: internal/relation, internal/constraint, internal/ops. Above:
// internal/markov (chains are distributions over this tree),
// internal/sampling (random walks), internal/core (semantics).
package repair
