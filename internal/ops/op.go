package ops

import (
	"fmt"
	"slices"
	"strings"
	"sync"

	"repro/internal/relation"
)

// Op is a single operation +F or −F over a set of facts F ⊆ B(D,Σ).
// The fact set is non-empty, deduplicated, and canonically sorted.
// The zero Op is invalid; construct with Insert or Delete.
//
// Operations are interned by content (polarity plus the sorted fact ids),
// so identity checks and deduplication during extension enumeration are
// pointer comparisons, and the canonical string key of each distinct
// operation is built exactly once per process.
type Op struct {
	insert bool
	entry  *opEntry
}

type opEntry struct {
	facts []relation.Fact // canonical order, shared
	key   string          // canonical encoding including polarity
}

var (
	opMu  sync.RWMutex
	opIDs = map[string]*opEntry{}
)

// Insert returns the operation +F.
func Insert(fs ...relation.Fact) Op { return newOp(true, fs) }

// Delete returns the operation −F.
func Delete(fs ...relation.Fact) Op { return newOp(false, fs) }

func newOp(insert bool, fs []relation.Fact) Op {
	if len(fs) == 0 {
		panic("ops: operation over an empty fact set")
	}
	seen := make(map[relation.Fact]struct{}, len(fs))
	facts := make([]relation.Fact, 0, len(fs))
	for _, f := range fs {
		if _, dup := seen[f]; !dup {
			seen[f] = struct{}{}
			facts = append(facts, f)
		}
	}
	relation.SortFacts(facts)

	var stack [64]byte
	packed := stack[:0]
	if insert {
		packed = append(packed, '+')
	} else {
		packed = append(packed, '-')
	}
	for _, f := range facts {
		id := f.ID()
		packed = append(packed, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	opMu.RLock()
	e, ok := opIDs[string(packed)]
	opMu.RUnlock()
	if ok {
		return Op{insert: insert, entry: e}
	}
	opMu.Lock()
	defer opMu.Unlock()
	if e, ok := opIDs[string(packed)]; ok {
		return Op{insert: insert, entry: e}
	}
	var b strings.Builder
	if insert {
		b.WriteByte('+')
	} else {
		b.WriteByte('-')
	}
	for i, f := range facts {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(f.Key())
	}
	e = &opEntry{facts: facts, key: b.String()}
	opIDs[string(packed)] = e
	return Op{insert: insert, entry: e}
}

// IsInsert reports whether the operation is +F.
func (o Op) IsInsert() bool { return o.insert }

// IsDelete reports whether the operation is −F.
func (o Op) IsDelete() bool { return !o.insert }

// Facts returns F in canonical order; the slice must not be modified.
func (o Op) Facts() []relation.Fact {
	if o.entry == nil {
		return nil
	}
	return o.entry.facts
}

// Size reports |F|.
func (o Op) Size() int { return len(o.Facts()) }

// Key returns the canonical encoding of the operation, usable as a map
// key; it is computed once per distinct operation.
func (o Op) Key() string {
	if o.entry == nil {
		return ""
	}
	return o.entry.key
}

// String renders the operation like the paper: +R(a, b) for singletons,
// +{R(a, b), S(c)} for larger sets.
func (o Op) String() string {
	sign := "+"
	if !o.insert {
		sign = "-"
	}
	facts := o.Facts()
	if len(facts) == 1 {
		return sign + facts[0].String()
	}
	parts := make([]string, len(facts))
	for i, f := range facts {
		parts[i] = f.String()
	}
	return fmt.Sprintf("%s{%s}", sign, strings.Join(parts, ", "))
}

// Equal reports whether two operations are identical; interning makes this
// a pointer comparison.
func (o Op) Equal(p Op) bool { return o.insert == p.insert && o.entry == p.entry }

// Apply returns op(D) as a fresh database, leaving d untouched.
func (o Op) Apply(d *relation.Database) *relation.Database {
	out := d.Clone()
	o.Do(out)
	return out
}

// Do applies the operation to d in place and returns the facts that
// actually changed (were inserted or removed); feeding those to Undo
// restores d exactly.
func (o Op) Do(d *relation.Database) []relation.Fact {
	var changed []relation.Fact
	for _, f := range o.Facts() {
		if o.insert {
			if d.Insert(f) {
				changed = append(changed, f)
			}
		} else {
			if d.Delete(f) {
				changed = append(changed, f)
			}
		}
	}
	return changed
}

// Undo reverts a previous Do given its returned change set.
func (o Op) Undo(d *relation.Database, changed []relation.Fact) {
	for _, f := range changed {
		if o.insert {
			d.Delete(f)
		} else {
			d.Insert(f)
		}
	}
}

// InBase reports whether every fact of the operation lies in the base, as
// Definition 1 requires.
func (o Op) InBase(b *relation.Base) bool { return b.ContainsAll(o.Facts()) }

// SortOps orders operations canonically (by key) for deterministic output;
// keys are interned, so no strings are built.
func SortOps(os []Op) {
	slices.SortFunc(os, func(a, b Op) int { return strings.Compare(a.Key(), b.Key()) })
}
