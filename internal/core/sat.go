package core

import (
	"errors"
	"fmt"

	"repro/internal/constraint"
	"repro/internal/fo"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/sat"
)

// ComputeCertainSAT computes the certain answers of q — the tuples that
// hold in every operational repair — by the SAT pipeline: one boolean
// per conflicted fact, at-most-one clauses per violating key group,
// witness clauses per candidate tuple, solved by the embedded CDCL
// solver (internal/sat). No chain exploration happens, so the answer is
// exact even when the sequence space dwarfs the DAG budget.
//
// The pipeline covers key-shaped EGD constraints and conjunctive queries
// whose output variables all occur in the body; other inputs return
// sat.ErrUnsupportedConstraints / sat.ErrUnsupportedQuery. Certain
// answers are the same under walk-induced and sequence-uniform semantics
// and for every full-support local generator (uniform,
// uniform-deletions, trust), so no generator argument is taken.
func ComputeCertainSAT(db *relation.Database, sigma *constraint.Set, q *fo.Query) (*sat.CertainResult, error) {
	enc, err := sat.NewEncoder(db, sigma, sat.Options{})
	if err != nil {
		return nil, err
	}
	return enc.CertainAnswers(q)
}

// Certain returns the certain answers of q over the factored semantics:
// the tuples with conditional probability exactly 1. While the repair
// space fits the enumeration budget this filters the exact OCA; beyond
// it (ErrEnumerationBudget — more than 2^20 repairs, non-atomic query)
// the computation routes through the SAT engine, which answers the
// certain question without enumerating repairs at all. The two paths are
// pinned against each other by the cross-engine equivalence suite.
func (f *Factored) Certain(q *fo.Query) ([][]string, error) {
	as, err := f.OCA(q)
	if err == nil {
		var out [][]string
		for _, a := range as.Answers {
			if prob.IsOne(a.P) {
				out = append(out, a.Tuple)
			}
		}
		return out, nil
	}
	if !errors.Is(err, ErrEnumerationBudget) {
		return nil, err
	}
	res, satErr := ComputeCertainSAT(f.initial, f.sigma, q)
	if satErr != nil {
		return nil, fmt.Errorf("core: SAT fallback for over-budget certain answers failed: %w (budget: %v)", satErr, err)
	}
	return res.Answers, nil
}
