// Package cliutil holds the small amount of logic shared by the command
// line tools: loading databases, constraint sets, and queries from files
// or inline strings, and resolving generator names.
//
// # Key pieces
//
//   - LoadText / LoadDatabase / LoadConstraints / LoadQuery: every file
//     argument also accepts "inline:<text>", so examples and tests can be
//     single shell lines.
//   - ResolveGenerator / GeneratorNames: the CLI name → markov.Generator
//     mapping (uniform, uniform-deletions, preference, trust[:seed]).
//
// # Invariants
//
//   - This package contains no semantics of its own — it only parses and
//     dispatches, so the binaries in cmd/* stay thin and everything
//     testable lives in the internal packages below.
//
// # Neighbors
//
// Below: internal/parse, internal/generators, internal/workload
// (RandomTrust for trust:<seed>). Above: cmd/ocqa, cmd/repairs,
// cmd/experiments.
package cliutil
