package markov_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/generators"
	"repro/internal/markov"
	"repro/internal/prob"
	"repro/internal/repair"
	"repro/internal/workload"
)

// TestSequenceDAGTotalMatchesExploreDAG: C(root) computed by the upward
// sweep must equal the downward path-count total of ExploreDAG on the same
// chain — two independent recurrences over the same structure.
func TestSequenceDAGTotalMatchesExploreDAG(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		d, sigma := workload.KeyViolations(workload.KeyConfig{
			Keys:       1 + rng.Intn(4),
			Violations: 1 + rng.Intn(3),
			Seed:       int64(trial),
		})
		inst := repair.MustInstance(d, sigma)
		checkSeqDAGStructure(t, fmt.Sprintf("keys/trial=%d", trial), inst)
	}
	for _, facts := range []int{2, 4, 6, 8} {
		d, sigma := workload.Chain(workload.ChainConfig{Facts: facts})
		checkSeqDAGStructure(t, fmt.Sprintf("chain/facts=%d", facts), repair.MustInstance(d, sigma))
	}
}

func checkSeqDAGStructure(t *testing.T, label string, inst *repair.Instance) {
	t.Helper()
	dag, err := markov.ExploreDAG(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	sd, err := markov.BuildSequenceDAG(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if sd.Total().Cmp(dag.Sequences) != 0 {
		t.Fatalf("%s: SequenceDAG total %s, ExploreDAG sequences %s", label, sd.Total(), dag.Sequences)
	}
	if sd.States() != dag.States || sd.Edges() != dag.Edges {
		t.Fatalf("%s: structure mismatch: %d/%d states, %d/%d edges",
			label, sd.States(), dag.States, sd.Edges(), dag.Edges)
	}
}

// TestSequenceDAGSampleIsUniform draws many sequences from the chain-3
// instance (9 complete sequences, known result distribution: the both-ends
// repair has uniform mass exactly 1/9) and checks the empirical result
// frequencies against the exact uniform distribution.
func TestSequenceDAGSampleIsUniform(t *testing.T) {
	d, sigma := workload.Chain(workload.ChainConfig{Facts: 3})
	inst := repair.MustInstance(d, sigma)
	sd, err := markov.BuildSequenceDAG(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sd.Total().Int64() != 9 {
		t.Fatalf("chain-3 total = %s, want 9", sd.Total())
	}
	const n = 18000
	rng := rand.New(rand.NewSource(7))
	freq := map[string]int{}
	for i := 0; i < n; i++ {
		s, err := sd.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		if !s.IsSuccessful() {
			t.Fatalf("draw %d: absorbing state is failing on a deletion-only chain", i)
		}
		freq[s.Result().Key()]++
	}
	// Exact uniform result masses: {both ends}: 1/9, the four others: 2/9.
	leaves, err := markov.ExploreDAG(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range leaves.Leaves {
		want := float64(l.Sequences.Int64()) / 9
		got := float64(freq[l.Key]) / n
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("leaf %s: empirical %f, uniform %f", l.Key, got, want)
		}
	}
}

// TestSequenceDAGSampleDeterministic: the same RNG stream must reproduce
// the same sequence of draws (the estimator's worker-count determinism
// builds on this).
func TestSequenceDAGSampleDeterministic(t *testing.T) {
	d, sigma := workload.KeyViolations(workload.KeyConfig{Keys: 4, Violations: 3, Seed: 2})
	inst := repair.MustInstance(d, sigma)
	sd, err := markov.BuildSequenceDAG(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	draw := func() []string {
		src := &prob.SplitMix{}
		rng := rand.New(src)
		var out []string
		for i := 0; i < 50; i++ {
			src.ReseedAt(42, i)
			s, err := sd.Sample(rng)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, s.Key())
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %q vs %q", i, a[i], b[i])
		}
	}
}
