#!/usr/bin/env bash
# check_alloc_budget.sh — allocation regression gate for the hot paths.
#
# scripts/alloc_budget.txt holds one "<benchmark-pattern> <budget>" entry
# per gated hot path; for each entry this script runs the benchmark with
# -benchmem and fails when allocs/op exceeds the budget by more than the
# slack (default 20%). Allocation counts — unlike wall-clock time — are
# exact and machine-independent for a deterministic benchmark, so a tight
# gate is safe on shared CI runners where ns/op would be pure noise.
#
# Usage: scripts/check_alloc_budget.sh [slack_percent]
set -euo pipefail

cd "$(dirname "$0")/.."

slack="${1:-20}"
fail=0

while read -r bench budget; do
  case "$bench" in ''|\#*) continue ;; esac

  out="$(go test -run '^$' -bench "${bench}\$" -benchmem -benchtime 5x -timeout 10m .)"
  echo "$out"

  allocs="$(echo "$out" | awk -v b="$bench" \
    'index($1, b) {for (i=1; i<NF; i++) if ($(i+1) == "allocs/op") print $i}' | head -n1)"
  if [ -z "$allocs" ]; then
    echo "check_alloc_budget: could not parse allocs/op for $bench" >&2
    exit 2
  fi

  limit=$(( budget + budget * slack / 100 ))
  echo "$bench: allocs/op $allocs (budget $budget, limit $limit = +${slack}%)"
  if [ "$allocs" -gt "$limit" ]; then
    echo "check_alloc_budget: FAIL — $bench allocs/op regressed past the budget." >&2
    fail=1
  fi
done < scripts/alloc_budget.txt

if [ "$fail" -ne 0 ]; then
  echo "If a regression is intentional, re-measure and update scripts/alloc_budget.txt." >&2
  exit 1
fi
echo "check_alloc_budget: OK"
