package engine

import (
	"strings"
	"testing"
)

func sampleCatalog() *Catalog {
	orders := NewRelation("orders", "oid", "cust", "amount").
		Add("o1", "c1", "100").
		Add("o1", "c2", "150"). // key violation on oid
		Add("o2", "c1", "200").
		Add("o3", "c3", "50")
	customers := NewRelation("customers", "cust", "region").
		Add("c1", "north").
		Add("c2", "south").
		Add("c3", "north")
	cat := NewCatalog().AddTable(orders).AddTable(customers)
	if err := cat.DeclareKey("orders", "oid"); err != nil {
		panic(err)
	}
	return cat
}

func TestScan(t *testing.T) {
	cat := sampleCatalog()
	out, err := Scan{Table: "orders"}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 {
		t.Errorf("rows = %d, want 4", out.Len())
	}
	if _, err := (Scan{Table: "missing"}).Exec(cat); err == nil {
		t.Error("unknown table must fail")
	}
}

func TestSelect(t *testing.T) {
	cat := sampleCatalog()
	out, err := Select{
		Input: Scan{Table: "orders"},
		Cond:  ColEqVal{Col: "cust", Op: "=", Val: "c1"},
	}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("rows = %d, want 2", out.Len())
	}
	out, err = Select{
		Input: Scan{Table: "orders"},
		Cond:  ColEqVal{Col: "amount", Op: ">=", Val: "150"},
	}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("numeric >= filter rows = %d, want 2", out.Len())
	}
}

func TestSelectCompound(t *testing.T) {
	cat := sampleCatalog()
	out, err := Select{
		Input: Scan{Table: "orders"},
		Cond: AndCond{Conds: []Cond{
			ColEqVal{Col: "cust", Op: "=", Val: "c1"},
			NotCond{C: ColEqVal{Col: "amount", Op: "<", Val: "150"}},
		}},
	}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Rows[0][0] != "o2" {
		t.Errorf("rows = %v", out.Rows)
	}
	out, err = Select{
		Input: Scan{Table: "orders"},
		Cond: OrCond{Conds: []Cond{
			ColEqVal{Col: "oid", Op: "=", Val: "o2"},
			ColEqVal{Col: "oid", Op: "=", Val: "o3"},
		}},
	}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("or-filter rows = %d, want 2", out.Len())
	}
}

func TestSelectUnknownColumn(t *testing.T) {
	cat := sampleCatalog()
	_, err := Select{
		Input: Scan{Table: "orders"},
		Cond:  ColEqVal{Col: "nope", Op: "=", Val: "1"},
	}.Exec(cat)
	if err == nil {
		t.Error("unknown column must fail")
	}
}

func TestProject(t *testing.T) {
	cat := sampleCatalog()
	out, err := Project{Input: Scan{Table: "orders"}, Cols: []string{"cust"}}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Cols) != 1 || out.Cols[0] != "cust" {
		t.Errorf("cols = %v", out.Cols)
	}
	if out.Len() != 4 {
		t.Errorf("projection keeps bag semantics: rows = %d, want 4", out.Len())
	}
	d, err := Distinct{Input: Project{Input: Scan{Table: "orders"}, Cols: []string{"cust"}}}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Errorf("distinct customers = %d, want 3", d.Len())
	}
}

func TestJoin(t *testing.T) {
	cat := sampleCatalog()
	out, err := Join{L: Scan{Table: "orders"}, R: Scan{Table: "customers"}}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	// Natural join on cust: every order row matches exactly one customer.
	if out.Len() != 4 {
		t.Errorf("join rows = %d, want 4", out.Len())
	}
	wantCols := []string{"oid", "cust", "amount", "region"}
	if len(out.Cols) != len(wantCols) {
		t.Fatalf("join cols = %v", out.Cols)
	}
	for i, c := range wantCols {
		if out.Cols[i] != c {
			t.Errorf("col[%d] = %s, want %s", i, out.Cols[i], c)
		}
	}
}

func TestJoinCrossProduct(t *testing.T) {
	a := NewRelation("a", "x").Add("1").Add("2")
	b := NewRelation("b", "y").Add("p").Add("q").Add("r")
	cat := NewCatalog().AddTable(a).AddTable(b)
	out, err := Join{L: Scan{Table: "a"}, R: Scan{Table: "b"}}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 6 {
		t.Errorf("cross product rows = %d, want 6", out.Len())
	}
}

func TestDiff(t *testing.T) {
	cat := sampleCatalog()
	del := NewRelation("orders_del", "oid", "cust", "amount").Add("o1", "c2", "150")
	out, err := Diff{L: Scan{Table: "orders"}, R: Literal{Rel: del}}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Errorf("rows after diff = %d, want 3", out.Len())
	}
	// Mismatched headers fail.
	bad := NewRelation("bad", "only")
	if _, err := (Diff{L: Scan{Table: "orders"}, R: Literal{Rel: bad}}).Exec(cat); err == nil {
		t.Error("mismatched diff must fail")
	}
}

func TestUnionAndGroupCount(t *testing.T) {
	cat := sampleCatalog()
	u, err := Union{L: Scan{Table: "orders"}, R: Scan{Table: "orders"}}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 8 {
		t.Errorf("union rows = %d, want 8", u.Len())
	}
	g, err := GroupCount{Input: Scan{Table: "orders"}, By: []string{"cust"}, CountAs: "n"}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Fatalf("groups = %d, want 3", g.Len())
	}
	for _, row := range g.Rows {
		if row[0] == "c1" && row[1] != "2" {
			t.Errorf("count(c1) = %s, want 2", row[1])
		}
	}
}

// TestRewriteIdentity: rewriting with empty R_del relations leaves query
// results unchanged (invariant 9 of DESIGN.md).
func TestRewriteIdentity(t *testing.T) {
	cat := sampleCatalog()
	plan := Project{
		Input: Join{L: Scan{Table: "orders"}, R: Scan{Table: "customers"}},
		Cols:  []string{"oid", "region"},
	}
	orig, err := plan.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	emptyDel := &Relation{Name: "orders_del", Cols: []string{"oid", "cust", "amount"}}
	rewritten := RewriteScans(plan, map[string]*Relation{"orders": emptyDel})
	out, err := rewritten.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(out) {
		t.Errorf("rewrite with empty R_del changed the answer:\n%s\n%s", orig, out)
	}
}

func TestRewriteRemovesRows(t *testing.T) {
	cat := sampleCatalog()
	plan := Select{Input: Scan{Table: "orders"}, Cond: ColEqVal{Col: "oid", Op: "=", Val: "o1"}}
	del := NewRelation("orders_del", "oid", "cust", "amount").Add("o1", "c2", "150")
	rewritten := RewriteScans(plan, map[string]*Relation{"orders": del})
	out, err := rewritten.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Rows[0][1] != "c1" {
		t.Errorf("rows = %v", out.Rows)
	}
}

func TestRelationEqualIgnoresOrder(t *testing.T) {
	a := NewRelation("t", "x").Add("1").Add("2")
	b := NewRelation("t", "x").Add("2").Add("1")
	if !a.Equal(b) {
		t.Error("row order must not matter")
	}
	c := NewRelation("t", "x").Add("1").Add("1")
	if a.Equal(c) {
		t.Error("bag multiplicity matters")
	}
}

func TestCatalogKeys(t *testing.T) {
	cat := sampleCatalog()
	if got := cat.Key("orders"); len(got) != 1 || got[0] != 0 {
		t.Errorf("Key(orders) = %v", got)
	}
	if got := cat.KeyedTables(); len(got) != 1 || got[0] != "orders" {
		t.Errorf("KeyedTables = %v", got)
	}
	if err := cat.DeclareKey("orders", "nope"); err == nil {
		t.Error("unknown key column must fail")
	}
	if err := cat.DeclareKey("missing", "x"); err == nil {
		t.Error("unknown table must fail")
	}
}

func TestColEqColCondition(t *testing.T) {
	rel := NewRelation("pairs", "x", "y").
		Add("1", "1").
		Add("1", "2").
		Add("3", "2")
	cat := NewCatalog().AddTable(rel)
	out, err := Select{Input: Scan{Table: "pairs"}, Cond: ColEqCol{Col1: "x", Op: "=", Col2: "y"}}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Rows[0][0] != "1" {
		t.Errorf("rows = %v", out.Rows)
	}
	out, err = Select{Input: Scan{Table: "pairs"}, Cond: ColEqCol{Col1: "x", Op: ">", Col2: "y"}}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Rows[0][0] != "3" {
		t.Errorf("rows = %v", out.Rows)
	}
	if _, err := (Select{Input: Scan{Table: "pairs"}, Cond: ColEqCol{Col1: "zz", Op: "=", Col2: "y"}}).Exec(cat); err == nil {
		t.Error("unknown column must fail")
	}
	if _, err := (Select{Input: Scan{Table: "pairs"}, Cond: ColEqCol{Col1: "x", Op: "~", Col2: "y"}}).Exec(cat); err == nil {
		t.Error("unknown operator must fail")
	}
}

func TestPlanAndCondStrings(t *testing.T) {
	plan := Project{
		Input: Select{
			Input: Join{L: Scan{Table: "a"}, R: Scan{Table: "b"}},
			Cond: AndCond{Conds: []Cond{
				ColEqVal{Col: "x", Op: "=", Val: "1"},
				NotCond{C: OrCond{Conds: []Cond{
					ColEqCol{Col1: "x", Op: "<", Col2: "y"},
				}}},
			}},
		},
		Cols: []string{"x"},
	}
	s := plan.String()
	for _, want := range []string{"π[x]", "σ[", "a ⋈ b", `x = "1"`, "NOT", "x < y"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string %q missing %q", s, want)
		}
	}
	more := []Plan{
		Diff{L: Scan{Table: "a"}, R: Scan{Table: "b"}},
		Union{L: Scan{Table: "a"}, R: Scan{Table: "b"}},
		Distinct{Input: Scan{Table: "a"}},
		GroupCount{Input: Scan{Table: "a"}, By: []string{"x"}},
		Literal{Rel: NewRelation("lit", "x")},
	}
	for _, p := range more {
		if p.String() == "" {
			t.Errorf("%T renders empty", p)
		}
	}
}

func TestRelationStringAndClone(t *testing.T) {
	rel := NewRelation("t", "x", "y").Add("1", "2")
	if !strings.Contains(rel.String(), "t(x, y): 1 rows") {
		t.Errorf("String = %q", rel.String())
	}
	c := rel.Clone()
	c.Add("3", "4")
	c.Rows[0][0] = "mutated"
	if rel.Len() != 1 || rel.Rows[0][0] != "1" {
		t.Error("clone shares storage with the original")
	}
}

func TestAddPanicsOnWidthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on row width mismatch")
		}
	}()
	NewRelation("t", "x").Add("1", "2")
}
