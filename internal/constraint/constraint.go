package constraint

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/intern"
	"repro/internal/logic"
	"repro/internal/relation"
)

// Kind distinguishes the constraint classes.
type Kind int

const (
	// TGD is a tuple-generating dependency ∀x̄∀ȳ (ϕ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄)).
	TGD Kind = iota
	// EGD is an equality-generating dependency ∀x̄ (ϕ(x̄) → xi = xj).
	EGD
	// DC is a denial constraint ∀x̄ ¬ϕ(x̄).
	DC
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case TGD:
		return "TGD"
	case EGD:
		return "EGD"
	case DC:
		return "DC"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// cnumCounter hands every constraint a process-unique number; violation
// identities are namespaced by it, so violations of structurally equal
// constraints in different sets never collide.
var cnumCounter atomic.Uint32

// Constraint is a single TGD, EGD, or DC. Universal quantifiers are
// implicit: every variable of the body is universally quantified; variables
// appearing only in a TGD head are existentially quantified.
//
// Constraints are immutable after construction through the NewXxx helpers.
// Each constraint owns an intern table for its violations: a violation is
// identified by the tuple of constants bound to the universal variables (in
// first-occurrence order), interned to a dense id whose high word is the
// constraint's process-unique number. Violation identity checks — the req2
// bookkeeping, incremental maintenance, set membership — are therefore
// integer comparisons, and a violation's body image is computed once per
// distinct violation instead of once per state.
type Constraint struct {
	id   string
	kind Kind
	body []logic.Atom
	head []logic.Atom // TGD only
	left logic.Term   // EGD only
	rght logic.Term   // EGD only

	cnum     uint32
	uvars    []intern.Sym // universal variable symbols, first-occurrence order
	exvars   []logic.Term // TGD: head variables not in the body
	vioMu    sync.RWMutex
	vioIDs   map[string]uint32
	vioSlice atomic.Pointer[[]*vioEntry]
}

// vioEntry is the interned identity and cached derived data of a violation.
type vioEntry struct {
	id        uint64
	h         logic.Subst // canonical binding of the universal variables
	bodyFacts []relation.Fact
	bodyPack  string // packed sorted body fact ids (process-local cache key)
	legacyKey string // constraint id + "|" + h.Key(), the stable encoding
	bodyKey   atomic.Pointer[string]
}

// NewTGD builds the TGD body → ∃z̄ head, where z̄ are the head variables not
// occurring in the body.
func NewTGD(body, head []logic.Atom) (*Constraint, error) {
	c := &Constraint{kind: TGD, body: body, head: head}
	if err := c.validate(); err != nil {
		return nil, err
	}
	c.finish()
	return c, nil
}

// NewEGD builds the EGD body → left = right.
func NewEGD(body []logic.Atom, left, right logic.Term) (*Constraint, error) {
	c := &Constraint{kind: EGD, body: body, left: left, rght: right}
	if err := c.validate(); err != nil {
		return nil, err
	}
	c.finish()
	return c, nil
}

// NewDC builds the denial constraint ¬body.
func NewDC(body []logic.Atom) (*Constraint, error) {
	c := &Constraint{kind: DC, body: body}
	if err := c.validate(); err != nil {
		return nil, err
	}
	c.finish()
	return c, nil
}

// MustTGD is NewTGD that panics on error; for constraints that are valid by
// construction (tests, examples).
func MustTGD(body, head []logic.Atom) *Constraint {
	c, err := NewTGD(body, head)
	if err != nil {
		panic(err)
	}
	return c
}

// MustEGD is NewEGD that panics on error.
func MustEGD(body []logic.Atom, left, right logic.Term) *Constraint {
	c, err := NewEGD(body, left, right)
	if err != nil {
		panic(err)
	}
	return c
}

// MustDC is NewDC that panics on error.
func MustDC(body []logic.Atom) *Constraint {
	c, err := NewDC(body)
	if err != nil {
		panic(err)
	}
	return c
}

// finish populates the caches of a validated constraint.
func (c *Constraint) finish() {
	c.cnum = cnumCounter.Add(1)
	c.uvars = logic.VarSymsOf(c.body)
	if c.kind == TGD {
		bodyVars := map[intern.Sym]bool{}
		for _, v := range c.uvars {
			bodyVars[v] = true
		}
		for _, v := range logic.VarsOf(c.head) {
			if !bodyVars[v.Sym()] {
				c.exvars = append(c.exvars, v)
			}
		}
	}
	c.vioIDs = map[string]uint32{}
	initial := make([]*vioEntry, 1, 16)
	c.vioSlice.Store(&initial)
}

func (c *Constraint) validate() error {
	if len(c.body) == 0 {
		return errors.New("constraint body must be a non-empty conjunction of atoms")
	}
	switch c.kind {
	case TGD:
		if len(c.head) == 0 {
			return errors.New("TGD head must be a non-empty conjunction of atoms")
		}
	case EGD:
		if !c.left.IsVar() || !c.rght.IsVar() {
			return errors.New("EGD equality must relate two variables")
		}
		bodyVars := map[intern.Sym]bool{}
		for _, v := range logic.VarsOf(c.body) {
			bodyVars[v.Sym()] = true
		}
		if !bodyVars[c.left.Sym()] || !bodyVars[c.rght.Sym()] {
			return fmt.Errorf("EGD equality variables %s, %s must occur in the body",
				c.left.Name(), c.rght.Name())
		}
		if c.left == c.rght {
			return errors.New("EGD equality x = x is trivially satisfied")
		}
	case DC:
		if len(c.head) != 0 {
			return errors.New("DC must not have a head")
		}
	default:
		return fmt.Errorf("unknown constraint kind %d", int(c.kind))
	}
	return nil
}

// ID returns the constraint's identifier within its Set ("" before the
// constraint is added to a Set).
func (c *Constraint) ID() string { return c.id }

// Kind reports the constraint class.
func (c *Constraint) Kind() Kind { return c.kind }

// Body returns the body conjunction ϕ. The slice must not be modified.
func (c *Constraint) Body() []logic.Atom { return c.body }

// Head returns the head conjunction ψ of a TGD (nil otherwise). The slice
// must not be modified.
func (c *Constraint) Head() []logic.Atom { return c.head }

// Equality returns the two variables related by an EGD (zero terms
// otherwise).
func (c *Constraint) Equality() (left, right logic.Term) { return c.left, c.rght }

// UniversalVars returns the distinct variables of the body in order of
// first occurrence; these are the universally quantified variables and the
// domain of every violation homomorphism.
func (c *Constraint) UniversalVars() []logic.Term {
	out := make([]logic.Term, len(c.uvars))
	for i, s := range c.uvars {
		out[i] = logic.VarSym(s)
	}
	return out
}

// ExistentialVars returns, for a TGD, the head variables that do not occur
// in the body (the existentially quantified z̄); nil for EGDs and DCs. The
// slice is cached and must not be modified.
func (c *Constraint) ExistentialVars() []logic.Term { return c.exvars }

// Consts returns the distinct constants mentioned by the constraint.
func (c *Constraint) Consts() []logic.Term {
	atoms := append([]logic.Atom{}, c.body...)
	atoms = append(atoms, c.head...)
	return logic.ConstsOf(atoms)
}

// String renders the constraint in the text format accepted by the parser.
func (c *Constraint) String() string {
	var b strings.Builder
	b.WriteString(logic.AtomsString(c.body))
	switch c.kind {
	case TGD:
		b.WriteString(" -> ")
		if ex := c.ExistentialVars(); len(ex) > 0 {
			b.WriteString("exists ")
			for i, v := range ex {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(v.Name())
			}
			b.WriteString(": ")
		}
		b.WriteString(logic.AtomsString(c.head))
	case EGD:
		b.WriteString(" -> ")
		b.WriteString(c.left.Name())
		b.WriteString(" = ")
		b.WriteString(c.rght.Name())
	case DC:
		b.WriteString(" -> false")
	}
	return b.String()
}

// Satisfied reports whether the database satisfies the constraint:
//
//   - a TGD holds when every body homomorphism extends to a head
//     homomorphism;
//   - an EGD holds when every body homomorphism equates the two variables;
//   - a DC holds when the body has no homomorphism into the database.
func (c *Constraint) Satisfied(d *relation.Database) bool {
	ok := true
	relation.ForEachHom(c.body, d, logic.NewSubst(), func(h logic.Subst) bool {
		if c.violatedBy(d, h) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// violatedBy reports whether the body homomorphism h witnesses a violation
// of c in d.
func (c *Constraint) violatedBy(d *relation.Database, h logic.Subst) bool {
	switch c.kind {
	case TGD:
		return !relation.HasHom(c.head, d, h)
	case EGD:
		l, _ := h.Lookup(c.left.Sym())
		r, _ := h.Lookup(c.rght.Sym())
		return l != r
	case DC:
		return true
	}
	return false
}

// vioEntryFor interns the violation of c witnessed by h (which must bind
// every universal variable) and returns its cached entry; the body image,
// identity, and canonical encodings are computed once per distinct
// violation process-wide.
func (c *Constraint) vioEntryFor(h logic.Subst) *vioEntry {
	var stack [64]byte
	var vals [16]intern.Sym
	uvals := vals[:0]
	for _, v := range c.uvars {
		uvals = append(uvals, h[v])
	}
	key := intern.PackSyms(stack[:0], uvals)
	c.vioMu.RLock()
	local, ok := c.vioIDs[string(key)]
	c.vioMu.RUnlock()
	if ok {
		return (*c.vioSlice.Load())[local]
	}
	c.vioMu.Lock()
	defer c.vioMu.Unlock()
	if local, ok := c.vioIDs[string(key)]; ok {
		return (*c.vioSlice.Load())[local]
	}

	canon := make(logic.Subst, len(c.uvars))
	for _, v := range c.uvars {
		canon[v] = h[v]
	}
	e := &vioEntry{h: canon}
	for _, a := range canon.ApplyAtoms(c.body) {
		f := relation.MustFactFromAtom(a)
		dup := false
		for _, g := range e.bodyFacts {
			if g == f {
				dup = true
				break
			}
		}
		if !dup {
			e.bodyFacts = append(e.bodyFacts, f)
		}
	}
	relation.SortFacts(e.bodyFacts)
	ids := make([]uint32, len(e.bodyFacts))
	for i, f := range e.bodyFacts {
		ids[i] = f.ID()
	}
	e.bodyPack = string(intern.PackTuple(make([]byte, 0, 4*len(ids)), ids))
	e.legacyKey = c.id + "|" + canon.Key()

	cur := *c.vioSlice.Load()
	local = uint32(len(cur))
	e.id = uint64(c.cnum)<<32 | uint64(local)
	next := append(cur, e)
	c.vioIDs[string(key)] = local
	c.vioSlice.Store(&next)
	return e
}

// refreshViolationKeys rebuilds the cached canonical keys of already
// interned violations; Set.Add calls it when it assigns the constraint its
// id, so violations interned before the constraint joined a set still
// render with the final id (a Set must not be mutated once violations are
// shared between goroutines, which makes this safe).
func (c *Constraint) refreshViolationKeys() {
	c.vioMu.Lock()
	defer c.vioMu.Unlock()
	for _, e := range (*c.vioSlice.Load())[1:] {
		e.legacyKey = c.id + "|" + e.h.Key()
	}
}
