// Package repro's root benchmarks regenerate the measurable artifacts of
// the paper, one benchmark family per experiment id of EXPERIMENTS.md:
//
//	BenchmarkExactOCQA/*        — E6: exponential exact engine (Theorem 5)
//	BenchmarkSATCertain/*       — E19: SAT certain answers vs DAG (with
//	BenchmarkDAGCertain/*         the chain-side head-to-head column)
//	BenchmarkSamplingWalks/*    — E6/E7: polynomial sampling (Theorem 9)
//	BenchmarkEstimateOCA        — E7: full (ε,δ) estimation at n = 150
//	BenchmarkRewriteOriginal/*  — E8: original query plans (Section 5)
//	BenchmarkRewriteModified/*  — E8: R − R_del rewritten plans
//	BenchmarkPracticalScheme    — E8: full n-round practical scheme
//	BenchmarkPractical/*        — practical pipeline over workload scenarios
//	BenchmarkViolationsFull/*   — ablation: from-scratch V(D,Σ)
//	BenchmarkViolationsDelta/*  — ablation: incremental maintenance
//	BenchmarkJustifiedOps       — ablation: operation enumeration
//	BenchmarkChainStep          — ablation: one chain transition
//	BenchmarkHomomorphism/*     — substrate: join search
//	BenchmarkFOEval/*           — substrate: CQ fast path vs generic eval
package repro

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/abc"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/generators"
	"repro/internal/logic"
	"repro/internal/markov"
	"repro/internal/ops"
	"repro/internal/plan"
	"repro/internal/practical"
	"repro/internal/relation"
	"repro/internal/repair"
	"repro/internal/sampling"
	"repro/internal/serve"
	"repro/internal/workload"
)

func keysQuery() *fo.Query {
	x, y := logic.Var("x"), logic.Var("y")
	return fo.MustQuery("Keys", []logic.Term{x},
		fo.Exists{Vars: []logic.Term{y}, F: fo.Atom{A: logic.NewAtom("R", x, y)}})
}

// BenchmarkExactOCQA measures the exact engine against instance size; the
// cost triples-and-more per added conflict (Theorem 5's FP^#P shape).
func BenchmarkExactOCQA(b *testing.B) {
	for _, conflicts := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("conflicts=%d", conflicts), func(b *testing.B) {
			d, sigma := workload.KeyViolations(workload.KeyConfig{
				Keys: conflicts, Violations: conflicts, Seed: 1,
			})
			inst := repair.MustInstance(d, sigma)
			q := keysQuery()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sem, err := core.Compute(inst, generators.Uniform{}, markov.ExploreOptions{})
				if err != nil {
					b.Fatal(err)
				}
				sem.OCA(q)
			}
		})
	}
}

// BenchmarkExactTree and BenchmarkExactDAG are the head-to-head for the
// DAG-collapsed exact engine: the same instances, queries, and semantics,
// computed by sequence-tree enumeration (factorial in the conflicts:
// 3^k·k! absorbing sequences) vs. DAG collapse (4^k distinct databases
// with parallel frontier expansion). The equivalence suite in
// internal/core proves the outputs identical.
func BenchmarkExactTree(b *testing.B) {
	for _, conflicts := range []int{4, 5, 6} {
		b.Run(fmt.Sprintf("conflicts=%d", conflicts), func(b *testing.B) {
			d, sigma := workload.KeyViolations(workload.KeyConfig{
				Keys: conflicts, Violations: conflicts, Seed: 1,
			})
			inst := repair.MustInstance(d, sigma)
			q := keysQuery()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sem, err := core.ComputeTree(inst, generators.Uniform{}, markov.ExploreOptions{})
				if err != nil {
					b.Fatal(err)
				}
				sem.OCA(q)
			}
		})
	}
}

func BenchmarkExactDAG(b *testing.B) {
	for _, conflicts := range []int{4, 5, 6} {
		b.Run(fmt.Sprintf("conflicts=%d", conflicts), func(b *testing.B) {
			d, sigma := workload.KeyViolations(workload.KeyConfig{
				Keys: conflicts, Violations: conflicts, Seed: 1,
			})
			inst := repair.MustInstance(d, sigma)
			q := keysQuery()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sem, err := core.ComputeDAG(inst, generators.Uniform{}, markov.ExploreOptions{})
				if err != nil {
					b.Fatal(err)
				}
				sem.OCA(q)
			}
		})
	}
}

// BenchmarkSATCertain and BenchmarkDAGCertain are the head-to-head for
// the SAT backend on the huge-sequence-space / easy-structure cliques
// family (g independent 3-fact violating key groups + 2 conflict-free
// core keys; 4^g repairs): the DAG engine computes certain answers by
// exploring every distinct database, the SAT engine by one CDCL solve
// per candidate tuple over a CNF sized by the conflicted facts. The DAG
// column stops where its state space explodes; the SAT column keeps
// going at sizes (4^64 repairs) no chain engine can represent, and the
// equivalence suite in internal/core proves the answers identical where
// both run.
func BenchmarkSATCertain(b *testing.B) {
	for _, groups := range []int{2, 4, 5, 22, 64} {
		b.Run(fmt.Sprintf("groups=%d", groups), func(b *testing.B) {
			d, sigma := workload.Cliques(workload.CliqueConfig{
				Groups: groups, GroupSize: 3, Core: 2, Seed: 1,
			})
			q := keysQuery()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.ComputeCertainSAT(d, sigma, q)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Answers) != 2 {
					b.Fatalf("certain = %v", res.Answers)
				}
			}
		})
	}
}

func BenchmarkDAGCertain(b *testing.B) {
	// Each 3-fact group contributes 8 reachable sub-databases (any subset
	// survives mid-chain), so the DAG has 8^g states — the wall arrives
	// around g=5; the SAT column above continues to g=64.
	for _, groups := range []int{2, 4, 5} {
		b.Run(fmt.Sprintf("groups=%d", groups), func(b *testing.B) {
			d, sigma := workload.Cliques(workload.CliqueConfig{
				Groups: groups, GroupSize: 3, Core: 2, Seed: 1,
			})
			inst := repair.MustInstance(d, sigma)
			q := keysQuery()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sem, err := core.ComputeDAG(inst, generators.Uniform{}, markov.ExploreOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if got := sem.Certain(q); len(got) != 2 {
					b.Fatalf("certain = %v", got)
				}
			}
		})
	}
}

// BenchmarkUniformExactDAG measures the exact sequence-uniform semantics
// on the conflict-chain workload: the same DAG exploration as the
// walk-induced mode, plus the count-ratio reweighting — the mode should be
// essentially free relative to ComputeDAG.
func BenchmarkUniformExactDAG(b *testing.B) {
	for _, facts := range []int{6, 9, 12} {
		b.Run(fmt.Sprintf("facts=%d", facts), func(b *testing.B) {
			d, sigma := workload.Chain(workload.ChainConfig{Facts: facts})
			inst := repair.MustInstance(d, sigma)
			x, y := logic.Var("x"), logic.Var("y")
			q := fo.MustQuery("Q", []logic.Term{x, y}, fo.Atom{A: logic.NewAtom("E", x, y)})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sem, err := core.ComputeDAGMode(inst, generators.Uniform{}, markov.ExploreOptions{}, core.SequenceUniform)
				if err != nil {
					b.Fatal(err)
				}
				sem.OCA(q)
			}
		})
	}
}

// BenchmarkUniformWalks is the count-guided uniform estimator end to end
// (sequence-DAG build + 200 exactly-uniform draws) on the conflict chain;
// contrast with BenchmarkEstimatorWalks, the walk-induced equivalent.
func BenchmarkUniformWalks(b *testing.B) {
	d, sigma := workload.Chain(workload.ChainConfig{Facts: 12})
	inst := repair.MustInstance(d, sigma)
	x, y := logic.Var("x"), logic.Var("y")
	q := fo.MustQuery("Q", []logic.Term{x, y}, fo.Atom{A: logic.NewAtom("E", x, y)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est := &sampling.Estimator{
			Inst: inst, Gen: generators.Uniform{}, Seed: int64(i),
			Mode: core.SequenceUniform,
		}
		if _, err := est.EstimateWithN(q, 200); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSamplingWalks measures one random walk against database size;
// the per-walk cost stays polynomial as conflicts grow.
func BenchmarkSamplingWalks(b *testing.B) {
	for _, conflicts := range []int{5, 10, 20, 40} {
		b.Run(fmt.Sprintf("conflicts=%d", conflicts), func(b *testing.B) {
			d, sigma := workload.KeyViolations(workload.KeyConfig{
				Keys: conflicts * 2, Violations: conflicts, Seed: 1,
			})
			inst := repair.MustInstance(d, sigma)
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sampling.Walk(inst, generators.Uniform{}, rng, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEstimateOCA is the full Theorem 9 pipeline at the paper's
// n = 150 (ε = δ = 0.1) on the running example.
func BenchmarkEstimateOCA(b *testing.B) {
	d, sigma := workload.Preferences(workload.PreferenceConfig{
		Products: 10, Prefs: 20, ConflictRate: 0.3, Seed: 1,
	})
	inst := repair.MustInstance(d, sigma)
	x, y := logic.Var("x"), logic.Var("y")
	q := fo.MustQuery("Top", []logic.Term{x}, fo.ForAll{
		Vars: []logic.Term{y},
		F:    fo.Or{L: fo.Atom{A: logic.NewAtom("Pref", x, y)}, R: fo.Eq{L: x, R: y}},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est := &sampling.Estimator{Inst: inst, Gen: generators.Preference{}, Seed: int64(i)}
		if _, err := est.EstimateAnswers(q, 0.1, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// rewritePlans are the three §5 experiment queries.
func rewritePlans() map[string]plan.Plan {
	return map[string]plan.Plan{
		"filter": plan.Select{
			Input: plan.Scan{Table: "orders"},
			Cond:  plan.ColEqVal{Col: "amount", Op: ">=", Val: "500"},
		},
		"join": plan.Project{
			Input: plan.Join{L: plan.Scan{Table: "orders"}, R: plan.Scan{Table: "customers"}},
			Cols:  []string{"oid", "region"},
		},
		"aggregate": plan.GroupCount{
			Input: plan.Join{L: plan.Scan{Table: "orders"}, R: plan.Scan{Table: "customers"}},
			By:    []string{"region"},
		},
	}
}

// BenchmarkRewriteOriginal times the original plans (E8 baseline).
func BenchmarkRewriteOriginal(b *testing.B) {
	oc := workload.Orders(workload.OrdersConfig{Orders: 10000, Customers: 1000, ViolationRate: 0.1, Seed: 7})
	for name, p := range rewritePlans() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Exec(oc.Catalog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRewriteModified times the same plans after the R − R_del
// rewriting of Section 5; the paper's feasibility claim is that the ratio
// to BenchmarkRewriteOriginal stays small.
func BenchmarkRewriteModified(b *testing.B) {
	oc := workload.Orders(workload.OrdersConfig{Orders: 10000, Customers: 1000, ViolationRate: 0.1, Seed: 7})
	rng := rand.New(rand.NewSource(3))
	orders, err := oc.Catalog.Table("orders")
	if err != nil {
		b.Fatal(err)
	}
	groups := practical.KeyGroups(oc.Catalog.DB(), orders.Pred, len(orders.Cols), oc.Catalog.Key("orders"))
	rdel := practical.SampleRdel(rng, groups, practical.Policy{})
	repl := map[string]*plan.Relation{"orders": plan.FromFacts("orders_del", orders.Cols, rdel)}
	for name, p := range rewritePlans() {
		rewritten := plan.RewriteScans(p, repl)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rewritten.Exec(oc.Catalog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPracticalScheme runs the full n = 150 round scheme end to end.
func BenchmarkPracticalScheme(b *testing.B) {
	oc := workload.Orders(workload.OrdersConfig{Orders: 2000, Customers: 200, ViolationRate: 0.1, Seed: 7})
	p := plan.Distinct{Input: plan.Project{
		Input: plan.Join{L: plan.Scan{Table: "orders"}, R: plan.Scan{Table: "customers"}},
		Cols:  []string{"region"},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &practical.Runner{Catalog: oc.Catalog, Seed: int64(i)}
		if _, err := r.RunWithGuarantee(p, 0.1, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPractical measures the practical pipeline's round throughput —
// a fixed 150 rounds per iteration — across the workload scenarios: the
// orders join (compiled-CQ path), the orders filter (algebra path with an
// order comparison), and the key-violation relation the chain benchmarks
// use (shared substrate, no conversion). Sub-benchmarks with a workers
// suffix exercise the parallel round pool; their results are bit-identical
// to the sequential ones by construction.
func BenchmarkPractical(b *testing.B) {
	ordersOC := workload.Orders(workload.OrdersConfig{Orders: 2000, Customers: 200, ViolationRate: 0.1, Seed: 7})
	joinPlan := plan.Distinct{Input: plan.Project{
		Input: plan.Join{L: plan.Scan{Table: "orders"}, R: plan.Scan{Table: "customers"}},
		Cols:  []string{"region"},
	}}
	filterPlan := plan.Distinct{Input: plan.Project{
		Input: plan.Select{
			Input: plan.Scan{Table: "orders"},
			Cond:  plan.ColEqVal{Col: "amount", Op: ">=", Val: "500"},
		},
		Cols: []string{"oid"},
	}}

	kvDB, _ := workload.KeyViolations(workload.KeyConfig{Keys: 500, Violations: 100, Seed: 1})
	kvCat := plan.NewCatalogOn(kvDB)
	kvCat.MustAddTable("R", "k", "v")
	if err := kvCat.DeclareKey("R", "k"); err != nil {
		b.Fatal(err)
	}
	kvCat.Seal()
	existsPlan := plan.Distinct{Input: plan.Project{Input: plan.Scan{Table: "R"}, Cols: []string{"k"}}}

	scenarios := []struct {
		name    string
		cat     *plan.Catalog
		p       plan.Plan
		workers int
	}{
		{"orders-join", ordersOC.Catalog, joinPlan, 1},
		{"orders-filter", ordersOC.Catalog, filterPlan, 1},
		{"keyviol-exists", kvCat, existsPlan, 1},
		{"orders-join-workers=4", ordersOC.Catalog, joinPlan, 4},
		{"keyviol-exists-workers=4", kvCat, existsPlan, 4},
	}
	for _, sc := range scenarios {
		b.Run(sc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := &practical.Runner{Catalog: sc.cat, Seed: 7, Workers: sc.workers}
				if _, err := r.Run(sc.p, 150); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkViolationsFull / BenchmarkViolationsDelta are the ablation for
// the incremental violation maintenance (the Section 6 localization idea):
// recomputing V(D,Σ) from scratch after one deletion vs. maintaining it.
func BenchmarkViolationsFull(b *testing.B) {
	for _, size := range []int{100, 1000, 5000} {
		b.Run(fmt.Sprintf("facts=%d", size), func(b *testing.B) {
			d, sigma := workload.KeyViolations(workload.KeyConfig{
				Keys: size, Violations: size / 10, Seed: 1,
			})
			victim := d.Facts()[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Delete(victim)
				constraint.FindViolations(d, sigma)
				d.Insert(victim)
			}
		})
	}
}

func BenchmarkViolationsDelta(b *testing.B) {
	for _, size := range []int{100, 1000, 5000} {
		b.Run(fmt.Sprintf("facts=%d", size), func(b *testing.B) {
			d, sigma := workload.KeyViolations(workload.KeyConfig{
				Keys: size, Violations: size / 10, Seed: 1,
			})
			before := constraint.FindViolations(d, sigma)
			victim := d.Facts()[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Delete(victim)
				constraint.UpdateViolations(d, sigma, before, []relation.Fact{victim}, false)
				d.Insert(victim)
			}
		})
	}
}

// BenchmarkSurvey measures a full traversal of the repairing-sequence tree
// RS(D,Σ): every state clones bookkeeping and database, so this is the
// stress test for state/database representation.
func BenchmarkSurvey(b *testing.B) {
	for _, conflicts := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("conflicts=%d", conflicts), func(b *testing.B) {
			d, sigma := workload.KeyViolations(workload.KeyConfig{
				Keys: conflicts * 2, Violations: conflicts, Seed: 1,
			})
			inst := repair.MustInstance(d, sigma)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				repair.Survey(inst)
			}
		})
	}
}

// BenchmarkEstimatorWalks is the Estimator end to end at a fixed n = 200 on
// the key-violation workload; contrast with BenchmarkEstimateOCA which uses
// the preference generator.
func BenchmarkEstimatorWalks(b *testing.B) {
	d, sigma := workload.KeyViolations(workload.KeyConfig{Keys: 40, Violations: 20, Seed: 1})
	inst := repair.MustInstance(d, sigma)
	q := keysQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est := &sampling.Estimator{Inst: inst, Gen: generators.Uniform{}, Seed: int64(i)}
		if _, err := est.EstimateWithN(q, 200); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJustifiedOps measures operation enumeration at a repairing
// state.
func BenchmarkJustifiedOps(b *testing.B) {
	d, sigma := workload.KeyViolations(workload.KeyConfig{Keys: 100, Violations: 20, Seed: 1})
	inst := repair.MustInstance(d, sigma)
	root := inst.Root()
	vs := root.Violations()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops.JustifiedOps(root.Result(), sigma, vs, inst.Base())
	}
}

// BenchmarkChainStep measures one transition: extension enumeration plus
// generator probabilities.
func BenchmarkChainStep(b *testing.B) {
	d, sigma := workload.KeyViolations(workload.KeyConfig{Keys: 100, Violations: 20, Seed: 1})
	inst := repair.MustInstance(d, sigma)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := inst.Root()
		if _, err := markov.Step(generators.Uniform{}, root); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHomomorphism measures the join search on a path query.
func BenchmarkHomomorphism(b *testing.B) {
	for _, size := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("facts=%d", size), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			d := relation.NewDatabase()
			for i := 0; i < size; i++ {
				d.Insert(relation.NewFact("E",
					fmt.Sprintf("n%d", rng.Intn(size/2)),
					fmt.Sprintf("n%d", rng.Intn(size/2))))
			}
			x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
			path := []logic.Atom{logic.NewAtom("E", x, y), logic.NewAtom("E", y, z)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				relation.CountHoms(path, d, nil)
			}
		})
	}
}

// BenchmarkFOEval contrasts the CQ fast path with generic active-domain
// evaluation on the same query.
func BenchmarkFOEval(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := relation.NewDatabase()
	for i := 0; i < 300; i++ {
		d.Insert(relation.NewFact("E",
			fmt.Sprintf("n%d", rng.Intn(60)),
			fmt.Sprintf("n%d", rng.Intn(60))))
	}
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	cq := fo.MustQuery("Path", []logic.Term{x, z},
		fo.Exists{Vars: []logic.Term{y},
			F: fo.And{
				L: fo.Atom{A: logic.NewAtom("E", x, y)},
				R: fo.Atom{A: logic.NewAtom("E", y, z)},
			}})
	// The negated variant disables the CQ fast path.
	nonCQ := fo.MustQuery("NotSink", []logic.Term{x},
		fo.Not{F: fo.Exists{Vars: []logic.Term{y}, F: fo.Atom{A: logic.NewAtom("E", x, y)}}})

	b.Run("cq-fast-path", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cq.Answers(d)
		}
	})
	b.Run("generic-eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nonCQ.Answers(d)
		}
	})
}

// BenchmarkFactoredExact is the ablation for the Section 6 localization
// optimization: exact semantics via conflict-component factorization. At
// k independent conflicts the monolithic chain has 3^k·k! sequences while
// the factored computation does k tiny explorations; compare with
// BenchmarkExactOCQA.
func BenchmarkFactoredExact(b *testing.B) {
	for _, conflicts := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("conflicts=%d", conflicts), func(b *testing.B) {
			d, sigma := workload.KeyViolations(workload.KeyConfig{
				Keys: conflicts, Violations: conflicts, Seed: 1,
			})
			inst := repair.MustInstance(d, sigma)
			target := inst.Initial().Facts()[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fac, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{})
				if err != nil {
					b.Fatal(err)
				}
				fac.FactProbability(target)
			}
		})
	}
}

// BenchmarkFactoredSampleRepair draws exact repairs from the factored
// distribution; contrast with BenchmarkSamplingWalks.
func BenchmarkFactoredSampleRepair(b *testing.B) {
	d, sigma := workload.KeyViolations(workload.KeyConfig{Keys: 80, Violations: 40, Seed: 1})
	inst := repair.MustInstance(d, sigma)
	fac, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fac.SampleRepair(rng)
	}
}

// BenchmarkFactored measures the parallel, structurally-memoized factored
// engine on a many-isomorphic-islands archipelago (90% of the islands share
// one structural cache key). "seq" is the PR5-equivalent sequential,
// uncached engine; "workers8" adds the worker pool; "cache" adds the
// isomorphism cache alone; "cache-workers8" is the full PR6 configuration.
func BenchmarkFactored(b *testing.B) {
	d, sigma := workload.Islands(workload.IslandsConfig{
		Islands:        300,
		FactsPerIsland: 6,
		IsoRatio:       0.9,
		Seed:           42,
	})
	inst := repair.MustInstance(d, sigma)
	inst.Root().Violations() // warm the violation cache shared by every config

	cases := []struct {
		name    string
		workers int
		nocache bool
	}{
		{"seq", 1, true},
		{"workers8", 8, true},
		{"cache", 1, false},
		{"cache-workers8", 8, false},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fac, err := core.ComputeFactoredOpts(inst, generators.Uniform{},
					markov.ExploreOptions{Workers: tc.workers},
					core.FactoredOptions{NoCache: tc.nocache})
				if err != nil {
					b.Fatal(err)
				}
				if len(fac.Components) != 300 {
					b.Fatalf("components = %d", len(fac.Components))
				}
			}
		})
	}
}

// BenchmarkFactoredQuery measures the exact atomic-query path (marginal via
// the fact-key→component index) on a precomputed factored semantics.
func BenchmarkFactoredQuery(b *testing.B) {
	d, sigma := workload.Islands(workload.IslandsConfig{
		Islands:        300,
		FactsPerIsland: 6,
		IsoRatio:       0.9,
		Seed:           42,
	})
	inst := repair.MustInstance(d, sigma)
	fac, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	x, y := logic.Var("X"), logic.Var("Y")
	q := fo.MustQuery("Q", []logic.Term{x, y}, fo.Atom{A: logic.NewAtom("E", x, y)})
	tuple := []string{"i00000123_n002", "i00000123_n003"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fac.CP(q, tuple); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServe measures the resident serving pipeline of internal/serve
// on the islands workload (400 four-fact islands, so one toggle touches
// 0.25% of the components). The sub-benchmarks bracket the design space
// per operation of a mixed stream:
//
//	scratch/10pct — the non-resident baseline: every ingest answers by
//	                recomputing violations, partition, and factored
//	                semantics from scratch on the post-delta database.
//	warm/0pct     — read-only serving from the published snapshot.
//	warm/10pct    — the resident engine: delta-scoped recomputation with
//	                the structural cache warm across deltas.
//	cold/10pct    — ablation: delta-scoped recomputation, cache disabled.
func BenchmarkServe(b *testing.B) {
	const nOps = 4096
	mix := func(ingestRatio float64) (*relation.Database, *constraint.Set, []workload.ServeOp) {
		return workload.ServeMix(workload.ServeMixConfig{
			Islands:        400,
			FactsPerIsland: 4,
			IsoRatio:       0.9,
			Ops:            nOps,
			IngestRatio:    ingestRatio,
			Seed:           42,
		})
	}

	b.Run("scratch/10pct", func(b *testing.B) {
		d, sigma, ops := mix(0.1)
		db := d.Clone()
		vs := constraint.FindViolations(db, sigma)
		part := abc.NewPartition(vs)
		fac, err := core.ComputeFactoredDelta(db, sigma, generators.Uniform{},
			markov.ExploreOptions{}, core.FactoredOptions{NoCache: true}, core.FactoredDelta{Part: part})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op := ops[i%len(ops)]
			if !op.Ingest {
				fac.FactProbability(op.Fact)
				continue
			}
			if op.Insert {
				db.Insert(op.Fact)
			} else {
				db.Delete(op.Fact)
			}
			vs = constraint.FindViolations(db, sigma)
			part = abc.NewPartition(vs)
			fac, err = core.ComputeFactoredDelta(db, sigma, generators.Uniform{},
				markov.ExploreOptions{}, core.FactoredOptions{NoCache: true}, core.FactoredDelta{Part: part})
			if err != nil {
				b.Fatal(err)
			}
		}
	})

	for _, tc := range []struct {
		name    string
		ratio   float64
		nocache bool
	}{
		{"warm/0pct", 0, false},
		{"warm/10pct", 0.1, false},
		{"cold/10pct", 0.1, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			d, sigma, ops := mix(tc.ratio)
			s, err := serve.New(d, sigma, generators.Uniform{}, serve.Options{NoCache: tc.nocache})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := ops[i%len(ops)]
				if op.Ingest {
					if _, err := s.Ingest([]serve.Op{{Fact: op.Fact, Insert: op.Insert}}); err != nil {
						b.Fatal(err)
					}
				} else {
					s.FactProbability(op.Fact)
				}
			}
		})
	}
}

// BenchmarkServeThroughput measures the serving edge under concurrency,
// which BenchmarkServe's single stream cannot see:
//
//	queries/live-ingest — 4 reader goroutines issue atomic fact probes
//	                      while a writer goroutine streams toggles into
//	                      the server; reports queries/sec and the p50/p99
//	                      read latency under live publication churn.
//	ingest/single       — one caller, one effective toggle per publication:
//	                      the uncoalesced write throughput baseline.
//	ingest/coalesced    — 16 callers toggling disjoint islands
//	                      concurrently: queued requests fold into shared
//	                      publications (ops/publish reports the realized
//	                      batch size), so throughput must beat the
//	                      single-caller baseline.
//
// All three run on the 400-island mixed workload of BenchmarkServe.
func BenchmarkServeThroughput(b *testing.B) {
	islandsDB := func() (*relation.Database, *constraint.Set) {
		return workload.Islands(workload.IslandsConfig{
			Islands:        400,
			FactsPerIsland: 4,
			IsoRatio:       0.9,
			Seed:           42,
		})
	}
	// toggler returns a stream of always-effective single-op toggles over
	// the islands owned by one caller (island ≡ caller mod callers).
	toggler := func(d *relation.Database, caller, callers int) func() serve.Op {
		var mine []relation.Fact
		present := map[relation.Fact]bool{}
		for i := caller; i < 400; i += callers {
			f := relation.NewFact("E", fmt.Sprintf("i%08d_n002", i), fmt.Sprintf("i%08d_n003", i))
			mine = append(mine, f)
			present[f] = d.Contains(f)
		}
		k := 0
		return func() serve.Op {
			f := mine[k%len(mine)]
			k++
			op := serve.Op{Fact: f, Insert: !present[f]}
			present[f] = op.Insert
			return op
		}
	}

	b.Run("queries/live-ingest", func(b *testing.B) {
		d, sigma := islandsDB()
		s, err := serve.New(d, sigma, generators.Uniform{}, serve.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		stop := make(chan struct{})
		var writer sync.WaitGroup
		writer.Add(1)
		go func() {
			defer writer.Done()
			next := toggler(d, 0, 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.Ingest([]serve.Op{next()}); err != nil {
					return
				}
			}
		}()
		const readers = 4
		facts := d.Facts()
		lat := make([][]time.Duration, readers)
		var wg sync.WaitGroup
		b.ResetTimer()
		start := time.Now()
		for r := 0; r < readers; r++ {
			n := b.N / readers
			if r < b.N%readers {
				n++
			}
			wg.Add(1)
			go func(r, n int) {
				defer wg.Done()
				mine := make([]time.Duration, 0, n)
				idx := r
				for k := 0; k < n; k++ {
					f := facts[idx%len(facts)]
					idx += 13
					t0 := time.Now()
					s.FactProbability(f)
					mine = append(mine, time.Since(t0))
				}
				lat[r] = mine
			}(r, n)
		}
		wg.Wait()
		elapsed := time.Since(start)
		b.StopTimer()
		close(stop)
		writer.Wait()
		var all []time.Duration
		for _, l := range lat {
			all = append(all, l...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		quant := func(q float64) float64 {
			return float64(all[int(q*float64(len(all)-1))].Nanoseconds())
		}
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "queries/sec")
		b.ReportMetric(quant(0.50), "p50-ns")
		b.ReportMetric(quant(0.99), "p99-ns")
	})

	b.Run("ingest/single", func(b *testing.B) {
		d, sigma := islandsDB()
		s, err := serve.New(d, sigma, generators.Uniform{}, serve.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		next := toggler(d, 0, 1)
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if _, err := s.Ingest([]serve.Op{next()}); err != nil {
				b.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		b.StopTimer()
		st := s.Stats()
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "ingests/sec")
		b.ReportMetric(float64(st.CumOps)/float64(st.Version), "ops/publish")
	})

	b.Run("ingest/coalesced", func(b *testing.B) {
		d, sigma := islandsDB()
		s, err := serve.New(d, sigma, generators.Uniform{}, serve.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		const callers = 16
		var wg sync.WaitGroup
		b.ResetTimer()
		start := time.Now()
		for c := 0; c < callers; c++ {
			n := b.N / callers
			if c < b.N%callers {
				n++
			}
			wg.Add(1)
			go func(c, n int) {
				defer wg.Done()
				next := toggler(d, c, callers)
				for k := 0; k < n; k++ {
					if _, err := s.Ingest([]serve.Op{next()}); err != nil {
						b.Error(err)
						return
					}
				}
			}(c, n)
		}
		wg.Wait()
		elapsed := time.Since(start)
		b.StopTimer()
		st := s.Stats()
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "ingests/sec")
		b.ReportMetric(float64(st.CumOps)/float64(st.Version), "ops/publish")
	})
}
