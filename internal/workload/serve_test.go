package workload

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/relation"
)

func streamsConfig(ops int) ServeMixConfig {
	return ServeMixConfig{
		Islands:        10,
		FactsPerIsland: 4,
		IsoRatio:       0.5,
		Ops:            ops,
		IngestRatio:    0.5,
		Seed:           9,
	}
}

// islandOf recovers the island index from a workload fact name
// ("i%08d_n%03d").
func islandOf(t *testing.T, f relation.Fact) int {
	t.Helper()
	var i, n int
	if _, err := fmt.Sscanf(f.ArgNames()[0], "i%08d_n%03d", &i, &n); err != nil {
		t.Fatalf("fact %s is not a workload edge: %v", f, err)
	}
	return i
}

// TestServeStreamsDisjointAndDeterministic: streams are pure functions of
// the config, each of the requested length, and stream s only ever touches
// islands ≡ s (mod streams) — the property that makes the final database
// independent of how concurrent streams interleave.
func TestServeStreamsDisjointAndDeterministic(t *testing.T) {
	const streams = 3
	cfg := streamsConfig(50)
	d1, _, a := ServeStreams(cfg, streams)
	_, _, b := ServeStreams(cfg, streams)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config must reproduce the streams")
	}
	if len(a) != streams {
		t.Fatalf("got %d streams, want %d", len(a), streams)
	}
	toggles := 0
	for s, ops := range a {
		if len(ops) != cfg.Ops {
			t.Fatalf("stream %d has %d ops, want %d", s, len(ops), cfg.Ops)
		}
		for _, op := range ops {
			if got := islandOf(t, op.Fact); got%streams != s {
				t.Fatalf("stream %d touches island %d (owned by stream %d)", s, got, got%streams)
			}
			if op.Ingest {
				toggles++
			}
		}
	}
	if toggles == 0 {
		t.Fatal("streams contain no ingests; the concurrency workload is vacuous")
	}
	if d1.Size() == 0 {
		t.Fatal("empty base database")
	}
}

// TestServeStreamsOrderIndependentFinalState: applying the streams
// sequentially in any order lands on the same database — the oracle the
// concurrent server test recomputes against.
func TestServeStreamsOrderIndependentFinalState(t *testing.T) {
	const streams = 4
	d, _, ops := ServeStreams(streamsConfig(60), streams)
	apply := func(order []int) *relation.Database {
		db := d.Clone()
		for _, s := range order {
			for _, op := range ops[s] {
				if !op.Ingest {
					continue
				}
				if op.Insert {
					db.Insert(op.Fact)
				} else {
					db.Delete(op.Fact)
				}
			}
		}
		return db
	}
	fwd := apply([]int{0, 1, 2, 3})
	rev := apply([]int{3, 2, 1, 0})
	if !fwd.Equal(rev) {
		t.Fatal("stream application order changed the final database")
	}
	if fwd.Equal(d) {
		t.Fatal("streams were all no-ops")
	}
}
