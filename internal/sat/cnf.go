package sat

import (
	"fmt"
	"io"
)

// Var is a propositional variable, numbered 1..NumVars like DIMACS.
type Var = int32

// Lit is a literal in DIMACS convention: +v is the variable v, -v its
// negation. Zero is not a literal.
type Lit = int32

// CNF is a formula in conjunctive normal form under construction. Clauses
// added through Add are stored as given (the solver normalizes); the
// builder also offers the cardinality encodings the certain-answer
// compiler needs. A CNF is not safe for concurrent mutation.
type CNF struct {
	nv      int32
	clauses [][]Lit
	// hasEmpty records that an empty clause was added: the formula is
	// trivially unsatisfiable and the solver short-circuits.
	hasEmpty bool
}

// NewCNF returns an empty formula with n pre-allocated variables
// (variables 1..n exist; NewVar extends past them).
func NewCNF(n int) *CNF {
	if n < 0 {
		n = 0
	}
	return &CNF{nv: int32(n)}
}

// NewVar allocates a fresh variable and returns it.
func (c *CNF) NewVar() Var {
	c.nv++
	return c.nv
}

// NumVars reports the number of allocated variables.
func (c *CNF) NumVars() int { return int(c.nv) }

// NumClauses reports the number of clauses added so far.
func (c *CNF) NumClauses() int { return len(c.clauses) }

// Add appends one clause (a disjunction of literals). The literal slice is
// copied. An empty clause makes the formula unsatisfiable. Literals must
// reference allocated variables; Add panics otherwise, since a silent
// out-of-range literal would corrupt the solver's watch tables.
func (c *CNF) Add(lits ...Lit) {
	if len(lits) == 0 {
		c.hasEmpty = true
		c.clauses = append(c.clauses, nil)
		return
	}
	cl := make([]Lit, len(lits))
	for i, l := range lits {
		v := l
		if v < 0 {
			v = -v
		}
		if v == 0 || v > c.nv {
			panic(fmt.Sprintf("sat: literal %d references an unallocated variable (have %d)", l, c.nv))
		}
		cl[i] = l
	}
	c.clauses = append(c.clauses, cl)
}

// Clone returns a copy sharing the (immutable) clause bodies: the clause
// list itself is copied, so clauses added to the clone do not leak back.
// The certain-answer compiler clones the shared group constraints once per
// candidate tuple and stacks the tuple's witness clauses on top.
func (c *CNF) Clone() *CNF {
	out := &CNF{nv: c.nv, hasEmpty: c.hasEmpty}
	out.clauses = make([][]Lit, len(c.clauses), len(c.clauses)+8)
	copy(out.clauses, c.clauses)
	return out
}

// pairwiseAtMostOneLimit is the group size up to which at-most-one is
// encoded with the O(n²) pairwise clauses; larger groups use the sequential
// (ladder) encoding, which is linear in clauses and auxiliary variables.
const pairwiseAtMostOneLimit = 6

// AtMostOne constrains at most one of the variables to be true. Groups up
// to pairwiseAtMostOneLimit use pairwise negative clauses; larger groups
// use the sequential encoding s_i ("some x_j with j ≤ i is true") with the
// ladder clauses
//
//	x_i → s_i,   s_{i-1} → s_i,   x_i ∧ s_{i-1} → ⊥,
//
// whose auxiliary variables are freshly allocated here. Every assignment of
// the x_i with ≤ 1 true extends to the auxiliaries, and none with ≥ 2 true
// does (the property suite checks both by model enumeration).
func (c *CNF) AtMostOne(vars []Var) {
	if len(vars) <= 1 {
		return
	}
	if len(vars) <= pairwiseAtMostOneLimit {
		for i := 0; i < len(vars); i++ {
			for j := i + 1; j < len(vars); j++ {
				c.Add(-vars[i], -vars[j])
			}
		}
		return
	}
	n := len(vars)
	s := make([]Var, n-1)
	for i := range s {
		s[i] = c.NewVar()
	}
	for i := 0; i < n-1; i++ {
		c.Add(-vars[i], s[i]) // x_i → s_i
		if i > 0 {
			c.Add(-s[i-1], s[i]) // s_{i-1} → s_i
		}
	}
	for i := 1; i < n; i++ {
		c.Add(-vars[i], -s[i-1]) // x_i ∧ s_{i-1} → ⊥
	}
}

// ExactlyOne constrains exactly one of the variables to be true: AtMostOne
// plus the covering clause x_1 ∨ ... ∨ x_n. An empty group is
// unsatisfiable (the covering clause is empty).
func (c *CNF) ExactlyOne(vars []Var) {
	cover := make([]Lit, len(vars))
	for i, v := range vars {
		cover[i] = v
	}
	c.Add(cover...)
	c.AtMostOne(vars)
}

// WriteDIMACS emits the formula in DIMACS CNF format, preceded by the
// given comment lines (written as "c <line>"), for cross-checking against
// external solvers.
func (c *CNF) WriteDIMACS(w io.Writer, comments ...string) error {
	for _, line := range comments {
		if _, err := fmt.Fprintf(w, "c %s\n", line); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "p cnf %d %d\n", c.nv, len(c.clauses)); err != nil {
		return err
	}
	for _, cl := range c.clauses {
		for _, l := range cl {
			if _, err := fmt.Fprintf(w, "%d ", l); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, "0"); err != nil {
			return err
		}
	}
	return nil
}
