package relation

import (
	"repro/internal/intern"
)

// This file implements the secondary argument indexes of sealed snapshots:
// for every predicate, every argument position, and every constant symbol,
// the packed list of facts carrying that constant at that position. The
// homomorphism search consults them to replace linear per-predicate scans
// with O(bucket) candidate enumeration whenever an atom argument is pinned
// by a constant or an already-bound variable, and the join planner reads
// real bucket cardinalities instead of guessing.
//
// Indexes live exclusively in the immutable snapshot, so they are built
// once per Seal and shared by every clone for free — exactly like the fact
// set itself. Reads on a database with a pending delta combine the
// snapshot buckets with a scan of the (small, walk-sized) added/removed
// slices; ForEachHom folds oversized deltas into a fresh snapshot before
// searching, so the delta scan stays bounded by autoSealFloor.

// predIndex is the secondary index of one predicate: pos[j] maps the
// constant at argument position j to the facts carrying it there. Bucket
// slices are subslices of one packed backing array per position, grouped
// in byPred order (so indexed enumeration visits survivors in the same
// relative order as a filtered scan of FactsByPred).
type predIndex struct {
	pos []map[intern.Sym][]Fact
}

// buildPredIndex indexes the facts of one predicate. Facts of heterogeneous
// arity are indexed at every position they actually have; the arity check
// during unification filters the rest.
func buildPredIndex(fs []Fact) *predIndex {
	maxAr := 0
	for _, f := range fs {
		if a := f.Arity(); a > maxAr {
			maxAr = a
		}
	}
	pi := &predIndex{pos: make([]map[intern.Sym][]Fact, maxAr)}
	for j := 0; j < maxAr; j++ {
		counts := make(map[intern.Sym]int)
		total := 0
		for _, f := range fs {
			if args := f.Args(); j < len(args) {
				counts[args[j]]++
				total++
			}
		}
		backing := make([]Fact, total)
		// Assign each symbol a contiguous span in first-occurrence order,
		// then fill spans in byPred order so buckets preserve it.
		offsets := make(map[intern.Sym]int, len(counts))
		next := make(map[intern.Sym]int, len(counts))
		cum := 0
		for _, f := range fs {
			args := f.Args()
			if j >= len(args) {
				continue
			}
			s := args[j]
			if _, seen := offsets[s]; !seen {
				offsets[s] = cum
				next[s] = cum
				cum += counts[s]
			}
			backing[next[s]] = f
			next[s]++
		}
		buckets := make(map[intern.Sym][]Fact, len(counts))
		for s, off := range offsets {
			buckets[s] = backing[off : off+counts[s] : off+counts[s]]
		}
		pi.pos[j] = buckets
	}
	return pi
}

// buildIndex builds the per-predicate argument indexes of a snapshot.
func buildIndex(byPred map[intern.Sym][]Fact) map[intern.Sym]*predIndex {
	idx := make(map[intern.Sym]*predIndex, len(byPred))
	for p, fs := range byPred {
		idx[p] = buildPredIndex(fs)
	}
	return idx
}

// bucket returns the snapshot facts with sym at argument position pos of
// the predicate; nil when the snapshot holds no such fact. Delta facts are
// not included — callers on a dirty database must consult added/removed.
func (s *snapshot) bucket(pred intern.Sym, pos int, sym intern.Sym) []Fact {
	pi := s.idx[pred]
	if pi == nil || pos >= len(pi.pos) {
		return nil
	}
	return pi.pos[pos][sym]
}

// PredCount reports the number of facts with the given predicate without
// materializing a merged per-predicate view.
func (d *Database) PredCount(pred intern.Sym) int {
	n := len(d.snap.byPred[pred])
	if len(d.added) > 0 {
		n += d.added.countPred(pred)
	}
	if len(d.removed) > 0 {
		n -= d.removed.countPred(pred)
	}
	return n
}

// CountAt reports the number of facts with the given predicate whose
// argument at position pos is sym: the snapshot bucket size adjusted by a
// scan of the delta. It is exact; the join planner uses it as the
// cardinality of an index probe.
func (d *Database) CountAt(pred intern.Sym, pos int, sym intern.Sym) int {
	n := len(d.snap.bucket(pred, pos, sym))
	for _, f := range d.added {
		if f.Pred() == pred && pos < f.Arity() && f.Arg(pos) == sym {
			n++
		}
	}
	for _, f := range d.removed {
		if f.Pred() == pred && pos < f.Arity() && f.Arg(pos) == sym {
			n--
		}
	}
	return n
}

// avgBucket estimates the bucket size of an index probe at (pred, pos)
// whose probe symbol is not yet known (a variable bound only at evaluation
// time): the mean snapshot bucket size, capped by the predicate count.
func (d *Database) avgBucket(pred intern.Sym, pos int) int {
	total := d.PredCount(pred)
	if pi := d.snap.idx[pred]; pi != nil && pos < len(pi.pos) {
		if k := len(pi.pos[pos]); k > 0 {
			if est := (len(d.snap.byPred[pred]) + k - 1) / k; est < total {
				return est
			}
		}
	}
	return total
}

// ForEachAt enumerates the facts of pred carrying sym at argument position
// pos, in the relative order of a filtered FactsByPred scan; fn returning
// false stops early. On a sealed database this reads one index bucket;
// with a pending delta it folds added/removed facts, exactly like the
// indexed join probes. Exported for consumers whose per-atom statistics
// (e.g. the preference generator's support weights) would otherwise rescan
// the whole predicate.
func (d *Database) ForEachAt(pred intern.Sym, pos int, sym intern.Sym, fn func(Fact) bool) {
	d.forEachMatch(pred, pos, sym, fn)
}

// ForEachGroupAt enumerates, for every constant occurring at argument
// position pos of pred, the facts carrying it there: the group-by that the
// practical repair scheme uses to find key-violating groups. On a sealed
// database the groups are the snapshot's index buckets, handed out without
// copying (the callback must not modify them); with a pending delta the
// merged per-predicate view is grouped instead. Enumeration order is
// unspecified — callers needing determinism sort the groups themselves.
// fn returning false stops the enumeration.
func (d *Database) ForEachGroupAt(pred intern.Sym, pos int, fn func(sym intern.Sym, facts []Fact) bool) {
	if len(d.added) == 0 && len(d.removed) == 0 {
		if pi := d.snap.idx[pred]; pi != nil {
			if pos < len(pi.pos) {
				for s, bucket := range pi.pos[pos] {
					if !fn(s, bucket) {
						return
					}
				}
			}
			return
		}
	}
	groups := map[intern.Sym][]Fact{}
	var syms []intern.Sym
	for _, f := range d.FactsByPred(pred) {
		args := f.Args()
		if pos >= len(args) {
			continue
		}
		s := args[pos]
		if _, ok := groups[s]; !ok {
			syms = append(syms, s)
		}
		groups[s] = append(groups[s], f)
	}
	for _, s := range syms {
		if !fn(s, groups[s]) {
			return
		}
	}
}

// ForEachPredFact enumerates the facts with the given predicate — the
// snapshot's list minus removed facts, then the added delta, i.e. the same
// relative order as FactsByPred — without materializing a merged view, so
// scanning a predicate of a freshly cloned round database allocates
// nothing. fn returning false stops early; the return value reports whether
// enumeration ran to completion.
func (d *Database) ForEachPredFact(pred intern.Sym, fn func(Fact) bool) bool {
	for _, f := range d.snap.byPred[pred] {
		if len(d.removed) > 0 && d.removed.Has(f) {
			continue
		}
		if !fn(f) {
			return false
		}
	}
	if len(d.added) > 0 {
		for _, f := range d.added {
			if f.Pred() != pred {
				continue
			}
			if !fn(f) {
				return false
			}
		}
	}
	return true
}

// forEachMatch enumerates the facts with the given predicate carrying sym
// at argument position pos: the snapshot bucket (skipping removed facts)
// followed by the matching added facts, i.e. the same relative order as a
// filtered scan of FactsByPred. It reports whether enumeration completed
// (fn returning false stops it early).
func (d *Database) forEachMatch(pred intern.Sym, pos int, sym intern.Sym, fn func(Fact) bool) bool {
	for _, f := range d.snap.bucket(pred, pos, sym) {
		if len(d.removed) > 0 && d.removed.Has(f) {
			continue
		}
		if !fn(f) {
			return false
		}
	}
	for _, f := range d.added {
		if f.Pred() != pred {
			continue
		}
		if args := f.Args(); pos >= len(args) || args[pos] != sym {
			continue
		}
		if !fn(f) {
			return false
		}
	}
	return true
}
