// Command repairs enumerates the operational repairs of an inconsistent
// database with their exact probabilities, optionally renders the repairing
// Markov chain tree, and compares against the classical ABC repairs.
//
// Usage:
//
//	repairs -db data.facts -constraints schema.rules \
//	        [-gen uniform|uniform-deletions|preference|trust[:seed]] \
//	        [-semantics walk|uniform] [-tree] [-abc] [-max-states N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/abc"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/prob"
	"repro/internal/repair"
)

func main() {
	var (
		dbPath    = flag.String("db", "", "database file, or inline:<text>")
		sigmaPath = flag.String("constraints", "", "constraint file, or inline:<text>")
		genName   = flag.String("gen", "uniform", "chain generator: "+cliutil.GeneratorNames())
		semantics = flag.String("semantics", "walk", "distribution over complete sequences: walk (PODS '18) or uniform (PODS '22)")
		showTree  = flag.Bool("tree", false, "render the repairing Markov chain tree")
		showABC   = flag.Bool("abc", false, "also enumerate the classical ABC repairs")
		maxStates = flag.Int("max-states", 1_000_000, "state budget (0 = unlimited)")
	)
	flag.Parse()
	if *dbPath == "" || *sigmaPath == "" {
		fmt.Fprintln(os.Stderr, "repairs: -db and -constraints are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*dbPath, *sigmaPath, *genName, *semantics, *showTree, *showABC, *maxStates); err != nil {
		fmt.Fprintln(os.Stderr, "repairs:", err)
		os.Exit(1)
	}
}

func run(dbPath, sigmaPath, genName, semantics string, showTree, showABC bool, maxStates int) error {
	semMode, err := core.ParseSemanticsMode(semantics)
	if err != nil {
		return err
	}
	d, err := cliutil.LoadDatabase(dbPath)
	if err != nil {
		return err
	}
	sigma, err := cliutil.LoadConstraints(sigmaPath)
	if err != nil {
		return err
	}
	gen, err := cliutil.ResolveGenerator(genName, d)
	if err != nil {
		return err
	}
	inst, err := repair.NewInstance(d, sigma)
	if err != nil {
		return err
	}
	fmt.Printf("database (%d facts): %s\n", d.Size(), d)
	fmt.Printf("constraints:\n%s", sigma)
	fmt.Printf("generator: %s\nsemantics: %s\n\n", gen.Name(), semMode)

	if inst.Consistent() {
		fmt.Println("database is already consistent; it is its own unique repair")
		return nil
	}

	if showTree {
		tree, err := markov.BuildTree(inst, gen, markov.ExploreOptions{MaxStates: maxStates})
		if err != nil {
			return err
		}
		fmt.Println("repairing Markov chain:")
		fmt.Print(tree.Render())
		fmt.Println()
	}

	sem, err := core.ComputeMode(inst, gen, markov.ExploreOptions{MaxStates: maxStates}, semMode)
	if err != nil {
		return err
	}
	fmt.Printf("chain: %s complete sequences over %d absorbing states (%d failing), success mass %s\n",
		sem.TotalSequences, sem.AbsorbingStates, sem.FailingStates, prob.Format(sem.SuccessP))
	fmt.Printf("operational repairs (%d):\n", len(sem.Repairs))
	for _, r := range sem.Repairs {
		fmt.Printf("  P = %-18s via %d sequence(s): %s\n", prob.Format(r.P), r.Sequences, r.DB)
	}

	if showABC {
		abcRepairs, err := abc.Repairs(d, sigma)
		if err != nil {
			return fmt.Errorf("ABC repairs: %w", err)
		}
		fmt.Printf("\nABC repairs (%d):\n", len(abcRepairs))
		operational := map[string]bool{}
		for _, r := range sem.Repairs {
			operational[r.DB.Key()] = true
		}
		for _, r := range abcRepairs {
			marker := " "
			if operational[r.Key()] {
				marker = "*" // also an operational repair (Proposition 4)
			}
			fmt.Printf("  %s %s\n", marker, r)
		}
		fmt.Println("  (* = also reachable operationally; Proposition 4 guarantees this under the uniform generator)")
	}
	return nil
}
