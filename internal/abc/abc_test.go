package abc_test

import (
	"testing"

	"repro/internal/abc"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/generators"
	"repro/internal/logic"
	"repro/internal/markov"
	"repro/internal/relation"
	"repro/internal/repair"
)

func v(n string) logic.Term                    { return logic.Var(n) }
func at(p string, ts ...logic.Term) logic.Atom { return logic.NewAtom(p, ts...) }
func f(p string, args ...string) relation.Fact { return relation.NewFact(p, args...) }

func keySet() *constraint.Set {
	eta := constraint.MustEGD(
		[]logic.Atom{at("R", v("x"), v("y")), at("R", v("x"), v("z"))},
		v("y"), v("z"),
	)
	return constraint.NewSet(eta)
}

func TestSubsetRepairsKey(t *testing.T) {
	d := relation.FromFacts(f("R", "a", "b"), f("R", "a", "c"), f("R", "q", "r"))
	repairs, err := abc.Repairs(d, keySet())
	if err != nil {
		t.Fatal(err)
	}
	// Keep exactly one of the conflicting pair; R(q,r) always stays.
	if len(repairs) != 2 {
		t.Fatalf("got %d repairs, want 2", len(repairs))
	}
	for _, r := range repairs {
		if !r.Contains(f("R", "q", "r")) {
			t.Errorf("repair %s lost the non-conflicting fact", r)
		}
		if r.Size() != 2 {
			t.Errorf("repair %s has %d facts, want 2", r, r.Size())
		}
	}
}

func TestSubsetRepairsOverlappingConflicts(t *testing.T) {
	// Three facts with one key: repairs keep exactly one.
	d := relation.FromFacts(f("R", "a", "b"), f("R", "a", "c"), f("R", "a", "d"))
	repairs, err := abc.Repairs(d, keySet())
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) != 3 {
		t.Fatalf("got %d repairs, want 3", len(repairs))
	}
	for _, r := range repairs {
		if r.Size() != 1 {
			t.Errorf("repair %s must keep exactly one fact", r)
		}
	}
}

func TestSubsetRepairsConsistentInput(t *testing.T) {
	d := relation.FromFacts(f("R", "a", "b"), f("R", "q", "r"))
	repairs, err := abc.Repairs(d, keySet())
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) != 1 || !repairs[0].Equal(d) {
		t.Errorf("consistent database must be its own unique repair, got %v", repairs)
	}
}

func TestSubsetRepairsDenial(t *testing.T) {
	dc := constraint.MustDC([]logic.Atom{at("Pref", v("x"), v("y")), at("Pref", v("y"), v("x"))})
	set := constraint.NewSet(dc)
	d := relation.FromFacts(f("Pref", "a", "b"), f("Pref", "b", "a"), f("Pref", "a", "c"))
	repairs, err := abc.Repairs(d, set)
	if err != nil {
		t.Fatal(err)
	}
	// Drop either Pref(a,b) or Pref(b,a); Pref(a,c) stays.
	if len(repairs) != 2 {
		t.Fatalf("got %d repairs, want 2", len(repairs))
	}
	for _, r := range repairs {
		if !r.Contains(f("Pref", "a", "c")) || r.Size() != 2 {
			t.Errorf("unexpected repair %s", r)
		}
	}
}

func TestBruteForceRepairsTGD(t *testing.T) {
	// D = {R(a)}, Σ = {R(x) → T(x)} over a single constant: the ⊕-minimal
	// repairs are {} (delete R(a)) and {R(a), T(a)} (insert T(a)).
	d := relation.FromFacts(f("R", "a"))
	tgd := constraint.MustTGD([]logic.Atom{at("R", v("x"))}, []logic.Atom{at("T", v("x"))})
	set := constraint.NewSet(tgd)
	repairs, err := abc.Repairs(d, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) != 2 {
		t.Fatalf("got %d repairs, want 2: %v", len(repairs), repairs)
	}
	var sawEmpty, sawCompleted bool
	for _, r := range repairs {
		switch {
		case r.Size() == 0:
			sawEmpty = true
		case r.Size() == 2 && r.Contains(f("R", "a")) && r.Contains(f("T", "a")):
			sawCompleted = true
		default:
			t.Errorf("unexpected repair %s", r)
		}
	}
	if !sawEmpty || !sawCompleted {
		t.Error("both minimal repairs must be found")
	}
}

func TestBruteForceBaseBound(t *testing.T) {
	// A TGD instance whose base exceeds the brute-force bound must error
	// rather than hang.
	d := relation.NewDatabase()
	for i := 0; i < 6; i++ {
		d.Insert(f("R", string(rune('a'+i)), string(rune('h'+i))))
	}
	tgd := constraint.MustTGD(
		[]logic.Atom{at("R", v("x"), v("y"))},
		[]logic.Atom{at("S", v("y"), v("z"))},
	)
	if _, err := abc.Repairs(d, constraint.NewSet(tgd)); err == nil {
		t.Error("oversized base must be rejected")
	}
}

// TestProp4ABCInclusion verifies Proposition 4 on EGD and DC instances:
// every ABC repair appears among the operational repairs of the uniform
// chain.
func TestProp4ABCInclusion(t *testing.T) {
	instances := []*relation.Database{
		relation.FromFacts(f("R", "a", "b"), f("R", "a", "c")),
		relation.FromFacts(f("R", "a", "b"), f("R", "a", "c"), f("R", "b", "x"), f("R", "b", "y")),
		relation.FromFacts(f("R", "a", "b"), f("R", "a", "c"), f("R", "a", "d")),
	}
	for _, d := range instances {
		abcRepairs, err := abc.Repairs(d, keySet())
		if err != nil {
			t.Fatal(err)
		}
		inst := repair.MustInstance(d, keySet())
		sem, err := core.Compute(inst, generators.Uniform{}, markov.ExploreOptions{MaxStates: 200000})
		if err != nil {
			t.Fatal(err)
		}
		operational := map[string]bool{}
		for _, r := range sem.Repairs {
			operational[r.DB.Key()] = true
		}
		for _, r := range abcRepairs {
			if !operational[r.Key()] {
				t.Errorf("ABC repair %s missing from the uniform operational repairs of %s", r, d)
			}
		}
	}
}

// TestProp4WithTGDs: the inclusion also holds on the paper's failing-chain
// instance (R(a) with R→T, ¬T): the single ABC repair ∅ is operationally
// reachable.
func TestProp4WithTGDs(t *testing.T) {
	d := relation.FromFacts(f("R", "a"))
	tgd := constraint.MustTGD([]logic.Atom{at("R", v("x"))}, []logic.Atom{at("T", v("x"))})
	dc := constraint.MustDC([]logic.Atom{at("T", v("x"))})
	set := constraint.NewSet(tgd, dc)

	abcRepairs, err := abc.Repairs(d, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(abcRepairs) != 1 || abcRepairs[0].Size() != 0 {
		t.Fatalf("ABC repairs = %v, want just the empty database", abcRepairs)
	}

	inst := repair.MustInstance(d, set)
	sem, err := core.Compute(inst, generators.Uniform{}, markov.ExploreOptions{MaxStates: 10000})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range sem.Repairs {
		if r.DB.Size() == 0 {
			found = true
		}
	}
	if !found {
		t.Error("the empty repair must be operationally reachable")
	}
	// And the chain does have failing mass (+T(a) dead-ends).
	if sem.FailingStates == 0 {
		t.Error("expected a failing absorbing state (+T(a))")
	}
	if sem.FailP.Sign() <= 0 {
		t.Error("failing mass must be positive")
	}
}

func TestCertainAnswers(t *testing.T) {
	d := relation.FromFacts(f("R", "a", "b"), f("R", "a", "c"), f("R", "q", "r"))
	x, y := v("x"), v("y")
	q := fo.MustQuery("Q", []logic.Term{x},
		fo.Exists{Vars: []logic.Term{y}, F: fo.Atom{A: at("R", x, y)}})
	certain, err := abc.CertainAnswers(d, keySet(), q)
	if err != nil {
		t.Fatal(err)
	}
	// Key a keeps one tuple in every repair, so both a and q are certain.
	if len(certain) != 2 {
		t.Fatalf("certain = %v, want [a q]", certain)
	}
	if certain[0][0] != "a" || certain[1][0] != "q" {
		t.Errorf("certain = %v", certain)
	}
}

func TestCertainAnswersEmptyWhenValueQueried(t *testing.T) {
	d := relation.FromFacts(f("R", "a", "b"), f("R", "a", "c"))
	x, y := v("x"), v("y")
	q := fo.MustQuery("Vals", []logic.Term{y},
		fo.Exists{Vars: []logic.Term{x}, F: fo.Atom{A: at("R", x, y)}})
	certain, err := abc.CertainAnswers(d, keySet(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(certain) != 0 {
		t.Errorf("no value is certain, got %v", certain)
	}
}

func TestConflictGraph(t *testing.T) {
	d := relation.FromFacts(
		f("R", "a", "b"), f("R", "a", "c"), // conflict 1
		f("R", "q", "r"), f("R", "q", "s"), // conflict 2
		f("R", "z", "z"), // clean
	)
	g := abc.BuildConflictGraph(d, keySet())
	if len(g.Edges()) != 2 {
		t.Fatalf("edges = %d, want 2 (EGD pairs, symmetric homs deduped)", len(g.Edges()))
	}
	facts := g.Facts()
	if len(facts) != 4 {
		t.Errorf("involved facts = %d, want 4", len(facts))
	}
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	for _, comp := range comps {
		if len(comp) != 2 {
			t.Errorf("component %v should have 2 facts", comp)
		}
	}
}

func TestConflictGraphConnected(t *testing.T) {
	// Overlapping conflicts merge into one component.
	d := relation.FromFacts(f("R", "a", "b"), f("R", "a", "c"), f("R", "a", "d"))
	g := abc.BuildConflictGraph(d, keySet())
	comps := g.Components()
	if len(comps) != 1 || len(comps[0]) != 3 {
		t.Errorf("components = %v, want one of size 3", comps)
	}
}
