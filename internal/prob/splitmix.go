package prob

// SplitMix is a rand.Source64 with O(1) seeding (splitmix64). The stdlib
// rand.NewSource pays a ~607-step warmup of its feedback register on every
// Seed — more than a short sampling round costs — so per-walk and per-round
// RNGs derive their whole one-word state from (seed, index) instead.
//
// Both randomized pipelines share this source: sampling.Estimator aims it at
// (Seed, walk index) and practical.Runner at (Seed, round index), which is
// what makes their results bit-identical for any worker count — the i-th
// unit of work draws the same stream no matter which worker runs it.
//
// Reseeding an owned rand.Rand mid-stream via ReseedAt is sound because
// those pipelines draw through Int63n/Intn/Float64 only — rand.Rand buffers
// nothing for those paths.
type SplitMix struct{ state uint64 }

// Uint64 advances the splitmix64 stream.
func (s *SplitMix) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *SplitMix) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements rand.Source.
func (s *SplitMix) Seed(seed int64) { s.state = uint64(seed) }

// ReseedAt points the source at unit i's stream, a pure function of
// (seed, i): the same index draws the same trajectory no matter which
// worker runs it. The multiply-xor decorrelates nearby (seed, index) pairs
// before they become the splitmix starting state; reseeding is two
// arithmetic ops, so each worker owns one rand.Rand for its whole share and
// re-aims it per unit with no allocation.
func (s *SplitMix) ReseedAt(seed int64, i int) {
	z := uint64(seed) + uint64(i+1)*0xBF58476D1CE4E5B9
	s.state = (z ^ (z >> 30)) * 0x94D049BB133111EB
}
