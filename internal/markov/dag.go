package markov

import (
	"errors"
	"fmt"
	"math/big"
	"runtime"
	"sort"
	"sync"

	"repro/internal/prob"
	"repro/internal/repair"
)

// This file implements the DAG-collapsed exact engine. The sequence tree of
// Definition 5 distinguishes states by their whole history, so it is
// factorial in the number of operations; but for a Collapsible chain
// (memoryless generator, TGD-free constraints) states with equal
// Database.Key() are interchangeable, and the tree quotients into a DAG
// whose nodes are the distinct reachable sub-databases. The engine
// accumulates each node's incoming path mass π (and the number of
// sequences reaching it) and pushes mass along edges computed once per
// node, instead of once per sequence prefix.
//
// Topological order comes for free: every operation of a TGD-free chain is
// a deletion, so each edge strictly shrinks the database and the nodes
// partition into levels by database size. A node's mass is complete once
// every strictly larger level has been processed, so the engine sweeps
// sizes downward, expanding each level's frontier with a worker pool
// (states are copy-on-write clones, so expansion is embarrassingly
// parallel; the merge that follows is sequential and deterministic).
//
// The propagated per-leaf sequence counts are load-bearing beyond
// statistics: the sequence-uniform semantics (core.ComputeDAGMode with
// SequenceUniform) weighs each repair by Sequences/ΣSequences, and
// seqdag.go runs the mirror-image upward sweep over the same structure to
// sample complete sequences uniformly.

// ErrNotCollapsible is returned when ExploreDAG is asked to collapse a
// chain whose states are not interchangeable by database: a generator that
// does not declare Markovian memorylessness, or a constraint set with TGDs
// (whose histories prune extensions). Callers should fall back to Explore.
var ErrNotCollapsible = errors.New("markov: chain does not collapse to a DAG; use the sequence-tree engine")

// DAGLeaf is one absorbing database of the collapsed chain: a witness
// absorbing state (one representative sequence producing the database), the
// database's canonical key (the engine's merge key, saved so consumers
// need not re-encode the database), the total hitting mass, and the number
// of absorbing sequences the sequence tree would enumerate for it.
type DAGLeaf struct {
	State     *repair.State
	Key       string // State.Result().Key()
	Pi        *big.Rat
	Sequences *big.Int
	// SeqsByLength[l] counts the absorbing sequences of length l producing
	// this database; Σ_l SeqsByLength[l] = Sequences. It is populated only
	// when ExploreOptions.TrackLengths is set (nil otherwise).
	SeqsByLength []*big.Int
}

// DAG summarizes a collapsed exploration.
type DAG struct {
	// Leaves lists the absorbing databases in deterministic order, one
	// entry per distinct result (leaves are merged by Database.Key, so no
	// two entries share a database).
	Leaves []DAGLeaf
	// States counts the distinct databases visited, including the root;
	// this is the quantity that replaces the tree's sequence count.
	States int
	// Edges counts the positive-probability transitions of the DAG.
	Edges int
	// Sequences is the total number of absorbing sequences of the
	// underlying tree (Σ leaf sequence counts) — the size of the
	// exploration the collapse avoided.
	Sequences *big.Int
}

// dagNode accumulates a distinct state's incoming mass until its level is
// processed.
type dagNode struct {
	state *repair.State
	pi    *big.Rat
	seqs  *big.Int
	// seqsByLen[l] counts the sequences of length l reaching the node; only
	// maintained under ExploreOptions.TrackLengths.
	seqsByLen []*big.Int
}

// expansion is the parallel phase's per-node result: the node's outgoing
// edges with their child states and database keys, resolved by one worker.
type expansion struct {
	edges    []Edge
	children []*repair.State
	keys     []string
	err      error
}

// ExploreDAG explores the support of a Collapsible chain M_Σ(D) merged by
// database and returns its absorbing databases with exact hitting
// probabilities. The leaf masses sum to exactly 1 (Proposition 3 survives
// the quotient: merging states preserves total mass). opt.MaxStates bounds
// the number of distinct databases; opt.Workers sizes the per-level worker
// pool. The result is bit-identical for every worker count.
func ExploreDAG(inst *repair.Instance, g Generator, opt ExploreOptions) (*DAG, error) {
	if !Collapsible(inst, g) {
		return nil, fmt.Errorf("%w (generator %s)", ErrNotCollapsible, g.Name())
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	root := inst.Root()
	rootSize := root.Result().Size()
	rootNode := &dagNode{state: root, pi: prob.One(), seqs: big.NewInt(1)}
	if opt.TrackLengths {
		rootNode.seqsByLen = []*big.Int{big.NewInt(1)} // the empty sequence
	}
	// levels[n] holds the pending nodes whose database has n facts.
	levels := map[int]map[string]*dagNode{
		rootSize: {root.Result().Key(): rootNode},
	}
	dag := &DAG{States: 1, Sequences: new(big.Int)}

	for size := rootSize; size >= 0; size-- {
		level := levels[size]
		delete(levels, size)
		if len(level) == 0 {
			continue
		}
		keys := make([]string, 0, len(level))
		for k := range level {
			keys = append(keys, k)
		}
		sort.Strings(keys)

		exps := expandLevel(g, level, keys, workers)

		// Sequential merge in sorted-key order: deterministic leaf order
		// and mass accumulation independent of scheduling.
		for i, k := range keys {
			n, exp := level[k], &exps[i]
			if exp.err != nil {
				return nil, exp.err
			}
			if len(exp.edges) == 0 {
				dag.Leaves = append(dag.Leaves, DAGLeaf{
					State: n.state, Key: k, Pi: n.pi, Sequences: n.seqs, SeqsByLength: n.seqsByLen,
				})
				dag.Sequences.Add(dag.Sequences, n.seqs)
				continue
			}
			for j, e := range exp.edges {
				child, ck := exp.children[j], exp.keys[j]
				csize := child.Result().Size()
				if csize >= size {
					// Cannot happen for a TGD-free chain (every op deletes);
					// guard the topological order rather than corrupt masses.
					return nil, fmt.Errorf("%w: operation %s grew the database", ErrNotCollapsible, e.Op)
				}
				dag.Edges++
				lvl := levels[csize]
				if lvl == nil {
					lvl = map[string]*dagNode{}
					levels[csize] = lvl
				}
				cn, ok := lvl[ck]
				if !ok {
					cn = &dagNode{state: child, pi: prob.Zero(), seqs: new(big.Int)}
					lvl[ck] = cn
					dag.States++
					if opt.MaxStates > 0 && dag.States > opt.MaxStates {
						return nil, ErrStateBudget
					}
				}
				cn.pi.Add(cn.pi, new(big.Rat).Mul(n.pi, e.P))
				cn.seqs.Add(cn.seqs, n.seqs)
				if opt.TrackLengths {
					// Every edge is one operation: sequences of length l at
					// the parent extend to length l+1 at the child.
					for len(cn.seqsByLen) < len(n.seqsByLen)+1 {
						cn.seqsByLen = append(cn.seqsByLen, new(big.Int))
					}
					for l, cnt := range n.seqsByLen {
						cn.seqsByLen[l+1].Add(cn.seqsByLen[l+1], cnt)
					}
				}
			}
		}
	}

	total := new(big.Rat)
	for _, l := range dag.Leaves {
		total.Add(total, l.Pi)
	}
	if !prob.IsOne(total) {
		return nil, fmt.Errorf("%w: hitting distribution sums to %s", ErrNotWellDefined, total.RatString())
	}
	return dag, nil
}

// expandLevel resolves every node of one frontier level: edges via Step and
// one child state (plus database key) per edge. Nodes are independent —
// each worker owns its states and their fresh copy-on-write clones — so the
// level splits across min(workers, len(keys)) goroutines.
func expandLevel(g Generator, level map[string]*dagNode, keys []string, workers int) []expansion {
	exps := make([]expansion, len(keys))
	expand := func(i int) {
		n, exp := level[keys[i]], &exps[i]
		edges, err := Step(g, n.state)
		if err != nil {
			exp.err = err
			return
		}
		exp.edges = edges
		if len(edges) == 0 {
			return
		}
		exp.children = make([]*repair.State, len(edges))
		exp.keys = make([]string, len(edges))
		for j, e := range edges {
			child := n.state.Child(e.Op)
			exp.children[j] = child
			exp.keys[j] = child.Result().Key()
		}
	}
	// Narrow frontiers (the first and last few levels of every chain, and
	// all of a small chain) are cheaper to expand inline than to fan out.
	const minParallelLevel = 16
	if workers > len(keys) {
		workers = len(keys)
	}
	if workers <= 1 || len(keys) < minParallelLevel {
		for i := range keys {
			expand(i)
		}
		return exps
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				expand(i)
			}
		}()
	}
	for i := range keys {
		next <- i
	}
	close(next)
	wg.Wait()
	return exps
}
