package relation

import (
	"testing"
)

func TestSchemaArityConflict(t *testing.T) {
	s := NewSchema()
	if err := s.Add("R", 2); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := s.Add("R", 2); err != nil {
		t.Errorf("same arity re-add must succeed: %v", err)
	}
	if err := s.Add("R", 3); err == nil {
		t.Error("conflicting arity must fail")
	}
	if a, ok := s.Arity("R"); !ok || a != 2 {
		t.Errorf("Arity(R) = %d, %v", a, ok)
	}
	if _, ok := s.Arity("S"); ok {
		t.Error("undeclared predicate must not be found")
	}
}

func TestSchemaAddDatabase(t *testing.T) {
	d := FromFacts(NewFact("R", "a", "b"), NewFact("S", "c"))
	s := NewSchema()
	if err := s.AddDatabase(d); err != nil {
		t.Fatalf("AddDatabase: %v", err)
	}
	preds := s.Predicates()
	if len(preds) != 2 || preds[0] != "R" || preds[1] != "S" {
		t.Errorf("Predicates = %v", preds)
	}
}

func TestBaseContains(t *testing.T) {
	s := NewSchema()
	if err := s.Add("R", 2); err != nil {
		t.Fatal(err)
	}
	b := NewBase(s, []string{"a", "b"})
	if !b.Contains(NewFact("R", "a", "b")) {
		t.Error("fact over base constants must be in the base")
	}
	if b.Contains(NewFact("R", "a", "z")) {
		t.Error("constant outside the domain must be rejected")
	}
	if b.Contains(NewFact("S", "a", "b")) {
		t.Error("undeclared predicate must be rejected")
	}
	if b.Contains(NewFact("R", "a")) {
		t.Error("wrong arity must be rejected")
	}
	if !b.ContainsAll([]Fact{NewFact("R", "a", "a"), NewFact("R", "b", "b")}) {
		t.Error("ContainsAll over valid facts")
	}
	if b.ContainsAll([]Fact{NewFact("R", "a", "a"), NewFact("R", "b", "q")}) {
		t.Error("ContainsAll must reject any invalid fact")
	}
}

func TestBaseDomSorted(t *testing.T) {
	s := NewSchema()
	b := NewBase(s, []string{"c", "a", "b", "a"})
	dom := b.Dom()
	if len(dom) != 3 || dom[0] != "a" || dom[1] != "b" || dom[2] != "c" {
		t.Errorf("Dom = %v", dom)
	}
	if !b.HasConst("a") || b.HasConst("z") {
		t.Error("HasConst misbehaves")
	}
}

func TestBaseSize(t *testing.T) {
	s := NewSchema()
	if err := s.Add("R", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("S", 1); err != nil {
		t.Fatal(err)
	}
	b := NewBase(s, []string{"a", "b", "c"})
	// |R| = 3^2 = 9, |S| = 3 → 12.
	if got := b.Size(); got != 12 {
		t.Errorf("Size = %d, want 12", got)
	}
}

func TestBaseSizeSaturates(t *testing.T) {
	s := NewSchema()
	if err := s.Add("Wide", 20); err != nil {
		t.Fatal(err)
	}
	consts := make([]string, 100)
	for i := range consts {
		consts[i] = string(rune('a' + i%26))
	}
	b := NewBase(s, []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"})
	if got := b.Size(); got <= 0 {
		t.Errorf("Size must saturate positively, got %d", got)
	}
}
