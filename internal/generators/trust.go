package generators

import (
	"fmt"
	"math/big"

	"repro/internal/markov"
	"repro/internal/ops"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/repair"
)

// Trust is the data-integration generator of Example 5. Every fact α
// carries a level of trust tr(α) ∈ [0,1] reflecting the reliability of the
// source it came from. For a violating pair {α,β} (a violation whose body
// involves exactly two distinct facts, e.g. a key violation), with relative
// trusts p = tr_{α|β} = tr(α)/(tr(α)+tr(β)) and q = tr_{β|α}, the weights
// of the three repairing deletions are
//
//	w(−α)     = q·(1 − p·q)   (trust β but not both)
//	w(−β)     = p·(1 − p·q)   (trust α but not both)
//	w(−{α,β}) = (1−p)·(1−q)   (trust neither)
//
// which sum to 1 for each pair. The transition probability of a deletion
// −F is the average over all currently violating pairs of their weight for
// −F. With tr(α) = tr(β) = 1/2 this yields the introduction's
// 0.375 / 0.375 / 0.25 split.
type Trust struct {
	levels  map[relation.Fact]*big.Rat
	deflt   *big.Rat
	defined bool
}

// NewTrust creates a trust generator with the given default level for
// facts that have no explicit assignment.
func NewTrust(defaultLevel *big.Rat) *Trust {
	return &Trust{
		levels:  map[relation.Fact]*big.Rat{},
		deflt:   new(big.Rat).Set(defaultLevel),
		defined: true,
	}
}

// Set assigns a trust level in [0,1] to a fact.
func (t *Trust) Set(f relation.Fact, level *big.Rat) error {
	if !prob.InUnit(level) {
		return fmt.Errorf("generators: trust level %s for %s outside [0,1]", level.RatString(), f)
	}
	t.levels[f] = new(big.Rat).Set(level)
	return nil
}

// Level returns the trust of a fact (the default when unassigned).
func (t *Trust) Level(f relation.Fact) *big.Rat {
	if l, ok := t.levels[f]; ok {
		return l
	}
	return t.deflt
}

// Name implements markov.Generator.
func (t *Trust) Name() string { return "trust" }

// LocalWeights asserts that the trust weights of a conflicting pair depend
// only on the pair's own trust levels, enabling the factorized exact
// semantics of core.ComputeFactored. (The |V| normalizer scales all
// operations of a step equally and cancels in the repair distribution.)
//
// Trust deliberately does NOT implement core.StructuralGenerator: its
// weights depend on the identity of the facts (their assigned trust
// levels), so renaming constants changes the distribution and two
// isomorphic components need not share semantics. ComputeFactored
// therefore bypasses the structural cache for trust chains.
func (t *Trust) LocalWeights() bool { return true }

// Memoryless implements markov.Markovian: the weights are computed from the
// violating pairs of the state's current database and the (fixed) trust
// levels, so equal databases transition identically and the chain collapses
// to a DAG.
func (t *Trust) Memoryless() bool { return true }

// Transitions implements markov.Generator.
func (t *Trust) Transitions(s *repair.State, exts []ops.Op) ([]*big.Rat, error) {
	if !t.defined {
		return nil, fmt.Errorf("generators: Trust must be built with NewTrust")
	}
	// V_Σ(s(D)): the set of violating pairs {α,β}, deduplicated (the two
	// EGD homomorphisms y/z and z/y yield the same pair).
	pairKeys := map[[2]relation.Fact]struct{}{}
	for _, v := range s.Violations().All() {
		body := v.BodyFacts()
		if len(body) != 2 {
			return nil, fmt.Errorf(
				"generators: trust generator requires pairwise conflicts; violation %s involves %d facts",
				v.Key(), len(body))
		}
		pairKeys[[2]relation.Fact{body[0], body[1]}] = struct{}{}
	}
	if len(pairKeys) == 0 {
		return nil, fmt.Errorf("generators: no violating pairs at non-complete state %q", s)
	}
	nPairs := new(big.Rat).SetInt64(int64(len(pairKeys)))

	out := make([]*big.Rat, len(exts))
	for i, op := range exts {
		if !op.IsDelete() || op.Size() > 2 {
			out[i] = prob.Zero()
			continue
		}
		total := new(big.Rat)
		for pair := range pairKeys {
			w, err := t.pairWeight(pair[0], pair[1], op)
			if err != nil {
				return nil, err
			}
			total.Add(total, w)
		}
		out[i] = total.Quo(total, nPairs)
	}
	return out, nil
}

// pairWeight returns w_{α,β}(−F): zero unless F is exactly {α}, {β}, or
// {α,β}.
func (t *Trust) pairWeight(alpha, beta relation.Fact, op ops.Op) (*big.Rat, error) {
	fs := op.Facts()
	isAlpha := len(fs) == 1 && fs[0].Equal(alpha)
	isBeta := len(fs) == 1 && fs[0].Equal(beta)
	isPair := len(fs) == 2 &&
		((fs[0].Equal(alpha) && fs[1].Equal(beta)) || (fs[0].Equal(beta) && fs[1].Equal(alpha)))
	if !isAlpha && !isBeta && !isPair {
		return prob.Zero(), nil
	}

	trA, trB := t.Level(alpha), t.Level(beta)
	denom := new(big.Rat).Add(trA, trB)
	if denom.Sign() == 0 {
		return nil, fmt.Errorf("generators: facts %s and %s both have trust 0; relative trust undefined", alpha, beta)
	}
	p := new(big.Rat).Quo(trA, denom) // tr_{α|β}
	q := new(big.Rat).Quo(trB, denom) // tr_{β|α}
	pq := new(big.Rat).Mul(p, q)
	oneMinusPQ := new(big.Rat).Sub(prob.One(), pq)

	switch {
	case isAlpha:
		return new(big.Rat).Mul(q, oneMinusPQ), nil
	case isBeta:
		return new(big.Rat).Mul(p, oneMinusPQ), nil
	default:
		oneMinusP := new(big.Rat).Sub(prob.One(), p)
		oneMinusQ := new(big.Rat).Sub(prob.One(), q)
		return new(big.Rat).Mul(oneMinusP, oneMinusQ), nil
	}
}

var (
	_ markov.Generator = (*Trust)(nil)
	_ markov.Markovian = (*Trust)(nil)
)
