#!/usr/bin/env bash
# bench.sh — run the repo's root benchmark suite and emit machine-readable
# JSON so the performance trajectory is tracked PR-over-PR.
#
# Usage:
#   scripts/bench.sh                         # run, write bench_out.json
#   scripts/bench.sh -o BENCH_PR2.json       # choose output path
#   scripts/bench.sh -baseline seed.txt      # fold a saved `go test -bench`
#                                            # text output in as "baseline"
#                                            # and compute speedups
#   scripts/bench.sh -baseline BENCH_PR1.json# a previous bench.sh emission
#                                            # works too (its "current"
#                                            # section becomes the baseline)
#   scripts/bench.sh -pattern 'Survey|Walks' # restrict the benchmark set
#   scripts/bench.sh -benchtime 2s           # forward to go test
#
# The JSON shape is:
#   {"meta": {...}, "current": {name: {ns_per_op, bytes_per_op, allocs_per_op}},
#    "baseline": {...}?, "speedup": {name: ratio}?,
#    "alloc_ratio": {name: ratio}?, "bytes_ratio": {name: ratio}?}
# speedup is baseline/current ns/op; alloc_ratio and bytes_ratio are the
# same quotient over allocs/op and B/op (>1 = leaner than baseline), so
# allocation wins (e.g. BenchmarkExactDAG) are captured alongside time.
set -euo pipefail

cd "$(dirname "$0")/.."

out="bench_out.json"
baseline=""
pattern='BenchmarkSurvey|BenchmarkEstimateOCA|BenchmarkEstimatorWalks|BenchmarkSamplingWalks|BenchmarkChainStep|BenchmarkViolationsFull|BenchmarkViolationsDelta|BenchmarkJustifiedOps|BenchmarkHomomorphism|BenchmarkFOEval|BenchmarkExactDAG|BenchmarkExactTree|BenchmarkUniform|BenchmarkPractical/|BenchmarkFactored/|BenchmarkServe/|BenchmarkSATCertain|BenchmarkDAGCertain'
benchtime="2s"

while [ $# -gt 0 ]; do
  case "$1" in
    -o) out="$2"; shift 2 ;;
    -baseline) baseline="$2"; shift 2 ;;
    -pattern) pattern="$2"; shift 2 ;;
    -benchtime) benchtime="$2"; shift 2 ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# Each benchmark family runs in its own process so allocator/GC state from
# one family cannot skew another's numbers.
echo "running benchmarks ($pattern, benchtime=$benchtime, one process per family)..." >&2
IFS='|' read -ra families <<<"$pattern"
for fam in "${families[@]}"; do
  go test -run '^$' -bench "$fam" -benchmem -benchtime "$benchtime" -timeout 30m . | tee -a "$raw" >&2
done

python3 - "$raw" "$out" "$baseline" "$benchtime" <<'PY'
import json, os, platform, re, subprocess, sys
from datetime import datetime, timezone

raw_path, out_path, baseline_path, benchtime = sys.argv[1], sys.argv[2], sys.argv[3], sys.argv[4]

LINE = re.compile(
    r"^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?"
)

def parse(path):
    # A baseline may be a saved `go test -bench` text dump or a previous
    # bench.sh JSON emission (whose "current" section is the measurement).
    with open(path) as fh:
        text = fh.read()
    if text.lstrip().startswith("{"):
        doc = json.loads(text)
        return doc.get("current", doc)
    bench = {}
    for line in text.splitlines():
        m = LINE.match(line.strip())
        if not m:
            continue
        name = m.group(1)
        bench[name] = {
            "ns_per_op": float(m.group(2)),
            "bytes_per_op": float(m.group(3)) if m.group(3) else None,
            "allocs_per_op": float(m.group(4)) if m.group(4) else None,
        }
    return bench

def run(*cmd):
    return subprocess.run(cmd, capture_output=True, text=True).stdout.strip()

def cpu_model():
    # Linux: parse /proc/cpuinfo; elsewhere fall back to platform.processor.
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.lower().startswith(("model name", "hardware", "cpu model")):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or "unknown"

current = parse(raw_path)
doc = {
    # Cross-PR speedup comparisons are only meaningful with the noise
    # context pinned: same machine, same CPU, same Go toolchain, and the
    # alternating min-of-3 protocol on an otherwise idle box. The meta
    # block records all of it so a future reader can tell a real
    # regression from a VM migration.
    "meta": {
        "go": run("go", "version"),
        "commit": run("git", "rev-parse", "--short", "HEAD"),
        "goos": run("go", "env", "GOOS"),
        "goarch": run("go", "env", "GOARCH"),
        "machine": platform.platform(),
        "cpu_model": cpu_model(),
        "cpus": os.cpu_count(),
        "timestamp_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "benchtime": benchtime,
        "protocol": "alternating min-of-3 runs per benchmark family on an idle machine; "
                    "treat cross-PR ratios within ~5% as noise",
    },
    "current": current,
}
if baseline_path:
    base = parse(baseline_path)
    doc["baseline"] = base
    doc["speedup"] = {
        name: round(base[name]["ns_per_op"] / cur["ns_per_op"], 2)
        for name, cur in current.items()
        if name in base and cur["ns_per_op"] > 0
    }

    def ratios(field):
        out = {}
        for name, cur in current.items():
            b = base.get(name)
            if not b:
                continue
            bv, cv = b.get(field), cur.get(field)
            if bv and cv:
                out[name] = round(bv / cv, 2)
        return out

    doc["alloc_ratio"] = ratios("allocs_per_op")
    doc["bytes_ratio"] = ratios("bytes_per_op")

with open(out_path, "w") as fh:
    json.dump(doc, fh, indent=2, sort_keys=True)
    fh.write("\n")
print(f"wrote {out_path}", file=sys.stderr)
PY
