package sampling

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"slices"
	"sync"

	"repro/internal/fo"
	"repro/internal/intern"
	"repro/internal/markov"
	"repro/internal/prob"
	"repro/internal/repair"
)

// ErrWalkBudget is returned when a random walk exceeds the configured step
// budget; by Proposition 2 repairing sequences are finite and polynomial,
// so hitting this indicates a misconfigured budget rather than divergence.
var ErrWalkBudget = errors.New("sampling: walk exceeded the step budget")

// Walk performs one random walk down the repairing Markov chain from ε to
// an absorbing state and returns the final state. maxSteps ≤ 0 means
// unbounded (termination is guaranteed by Proposition 2).
//
// Generators that expose integer weights (markov.IntWeighter) step without
// any big.Rat arithmetic; the sampled edges are identical to the exact
// path's for the same seed. Other generators go through markov.Step.
func Walk(inst *repair.Instance, g markov.Generator, rng *rand.Rand, maxSteps int) (*repair.State, error) {
	iw, fast := g.(markov.IntWeighter)
	s := inst.Root()
	steps := 0
	for {
		if fast {
			exts := s.Extensions()
			if len(exts) == 0 {
				return s, nil
			}
			ws, ok, err := iw.IntWeights(s, exts)
			if err != nil {
				return nil, fmt.Errorf("generator %s at state %q: %w", g.Name(), s, err)
			}
			if ok {
				if maxSteps > 0 && steps >= maxSteps {
					return nil, ErrWalkBudget
				}
				s = s.ChildInPlace(exts[prob.PickInt(rng, ws)])
				steps++
				continue
			}
			fast = false // generator declined; use the exact path from here on
		}
		edges, err := markov.Step(g, s)
		if err != nil {
			return nil, err
		}
		if len(edges) == 0 {
			return s, nil
		}
		if maxSteps > 0 && steps >= maxSteps {
			return nil, ErrWalkBudget
		}
		weights := make([]*big.Rat, len(edges))
		for i, e := range edges {
			weights[i] = e.P
		}
		// The walk never revisits the parent, so ownership of the state's
		// database can be transferred instead of cloned.
		s = s.ChildInPlace(edges[prob.Pick(rng, weights)].Op)
		steps++
	}
}

// Sample is the algorithm of Section 5: it draws one repairing sequence s
// from the chain and returns 1 if t̄ ∈ Q(s(D)) and the sequence is
// successful, and 0 otherwise. For non-failing generators
// Pr(Sample = 1) = CP(t̄) exactly (Proposition 10).
func Sample(inst *repair.Instance, g markov.Generator, q *fo.Query, tuple []string, rng *rand.Rand) (int, error) {
	s, err := Walk(inst, g, rng, 0)
	if err != nil {
		return 0, err
	}
	if !s.IsSuccessful() {
		return 0, nil
	}
	if q.Holds(s.Result(), tuple) {
		return 1, nil
	}
	return 0, nil
}

// Estimator runs repeated random walks to approximate conditional
// probabilities.
type Estimator struct {
	Inst *repair.Instance
	Gen  markov.Generator
	// Seed makes runs reproducible: every walk's RNG is derived from
	// (Seed, walk index), so a run is bit-identical for a fixed seed no
	// matter how the walks are scheduled.
	Seed int64
	// Workers is the number of concurrent walkers (≤ 1 means sequential).
	// Walk RNGs are per-walk and counts are merged, so the result is
	// bit-identical for every worker count.
	Workers int
	// MaxSteps bounds each walk (0 = unbounded).
	MaxSteps int
	// Mode selects the target semantics. The zero value (WalkInduced)
	// estimates the paper's walk-induced distribution by stepping with the
	// generator's own probabilities. SequenceUniform targets the uniform
	// distribution over complete sequences instead: when the chain is
	// collapsible the estimator builds a markov.SequenceDAG once and draws
	// exactly uniform sequences (count-guided walks; the Hoeffding
	// guarantee carries over), otherwise it falls back to self-normalized
	// importance sampling from the uniform-support walk (no (ε,δ)
	// guarantee; Run.Weighted reports which path ran). See uniform.go.
	Mode markov.SemanticsMode
}

// TupleEstimate is one tuple's estimated probability.
type TupleEstimate struct {
	Tuple []string
	// P is the additive-error estimate of Σ_{(D',p): t̄∈Q(D')} p, i.e. of
	// CP(t̄) when the generator is non-failing.
	P float64
	// Conditional is the count normalized by successful walks only — the
	// ratio estimator for failing chains (no (ε,δ)-guarantee attached).
	Conditional float64
	// Count is the number of walks whose (successful) result answered the
	// tuple.
	Count int
}

// Run is the outcome of an estimation.
type Run struct {
	// N is the number of walks performed.
	N int
	// Eps, Delta are the requested guarantee parameters.
	Eps, Delta float64
	// SuccessfulWalks and FailingWalks partition the N walks.
	SuccessfulWalks, FailingWalks int
	// Estimates lists the tuples observed in at least one successful walk,
	// sorted lexicographically.
	Estimates []TupleEstimate
	// Mode records the target semantics of the run.
	Mode markov.SemanticsMode
	// Weighted reports that the estimates are self-normalized
	// importance-sampling ratios (the non-collapsible uniform fallback).
	// Weighted estimates carry no (ε,δ) guarantee; ESS quantifies how much
	// of the sample budget survived the reweighting.
	Weighted bool
	// TotalSequences is the exact support size |complete sequences| when
	// the count-guided uniform sampler ran (nil otherwise).
	TotalSequences *big.Int
	// ESS is the Kish effective sample size (Σw)² / Σw² of the run; it
	// equals N when all weights are 1 (walk mode, count-guided mode).
	ESS float64
}

// Lookup returns the estimate of a tuple (zero estimate when never seen).
func (r *Run) Lookup(tuple []string) TupleEstimate {
	k := fo.TupleKey(tuple)
	for _, e := range r.Estimates {
		if fo.TupleKey(e.Tuple) == k {
			return e
		}
	}
	return TupleEstimate{Tuple: tuple}
}

// EstimateAnswers approximates the operational consistent answers of the
// query: it performs n = ⌈ln(2/δ)/(2ε²)⌉ walks and, for every tuple
// observed, reports the fraction of walks answering it. With a non-failing
// generator each tuple's estimate is within ε of CP(t̄) with probability at
// least 1−δ (the guarantee is per-tuple; divide δ by the number of tuples
// of interest for a simultaneous guarantee via the union bound).
func (e *Estimator) EstimateAnswers(q *fo.Query, eps, delta float64) (*Run, error) {
	n, err := prob.HoeffdingSamples(eps, delta)
	if err != nil {
		return nil, err
	}
	run, err := e.run(q, n)
	if err != nil {
		return nil, err
	}
	run.Eps, run.Delta = eps, delta
	return run, nil
}

// EstimateTuple approximates CP(t̄) for a single tuple with the additive
// (ε,δ) guarantee of Theorem 9.
func (e *Estimator) EstimateTuple(q *fo.Query, tuple []string, eps, delta float64) (TupleEstimate, *Run, error) {
	run, err := e.EstimateAnswers(q, eps, delta)
	if err != nil {
		return TupleEstimate{}, nil, err
	}
	return run.Lookup(tuple), run, nil
}

// EstimateWithN runs exactly n walks (for convergence experiments).
func (e *Estimator) EstimateWithN(q *fo.Query, n int) (*Run, error) {
	return e.run(q, n)
}

// tallyCell accumulates one tuple's observations; keeping count and tuple
// together costs one map probe per answer instead of two.
type tallyCell struct {
	count int
	tuple []string
}

type walkTally struct {
	success int
	failing int
	cells   map[string]*tallyCell
	err     error
}

func (e *Estimator) run(q *fo.Query, n int) (*Run, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sampling: need at least one walk, got %d", n)
	}
	if e.Mode == markov.SequenceUniform {
		return e.runUniform(q, n)
	}
	workers := e.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	tallies := make([]walkTally, workers)
	var wg sync.WaitGroup
	start := 0
	for w := 0; w < workers; w++ {
		share := n / workers
		if w < n%workers {
			share++
		}
		wg.Add(1)
		go func(w, start, share int) {
			defer wg.Done()
			t := &tallies[w]
			t.cells = map[string]*tallyCell{}
			src := &prob.SplitMix{}
			rng := rand.New(src)
			var packBuf [64]byte
			tally := func(tuple []intern.Sym) {
				// Key by packed symbols — no name lookups, no string
				// round trip; names materialize once per distinct tuple.
				k := string(intern.PackSyms(packBuf[:0], tuple))
				c := t.cells[k]
				if c == nil {
					c = &tallyCell{tuple: intern.Names(tuple)}
					t.cells[k] = c
				}
				c.count++
			}
			for i := start; i < start+share; i++ {
				// Each walk's randomness is a pure function of (Seed, walk
				// index), never of the worker that happens to run the walk:
				// partitioning the same n walks across any number of workers
				// draws the same n trajectories, and the merged tallies are
				// sums, so runs are bit-identical for every Workers value.
				src.ReseedAt(e.Seed, i)
				s, err := Walk(e.Inst, e.Gen, rng, e.MaxSteps)
				if err != nil {
					t.err = err
					return
				}
				if !s.IsSuccessful() {
					t.failing++
					continue
				}
				t.success++
				q.ForEachAnswerSyms(s.Result(), tally)
			}
		}(w, start, share)
		start += share
	}
	wg.Wait()

	run := &Run{N: n, ESS: float64(n)}
	cells := map[string]*tallyCell{}
	for i := range tallies {
		t := &tallies[i]
		if t.err != nil {
			return nil, t.err
		}
		run.SuccessfulWalks += t.success
		run.FailingWalks += t.failing
		for k, c := range t.cells {
			m := cells[k]
			if m == nil {
				m = &tallyCell{tuple: c.tuple}
				cells[k] = m
			}
			m.count += c.count
		}
	}

	for _, c := range cells {
		est := TupleEstimate{
			Tuple: c.tuple,
			P:     float64(c.count) / float64(n),
			Count: c.count,
		}
		if run.SuccessfulWalks > 0 {
			est.Conditional = float64(c.count) / float64(run.SuccessfulWalks)
		}
		run.Estimates = append(run.Estimates, est)
	}
	sortEstimates(run.Estimates)
	return run, nil
}

// sortEstimates orders estimates by the tuples themselves: TupleKey is a
// process-local interned encoding with no stable order.
func sortEstimates(ests []TupleEstimate) {
	slices.SortFunc(ests, func(a, b TupleEstimate) int {
		return slices.Compare(a.Tuple, b.Tuple)
	})
}
