package markov_test

import (
	"errors"
	"fmt"
	"math/big"
	"testing"

	"repro/internal/constraint"
	"repro/internal/logic"
	"repro/internal/markov"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/repair"
)

// memorylessUniform is uniformGen plus the Markovian declaration, the
// minimal collapsible generator for this package's tests.
type memorylessUniform struct{ uniformGen }

func (memorylessUniform) Memoryless() bool { return true }

func tgdInstance(t *testing.T) *repair.Instance {
	t.Helper()
	d := relation.FromFacts(f("R", "a"))
	tgd := constraint.MustTGD([]logic.Atom{at("R", v("x"))}, []logic.Atom{at("T", v("x"))})
	return repair.MustInstance(d, constraint.NewSet(tgd))
}

func TestCollapsible(t *testing.T) {
	egd := twoConflictInstance(t)
	if markov.Collapsible(egd, uniformGen{}) {
		t.Error("generator without Markovian must not collapse")
	}
	if !markov.Collapsible(egd, memorylessUniform{}) {
		t.Error("memoryless generator over EGDs must collapse")
	}
	if markov.Collapsible(tgdInstance(t), memorylessUniform{}) {
		t.Error("TGDs make state histories significant; must not collapse")
	}
}

func TestExploreDAGRejectsNonCollapsible(t *testing.T) {
	if _, err := markov.ExploreDAG(twoConflictInstance(t), uniformGen{}, markov.ExploreOptions{}); !errors.Is(err, markov.ErrNotCollapsible) {
		t.Errorf("err = %v, want ErrNotCollapsible", err)
	}
	if _, err := markov.ExploreDAG(tgdInstance(t), memorylessUniform{}, markov.ExploreOptions{}); !errors.Is(err, markov.ErrNotCollapsible) {
		t.Errorf("err = %v, want ErrNotCollapsible", err)
	}
}

// TestExploreDAGCollapse pins the exact DAG shape of the two-conflict
// instance: the tree has 18 absorbing sequences over 25 sequence states,
// the DAG has 9 absorbing databases over 16 distinct databases (each of the
// two conflicts is untouched or in one of 3 resolutions: 4² states, 3²
// leaves), with 3j outgoing edges per state with j unresolved conflicts
// (1·6 + 6·3 = 24 edges).
func TestExploreDAGCollapse(t *testing.T) {
	dag, err := markov.ExploreDAG(twoConflictInstance(t), memorylessUniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dag.States != 16 {
		t.Errorf("States = %d, want 16", dag.States)
	}
	if len(dag.Leaves) != 9 {
		t.Errorf("leaves = %d, want 9", len(dag.Leaves))
	}
	if dag.Edges != 24 {
		t.Errorf("Edges = %d, want 24", dag.Edges)
	}
	if dag.Sequences.Cmp(big.NewInt(18)) != 0 {
		t.Errorf("Sequences = %s, want 18 (the tree's leaf count)", dag.Sequences)
	}
	total := prob.Zero()
	seqs := new(big.Int)
	for _, l := range dag.Leaves {
		total.Add(total, l.Pi)
		seqs.Add(seqs, l.Sequences)
		if !l.State.IsComplete() {
			t.Errorf("leaf %s is not complete", l.State)
		}
		if l.Key != l.State.Result().Key() {
			t.Errorf("leaf key %q does not match its database's key", l.Key)
		}
	}
	if !prob.IsOne(total) {
		t.Errorf("hitting mass = %s, want 1 (Proposition 3)", total.RatString())
	}
	if seqs.Cmp(dag.Sequences) != 0 {
		t.Errorf("leaf sequence counts sum to %s, want %s", seqs, dag.Sequences)
	}
}

// TestExploreDAGMatchesTreeAggregation: aggregating the sequence tree's
// leaves by result database reproduces exactly the DAG's leaf masses and
// sequence counts.
func TestExploreDAGMatchesTreeAggregation(t *testing.T) {
	inst := twoConflictInstance(t)
	dag, err := markov.ExploreDAG(inst, memorylessUniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	leaves, err := markov.Explore(inst, uniformGen{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	type agg struct {
		pi   *big.Rat
		seqs int64
	}
	byDB := map[string]*agg{}
	for _, l := range leaves {
		k := l.State.Result().Key()
		a, ok := byDB[k]
		if !ok {
			a = &agg{pi: prob.Zero()}
			byDB[k] = a
		}
		a.pi.Add(a.pi, l.Pi)
		a.seqs++
	}
	if len(byDB) != len(dag.Leaves) {
		t.Fatalf("tree aggregates to %d databases, DAG has %d leaves", len(byDB), len(dag.Leaves))
	}
	for _, l := range dag.Leaves {
		a := byDB[l.State.Result().Key()]
		if a == nil {
			t.Fatalf("DAG leaf %s missing from tree aggregation", l.State.Result())
		}
		if a.pi.Cmp(l.Pi) != 0 {
			t.Errorf("leaf %s: DAG mass %s, tree mass %s", l.State.Result(), l.Pi.RatString(), a.pi.RatString())
		}
		if l.Sequences.Cmp(big.NewInt(a.seqs)) != 0 {
			t.Errorf("leaf %s: DAG sequences %s, tree %d", l.State.Result(), l.Sequences, a.seqs)
		}
	}
}

// TestExploreDAGWorkerCountInvariant: the result is bit-identical (same
// leaf order, same exact rationals) for every worker pool size.
func TestExploreDAGWorkerCountInvariant(t *testing.T) {
	inst := twoConflictInstance(t)
	want, err := markov.ExploreDAG(inst, memorylessUniform{}, markov.ExploreOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := markov.ExploreDAG(inst, memorylessUniform{}, markov.ExploreOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got.States != want.States || got.Edges != want.Edges || len(got.Leaves) != len(want.Leaves) {
			t.Fatalf("workers=%d: shape differs", workers)
		}
		for i, l := range got.Leaves {
			w := want.Leaves[i]
			if l.State.Result().Key() != w.State.Result().Key() ||
				l.Pi.Cmp(w.Pi) != 0 || l.Sequences.Cmp(w.Sequences) != 0 {
				t.Fatalf("workers=%d: leaf %d differs", workers, i)
			}
		}
	}
}

// TestExploreDAGParallelStress uses an instance wide enough that frontier
// levels exceed the inline-expansion threshold, so the worker pool really
// runs (narrow levels are expanded inline); under -race this is the
// concurrency proof for parallel Step/Child/Extensions plus the shared
// caches they touch (instance deletion cache, violation involved-fact
// cache, interning tables).
func TestExploreDAGParallelStress(t *testing.T) {
	d := relation.NewDatabase()
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("k%d", i)
		d.Insert(f("R", k, "1"))
		d.Insert(f("R", k, "2"))
	}
	eta := constraint.MustEGD(
		[]logic.Atom{at("R", v("x"), v("y")), at("R", v("x"), v("z"))},
		v("y"), v("z"),
	)
	inst := repair.MustInstance(d, constraint.NewSet(eta))
	want, err := markov.ExploreDAG(inst, memorylessUniform{}, markov.ExploreOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want.States != 1024 || len(want.Leaves) != 243 {
		t.Fatalf("states = %d leaves = %d, want 4^5 and 3^5", want.States, len(want.Leaves))
	}
	got, err := markov.ExploreDAG(inst, memorylessUniform{}, markov.ExploreOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range got.Leaves {
		w := want.Leaves[i]
		if l.State.Result().Key() != w.State.Result().Key() ||
			l.Pi.Cmp(w.Pi) != 0 || l.Sequences.Cmp(w.Sequences) != 0 {
			t.Fatalf("leaf %d differs between 1 and 8 workers", i)
		}
	}
}

func TestExploreDAGBudget(t *testing.T) {
	if _, err := markov.ExploreDAG(twoConflictInstance(t), memorylessUniform{}, markov.ExploreOptions{MaxStates: 3}); !errors.Is(err, markov.ErrStateBudget) {
		t.Errorf("err = %v, want ErrStateBudget", err)
	}
}

func TestExploreDAGConsistentRoot(t *testing.T) {
	d := relation.FromFacts(f("R", "a", "1"))
	eta := constraint.MustEGD(
		[]logic.Atom{at("R", v("x"), v("y")), at("R", v("x"), v("z"))},
		v("y"), v("z"),
	)
	inst := repair.MustInstance(d, constraint.NewSet(eta))
	dag, err := markov.ExploreDAG(inst, memorylessUniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dag.States != 1 || len(dag.Leaves) != 1 {
		t.Fatalf("consistent root: states = %d leaves = %d, want 1 and 1", dag.States, len(dag.Leaves))
	}
	if !prob.IsOne(dag.Leaves[0].Pi) {
		t.Errorf("root mass = %s, want 1", dag.Leaves[0].Pi.RatString())
	}
}

// TestHittingDistributionCollapses: the routed HittingDistribution merges
// sequences producing the same database and still sums to 1.
func TestHittingDistributionCollapses(t *testing.T) {
	inst := twoConflictInstance(t)
	dist, err := markov.HittingDistribution(inst, memorylessUniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 9 {
		t.Fatalf("collapsed distribution over %d states, want 9", len(dist))
	}
	total := prob.Zero()
	for k, leaf := range dist {
		if leaf.State.Key() != k {
			t.Errorf("distribution key mismatch: %q vs %q", k, leaf.State.Key())
		}
		total.Add(total, leaf.Pi)
	}
	if !prob.IsOne(total) {
		t.Errorf("hitting mass = %s, want 1", total.RatString())
	}
}
