#!/usr/bin/env bash
set -euo pipefail
PAT='BenchmarkServe/|BenchmarkFactored/|BenchmarkPractical/|BenchmarkUniform|BenchmarkExactTree|BenchmarkEstimateOCA|BenchmarkSamplingWalks|BenchmarkSurvey|BenchmarkViolationsFull|BenchmarkHomomorphism'
for round in 4 5; do
  (cd /root/repo/.bench-pr7 && scripts/bench.sh -pattern "$PAT" -o "bench_b$round.json")
  (scripts/bench.sh -pattern "$PAT" -o "bench_a$((round+1)).json")
done
echo RERUN-DONE
