// Package serve is the resident OCQA engine behind cmd/ocqad: it keeps a
// database, its violations, the conflict partition, and the factored
// repair semantics live in memory, answers queries from snapshots that
// never block, and absorbs fact insertions and retractions with work
// proportional to the delta — not the database.
//
// # Key pieces
//
//   - Server: the engine. A single writer goroutine applies ingested
//     batches; queries read the current Snapshot through an atomic
//     pointer.
//   - Snapshot: one immutable serving state (database, violations,
//     partition, factored semantics). Readers may hold one across
//     ingests; superseded snapshots stay fully queryable.
//   - Op / Ingest: the write path. Each operation runs the fused pipeline
//     relation.Database.Clone (O(delta) copy-on-write) →
//     constraint.UpdateViolationsDelta (semi-naive violation maintenance)
//     → abc.Partition.Update (re-partitions only the touched region) →
//     core.ComputeFactoredDelta (re-explores only dissolved components,
//     carrying every untouched component's semantics verbatim).
//   - Handler: the HTTP/JSON surface (/healthz, /v1/stats, /v1/ingest,
//     /v1/query, /v1/fact); every response carries the snapshot version
//     it was answered from.
//
// # Invariants
//
//   - Served answers are bit-identical to computing core.ComputeFactored
//     from scratch on the post-delta database, for every Workers setting:
//     component reuse is exact (a component whose facts and violations
//     are untouched has the same local semantics), and the exact
//     rational arithmetic is order-independent.
//   - Batches are atomic: a reader sees either none or all of a batch,
//     and the Snapshot's database, violations, partition, and semantics
//     are always mutually consistent.
//   - The structural semantics cache (core.SemanticsCache) is shared
//     across all deltas of a Server, so recomputed components isomorphic
//     to anything previously explored cost a renaming, not a DAG
//     exploration. Σ must therefore stay fixed for the Server's lifetime
//     (it does: Server has no way to change it).
//   - Non-atomic queries that overflow the exact enumeration budget
//     degrade to the (ε, δ) sampling estimator instead of failing; the
//     response's exact flag reports which route answered.
//
// # Neighbors
//
// Below: internal/core (factored semantics and delta recomputation),
// internal/abc (resident partition), internal/constraint (violation
// maintenance), internal/relation (copy-on-write databases),
// internal/parse (the HTTP text syntax). Above: cmd/ocqad, the CLI
// binary that wires a corpus into a listening server.
package serve
