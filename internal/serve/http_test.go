package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/generators"
	"repro/internal/serve"
	"repro/internal/workload"
)

func httpFixture(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	db, sigma := workload.Islands(workload.IslandsConfig{Islands: 3, FactsPerIsland: 3, IsoRatio: 1, Seed: 2})
	s, err := serve.New(db, sigma, generators.Uniform{}, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.Handler(s))
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postJSON(t *testing.T, url string, req any, status int, resp any) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != status {
		t.Fatalf("%s: HTTP %d, want %d", url, r.StatusCode, status)
	}
	if resp != nil {
		if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
			t.Fatal(err)
		}
	}
}

// postStatus posts req as JSON and returns only the response status,
// draining the body; races against shutdown use it where any of several
// statuses is acceptable.
func postStatus(url string, req any) (int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer r.Body.Close()
	return r.StatusCode, nil
}

// TestHTTPRoundTrip drives the full API surface: health, stats, a fact
// probe, an ingest that flips the probe's answer, a tuple query, and an
// answer-set query — checking versions advance and answers change with the
// data.
func TestHTTPRoundTrip(t *testing.T) {
	_, ts := httpFixture(t)

	r, err := http.Get(ts.URL + "/healthz")
	if err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", r.StatusCode, err)
	}
	r.Body.Close()

	var st serve.Stats
	res, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if st.Version != 0 || st.Components != 3 {
		t.Fatalf("initial stats: %+v", st)
	}

	// The first island is the chain n000→n001→n002; its head survives the
	// walk-induced repairs with some probability strictly inside (0, 1).
	probe := "E(i00000000_n000, i00000000_n001)"
	var fr serve.FactResponse
	postJSON(t, ts.URL+"/v1/fact", serve.FactRequest{Fact: probe}, http.StatusOK, &fr)
	if fr.Version != 0 || fr.P.Float <= 0 || fr.P.Float >= 1 {
		t.Fatalf("conflicted fact probe: %+v", fr)
	}

	// Deleting the island's other edge frees the probed fact: no violation
	// touches it anymore, so its probability becomes exactly 1.
	var ir serve.IngestResponse
	postJSON(t, ts.URL+"/v1/ingest", serve.IngestRequest{
		Delete: []string{"E(i00000000_n001, i00000000_n002)"},
	}, http.StatusOK, &ir)
	if ir.Version != 1 {
		t.Fatalf("ingest version = %d, want 1", ir.Version)
	}
	postJSON(t, ts.URL+"/v1/fact", serve.FactRequest{Fact: probe}, http.StatusOK, &fr)
	if fr.Version != 1 || fr.P.Rat != "1" {
		t.Fatalf("freed fact probe: %+v", fr)
	}

	var qr serve.QueryResponse
	postJSON(t, ts.URL+"/v1/query", serve.QueryRequest{
		Query: "Q(X,Y) := E(X,Y).",
		Tuple: []string{"i00000000_n000", "i00000000_n001"},
	}, http.StatusOK, &qr)
	if !qr.Exact || qr.P == nil || qr.P.Rat != "1" {
		t.Fatalf("tuple query: %+v", qr)
	}

	postJSON(t, ts.URL+"/v1/query", serve.QueryRequest{Query: "Q(X,Y) := E(X,Y)."}, http.StatusOK, &qr)
	if !qr.Exact || len(qr.Answers) == 0 {
		t.Fatalf("answer-set query: %+v", qr)
	}
	found := false
	for _, a := range qr.Answers {
		if len(a.Tuple) == 2 && a.Tuple[0] == "i00000000_n000" && a.P.Rat == "1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("answer set misses the certain tuple: %+v", qr.Answers)
	}
}

// TestHTTPErrors pins the failure surface: malformed facts and queries are
// 400s with a JSON error, unknown fields are rejected, and absent facts
// answer probability 0 rather than erroring.
func TestHTTPErrors(t *testing.T) {
	_, ts := httpFixture(t)

	postJSON(t, ts.URL+"/v1/fact", serve.FactRequest{Fact: "not a fact("}, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/v1/query", serve.QueryRequest{Query: "nope("}, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/v1/ingest", serve.IngestRequest{Insert: []string{"E(a"}}, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/v1/ingest", map[string]any{"bogus": 1}, http.StatusBadRequest, nil)

	var fr serve.FactResponse
	postJSON(t, ts.URL+"/v1/fact", serve.FactRequest{Fact: "E(ghost, town)"}, http.StatusOK, &fr)
	if fr.P.Rat != "0" {
		t.Fatalf("absent fact: %+v", fr)
	}
}

// TestHTTPTerminatedFactForm: facts arriving in the corpus file syntax —
// already terminated with "." — must parse on every endpoint, identically
// to the bare form.
func TestHTTPTerminatedFactForm(t *testing.T) {
	_, ts := httpFixture(t)
	var bare, terminated serve.FactResponse
	postJSON(t, ts.URL+"/v1/fact", serve.FactRequest{Fact: "E(i00000000_n000, i00000000_n001)"}, http.StatusOK, &bare)
	postJSON(t, ts.URL+"/v1/fact", serve.FactRequest{Fact: "E(i00000000_n000, i00000000_n001)."}, http.StatusOK, &terminated)
	if bare.P.Rat != terminated.P.Rat {
		t.Fatalf("terminated form answered %s, bare form %s", terminated.P.Rat, bare.P.Rat)
	}
	var ir serve.IngestResponse
	postJSON(t, ts.URL+"/v1/ingest", serve.IngestRequest{Insert: []string{"E(dot_a, dot_b)."}}, http.StatusOK, &ir)
	postJSON(t, ts.URL+"/v1/fact", serve.FactRequest{Fact: "E(dot_a, dot_b)"}, http.StatusOK, &bare)
	if bare.P.Rat != "1" {
		t.Fatalf("fact ingested in terminated form not served: %+v", bare)
	}
}

// TestHTTPBodyLimit: a request body past the MaxBytesReader bound is a
// clean 413, not an unbounded read.
func TestHTTPBodyLimit(t *testing.T) {
	_, ts := httpFixture(t)
	huge := serve.IngestRequest{Insert: []string{"E(" + string(bytes.Repeat([]byte{'a'}, 2<<20)) + ", b)"}}
	postJSON(t, ts.URL+"/v1/ingest", huge, http.StatusRequestEntityTooLarge, nil)
}
