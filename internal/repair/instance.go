package repair

import (
	"fmt"
	"sync"

	"repro/internal/constraint"
	"repro/internal/ops"
	"repro/internal/relation"
)

// Options tunes the repairing operation space.
type Options struct {
	// NullInsertions switches TGD repairs to the null-based insertions of
	// Section 6 ("Null Values"): instead of grounding existential head
	// variables over every base constant (|dom|^|z̄| candidate operations),
	// each TGD violation gets a single canonical insertion whose
	// existential positions carry fresh labeled nulls. This is an
	// extension beyond Definition 1 (null facts live outside B(D,Σ)) and
	// trades the full Definition 3 minimality comparison against grounded
	// candidates for a polynomial operation space.
	NullInsertions bool
}

// Instance bundles the fixed context of a repairing process: the initial
// (possibly inconsistent) database D, the constraint set Σ, and the base
// B(D,Σ) from which operations draw their facts.
type Instance struct {
	initial *relation.Database
	sigma   *constraint.Set
	base    *relation.Base
	opts    Options

	// delOps caches the justified deletions of a violation, keyed by its
	// interned body image: they are a pure function of the body facts and
	// recur at every state where the violation survives. Safe for
	// concurrent walkers.
	delOpsMu sync.RWMutex
	delOps   map[string][]ops.Op

	// rootViolations caches V(D,Σ) of the initial database; root states
	// share it (violation sets are immutable once built).
	rootVioOnce    sync.Once
	rootViolations *constraint.Violations

	// rootExts caches the valid extensions of the empty sequence. Every
	// walk and exploration starts at ε over the same sealed database and
	// the shared root violation set, so the enumeration is a pure function
	// of the instance and is computed once (see State.Extensions).
	rootExtOnce sync.Once
	rootExts    []ops.Op
}

// NewInstance builds the context for repairing d under sigma. The database
// is cloned; later mutations of d do not affect the instance.
func NewInstance(d *relation.Database, sigma *constraint.Set) (*Instance, error) {
	return NewInstanceOpts(d, sigma, Options{})
}

// NewInstanceOpts is NewInstance with explicit options.
func NewInstanceOpts(d *relation.Database, sigma *constraint.Set, opts Options) (*Instance, error) {
	base, err := sigma.Base(d)
	if err != nil {
		return nil, fmt.Errorf("building base B(D,Σ): %w", err)
	}
	initial := d.Clone()
	// Seal the private copy: every walk and tree exploration clones it as
	// its root, and a sealed database clones in O(1) (copy-on-write).
	initial.Seal()
	return &Instance{
		initial: initial,
		sigma:   sigma,
		base:    base,
		opts:    opts,
		delOps:  map[string][]ops.Op{},
	}, nil
}

// MustInstance is NewInstance that panics on error.
func MustInstance(d *relation.Database, sigma *constraint.Set) *Instance {
	inst, err := NewInstance(d, sigma)
	if err != nil {
		panic(err)
	}
	return inst
}

// Initial returns (a private copy of) the initial database; callers must
// not modify it.
func (in *Instance) Initial() *relation.Database { return in.initial }

// Sigma returns the constraint set.
func (in *Instance) Sigma() *constraint.Set { return in.sigma }

// Base returns B(D,Σ).
func (in *Instance) Base() *relation.Base { return in.base }

// Opts returns the instance options.
func (in *Instance) Opts() Options { return in.opts }

// Consistent reports whether the initial database already satisfies Σ.
func (in *Instance) Consistent() bool { return in.sigma.Satisfied(in.initial) }

// justifiedDeletions returns the cached justified deletions of a
// violation, computing and caching them on first use. The cache key is the
// interned body image, so the two orientations of an EGD match share one
// entry and the lookup builds no strings.
func (in *Instance) justifiedDeletions(v constraint.Violation) []ops.Op {
	key := v.BodyPack()
	in.delOpsMu.RLock()
	cached, ok := in.delOps[key]
	in.delOpsMu.RUnlock()
	if ok {
		return cached
	}
	computed := ops.JustifiedDeletions(v)
	in.delOpsMu.Lock()
	if cached, ok := in.delOps[key]; ok {
		computed = cached
	} else {
		in.delOps[key] = computed
	}
	in.delOpsMu.Unlock()
	return computed
}

// SeedRootViolations installs a precomputed V(D,Σ) for the root state,
// skipping the from-scratch homomorphism search of the first Root call.
// The set must be exactly the violations of the initial database — callers
// that factor a database into conflict components already hold each
// component's violations and seed them here. A no-op if the root
// violations were already computed.
func (in *Instance) SeedRootViolations(vs *constraint.Violations) {
	in.rootVioOnce.Do(func() { in.rootViolations = vs })
}

// Root returns the state of the empty repairing sequence ε. The root's
// violation set is computed once per instance and shared by every root
// state (walks start from identical roots), so repeated walks skip the
// from-scratch homomorphism search.
func (in *Instance) Root() *State {
	db := in.initial.Clone()
	in.rootVioOnce.Do(func() {
		in.rootViolations = constraint.FindViolations(db, in.sigma)
	})
	return &State{
		inst:       in,
		db:         db,
		violations: in.rootViolations,
	}
}
