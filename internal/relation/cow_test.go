package relation

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/intern"
)

// TestCOWDatabaseShadowModel drives a copy-on-write database through long
// random interleavings of inserts, deletes, clones, and seals, checking
// every observable (membership, size, per-predicate indexes, domain, key)
// against a plain map-based shadow model. Clones fork the shadow too, so
// delta independence between parent and child is exercised throughout.
func TestCOWDatabaseShadowModel(t *testing.T) {
	preds := []string{"R", "S", "T"}
	consts := []string{"a", "b", "c", "d", "e"}
	randomFact := func(rng *rand.Rand) Fact {
		p := preds[rng.Intn(len(preds))]
		if p == "S" {
			return NewFact(p, consts[rng.Intn(len(consts))])
		}
		return NewFact(p, consts[rng.Intn(len(consts))], consts[rng.Intn(len(consts))])
	}

	type pair struct {
		db     *Database
		shadow map[Fact]bool
	}
	checkPair := func(seed int64, step int, pr pair) error {
		if pr.db.Size() != len(pr.shadow) {
			return fmt.Errorf("size = %d, want %d", pr.db.Size(), len(pr.shadow))
		}
		byPred := map[string][]Fact{}
		domSet := map[intern.Sym]bool{}
		for f := range pr.shadow {
			if !pr.db.Contains(f) {
				return fmt.Errorf("missing fact %s", f)
			}
			byPred[f.PredName()] = append(byPred[f.PredName()], f)
			for _, c := range f.Args() {
				domSet[c] = true
			}
		}
		for _, p := range preds {
			got := pr.db.FactsByPred(intern.S(p))
			if len(got) != len(byPred[p]) {
				return fmt.Errorf("FactsByPred(%s) has %d facts, want %d", p, len(got), len(byPred[p]))
			}
			for _, f := range got {
				if !pr.shadow[f] {
					return fmt.Errorf("FactsByPred(%s) returned phantom fact %s", p, f)
				}
			}
		}
		if got := pr.db.DomSyms(); len(got) != len(domSet) {
			return fmt.Errorf("dom has %d constants, want %d", len(got), len(domSet))
		}
		for _, c := range pr.db.DomSyms() {
			if !domSet[c] {
				return fmt.Errorf("phantom domain constant %s", c)
			}
			if !pr.db.HasConst(c) {
				return fmt.Errorf("HasConst(%s) = false for domain constant", c)
			}
		}
		// Key equals the key of a freshly built database with the same
		// contents (canonical encoding is content-only).
		var fs []Fact
		for f := range pr.shadow {
			fs = append(fs, f)
		}
		if want := FromFacts(fs...).Key(); pr.db.Key() != want {
			return fmt.Errorf("key mismatch after %d steps", step)
		}
		return nil
	}

	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pairs := []pair{{db: NewDatabase(), shadow: map[Fact]bool{}}}
		for step := 0; step < 400; step++ {
			pr := pairs[rng.Intn(len(pairs))]
			switch op := rng.Intn(10); {
			case op < 5: // insert
				f := randomFact(rng)
				changed := pr.db.Insert(f)
				if changed == pr.shadow[f] {
					t.Fatalf("seed %d step %d: Insert(%s) reported %v with shadow %v",
						seed, step, f, changed, pr.shadow[f])
				}
				pr.shadow[f] = true
			case op < 8: // delete
				f := randomFact(rng)
				changed := pr.db.Delete(f)
				if changed != pr.shadow[f] {
					t.Fatalf("seed %d step %d: Delete(%s) reported %v with shadow %v",
						seed, step, f, changed, pr.shadow[f])
				}
				delete(pr.shadow, f)
			case op < 9: // clone (bounded population)
				if len(pairs) < 6 {
					shadow := make(map[Fact]bool, len(pr.shadow))
					for f := range pr.shadow {
						shadow[f] = true
					}
					pairs = append(pairs, pair{db: pr.db.Clone(), shadow: shadow})
				}
			default: // seal
				pr.db.Seal()
			}
			if err := checkPair(seed, step, pr); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
		}
		for _, pr := range pairs {
			if err := checkPair(seed, -1, pr); err != nil {
				t.Fatalf("seed %d final: %v", seed, err)
			}
		}
	}
}

// TestAutoSealKeepsBulkLoadingFlat: bulk construction folds deltas into
// snapshots, so a database built by pure insertion ends up with a small
// delta and correct content.
func TestAutoSealKeepsBulkLoadingFlat(t *testing.T) {
	d := NewDatabase()
	n := 4 * autoSealFloor
	for i := 0; i < n; i++ {
		d.Insert(NewFact("R", fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)))
	}
	if d.Size() != n {
		t.Fatalf("size = %d, want %d", d.Size(), n)
	}
	if d.DeltaSize() >= n {
		t.Fatalf("delta never sealed: %d facts still in delta", d.DeltaSize())
	}
	if got := len(d.FactsByPred(intern.S("R"))); got != n {
		t.Fatalf("index has %d facts, want %d", got, n)
	}
}

// TestSealedCloneIsCheapAndIndependent: clones of a sealed database share
// the snapshot but never observe each other's writes.
func TestSealedCloneIsCheapAndIndependent(t *testing.T) {
	d := FromFacts(NewFact("R", "a"), NewFact("R", "b"))
	d.Seal()
	if d.DeltaSize() != 0 {
		t.Fatalf("sealed database has delta %d", d.DeltaSize())
	}
	c1, c2 := d.Clone(), d.Clone()
	c1.Delete(NewFact("R", "a"))
	c2.Insert(NewFact("R", "c"))
	if !d.Contains(NewFact("R", "a")) || d.Contains(NewFact("R", "c")) {
		t.Error("writes to clones leaked into the sealed parent")
	}
	if c1.Contains(NewFact("R", "c")) || !c2.Contains(NewFact("R", "a")) {
		t.Error("writes leaked between sibling clones")
	}
	if got := strings.Join(c1.Dom(), ","); got != "b" {
		t.Errorf("c1 dom = %q, want b", got)
	}
}
