package relation

import (
	"fmt"

	"repro/internal/intern"
)

// Schema is a finite set of relation symbols with associated arities.
type Schema struct {
	arity map[intern.Sym]int
}

// NewSchema returns an empty schema.
func NewSchema() *Schema { return &Schema{arity: map[intern.Sym]int{}} }

// Add records a predicate with its arity. Re-adding with the same arity is
// a no-op; a conflicting arity is an error.
func (s *Schema) Add(pred string, arity int) error { return s.AddSym(intern.S(pred), arity) }

// AddSym is Add over an interned predicate symbol.
func (s *Schema) AddSym(pred intern.Sym, arity int) error {
	if existing, ok := s.arity[pred]; ok {
		if existing != arity {
			return fmt.Errorf("predicate %s declared with arity %d and %d", pred, existing, arity)
		}
		return nil
	}
	s.arity[pred] = arity
	return nil
}

// Arity reports the arity of a predicate name and whether it is declared.
func (s *Schema) Arity(pred string) (int, bool) {
	sym, ok := intern.Lookup(pred)
	if !ok {
		return 0, false
	}
	return s.ArityOf(sym)
}

// ArityOf reports the arity of a predicate symbol and whether it is
// declared; it is the hot-path variant of Arity.
func (s *Schema) ArityOf(pred intern.Sym) (int, bool) {
	a, ok := s.arity[pred]
	return a, ok
}

// Predicates returns the sorted predicate names.
func (s *Schema) Predicates() []string {
	syms := make([]intern.Sym, 0, len(s.arity))
	for p := range s.arity {
		syms = append(syms, p)
	}
	intern.SortSyms(syms)
	return intern.Names(syms)
}

// PredicateSyms returns the predicate symbols sorted by name.
func (s *Schema) PredicateSyms() []intern.Sym {
	syms := make([]intern.Sym, 0, len(s.arity))
	for p := range s.arity {
		syms = append(syms, p)
	}
	intern.SortSyms(syms)
	return syms
}

// Clone returns an independent copy.
func (s *Schema) Clone() *Schema {
	out := NewSchema()
	for p, a := range s.arity {
		out.arity[p] = a
	}
	return out
}

// AddDatabase records every predicate of the database, inferring arities
// from the facts.
func (s *Schema) AddDatabase(d *Database) error {
	for _, f := range d.Facts() {
		if err := s.AddSym(f.Pred(), f.Arity()); err != nil {
			return err
		}
	}
	return nil
}

// Base describes B(D,Σ): the set of all facts R(c1, ..., cn) where R is a
// schema predicate and each ci is a constant occurring in dom(D) or in Σ.
// The set is typically astronomically large, so it is never materialized;
// Base answers membership queries and exposes its constant domain.
//
// A Base is immutable after construction, so the sorted domain is computed
// once and shared — operation enumeration (which consults it per TGD
// violation per state) never re-sorts it.
type Base struct {
	schema   *Schema
	consts   map[intern.Sym]bool
	domSyms  []intern.Sym // sorted by name, cached at construction
	domNames []string
}

// NewBase builds a base from a schema and a set of constant names.
func NewBase(schema *Schema, consts []string) *Base {
	syms := make([]intern.Sym, len(consts))
	for i, c := range consts {
		syms[i] = intern.S(c)
	}
	return NewBaseSyms(schema, syms)
}

// NewBaseSyms builds a base from a schema and a set of constant symbols.
func NewBaseSyms(schema *Schema, consts []intern.Sym) *Base {
	m := make(map[intern.Sym]bool, len(consts))
	for _, c := range consts {
		m[c] = true
	}
	sorted := make([]intern.Sym, 0, len(m))
	for c := range m {
		sorted = append(sorted, c)
	}
	intern.SortSyms(sorted)
	return &Base{schema: schema, consts: m, domSyms: sorted, domNames: intern.Names(sorted)}
}

// Schema returns the underlying schema.
func (b *Base) Schema() *Schema { return b.schema }

// Dom returns the sorted constant domain dom(B(D,Σ)) as names; the slice
// is cached and must not be modified.
func (b *Base) Dom() []string { return b.domNames }

// DomSyms returns the sorted constant domain as symbols; the slice is
// cached and must not be modified.
func (b *Base) DomSyms() []intern.Sym { return b.domSyms }

// HasConst reports whether the constant name belongs to the base domain.
func (b *Base) HasConst(c string) bool {
	sym, ok := intern.Lookup(c)
	return ok && b.consts[sym]
}

// HasConstSym reports whether the constant symbol belongs to the base
// domain.
func (b *Base) HasConstSym(c intern.Sym) bool { return b.consts[c] }

// Contains reports whether the fact belongs to B(D,Σ): its predicate is in
// the schema with matching arity and all its constants are in the domain.
func (b *Base) Contains(f Fact) bool {
	args := f.Args()
	arity, ok := b.schema.ArityOf(f.Pred())
	if !ok || arity != len(args) {
		return false
	}
	for _, c := range args {
		if !b.consts[c] {
			return false
		}
	}
	return true
}

// ContainsAll reports whether every fact of the slice is in the base.
func (b *Base) ContainsAll(fs []Fact) bool {
	for _, f := range fs {
		if !b.Contains(f) {
			return false
		}
	}
	return true
}

// Size returns the total number of facts in the base, i.e.
// Σ_R |dom|^arity(R). It saturates at MaxInt on overflow.
func (b *Base) Size() int {
	n := len(b.consts)
	total := 0
	for _, a := range b.schema.arity {
		count := 1
		for i := 0; i < a; i++ {
			if n != 0 && count > (int(^uint(0)>>1))/n {
				return int(^uint(0) >> 1)
			}
			count *= n
		}
		if total > (int(^uint(0)>>1))-count {
			return int(^uint(0) >> 1)
		}
		total += count
	}
	return total
}
