package main

// CLI-level tests for run(): mode validation must fire before any file
// is touched and must enumerate every valid mode, and -mode sat must be
// a working end-to-end pipeline from the text formats to certain answers
// (including the DIMACS export directory).

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const (
	testDB    = "inline:R(a, 1). R(a, 2). R(b, 3)."
	testSigma = "inline:R(X, Y), R(X, Z) -> Y = Z."
	testQuery = "inline:Q(X) := exists Y: R(X, Y)."
)

func runWith(db, sigma, query, mode string, nulls bool, dimacsDir string) error {
	return run(db, sigma, query, "uniform", mode, "walk",
		0.1, 0.1, 1, 1, 1_000_000, nulls, 0, dimacsDir)
}

// TestUnknownModeListsValidModes: the satellite bugfix — an unknown
// -mode is rejected with a usage message enumerating every valid mode,
// and the check runs before any input file is opened (bogus paths must
// not mask the mode error).
func TestUnknownModeListsValidModes(t *testing.T) {
	err := runWith("/no/such/db", "/no/such/sigma", "/no/such/query", "exakt", false, "")
	if err == nil {
		t.Fatal("unknown mode accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"exakt"`) {
		t.Fatalf("error does not echo the bad mode: %q", msg)
	}
	for _, m := range validModes {
		if !strings.Contains(msg, m) {
			t.Fatalf("error does not list valid mode %q: %q", m, msg)
		}
	}
}

// TestValidModesListMatchesSwitch: every advertised mode must get past
// the validation gate and reach its branch (i.e. fail on something other
// than "unknown -mode", or succeed).
func TestValidModesListMatchesSwitch(t *testing.T) {
	for _, m := range validModes {
		err := runWith(testDB, testSigma, testQuery, m, false, "")
		if err != nil && strings.Contains(err.Error(), "unknown -mode") {
			t.Fatalf("advertised mode %q rejected by validation: %v", m, err)
		}
	}
}

// TestSATModeEndToEnd: -mode sat over inline inputs computes the right
// certain set — R(b,3) is conflict-free so b is certain; the a-group can
// resolve to empty, so a is not.
func TestSATModeEndToEnd(t *testing.T) {
	if err := runWith(testDB, testSigma, testQuery, "sat", false, ""); err != nil {
		t.Fatalf("-mode sat: %v", err)
	}
}

// TestSATModeDIMACSExport: -dimacs writes one well-formed CNF file per
// candidate tuple (here: a and b).
func TestSATModeDIMACSExport(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cnf")
	if err := runWith(testDB, testSigma, testQuery, "sat", false, dir); err != nil {
		t.Fatalf("-mode sat -dimacs: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("wrote %d files, want one per candidate (2)", len(entries))
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "p cnf ") {
			t.Fatalf("%s is not a DIMACS file:\n%s", e.Name(), data)
		}
	}
}

// TestSATModeRejectsNulls: labeled-null insertion repairs are outside
// the SAT encoding's deletion-only repair space.
func TestSATModeRejectsNulls(t *testing.T) {
	err := runWith(testDB, testSigma, testQuery, "sat", true, "")
	if err == nil || !strings.Contains(err.Error(), "-nulls") {
		t.Fatalf("want -nulls rejection, got %v", err)
	}
}

// TestSATModeRejectsNonKeyConstraints: a denial constraint is not a key
// EGD; the error should steer to -mode exact.
func TestSATModeRejectsNonKeyConstraints(t *testing.T) {
	err := runWith(testDB, "inline:R(X, Y), R(Y, X) -> false.", testQuery, "sat", false, "")
	if err == nil || !strings.Contains(err.Error(), "-mode exact") {
		t.Fatalf("want unsupported-constraints error pointing at -mode exact, got %v", err)
	}
}
