package prob

import (
	"math"
	"math/big"
)

// Rat is an exact rational accumulator with a small-value fast path: while
// the reduced numerator and denominator fit in int64 the value lives in two
// machine words and add/mul cost a handful of integer operations; the first
// operation whose exact result would overflow promotes the value — once and
// permanently — to an internal *big.Rat. Promotion never rounds: every
// overflow check guards the exact product or sum, so a Rat holds the same
// rational number either way and Big materializes it as a canonical
// (normalized) *big.Rat, bit-identical whether or not the fast path was
// ever left. The shape follows the IntWeighter fast path: cheap integer
// arithmetic when possible, the exact big.Rat route as the always-correct
// fallback.
//
// The zero value is 0. The exact engines use Rat for π mass accumulation
// (markov.ExploreDAG, markov.Explore) and marginal sums (core), where
// chain probabilities are products of small per-step fractions and the
// reduced values almost never leave int64 range.
//
// A Rat is single-owner: methods mutate the receiver and are not safe for
// concurrent use.
type Rat struct {
	// num/den is the value while promoted == nil; den == 0 encodes the zero
	// value (treated as 0/1), otherwise den > 0 and gcd(|num|, den) == 1.
	num, den int64
	promoted *big.Rat
}

// RatOne returns a Rat holding 1.
func RatOne() Rat { return Rat{num: 1, den: 1} }

// RatFrac returns a Rat holding num/den (den must be non-zero).
func RatFrac(num, den int64) Rat {
	if den == 0 {
		panic("prob: RatFrac with zero denominator")
	}
	if den < 0 {
		// Avoid -MinInt64 overflow by promoting outright.
		if num == math.MinInt64 || den == math.MinInt64 {
			return Rat{promoted: new(big.Rat).SetFrac64(num, den)}
		}
		num, den = -num, -den
	}
	g := gcd64(abs64(num), den)
	if g > 1 {
		num, den = num/g, den/g
	}
	return Rat{num: num, den: den}
}

// small returns the fast-path value, mapping the zero value to 0/1. Only
// valid while promoted == nil.
func (r *Rat) small() (int64, int64) {
	if r.den == 0 {
		return 0, 1
	}
	return r.num, r.den
}

// IsBig reports whether the value has left the int64 fast path.
func (r *Rat) IsBig() bool { return r.promoted != nil }

// IsOne reports whether the value is exactly 1.
func (r *Rat) IsOne() bool {
	if r.promoted != nil {
		return IsOne(r.promoted)
	}
	return r.num == 1 && r.den == 1
}

// Sign returns the sign of the value (-1, 0, +1).
func (r *Rat) Sign() int {
	if r.promoted != nil {
		return r.promoted.Sign()
	}
	switch {
	case r.num > 0:
		return 1
	case r.num < 0:
		return -1
	}
	return 0
}

// Big returns the value as a fresh *big.Rat. big.Rat stores every rational
// in reduced canonical form, so the result is bit-identical however the
// value was accumulated (fast path, promoted path, or any mix).
func (r *Rat) Big() *big.Rat {
	if r.promoted != nil {
		return new(big.Rat).Set(r.promoted)
	}
	n, d := r.small()
	return new(big.Rat).SetFrac64(n, d)
}

// promote moves the value to big.Rat representation.
func (r *Rat) promote() {
	if r.promoted == nil {
		n, d := r.small()
		r.promoted = new(big.Rat).SetFrac64(n, d)
	}
}

// Add sets r to r + o.
func (r *Rat) Add(o *Rat) {
	if r.promoted == nil && o.promoted == nil {
		an, ad := r.small()
		bn, bd := o.small()
		if n, d, ok := addSmall(an, ad, bn, bd); ok {
			r.num, r.den = n, d
			return
		}
	}
	r.promote()
	if o.promoted != nil {
		r.promoted.Add(r.promoted, o.promoted)
	} else {
		n, d := o.small()
		var t big.Rat
		r.promoted.Add(r.promoted, t.SetFrac64(n, d))
	}
}

// AddBig sets r to r + p.
func (r *Rat) AddBig(p *big.Rat) {
	one := RatOne()
	r.AddMul(&one, p)
}

// AddMul sets r to r + a·p — the π-accumulation step of the exact engines
// (a is a node's incoming mass, p an edge probability). While r, a, and p
// all fit int64 the update is pure integer arithmetic; any overflow of the
// exact intermediate promotes r and redoes the update in big.Rat.
func (r *Rat) AddMul(a *Rat, p *big.Rat) {
	if r.promoted == nil && a.promoted == nil {
		if pn, pd, ok := smallBig(p); ok {
			an, ad := a.small()
			if mn, md, ok := mulSmall(an, ad, pn, pd); ok {
				rn, rd := r.small()
				if n, d, ok := addSmall(rn, rd, mn, md); ok {
					r.num, r.den = n, d
					return
				}
			}
		}
	}
	r.promote()
	var t big.Rat
	if a.promoted != nil {
		t.Mul(a.promoted, p)
	} else {
		n, d := a.small()
		t.SetFrac64(n, d)
		t.Mul(&t, p)
	}
	r.promoted.Add(r.promoted, &t)
}

// MulBig returns r·p as a new Rat.
func (r *Rat) MulBig(p *big.Rat) Rat {
	if r.promoted == nil {
		if pn, pd, ok := smallBig(p); ok {
			n, d := r.small()
			if mn, md, ok := mulSmall(n, d, pn, pd); ok {
				return Rat{num: mn, den: md}
			}
		}
	}
	out := Rat{promoted: new(big.Rat)}
	if r.promoted != nil {
		out.promoted.Mul(r.promoted, p)
	} else {
		n, d := r.small()
		out.promoted.SetFrac64(n, d)
		out.promoted.Mul(out.promoted, p)
	}
	return out
}

// RatFromBig returns a Rat holding p's value (copied, never aliased).
func RatFromBig(p *big.Rat) Rat {
	if n, d, ok := smallBig(p); ok {
		return Rat{num: n, den: d}
	}
	return Rat{promoted: new(big.Rat).Set(p)}
}

// AddMulRat sets r to r + a·b, the all-small-rational form of AddMul: when
// r, a, and b are all on the fast path the update allocates nothing.
func (r *Rat) AddMulRat(a, b *Rat) {
	if r.promoted == nil && a.promoted == nil && b.promoted == nil {
		an, ad := a.small()
		bn, bd := b.small()
		if mn, md, ok := mulSmall(an, ad, bn, bd); ok {
			rn, rd := r.small()
			if n, d, ok := addSmall(rn, rd, mn, md); ok {
				r.num, r.den = n, d
				return
			}
		}
	}
	r.promote()
	var ta, tb big.Rat
	pa, pb := a.promoted, b.promoted
	if pa == nil {
		n, d := a.small()
		pa = ta.SetFrac64(n, d)
	}
	if pb == nil {
		n, d := b.small()
		pb = tb.SetFrac64(n, d)
	}
	var t big.Rat
	r.promoted.Add(r.promoted, t.Mul(pa, pb))
}

// smallBig extracts p as an int64 fraction when both components fit.
// big.Rat denominators are always positive and the fraction reduced.
func smallBig(p *big.Rat) (num, den int64, ok bool) {
	n, d := p.Num(), p.Denom()
	if !n.IsInt64() || !d.IsInt64() {
		return 0, 0, false
	}
	return n.Int64(), d.Int64(), true
}

// addSmall returns the reduced sum an/ad + bn/bd, reporting ok=false when
// any exact intermediate leaves int64. Inputs must be reduced with positive
// denominators.
func addSmall(an, ad, bn, bd int64) (num, den int64, ok bool) {
	g := gcd64(ad, bd)
	adg, bdg := ad/g, bd/g
	den, ok = mul64(adg, bd) // lcm(ad, bd)
	if !ok {
		return 0, 0, false
	}
	x, ok := mul64(an, bdg)
	if !ok {
		return 0, 0, false
	}
	y, ok := mul64(bn, adg)
	if !ok {
		return 0, 0, false
	}
	num, ok = add64(x, y)
	if !ok {
		return 0, 0, false
	}
	// The cross terms can share a factor with the lcm (e.g. 1/6 + 1/3).
	if num == math.MinInt64 {
		return 0, 0, false
	}
	if g := gcd64(abs64(num), den); g > 1 {
		num, den = num/g, den/g
	}
	return num, den, true
}

// mulSmall returns the reduced product (an/ad)·(bn/bd) with cross-GCD
// reduction before multiplying, reporting ok=false on int64 overflow.
// Inputs must be reduced with positive denominators.
func mulSmall(an, ad, bn, bd int64) (num, den int64, ok bool) {
	if an == 0 || bn == 0 {
		return 0, 1, true
	}
	if an == math.MinInt64 || bn == math.MinInt64 {
		return 0, 0, false
	}
	if g := gcd64(abs64(an), bd); g > 1 {
		an, bd = an/g, bd/g
	}
	if g := gcd64(abs64(bn), ad); g > 1 {
		bn, ad = bn/g, ad/g
	}
	num, ok = mul64(an, bn)
	if !ok {
		return 0, 0, false
	}
	den, ok = mul64(ad, bd)
	if !ok {
		return 0, 0, false
	}
	return num, den, true
}

// mul64 is overflow-checked int64 multiplication.
func mul64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a == math.MinInt64 || b == math.MinInt64 {
		return 0, false
	}
	c := a * b
	if c/b != a {
		return 0, false
	}
	return c, true
}

// add64 is overflow-checked int64 addition.
func add64(a, b int64) (int64, bool) {
	c := a + b
	if (b > 0 && c < a) || (b < 0 && c > a) {
		return 0, false
	}
	return c, true
}

func abs64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

// gcd64 returns gcd(a, b) for non-negative inputs (gcd(0, b) = b).
func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
