package generators

import (
	"math/big"
	"testing"

	"repro/internal/constraint"
	"repro/internal/logic"
	"repro/internal/markov"
	"repro/internal/ops"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/repair"
)

func v(n string) logic.Term                    { return logic.Var(n) }
func at(p string, ts ...logic.Term) logic.Atom { return logic.NewAtom(p, ts...) }
func f(p string, args ...string) relation.Fact { return relation.NewFact(p, args...) }

func keyInstance(t *testing.T) *repair.Instance {
	t.Helper()
	d := relation.FromFacts(f("R", "a", "b"), f("R", "a", "c"))
	eta := constraint.MustEGD(
		[]logic.Atom{at("R", v("x"), v("y")), at("R", v("x"), v("z"))},
		v("y"), v("z"),
	)
	return repair.MustInstance(d, constraint.NewSet(eta))
}

func TestUniformTransitions(t *testing.T) {
	inst := keyInstance(t)
	root := inst.Root()
	exts := root.Extensions()
	ps, err := Uniform{}.Transitions(root, exts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != len(exts) {
		t.Fatalf("got %d probabilities for %d extensions", len(ps), len(exts))
	}
	want := big.NewRat(1, int64(len(exts)))
	for i, p := range ps {
		if p.Cmp(want) != 0 {
			t.Errorf("p[%d] = %s, want %s", i, p.RatString(), want.RatString())
		}
	}
	if !prob.SumsToOne(ps) {
		t.Error("uniform probabilities must sum to 1")
	}
}

// TestTrustIntroExample reproduces the introduction's data-integration
// numbers: R(a,b) and R(a,c) violate the key, both sources 50% reliable →
// remove both with probability 0.25, remove either single fact with
// probability 0.375.
func TestTrustIntroExample(t *testing.T) {
	inst := keyInstance(t)
	gen := NewTrust(big.NewRat(1, 2))

	root := inst.Root()
	exts := root.Extensions()
	ps, err := gen.Transitions(root, exts)
	if err != nil {
		t.Fatal(err)
	}
	if !prob.SumsToOne(ps) {
		t.Errorf("trust probabilities sum to %s", prob.Sum(ps).RatString())
	}
	want := map[string]*big.Rat{
		ops.Delete(f("R", "a", "b")).Key():                   big.NewRat(3, 8),
		ops.Delete(f("R", "a", "c")).Key():                   big.NewRat(3, 8),
		ops.Delete(f("R", "a", "b"), f("R", "a", "c")).Key(): big.NewRat(1, 4),
	}
	for i, op := range exts {
		w, ok := want[op.Key()]
		if !ok {
			t.Fatalf("unexpected extension %s", op)
		}
		if ps[i].Cmp(w) != 0 {
			t.Errorf("P(%s) = %s, want %s", op, ps[i].RatString(), w.RatString())
		}
	}
}

// TestTrustAsymmetric: a more trusted fact is kept with higher probability.
func TestTrustAsymmetric(t *testing.T) {
	inst := keyInstance(t)
	gen := NewTrust(big.NewRat(1, 2))
	if err := gen.Set(f("R", "a", "b"), big.NewRat(9, 10)); err != nil {
		t.Fatal(err)
	}
	if err := gen.Set(f("R", "a", "c"), big.NewRat(1, 10)); err != nil {
		t.Fatal(err)
	}

	root := inst.Root()
	exts := root.Extensions()
	ps, err := gen.Transitions(root, exts)
	if err != nil {
		t.Fatal(err)
	}
	var pDelB, pDelC *big.Rat
	for i, op := range exts {
		switch op.Key() {
		case ops.Delete(f("R", "a", "b")).Key():
			pDelB = ps[i]
		case ops.Delete(f("R", "a", "c")).Key():
			pDelC = ps[i]
		}
	}
	// tr_{b|c} = 9/10 → deleting the trusted R(a,b) must be less likely.
	if pDelB.Cmp(pDelC) >= 0 {
		t.Errorf("P(-R(a,b)) = %s must be < P(-R(a,c)) = %s", pDelB.RatString(), pDelC.RatString())
	}
	if !prob.SumsToOne(ps) {
		t.Error("probabilities must sum to 1")
	}
}

// TestTrustSemanticsSumToOne: full-chain exploration of a two-pair conflict
// instance yields a hitting distribution summing to 1.
func TestTrustSemanticsSumToOne(t *testing.T) {
	d := relation.FromFacts(
		f("R", "a", "b"), f("R", "a", "c"),
		f("R", "q", "r"), f("R", "q", "s"),
	)
	eta := constraint.MustEGD(
		[]logic.Atom{at("R", v("x"), v("y")), at("R", v("x"), v("z"))},
		v("y"), v("z"),
	)
	inst := repair.MustInstance(d, constraint.NewSet(eta))
	gen := NewTrust(big.NewRat(2, 3))
	dist, err := markov.HittingDistribution(inst, gen, markov.ExploreOptions{MaxStates: 100000})
	if err != nil {
		t.Fatalf("HittingDistribution: %v", err)
	}
	if len(dist) == 0 {
		t.Fatal("no absorbing states")
	}
}

func TestTrustRejectsBadLevels(t *testing.T) {
	gen := NewTrust(big.NewRat(1, 2))
	if err := gen.Set(f("R", "a", "b"), big.NewRat(3, 2)); err == nil {
		t.Error("trust level above 1 must be rejected")
	}
	if err := gen.Set(f("R", "a", "b"), big.NewRat(-1, 2)); err == nil {
		t.Error("negative trust level must be rejected")
	}
}

func TestTrustZeroPair(t *testing.T) {
	inst := keyInstance(t)
	gen := NewTrust(prob.Zero()) // both facts trust 0 → relative trust undefined
	root := inst.Root()
	if _, err := gen.Transitions(root, root.Extensions()); err == nil {
		t.Error("zero/zero trust pair must be an error")
	}
}

// TestTrustRequiresPairwiseConflicts: a three-atom DC body is out of scope.
func TestTrustRequiresPairwiseConflicts(t *testing.T) {
	d := relation.FromFacts(f("P", "a"), f("P", "b"), f("P", "c"))
	dc := constraint.MustDC([]logic.Atom{at("P", v("x")), at("P", v("y")), at("P", v("z"))})
	inst := repair.MustInstance(d, constraint.NewSet(dc))
	gen := NewTrust(big.NewRat(1, 2))
	root := inst.Root()
	if _, err := gen.Transitions(root, root.Extensions()); err == nil {
		t.Error("non-pairwise violations must be rejected")
	}
}

func TestUniformDeletionsZeroesInsertions(t *testing.T) {
	// Mixed instance: TGD gives insertion extensions; they must get 0.
	d := relation.FromFacts(f("R", "a"))
	tgd := constraint.MustTGD([]logic.Atom{at("R", v("x"))}, []logic.Atom{at("T", v("x"))})
	inst := repair.MustInstance(d, constraint.NewSet(tgd))
	root := inst.Root()
	exts := root.Extensions()
	hasInsert := false
	for _, op := range exts {
		if op.IsInsert() {
			hasInsert = true
		}
	}
	if !hasInsert {
		t.Fatal("expected an insertion extension from the TGD")
	}
	ps, err := UniformDeletions{}.Transitions(root, exts)
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range exts {
		if op.IsInsert() && ps[i].Sign() != 0 {
			t.Errorf("insertion %s got probability %s", op, ps[i].RatString())
		}
		if op.IsDelete() && ps[i].Sign() == 0 {
			t.Errorf("deletion %s got probability 0", op)
		}
	}
	if !prob.SumsToOne(ps) {
		t.Error("probabilities must sum to 1")
	}
}

func TestWeightFuncGenerator(t *testing.T) {
	inst := keyInstance(t)
	// Prefer small deletions: weight 1/|F|.
	gen := WeightFunc{
		Label: "small-first",
		Fn: func(_ *repair.State, op ops.Op) *big.Rat {
			return big.NewRat(1, int64(op.Size()))
		},
	}
	if gen.Name() != "small-first" {
		t.Errorf("Name = %q", gen.Name())
	}
	root := inst.Root()
	exts := root.Extensions()
	ps, err := gen.Transitions(root, exts)
	if err != nil {
		t.Fatal(err)
	}
	if !prob.SumsToOne(ps) {
		t.Error("probabilities must sum to 1")
	}
	// Weights 1, 1, 1/2 over the three deletions → 2/5, 2/5, 1/5.
	for i, op := range exts {
		want := big.NewRat(2, 5)
		if op.Size() == 2 {
			want = big.NewRat(1, 5)
		}
		if ps[i].Cmp(want) != 0 {
			t.Errorf("P(%s) = %s, want %s", op, ps[i].RatString(), want.RatString())
		}
	}
}

func TestWeightFuncAllZeroFails(t *testing.T) {
	inst := keyInstance(t)
	gen := WeightFunc{Fn: func(*repair.State, ops.Op) *big.Rat { return prob.Zero() }}
	root := inst.Root()
	if _, err := gen.Transitions(root, root.Extensions()); err == nil {
		t.Error("all-zero weights must be rejected")
	}
}

// TestMarkovStepValidation: a generator returning a wrong-length or
// non-stochastic vector is caught by markov.Step.
func TestMarkovStepValidation(t *testing.T) {
	inst := keyInstance(t)
	root := inst.Root()

	short := WeightFunc{Fn: func(*repair.State, ops.Op) *big.Rat { return prob.One() }}
	if _, err := markov.Step(badLength{short}, root); err == nil {
		t.Error("wrong-length probability vector must be rejected")
	}

	nonStochastic := fixedGen{p: big.NewRat(1, 2)} // sums to 3/2 over 3 exts
	if _, err := markov.Step(nonStochastic, root); err == nil {
		t.Error("non-stochastic probabilities must be rejected")
	}

	negative := fixedGen{p: big.NewRat(-1, 3)}
	if _, err := markov.Step(negative, root); err == nil {
		t.Error("negative probabilities must be rejected")
	}
}

type badLength struct{ inner markov.Generator }

func (b badLength) Name() string { return "bad-length" }
func (b badLength) Transitions(s *repair.State, exts []ops.Op) ([]*big.Rat, error) {
	ps, err := b.inner.Transitions(s, exts)
	if err != nil {
		return nil, err
	}
	return ps[:len(ps)-1], nil
}

type fixedGen struct{ p *big.Rat }

func (g fixedGen) Name() string { return "fixed" }
func (g fixedGen) Transitions(_ *repair.State, exts []ops.Op) ([]*big.Rat, error) {
	out := make([]*big.Rat, len(exts))
	for i := range out {
		out[i] = g.p
	}
	return out, nil
}

// TestExploreBudget: the state budget aborts runaway explorations.
func TestExploreBudget(t *testing.T) {
	d := relation.NewDatabase()
	for i := 0; i < 6; i++ {
		d.Insert(f("R", "k", string(rune('a'+i))))
	}
	eta := constraint.MustEGD(
		[]logic.Atom{at("R", v("x"), v("y")), at("R", v("x"), v("z"))},
		v("y"), v("z"),
	)
	inst := repair.MustInstance(d, constraint.NewSet(eta))
	_, err := markov.Explore(inst, Uniform{}, markov.ExploreOptions{MaxStates: 10})
	if err == nil {
		t.Error("expected the state budget to trigger")
	}
}

// TestHittingDistributionUniform: leaf probabilities over the uniform chain
// of the key instance are 1/3 each and sum to 1 (Proposition 3).
func TestHittingDistributionUniform(t *testing.T) {
	inst := keyInstance(t)
	dist, err := markov.HittingDistribution(inst, Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 3 {
		t.Fatalf("got %d absorbing states, want 3", len(dist))
	}
	for k, leaf := range dist {
		if leaf.Pi.Cmp(big.NewRat(1, 3)) != 0 {
			t.Errorf("π(%s) = %s, want 1/3", k, leaf.Pi.RatString())
		}
	}
}

// TestTreeRender: the rendered tree mentions every operation and is stable.
func TestTreeRender(t *testing.T) {
	inst := keyInstance(t)
	tree, err := markov.BuildTree(inst, Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.CountStates() != 4 {
		t.Errorf("CountStates = %d, want 4", tree.CountStates())
	}
	if len(tree.Leaves()) != 3 {
		t.Errorf("Leaves = %d, want 3", len(tree.Leaves()))
	}
	r := tree.Render()
	for _, want := range []string{"ε", "-R(a, b)", "-R(a, c)", "[absorbing]", "1/3"} {
		if !contains(r, want) {
			t.Errorf("render missing %q:\n%s", want, r)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestPreferenceTransitionsDirect reproduces the root probabilities of the
// paper's figure directly through the generator API.
func TestPreferenceTransitionsDirect(t *testing.T) {
	d := relation.FromFacts(
		f("Pref", "a", "b"), f("Pref", "a", "c"), f("Pref", "a", "d"),
		f("Pref", "b", "a"), f("Pref", "b", "d"), f("Pref", "c", "a"),
	)
	dc := constraint.MustDC([]logic.Atom{at("Pref", v("x"), v("y")), at("Pref", v("y"), v("x"))})
	inst := repair.MustInstance(d, constraint.NewSet(dc))
	gen := Preference{}
	if gen.Name() != "preference" {
		t.Errorf("Name = %q", gen.Name())
	}
	root := inst.Root()
	exts := root.Extensions()
	ps, err := gen.Transitions(root, exts)
	if err != nil {
		t.Fatal(err)
	}
	if !prob.SumsToOne(ps) {
		t.Errorf("sum = %s", prob.Sum(ps).RatString())
	}
	want := map[string]*big.Rat{
		ops.Delete(f("Pref", "a", "b")).Key(): big.NewRat(2, 9),
		ops.Delete(f("Pref", "b", "a")).Key(): big.NewRat(3, 9),
		ops.Delete(f("Pref", "a", "c")).Key(): big.NewRat(1, 9),
		ops.Delete(f("Pref", "c", "a")).Key(): big.NewRat(3, 9),
	}
	for i, op := range exts {
		if w, ok := want[op.Key()]; ok {
			if ps[i].Cmp(w) != 0 {
				t.Errorf("P(%s) = %s, want %s", op, ps[i].RatString(), w.RatString())
			}
		} else if ps[i].Sign() != 0 {
			t.Errorf("pair deletion %s has probability %s, want 0", op, ps[i].RatString())
		}
	}
}

// TestPreferenceCustomPredicate: the predicate name is configurable.
func TestPreferenceCustomPredicate(t *testing.T) {
	d := relation.FromFacts(f("Likes", "a", "b"), f("Likes", "b", "a"))
	dc := constraint.MustDC([]logic.Atom{at("Likes", v("x"), v("y")), at("Likes", v("y"), v("x"))})
	inst := repair.MustInstance(d, constraint.NewSet(dc))
	gen := Preference{Pred: "Likes"}
	root := inst.Root()
	ps, err := gen.Transitions(root, root.Extensions())
	if err != nil {
		t.Fatal(err)
	}
	if !prob.SumsToOne(ps) {
		t.Errorf("sum = %s", prob.Sum(ps).RatString())
	}
}

// TestPreferenceWrongSchemaFails: violation atoms outside Pref/2 error out.
func TestPreferenceWrongSchemaFails(t *testing.T) {
	d := relation.FromFacts(f("Q", "a"), f("Q", "b"))
	dc := constraint.MustDC([]logic.Atom{at("Q", v("x")), at("Q", v("y"))})
	inst := repair.MustInstance(d, constraint.NewSet(dc))
	root := inst.Root()
	if _, err := (Preference{}).Transitions(root, root.Extensions()); err == nil {
		t.Error("non-Pref violations must be rejected")
	}
}

// TestGeneratorNamesAndLocality smoke-covers the trivial accessors.
func TestGeneratorNamesAndLocality(t *testing.T) {
	if (Uniform{}).Name() != "uniform" || !(Uniform{}).LocalWeights() {
		t.Error("Uniform accessors")
	}
	if (UniformDeletions{}).Name() != "uniform-deletions" || !(UniformDeletions{}).LocalWeights() {
		t.Error("UniformDeletions accessors")
	}
	tr := NewTrust(big.NewRat(1, 2))
	if tr.Name() != "trust" || !tr.LocalWeights() {
		t.Error("Trust accessors")
	}
	if (WeightFunc{}).Name() != "weight-func" {
		t.Error("WeightFunc default name")
	}
}
