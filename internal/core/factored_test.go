package core_test

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/generators"
	"repro/internal/logic"
	"repro/internal/markov"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/repair"
)

func keyEGD() *constraint.Set {
	x, y, z := v("x"), v("y"), v("z")
	return constraint.NewSet(constraint.MustEGD(
		[]logic.Atom{at("R", x, y), at("R", x, z)},
		y, z,
	))
}

// multiComponentInstance: three independent key conflicts plus clean facts.
func multiComponentInstance(t *testing.T) *repair.Instance {
	t.Helper()
	d := relation.FromFacts(
		f("R", "a", "1"), f("R", "a", "2"),
		f("R", "b", "1"), f("R", "b", "2"),
		f("R", "c", "1"), f("R", "c", "2"),
		f("R", "clean1", "x"), f("R", "clean2", "y"),
	)
	return repair.MustInstance(d, keyEGD())
}

// TestFactoredMatchesMonolithic: the factorized repair distribution equals
// the monolithic chain's, repair by repair, under the uniform generator.
func TestFactoredMatchesMonolithic(t *testing.T) {
	inst := multiComponentInstance(t)
	fac, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatalf("ComputeFactored: %v", err)
	}
	if len(fac.Components) != 3 {
		t.Fatalf("components = %d, want 3", len(fac.Components))
	}
	if fac.Untouched.Size() != 2 {
		t.Errorf("untouched = %d facts, want 2", fac.Untouched.Size())
	}
	if fac.NumRepairs().Int64() != 27 {
		t.Errorf("NumRepairs = %s, want 27 (3 per component)", fac.NumRepairs())
	}

	mono, err := core.Compute(inst, generators.Uniform{}, markov.ExploreOptions{MaxStates: 2_000_000})
	if err != nil {
		t.Fatalf("monolithic Compute: %v", err)
	}
	if len(mono.Repairs) != 27 {
		t.Fatalf("monolithic repairs = %d, want 27", len(mono.Repairs))
	}

	// Compare every repair probability through the factored CP of the
	// boolean query "this repair's facts" — simpler: per-fact marginals and
	// a full-tuple query.
	x, y := v("x"), v("y")
	q := fo.MustQuery("All", []logic.Term{x, y}, fo.Atom{A: at("R", x, y)})
	for _, fact := range inst.Initial().Facts() {
		got := fac.FactProbability(fact)
		want := mono.CP(q, fact.ArgNames()[:2])
		if got.Cmp(want) != 0 {
			t.Errorf("fact %s: factored %s vs monolithic %s", fact, got.RatString(), want.RatString())
		}
	}

	// And exact CP through enumeration of the product distribution.
	cp, err := fac.CP(q, []string{"a", "1"})
	if err != nil {
		t.Fatalf("factored CP: %v", err)
	}
	if want := mono.CP(q, []string{"a", "1"}); cp.Cmp(want) != 0 {
		t.Errorf("CP(a,1): factored %s vs monolithic %s", cp.RatString(), want.RatString())
	}
}

// TestFactoredTrustGenerator: factorization is exact for the (local) trust
// generator with asymmetric levels.
func TestFactoredTrustGenerator(t *testing.T) {
	d := relation.FromFacts(
		f("R", "a", "1"), f("R", "a", "2"),
		f("R", "b", "1"), f("R", "b", "2"),
	)
	inst := repair.MustInstance(d, keyEGD())
	gen := generators.NewTrust(big.NewRat(1, 2))
	if err := gen.Set(f("R", "a", "1"), big.NewRat(9, 10)); err != nil {
		t.Fatal(err)
	}
	if err := gen.Set(f("R", "a", "2"), big.NewRat(1, 10)); err != nil {
		t.Fatal(err)
	}

	fac, err := core.ComputeFactored(inst, gen, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mono, err := core.Compute(inst, gen, markov.ExploreOptions{MaxStates: 100000})
	if err != nil {
		t.Fatal(err)
	}
	x, y := v("x"), v("y")
	q := fo.MustQuery("All", []logic.Term{x, y}, fo.Atom{A: at("R", x, y)})
	for _, fact := range inst.Initial().Facts() {
		got := fac.FactProbability(fact)
		want := mono.CP(q, fact.ArgNames()[:2])
		if got.Cmp(want) != 0 {
			t.Errorf("fact %s: factored %s vs monolithic %s", fact, got.RatString(), want.RatString())
		}
	}
}

// TestFactoredRejectsTGDs: factorization is only sound for deletion-only
// (EGD/DC) settings.
func TestFactoredRejectsTGDs(t *testing.T) {
	d := relation.FromFacts(f("R", "a"))
	tgd := constraint.MustTGD([]logic.Atom{at("R", v("x"))}, []logic.Atom{at("T", v("x"))})
	inst := repair.MustInstance(d, constraint.NewSet(tgd))
	if _, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{}); err == nil {
		t.Error("TGD instance must be rejected")
	}
}

// TestFactoredSampleRepair: sampled repairs are consistent supersets of the
// untouched core, and the empirical fact marginal converges to the exact
// one.
func TestFactoredSampleRepair(t *testing.T) {
	inst := multiComponentInstance(t)
	fac, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	target := f("R", "a", "1")
	exact := prob.Float(fac.FactProbability(target))
	hits, n := 0, 3000
	for i := 0; i < n; i++ {
		db := fac.SampleRepair(rng)
		if !inst.Sigma().Satisfied(db) {
			t.Fatal("sampled repair is inconsistent")
		}
		if !fac.Untouched.SubsetOf(db) {
			t.Fatal("sampled repair lost untouched facts")
		}
		if db.Contains(target) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if diff := got - exact; diff > 0.03 || diff < -0.03 {
		t.Errorf("empirical marginal %.3f vs exact %.3f", got, exact)
	}
}

// TestFactoredEstimateCP: the factored sampler honors the additive bound on
// a larger instance (30 components — monolithic exact would need 3^30
// sequences).
func TestFactoredEstimateCP(t *testing.T) {
	d := relation.NewDatabase()
	for i := 0; i < 30; i++ {
		k := string(rune('a' + i%26))
		d.Insert(f("R", k+"x", "1"))
		d.Insert(f("R", k+"x", "2"))
	}
	inst := repair.MustInstance(d, keyEGD())
	fac, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fac.Components) != 26 && len(fac.Components) != 30 {
		// 26 letters: some keys repeat; just require >1 component.
		if len(fac.Components) < 2 {
			t.Fatalf("components = %d", len(fac.Components))
		}
	}
	x, y := v("x"), v("y")
	q := fo.MustQuery("All", []logic.Term{x, y}, fo.Atom{A: at("R", x, y)})
	target := fac.Components[0].Facts[0]
	exact := prob.Float(fac.FactProbability(target))
	got, err := fac.EstimateCP(q, target.ArgNames()[:2], 0.1, 0.1, 77)
	if err != nil {
		t.Fatal(err)
	}
	if diff := got - exact; diff > 0.1 || diff < -0.1 {
		t.Errorf("estimate %.3f vs exact %.3f beyond ε", got, exact)
	}
}

// TestFactoredCPBudget: atomic queries route around the over-budget product
// enumeration (they reduce to fact marginals), while genuinely non-atomic
// queries fail with ErrEnumerationBudget — and CPOrEstimate then falls back
// to sampling.
func TestFactoredCPBudget(t *testing.T) {
	d := relation.NewDatabase()
	for i := 0; i < 26; i++ {
		k := string(rune('a' + i))
		d.Insert(f("R", k, "1"))
		d.Insert(f("R", k, "2"))
	}
	inst := repair.MustInstance(d, keyEGD())
	fac, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 3^26 > 2^20 repairs, but the query is atomic: CP must succeed exactly
	// and agree with the per-component marginal.
	x, y := v("x"), v("y")
	q := fo.MustQuery("All", []logic.Term{x, y}, fo.Atom{A: at("R", x, y)})
	cp, err := fac.CP(q, []string{"a", "1"})
	if err != nil {
		t.Fatalf("atomic CP over a huge repair space must not enumerate: %v", err)
	}
	if want := fac.FactProbability(f("R", "a", "1")); cp.Cmp(want) != 0 {
		t.Errorf("atomic CP = %s, FactProbability = %s", cp.RatString(), want.RatString())
	}
	if !prob.InUnit(cp) || cp.Sign() == 0 {
		t.Errorf("CP = %s outside (0,1]", cp.RatString())
	}
	// An atomic query over a constant that was never interned is exactly 0.
	if p, err := fac.CP(q, []string{"no-such-constant", "1"}); err != nil || p.Sign() != 0 {
		t.Errorf("CP over unknown constant = %v, %v; want exact 0", p, err)
	}

	// A non-atomic query (conjunction) has no marginal shortcut: the product
	// enumeration must refuse with the sentinel error.
	x2, y2 := v("x2"), v("y2")
	conj := fo.MustQuery("Pair", []logic.Term{x, y, x2, y2}, fo.And{
		L: fo.Atom{A: at("R", x, y)},
		R: fo.Atom{A: at("R", x2, y2)},
	})
	if _, err := fac.CP(conj, []string{"a", "1", "b", "1"}); !errors.Is(err, core.ErrEnumerationBudget) {
		t.Errorf("non-atomic over-budget CP: err = %v, want ErrEnumerationBudget", err)
	}

	// CPOrEstimate degrades to the (ε,δ) sampler on the same query.
	p, exact, err := fac.CPOrEstimate(conj, []string{"a", "1", "b", "1"}, 0.1, 0.1, 42)
	if err != nil {
		t.Fatalf("CPOrEstimate: %v", err)
	}
	if exact {
		t.Error("CPOrEstimate must report the sampled route for an over-budget non-atomic query")
	}
	// True value: both R(a,·) and R(b,·) components keep the named fact with
	// probability FactProbability; independence gives the product.
	want := prob.Float(fac.FactProbability(f("R", "a", "1"))) * prob.Float(fac.FactProbability(f("R", "b", "1")))
	if got := prob.Float(p); got-want > 0.1 || want-got > 0.1 {
		t.Errorf("sampled CP %.3f vs true %.3f beyond ε", got, want)
	}

	// Fact marginals remain exact and cheap throughout.
	if p := fac.FactProbability(f("R", "a", "1")); !prob.InUnit(p) || p.Sign() == 0 {
		t.Errorf("FactProbability = %s", p.RatString())
	}
}

// TestFactoredPreferenceNotLocal: the preference generator lacks the
// LocalWeights marker, and the type system enforces it — documented here by
// asserting the interface is not satisfied.
func TestFactoredPreferenceNotLocal(t *testing.T) {
	var g interface{} = generators.Preference{}
	if _, ok := g.(core.LocalGenerator); ok {
		t.Error("Preference must NOT satisfy LocalGenerator: its weights depend on the whole database")
	}
	var u interface{} = generators.Uniform{}
	if _, ok := u.(core.LocalGenerator); !ok {
		t.Error("Uniform must satisfy LocalGenerator")
	}
}
