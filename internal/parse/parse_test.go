package parse

import (
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/relation"
)

func TestParseDatabase(t *testing.T) {
	d, err := Database(`
		# product preferences
		Pref(a, b). Pref(a, c).
		R("quoted constant", 42).
		% alternative comment style
		S(x_1).
	`)
	if err != nil {
		t.Fatalf("Database: %v", err)
	}
	if d.Size() != 4 {
		t.Fatalf("parsed %d facts, want 4: %s", d.Size(), d)
	}
	if !d.Contains(relation.NewFact("R", "quoted constant", "42")) {
		t.Error("quoted and numeric constants mishandled")
	}
	if !d.Contains(relation.NewFact("S", "x_1")) {
		t.Error("lowercase identifier must be a constant")
	}
}

func TestParseDatabaseErrors(t *testing.T) {
	cases := []string{
		"Pref(a, b)",   // missing dot
		"Pref(X, b).",  // variable in fact
		"Pref().",      // empty args
		"Pref(a,, b).", // stray comma
		"Pref(a b).",   // missing comma
		"123(a).",      // number as predicate
	}
	for _, src := range cases {
		if _, err := Database(src); err == nil {
			t.Errorf("Database(%q) must fail", src)
		}
	}
}

func TestParseConstraints(t *testing.T) {
	set, err := Constraints(`
		R(X, Y), R(X, Z) -> Y = Z.
		R(X, Y) -> exists Z: S(Z, X).
		T(X, Y) -> R(X, Y).
		Pref(X, Y), Pref(Y, X) -> false.
		!(Q(X, X)).
	`)
	if err != nil {
		t.Fatalf("Constraints: %v", err)
	}
	if set.Len() != 5 {
		t.Fatalf("parsed %d constraints, want 5", set.Len())
	}
	kinds := []constraint.Kind{
		constraint.EGD, constraint.TGD, constraint.TGD, constraint.DC, constraint.DC,
	}
	for i, c := range set.All() {
		if c.Kind() != kinds[i] {
			t.Errorf("constraint %d has kind %s, want %s", i, c.Kind(), kinds[i])
		}
	}
}

func TestParseImplicitExistential(t *testing.T) {
	set, err := Constraints(`R(X, Y) -> S(Y, Z).`)
	if err != nil {
		t.Fatalf("Constraints: %v", err)
	}
	c := set.All()[0]
	if c.Kind() != constraint.TGD {
		t.Fatalf("kind = %s", c.Kind())
	}
	ex := c.ExistentialVars()
	if len(ex) != 1 || ex[0].Name() != "Z" {
		t.Errorf("existential vars = %v, want [Z]", ex)
	}
}

func TestParseConstraintErrors(t *testing.T) {
	cases := []string{
		"R(X, Y) -> Y = Z, S(X).",    // EGD with trailing junk
		"R(X, Y) -> exists X: S(X).", // existential var occurs in body
		"R(X, Y) -> exists Z: S(Y).", // declared existential missing from head
		"-> S(X).",                   // empty body
		"R(X, Y) ->",                 // empty head
		"R(X, Y) -> Y = Y.",          // trivial EGD
		"R(X) -> X = Y.",             // equality var outside body
		"!(R(X)",                     // unclosed denial
	}
	for _, src := range cases {
		if _, err := Constraints(src); err == nil {
			t.Errorf("Constraints(%q) must fail", src)
		}
	}
}

func TestParseQuery(t *testing.T) {
	q, err := Query(`Q(X) := forall Y: (Pref(X, Y) | X = Y).`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if q.Name != "Q" || q.Arity() != 1 {
		t.Errorf("query = %s", q)
	}
	d, err := Database(`Pref(a, b). Pref(a, c). Pref(a, a).`)
	if err != nil {
		t.Fatal(err)
	}
	ans := q.Answers(d)
	if len(ans) != 1 || ans[0][0] != "a" {
		t.Errorf("Answers = %v, want [[a]]", ans)
	}
}

func TestParseQueryConnectives(t *testing.T) {
	q, err := Query(`Q(X, Y) := E(X, Y) & !(X = Y) & exists Z: (E(Y, Z) -> E(X, Z)).`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if got := len(q.Out); got != 2 {
		t.Errorf("arity = %d", got)
	}
}

func TestParseQueryPrecedence(t *testing.T) {
	// A & B | C parses as (A & B) | C.
	q, err := Query(`Q() := exists X: (P(X) & Q(X) | R(X)).`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	want := "Q() := exists X: ((P(X) & Q(X)) | R(X))"
	if got := q.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestParseQueryNeq(t *testing.T) {
	q, err := Query(`Q(X, Y) := E(X, Y) & X != Y.`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	d, _ := Database(`E(a, a). E(a, b).`)
	ans := q.Answers(d)
	if len(ans) != 1 || ans[0][0] != "a" || ans[0][1] != "b" {
		t.Errorf("Answers = %v", ans)
	}
}

func TestParseQueryErrors(t *testing.T) {
	cases := []string{
		`Q(X) :=`,               // missing formula
		`Q(X) := Pref(X, Y).`,   // free variable Y not in output
		`Q(a) := Pref(a, a).`,   // constant output
		`Q(X) := forall: P(X).`, // missing binder variable
		`Q(X) := P(X) extra`,    // trailing junk
		`Q(X) := (P(X).`,        // unbalanced paren
		`Q(X) Pref(X, X).`,      // missing :=
	}
	for _, src := range cases {
		if _, err := Query(src); err == nil {
			t.Errorf("Query(%q) must fail", src)
		}
	}
}

func TestParseErrorPositions(t *testing.T) {
	_, err := Database("Pref(a, b).\nPref(a b).")
	if err == nil {
		t.Fatal("expected error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if perr.Line != 2 {
		t.Errorf("error line = %d, want 2", perr.Line)
	}
	if !strings.Contains(perr.Error(), "line 2") {
		t.Errorf("message %q lacks position", perr.Error())
	}
}

// Round-trips: printing and re-parsing is the identity.

func TestConstraintRoundTrip(t *testing.T) {
	srcs := []string{
		"R(X, Y), R(X, Z) -> Y = Z.",
		"R(X, Y) -> exists Z: S(Z, X).",
		"T(X, Y) -> R(X, Y).",
		"Pref(X, Y), Pref(Y, X) -> false.",
	}
	for _, src := range srcs {
		set1, err := Constraints(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := set1.String()
		set2, err := Constraints(printed)
		if err != nil {
			t.Fatalf("re-parse %q: %v", printed, err)
		}
		if set1.String() != set2.String() {
			t.Errorf("round trip changed %q to %q", set1.String(), set2.String())
		}
	}
}

func TestQueryRoundTrip(t *testing.T) {
	srcs := []string{
		`Q(X) := forall Y: (Pref(X, Y) | X = Y).`,
		`Q(X, Y) := E(X, Y) & !(X = Y).`,
		`B() := exists X: P(X).`,
		`Q(X) := P(X) <-> R(X).`,
	}
	for _, src := range srcs {
		q1, err := Query(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		q2, err := Query(q1.String() + ".")
		if err != nil {
			t.Fatalf("re-parse %q: %v", q1.String(), err)
		}
		if q1.String() != q2.String() {
			t.Errorf("round trip changed %q to %q", q1.String(), q2.String())
		}
	}
}

func TestDatabaseRoundTrip(t *testing.T) {
	src := `Pref(a, b). R("has space", 42). S(z).`
	d1, err := Database(src)
	if err != nil {
		t.Fatal(err)
	}
	// Render facts back to text and re-parse.
	var b strings.Builder
	for _, fact := range d1.Facts() {
		b.WriteString(fact.String())
		b.WriteString(".\n")
	}
	d2, err := Database(b.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", b.String(), err)
	}
	if !d1.Equal(d2) {
		t.Errorf("round trip changed database:\n%s\n%s", d1, d2)
	}
}
