package main

// E1–E5 and E11–E12: the paper's worked examples reproduced exactly.

import (
	"fmt"
	"math/big"

	"repro/internal/abc"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/generators"
	"repro/internal/logic"
	"repro/internal/markov"
	"repro/internal/ops"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/repair"
)

func v(n string) logic.Term                    { return logic.Var(n) }
func at(p string, ts ...logic.Term) logic.Atom { return logic.NewAtom(p, ts...) }
func fact(p string, args ...string) relation.Fact {
	return relation.NewFact(p, args...)
}

// preferenceInstance is the running example of Section 3.
func preferenceInstance() *repair.Instance {
	d := relation.FromFacts(
		fact("Pref", "a", "b"), fact("Pref", "a", "c"), fact("Pref", "a", "d"),
		fact("Pref", "b", "a"), fact("Pref", "b", "d"), fact("Pref", "c", "a"),
	)
	dc := constraint.MustDC([]logic.Atom{at("Pref", v("x"), v("y")), at("Pref", v("y"), v("x"))})
	return repair.MustInstance(d, constraint.NewSet(dc))
}

func mostPreferredQuery() *fo.Query {
	x, y := v("x"), v("y")
	return fo.MustQuery("Q", []logic.Term{x}, fo.ForAll{
		Vars: []logic.Term{y},
		F:    fo.Or{L: fo.Atom{A: at("Pref", x, y)}, R: fo.Eq{L: x, R: y}},
	})
}

func init() {
	register("E1", "introduction trust example (0.375 / 0.375 / 0.25)", func() error {
		d := relation.FromFacts(fact("R", "a", "b"), fact("R", "a", "c"))
		eta := constraint.MustEGD(
			[]logic.Atom{at("R", v("x"), v("y")), at("R", v("x"), v("z"))},
			v("y"), v("z"),
		)
		inst := repair.MustInstance(d, constraint.NewSet(eta))
		gen := generators.NewTrust(big.NewRat(1, 2))
		root := inst.Root()
		exts := root.Extensions()
		ps, err := gen.Transitions(root, exts)
		if err != nil {
			return err
		}
		fmt.Println("D = {R(a,b), R(a,c)}, key R[1], both sources 50% reliable:")
		for i, op := range exts {
			fmt.Printf("  P(%-22s) = %s\n", op, prob.Format(ps[i]))
		}
		fmt.Println("paper: remove either single fact with 0.375, both with 0.25")
		return nil
	})

	register("E2", "Section 3 Markov chain figure (edge probabilities)", func() error {
		inst := preferenceInstance()
		tree, err := markov.BuildTree(inst, generators.Preference{}, markov.ExploreOptions{MaxStates: 1000})
		if err != nil {
			return err
		}
		fmt.Print(tree.Render())
		fmt.Printf("states: %d (paper's figure: 13)\n", tree.CountStates())
		return nil
	})

	register("E3", "Example 6: operational repairs with exact probabilities", func() error {
		inst := preferenceInstance()
		sem, err := core.Compute(inst, generators.Preference{}, markov.ExploreOptions{MaxStates: 1000})
		if err != nil {
			return err
		}
		full := inst.Initial()
		for _, r := range sem.Repairs {
			removed, _ := full.SymmetricDiff(r.DB)
			fmt.Printf("  D − %-26s : P = %s\n", relation.FactsString(removed), prob.Format(r.P))
		}
		fmt.Println("paper: D−{(b,a),(c,a)} has probability 3/9·3/4 + 3/9·3/5 = 0.45")
		return nil
	})

	register("E4", "Example 7: OCA vs empty ABC certain answers", func() error {
		inst := preferenceInstance()
		q := mostPreferredQuery()
		sem, err := core.Compute(inst, generators.Preference{}, markov.ExploreOptions{MaxStates: 1000})
		if err != nil {
			return err
		}
		fmt.Print(sem.OCA(q))
		certain, err := abc.CertainAnswers(inst.Initial(), inst.Sigma(), q)
		if err != nil {
			return err
		}
		fmt.Printf("ABC certain answers: %d tuple(s) (paper: empty)\n", len(certain))
		fmt.Println("paper: OCA = {(a, 0.45)}")
		return nil
	})

	register("E5", "Proposition 4: ABC ⊆ operational repairs (uniform chain)", func() error {
		instances := []*relation.Database{
			relation.FromFacts(fact("R", "a", "b"), fact("R", "a", "c")),
			relation.FromFacts(fact("R", "a", "b"), fact("R", "a", "c"), fact("R", "a", "d")),
			relation.FromFacts(
				fact("R", "a", "b"), fact("R", "a", "c"),
				fact("R", "q", "r"), fact("R", "q", "s")),
		}
		eta := func() *constraint.Set {
			return constraint.NewSet(constraint.MustEGD(
				[]logic.Atom{at("R", v("x"), v("y")), at("R", v("x"), v("z"))},
				v("y"), v("z")))
		}
		for i, d := range instances {
			sigma := eta()
			abcRepairs, err := abc.Repairs(d, sigma)
			if err != nil {
				return err
			}
			inst := repair.MustInstance(d, sigma)
			sem, err := core.Compute(inst, generators.Uniform{}, markov.ExploreOptions{MaxStates: 500000})
			if err != nil {
				return err
			}
			operational := map[string]bool{}
			for _, r := range sem.Repairs {
				operational[r.DB.Key()] = true
			}
			included := 0
			for _, r := range abcRepairs {
				if operational[r.Key()] {
					included++
				}
			}
			fmt.Printf("  instance %d: |ABC| = %d, |operational| = %d, ABC∩operational = %d → inclusion %v\n",
				i+1, len(abcRepairs), len(sem.Repairs), included, included == len(abcRepairs))
		}
		return nil
	})

	register("E11", "Examples 1-3: justified operations and sequence conditions", func() error {
		d := relation.FromFacts(fact("R", "a", "b"), fact("R", "a", "c"), fact("T", "a", "b"))
		sigma := constraint.MustTGD(
			[]logic.Atom{at("R", v("x"), v("y"))},
			[]logic.Atom{at("S", v("x"), v("y"), v("z"))},
		)
		eta := constraint.MustEGD(
			[]logic.Atom{at("R", v("x"), v("y")), at("R", v("x"), v("z"))},
			v("y"), v("z"),
		)
		set := constraint.NewSet(sigma, eta)

		fmt.Println("Example 1 (D = {R(a,b), R(a,c), T(a,b)}, σ: R→∃S, η: key):")
		checks := []struct {
			op   ops.Op
			want bool
		}{
			{ops.Insert(fact("S", "a", "b", "c"), fact("S", "a", "a", "a")), false},
			{ops.Delete(fact("R", "a", "b"), fact("T", "a", "b")), false},
			{ops.Insert(fact("S", "a", "b", "c")), true},
			{ops.Delete(fact("R", "a", "b")), true},
			{ops.Delete(fact("R", "a", "c")), true},
			{ops.Delete(fact("R", "a", "b"), fact("R", "a", "c")), true},
		}
		for _, c := range checks {
			got := ops.IsJustified(c.op, d, set)
			status := "✓"
			if got != c.want {
				status = "✗ MISMATCH"
			}
			fmt.Printf("  justified(%-34s) = %-5v (paper: %v) %s\n", c.op, got, c.want, status)
		}

		inst := repair.MustInstance(d, set)
		fmt.Println("Example 3: +S(a,b,c), -R(a,b) violates global justification:")
		err := repair.Validate(inst, []ops.Op{
			ops.Insert(fact("S", "a", "b", "c")),
			ops.Delete(fact("R", "a", "b")),
		})
		fmt.Printf("  validator says: %v\n", err)
		return nil
	})

	register("E12", "TPC: tuple probability checking", func() error {
		inst := preferenceInstance()
		q := mostPreferredQuery()
		sem, err := core.Compute(inst, generators.Preference{}, markov.ExploreOptions{MaxStates: 1000})
		if err != nil {
			return err
		}
		for _, tuple := range [][]string{{"a"}, {"b"}, {"c"}, {"d"}} {
			fmt.Printf("  TPC(%v) = %v (CP = %s)\n", tuple, sem.TPC(q, tuple), prob.Format(sem.CP(q, tuple)))
		}
		return nil
	})
}
