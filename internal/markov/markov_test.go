package markov_test

import (
	"math/big"
	"testing"

	"repro/internal/constraint"
	"repro/internal/logic"
	"repro/internal/markov"
	"repro/internal/ops"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/repair"
)

func v(n string) logic.Term                    { return logic.Var(n) }
func at(p string, ts ...logic.Term) logic.Atom { return logic.NewAtom(p, ts...) }
func f(p string, args ...string) relation.Fact { return relation.NewFact(p, args...) }

// twoConflictInstance has two independent key conflicts (18 absorbing
// states under the uniform chain).
func twoConflictInstance(t *testing.T) *repair.Instance {
	t.Helper()
	d := relation.FromFacts(
		f("R", "a", "1"), f("R", "a", "2"),
		f("R", "b", "1"), f("R", "b", "2"),
	)
	eta := constraint.MustEGD(
		[]logic.Atom{at("R", v("x"), v("y")), at("R", v("x"), v("z"))},
		v("y"), v("z"),
	)
	return repair.MustInstance(d, constraint.NewSet(eta))
}

// uniformGen mirrors generators.Uniform locally to keep this package's
// tests free of a dependency cycle with its consumers.
type uniformGen struct{}

func (uniformGen) Name() string { return "uniform-local" }
func (uniformGen) Transitions(_ *repair.State, exts []ops.Op) ([]*big.Rat, error) {
	out := make([]*big.Rat, len(exts))
	for i := range out {
		out[i] = big.NewRat(1, int64(len(exts)))
	}
	return out, nil
}

func TestStepAbsorbingState(t *testing.T) {
	inst := twoConflictInstance(t)
	s := inst.Root()
	// Drive to an absorbing state manually.
	for len(s.Extensions()) > 0 {
		s = s.Child(s.Extensions()[0])
	}
	edges, err := markov.Step(uniformGen{}, s)
	if err != nil {
		t.Fatal(err)
	}
	if edges != nil {
		t.Errorf("absorbing state has %d edges, want none", len(edges))
	}
}

func TestExploreLeafCount(t *testing.T) {
	inst := twoConflictInstance(t)
	leaves, err := markov.Explore(inst, uniformGen{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 6 first ops × 3 ops for the remaining conflict = 18 leaves.
	if len(leaves) != 18 {
		t.Fatalf("leaves = %d, want 18", len(leaves))
	}
	total := prob.Zero()
	for _, l := range leaves {
		total.Add(total, l.Pi)
		if !l.State.IsComplete() {
			t.Errorf("leaf %s is not complete", l.State)
		}
	}
	if !prob.IsOne(total) {
		t.Errorf("hitting mass = %s, want 1 (Proposition 3)", total.RatString())
	}
}

func TestExploreRespectsZeroEdges(t *testing.T) {
	inst := twoConflictInstance(t)
	// A generator that zeroes pair deletions: only singleton repairs remain.
	gen := singlesOnly{}
	leaves, err := markov.Explore(inst, gen, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 4 first singles × 2 singles for the other conflict = 8 leaves.
	if len(leaves) != 8 {
		t.Fatalf("leaves = %d, want 8", len(leaves))
	}
	for _, l := range leaves {
		for _, op := range l.State.Ops() {
			if op.Size() != 1 {
				t.Errorf("pair deletion %s leaked into the support", op)
			}
		}
	}
}

type singlesOnly struct{}

func (singlesOnly) Name() string { return "singles-only" }
func (singlesOnly) Transitions(_ *repair.State, exts []ops.Op) ([]*big.Rat, error) {
	var n int64
	for _, op := range exts {
		if op.Size() == 1 {
			n++
		}
	}
	out := make([]*big.Rat, len(exts))
	for i, op := range exts {
		if op.Size() == 1 {
			out[i] = big.NewRat(1, n)
		} else {
			out[i] = new(big.Rat)
		}
	}
	return out, nil
}

func TestHittingDistributionKeys(t *testing.T) {
	inst := twoConflictInstance(t)
	dist, err := markov.HittingDistribution(inst, uniformGen{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 18 {
		t.Fatalf("distribution over %d states, want 18", len(dist))
	}
	for k, leaf := range dist {
		if leaf.State.Key() != k {
			t.Errorf("distribution key mismatch: %q vs %q", k, leaf.State.Key())
		}
	}
}

func TestBuildTreeBudget(t *testing.T) {
	inst := twoConflictInstance(t)
	if _, err := markov.BuildTree(inst, uniformGen{}, markov.ExploreOptions{MaxStates: 3}); err == nil {
		t.Error("expected ErrStateBudget")
	}
	tree, err := markov.BuildTree(inst, uniformGen{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tree.Leaves()); got != 18 {
		t.Errorf("tree leaves = %d, want 18", got)
	}
	// CountStates = 1 root + 6 + 18.
	if got := tree.CountStates(); got != 25 {
		t.Errorf("CountStates = %d, want 25", got)
	}
}

// TestPathProbabilityIsEdgeProduct: each leaf's Pi equals the product of
// edge probabilities along its path.
func TestPathProbabilityIsEdgeProduct(t *testing.T) {
	inst := twoConflictInstance(t)
	tree, err := markov.BuildTree(inst, uniformGen{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *markov.Node, acc *big.Rat)
	walk = func(n *markov.Node, acc *big.Rat) {
		if n.Pi.Cmp(acc) != 0 {
			t.Errorf("state %s: Pi = %s, product = %s", n.State, n.Pi.RatString(), acc.RatString())
		}
		for _, c := range n.Children {
			walk(c.Node, new(big.Rat).Mul(acc, c.P))
		}
	}
	walk(tree, prob.One())
}
