package serve_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/generators"
	"repro/internal/relation"
	"repro/internal/serve"
	"repro/internal/workload"
)

// stripShards zeroes the per-shard breakdown of a Stats, whose layout —
// unlike every other field — legitimately depends on the shard count.
func stripShards(st serve.Stats) serve.Stats {
	st.Shards = nil
	return st
}

// TestServeShardedEquivalence: the same ingest stream served with Shards =
// 1, 2, 3, 5, 8 publishes final snapshots whose projections — component
// structure, exact distributions, every fact marginal — and whose stats
// (up to the per-shard breakdown) are bit-identical, and identical to a
// from-scratch recompute. The shard attributions themselves must cover the
// partition and the cumulative recompute count exactly.
func TestServeShardedEquivalence(t *testing.T) {
	db, sigma, ops := workload.ServeMix(mixConfig(80, 0.4, 31))
	var want snapProj
	var wantStats serve.Stats
	for _, shards := range []int{1, 2, 3, 5, 8} {
		s, err := serve.New(db, sigma, generators.Uniform{}, serve.Options{Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		last := runMix(t, s, ops)
		got := projectSnap(last)
		st := last.Stats()
		if len(st.Shards) != shards {
			t.Fatalf("shards=%d: stats report %d shards", shards, len(st.Shards))
		}
		islands, vios, recomputed := 0, 0, uint64(0)
		for _, sh := range st.Shards {
			islands += sh.Islands
			vios += sh.Violations
			recomputed += sh.Recomputed
		}
		if islands != st.Components || vios != st.Violations || recomputed != st.CumRecomputed {
			t.Fatalf("shards=%d: shard attribution does not cover the snapshot: %d/%d islands, %d/%d violations, %d/%d recomputes",
				shards, islands, st.Components, vios, st.Violations, recomputed, st.CumRecomputed)
		}
		s.Close()
		if shards == 1 {
			want = got
			wantStats = stripShards(st)
			wantComps, wantMarg := freshProj(t, last.DB, sigma, 0)
			if !reflect.DeepEqual(got.Components, wantComps) {
				t.Fatal("shards=1: served components differ from from-scratch recompute")
			}
			if !reflect.DeepEqual(got.Marginals, wantMarg) {
				t.Fatal("shards=1: served marginals differ from from-scratch recompute")
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: projection differs from shards=1", shards)
		}
		if !reflect.DeepEqual(stripShards(st), wantStats) {
			t.Fatalf("shards=%d: stats differ from shards=1:\n  got  %+v\n  want %+v", shards, stripShards(st), wantStats)
		}
	}
}

// TestServeConcurrentShardedStreams: several goroutines drive disjoint
// randomized ingest/query streams into one server concurrently — so
// publications coalesce arbitrarily and islands explore on racing shards —
// and the final snapshot must still match a from-scratch recompute of the
// deterministic final database, for every shard count.
func TestServeConcurrentShardedStreams(t *testing.T) {
	const streams = 4
	cfg := mixConfig(40, 0.5, 47)
	for _, shards := range []int{1, 3, 8} {
		db, sigma, streamOps := workload.ServeStreams(cfg, streams)
		s, err := serve.New(db, sigma, generators.Uniform{}, serve.Options{Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		var wg sync.WaitGroup
		errc := make(chan error, streams)
		for _, ops := range streamOps {
			wg.Add(1)
			go func(ops []workload.ServeOp) {
				defer wg.Done()
				for _, op := range ops {
					if !op.Ingest {
						s.FactProbability(op.Fact)
						continue
					}
					if _, err := s.Ingest([]serve.Op{{Fact: op.Fact, Insert: op.Insert}}); err != nil {
						errc <- fmt.Errorf("ingest %v: %w", op, err)
						return
					}
				}
			}(ops)
		}
		wg.Wait()
		select {
		case err := <-errc:
			t.Fatalf("shards=%d: %v", shards, err)
		default:
		}

		// The streams' islands are disjoint, so the final database is the
		// same whatever the interleaving: replay them sequentially.
		shadow := db.Clone()
		for _, ops := range streamOps {
			for _, op := range ops {
				if !op.Ingest {
					continue
				}
				if op.Insert {
					shadow.Insert(op.Fact)
				} else {
					shadow.Delete(op.Fact)
				}
			}
		}
		final := s.Snapshot()
		if !final.DB.Equal(shadow) {
			t.Fatalf("shards=%d: final database diverged from the deterministic interleaving", shards)
		}
		wantComps, wantMarg := freshProj(t, shadow, sigma, 0)
		if !reflect.DeepEqual(projectComponents(final.Fac), wantComps) {
			t.Fatalf("shards=%d: concurrent serving diverged from from-scratch components", shards)
		}
		var gotMarg []string
		facts := shadow.Facts()
		relation.SortFacts(facts)
		for _, f := range facts {
			gotMarg = append(gotMarg, final.Fac.FactProbability(f).RatString())
		}
		if !reflect.DeepEqual(gotMarg, wantMarg) {
			t.Fatalf("shards=%d: concurrent serving diverged from from-scratch marginals", shards)
		}
		s.Close()
	}
}

// TestServeReplayRebuildsSnapshot: a server with an op log, shut down and
// restarted from the same base corpus, must republish the exact
// pre-shutdown snapshot — stats deep-equal, projection deep-equal — keep
// serving ingests afterwards, and survive a second restart the same way.
func TestServeReplayRebuildsSnapshot(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "ingest.oplog")
	opts := serve.Options{Shards: 3, LogPath: logPath}
	db, sigma, ops := workload.ServeMix(mixConfig(60, 0.5, 53))

	s, err := serve.New(db, sigma, generators.Uniform{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	last := runMix(t, s, ops)
	wantStats := s.Stats()
	wantProj := projectSnap(last)
	if wantStats.Version == 0 {
		t.Fatal("stream published nothing; the replay check is vacuous")
	}
	s.Close()

	s2, err := serve.New(db, sigma, generators.Uniform{}, opts)
	if err != nil {
		t.Fatalf("restart with replay: %v", err)
	}
	if got := s2.Stats(); !reflect.DeepEqual(got, wantStats) {
		t.Fatalf("replayed stats diverge:\n  got  %+v\n  want %+v", got, wantStats)
	}
	if got := projectSnap(s2.Snapshot()); !reflect.DeepEqual(got, wantProj) {
		t.Fatal("replayed snapshot projection diverges from the pre-shutdown snapshot")
	}

	// The replayed server keeps serving and logging: one more effective
	// ingest, then a second restart must land one version further.
	var toggle serve.Op
	toggle.Fact = relation.NewFact("E", "i00000000_n001", "i00000000_n002")
	toggle.Insert = !s2.Snapshot().DB.Contains(toggle.Fact)
	sn, err := s2.Ingest([]serve.Op{toggle})
	if err != nil {
		t.Fatalf("post-replay ingest: %v", err)
	}
	if sn.Version() != wantStats.Version+1 {
		t.Fatalf("post-replay ingest published version %d, want %d", sn.Version(), wantStats.Version+1)
	}
	wantStats2 := s2.Stats()
	s2.Close()

	s3, err := serve.New(db, sigma, generators.Uniform{}, opts)
	if err != nil {
		t.Fatalf("second restart: %v", err)
	}
	defer s3.Close()
	if got := s3.Stats(); !reflect.DeepEqual(got, wantStats2) {
		t.Fatalf("second replay diverges:\n  got  %+v\n  want %+v", got, wantStats2)
	}
}

// TestServeReplayLogRobustness: a torn trailing record (a crash mid-write)
// is dropped and truncated away on restart, while a complete but
// undecodable record is corruption and must fail the restart loudly.
func TestServeReplayLogRobustness(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "ingest.oplog")
	opts := serve.Options{Shards: 2, LogPath: logPath}
	db, sigma, ops := workload.ServeMix(mixConfig(30, 0.6, 61))

	s, err := serve.New(db, sigma, generators.Uniform{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	runMix(t, s, ops)
	wantStats := s.Stats()
	s.Close()

	// Torn tail: half a record, no terminating newline.
	appendRaw(t, logPath, `{"ops":[{"p":"E","a":["x`)
	s2, err := serve.New(db, sigma, generators.Uniform{}, opts)
	if err != nil {
		t.Fatalf("restart over a torn tail: %v", err)
	}
	if got := s2.Stats(); !reflect.DeepEqual(got, wantStats) {
		t.Fatalf("torn tail changed the replayed stats:\n  got  %+v\n  want %+v", got, wantStats)
	}
	s2.Close()
	if data, err := os.ReadFile(logPath); err != nil || strings.Contains(string(data), `["x`) {
		t.Fatalf("torn tail not truncated away (err %v)", err)
	}

	// A complete garbage line is corruption, not a tail: refuse to serve.
	appendRaw(t, logPath, "not json\n")
	if _, err := serve.New(db, sigma, generators.Uniform{}, opts); err == nil {
		t.Fatal("restart over a corrupt record must fail")
	} else if !strings.Contains(err.Error(), "op log") {
		t.Fatalf("corrupt-record error does not name the log: %v", err)
	}
}

func appendRaw(t *testing.T, path, chunk string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(chunk); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeIngestCloseRace races many Ingest callers against Close: every
// caller must get either a published snapshot or ErrClosed — never a hang,
// never a lost reply — and the watchdog turns a deadlock into a failure
// instead of a test timeout.
func TestServeIngestCloseRace(t *testing.T) {
	db, sigma := workload.Islands(workload.IslandsConfig{Islands: 8, FactsPerIsland: 3, IsoRatio: 1, Seed: 71})
	s, err := serve.New(db, sigma, generators.Uniform{}, serve.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	var wg sync.WaitGroup
	errc := make(chan error, callers)
	start := make(chan struct{})
	for w := 0; w < callers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			f := relation.NewFact("E", fmt.Sprintf("i%08d_n001", w), fmt.Sprintf("i%08d_n002", w))
			insert := false
			for i := 0; ; i++ {
				sn, err := s.Ingest([]serve.Op{{Fact: f, Insert: insert}})
				insert = !insert
				if err != nil {
					if err != serve.ErrClosed {
						errc <- fmt.Errorf("caller %d: %v", w, err)
					}
					return
				}
				if sn == nil {
					errc <- fmt.Errorf("caller %d: nil snapshot without error", w)
					return
				}
			}
		}(w)
	}
	close(start)
	time.Sleep(10 * time.Millisecond)
	s.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("an Ingest caller hung across Close")
	}
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if s.Snapshot() == nil {
		t.Fatal("queries must survive Close")
	}
}

// TestHTTPIngestVsShutdown races in-flight HTTP ingests against Server.Close:
// every request must complete with 200 (published before the close won) or
// 503 (ErrClosed surfaced), never hang or fail transport-level.
func TestHTTPIngestVsShutdown(t *testing.T) {
	s, ts := httpFixture(t)
	const callers = 6
	var wg sync.WaitGroup
	errc := make(chan error, callers)
	start := make(chan struct{})
	for w := 0; w < callers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			fact := fmt.Sprintf("E(race_%d_a, race_%d_b)", w, w)
			for i := 0; i < 50; i++ {
				req := serve.IngestRequest{Insert: []string{fact}}
				if i%2 == 1 {
					req = serve.IngestRequest{Delete: []string{fact}}
				}
				status, err := postStatus(ts.URL+"/v1/ingest", req)
				if err != nil {
					errc <- fmt.Errorf("caller %d: %v", w, err)
					return
				}
				if status != 200 && status != 503 {
					errc <- fmt.Errorf("caller %d: HTTP %d, want 200 or 503", w, status)
					return
				}
				if status == 503 {
					return
				}
			}
		}(w)
	}
	close(start)
	time.Sleep(5 * time.Millisecond)
	s.Close()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// After Close every ingest is a clean 503 and queries still answer.
	status, err := postStatus(ts.URL+"/v1/ingest", serve.IngestRequest{Insert: []string{"E(post, close)"}})
	if err != nil || status != 503 {
		t.Fatalf("ingest after Close: HTTP %d, %v; want 503", status, err)
	}
	var fr serve.FactResponse
	postJSON(t, ts.URL+"/v1/fact", serve.FactRequest{Fact: "E(ghost, town)"}, 200, &fr)
}
