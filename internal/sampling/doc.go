// Package sampling implements the randomized approximation machinery of
// Section 5 of the paper — and its extension to the sequence-uniform
// semantics of PODS 2022.
//
// # Key types
//
//   - Walk: one random walk down the repairing Markov chain, stepping with
//     the generator's own probabilities. Generators exposing integer
//     weights (markov.IntWeighter) step without big.Rat arithmetic,
//     bit-identical to the exact path.
//   - Estimator: n-walk estimation. For the walk-induced mode (the zero
//     value of Mode) it is the additive-error scheme of Theorem 9:
//     n = ⌈ln(2/δ)/(2ε²)⌉ samples put every tuple estimate within ε of
//     CP(t̄) with probability ≥ 1−δ (Hoeffding), for non-failing
//     generators.
//   - Estimator.Mode = markov.SequenceUniform (uniform.go): estimates the
//     uniform-over-sequences semantics. Collapsible chains get exact
//     uniform draws via count-guided walks over a markov.SequenceDAG (the
//     Hoeffding guarantee carries over); everything else falls back to
//     self-normalized importance sampling from the uniform-support walk
//     (no finite-sample guarantee; Run.Weighted and Run.ESS report it).
//   - Run / TupleEstimate: results, sorted lexicographically by tuple.
//
// # Invariants (the determinism contract)
//
//   - Every walk's RNG is a pure function of (Seed, walk index) via the
//     O(1)-seeding prob.SplitMix, never of the worker that runs it; tallies
//     merge by summation (walk mode) or in walk-index order (uniform
//     mode, where weighted sums are floating-point). A Run is therefore
//     bit-identical for every Workers value.
//   - For failing chains the package reports the conditional ratio
//     estimate alongside the raw counts but attaches no guarantee to it —
//     approximating the ratio is the paper's stated open problem.
//
// # Neighbors
//
// Below: internal/markov (Step, IntWeighter, SequenceDAG),
// internal/repair, internal/prob (SplitMix, Hoeffding bound),
// internal/fo. Sibling: internal/core computes the same two semantics
// exactly; the equivalence tests bound this package's estimates by those
// exact values.
package sampling
