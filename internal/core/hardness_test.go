package core_test

// Proposition 7 states that TPC — deciding CP(t̄) > 0 — is NP-hard. This
// file makes the reduction executable in the canonical direction: graph
// 3-colorability reduces to TPC under keys and the uniform chain. Every
// node gets three conflicting Color facts (one per color); key repairs keep
// at most one color per node; and the query "the surviving coloring is
// total and proper" has positive probability iff the graph is 3-colorable.
// The engine thus *decides 3-colorability* on small graphs, exhibiting the
// hardness structurally (the paper's Theorem 6 then rules out an FPRAS).

import (
	"fmt"
	"testing"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/generators"
	"repro/internal/logic"
	"repro/internal/markov"
	"repro/internal/relation"
	"repro/internal/repair"
)

// colorInstance encodes a graph: Node/Edge facts are clean; Color(u, c)
// facts for all three colors violate the key Color[1].
func colorInstance(t *testing.T, nodes []string, edges [][2]string) *repair.Instance {
	t.Helper()
	d := relation.NewDatabase()
	for _, n := range nodes {
		d.Insert(f("Node", n))
		for _, c := range []string{"red", "green", "blue"} {
			d.Insert(f("Color", n, c))
		}
	}
	for _, e := range edges {
		d.Insert(f("Edge", e[0], e[1]))
	}
	x, y, z := v("x"), v("y"), v("z")
	key := constraint.MustEGD(
		[]logic.Atom{at("Color", x, y), at("Color", x, z)},
		y, z,
	)
	return repair.MustInstance(d, constraint.NewSet(key))
}

// properColoringQuery: every node has a color, and no edge is
// monochromatic.
func properColoringQuery() *fo.Query {
	x, y, c := v("x"), v("y"), v("c")
	total := fo.ForAll{
		Vars: []logic.Term{x},
		F: fo.Implies{
			L: fo.Atom{A: at("Node", x)},
			R: fo.Exists{Vars: []logic.Term{c}, F: fo.Atom{A: at("Color", x, c)}},
		},
	}
	proper := fo.Not{F: fo.Exists{
		Vars: []logic.Term{x, y, c},
		F: fo.Conj(
			fo.Atom{A: at("Edge", x, y)},
			fo.Atom{A: at("Color", x, c)},
			fo.Atom{A: at("Color", y, c)},
		),
	}}
	return fo.MustQuery("ProperColoring", nil, fo.And{L: total, R: proper})
}

// tpcDecides3Colorability runs the reduction via the factored exact
// engine (per-node color conflicts are independent components).
func tpcDecides3Colorability(t *testing.T, nodes []string, edges [][2]string) bool {
	t.Helper()
	inst := colorInstance(t, nodes, edges)
	fac, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fac.Components) != len(nodes) {
		t.Fatalf("components = %d, want one per node (%d)", len(fac.Components), len(nodes))
	}
	cp, err := fac.CP(properColoringQuery(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return cp.Sign() > 0
}

func TestTPCTriangleIs3Colorable(t *testing.T) {
	nodes := []string{"u", "v", "w"}
	edges := [][2]string{{"u", "v"}, {"v", "w"}, {"w", "u"}}
	if !tpcDecides3Colorability(t, nodes, edges) {
		t.Error("the triangle is 3-colorable; TPC must be positive")
	}
}

func TestTPCK4IsNot3Colorable(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	var edges [][2]string
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			edges = append(edges, [2]string{nodes[i], nodes[j]})
		}
	}
	if tpcDecides3Colorability(t, nodes, edges) {
		t.Error("K4 is not 3-colorable; TPC must be zero")
	}
}

func TestTPCPathAndStar(t *testing.T) {
	// A path and a star are 2-colorable, hence 3-colorable.
	if !tpcDecides3Colorability(t,
		[]string{"p1", "p2", "p3", "p4"},
		[][2]string{{"p1", "p2"}, {"p2", "p3"}, {"p3", "p4"}}) {
		t.Error("paths are 3-colorable")
	}
	if !tpcDecides3Colorability(t,
		[]string{"hub", "s1", "s2", "s3"},
		[][2]string{{"hub", "s1"}, {"hub", "s2"}, {"hub", "s3"}}) {
		t.Error("stars are 3-colorable")
	}
}

// TestTPCK4PlusIsolatedNode: adding an isolated node to K4 keeps it
// non-3-colorable (the reduction must not be fooled by extra components).
func TestTPCK4PlusIsolatedNode(t *testing.T) {
	nodes := []string{"a", "b", "c", "d", "lonely"}
	var edges [][2]string
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, [2]string{nodes[i], nodes[j]})
		}
	}
	if tpcDecides3Colorability(t, nodes, edges) {
		t.Error("K4 plus an isolated node is still not 3-colorable")
	}
}

// TestTPCMonolithicAgreesOnTriangle cross-checks the factored reduction
// against the monolithic chain on the smallest graph where that is still
// feasible (a single edge: 2 nodes).
func TestTPCMonolithicAgreesOnEdge(t *testing.T) {
	inst := colorInstance(t, []string{"u", "v"}, [][2]string{{"u", "v"}})
	q := properColoringQuery()

	sem, err := core.Compute(inst, generators.Uniform{}, markov.ExploreOptions{MaxStates: 3_000_000})
	if err != nil {
		t.Fatal(err)
	}
	mono := sem.CP(q, nil)

	fac, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	facCP, err := fac.CP(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mono.Cmp(facCP) != 0 {
		t.Errorf("monolithic CP %s vs factored CP %s", mono.RatString(), facCP.RatString())
	}
	if mono.Sign() <= 0 {
		t.Error("a single edge is 3-colorable")
	}
	// Sanity: with 3 colors and 2 adjacent nodes, of the 4×4 repair
	// combinations, the proper total colorings are 3·2 = 6.
	want := fmt.Sprintf("%d/%d", 6, 16)
	if mono.RatString() != want {
		t.Logf("note: CP = %s (6 proper of 16 equiprobable outcomes would be %s; repair weights differ per outcome)",
			mono.RatString(), want)
	}
}
