package intern

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Sym is a dense identifier for an interned string. The zero Sym is the
// empty string, so zero values of types embedding a Sym behave like their
// string-based predecessors.
type Sym uint32

// NullPrefix marks labeled nulls among constants (see ops.NullPrefix, which
// re-exports it). Whether a symbol is a null is computed once at intern
// time so the per-fact null test is a flag lookup.
const NullPrefix = "null_"

type state struct {
	names []string
	flags []uint8
}

const flagNull uint8 = 1

var (
	mu   sync.RWMutex
	ids  = map[string]Sym{"": 0}
	cur  atomic.Pointer[state]
	base = state{names: []string{""}, flags: []uint8{0}}
)

func init() { cur.Store(&base) }

// S interns a string and returns its symbol, creating it if needed.
func S(s string) Sym {
	mu.RLock()
	id, ok := ids[s]
	mu.RUnlock()
	if ok {
		return id
	}
	mu.Lock()
	defer mu.Unlock()
	if id, ok := ids[s]; ok {
		return id
	}
	st := cur.Load()
	id = Sym(len(st.names))
	var fl uint8
	if strings.HasPrefix(s, NullPrefix) {
		fl |= flagNull
	}
	next := &state{names: append(st.names, s), flags: append(st.flags, fl)}
	ids[s] = id
	cur.Store(next)
	return id
}

// Lookup returns the symbol of a string without interning it; ok is false
// when the string has never been interned (and therefore cannot equal any
// interned symbol).
func Lookup(s string) (Sym, bool) {
	mu.RLock()
	id, ok := ids[s]
	mu.RUnlock()
	return id, ok
}

// Name returns the string of a symbol. Symbols are only produced by S, so
// out-of-range values indicate corruption; they render as "" rather than
// panicking so diagnostics can still print.
func Name(s Sym) string {
	st := cur.Load()
	if int(s) < len(st.names) {
		return st.names[s]
	}
	return ""
}

// String makes Sym render as its interned string in fmt verbs.
func (s Sym) String() string { return Name(s) }

// IsNull reports whether the symbol is a labeled null (its name carries
// NullPrefix); the flag is computed at intern time.
func IsNull(s Sym) bool {
	st := cur.Load()
	return int(s) < len(st.flags) && st.flags[s]&flagNull != 0
}

// Count reports the number of interned symbols (including the empty
// string), for diagnostics and tests.
func Count() int { return len(cur.Load().names) }

// SortSyms sorts symbols by their interned names (the order string-keyed
// code produced), not by numeric value.
func SortSyms(syms []Sym) {
	st := cur.Load()
	name := func(s Sym) string {
		if int(s) < len(st.names) {
			return st.names[s]
		}
		return ""
	}
	sort.Slice(syms, func(i, j int) bool { return name(syms[i]) < name(syms[j]) })
}

// Names maps a symbol slice to its strings.
func Names(syms []Sym) []string {
	out := make([]string, len(syms))
	for i, s := range syms {
		out[i] = Name(s)
	}
	return out
}
