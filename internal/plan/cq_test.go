package plan

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
)

// answersViaAlgebra evaluates a plan and returns its distinct rows as
// sorted name tuples — the reference semantics AsQuery must reproduce.
func answersViaAlgebra(t *testing.T, p Plan, cat *Catalog) [][]string {
	t.Helper()
	out, err := p.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	rows := out.Sorted()
	var dedup [][]string
	for _, r := range rows {
		if len(dedup) == 0 || slices.Compare(dedup[len(dedup)-1], r) != 0 {
			dedup = append(dedup, r)
		}
	}
	if dedup == nil {
		dedup = [][]string{}
	}
	return dedup
}

func TestAsQueryJoinPlan(t *testing.T) {
	cat := sampleCatalog()
	p := Distinct{Input: Project{
		Input: Join{L: Scan{Table: "orders"}, R: Scan{Table: "customers"}},
		Cols:  []string{"region"},
	}}
	q, ok := AsQuery(p, cat)
	if !ok {
		t.Fatal("join plan should compile")
	}
	got := q.Answers(cat.DB())
	want := answersViaAlgebra(t, p, cat)
	if !slices.EqualFunc(got, want, slices.Equal) {
		t.Errorf("CQ answers %v != algebra answers %v", got, want)
	}
}

func TestAsQuerySelectConstant(t *testing.T) {
	cat := sampleCatalog()
	p := Distinct{Input: Project{
		Input: Select{
			Input: Join{L: Scan{Table: "orders"}, R: Scan{Table: "customers"}},
			Cond:  ColEqVal{Col: "region", Op: "=", Val: "north"},
		},
		Cols: []string{"oid"},
	}}
	q, ok := AsQuery(p, cat)
	if !ok {
		t.Fatal("constant-select plan should compile")
	}
	got := q.Answers(cat.DB())
	want := answersViaAlgebra(t, p, cat)
	if !slices.EqualFunc(got, want, slices.Equal) {
		t.Errorf("CQ answers %v != algebra answers %v", got, want)
	}
}

func TestAsQueryRejectsNonCQ(t *testing.T) {
	cat := sampleCatalog()
	cases := []Plan{
		// No Distinct: bag semantics.
		Project{Input: Scan{Table: "orders"}, Cols: []string{"cust"}},
		// Order comparison.
		Distinct{Input: Select{Input: Scan{Table: "orders"}, Cond: ColEqVal{Col: "amount", Op: ">=", Val: "150"}}},
		// Disjunction.
		Distinct{Input: Select{Input: Scan{Table: "orders"}, Cond: OrCond{Conds: []Cond{
			ColEqVal{Col: "oid", Op: "=", Val: "o1"},
			ColEqVal{Col: "oid", Op: "=", Val: "o2"},
		}}}},
		// Difference, union, aggregation, literals.
		Distinct{Input: Diff{L: Scan{Table: "orders"}, R: Scan{Table: "orders"}}},
		Distinct{Input: Union{L: Scan{Table: "orders"}, R: Scan{Table: "orders"}}},
		Distinct{Input: GroupCount{Input: Scan{Table: "orders"}, By: []string{"cust"}}},
		Distinct{Input: Literal{Rel: NewRelation("lit", "x")}},
		// Projecting a constant-bound column.
		Distinct{Input: Project{
			Input: Select{Input: Scan{Table: "orders"}, Cond: ColEqVal{Col: "cust", Op: "=", Val: "c1"}},
			Cols:  []string{"cust"},
		}},
		// Projecting two unified columns.
		Distinct{Input: Project{
			Input: Select{Input: Scan{Table: "orders"}, Cond: ColEqCol{Col1: "oid", Op: "=", Col2: "cust"}},
			Cols:  []string{"oid", "cust"},
		}},
		// Unknown table.
		Distinct{Input: Scan{Table: "missing"}},
	}
	for i, p := range cases {
		if _, ok := AsQuery(p, cat); ok {
			t.Errorf("case %d (%s) must not compile", i, p)
		}
	}
}

func TestAsQueryColEqCol(t *testing.T) {
	cat := NewCatalog()
	cat.MustAddTable("E", "src", "dst").
		MustInsert("E", "a", "a").
		MustInsert("E", "a", "b").
		MustInsert("E", "b", "b")
	cat.Seal()
	p := Distinct{Input: Project{
		Input: Select{Input: Scan{Table: "E"}, Cond: ColEqCol{Col1: "src", Op: "=", Col2: "dst"}},
		Cols:  []string{"src"},
	}}
	q, ok := AsQuery(p, cat)
	if !ok {
		t.Fatal("self-loop plan should compile")
	}
	got := q.Answers(cat.DB())
	want := answersViaAlgebra(t, p, cat)
	if !slices.EqualFunc(got, want, slices.Equal) {
		t.Errorf("CQ answers %v != algebra answers %v", got, want)
	}
}

func TestAsQueryBooleanPlan(t *testing.T) {
	cat := sampleCatalog()
	p := Distinct{Input: Project{Input: Scan{Table: "orders"}, Cols: nil}}
	q, ok := AsQuery(p, cat)
	if !ok {
		t.Fatal("boolean plan should compile")
	}
	if !q.IsBoolean() {
		t.Errorf("compiled query %s should be boolean", q)
	}
	got := q.Answers(cat.DB())
	want := answersViaAlgebra(t, p, cat)
	if len(got) != len(want) {
		t.Errorf("CQ answers %v != algebra answers %v", got, want)
	}
}

// TestAsQueryEquivalenceRandomized cross-checks the compiled CQ against the
// algebra on randomized catalogs and randomized conjunctive plans: for
// every compiling plan, the fo evaluation over the indexed substrate must
// return exactly the algebra's distinct rows.
func TestAsQueryEquivalenceRandomized(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		cat := NewCatalog()
		// Two tables sharing the "b" column, so joins are meaningful.
		cat.MustAddTable(fmt.Sprintf("R%d", trial), "a", "b")
		cat.MustAddTable(fmt.Sprintf("S%d", trial), "b", "c")
		rName, sName := fmt.Sprintf("R%d", trial), fmt.Sprintf("S%d", trial)
		dom := []string{"u", "v", "w", "x"}
		for i := 0; i < 2+rng.Intn(8); i++ {
			cat.MustInsert(rName, dom[rng.Intn(len(dom))], dom[rng.Intn(len(dom))])
		}
		for i := 0; i < 2+rng.Intn(8); i++ {
			cat.MustInsert(sName, dom[rng.Intn(len(dom))], dom[rng.Intn(len(dom))])
		}
		cat.Seal()

		var inner Plan
		cols := []string{"a", "b"}
		switch rng.Intn(3) {
		case 0:
			inner = Scan{Table: rName}
		case 1:
			inner = Join{L: Scan{Table: rName}, R: Scan{Table: sName}}
			cols = []string{"a", "b", "c"}
		default:
			inner = Join{L: Scan{Table: sName}, R: Scan{Table: rName}}
			cols = []string{"b", "c", "a"}
		}
		if rng.Intn(2) == 0 {
			col := cols[rng.Intn(len(cols))]
			if rng.Intn(2) == 0 {
				inner = Select{Input: inner, Cond: ColEqVal{Col: col, Op: "=", Val: dom[rng.Intn(len(dom))]}}
				cols = remove(cols, col) // keep constant-bound columns unprojected
			} else if len(cols) >= 2 {
				other := cols[rng.Intn(len(cols))]
				if other != col {
					inner = Select{Input: inner, Cond: ColEqCol{Col1: col, Op: "=", Col2: other}}
					cols = remove(cols, other) // keep unified pairs single-projected
				}
			}
		}
		// Project a random non-empty subset in random order.
		rng.Shuffle(len(cols), func(i, j int) { cols[i], cols[j] = cols[j], cols[i] })
		if len(cols) > 1 && rng.Intn(2) == 0 {
			cols = cols[:1+rng.Intn(len(cols)-1)]
		}
		p := Distinct{Input: Project{Input: inner, Cols: cols}}

		q, ok := AsQuery(p, cat)
		if !ok {
			t.Fatalf("trial %d: plan %s should compile", trial, p)
		}
		got := q.Answers(cat.DB())
		want := answersViaAlgebra(t, p, cat)
		if !slices.EqualFunc(got, want, slices.Equal) {
			t.Errorf("trial %d: plan %s\nCQ answers      %v\nalgebra answers %v", trial, p, got, want)
		}
	}
}

func remove(cols []string, col string) []string {
	var out []string
	for _, c := range cols {
		if c != col {
			out = append(out, c)
		}
	}
	return out
}

// TestAsQueryProjectedAwayColumnsDoNotJoin is the regression test for a
// miscompilation: a column projected away before a join must not unify
// with a later scan's same-named column. Scan variables are scoped per
// scan instance, so the compiled CQ reproduces the algebra's cross
// product here instead of inventing a join on the dropped column.
func TestAsQueryProjectedAwayColumnsDoNotJoin(t *testing.T) {
	cat := NewCatalog()
	cat.MustAddTable("ord", "oid", "cust", "amount").
		MustInsert("ord", "o1", "c1", "100").
		MustInsert("ord", "o2", "c2", "200")
	cat.MustAddTable("refunds", "rid", "amount").
		MustInsert("refunds", "r1", "999")
	cat.Seal()
	p := Distinct{Input: Project{
		Input: Join{
			L: Project{Input: Scan{Table: "ord"}, Cols: []string{"cust"}},
			R: Scan{Table: "refunds"},
		},
		Cols: []string{"cust", "rid"},
	}}
	q, ok := AsQuery(p, cat)
	if !ok {
		t.Fatal("plan should compile")
	}
	got := q.Answers(cat.DB())
	want := answersViaAlgebra(t, p, cat)
	if len(want) != 2 {
		t.Fatalf("algebra reference = %v, want the 2-row cross product", want)
	}
	if !slices.EqualFunc(got, want, slices.Equal) {
		t.Errorf("CQ answers %v != algebra answers %v", got, want)
	}
}

// TestAsQuerySelfJoinOfProjections: two projections of the same table must
// compile to independent atoms, not be forced onto the same fact.
func TestAsQuerySelfJoinOfProjections(t *testing.T) {
	cat := NewCatalog()
	cat.MustAddTable("P", "a", "b").
		MustInsert("P", "x", "1").
		MustInsert("P", "y", "2")
	cat.Seal()
	// π[a](P) ⋈ π[b](P): no shared columns → cross product of the two
	// projections (4 rows), not the diagonal.
	p := Distinct{Input: Join{
		L: Project{Input: Scan{Table: "P"}, Cols: []string{"a"}},
		R: Project{Input: Scan{Table: "P"}, Cols: []string{"b"}},
	}}
	q, ok := AsQuery(p, cat)
	if !ok {
		t.Fatal("plan should compile")
	}
	got := q.Answers(cat.DB())
	want := answersViaAlgebra(t, p, cat)
	if len(want) != 4 {
		t.Fatalf("algebra reference = %v, want 4 rows", want)
	}
	if !slices.EqualFunc(got, want, slices.Equal) {
		t.Errorf("CQ answers %v != algebra answers %v", got, want)
	}
}
