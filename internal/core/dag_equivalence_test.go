package core_test

// The DAG-collapsed exact engine must be observationally identical to the
// sequence-tree engine wherever it engages: same repairs, same exact
// big.Rat probabilities, same sequence counts, same derived quantities
// (CP, OCA, Certain, AnswerCountDistribution). This suite checks that on
// randomized small instances across all three shipped memoryless
// generators, and proves the fallback: a history-dependent generator takes
// the tree path, and force-collapsing it would actually change the
// semantics (so the Markovian gate is load-bearing, not decorative).

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/generators"
	"repro/internal/logic"
	"repro/internal/markov"
	"repro/internal/ops"
	"repro/internal/prob"
	"repro/internal/repair"
	"repro/internal/workload"
)

// semanticsDiff compares every observable of two semantics exactly and
// returns a description of the first difference ("" when identical).
func semanticsDiff(a, b *core.Semantics) string {
	if a.AbsorbingStates != b.AbsorbingStates {
		return fmt.Sprintf("AbsorbingStates %d vs %d", a.AbsorbingStates, b.AbsorbingStates)
	}
	if a.FailingStates != b.FailingStates {
		return fmt.Sprintf("FailingStates %d vs %d", a.FailingStates, b.FailingStates)
	}
	if a.SuccessP.Cmp(b.SuccessP) != 0 {
		return fmt.Sprintf("SuccessP %s vs %s", a.SuccessP.RatString(), b.SuccessP.RatString())
	}
	if a.FailP.Cmp(b.FailP) != 0 {
		return fmt.Sprintf("FailP %s vs %s", a.FailP.RatString(), b.FailP.RatString())
	}
	if len(a.Repairs) != len(b.Repairs) {
		return fmt.Sprintf("%d vs %d repairs", len(a.Repairs), len(b.Repairs))
	}
	for i := range a.Repairs {
		ra, rb := a.Repairs[i], b.Repairs[i]
		if !ra.DB.Equal(rb.DB) {
			return fmt.Sprintf("repair %d: %s vs %s", i, ra.DB, rb.DB)
		}
		if ra.P.Cmp(rb.P) != 0 {
			return fmt.Sprintf("repair %d (%s): P %s vs %s", i, ra.DB, ra.P.RatString(), rb.P.RatString())
		}
		if ra.Sequences != rb.Sequences {
			return fmt.Sprintf("repair %d (%s): Sequences %d vs %d", i, ra.DB, ra.Sequences, rb.Sequences)
		}
	}
	return ""
}

// derivedDiff compares the query-level observables.
func derivedDiff(a, b *core.Semantics, q *fo.Query) string {
	oa, ob := a.OCA(q), b.OCA(q)
	if len(oa.Answers) != len(ob.Answers) {
		return fmt.Sprintf("OCA sizes %d vs %d", len(oa.Answers), len(ob.Answers))
	}
	for i := range oa.Answers {
		if fo.TupleKey(oa.Answers[i].Tuple) != fo.TupleKey(ob.Answers[i].Tuple) {
			return fmt.Sprintf("OCA tuple %d: %v vs %v", i, oa.Answers[i].Tuple, ob.Answers[i].Tuple)
		}
		if oa.Answers[i].P.Cmp(ob.Answers[i].P) != 0 {
			return fmt.Sprintf("OCA %v: P %s vs %s", oa.Answers[i].Tuple,
				oa.Answers[i].P.RatString(), ob.Answers[i].P.RatString())
		}
		if a.CP(q, oa.Answers[i].Tuple).Cmp(b.CP(q, ob.Answers[i].Tuple)) != 0 {
			return fmt.Sprintf("CP(%v) differs", oa.Answers[i].Tuple)
		}
	}
	ca, cb := a.Certain(q), b.Certain(q)
	if len(ca) != len(cb) {
		return fmt.Sprintf("Certain sizes %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if fo.TupleKey(ca[i]) != fo.TupleKey(cb[i]) {
			return fmt.Sprintf("Certain tuple %d: %v vs %v", i, ca[i], cb[i])
		}
	}
	da, db := a.AnswerCountDistribution(q), b.AnswerCountDistribution(q)
	if len(da.Points) != len(db.Points) {
		return fmt.Sprintf("count distribution sizes %d vs %d", len(da.Points), len(db.Points))
	}
	for i := range da.Points {
		if da.Points[i].Count != db.Points[i].Count || da.Points[i].P.Cmp(db.Points[i].P) != 0 {
			return fmt.Sprintf("count point %d: (%d, %s) vs (%d, %s)", i,
				da.Points[i].Count, da.Points[i].P.RatString(),
				db.Points[i].Count, db.Points[i].P.RatString())
		}
	}
	return ""
}

func keysEquivQuery() *fo.Query {
	x, y := logic.Var("x"), logic.Var("y")
	return fo.MustQuery("Keys", []logic.Term{x},
		fo.Exists{Vars: []logic.Term{y}, F: fo.Atom{A: logic.NewAtom("R", x, y)}})
}

func topPrefQuery() *fo.Query {
	x, y := logic.Var("x"), logic.Var("y")
	return fo.MustQuery("Top", []logic.Term{x}, fo.ForAll{
		Vars: []logic.Term{y},
		F:    fo.Or{L: fo.Atom{A: logic.NewAtom("Pref", x, y)}, R: fo.Eq{L: x, R: y}},
	})
}

// checkEngines runs all three engines on one instance and requires exact
// agreement (and that Compute actually routed to the DAG).
func checkEngines(t *testing.T, label string, inst *repair.Instance, g markov.Generator, q *fo.Query) {
	t.Helper()
	if !markov.Collapsible(inst, g) {
		t.Fatalf("%s: expected a collapsible chain", label)
	}
	opt := markov.ExploreOptions{MaxStates: 2_000_000}
	tree, err := core.ComputeTree(inst, g, opt)
	if err != nil {
		t.Fatalf("%s: tree: %v", label, err)
	}
	dag, err := core.ComputeDAG(inst, g, opt)
	if err != nil {
		t.Fatalf("%s: dag: %v", label, err)
	}
	routed, err := core.Compute(inst, g, opt)
	if err != nil {
		t.Fatalf("%s: routed: %v", label, err)
	}
	if d := semanticsDiff(tree, dag); d != "" {
		t.Fatalf("%s: tree vs DAG: %s", label, d)
	}
	if d := semanticsDiff(dag, routed); d != "" {
		t.Fatalf("%s: DAG vs routed Compute: %s", label, d)
	}
	if d := derivedDiff(tree, dag, q); d != "" {
		t.Fatalf("%s: derived observables: %s", label, d)
	}
}

// TestDAGEquivalenceUniformRandomKeys: randomized key-violation instances
// under the uniform generator.
func TestDAGEquivalenceUniformRandomKeys(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		cfg := workload.KeyConfig{
			Keys:       1 + rng.Intn(4),
			Violations: 1 + rng.Intn(3),
			Seed:       int64(trial),
		}
		d, sigma := workload.KeyViolations(cfg)
		inst := repair.MustInstance(d, sigma)
		checkEngines(t, fmt.Sprintf("uniform/trial=%d cfg=%+v", trial, cfg), inst, generators.Uniform{}, keysEquivQuery())
	}
}

// TestDAGEquivalencePreferenceRandom: randomized preference instances under
// the (memoryless but non-local) support generator of Example 4.
func TestDAGEquivalencePreferenceRandom(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(200 + trial)))
		cfg := workload.PreferenceConfig{
			Products:     3 + rng.Intn(3),
			Prefs:        5 + rng.Intn(4),
			ConflictRate: 0.5,
			Seed:         int64(trial),
		}
		d, sigma := workload.Preferences(cfg)
		inst := repair.MustInstance(d, sigma)
		if inst.Consistent() && trial > 0 {
			continue // nothing to repair; the consistent case is covered once
		}
		checkEngines(t, fmt.Sprintf("preference/trial=%d cfg=%+v", trial, cfg), inst, generators.Preference{}, topPrefQuery())
	}
}

// TestDAGEquivalenceTrustRandom: randomized key-violation instances under
// the trust generator with randomized trust levels.
func TestDAGEquivalenceTrustRandom(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(300 + trial)))
		cfg := workload.KeyConfig{
			Keys:       1 + rng.Intn(3),
			Violations: 1 + rng.Intn(3),
			Seed:       int64(10 + trial),
		}
		d, sigma := workload.KeyViolations(cfg)
		gen := generators.NewTrust(big.NewRat(1, 2))
		for _, fact := range d.Facts() {
			if err := gen.Set(fact, big.NewRat(int64(1+rng.Intn(4)), 5)); err != nil {
				t.Fatal(err)
			}
		}
		inst := repair.MustInstance(d, sigma)
		checkEngines(t, fmt.Sprintf("trust/trial=%d cfg=%+v", trial, cfg), inst, gen, keysEquivQuery())
	}
}

// TestDAGEquivalencePreferenceParallelStress widens the instance until the
// DAG frontiers exceed the inline-expansion threshold, so the preference
// generator's Transitions (violation involved-fact cache, index-bucket
// weight probes) run on the parallel worker-pool path; under -race this is
// the concurrency proof for the non-local generator. Worker counts must be
// bit-identical, and both must match the sequence tree.
func TestDAGEquivalencePreferenceParallelStress(t *testing.T) {
	d, sigma := workload.Preferences(workload.PreferenceConfig{
		Products: 12, Prefs: 18, ConflictRate: 0.5, Seed: 9,
	})
	inst := repair.MustInstance(d, sigma)
	gen := generators.Preference{}
	one, err := core.ComputeDAG(inst, gen, markov.ExploreOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := core.ComputeDAG(inst, gen, markov.ExploreOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if d := semanticsDiff(one, eight); d != "" {
		t.Fatalf("workers=1 vs workers=8: %s", d)
	}
	if len(one.Repairs) < 16 {
		t.Fatalf("instance too small to exercise the worker pool: %d repairs", len(one.Repairs))
	}
	tree, err := core.ComputeTree(inst, gen, markov.ExploreOptions{MaxStates: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if d := semanticsDiff(tree, eight); d != "" {
		t.Fatalf("tree vs parallel DAG: %s", d)
	}
}

// firstOpBiased is deliberately history-dependent: from the second step on,
// extensions whose size matches the sequence's FIRST operation weigh 3, the
// rest weigh 1. Two states with the same database but different first
// operations (e.g. one resolved a conflict with a pair deletion, the other
// with a singleton) transition differently, so collapsing by database would
// be unsound.
type firstOpBiased struct{}

func (firstOpBiased) Name() string { return "first-op-biased" }

func (firstOpBiased) Transitions(s *repair.State, exts []ops.Op) ([]*big.Rat, error) {
	if s.Len() == 0 {
		p := big.NewRat(1, int64(len(exts)))
		out := make([]*big.Rat, len(exts))
		for i := range out {
			out[i] = p
		}
		return out, nil
	}
	firstSize := s.Ops()[0].Size()
	weights := make([]*big.Rat, len(exts))
	for i, op := range exts {
		if op.Size() == firstSize {
			weights[i] = big.NewRat(3, 1)
		} else {
			weights[i] = big.NewRat(1, 1)
		}
	}
	return prob.Normalize(weights)
}

// lyingMarkovian wraps firstOpBiased with a false memorylessness claim, to
// demonstrate that the collapse is not a no-op on history-dependent chains.
type lyingMarkovian struct{ firstOpBiased }

func (lyingMarkovian) Memoryless() bool { return true }

// TestHistoryDependentGeneratorFallsBackToTree: the headline fallback
// proof. Compute on a non-Markovian generator must (a) refuse to collapse,
// (b) agree exactly with the tree engine, and (c) the refusal must matter —
// force-collapsing the same generator changes the distribution.
func TestHistoryDependentGeneratorFallsBackToTree(t *testing.T) {
	d, sigma := workload.KeyViolations(workload.KeyConfig{Keys: 3, Violations: 3, Seed: 7})
	inst := repair.MustInstance(d, sigma)
	gen := firstOpBiased{}

	if markov.Collapsible(inst, gen) {
		t.Fatal("history-dependent generator must not be collapsible")
	}
	if _, err := core.ComputeDAG(inst, gen, markov.ExploreOptions{}); !errors.Is(err, markov.ErrNotCollapsible) {
		t.Fatalf("ComputeDAG err = %v, want ErrNotCollapsible", err)
	}

	tree, err := core.ComputeTree(inst, gen, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	routed, err := core.Compute(inst, gen, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d := semanticsDiff(tree, routed); d != "" {
		t.Fatalf("fallback must reproduce the tree exactly: %s", d)
	}
	if d := derivedDiff(tree, routed, keysEquivQuery()); d != "" {
		t.Fatalf("fallback derived observables: %s", d)
	}

	// (c): merging states by database under this generator is wrong, so the
	// Markovian gate is doing real work.
	collapsed, err := core.ComputeDAG(inst, lyingMarkovian{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d := semanticsDiff(tree, collapsed); d == "" {
		t.Fatal("force-collapsing a history-dependent chain unexpectedly preserved the semantics; the fallback test is vacuous")
	}
}
