package relation

import (
	"repro/internal/intern"
	"repro/internal/logic"
)

// This file implements backtracking homomorphism search from conjunctions
// of atoms into databases. A homomorphism h maps the variables of the atoms
// to constants (it is the identity on constants) so that every atom lands on
// a fact of the database. Constraint satisfaction, violation detection, and
// conjunctive-query evaluation are all phrased in terms of this search.
//
// With interned symbols the inner unification loop is pure integer
// comparison: an atom argument either pins a constant symbol or binds a
// variable symbol to the candidate fact's argument symbol. Whenever an atom
// argument is already pinned — a constant, or a variable bound by the base
// substitution or an earlier join level — the candidate facts come from the
// snapshot's argument index (index.go) instead of a per-predicate scan, so
// a bound atom costs O(bucket) instead of O(|R|).

// ForEachHom enumerates the homomorphisms from atoms into d that extend
// base. The callback receives a substitution owned by the callee (clone it
// to retain); returning false stops the enumeration early. The base
// substitution itself is not modified. ForEachHom reports whether the
// enumeration ran to completion (i.e. was not stopped by the callback).
func ForEachHom(atoms []logic.Atom, d *Database, base logic.Subst, fn func(logic.Subst) bool) bool {
	if len(atoms) == 0 {
		return fn(base.Clone())
	}
	// A bulk-load-sized delta would drag every join level through linear
	// delta scans; fold it into an indexed snapshot first. Databases with
	// such deltas are single-owner by contract, and walk-sized deltas stay
	// far below the floor, so mid-walk states never pay the rebuild.
	if d.DeltaSize() >= autoSealFloor {
		d.Seal()
	}
	order := planOrder(atoms, d, base)
	cur := base.Clone()
	return matchFrom(order, 0, d, cur, fn)
}

// FindHoms returns all homomorphisms from atoms into d extending base
// (pass nil for an unconstrained search).
func FindHoms(atoms []logic.Atom, d *Database, base logic.Subst) []logic.Subst {
	if base == nil {
		base = logic.NewSubst()
	}
	var out []logic.Subst
	ForEachHom(atoms, d, base, func(h logic.Subst) bool {
		out = append(out, h.Clone())
		return true
	})
	return out
}

// HasHom reports whether at least one homomorphism from atoms into d
// extends base (pass nil for an unconstrained search).
func HasHom(atoms []logic.Atom, d *Database, base logic.Subst) bool {
	if base == nil {
		base = logic.NewSubst()
	}
	found := false
	ForEachHom(atoms, d, base, func(logic.Subst) bool {
		found = true
		return false
	})
	return found
}

// planOrder chooses an evaluation order for the atoms: at each step pick the
// atom with the smallest estimated number of candidate facts. The estimate
// is read off the argument indexes — the exact bucket size when the pinning
// symbol is known at planning time (a constant or a base binding), the mean
// bucket size for variables bound by earlier atoms in the order — so the
// greedy join ordering follows real cardinalities instead of a guess.
func planOrder(atoms []logic.Atom, d *Database, base logic.Subst) []logic.Atom {
	if len(atoms) <= 1 {
		return atoms
	}
	remaining := make([]logic.Atom, len(atoms))
	copy(remaining, atoms)
	bound := map[intern.Sym]bool{}
	for v := range base {
		bound[v] = true
	}
	order := make([]logic.Atom, 0, len(atoms))
	for len(remaining) > 0 {
		bestIdx, bestScore := 0, int(^uint(0)>>1)
		for i, a := range remaining {
			score := estimateCandidates(d, a, base, bound)
			if score < bestScore {
				bestScore, bestIdx = score, i
			}
		}
		chosen := remaining[bestIdx]
		order = append(order, chosen)
		for _, t := range chosen.Args {
			if t.IsVar() {
				bound[t.Sym()] = true
			}
		}
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return order
}

// estimateCandidates predicts how many facts the join level for atom a will
// enumerate: the smallest index bucket over its pinned argument positions,
// halved once per additional pinned position (each one filters further),
// and the full predicate cardinality when nothing is pinned.
func estimateCandidates(d *Database, a logic.Atom, base logic.Subst, bound map[intern.Sym]bool) int {
	best := d.PredCount(a.Pred)
	pinned := 0
	for j, t := range a.Args {
		var n int
		if c, ok := base.Val(t); ok {
			// The pinning symbol is known now: exact bucket cardinality.
			n = d.CountAt(a.Pred, j, c)
		} else if t.IsVar() && bound[t.Sym()] {
			// Bound by an earlier atom; the symbol is only known during
			// evaluation, so use the mean bucket size of the position.
			n = d.avgBucket(a.Pred, j)
		} else {
			continue
		}
		pinned++
		if n < best {
			best = n
		}
	}
	for k := 1; k < pinned; k++ {
		best /= 2
	}
	return best
}

// matchFrom extends cur to cover order[i:]; it reports whether enumeration
// completed without the callback requesting a stop.
func matchFrom(order []logic.Atom, i int, d *Database, cur logic.Subst, fn func(logic.Subst) bool) bool {
	if i == len(order) {
		return fn(cur)
	}
	atom := order[i]

	// Pick the candidate source: among the argument positions pinned by a
	// constant or an already-bound variable, the one with the smallest
	// snapshot bucket. With no pinned position the full per-predicate list
	// is scanned as before.
	bestPos, bestN := -1, int(^uint(0)>>1)
	var bestSym intern.Sym
	pi := d.snap.idx[atom.Pred]
	for j, t := range atom.Args {
		c, ok := cur.Val(t)
		if !ok {
			continue
		}
		n := 0
		if pi != nil && j < len(pi.pos) {
			n = len(pi.pos[j][c])
		}
		if n < bestN {
			bestN, bestPos, bestSym = n, j, c
		}
	}
	if bestPos < 0 {
		for _, f := range d.FactsByPred(atom.Pred) {
			if !unifyAndRecurse(order, i, d, cur, fn, f) {
				return false
			}
		}
		return true
	}
	return d.forEachMatch(atom.Pred, bestPos, bestSym, func(f Fact) bool {
		return unifyAndRecurse(order, i, d, cur, fn, f)
	})
}

// unifyAndRecurse unifies order[i] with the candidate fact under cur —
// tracking fresh bindings so they are undone on return — and recurses into
// the next join level on success. It reports whether enumeration should
// continue (false propagates a stop requested by the callback).
func unifyAndRecurse(order []logic.Atom, i int, d *Database, cur logic.Subst, fn func(logic.Subst) bool, f Fact) bool {
	atom := order[i]
	fargs := f.Args()
	if len(fargs) != len(atom.Args) {
		return true
	}
	var stackBuf [8]intern.Sym
	added := stackBuf[:0]
	ok := true
	for j, t := range atom.Args {
		c := fargs[j]
		if t.IsConst() {
			if t.Sym() != c {
				ok = false
				break
			}
			continue
		}
		v := t.Sym()
		if existing, bound := cur[v]; bound {
			if existing != c {
				ok = false
				break
			}
			continue
		}
		cur[v] = c
		added = append(added, v)
	}
	cont := true
	if ok {
		cont = matchFrom(order, i+1, d, cur, fn)
	}
	for _, v := range added {
		delete(cur, v)
	}
	return cont
}

// CountHoms returns the number of homomorphisms from atoms into d extending
// base; used by benchmarks and tests.
func CountHoms(atoms []logic.Atom, d *Database, base logic.Subst) int {
	if base == nil {
		base = logic.NewSubst()
	}
	n := 0
	ForEachHom(atoms, d, base, func(logic.Subst) bool {
		n++
		return true
	})
	return n
}
