package markov

import "fmt"

// SemanticsMode selects the probability distribution a repairing chain
// induces over its complete sequences — and therefore over operational
// repairs. The chain's *support* (which sequences exist at all) is fixed by
// the generator either way; the mode only decides how mass is spread over
// that support.
//
// Core re-exports this type as core.SemanticsMode; CLI surfaces accept it
// via ParseSemanticsMode ("walk" / "uniform").
type SemanticsMode int

const (
	// WalkInduced is the paper's semantics (PODS 2018): a complete sequence
	// s has probability π(s), the product of the generator's transition
	// probabilities along s. This is the distribution of the random walk
	// that starts at ε and steps by the generator.
	WalkInduced SemanticsMode = iota

	// SequenceUniform is the uniform operational semantics of Calautti,
	// Livshits, Pieris and Schneider (PODS 2022): every complete sequence in
	// the chain's support is equally likely, so a repair's probability is
	// (number of complete sequences producing it) / (total complete
	// sequences). For the uniform generator the support is *all* repairing
	// sequences, recovering the PODS '22 definition exactly; for a
	// restricted-support generator the mode is uniform over that support.
	SequenceUniform
)

// String implements fmt.Stringer with the CLI spellings.
func (m SemanticsMode) String() string {
	switch m {
	case WalkInduced:
		return "walk"
	case SequenceUniform:
		return "uniform"
	default:
		return fmt.Sprintf("SemanticsMode(%d)", int(m))
	}
}

// ParseSemanticsMode maps a CLI name to a mode. It accepts the canonical
// spellings "walk" and "uniform" plus the long forms "walk-induced" and
// "sequence-uniform".
func ParseSemanticsMode(s string) (SemanticsMode, error) {
	switch s {
	case "walk", "walk-induced", "":
		return WalkInduced, nil
	case "uniform", "sequence-uniform":
		return SequenceUniform, nil
	default:
		return 0, fmt.Errorf("markov: unknown semantics mode %q (want walk or uniform)", s)
	}
}
