package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/relation"
)

// This file is the server's persistence: an append-only ingest log that
// lets a restarted server rebuild the exact pre-shutdown snapshot instead
// of paying a cold full build on an aged base corpus.
//
// Format: one JSON record per '\n'-terminated line, each record the
// *applied* (change-effective) operations of one publication, in apply
// order. Logging effective ops per publication — rather than raw request
// batches — makes replay exactly reproduce the live run's publication
// boundaries: every record bumps the version by one and re-derives the
// same violations, partition churn, shard attribution, and counters, so
// the replayed server's Stats match the pre-shutdown Stats field for
// field (given the same base database and Options).
//
// Facts are stored as predicate + argument names, not interned ids or
// parser text, so records are immune to interning order and to constants
// the text syntax would need quoting for.
//
// Durability: each record is written with a single Write before the
// publication's snapshot is returned to callers, so a process crash loses
// at most the publication in flight. There is no fsync — an OS crash can
// lose the tail — and a torn final line (a crash mid-write) is detected
// on open, dropped, and truncated away before appending resumes. A
// complete-but-undecodable interior line is corruption and fails the
// open instead of being skipped.

type logRecord struct {
	Ops []logOp `json:"ops"`
}

type logOp struct {
	Pred   string   `json:"p"`
	Args   []string `json:"a"`
	Insert bool     `json:"ins,omitempty"`
}

// opLog is an open ingest log positioned for appending. The Server calls
// append under its writer lock, so opLog itself needs no synchronization.
type opLog struct {
	f *os.File
}

// openOpLog opens (creating if absent) the log at path, decodes every
// complete record into replayable batches, truncates a torn trailing
// line, and leaves the file positioned for appending.
func openOpLog(path string) (*opLog, [][]Op, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	var batches [][]Op
	valid := int64(0)
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// No terminating newline: records are written atomically with a
			// trailing '\n', so this is the torn tail of a crashed write.
			break
		}
		line := data[:nl]
		var rec logRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("op log %s: record %d: %w", path, len(batches)+1, err)
		}
		batch := make([]Op, len(rec.Ops))
		for i, op := range rec.Ops {
			batch[i] = Op{Fact: relation.NewFact(op.Pred, op.Args...), Insert: op.Insert}
		}
		batches = append(batches, batch)
		valid += int64(nl + 1)
		data = data[nl+1:]
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &opLog{f: f}, batches, nil
}

// append writes one publication's applied operations as a single record.
func (l *opLog) append(applied []core.FactDelta) error {
	rec := logRecord{Ops: make([]logOp, len(applied))}
	for i, op := range applied {
		rec.Ops[i] = logOp{Pred: op.Fact.PredName(), Args: op.Fact.ArgNames(), Insert: op.Insert}
	}
	buf, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = l.f.Write(buf)
	return err
}

func (l *opLog) Close() error { return l.f.Close() }
