package repair

import (
	"slices"
	"strings"

	"repro/internal/constraint"
	"repro/internal/intern"
	"repro/internal/ops"
	"repro/internal/relation"
)

// State is a repairing sequence s together with the database D^s_i it
// produces and the bookkeeping needed to check the conditions of
// Definition 4 incrementally. States form a tree: the root is the empty
// sequence ε and each child extends its parent by one operation.
//
// States are immutable after creation; Child produces new states. The
// database is copy-on-write (children share the instance's sealed snapshot
// and carry only their op deltas) and the bookkeeping sets are keyed by
// interned fact and violation ids, so spawning a child costs O(depth)
// small-integer map entries instead of O(|D|) string operations.
type State struct {
	inst       *Instance
	parent     *State
	op         ops.Op // operation that produced this state (zero at root)
	depth      int
	db         *relation.Database     // D^s_i, owned by this state
	violations *constraint.Violations // V(D^s_i, Σ)
	eliminated idSet                  // violations eliminated at steps ≤ i
	added      relation.FactSet       // facts inserted so far
	removed    relation.FactSet       // facts deleted so far
	extensions []ops.Op               // cached valid extensions (nil until computed)
	extsReady  bool
	// ids caches the sorted interned fact ids of db (nil until computed);
	// children derive theirs from the parent's by applying the op's fact
	// delta instead of re-enumerating the database (see FactIDs).
	ids []uint32
}

// idSet is a sorted set of violation ids; cloning is a single copy and
// membership a binary search, so per-child bookkeeping is O(depth) words.
type idSet []uint64

func (s idSet) has(id uint64) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == id
}

// insert adds id in place, keeping the slice sorted.
func (s idSet) insert(id uint64) idSet {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo] == id {
		return s
	}
	s = append(s, 0)
	copy(s[lo+1:], s[lo:])
	s[lo] = id
	return s
}

func (s idSet) clone(extra int) idSet {
	out := make(idSet, len(s), len(s)+extra)
	copy(out, s)
	return out
}

// Instance returns the repairing context.
func (s *State) Instance() *Instance { return s.inst }

// Len reports the length of the sequence.
func (s *State) Len() int { return s.depth }

// Ops returns the operations of the sequence in order.
func (s *State) Ops() []ops.Op {
	out := make([]ops.Op, s.depth)
	for cur := s; cur.parent != nil; cur = cur.parent {
		out[cur.depth-1] = cur.op
	}
	return out
}

// Result returns the database produced by the sequence; callers must not
// modify it (use Result().Clone() to mutate).
func (s *State) Result() *relation.Database { return s.db }

// FactIDs returns the interned ids of Result()'s facts, sorted ascending;
// the cached slice is shared and must not be modified. The first request on
// a lineage enumerates the database once; a descendant whose parent's slice
// is already cached derives its own incrementally — a deletion-only op is
// one binary search plus a memmove — so the exact engines key states by
// packed ids (relation.AppendIDKey) without per-state re-enumeration. The
// lazy fill makes FactIDs single-owner: concurrent use requires either
// warming the cache first or pre-seeding it with SetFactIDs (the DAG
// engines decode each new state's ids from its merge key into a per-level
// arena, so in that regime FactIDs never writes).
func (s *State) FactIDs() []uint32 {
	if s.ids == nil {
		if p := s.parent; p != nil && p.ids != nil {
			s.ids = childFactIDs(p.ids, s.op)
		} else {
			s.ids = s.db.AppendFactIDs(make([]uint32, 0, s.db.Size()))
		}
	}
	return s.ids
}

// SetFactIDs seeds the FactIDs cache. The slice must hold exactly the
// interned ids of Result()'s facts in ascending order, and ownership
// transfers to the state (the caller must not modify it afterwards). The
// DAG engines use this to share one id arena per frontier level instead of
// allocating a slice per state.
func (s *State) SetFactIDs(ids []uint32) { s.ids = ids }

// childFactIDs applies an op's fact delta to a parent's sorted id slice,
// returning a fresh sorted slice. Singleton deletions — the bulk of all
// repairing operations — are one binary search and two copies.
func childFactIDs(parent []uint32, op ops.Op) []uint32 {
	facts := op.Facts()
	if op.IsInsert() {
		out := make([]uint32, len(parent), len(parent)+len(facts))
		copy(out, parent)
		for _, f := range facts {
			id := f.ID()
			lo := idSearch(out, id)
			if lo < len(out) && out[lo] == id {
				continue
			}
			out = append(out, 0)
			copy(out[lo+1:], out[lo:])
			out[lo] = id
		}
		return out
	}
	if len(facts) == 1 {
		id := facts[0].ID()
		lo := idSearch(parent, id)
		if lo >= len(parent) || parent[lo] != id {
			return slices.Clone(parent)
		}
		out := make([]uint32, len(parent)-1)
		copy(out, parent[:lo])
		copy(out[lo:], parent[lo+1:])
		return out
	}
	var delBuf [8]uint32
	del := delBuf[:0]
	for _, f := range facts {
		del = append(del, f.ID())
	}
	slices.Sort(del)
	out := make([]uint32, 0, len(parent))
	di := 0
	for _, id := range parent {
		for di < len(del) && del[di] < id {
			di++
		}
		if di < len(del) && del[di] == id {
			di++
			continue
		}
		out = append(out, id)
	}
	return out
}

// AppendChildIDKey appends the packed binary database key
// (relation.AppendIDKey over the sorted fact ids) of the database that
// Child(op) would produce — without materializing the child state. The DAG
// engine uses this to compute every edge's merge key first and create a
// state only once per *distinct* child database. The deletion fast path is
// one binary search and two packed runs of the parent's cached ids.
func (s *State) AppendChildIDKey(dst []byte, op ops.Op) []byte {
	parent := s.FactIDs()
	facts := op.Facts()
	if op.IsInsert() {
		return relation.AppendIDKey(dst, childFactIDs(parent, op))
	}
	if len(facts) == 1 {
		id := facts[0].ID()
		lo := idSearch(parent, id)
		if lo >= len(parent) || parent[lo] != id {
			return relation.AppendIDKey(dst, parent)
		}
		dst = relation.AppendIDKey(dst, parent[:lo])
		return relation.AppendIDKey(dst, parent[lo+1:])
	}
	var delBuf [8]uint32
	del := delBuf[:0]
	for _, f := range facts {
		del = append(del, f.ID())
	}
	slices.Sort(del)
	di := 0
	for _, id := range parent {
		for di < len(del) && del[di] < id {
			di++
		}
		if di < len(del) && del[di] == id {
			di++
			continue
		}
		dst = append(dst, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
	}
	return dst
}

// idSearch returns the insertion position of id in the sorted slice
// (hand-rolled like idInSorted: the generic BinarySearch is not inlined).
func idSearch(ids []uint32, id uint32) int {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Violations returns V(D^s_i, Σ).
func (s *State) Violations() *constraint.Violations { return s.violations }

// Consistent reports whether the current database satisfies Σ.
func (s *State) Consistent() bool { return s.violations.Empty() }

// Key returns a canonical encoding of the sequence (the concatenated
// operation keys), identifying the Markov-chain state.
func (s *State) Key() string {
	opsList := s.Ops()
	parts := make([]string, len(opsList))
	for i, op := range opsList {
		parts[i] = op.Key()
	}
	return strings.Join(parts, "|")
}

// String renders the sequence like the paper's figures: "-(a,b), -(c,a)";
// the empty sequence prints as ε.
func (s *State) String() string {
	if s.depth == 0 {
		return "ε"
	}
	opsList := s.Ops()
	parts := make([]string, len(opsList))
	for i, op := range opsList {
		parts[i] = op.String()
	}
	return strings.Join(parts, ", ")
}

// Extensions returns every operation op such that s·op is a repairing
// sequence: op is justified at the current database, does not cancel an
// earlier operation, does not reintroduce an eliminated violation (req2),
// and keeps every earlier addition globally justified. The result is
// cached, deterministic, and canonically ordered.
func (s *State) Extensions() []ops.Op {
	if s.extsReady {
		return s.extensions
	}
	if s.parent == nil && s.inst != nil {
		// Root states are interchangeable — same sealed database, shared
		// violation set — so the enumeration is computed once per instance
		// and shared by every walk. Callers must not modify the slice
		// (which the cached contract already implies).
		s.inst.rootExtOnce.Do(func() {
			s.inst.rootExts = s.computeExtensions()
		})
		s.extensions, s.extsReady = s.inst.rootExts, true
		return s.extensions
	}
	s.extensions, s.extsReady = s.computeExtensions(), true
	return s.extensions
}

// computeExtensions enumerates the valid extensions from scratch.
func (s *State) computeExtensions() []ops.Op {
	// Without TGDs the operation space is deletion-only: every candidate
	// removes a non-empty subset of some current violation body, nothing is
	// ever inserted, and admissibility is automatic (no addition can be
	// cancelled, no deletion can reintroduce an EGD/DC violation). The
	// candidate set therefore depends only on the violation set — and since
	// EGD/DC violations can only disappear along a walk, a child's
	// extensions are exactly the parent's restricted to the surviving
	// violations. Filtering the parent's canonically sorted list preserves
	// order and dedup without re-sorting; this is the localization idea of
	// Section 6 applied to operation enumeration.
	deletionOnly := !s.inst.sigma.HasTGDs()
	if deletionOnly {
		if p := s.parent; p != nil && p.extsReady {
			return s.filterParentExtensions(p.extensions)
		}
	}

	// Gather candidates (possibly with duplicates when violation bodies
	// overlap), sort canonically, and dedup adjacent identical operations —
	// interned operations compare by pointer, so no per-state hash map is
	// needed.
	vios := s.violations.ByID()
	candidates := make([]ops.Op, 0, 4*len(vios))
	for _, v := range vios {
		candidates = append(candidates, s.inst.justifiedDeletions(v)...)
		if v.Constraint.Kind() == constraint.TGD {
			if s.inst.opts.NullInsertions {
				if op, ok := ops.NullAddition(v, s.db); ok {
					candidates = append(candidates, op)
				}
			} else {
				candidates = append(candidates, ops.JustifiedAdditions(v, s.db, s.inst.base)...)
			}
		}
	}
	ops.SortOps(candidates)

	var valid []ops.Op
	var prev ops.Op
	for i, op := range candidates {
		if i > 0 && op.Equal(prev) {
			continue
		}
		prev = op
		if deletionOnly || s.admissible(op) {
			valid = append(valid, op)
		}
	}
	return valid
}

// filterParentExtensions derives a deletion-only state's extensions from
// its parent's: the parent operations whose fact sets still lie inside
// some surviving violation body (every justified deletion is a non-empty
// body subset, and EGD/DC violations only ever disappear along a walk), in
// the parent's canonical order. Singleton deletions — the bulk of the
// candidates — are decided by one binary search of the sorted union of
// surviving body fact ids; larger deletions scan the (few, tiny) bodies.
func (s *State) filterParentExtensions(parent []ops.Op) []ops.Op {
	vios := s.violations.ByID()
	bodies := make([][]relation.Fact, len(vios))
	var idBuf [64]uint32
	union := idBuf[:0]
	for i, v := range vios {
		bodies[i] = v.BodyFacts()
		for _, f := range bodies[i] {
			union = append(union, f.ID())
		}
	}
	slices.Sort(union)

	out := make([]ops.Op, 0, len(parent))
scan:
	for _, op := range parent {
		facts := op.Facts()
		// Facts outside every surviving body (in particular, deleted facts)
		// disqualify the operation outright; for singletons the union test
		// is the whole answer.
		for _, f := range facts {
			if !idInSorted(union, f.ID()) {
				continue scan
			}
		}
		if len(facts) == 1 {
			out = append(out, op)
			continue
		}
		for _, body := range bodies {
			if factsSubset(facts, body) {
				out = append(out, op)
				break
			}
		}
	}
	return out
}

// idInSorted reports whether id occurs in the sorted slice. Hand-rolled
// rather than slices.BinarySearch: the generic call is not inlined and was
// visible in walk profiles at this call frequency.
func idInSorted(ids []uint32, id uint32) bool {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ids) && ids[lo] == id
}

// factsSubset reports whether every fact of fs occurs in body; both are a
// handful of facts, so linear scans of interned ids beat any set machinery.
func factsSubset(fs, body []relation.Fact) bool {
	if len(fs) > len(body) {
		return false
	}
	for _, f := range fs {
		found := false
		for _, g := range body {
			if g == f {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// admissible checks the non-local conditions of Definition 4 for appending
// op to s (local justification is already guaranteed by JustifiedOps).
func (s *State) admissible(op ops.Op) bool {
	// No cancellation: an inserted fact must never have been removed and
	// vice versa (condition 2).
	for _, f := range op.Facts() {
		if op.IsInsert() {
			if s.removed.Has(f) {
				return false
			}
		} else if s.added.Has(f) {
			return false
		}
	}

	// req2: no violation eliminated at an earlier step may reappear. The
	// current violation set is disjoint from the eliminated set (req2 held
	// so far), so only violations *introduced* by op can break it — and
	// most operations (e.g. any deletion under EGDs/DCs only) provably
	// introduce none, which the predicate check below detects without
	// touching the database.
	var predBuf [4]intern.Sym
	preds := predBuf[:0]
	for _, f := range op.Facts() {
		p := f.Pred()
		dup := false
		for _, q := range preds {
			if q == p {
				dup = true
				break
			}
		}
		if !dup {
			preds = append(preds, p)
		}
	}
	if s.inst.sigma.MayIntroduceViolations(preds, op.IsInsert()) {
		changed := op.Do(s.db)
		introduced := constraint.IntroducedViolations(s.db, s.inst.sigma, s.violations, changed, op.IsInsert())
		op.Undo(s.db, changed)
		for _, v := range introduced {
			if s.eliminated.has(v.ID()) {
				return false
			}
		}
	}

	// Global justification of additions (condition 3): appending a deletion
	// −G may strip the support of an earlier addition +F; every earlier
	// addition op_i must remain justified w.r.t. D^s_{i-1} − H where H is
	// the union of deletions applied after step i (now including G).
	if op.IsDelete() && len(s.added) > 0 {
		if !s.additionsStillJustified(op) {
			return false
		}
	}
	return true
}

// additionsStillJustified re-checks condition 3 of Definition 4 assuming
// the deletion del is appended. It replays the sequence from the initial
// database to recover each prefix D^s_{i-1}.
func (s *State) additionsStillJustified(del ops.Op) bool {
	seq := s.Ops()
	// suffixDeletions[i] = union of deleted fact sets over steps k with
	// k > i (1-based step numbering), plus del.
	cur := s.inst.initial.Clone()
	for i, op := range seq {
		if op.IsInsert() {
			// Build D^s_{i} − H with H = deletions after this step + del.
			reduced := cur.Clone()
			for _, later := range seq[i+1:] {
				if later.IsDelete() {
					reduced.DeleteAll(later.Facts())
				}
			}
			reduced.DeleteAll(del.Facts())
			if !ops.IsJustified(op, reduced, s.inst.sigma) {
				return false
			}
		}
		op.Do(cur)
	}
	return true
}

// Child returns the state reached by appending op; op must come from
// Extensions (or otherwise be a valid extension).
func (s *State) Child(op ops.Op) *State {
	db := s.db.Clone()
	changed := op.Do(db)
	after, gone := constraint.UpdateViolationsDiff(db, s.inst.sigma, s.violations, changed, op.IsInsert())

	eliminated := s.eliminated.clone(len(gone))
	for _, v := range gone {
		eliminated = eliminated.insert(v.ID())
	}

	added := s.added
	removed := s.removed
	if op.IsInsert() {
		added = s.added.Clone(op.Size())
		for _, f := range op.Facts() {
			added, _ = added.Insert(f)
		}
	} else {
		removed = s.removed.Clone(op.Size())
		for _, f := range op.Facts() {
			removed, _ = removed.Insert(f)
		}
	}

	return &State{
		inst:       s.inst,
		parent:     s,
		op:         op,
		depth:      s.depth + 1,
		db:         db,
		violations: after,
		eliminated: eliminated,
		added:      added,
		removed:    removed,
	}
}

// ChildInPlace is Child for walk-style exploration where the parent state
// is discarded after stepping: it transfers ownership of the receiver's
// database and bookkeeping to the child instead of cloning them. The
// receiver must not be used after the call (its database is set to nil to
// surface misuse early).
func (s *State) ChildInPlace(op ops.Op) *State {
	db := s.db
	changed := op.Do(db)
	after, gone := constraint.UpdateViolationsDiff(db, s.inst.sigma, s.violations, changed, op.IsInsert())

	eliminated := s.eliminated
	for _, v := range gone {
		eliminated = eliminated.insert(v.ID())
	}
	added, removed := s.added, s.removed
	for _, f := range op.Facts() {
		if op.IsInsert() {
			added, _ = added.Insert(f)
		} else {
			removed, _ = removed.Insert(f)
		}
	}
	s.db = nil
	return &State{
		inst:       s.inst,
		parent:     s,
		op:         op,
		depth:      s.depth + 1,
		db:         db,
		violations: after,
		eliminated: eliminated,
		added:      added,
		removed:    removed,
	}
}

// IsComplete reports whether the sequence cannot be extended.
func (s *State) IsComplete() bool { return len(s.Extensions()) == 0 }

// IsSuccessful reports whether the sequence is complete and its result
// satisfies Σ. For the constraint classes of the paper a consistent state
// has no justified operations, so consistency alone implies completeness.
func (s *State) IsSuccessful() bool { return s.Consistent() }

// IsFailing reports whether the sequence is complete but its result still
// violates Σ.
func (s *State) IsFailing() bool { return !s.Consistent() && s.IsComplete() }
