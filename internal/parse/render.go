package parse

import (
	"strings"

	"repro/internal/constraint"
	"repro/internal/fo"
	"repro/internal/logic"
	"repro/internal/relation"
)

// This file renders parsed objects back into the text format, inverting
// Database/Constraints/Query. The renderers quote every constant the lexer
// would not re-read verbatim as a constant (uppercase-leading or keyword
// identifiers, strings with spaces or punctuation, ...), so
// parse → render → reparse is the identity on values and a fixed point on
// text — the property the fuzz targets enforce. Predicate, variable, and
// query names are emitted bare: the grammar only ever produces plain
// identifiers for them.

// RenderDatabase renders a database as one fact statement per line, in the
// canonical (sorted) fact order.
func RenderDatabase(d *relation.Database) string {
	var b strings.Builder
	for _, f := range d.Facts() {
		renderAtom(&b, f.Atom())
		b.WriteString(".\n")
	}
	return b.String()
}

// RenderConstraints renders a constraint set one statement per line. Denial
// constraints use the canonical "body -> false" form (the "!(body)" input
// syntax normalizes to it).
func RenderConstraints(set *constraint.Set) string {
	var b strings.Builder
	for _, c := range set.All() {
		renderAtomList(&b, c.Body())
		b.WriteString(" -> ")
		switch c.Kind() {
		case constraint.TGD:
			if ex := c.ExistentialVars(); len(ex) > 0 {
				b.WriteString("exists ")
				for i, v := range ex {
					if i > 0 {
						b.WriteString(", ")
					}
					b.WriteString(v.Name())
				}
				b.WriteString(": ")
			}
			renderAtomList(&b, c.Head())
		case constraint.EGD:
			l, r := c.Equality()
			b.WriteString(l.Name())
			b.WriteString(" = ")
			b.WriteString(r.Name())
		case constraint.DC:
			b.WriteString("false")
		}
		b.WriteString(".\n")
	}
	return b.String()
}

// RenderQuery renders a named query, e.g. "Q(X) := forall Y: (...)."
func RenderQuery(q *fo.Query) string {
	var b strings.Builder
	b.WriteString(q.Name)
	b.WriteByte('(')
	for i, v := range q.Out {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.Name())
	}
	b.WriteString(") := ")
	renderFormula(&b, q.F)
	b.WriteByte('.')
	return b.String()
}

// renderFormula parenthesizes every compound subformula, so the reparse
// rebuilds exactly the same tree regardless of operator precedence.
func renderFormula(b *strings.Builder, f fo.Formula) {
	switch f := f.(type) {
	case fo.Atom:
		renderAtom(b, f.A)
	case fo.Eq:
		renderTerm(b, f.L)
		b.WriteString(" = ")
		renderTerm(b, f.R)
	case fo.Truth:
		if f.Value {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case fo.Not:
		b.WriteString("!(")
		renderFormula(b, f.F)
		b.WriteByte(')')
	case fo.And:
		renderBinary(b, f.L, "&", f.R)
	case fo.Or:
		renderBinary(b, f.L, "|", f.R)
	case fo.Implies:
		renderBinary(b, f.L, "->", f.R)
	case fo.Iff:
		renderBinary(b, f.L, "<->", f.R)
	case fo.Exists:
		renderQuant(b, "exists", f.Vars, f.F)
	case fo.ForAll:
		renderQuant(b, "forall", f.Vars, f.F)
	default:
		// Unreachable for parser-produced formulas; render something the
		// parser rejects rather than silently emitting a wrong formula.
		b.WriteString("<unrenderable>")
	}
}

func renderBinary(b *strings.Builder, l fo.Formula, op string, r fo.Formula) {
	b.WriteByte('(')
	renderFormula(b, l)
	b.WriteString(") ")
	b.WriteString(op)
	b.WriteString(" (")
	renderFormula(b, r)
	b.WriteByte(')')
}

func renderQuant(b *strings.Builder, q string, vars []logic.Term, f fo.Formula) {
	b.WriteString(q)
	b.WriteByte(' ')
	for i, v := range vars {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.Name())
	}
	b.WriteString(": (")
	renderFormula(b, f)
	b.WriteByte(')')
}

func renderAtomList(b *strings.Builder, atoms []logic.Atom) {
	for i, a := range atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		renderAtom(b, a)
	}
}

func renderAtom(b *strings.Builder, a logic.Atom) {
	b.WriteString(a.PredName())
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		renderTerm(b, t)
	}
	b.WriteByte(')')
}

func renderTerm(b *strings.Builder, t logic.Term) {
	if t.IsVar() {
		b.WriteString(t.Name())
		return
	}
	b.WriteString(quoteConst(t.Name()))
}

// quoteConst returns the constant as the lexer will read it back: bare when
// a single identifier/number token reproduces it verbatim and the case
// convention keeps it a constant, quoted otherwise.
func quoteConst(name string) string {
	if bareConstant(name) {
		return name
	}
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range name {
		switch r {
		case '"', '\\':
			b.WriteByte('\\')
			b.WriteRune(r)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// keywords the formula grammar claims for itself; as bare identifiers they
// would not re-read as constants in every position, so they are quoted.
var keywordConsts = map[string]bool{"exists": true, "forall": true, "true": true, "false": true}

// bareConstant reports whether the lexer re-reads name as one constant
// token with exactly this text. Asking the lexer itself keeps the renderer
// correct under any future token-rule change.
func bareConstant(name string) bool {
	if name == "" || keywordConsts[name] {
		return false
	}
	toks, err := lexAll(name)
	if err != nil || len(toks) != 2 || toks[0].text != name {
		return false
	}
	switch toks[0].kind {
	case tokNumber:
		return true
	case tokIdent:
		return !isVariableName(name)
	}
	return false
}
