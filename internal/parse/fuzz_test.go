package parse

// Native Go fuzz targets for the text formats. Two properties:
//
//  1. No input may panic the lexer or parser (errors are fine).
//  2. Round-trip: for every input that parses, rendering and reparsing
//     must succeed, yield an equal value, and re-render to the *same*
//     text — parse ∘ render is the identity and render ∘ parse is a
//     fixed point.
//
// Run continuously with: go test -fuzz=FuzzDatabase ./internal/parse
// (one target per -fuzz run); CI runs a short smoke pass per target.
// Seed corpora live in testdata/fuzz/<Target>/.

import "testing"

func FuzzDatabase(f *testing.F) {
	for _, seed := range []string{
		"",
		"Pref(a, b). Pref(b, a).",
		`R("quoted constant", 42). R(x, "with \"escapes\" \\ and \n breaks").`,
		"Node(n1). Edge(n1, n2).  # comment\nEdge(n2, n1).",
		`R("Uppercase"). R("exists"). R("true"). R(1.5).`,
		"R(a", // error inputs are seeds too: the parser must fail cleanly
		"R(a))..",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d, err := Database(src) // must not panic
		if err != nil {
			return
		}
		s1 := RenderDatabase(d)
		d2, err := Database(s1)
		if err != nil {
			t.Fatalf("rendered database does not reparse: %v\ninput: %q\nrendered: %q", err, src, s1)
		}
		if !d2.Equal(d) {
			t.Fatalf("round-trip changed the database\ninput: %q\nfirst:  %s\nsecond: %s", src, d, d2)
		}
		if s2 := RenderDatabase(d2); s2 != s1 {
			t.Fatalf("render is not a fixed point\nfirst:  %q\nsecond: %q", s1, s2)
		}
	})
}

func FuzzConstraints(f *testing.F) {
	for _, seed := range []string{
		"",
		"R(X, Y), R(X, Z) -> Y = Z.",
		"Pref(X, Y), Pref(Y, X) -> false.",
		"!(Pref(X, Y), Pref(Y, X)).",
		"R(X, Y) -> exists Z: S(Z, X).",
		"T(X, Y) -> R(X, Y).",
		`R(X, "const with space") -> false.`,
		"R(X Y -> Z.",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		set, err := Constraints(src) // must not panic
		if err != nil {
			return
		}
		s1 := RenderConstraints(set)
		set2, err := Constraints(s1)
		if err != nil {
			t.Fatalf("rendered constraints do not reparse: %v\ninput: %q\nrendered: %q", err, src, s1)
		}
		if set2.Len() != set.Len() {
			t.Fatalf("round-trip changed the constraint count: %d vs %d\ninput: %q", set.Len(), set2.Len(), src)
		}
		// Structural equality per constraint: Kind plus the canonical
		// String form (body/head atoms, equality sides, existential
		// prefix) — a renderer that consistently loses or rewrites a
		// constraint would survive count and fixed-point checks alone.
		for i, c := range set.All() {
			c2 := set2.All()[i]
			if c.Kind() != c2.Kind() || c.String() != c2.String() {
				t.Fatalf("round-trip changed constraint %d: %s [%v] vs %s [%v]\ninput: %q",
					i, c, c.Kind(), c2, c2.Kind(), src)
			}
		}
		if s2 := RenderConstraints(set2); s2 != s1 {
			t.Fatalf("render is not a fixed point\nfirst:  %q\nsecond: %q", s1, s2)
		}
	})
}

func FuzzQuery(f *testing.F) {
	for _, seed := range []string{
		"Q(X) := forall Y: (Pref(X, Y) | X = Y).",
		"Boolean() := exists X: R(X, X).",
		"Q(X) := !(exists Y: S(X, Y)) & T(X).",
		`Q(X) := X = "a b" | X != c.`,
		"Q(X, Y) := R(X, Y) <-> (S(Y, X) -> true).",
		"Q(X) := R(X))",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Query(src) // must not panic
		if err != nil {
			return
		}
		s1 := RenderQuery(q)
		q2, err := Query(s1)
		if err != nil {
			t.Fatalf("rendered query does not reparse: %v\ninput: %q\nrendered: %q", err, src, s1)
		}
		if s2 := RenderQuery(q2); s2 != s1 {
			t.Fatalf("render is not a fixed point\nfirst:  %q\nsecond: %q", s1, s2)
		}
	})
}
