// Command experiments regenerates every reproduction experiment of
// EXPERIMENTS.md (E1–E12) plus the extension experiments (E13–E19): the
// paper's worked examples with their exact probabilities, the
// complexity-shape measurements for exact OCQA (tree and DAG engines), the
// Hoeffding sample-size table and measured additive-error coverage, and the
// Section 5 query-rewriting overhead experiment.
//
// Usage:
//
//	experiments            # run everything
//	experiments -run E7    # run one experiment by id
//	experiments -list      # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// experiment is one reproducible unit keyed by its EXPERIMENTS.md id.
type experiment struct {
	id    string
	title string
	run   func() error
}

var registry []experiment

func register(id, title string, run func() error) {
	registry = append(registry, experiment{id: id, title: title, run: run})
}

func main() {
	var (
		runID = flag.String("run", "", "run only the experiment with this id (e.g. E3)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.BoolVar(&fullScale, "full", false, "run the slow large-scale points (e.g. 6-conflict exact OCQA, ~45s)")
	flag.Parse()

	sort.Slice(registry, func(i, j int) bool {
		return idOrdinal(registry[i].id) < idOrdinal(registry[j].id)
	})

	if *list {
		for _, e := range registry {
			fmt.Printf("%-4s %s\n", e.id, e.title)
		}
		return
	}

	ran := 0
	for _, e := range registry {
		if *runID != "" && !strings.EqualFold(e.id, *runID) {
			continue
		}
		ran++
		fmt.Printf("== %s: %s ==\n", e.id, e.title)
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches %q; use -list\n", *runID)
		os.Exit(2)
	}
}

func idOrdinal(id string) int {
	n := 0
	fmt.Sscanf(id, "E%d", &n)
	return n
}
