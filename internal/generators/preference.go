package generators

import (
	"fmt"
	"math/big"

	"repro/internal/intern"
	"repro/internal/markov"
	"repro/internal/ops"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/repair"
)

// Preference is the support-based generator of Example 4, defined for a
// schema with a binary preference relation (by default Pref) under the
// denial constraint Pref(x,y), Pref(y,x) → ⊥ stating that preference is
// not symmetric.
//
// The weight w(α, D) of an atom α = Pref(a,b) is the number of facts
// Pref(a, ·) in D (how often a is preferred); the importance I_Σ(α, D) is
// the weight of α relative to all atoms involved in a violation; and the
// probability of removing α is the importance of its symmetric atom
// ᾱ = Pref(b,a). Intuitively, the more support a product has, the more
// likely the facts preferring something over it are to be removed.
//
// The generator assigns probability zero to every non-singleton deletion
// (and to insertions, which never arise for a DC); the singleton deletion
// probabilities sum to 1 because the involved-atom set is closed under the
// symmetry α ↔ ᾱ.
type Preference struct {
	// Pred is the preference predicate; empty means "Pref".
	Pred string
}

// Name implements markov.Generator.
func (p Preference) Name() string { return "preference" }

// Memoryless implements markov.Markovian: the importance weights count
// facts of the state's current database (and of its violation set, itself a
// function of the database), never the path that produced it. Note the
// generator is memoryless but NOT local (the weight of an atom counts
// support across the whole database), so the DAG engine applies exactly
// where core.ComputeFactored is unsound.
func (p Preference) Memoryless() bool { return true }

func (p Preference) pred() intern.Sym {
	if p.Pred == "" {
		return intern.S("Pref")
	}
	return intern.S(p.Pred)
}

// weight returns w(α, D): the number of facts Pref(a, ·) where a is the
// first argument of α. It probes the per-position index bucket of (Pref,
// 0, a) — plus any pending delta — instead of scanning the whole relation;
// a per-atom rescan of FactsByPred was the walk profile's hottest block.
func (p Preference) weight(db *relation.Database, pred intern.Sym, first intern.Sym) int64 {
	var n int64
	db.ForEachAt(pred, 0, first, func(f relation.Fact) bool {
		if f.Arity() == 2 {
			n++
		}
		return true
	})
	return n
}

// Transitions implements markov.Generator.
func (p Preference) Transitions(s *repair.State, exts []ops.Op) ([]*big.Rat, error) {
	db := s.Result()
	pred := p.pred()
	involved := s.Violations().InvolvedFacts()

	// Σ_{β ∈ V_Σ(D)} w(β, D), the normalizing constant of the importance.
	var total int64
	for _, f := range involved {
		args := f.Args()
		if f.Pred() != pred || len(args) != 2 {
			return nil, fmt.Errorf("generators: preference generator saw violation atom %s outside %s/2", f, pred)
		}
		total += p.weight(db, pred, args[0])
	}
	if total == 0 {
		return nil, fmt.Errorf("generators: preference generator has zero total weight at state %q", s)
	}
	totalWeight := new(big.Rat).SetInt64(total)

	out := make([]*big.Rat, len(exts))
	for i, op := range exts {
		if !op.IsDelete() || op.Size() != 1 {
			out[i] = prob.Zero()
			continue
		}
		alpha := op.Facts()[0].Args()
		// The probability of removing α = Pref(a,b) is the importance of
		// the symmetric atom ᾱ = Pref(b,a), i.e. the weight of b.
		w := new(big.Rat).SetInt64(p.weight(db, pred, alpha[1]))
		out[i] = w.Quo(w, totalWeight)
	}
	return out, nil
}

// IntWeights implements markov.IntWeighter: the preference probabilities
// are ratios of support counts, so walks sample them from raw integer
// weights. The transition probability of deleting α = Pref(a,b) is
// w(ᾱ)/Σ_{β ∈ V_Σ(D)} w(β), which is exactly the normalized weight this
// returns; the atom-shape validation of Transitions is preserved.
func (p Preference) IntWeights(s *repair.State, exts []ops.Op) ([]int64, bool, error) {
	db := s.Result()
	pred := p.pred()
	// The exact path's probabilities are w(ᾱ)/Σ_{β ∈ V_Σ(D)} w(β); they sum
	// to 1 exactly when the per-extension weights add up to that involved-
	// fact total (the symmetry-closure property of Example 4). Verify it so
	// the fast path only engages where the exact path would accept the
	// chain; otherwise decline and let markov.Step report ill-definedness.
	var involvedTotal int64
	for _, f := range s.Violations().InvolvedFacts() {
		if f.Pred() != pred || f.Arity() != 2 {
			return nil, false, fmt.Errorf("generators: preference generator saw violation atom %s outside %s/2", f, pred)
		}
		involvedTotal += p.weight(db, pred, f.Args()[0])
	}
	out := make([]int64, len(exts))
	var total int64
	for i, op := range exts {
		if !op.IsDelete() || op.Size() != 1 {
			continue
		}
		alpha := op.Facts()[0].Args()
		w := p.weight(db, pred, alpha[1])
		out[i] = w
		total += w
	}
	if total == 0 {
		return nil, false, fmt.Errorf("generators: preference generator has zero total weight at state %q", s)
	}
	if total != involvedTotal {
		return nil, false, nil
	}
	return out, true, nil
}

var (
	_ markov.Generator   = Preference{}
	_ markov.IntWeighter = Preference{}
	_ markov.Markovian   = Preference{}
)
