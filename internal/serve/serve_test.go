package serve_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/abc"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/generators"
	"repro/internal/logic"
	"repro/internal/markov"
	"repro/internal/relation"
	"repro/internal/serve"
	"repro/internal/workload"
)

// snapProj is an order-insensitive, value-typed projection of a served
// snapshot: component structure, exact per-repair distributions, and the
// marginal of every database fact. Two snapshots with equal projections
// answer every atomic query identically.
type snapProj struct {
	Version    uint64
	Facts      []string
	Violations int
	Components []compProj
	Marginals  []string
}

type compProj struct {
	Facts   []string
	Repairs []repairProj
	Success string
}

type repairProj struct {
	Facts string
	P     string
	Seqs  string
}

func projectSnap(sn *serve.Snapshot) snapProj {
	p := snapProj{Version: sn.Version(), Violations: sn.Violations.Len()}
	facts := sn.DB.Facts()
	relation.SortFacts(facts)
	for _, f := range facts {
		p.Facts = append(p.Facts, f.String())
		p.Marginals = append(p.Marginals, sn.Fac.FactProbability(f).RatString())
	}
	p.Components = projectComponents(sn.Fac)
	return p
}

func projectComponents(fac *core.Factored) []compProj {
	var out []compProj
	for _, c := range fac.Components {
		sem := c.Semantics()
		cp := compProj{Success: sem.SuccessP.RatString()}
		for _, cf := range c.Facts {
			cp.Facts = append(cp.Facts, cf.String())
		}
		for _, r := range sem.Repairs {
			cp.Repairs = append(cp.Repairs, repairProj{
				Facts: r.DB.Key(),
				P:     r.P.RatString(),
				Seqs:  r.SeqCount.String(),
			})
		}
		out = append(out, cp)
	}
	return out
}

// freshProj recomputes the factored semantics of db from scratch (no cache,
// no reuse) and projects it, as the ground truth for a served snapshot.
func freshProj(t *testing.T, db *relation.Database, sigma *constraint.Set, maxStates int) ([]compProj, []string) {
	t.Helper()
	vs := constraint.FindViolations(db, sigma)
	part := abc.NewPartition(vs)
	fac, err := core.ComputeFactoredDelta(db, sigma, generators.Uniform{},
		markov.ExploreOptions{MaxStates: maxStates}, core.FactoredOptions{NoCache: true}, core.FactoredDelta{Part: part})
	if err != nil {
		t.Fatalf("from-scratch recompute: %v", err)
	}
	var marg []string
	facts := db.Facts()
	relation.SortFacts(facts)
	for _, f := range facts {
		marg = append(marg, fac.FactProbability(f).RatString())
	}
	return projectComponents(fac), marg
}

func mixConfig(ops int, ingest float64, seed int64) workload.ServeMixConfig {
	return workload.ServeMixConfig{
		Islands:        12,
		FactsPerIsland: 4,
		IsoRatio:       0.5,
		Ops:            ops,
		IngestRatio:    ingest,
		Seed:           seed,
	}
}

func runMix(t *testing.T, s *serve.Server, ops []workload.ServeOp) *serve.Snapshot {
	t.Helper()
	var last *serve.Snapshot = s.Snapshot()
	for _, op := range ops {
		if !op.Ingest {
			s.FactProbability(op.Fact)
			continue
		}
		sn, err := s.Ingest([]serve.Op{{Fact: op.Fact, Insert: op.Insert}})
		if err != nil {
			t.Fatalf("ingest %v: %v", op, err)
		}
		last = sn
	}
	return last
}

// TestServeDeterministicAcrossWorkers: the same ingest stream served with
// Workers = 1..8, with and without the structural cache, publishes final
// snapshots whose projections — component structure, exact distributions,
// and every fact marginal — are bit-identical, and identical to a
// from-scratch recompute on the post-delta database (the served state never
// drifts from ComputeFactored semantics, and worker scheduling never leaks
// into answers).
func TestServeDeterministicAcrossWorkers(t *testing.T) {
	db, sigma, ops := workload.ServeMix(mixConfig(80, 0.4, 11))
	var want snapProj
	for workers := 1; workers <= 8; workers++ {
		for _, nocache := range []bool{false, true} {
			s, err := serve.New(db, sigma, generators.Uniform{}, serve.Options{Workers: workers, NoCache: nocache})
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			last := runMix(t, s, ops)
			got := projectSnap(last)
			s.Close()
			if workers == 1 && !nocache {
				want = got
				wantComps, wantMarg := freshProj(t, last.DB, sigma, 0)
				if !reflect.DeepEqual(got.Components, wantComps) {
					t.Fatal("served components differ from from-scratch recompute")
				}
				if !reflect.DeepEqual(got.Marginals, wantMarg) {
					t.Fatal("served marginals differ from from-scratch recompute")
				}
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d nocache=%v: projection differs from workers=1", workers, nocache)
			}
		}
	}
}

// TestServeRandomizedIngestEquivalence: a randomized ingest stream where
// every published snapshot is checked against ground truth — violations
// against FindViolations, the partition against a from-scratch partition,
// marginals against an uncached recompute — and the reuse accounting always
// balances (Reused + recomputed = components; the cache never serves a
// stale component).
func TestServeRandomizedIngestEquivalence(t *testing.T) {
	for _, seed := range []int64{3, 19, 57} {
		db, sigma, ops := workload.ServeMix(mixConfig(60, 0.6, seed))
		s, err := serve.New(db, sigma, generators.Uniform{}, serve.Options{})
		if err != nil {
			t.Fatal(err)
		}
		shadow := db.Clone()
		checked := 0
		for _, op := range ops {
			if !op.Ingest {
				continue
			}
			if op.Insert {
				shadow.Insert(op.Fact)
			} else {
				shadow.Delete(op.Fact)
			}
			sn, err := s.Ingest([]serve.Op{{Fact: op.Fact, Insert: op.Insert}})
			if err != nil {
				t.Fatalf("seed %d ingest %v: %v", seed, op, err)
			}

			wantVs := constraint.FindViolations(shadow, sigma)
			if sn.Violations.Len() != wantVs.Len() {
				t.Fatalf("seed %d: served %d violations, want %d", seed, sn.Violations.Len(), wantVs.Len())
			}
			for _, v := range wantVs.All() {
				if !sn.Violations.Has(v.ID()) {
					t.Fatalf("seed %d: served violations miss %s", seed, v.Key())
				}
			}
			if !reflect.DeepEqual(sn.Part.Components(), abc.NewPartition(wantVs).Components()) {
				t.Fatalf("seed %d: served partition differs from rebuild", seed)
			}
			st := sn.Stats()
			if st.Reused+st.Recomputed != st.Components {
				t.Fatalf("seed %d: reuse accounting broken: %d + %d != %d", seed, st.Reused, st.Recomputed, st.Components)
			}
			if st.CacheHits+st.CacheMisses > st.Recomputed {
				t.Fatalf("seed %d: cache traffic %d+%d exceeds the %d recomputed components",
					seed, st.CacheHits, st.CacheMisses, st.Recomputed)
			}
			gotComps := projectComponents(sn.Fac)
			wantComps, wantMarg := freshProj(t, shadow, sigma, 0)
			if !reflect.DeepEqual(gotComps, wantComps) {
				t.Fatalf("seed %d version %d: served components differ from from-scratch recompute", seed, sn.Version())
			}
			var gotMarg []string
			facts := shadow.Facts()
			relation.SortFacts(facts)
			for _, f := range facts {
				gotMarg = append(gotMarg, sn.Fac.FactProbability(f).RatString())
			}
			if !reflect.DeepEqual(gotMarg, wantMarg) {
				t.Fatalf("seed %d version %d: served marginals differ from from-scratch recompute", seed, sn.Version())
			}
			checked++
		}
		if checked == 0 {
			t.Fatalf("seed %d: stream contained no effective ingest", seed)
		}
		s.Close()
	}
}

// TestServeBatchAtomicityAndNoops: a batch is applied atomically (one
// version bump) and a no-op batch publishes nothing.
func TestServeBatchAtomicityAndNoops(t *testing.T) {
	db, sigma := workload.Islands(workload.IslandsConfig{Islands: 4, FactsPerIsland: 3, IsoRatio: 1, Seed: 1})
	s, err := serve.New(db, sigma, generators.Uniform{}, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	f1 := relation.NewFact("E", "x_batch", "y_batch")
	f2 := relation.NewFact("E", "y_batch", "z_batch")
	sn, err := s.Ingest([]serve.Op{{Fact: f1, Insert: true}, {Fact: f2, Insert: true}})
	if err != nil {
		t.Fatal(err)
	}
	if sn.Version() != 1 {
		t.Fatalf("batch of two published version %d, want 1", sn.Version())
	}
	// A fresh two-fact chain has three operational repairs ({f1}, {f2}, ∅,
	// each reached by one walk), so each fact survives with probability 1/3.
	if got := sn.Fac.FactProbability(f1).RatString(); got != "1/3" {
		t.Fatalf("marginal of %s = %s, want 1/3 (fresh two-fact chain)", f1, got)
	}
	again, err := s.Ingest([]serve.Op{{Fact: f1, Insert: true}})
	if err != nil {
		t.Fatal(err)
	}
	if again != sn {
		t.Fatal("no-op batch published a new snapshot")
	}
}

// TestServeDegradation: a non-atomic query whose exact enumeration exceeds
// the repair budget does not error — it degrades to the (ε, δ) estimator
// and reports exact = false, while atomic queries on the same server stay
// exact. This pins the serving behavior on over-budget requests.
func TestServeDegradation(t *testing.T) {
	// 25 two-fact islands: each has 2 repairs, so the product 2^25 blows
	// the 2^20 enumeration budget while each component stays trivial.
	db, sigma := workload.Islands(workload.IslandsConfig{Islands: 25, FactsPerIsland: 2, IsoRatio: 1, Seed: 5})
	s, err := serve.New(db, sigma, generators.Uniform{}, serve.Options{Eps: 0.2, Delta: 0.2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	x, y := logic.Var("x"), logic.Var("y")
	nonAtomic := fo.MustQuery("Q", []logic.Term{x}, fo.Exists{Vars: []logic.Term{y}, F: fo.Atom{A: logic.NewAtom("E", x, y)}})
	tuple := []string{"i00000003_n000"}
	p, exact, _, err := s.CP(nonAtomic, tuple)
	if err != nil {
		t.Fatalf("over-budget CP must degrade, got error: %v", err)
	}
	if exact {
		t.Fatal("over-budget CP claims exactness")
	}
	if f, _ := p.Float64(); f < 0 || f > 1 {
		t.Fatalf("estimate %v outside [0,1]", p)
	}

	atomic := fo.MustQuery("Q", []logic.Term{x, y}, fo.Atom{A: logic.NewAtom("E", x, y)})
	p2, exact2, _, err := s.CP(atomic, []string{"i00000003_n000", "i00000003_n001"})
	if err != nil {
		t.Fatal(err)
	}
	if !exact2 {
		t.Fatal("atomic query was not answered exactly")
	}
	if p2.RatString() != "1/3" {
		t.Fatalf("atomic CP = %s, want 1/3", p2.RatString())
	}

	// Deterministic degradation: the same query against the same snapshot
	// returns the same estimate.
	p3, _, _, err := s.CP(nonAtomic, tuple)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cmp(p3) != 0 {
		t.Fatalf("repeated degraded query differs: %v vs %v", p, p3)
	}
}

// TestServeConcurrentReadersWriter: readers hammer every query surface
// while the writer applies a long ingest stream; run under -race this
// checks the snapshot-isolation boundary. Readers must always observe a
// consistent snapshot (marginal defined, stats balanced).
func TestServeConcurrentReadersWriter(t *testing.T) {
	db, sigma, ops := workload.ServeMix(mixConfig(120, 1.0, 23))
	s, err := serve.New(db, sigma, generators.Uniform{}, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	facts := db.Facts()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				f := facts[rng.Intn(len(facts))]
				p, _ := s.FactProbability(f)
				if v, _ := p.Float64(); v < 0 || v > 1 {
					errs <- fmt.Errorf("marginal %v outside [0,1]", p)
					return
				}
				st := s.Stats()
				if st.Reused+st.Recomputed != st.Components {
					errs <- fmt.Errorf("inconsistent stats at version %d", st.Version)
					return
				}
			}
		}(w)
	}
	for _, op := range ops {
		if !op.Ingest {
			continue
		}
		if _, err := s.Ingest([]serve.Op{{Fact: op.Fact, Insert: op.Insert}}); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	s.Close()
	if _, err := s.Ingest([]serve.Op{{Fact: facts[0], Insert: false}}); err != serve.ErrClosed {
		t.Fatalf("Ingest after Close = %v, want ErrClosed", err)
	}
	if s.Snapshot() == nil {
		t.Fatal("queries must survive Close")
	}
}
