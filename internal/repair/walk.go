package repair

import (
	"errors"
	"fmt"

	"repro/internal/constraint"
	"repro/internal/ops"
	"repro/internal/relation"
)

// Walk traverses the tree of all repairing sequences of the instance in
// depth-first pre-order, starting at the empty sequence. The visit callback
// may return false to prune the subtree below the visited state (the state
// itself has already been visited). By Proposition 2 the tree is finite, so
// Walk always terminates.
func Walk(inst *Instance, visit func(*State) bool) {
	var dfs func(*State)
	dfs = func(s *State) {
		if !visit(s) {
			return
		}
		for _, op := range s.Extensions() {
			dfs(s.Child(op))
		}
	}
	dfs(inst.Root())
}

// Stats summarizes a full traversal of RS(D,Σ).
type Stats struct {
	Sequences  int // |RS(D,Σ)|, including ε
	Complete   int // complete sequences (leaves)
	Successful int // complete sequences whose result satisfies Σ
	Failing    int // complete sequences whose result violates Σ
	MaxLength  int // longest repairing sequence
}

// Survey walks the whole tree and gathers statistics; used by tests for
// Propositions 2 and 8 and by the scaling experiments.
func Survey(inst *Instance) Stats {
	var st Stats
	Walk(inst, func(s *State) bool {
		st.Sequences++
		if s.Len() > st.MaxLength {
			st.MaxLength = s.Len()
		}
		if s.IsComplete() {
			st.Complete++
			if s.IsSuccessful() {
				st.Successful++
			} else {
				st.Failing++
			}
		}
		return true
	})
	return st
}

// Validate independently re-checks that seq is a (D,Σ)-repairing sequence
// per Definition 4, without trusting the incremental bookkeeping of State.
// It returns nil when the sequence is valid and a descriptive error naming
// the first violated condition otherwise. It is deliberately a direct
// transcription of the definition and is used by the property-based tests.
func Validate(inst *Instance, seq []ops.Op) error {
	// Reconstruct every prefix database D^s_0 .. D^s_n and violation set.
	dbs := make([]*relation.Database, len(seq)+1)
	viol := make([]*constraint.Violations, len(seq)+1)
	dbs[0] = inst.initial.Clone()
	viol[0] = constraint.FindViolations(dbs[0], inst.sigma)
	for i, op := range seq {
		if !opInBase(inst, op) {
			return fmt.Errorf("step %d: operation %s uses facts outside B(D,Σ)", i+1, op)
		}
		dbs[i+1] = op.Apply(dbs[i])
		viol[i+1] = constraint.FindViolations(dbs[i+1], inst.sigma)
	}

	// req1 + local justification (condition 1): every op is justified at
	// its prefix (justified implies fixing, hence req1). Null-based
	// insertions sit outside Definition 3's grounded candidate space; they
	// are validated as fixing (req1) instead.
	for i, op := range seq {
		if inst.opts.NullInsertions && op.IsInsert() && opHasNulls(op) {
			if !ops.IsFixing(op, dbs[i], inst.sigma) {
				return fmt.Errorf("step %d: null insertion %s fixes no violation", i+1, op)
			}
			continue
		}
		if !ops.IsJustified(op, dbs[i], inst.sigma) {
			return fmt.Errorf("step %d: operation %s is not justified", i+1, op)
		}
	}

	// req2: a violation eliminated at step i must not reappear at any
	// later state j > i.
	for i := 1; i <= len(seq); i++ {
		for _, v := range viol[i-1].Minus(viol[i]) {
			for j := i + 1; j <= len(seq); j++ {
				if viol[j].Has(v.ID()) {
					return fmt.Errorf("req2: violation %s eliminated at step %d reappears at step %d", v.Key(), i, j)
				}
			}
		}
	}

	// No cancellation (condition 2): +F at one step and −G at another must
	// have F ∩ G = ∅.
	for i, a := range seq {
		for j, b := range seq {
			if i == j || a.IsInsert() == b.IsInsert() {
				continue
			}
			for _, fa := range a.Facts() {
				for _, fb := range b.Facts() {
					if fa.Equal(fb) {
						return fmt.Errorf("no-cancellation: fact %s both inserted (step %d) and deleted (step %d)",
							fa, i+1, j+1)
					}
				}
			}
		}
	}

	// Global justification of additions (condition 3).
	for i, op := range seq { // paper's op_{i+1}
		if !op.IsInsert() {
			continue
		}
		nullOp := inst.opts.NullInsertions && opHasNulls(op)
		for j := i + 1; j < len(seq); j++ {
			reduced := dbs[i].Clone()
			for k := i + 1; k <= j; k++ {
				if seq[k].IsDelete() {
					reduced.DeleteAll(seq[k].Facts())
				}
			}
			justified := false
			if nullOp {
				justified = ops.IsFixing(op, reduced, inst.sigma)
			} else {
				justified = ops.IsJustified(op, reduced, inst.sigma)
			}
			if !justified {
				return fmt.Errorf("global justification: addition %s at step %d loses its justification by step %d",
					op, i+1, j+1)
			}
		}
	}
	return nil
}

// opInBase checks Definition 1's base membership, admitting labeled nulls
// when the instance runs in null-insertion mode.
func opInBase(inst *Instance, op ops.Op) bool {
	if op.InBase(inst.base) {
		return true
	}
	if !inst.opts.NullInsertions {
		return false
	}
	for _, f := range op.Facts() {
		if !inst.base.Contains(f) && !ops.HasNulls(f) {
			return false
		}
		if arity, ok := inst.base.Schema().ArityOf(f.Pred()); !ok || arity != f.Arity() {
			return false
		}
	}
	return true
}

// opHasNulls reports whether any fact of the operation carries a null.
func opHasNulls(op ops.Op) bool {
	for _, f := range op.Facts() {
		if ops.HasNulls(f) {
			return true
		}
	}
	return false
}

// ErrNotRepairing is returned by helpers when a supplied operation list is
// not a valid repairing sequence.
var ErrNotRepairing = errors.New("repair: not a repairing sequence")

// StateFor replays the operation sequence, validating each step against the
// incrementally enumerated extensions, and returns the resulting state.
func StateFor(inst *Instance, seq []ops.Op) (*State, error) {
	s := inst.Root()
	for i, op := range seq {
		found := false
		for _, ext := range s.Extensions() {
			if ext.Equal(op) {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: step %d operation %s is not a valid extension", ErrNotRepairing, i+1, op)
		}
		s = s.Child(op)
	}
	return s, nil
}
