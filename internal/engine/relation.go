// Package engine is a small in-memory relational algebra engine: named
// relations with string-valued columns and the operators needed by the
// paper's Section 5 practical approximation scheme — scan, selection,
// projection, equi-join, set difference, union, distinct, and grouped
// counting. It substitutes for the unnamed RDBMS of the paper's initial
// experiments; the experiment of interest (running a query where every base
// relation R is replaced by R − R_del) exercises the same code path.
package engine

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is a named table: a column header and a list of rows. Rows are
// bags (duplicates allowed) unless passed through Distinct.
type Relation struct {
	Name string
	Cols []string
	Rows [][]string
}

// NewRelation creates an empty relation with the given columns.
func NewRelation(name string, cols ...string) *Relation {
	return &Relation{Name: name, Cols: cols}
}

// Add appends a row; the row length must match the column count.
func (r *Relation) Add(row ...string) *Relation {
	if len(row) != len(r.Cols) {
		panic(fmt.Sprintf("engine: row width %d does not match %d columns of %s", len(row), len(r.Cols), r.Name))
	}
	r.Rows = append(r.Rows, row)
	return r
}

// ColIndex returns the index of a column.
func (r *Relation) ColIndex(col string) (int, error) {
	for i, c := range r.Cols {
		if c == col {
			return i, nil
		}
	}
	return 0, fmt.Errorf("engine: relation %s has no column %q (columns: %s)", r.Name, col, strings.Join(r.Cols, ", "))
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	out := &Relation{Name: r.Name, Cols: append([]string(nil), r.Cols...)}
	out.Rows = make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		out.Rows[i] = append([]string(nil), row...)
	}
	return out
}

// Len reports the number of rows.
func (r *Relation) Len() int { return len(r.Rows) }

// rowKey encodes a row for hashing.
func rowKey(row []string) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = fmt.Sprintf("%q", v)
	}
	return strings.Join(parts, ",")
}

// Sorted returns the rows sorted lexicographically (for deterministic
// comparisons in tests).
func (r *Relation) Sorted() [][]string {
	out := make([][]string, len(r.Rows))
	copy(out, r.Rows)
	sort.Slice(out, func(i, j int) bool { return rowKey(out[i]) < rowKey(out[j]) })
	return out
}

// Equal reports whether two relations hold the same bag of rows over the
// same columns (row order is ignored).
func (r *Relation) Equal(o *Relation) bool {
	if len(r.Cols) != len(o.Cols) || len(r.Rows) != len(o.Rows) {
		return false
	}
	for i := range r.Cols {
		if r.Cols[i] != o.Cols[i] {
			return false
		}
	}
	counts := map[string]int{}
	for _, row := range r.Rows {
		counts[rowKey(row)]++
	}
	for _, row := range o.Rows {
		counts[rowKey(row)]--
	}
	for _, c := range counts {
		if c != 0 {
			return false
		}
	}
	return true
}

// String renders the relation as a simple table.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s): %d rows\n", r.Name, strings.Join(r.Cols, ", "), len(r.Rows))
	for _, row := range r.Sorted() {
		fmt.Fprintf(&b, "  (%s)\n", strings.Join(row, ", "))
	}
	return b.String()
}

// Catalog maps table names to relations and records declared keys
// (column-index lists) used by the practical repair scheme.
type Catalog struct {
	tables map[string]*Relation
	keys   map[string][]int
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: map[string]*Relation{}, keys: map[string][]int{}}
}

// AddTable registers a relation under its name.
func (c *Catalog) AddTable(r *Relation) *Catalog {
	c.tables[r.Name] = r
	return c
}

// Table looks a relation up.
func (c *Catalog) Table(name string) (*Relation, error) {
	r, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", name)
	}
	return r, nil
}

// DeclareKey records that the given columns form a key of the table.
func (c *Catalog) DeclareKey(table string, cols ...string) error {
	r, err := c.Table(table)
	if err != nil {
		return err
	}
	idx := make([]int, len(cols))
	for i, col := range cols {
		j, err := r.ColIndex(col)
		if err != nil {
			return err
		}
		idx[i] = j
	}
	c.keys[table] = idx
	return nil
}

// Key returns the key column indexes of a table (nil when none declared).
func (c *Catalog) Key(table string) []int { return c.keys[table] }

// KeyedTables returns the names of tables with a declared key, sorted.
func (c *Catalog) KeyedTables() []string {
	var out []string
	for t := range c.keys {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
