package main

// E17: the sequence-uniform semantics vs the walk-induced semantics.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/generators"
	"repro/internal/logic"
	"repro/internal/markov"
	"repro/internal/prob"
	"repro/internal/repair"
	"repro/internal/sampling"
	"repro/internal/workload"
)

func init() {
	register("E17", "extension: walk-induced vs sequence-uniform semantics (PODS '22)", func() error {
		// Part 1: the smallest instance where the two semantics provably
		// differ — the 3-fact conflict chain. The conflict graph is a path
		// A−B−C, so the repair {A, C} (delete only the middle fact) is
		// produced by exactly one complete sequence out of nine, yet the
		// uniform walk reaches it with probability 1/5.
		d, sigma := workload.Chain(workload.ChainConfig{Facts: 3})
		inst := repair.MustInstance(d, sigma)
		walk, err := core.ComputeMode(inst, generators.Uniform{}, markov.ExploreOptions{}, core.WalkInduced)
		if err != nil {
			return err
		}
		uni, err := core.ComputeMode(inst, generators.Uniform{}, markov.ExploreOptions{}, core.SequenceUniform)
		if err != nil {
			return err
		}
		fmt.Printf("  conflict chain E(n0,n1), E(n1,n2), E(n2,n3) with !(E(x,y), E(y,z)):\n")
		fmt.Printf("  %s complete sequences, %d repairs\n\n", uni.TotalSequences, len(uni.Repairs))
		fmt.Println("  repair                    | seqs | walk P | uniform P")
		differ := false
		for i, r := range walk.Repairs {
			u := uni.Repairs[i]
			mark := ""
			if !prob.Equal(r.P, u.P) {
				differ = true
				mark = "   <- differs"
			}
			fmt.Printf("  %-25s | %4s | %6s | %9s%s\n",
				r.DB, u.SeqCount, r.P.RatString(), u.P.RatString(), mark)
		}
		if !differ {
			return fmt.Errorf("expected the semantics to differ on the conflict chain")
		}

		// Part 2: the divergence persists at scale, and the exact uniform
		// semantics rides the same DAG the walk-induced one does. Track
		// CP(first fact) — the probability the first chain link survives —
		// under both modes, plus the count-guided uniform estimate.
		x, y := logic.Var("x"), logic.Var("y")
		q := fo.MustQuery("Q", []logic.Term{x, y}, fo.Atom{A: logic.NewAtom("E", x, y)})
		fmt.Println("\n  facts | sequences | walk CP(first) | uniform CP(first) | sampled uniform (n=300)")
		for _, facts := range []int{3, 5, 7, 9, 11} {
			d, sigma := workload.Chain(workload.ChainConfig{Facts: facts})
			inst := repair.MustInstance(d, sigma)
			first := []string{"n0", "n1"}
			walk, err := core.ComputeMode(inst, generators.Uniform{}, markov.ExploreOptions{}, core.WalkInduced)
			if err != nil {
				return err
			}
			uni, err := core.ComputeMode(inst, generators.Uniform{}, markov.ExploreOptions{}, core.SequenceUniform)
			if err != nil {
				return err
			}
			est := &sampling.Estimator{Inst: inst, Gen: generators.Uniform{}, Seed: 1, Mode: core.SequenceUniform}
			run, err := est.EstimateWithN(q, 300)
			if err != nil {
				return err
			}
			fmt.Printf("  %5d | %9s | %14.4f | %17.4f | %.4f\n",
				facts, uni.TotalSequences,
				prob.Float(walk.CP(q, first)), prob.Float(uni.CP(q, first)),
				run.Lookup(first).Conditional)
		}
		fmt.Println("  the uniform semantics weighs every complete sequence equally (PODS '22),")
		fmt.Println("  the walk-induced one weighs by transition products (PODS '18); on")
		fmt.Println("  asymmetric conflict graphs they disagree, and both are exact on the DAG.")
		return nil
	})
}
