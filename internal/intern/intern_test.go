package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternRoundTrip(t *testing.T) {
	if S("") != 0 {
		t.Error("the empty string must intern to symbol 0")
	}
	a1, a2 := S("alpha-test"), S("alpha-test")
	if a1 != a2 {
		t.Errorf("re-interning changed the symbol: %d vs %d", a1, a2)
	}
	if Name(a1) != "alpha-test" {
		t.Errorf("Name(%d) = %q", a1, Name(a1))
	}
	if b := S("beta-test"); b == a1 {
		t.Error("distinct strings share a symbol")
	}
	if got, ok := Lookup("alpha-test"); !ok || got != a1 {
		t.Errorf("Lookup = %d, %v", got, ok)
	}
	if _, ok := Lookup("never-interned-string-xyzzy"); ok {
		t.Error("Lookup must not intern")
	}
}

func TestInternNullFlag(t *testing.T) {
	if !IsNull(S(NullPrefix + "01_x")) {
		t.Error("null-prefixed constant not flagged")
	}
	if IsNull(S("nullish")) {
		t.Error("non-prefixed constant flagged as null")
	}
}

func TestSortSymsByName(t *testing.T) {
	syms := []Sym{S("zz-sort"), S("aa-sort"), S("mm-sort")}
	SortSyms(syms)
	want := []string{"aa-sort", "mm-sort", "zz-sort"}
	for i, s := range syms {
		if Name(s) != want[i] {
			t.Fatalf("sorted[%d] = %q, want %q", i, Name(s), want[i])
		}
	}
}

// TestInternConcurrent hammers the table from many goroutines interning an
// overlapping key space; every goroutine must observe consistent
// symbol/name pairs. Run under -race this doubles as the publication-safety
// test for the atomic snapshot.
func TestInternConcurrent(t *testing.T) {
	const workers, rounds = 8, 500
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("conc-%d", i%97)
				s := S(name)
				if got := Name(s); got != name {
					errs <- fmt.Errorf("worker %d: Name(S(%q)) = %q", w, name, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestPackTupleRoundTrip(t *testing.T) {
	packed := PackTuple(nil, []uint32{1, 0x01020304, 0xFFFFFFFF})
	if len(packed) != 12 {
		t.Fatalf("packed length = %d, want 12", len(packed))
	}
	if string(packed) == string(PackTuple(nil, []uint32{1, 0x01020304, 0xFFFFFFFE})) {
		t.Error("distinct tuples must pack differently")
	}
	if string(PackTuple(nil, nil)) != "" {
		t.Error("empty tuple must pack to empty")
	}
}
