package sat

// A self-contained CDCL (conflict-driven clause learning) SAT solver in
// the MiniSat lineage: two-watched-literal unit propagation, first-UIP
// conflict analysis with clause learning, exponential-decay variable
// activities driving the branching heap, phase saving with false-first
// polarity (the all-false assignment is a model of every at-most-one
// group encoding, so certain-answer instances that are satisfiable for
// the trivial reason resolve in one descent), and geometric restarts.
// The solver is deterministic: no randomness, no time-based decisions —
// the same CNF always produces the same model and the same statistics.

// Stats counts the solver's work; aggregated across solves by the
// certain-answer compiler.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Learned      int64
	Restarts     int64
}

// Add merges another stats block into s.
func (s *Stats) Add(o Stats) {
	s.Decisions += o.Decisions
	s.Propagations += o.Propagations
	s.Conflicts += o.Conflicts
	s.Learned += o.Learned
	s.Restarts += o.Restarts
}

// enc is the internal literal encoding: variable v (1-based) positive is
// v<<1, negated v<<1|1. enc^1 is the complement; enc>>1 the variable.
type enc = int32

// clause is a disjunction with lits[0] and lits[1] watched.
type clause struct {
	lits   []enc
	learnt bool
}

// Solver decides satisfiability of one CNF. A Solver is single-use: build
// with NewSolver, call Solve once, then read Model/Stats.
type Solver struct {
	nVars int32

	watches  [][]*clause // indexed by enc literal currently watched
	assigns  []int8      // var → 0 undef, 1 true, -1 false
	levels   []int32     // var → decision level of its assignment
	reasons  []*clause   // var → antecedent clause (nil for decisions)
	phases   []int8      // var → last saved polarity (±1; -1 initially)
	trail    []enc
	trailLim []int32
	qhead    int

	activity []float64
	varInc   float64
	heap     varHeap

	seen  []bool
	unsat bool // established during clause loading

	model []bool

	// Stats is the work counter; valid after Solve.
	Stats Stats
}

// NewSolver loads the formula. Unit clauses are enqueued at level 0;
// contradictory units or an empty clause mark the instance unsatisfiable
// immediately.
func NewSolver(f *CNF) *Solver {
	n := f.nv
	s := &Solver{
		nVars:    n,
		watches:  make([][]*clause, 2*(n+1)),
		assigns:  make([]int8, n+1),
		levels:   make([]int32, n+1),
		reasons:  make([]*clause, n+1),
		phases:   make([]int8, n+1),
		activity: make([]float64, n+1),
		seen:     make([]bool, n+1),
		varInc:   1,
	}
	for v := int32(1); v <= n; v++ {
		s.phases[v] = -1
	}
	s.heap.init(s.activity, n)
	if f.hasEmpty {
		s.unsat = true
		return s
	}
	for _, cl := range f.clauses {
		if !s.load(cl) {
			s.unsat = true
			return s
		}
	}
	return s
}

// load normalizes and installs one input clause; false means the formula
// is already unsatisfiable.
func (s *Solver) load(lits []Lit) bool {
	// Dedup and drop tautologies using the seen scratchpad over enc lits —
	// a map would dominate load time on witness-heavy instances.
	norm := make([]enc, 0, len(lits))
	taut := false
	for _, l := range lits {
		e := encode(l)
		dup := false
		for _, have := range norm {
			if have == e {
				dup = true
				break
			}
			if have == e^1 {
				taut = true
				break
			}
		}
		if taut {
			break
		}
		if !dup {
			norm = append(norm, e)
		}
	}
	if taut {
		return true
	}
	switch len(norm) {
	case 0:
		return false
	case 1:
		switch s.value(norm[0]) {
		case -1:
			return false
		case 0:
			s.uncheckedEnqueue(norm[0], nil)
		}
		return true
	default:
		c := &clause{lits: norm}
		s.watch(c)
		return true
	}
}

func encode(l Lit) enc {
	if l > 0 {
		return enc(l) << 1
	}
	return enc(-l)<<1 | 1
}

// value evaluates an enc literal under the current assignment:
// 1 true, -1 false, 0 unassigned.
func (s *Solver) value(e enc) int8 {
	a := s.assigns[e>>1]
	if e&1 == 1 {
		return -a
	}
	return a
}

func (s *Solver) watch(c *clause) {
	s.watches[c.lits[0]] = append(s.watches[c.lits[0]], c)
	s.watches[c.lits[1]] = append(s.watches[c.lits[1]], c)
}

func (s *Solver) decisionLevel() int32 { return int32(len(s.trailLim)) }

func (s *Solver) uncheckedEnqueue(e enc, reason *clause) {
	v := e >> 1
	if e&1 == 1 {
		s.assigns[v] = -1
	} else {
		s.assigns[v] = 1
	}
	s.levels[v] = s.decisionLevel()
	s.reasons[v] = reason
	s.trail = append(s.trail, e)
	s.Stats.Propagations++
}

// propagate runs unit propagation to fixpoint and returns the conflicting
// clause, if any.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		falsified := p ^ 1
		ws := s.watches[falsified]
		j := 0
	nextClause:
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			if c.lits[0] == falsified {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// Invariant now: c.lits[1] == falsified.
			first := c.lits[0]
			if s.value(first) == 1 {
				ws[j] = c
				j++
				continue
			}
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != -1 {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1]] = append(s.watches[c.lits[1]], c)
					continue nextClause
				}
			}
			// No replacement: clause is unit or conflicting on first.
			ws[j] = c
			j++
			if s.value(first) == -1 {
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[falsified] = ws[:j]
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[falsified] = ws[:j]
	}
	return nil
}

// analyze derives the first-UIP learnt clause from a conflict and the
// level to backtrack to. learnt[0] is the asserting literal.
func (s *Solver) analyze(confl *clause) (learnt []enc, btLevel int32) {
	learnt = append(learnt, 0) // slot for the asserting literal
	counter := 0
	var p enc = -1
	idx := len(s.trail) - 1
	reason := confl
	for {
		for _, q := range reason.lits {
			if q == p {
				continue
			}
			v := q >> 1
			if !s.seen[v] && s.levels[v] > 0 {
				s.seen[v] = true
				s.bump(v)
				if s.levels[v] >= s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		for !s.seen[s.trail[idx]>>1] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p>>1] = false
		counter--
		if counter == 0 {
			break
		}
		reason = s.reasons[p>>1]
	}
	learnt[0] = p ^ 1
	for _, q := range learnt[1:] {
		s.seen[q>>1] = false
	}
	if len(learnt) == 1 {
		return learnt, 0
	}
	// Watch the literal with the highest level in slot 1; backtracking to
	// that level makes the clause asserting.
	maxI := 1
	for i := 2; i < len(learnt); i++ {
		if s.levels[learnt[i]>>1] > s.levels[learnt[maxI]>>1] {
			maxI = i
		}
	}
	learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
	return learnt, s.levels[learnt[1]>>1]
}

// backtrack undoes all assignments above the given decision level,
// saving phases and re-inserting variables into the branching heap.
func (s *Solver) backtrack(level int32) {
	if s.decisionLevel() <= level {
		return
	}
	bound := int(s.trailLim[level])
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i] >> 1
		s.phases[v] = s.assigns[v]
		s.assigns[v] = 0
		s.reasons[v] = nil
		s.heap.push(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

const (
	varDecay        = 0.95
	activityRescale = 1e100
)

func (s *Solver) bump(v int32) {
	s.activity[v] += s.varInc
	if s.activity[v] > activityRescale {
		for i := range s.activity {
			s.activity[i] /= activityRescale
		}
		s.varInc /= activityRescale
	}
	s.heap.update(v)
}

// Solve decides the instance. It may be called once; the model (for SAT
// instances) is retained for Model.
func (s *Solver) Solve() bool {
	if s.unsat {
		return false
	}
	if c := s.propagate(); c != nil {
		return false // level-0 conflict among the input units
	}
	restartLimit := int64(100)
	conflictsAtRestart := s.Stats.Conflicts
	for {
		confl := s.propagate()
		if confl != nil {
			s.Stats.Conflicts++
			if s.decisionLevel() == 0 {
				return false
			}
			learnt, bt := s.analyze(confl)
			s.backtrack(bt)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true}
				s.watch(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.Stats.Learned++
			s.varInc /= varDecay
			if s.Stats.Conflicts-conflictsAtRestart >= restartLimit {
				s.Stats.Restarts++
				conflictsAtRestart = s.Stats.Conflicts
				restartLimit += restartLimit / 2
				s.backtrack(0)
			}
			continue
		}
		v := s.pickBranch()
		if v == 0 {
			s.model = make([]bool, s.nVars+1)
			for u := int32(1); u <= s.nVars; u++ {
				s.model[u] = s.assigns[u] == 1
			}
			return true
		}
		s.Stats.Decisions++
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		e := v << 1
		if s.phases[v] < 0 {
			e |= 1
		}
		s.uncheckedEnqueue(e, nil)
	}
}

// pickBranch pops the highest-activity unassigned variable (0 when all
// variables are assigned).
func (s *Solver) pickBranch() int32 {
	for !s.heap.empty() {
		v := s.heap.pop()
		if s.assigns[v] == 0 {
			return v
		}
	}
	return 0
}

// Model returns the satisfying assignment indexed by variable (index 0
// unused); nil unless Solve returned true.
func (s *Solver) Model() []bool { return s.model }

// varHeap is an indexed binary max-heap over variable activities, the
// branching order. Ties break toward the lower variable number, keeping
// the solver deterministic.
type varHeap struct {
	act  []float64
	heap []int32
	pos  []int32 // var → index in heap, -1 when absent
}

func (h *varHeap) init(act []float64, n int32) {
	h.act = act
	h.heap = make([]int32, 0, n)
	h.pos = make([]int32, n+1)
	for v := int32(1); v <= n; v++ {
		h.pos[v] = -1
	}
	for v := int32(1); v <= n; v++ {
		h.push(v)
	}
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) less(i, j int) bool {
	a, b := h.heap[i], h.heap[j]
	if h.act[a] != h.act[b] {
		return h.act[a] > h.act[b]
	}
	return a < b
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = int32(i)
	h.pos[h.heap[j]] = int32(j)
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h.heap) && h.less(l, best) {
			best = l
		}
		if r < len(h.heap) && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *varHeap) push(v int32) {
	if h.pos[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.pos[v] = int32(len(h.heap) - 1)
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pop() int32 {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v
}

// update restores the heap invariant after v's activity increased; no-op
// when v is currently assigned (it re-enters the heap on backtrack).
func (h *varHeap) update(v int32) {
	if h.pos[v] >= 0 {
		h.up(int(h.pos[v]))
	}
}
