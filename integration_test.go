package repro

// Integration tests exercising the full pipeline across modules: text
// formats → instance construction → chain semantics → query answering →
// approximation → classical baseline. Each test is a miniature end-to-end
// scenario.

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/abc"
	"repro/internal/core"
	"repro/internal/generators"
	"repro/internal/markov"
	"repro/internal/parse"
	"repro/internal/prob"
	"repro/internal/repair"
	"repro/internal/sampling"
	"repro/internal/workload"
)

// TestEndToEndEmployee: parse everything from text, compute exact and
// sampled answers, and compare against the classical certain answers.
func TestEndToEndEmployee(t *testing.T) {
	db, err := parse.Database(`
		emp(alice, sales). emp(bob, engineering).
		emp(eve, marketing). emp(eve, support).
	`)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := parse.Constraints(`emp(X, Y), emp(X, Z) -> Y = Z.`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := parse.Query(`Dept(D) := exists X: emp(X, D).`)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := repair.NewInstance(db, sigma)
	if err != nil {
		t.Fatal(err)
	}

	sem, err := core.Compute(inst, generators.Uniform{}, markov.ExploreOptions{MaxStates: 100000})
	if err != nil {
		t.Fatal(err)
	}
	oca := sem.OCA(q)
	// sales/engineering certain; marketing/support 1/3 each (keep-m,
	// keep-s, drop-both are the three equiprobable outcomes).
	third := big.NewRat(1, 3)
	for _, tc := range []struct {
		dept string
		want *big.Rat
	}{
		{"sales", prob.One()},
		{"engineering", prob.One()},
		{"marketing", third},
		{"support", third},
	} {
		if got := oca.Lookup([]string{tc.dept}); got.Cmp(tc.want) != 0 {
			t.Errorf("CP(%s) = %s, want %s", tc.dept, got.RatString(), tc.want.RatString())
		}
	}

	// The classical baseline returns exactly the certain departments.
	certain, err := abc.CertainAnswers(inst.Initial(), sigma, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(certain) != 2 {
		t.Errorf("ABC certain answers = %v, want [engineering sales]", certain)
	}
	// Operational certainty (CP = 1) agrees with the baseline here.
	if got := sem.Certain(q); len(got) != 2 {
		t.Errorf("operational certain = %v", got)
	}

	// And the sampler lands within ε of the exact values.
	est := &sampling.Estimator{Inst: inst, Gen: generators.Uniform{}, Seed: 21}
	run, err := est.EstimateAnswers(q, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range run.Estimates {
		exact := oca.Lookup(e.Tuple)
		if diff := prob.AbsDiff(e.P, exact); diff > 0.1 {
			t.Errorf("estimate for %v off by %.3f", e.Tuple, diff)
		}
	}
}

// TestEndToEndInclusionDependency: a TGD instance repaired with both
// insertions and deletions; the uniform chain mixes both kinds and mass is
// conserved.
func TestEndToEndInclusionDependency(t *testing.T) {
	db, err := parse.Database(`
		orders(o1, alice). orders(o2, bob).
		customer(alice).
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Every order needs a known customer.
	sigma, err := parse.Constraints(`orders(X, Y) -> customer(Y).`)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := repair.NewInstance(db, sigma)
	if err != nil {
		t.Fatal(err)
	}
	sem, err := core.Compute(inst, generators.Uniform{}, markov.ExploreOptions{MaxStates: 100000})
	if err != nil {
		t.Fatal(err)
	}
	// Two repairs: delete orders(o2,bob), or insert customer(bob).
	if len(sem.Repairs) != 2 {
		t.Fatalf("repairs = %d, want 2", len(sem.Repairs))
	}
	if !prob.IsOne(sem.SuccessP) {
		t.Errorf("success mass = %s (this instance has no failing sequences)", sem.SuccessP.RatString())
	}
	q, err := parse.Query(`Q(Y) := customer(Y).`)
	if err != nil {
		t.Fatal(err)
	}
	oca := sem.OCA(q)
	if got := oca.Lookup([]string{"alice"}); !prob.IsOne(got) {
		t.Errorf("CP(alice) = %s, want 1", got.RatString())
	}
	bob := oca.Lookup([]string{"bob"})
	if bob.Sign() <= 0 || prob.IsOne(bob) {
		t.Errorf("CP(bob) = %s, want strictly between 0 and 1", bob.RatString())
	}
}

// TestEndToEndDenialWithSampling: DC instance, trust chain, factored vs
// walk-sampled estimates all consistent.
func TestEndToEndDenialWithSampling(t *testing.T) {
	db, err := parse.Database(`
		claim(src1, fact1). claim(src2, fact1).
		claim(src1, fact2).
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Two sources may not both claim the same fact.
	sigma, err := parse.Constraints(`
		claim(X, F), claim(Y, F), X != Y -> false.
	`)
	if err == nil {
		t.Fatal("inequality in constraint bodies is not supported; expected a parse error")
	}
	// Express it instead with a DC over distinct source constants.
	sigma, err = parse.Constraints(`!(claim(src1, F), claim(src2, F)).`)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := repair.NewInstance(db, sigma)
	if err != nil {
		t.Fatal(err)
	}
	sem, err := core.Compute(inst, generators.Uniform{}, markov.ExploreOptions{MaxStates: 100000})
	if err != nil {
		t.Fatal(err)
	}
	q, err := parse.Query(`Q(F) := exists S: claim(S, F).`)
	if err != nil {
		t.Fatal(err)
	}
	oca := sem.OCA(q)
	if got := oca.Lookup([]string{"fact2"}); !prob.IsOne(got) {
		t.Errorf("CP(fact2) = %s, want 1", got.RatString())
	}
	// fact1 survives unless both claims are deleted: 2/3 under uniform.
	if got := oca.Lookup([]string{"fact1"}); got.Cmp(big.NewRat(2, 3)) != 0 {
		t.Errorf("CP(fact1) = %s, want 2/3", got.RatString())
	}

	est := &sampling.Estimator{Inst: inst, Gen: generators.Uniform{}, Seed: 17}
	run, err := est.EstimateWithN(q, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(run.Lookup([]string{"fact1"}).P - 2.0/3); diff > 0.03 {
		t.Errorf("sampled CP(fact1) off by %.3f", diff)
	}
}

// TestEndToEndFactoredAgainstWalks: on a multi-component instance the three
// estimation routes (exact factored, factored sampling, chain walks) agree.
func TestEndToEndFactoredAgainstWalks(t *testing.T) {
	db, err := parse.Database(`
		R(k1, a). R(k1, b).
		R(k2, c). R(k2, d).
		R(k3, e).
	`)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := parse.Constraints(`R(X, Y), R(X, Z) -> Y = Z.`)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := repair.NewInstance(db, sigma)
	if err != nil {
		t.Fatal(err)
	}
	q, err := parse.Query(`Q(K, V) := R(K, V).`)
	if err != nil {
		t.Fatal(err)
	}

	fac, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := fac.CP(q, []string{"k1", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Cmp(big.NewRat(1, 3)) != 0 {
		t.Errorf("factored CP(k1,a) = %s, want 1/3", exact.RatString())
	}

	est := &sampling.Estimator{Inst: inst, Gen: generators.Uniform{}, Seed: 3}
	run, err := est.EstimateWithN(q, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if diff := prob.AbsDiff(run.Lookup([]string{"k1", "a"}).P, exact); diff > 0.03 {
		t.Errorf("walk estimate off by %.3f", diff)
	}

	facEst, err := fac.EstimateCP(q, []string{"k1", "a"}, 0.05, 0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	if diff := prob.AbsDiff(facEst, exact); diff > 0.05 {
		t.Errorf("factored estimate off by %.3f", diff)
	}
}

// TestEndToEndIslandsAtScale: a reduced-scale E18 — tens of thousands of
// facts across thousands of conflict islands, answered exactly by the
// parallel memoized factored engine, with the structural cache doing almost
// all of the work.
func TestEndToEndIslandsAtScale(t *testing.T) {
	cfg := workload.IslandsConfig{Islands: 1000, FactsPerIsland: 10, IsoRatio: 0.9, Seed: 18}
	d, sigma := workload.Islands(cfg)
	inst, err := repair.NewInstance(d, sigma)
	if err != nil {
		t.Fatal(err)
	}
	fac, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(fac.Components) != cfg.Islands {
		t.Fatalf("components = %d, want %d", len(fac.Components), cfg.Islands)
	}
	// 90% of the islands are canonical and share a single cache key; the
	// 10% shuffled islands each cost at most one exploration.
	if fac.CacheHits+fac.CacheMisses != cfg.Islands {
		t.Fatalf("cache hits+misses = %d, want %d", fac.CacheHits+fac.CacheMisses, cfg.Islands)
	}
	if fac.CacheMisses > cfg.Islands/10+1 {
		t.Errorf("cache misses = %d; want ≤ %d (only shuffled islands may miss)",
			fac.CacheMisses, cfg.Islands/10+1)
	}
	if fac.CacheHits < cfg.Islands*9/10-1 {
		t.Errorf("cache hits = %d; want ≥ %d", fac.CacheHits, cfg.Islands*9/10-1)
	}

	q, err := parse.Query(`Q(X, Y) := E(X, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	end := []string{"i00000000_n000", "i00000000_n001"}
	mid := []string{"i00000000_n004", "i00000000_n005"}
	cpEnd, err := fac.CP(q, end)
	if err != nil {
		t.Fatal(err)
	}
	cpMid, err := fac.CP(q, mid)
	if err != nil {
		t.Fatal(err)
	}
	if !prob.InUnit(cpEnd) || cpEnd.Sign() == 0 || !prob.InUnit(cpMid) || cpMid.Sign() == 0 {
		t.Fatalf("CPs outside (0,1]: end %s, mid %s", cpEnd.RatString(), cpMid.RatString())
	}
	// The end fact of a chain sits in one violation, the middle fact in two:
	// the end fact survives strictly more repairs.
	if cpEnd.Cmp(cpMid) <= 0 {
		t.Errorf("CP(end) = %s not above CP(mid) = %s", cpEnd.RatString(), cpMid.RatString())
	}
	// Sequential recomputation is bit-identical.
	seq, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	seqEnd, err := seq.CP(q, end)
	if err != nil {
		t.Fatal(err)
	}
	if seqEnd.Cmp(cpEnd) != 0 {
		t.Errorf("workers=8 CP %s != workers=1 CP %s", cpEnd.RatString(), seqEnd.RatString())
	}
}
