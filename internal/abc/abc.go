package abc

import (
	"fmt"
	"sort"

	"repro/internal/constraint"
	"repro/internal/fo"
	"repro/internal/relation"
)

// maxBruteForceBase bounds the base size for the exhaustive general-case
// search (2^|B| subsets are examined).
const maxBruteForceBase = 20

// Repairs computes [[D]]^{ABC}_Σ in deterministic (database-key) order.
func Repairs(d *relation.Database, sigma *constraint.Set) ([]*relation.Database, error) {
	hasTGD := false
	for _, c := range sigma.All() {
		if c.Kind() == constraint.TGD {
			hasTGD = true
			break
		}
	}
	if !hasTGD {
		return subsetRepairs(d, sigma), nil
	}
	return bruteForceRepairs(d, sigma)
}

// subsetRepairs enumerates the maximal consistent subsets of D for
// antimonotone constraints (EGDs and DCs): starting from D, repeatedly pick
// a violation and branch on deleting each single fact of its body. Each
// consistent leaf is a candidate; non-maximal candidates are filtered by
// the single-fact re-addition test (sound for antimonotone constraints).
func subsetRepairs(d *relation.Database, sigma *constraint.Set) []*relation.Database {
	seen := map[string]bool{}
	var candidates []*relation.Database

	var explore func(cur *relation.Database)
	explore = func(cur *relation.Database) {
		// Dedup by the packed binary id key; the legacy string Key stays in
		// sortDatabases/dedupDatabases, which define the reported order.
		k := cur.IDKey()
		if seen[k] {
			return
		}
		seen[k] = true
		vs := constraint.FindViolations(cur, sigma)
		if vs.Empty() {
			candidates = append(candidates, cur.Clone())
			return
		}
		v := vs.All()[0]
		for _, f := range v.BodyFacts() {
			next := cur.Clone()
			next.Delete(f)
			explore(next)
		}
	}
	explore(d.Clone())

	var out []*relation.Database
	for _, cand := range candidates {
		if isMaximalSubsetRepair(cand, d, sigma) {
			out = append(out, cand)
		}
	}
	sortDatabases(out)
	return dedupDatabases(out)
}

// isMaximalSubsetRepair reports whether no single removed fact can be added
// back consistently; for antimonotone constraints this is equivalent to
// subset-maximality.
func isMaximalSubsetRepair(cand, d *relation.Database, sigma *constraint.Set) bool {
	for _, f := range d.Facts() {
		if cand.Contains(f) {
			continue
		}
		cand.Insert(f)
		ok := sigma.Satisfied(cand)
		cand.Delete(f)
		if ok {
			return false
		}
	}
	return true
}

// bruteForceRepairs searches all subsets of B(D,Σ) for consistent databases
// with ⊆-minimal symmetric difference from D. Exponential; guarded by
// maxBruteForceBase.
func bruteForceRepairs(d *relation.Database, sigma *constraint.Set) ([]*relation.Database, error) {
	base, err := sigma.Base(d)
	if err != nil {
		return nil, err
	}
	universe := materializeBase(base)
	if len(universe) > maxBruteForceBase {
		return nil, fmt.Errorf("abc: base has %d facts, exceeding the brute-force bound %d (TGD repairs are exponential)",
			len(universe), maxBruteForceBase)
	}

	inD := make([]bool, len(universe))
	for i, f := range universe {
		inD[i] = d.Contains(f)
	}

	type cons struct {
		db   *relation.Database
		diff map[int]bool // indexes in the symmetric difference
	}
	var consistent []cons
	n := len(universe)
	for mask := 0; mask < 1<<n; mask++ {
		db := relation.NewDatabase()
		diff := map[int]bool{}
		for i := 0; i < n; i++ {
			has := mask&(1<<i) != 0
			if has {
				db.Insert(universe[i])
			}
			if has != inD[i] {
				diff[i] = true
			}
		}
		if sigma.Satisfied(db) {
			consistent = append(consistent, cons{db: db, diff: diff})
		}
	}

	var out []*relation.Database
	for i, a := range consistent {
		minimal := true
		for j, b := range consistent {
			if i != j && strictSubsetInt(b.diff, a.diff) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, a.db)
		}
	}
	sortDatabases(out)
	return dedupDatabases(out), nil
}

// materializeBase lists every fact of the base; only used by the
// brute-force path, where the base is known to be small.
func materializeBase(b *relation.Base) []relation.Fact {
	dom := b.Dom()
	var out []relation.Fact
	for _, pred := range b.Schema().Predicates() {
		arity, _ := b.Schema().Arity(pred)
		args := make([]string, arity)
		var rec func(i int)
		rec = func(i int) {
			if i == arity {
				out = append(out, relation.NewFact(pred, append([]string(nil), args...)...))
				return
			}
			for _, c := range dom {
				args[i] = c
				rec(i + 1)
			}
		}
		rec(0)
	}
	return out
}

func strictSubsetInt(a, b map[int]bool) bool {
	if len(a) >= len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func sortDatabases(dbs []*relation.Database) {
	sort.Slice(dbs, func(i, j int) bool { return dbs[i].Key() < dbs[j].Key() })
}

func dedupDatabases(dbs []*relation.Database) []*relation.Database {
	var out []*relation.Database
	var last string
	for _, db := range dbs {
		if k := db.Key(); k != last || len(out) == 0 {
			out = append(out, db)
			last = k
		}
	}
	return out
}

// CertainAnswers computes the consistent answers of [1]: the intersection
// of Q(D') over all ABC repairs D'.
func CertainAnswers(d *relation.Database, sigma *constraint.Set, q *fo.Query) ([][]string, error) {
	repairs, err := Repairs(d, sigma)
	if err != nil {
		return nil, err
	}
	if len(repairs) == 0 {
		return nil, nil
	}
	counts := map[string]int{}
	tuples := map[string][]string{}
	for _, r := range repairs {
		for _, t := range q.Answers(r) {
			k := fo.TupleKey(t)
			counts[k]++
			tuples[k] = t
		}
	}
	var out [][]string
	for k, c := range counts {
		if c == len(repairs) {
			out = append(out, tuples[k])
		}
	}
	fo.SortTuples(out)
	return out, nil
}
