package repair

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/logic"
	"repro/internal/ops"
	"repro/internal/relation"
)

func v(n string) logic.Term                    { return logic.Var(n) }
func at(p string, ts ...logic.Term) logic.Atom { return logic.NewAtom(p, ts...) }
func f(p string, args ...string) relation.Fact { return relation.NewFact(p, args...) }

// keyInstance: D = {R(a,b), R(a,c)}, Σ = {key on R[1]}.
func keyInstance(t *testing.T) *Instance {
	t.Helper()
	d := relation.FromFacts(f("R", "a", "b"), f("R", "a", "c"))
	eta := constraint.MustEGD(
		[]logic.Atom{at("R", v("x"), v("y")), at("R", v("x"), v("z"))},
		v("y"), v("z"),
	)
	return MustInstance(d, constraint.NewSet(eta))
}

func TestRootState(t *testing.T) {
	inst := keyInstance(t)
	root := inst.Root()
	if root.Len() != 0 || root.String() != "ε" {
		t.Errorf("root = %q, len %d", root, root.Len())
	}
	if root.Consistent() {
		t.Error("root of an inconsistent instance must be inconsistent")
	}
	if root.IsComplete() {
		t.Error("inconsistent root with justified ops must not be complete")
	}
	if inst.Consistent() {
		t.Error("instance must report inconsistency")
	}
}

func TestKeyRepairSequences(t *testing.T) {
	inst := keyInstance(t)
	root := inst.Root()
	exts := root.Extensions()
	// -R(a,b), -R(a,c), -{R(a,b),R(a,c)}.
	if len(exts) != 3 {
		t.Fatalf("root extensions = %v, want 3", exts)
	}
	for _, op := range exts {
		child := root.Child(op)
		if !child.Consistent() {
			t.Errorf("after %s the database must be consistent", op)
		}
		if !child.IsComplete() || !child.IsSuccessful() {
			t.Errorf("state after %s must be complete and successful", op)
		}
		if child.Len() != 1 {
			t.Errorf("child length = %d", child.Len())
		}
	}
}

// TestExample2NoCancellation: with Σ' = {T(x,y) → R(x,y), key(R)} and
// D = {R(a,b), R(a,c), T(a,b)}, the sequence
// -{R(a,b), R(a,c)}, +R(a,b) satisfies req1/req2 but is ruled out by
// no-cancellation.
func TestExample2NoCancellation(t *testing.T) {
	d := relation.FromFacts(f("R", "a", "b"), f("R", "a", "c"), f("T", "a", "b"))
	sigmaP := constraint.MustTGD(
		[]logic.Atom{at("T", v("x"), v("y"))},
		[]logic.Atom{at("R", v("x"), v("y"))},
	)
	eta := constraint.MustEGD(
		[]logic.Atom{at("R", v("x"), v("y")), at("R", v("x"), v("z"))},
		v("y"), v("z"),
	)
	inst := MustInstance(d, constraint.NewSet(sigmaP, eta))

	seq := []ops.Op{
		ops.Delete(f("R", "a", "b"), f("R", "a", "c")),
		ops.Insert(f("R", "a", "b")),
	}
	if err := Validate(inst, seq); err == nil {
		t.Error("the cancelling sequence of Example 2 must be rejected")
	}
	if _, err := StateFor(inst, seq); err == nil {
		t.Error("StateFor must reject the cancelling sequence")
	}

	// The equivalent simpler sequence -R(a,c) is repairing and successful.
	simple := []ops.Op{ops.Delete(f("R", "a", "c"))}
	if err := Validate(inst, simple); err != nil {
		t.Errorf("-R(a,c) must be a repairing sequence: %v", err)
	}
	s, err := StateFor(inst, simple)
	if err != nil {
		t.Fatalf("StateFor: %v", err)
	}
	if !s.IsSuccessful() {
		t.Error("-R(a,c) must repair the database")
	}
}

// TestExample3GlobalJustification: with Example 1's Σ, the sequence
// +S(a,b,c), -R(a,b) leaves the added S(a,b,c) unjustified and must be
// rejected.
func TestExample3GlobalJustification(t *testing.T) {
	d := relation.FromFacts(f("R", "a", "b"), f("R", "a", "c"), f("T", "a", "b"))
	sigma := constraint.MustTGD(
		[]logic.Atom{at("R", v("x"), v("y"))},
		[]logic.Atom{at("S", v("x"), v("y"), v("z"))},
	)
	eta := constraint.MustEGD(
		[]logic.Atom{at("R", v("x"), v("y")), at("R", v("x"), v("z"))},
		v("y"), v("z"),
	)
	inst := MustInstance(d, constraint.NewSet(sigma, eta))

	bad := []ops.Op{
		ops.Insert(f("S", "a", "b", "c")),
		ops.Delete(f("R", "a", "b")),
	}
	if err := Validate(inst, bad); err == nil {
		t.Error("Example 3's sequence must violate global justification")
	}

	// The prefix alone is fine.
	if err := Validate(inst, bad[:1]); err != nil {
		t.Errorf("+S(a,b,c) alone must be repairing: %v", err)
	}

	// Deleting the *other* key fact keeps the addition justified.
	good := []ops.Op{
		ops.Insert(f("S", "a", "b", "c")),
		ops.Delete(f("R", "a", "c")),
	}
	if err := Validate(inst, good); err != nil {
		t.Errorf("+S(a,b,c), -R(a,c) must be repairing: %v", err)
	}

	// And the incremental machinery must agree with the validator.
	if _, err := StateFor(inst, bad); err == nil {
		t.Error("StateFor must reject Example 3's sequence")
	}
	if _, err := StateFor(inst, good); err != nil {
		t.Errorf("StateFor must accept the good variant: %v", err)
	}
}

// TestPaperFailingSequence: D = {R(a)}, Σ = {R(x) → T(x), T(x) → ⊥};
// the sequence +T(a) is complete but failing (Section 3).
func TestPaperFailingSequence(t *testing.T) {
	d := relation.FromFacts(f("R", "a"))
	tgd := constraint.MustTGD([]logic.Atom{at("R", v("x"))}, []logic.Atom{at("T", v("x"))})
	dc := constraint.MustDC([]logic.Atom{at("T", v("x"))})
	inst := MustInstance(d, constraint.NewSet(tgd, dc))

	s, err := StateFor(inst, []ops.Op{ops.Insert(f("T", "a"))})
	if err != nil {
		t.Fatalf("+T(a) must be a repairing sequence: %v", err)
	}
	if !s.IsComplete() {
		t.Errorf("+T(a) must be complete; extensions = %v", s.Extensions())
	}
	if s.IsSuccessful() {
		t.Error("+T(a) must not be successful")
	}
	if !s.IsFailing() {
		t.Error("+T(a) must be failing")
	}

	// The deletion route succeeds: -R(a) yields the empty database.
	s2, err := StateFor(inst, []ops.Op{ops.Delete(f("R", "a"))})
	if err != nil {
		t.Fatalf("-R(a): %v", err)
	}
	if !s2.IsSuccessful() || s2.Result().Size() != 0 {
		t.Error("-R(a) must successfully produce the empty database")
	}
}

// TestReq2Blocking: deleting a TGD head witness would reintroduce a
// previously eliminated violation and must be blocked by req2.
func TestReq2Blocking(t *testing.T) {
	// D = {R(a), U(a), U(b)}; Σ = {R(x) → T(x); U(x), U(y) → x = y}.
	// After +T(a) (fixing the TGD violation), the EGD on U remains. A
	// deletion of T(a) is blocked twice over (no-cancellation AND req2);
	// deletions of U facts must remain allowed.
	d := relation.FromFacts(f("R", "a"), f("U", "a"), f("U", "b"))
	tgd := constraint.MustTGD([]logic.Atom{at("R", v("x"))}, []logic.Atom{at("T", v("x"))})
	egd := constraint.MustEGD([]logic.Atom{at("U", v("x")), at("U", v("y"))}, v("x"), v("y"))
	inst := MustInstance(d, constraint.NewSet(tgd, egd))

	s, err := StateFor(inst, []ops.Op{ops.Insert(f("T", "a"))})
	if err != nil {
		t.Fatalf("+T(a): %v", err)
	}
	for _, op := range s.Extensions() {
		if op.IsDelete() {
			for _, fact := range op.Facts() {
				if fact.Equal(f("T", "a")) {
					t.Errorf("extension %s deletes the freshly added T(a)", op)
				}
				if fact.Equal(f("R", "a")) {
					t.Errorf("extension %s would unjustify the addition", op)
				}
			}
		}
	}
}

// TestSequenceOpsRoundTrip: Ops() returns the sequence in order.
func TestSequenceOpsRoundTrip(t *testing.T) {
	inst := keyInstance(t)
	seq := []ops.Op{ops.Delete(f("R", "a", "b"))}
	s, err := StateFor(inst, seq)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Ops()
	if len(got) != 1 || !got[0].Equal(seq[0]) {
		t.Errorf("Ops() = %v", got)
	}
	if s.Key() == "" {
		t.Error("non-root state must have a non-empty key")
	}
}

func TestWalkVisitsWholeTree(t *testing.T) {
	inst := keyInstance(t)
	var states []string
	Walk(inst, func(s *State) bool {
		states = append(states, s.String())
		return true
	})
	// ε + 3 children.
	if len(states) != 4 {
		t.Errorf("visited %d states, want 4: %v", len(states), states)
	}
}

func TestWalkPruning(t *testing.T) {
	inst := keyInstance(t)
	count := 0
	Walk(inst, func(s *State) bool {
		count++
		return false // prune below the root
	})
	if count != 1 {
		t.Errorf("visited %d states with immediate pruning, want 1", count)
	}
}

func TestSurveyKeyInstance(t *testing.T) {
	inst := keyInstance(t)
	st := Survey(inst)
	if st.Sequences != 4 || st.Complete != 3 || st.Successful != 3 || st.Failing != 0 {
		t.Errorf("Survey = %+v", st)
	}
	if st.MaxLength != 1 {
		t.Errorf("MaxLength = %d, want 1", st.MaxLength)
	}
}

// TestSurveyProp2Bound: sequence length never exceeds the initial violation
// count for deletion-only instances (each deletion permanently eliminates at
// least one violation and EGD/DC violations never reappear).
func TestSurveyProp2Bound(t *testing.T) {
	d := relation.FromFacts(
		f("R", "a", "b"), f("R", "a", "c"), f("R", "a", "d"),
		f("R", "b", "x"), f("R", "b", "y"),
	)
	eta := constraint.MustEGD(
		[]logic.Atom{at("R", v("x"), v("y")), at("R", v("x"), v("z"))},
		v("y"), v("z"),
	)
	inst := MustInstance(d, constraint.NewSet(eta))
	violations := constraint.FindViolations(inst.Initial(), inst.Sigma()).Len()
	st := Survey(inst)
	if st.MaxLength > violations {
		t.Errorf("max sequence length %d exceeds violation count %d", st.MaxLength, violations)
	}
	if st.Failing != 0 {
		t.Errorf("deletion-only instance has %d failing sequences", st.Failing)
	}
}

// TestValidateRejectsGarbage: operations out of thin air are rejected.
func TestValidateRejectsGarbage(t *testing.T) {
	inst := keyInstance(t)
	if err := Validate(inst, []ops.Op{ops.Delete(f("R", "zz", "zz"))}); err == nil {
		t.Error("deleting an absent fact must not be a repairing sequence")
	}
	if err := Validate(inst, []ops.Op{ops.Insert(f("R", "a", "b"))}); err == nil {
		t.Error("inserting an existing fact fixes nothing")
	}
	if err := Validate(inst, []ops.Op{
		ops.Delete(f("R", "a", "b")),
		ops.Delete(f("R", "a", "c")),
	}); err == nil {
		t.Error("second deletion has no violation left to fix")
	}
	// Facts outside the base are rejected up front.
	schemaViolating := ops.Insert(f("Q", "zz"))
	if err := Validate(inst, []ops.Op{schemaViolating}); err == nil {
		t.Error("operation outside B(D,Σ) must be rejected")
	}
}

// TestEveryEnumeratedSequenceValidates: the incremental extension machinery
// and the direct Definition 4 validator agree on the whole tree of a mixed
// TGD+EGD instance.
func TestEveryEnumeratedSequenceValidates(t *testing.T) {
	d := relation.FromFacts(f("R", "a", "b"), f("R", "a", "c"), f("T", "a", "b"))
	sigma := constraint.MustTGD(
		[]logic.Atom{at("R", v("x"), v("y"))},
		[]logic.Atom{at("S", v("x"), v("y"), v("z"))},
	)
	eta := constraint.MustEGD(
		[]logic.Atom{at("R", v("x"), v("y")), at("R", v("x"), v("z"))},
		v("y"), v("z"),
	)
	inst := MustInstance(d, constraint.NewSet(sigma, eta))

	count := 0
	Walk(inst, func(s *State) bool {
		count++
		if count > 2000 {
			t.Fatal("tree unexpectedly large")
		}
		if err := Validate(inst, s.Ops()); err != nil {
			t.Errorf("enumerated sequence %q fails validation: %v", s, err)
			return false
		}
		return true
	})
	if count < 10 {
		t.Errorf("tree suspiciously small: %d states", count)
	}
}
