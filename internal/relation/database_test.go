package relation

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/intern"
	"repro/internal/logic"
)

func TestFactKeyDistinguishesArgs(t *testing.T) {
	// Quoting must prevent collisions like R("a,b") vs R("a","b").
	a := NewFact("R", "a,b")
	b := NewFact("R", "a", "b")
	if a.Key() == b.Key() {
		t.Errorf("keys collide: %q", a.Key())
	}
}

func TestFactAtomRoundTrip(t *testing.T) {
	f := NewFact("R", "a", "b")
	g, err := FactFromAtom(f.Atom())
	if err != nil {
		t.Fatalf("FactFromAtom: %v", err)
	}
	if !f.Equal(g) {
		t.Errorf("round trip changed the fact: %v vs %v", f, g)
	}
}

func TestFactFromAtomRejectsVariables(t *testing.T) {
	if _, err := FactFromAtom(logic.NewAtom("R", logic.Var("x"))); err == nil {
		t.Error("expected error for non-ground atom")
	}
}

func TestDatabaseInsertDelete(t *testing.T) {
	d := NewDatabase()
	f := NewFact("R", "a", "b")
	if !d.Insert(f) {
		t.Error("first insert must report change")
	}
	if d.Insert(f) {
		t.Error("duplicate insert must be a no-op")
	}
	if d.Size() != 1 {
		t.Errorf("size = %d, want 1", d.Size())
	}
	if !d.Contains(f) {
		t.Error("inserted fact must be present")
	}
	if !d.Delete(f) {
		t.Error("delete of present fact must report change")
	}
	if d.Delete(f) {
		t.Error("delete of absent fact must be a no-op")
	}
	if d.Size() != 0 || d.Contains(f) {
		t.Error("fact must be gone")
	}
}

func TestDatabaseFactsByPredAfterDelete(t *testing.T) {
	d := FromFacts(
		NewFact("R", "a"),
		NewFact("R", "b"),
		NewFact("S", "c"),
	)
	d.Delete(NewFact("R", "a"))
	rs := d.FactsByPred(intern.S("R"))
	if len(rs) != 1 || rs[0].Args()[0] != intern.S("b") {
		t.Errorf("FactsByPred(R) = %v", rs)
	}
	if preds := d.Predicates(); len(preds) != 2 || preds[0] != "R" || preds[1] != "S" {
		t.Errorf("Predicates = %v", preds)
	}
	d.Delete(NewFact("R", "b"))
	if preds := d.Predicates(); len(preds) != 1 || preds[0] != "S" {
		t.Errorf("Predicates after emptying R = %v", preds)
	}
}

func TestDatabaseDom(t *testing.T) {
	d := FromFacts(NewFact("R", "b", "a"), NewFact("S", "c"))
	dom := d.Dom()
	if strings.Join(dom, ",") != "a,b,c" {
		t.Errorf("Dom = %v, want sorted [a b c]", dom)
	}
}

func TestDatabaseCloneIndependence(t *testing.T) {
	d := FromFacts(NewFact("R", "a"))
	c := d.Clone()
	c.Insert(NewFact("R", "b"))
	c.Delete(NewFact("R", "a"))
	if !d.Contains(NewFact("R", "a")) || d.Contains(NewFact("R", "b")) {
		t.Error("mutating the clone affected the original")
	}
}

func TestDatabaseEqualAndSubset(t *testing.T) {
	a := FromFacts(NewFact("R", "a"), NewFact("R", "b"))
	b := FromFacts(NewFact("R", "b"), NewFact("R", "a"))
	if !a.Equal(b) {
		t.Error("insertion order must not matter for equality")
	}
	c := FromFacts(NewFact("R", "a"))
	if a.Equal(c) {
		t.Error("different contents must not be equal")
	}
	if !c.SubsetOf(a) {
		t.Error("c ⊆ a")
	}
	if a.SubsetOf(c) {
		t.Error("a ⊄ c")
	}
}

func TestDatabaseKeyGroupsEqualDatabases(t *testing.T) {
	a := FromFacts(NewFact("R", "a"), NewFact("S", "b"))
	b := FromFacts(NewFact("S", "b"), NewFact("R", "a"))
	if a.Key() != b.Key() {
		t.Error("equal databases must share a key")
	}
}

func TestSymmetricDiff(t *testing.T) {
	a := FromFacts(NewFact("R", "a"), NewFact("R", "b"))
	b := FromFacts(NewFact("R", "b"), NewFact("R", "c"))
	onlyA, onlyB := a.SymmetricDiff(b)
	if len(onlyA) != 1 || onlyA[0].ArgNames()[0] != "a" {
		t.Errorf("onlyA = %v", onlyA)
	}
	if len(onlyB) != 1 || onlyB[0].ArgNames()[0] != "c" {
		t.Errorf("onlyB = %v", onlyB)
	}
}

func TestFactsString(t *testing.T) {
	got := FactsString([]Fact{NewFact("S", "b"), NewFact("R", "a")})
	if got != "{R(a), S(b)}" {
		t.Errorf("FactsString = %q", got)
	}
}

func TestCompareFactsTotalOrder(t *testing.T) {
	f := func(a1, a2, b1, b2 string) bool {
		x := NewFact("R", a1, a2)
		y := NewFact("R", b1, b2)
		cmpXY := CompareFacts(x, y)
		cmpYX := CompareFacts(y, x)
		if x.Equal(y) {
			return cmpXY == 0 && cmpYX == 0
		}
		return cmpXY == -cmpYX && cmpXY != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: insert-then-delete returns the database to its original state.
func TestInsertDeleteInverse(t *testing.T) {
	f := func(pred string, args []string) bool {
		if pred == "" {
			pred = "P"
		}
		if len(args) == 0 {
			args = []string{"a"}
		}
		d := FromFacts(NewFact("Q", "fixed"))
		before := d.Key()
		fact := NewFact(pred, args...)
		if d.Contains(fact) {
			return true
		}
		d.Insert(fact)
		d.Delete(fact)
		return d.Key() == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDeleteReinsertNoDuplicateIndex is a regression test: deleting a fact
// tombstones its index entry; re-inserting it must not leave a duplicate in
// the per-predicate index.
func TestDeleteReinsertNoDuplicateIndex(t *testing.T) {
	d := FromFacts(NewFact("R", "a"), NewFact("R", "b"))
	f := NewFact("R", "a")
	d.Delete(f)
	d.Insert(f)
	if got := len(d.FactsByPred(intern.S("R"))); got != 2 {
		t.Fatalf("index has %d entries after delete+reinsert, want 2", got)
	}
	// Repeating the cycle must stay stable.
	for i := 0; i < 5; i++ {
		d.Delete(f)
		d.Insert(f)
	}
	if got := len(d.FactsByPred(intern.S("R"))); got != 2 {
		t.Fatalf("index has %d entries after repeated cycles, want 2", got)
	}
	if d.Size() != 2 {
		t.Fatalf("size = %d, want 2", d.Size())
	}
}
