// Package abc implements the classical Arenas–Bertossi–Chomicki repair
// semantics [[D]]^{ABC}_Σ used by the paper as the baseline: repairs are
// consistent databases over dom(D) and the constants of Σ whose symmetric
// difference with D is minimal under set inclusion, and consistent query
// answers are the certain answers over all repairs.
//
// # Key pieces
//
//   - Repairs / CertainAnswers: enumeration of ABC repairs and the
//     certain-answer semantics over them.
//   - Variants for the Proposition 4/5 comparisons: set-minimal,
//     cardinality-minimal, and superset repairs.
//   - conflict.go: the conflict-graph machinery the enumeration branches
//     on.
//   - partition.go: the resident form of the conflict components — a
//     persistent Partition with a layered fact→island index whose Update
//     re-partitions only the region touched by a violation delta, sharing
//     every unaffected Island (payload and all) with its predecessor.
//     This is engine machinery, not baseline: internal/core's factored
//     semantics and internal/serve's resident server are built on it.
//
// # Invariants
//
//   - For constraint sets without TGDs (EGDs and DCs only) satisfaction is
//     antimonotone, so ABC repairs are exactly the maximal consistent
//     subsets of D; these are enumerated by branching on violation bodies.
//     With TGDs the package falls back to exhaustive search over subsets
//     of the base — feasible only for the small instances in tests and
//     experiments, which is the point: this package is a reference
//     baseline, not an engine.
//
// # Neighbors
//
// Below: internal/relation, internal/constraint. Used by internal/core's
// comparison tests and cmd/experiments to reproduce the paper's
// operational-vs-ABC contrasts (Propositions 4 and 5), and — via
// Partition — by internal/core's factored engine and internal/serve's
// resident server.
package abc
