// Package ops implements the (D,Σ)-operations of the paper: updates +F that
// insert a set of facts from the base B(D,Σ) and updates −F that remove a
// set of facts (Definition 1), the fixing test, the justified-operation test
// of Definition 3, and the enumeration of all justified operations at a
// database state following the shape result of Proposition 1.
package ops

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
)

// Op is a single operation +F or −F over a set of facts F ⊆ B(D,Σ).
// The fact set is non-empty, deduplicated, and canonically sorted.
// The zero Op is invalid; construct with Insert or Delete.
type Op struct {
	insert bool
	facts  []relation.Fact
	key    string // canonical encoding, cached at construction
}

// Insert returns the operation +F.
func Insert(fs ...relation.Fact) Op { return newOp(true, fs) }

// Delete returns the operation −F.
func Delete(fs ...relation.Fact) Op { return newOp(false, fs) }

func newOp(insert bool, fs []relation.Fact) Op {
	if len(fs) == 0 {
		panic("ops: operation over an empty fact set")
	}
	seen := map[string]bool{}
	facts := make([]relation.Fact, 0, len(fs))
	for _, f := range fs {
		if k := f.Key(); !seen[k] {
			seen[k] = true
			facts = append(facts, f)
		}
	}
	relation.SortFacts(facts)
	op := Op{insert: insert, facts: facts}
	var b strings.Builder
	if insert {
		b.WriteByte('+')
	} else {
		b.WriteByte('-')
	}
	for i, f := range facts {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(f.Key())
	}
	op.key = b.String()
	return op
}

// IsInsert reports whether the operation is +F.
func (o Op) IsInsert() bool { return o.insert }

// IsDelete reports whether the operation is −F.
func (o Op) IsDelete() bool { return !o.insert }

// Facts returns F in canonical order; the slice must not be modified.
func (o Op) Facts() []relation.Fact { return o.facts }

// Size reports |F|.
func (o Op) Size() int { return len(o.facts) }

// Key returns the canonical encoding of the operation, usable as a map
// key; it is precomputed at construction.
func (o Op) Key() string { return o.key }

// String renders the operation like the paper: +R(a, b) for singletons,
// +{R(a, b), S(c)} for larger sets.
func (o Op) String() string {
	sign := "+"
	if !o.insert {
		sign = "-"
	}
	if len(o.facts) == 1 {
		return sign + o.facts[0].String()
	}
	parts := make([]string, len(o.facts))
	for i, f := range o.facts {
		parts[i] = f.String()
	}
	return fmt.Sprintf("%s{%s}", sign, strings.Join(parts, ", "))
}

// Equal reports whether two operations are identical.
func (o Op) Equal(p Op) bool {
	if o.insert != p.insert || len(o.facts) != len(p.facts) {
		return false
	}
	for i := range o.facts {
		if !o.facts[i].Equal(p.facts[i]) {
			return false
		}
	}
	return true
}

// Apply returns op(D) as a fresh database, leaving d untouched.
func (o Op) Apply(d *relation.Database) *relation.Database {
	out := d.Clone()
	o.Do(out)
	return out
}

// Do applies the operation to d in place and returns the facts that
// actually changed (were inserted or removed); feeding those to Undo
// restores d exactly.
func (o Op) Do(d *relation.Database) []relation.Fact {
	var changed []relation.Fact
	for _, f := range o.facts {
		if o.insert {
			if d.Insert(f) {
				changed = append(changed, f)
			}
		} else {
			if d.Delete(f) {
				changed = append(changed, f)
			}
		}
	}
	return changed
}

// Undo reverts a previous Do given its returned change set.
func (o Op) Undo(d *relation.Database, changed []relation.Fact) {
	for _, f := range changed {
		if o.insert {
			d.Delete(f)
		} else {
			d.Insert(f)
		}
	}
}

// InBase reports whether every fact of the operation lies in the base, as
// Definition 1 requires.
func (o Op) InBase(b *relation.Base) bool { return b.ContainsAll(o.facts) }

// SortOps orders operations canonically (by key) for deterministic output.
func SortOps(os []Op) {
	sort.Slice(os, func(i, j int) bool { return os[i].Key() < os[j].Key() })
}
