package markov

import (
	"fmt"
	"math/big"
	"math/rand"
	"runtime"
	"sort"

	"repro/internal/ops"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/repair"
)

// This file implements uniform sequence sampling over the collapsed chain:
// the classic counting-to-sampling reduction. ExploreDAG propagates path
// counts *downward* (how many sequences reach a node); sampling uniformly
// needs the opposite quantity — the number of complete sequences *below*
// each node — so BuildSequenceDAG records the DAG's structure during the
// downward sweep and then fills completion counts in a second, upward
// sweep. A walk that steps from node v to child c with probability
// C(c)/ΣC(c') draws each complete sequence of the support with probability
// exactly 1/C(root): every draw is an exact uniform sample, so Hoeffding's
// inequality applies to estimates built from them (unlike the importance-
// sampling fallback in internal/sampling, which has no such guarantee).

// SequenceDAG is a collapsible chain indexed for uniform sequence
// sampling: one node per distinct reachable sub-database, each carrying its
// outgoing operations and the exact number of complete sequences reachable
// through every edge. Build it once with BuildSequenceDAG; Sample is then
// cheap (one walk down the DAG) and safe for concurrent callers.
type SequenceDAG struct {
	inst *repair.Instance
	// nodes is keyed by the packed binary id key of each distinct database
	// (relation.AppendIDKey), the same merge key ExploreDAG uses.
	nodes map[string]*seqNode
	total *big.Int
	// states and edges mirror DAG.States / DAG.Edges.
	states, edges int
}

// seqNode is one distinct database of the collapsed chain. counts[i] is
// C(child of ops[i]), the number of complete sequences continuing through
// that edge; count is Σ counts, or 1 at absorbing nodes (the empty
// continuation). childKeys[i] references the packed key string the nodes
// map already holds, so retaining it costs a pointer, not a copy.
type seqNode struct {
	ops       []ops.Op
	childKeys []string
	counts    []*big.Int
	count     *big.Int
}

// BuildSequenceDAG explores the support of a Collapsible chain M_Σ(D) and
// indexes it for uniform sequence sampling. It returns ErrNotCollapsible
// for chains the DAG cannot represent (Compute-style callers should fall
// back to importance sampling or the tree). opt.MaxStates bounds the number
// of distinct databases; opt.Workers sizes the per-level expansion pool
// (the index is identical for every worker count — counts are exact
// integers and the merge is key-ordered). The level sweep shares
// ExploreDAG's three-phase machinery: parallel edge/key expansion,
// sequential key-ordered merge, and state materialization only for the
// first edge reaching each distinct database.
func BuildSequenceDAG(inst *repair.Instance, g Generator, opt ExploreOptions) (*SequenceDAG, error) {
	if !Collapsible(inst, g) {
		return nil, fmt.Errorf("%w (generator %s)", ErrNotCollapsible, g.Name())
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	root := inst.Root()
	rootSize := root.Result().Size()
	rootKey := string(relation.AppendIDKey(make([]byte, 0, 4*rootSize), root.FactIDs()))
	levels := make([]map[string]*dagNode, rootSize+1)
	levels[rootSize] = map[string]*dagNode{rootKey: {state: root, key: rootKey}}
	sd := &SequenceDAG{inst: inst, nodes: map[string]*seqNode{}, states: 1}
	// Non-empty levels in sweep (decreasing-size) order, replayed reversed
	// by the upward count sweep.
	var sweep [][]string

	var (
		nodes    []*dagNode
		exps     []expansion
		creators []creator
		arena    nodeArena
	)

	for size := rootSize; size >= 0; size-- {
		level := levels[size]
		levels[size] = nil
		if len(level) == 0 {
			continue
		}
		nodes = nodes[:0]
		for _, n := range level {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].key < nodes[j].key })
		keys := make([]string, len(nodes))
		for i, n := range nodes {
			keys[i] = n.key
		}
		sweep = append(sweep, keys)

		exps = expandLevel(g, nodes, exps, workers)
		creators = creators[:0]
		for i, n := range nodes {
			exp := &exps[i]
			if exp.err != nil {
				return nil, exp.err
			}
			sn := &seqNode{
				ops:       make([]ops.Op, 0, len(exp.edges)),
				childKeys: make([]string, 0, len(exp.edges)),
			}
			sd.nodes[n.key] = sn
			for j := range exp.edges {
				e := &exp.edges[j]
				ck := exp.childKey(j)
				csize := len(ck) / 4
				if csize >= size {
					return nil, fmt.Errorf("%w: operation %s grew the database", ErrNotCollapsible, e.op)
				}
				sd.edges++
				lvl := levels[csize]
				if lvl == nil {
					lvl = map[string]*dagNode{}
					levels[csize] = lvl
				}
				cn, ok := lvl[string(ck)]
				if !ok {
					cn = arena.take()
					cn.key = string(ck)
					lvl[cn.key] = cn
					creators = append(creators, creator{parent: n, child: cn, op: e.op})
					sd.states++
					if opt.MaxStates > 0 && sd.states > opt.MaxStates {
						return nil, ErrStateBudget
					}
				}
				sn.ops = append(sn.ops, e.op)
				sn.childKeys = append(sn.childKeys, cn.key)
			}
		}
		materializeStates(creators, workers)
		// The level's structure is recorded in sd.nodes; the states (and
		// their nodes) are no longer needed.
		for _, n := range nodes {
			n.state = nil
			n.key = ""
			arena.free = append(arena.free, n)
		}
	}

	// Upward sweep: levels in increasing database size, so every child's
	// count is final before its parents read it.
	for i := len(sweep) - 1; i >= 0; i-- {
		for _, k := range sweep[i] {
			n := sd.nodes[k]
			if len(n.ops) == 0 {
				n.count = big.NewInt(1)
				continue
			}
			n.counts = make([]*big.Int, len(n.ops))
			n.count = new(big.Int)
			for j, ck := range n.childKeys {
				c := sd.nodes[ck]
				n.counts[j] = c.count
				n.count.Add(n.count, c.count)
			}
		}
	}
	sd.total = sd.nodes[rootKey].count
	return sd, nil
}

// Total returns C(root), the number of complete sequences of the support —
// the denominator of the sequence-uniform semantics. It equals
// DAG.Sequences of ExploreDAG on the same chain. Callers must not modify
// the returned value.
func (sd *SequenceDAG) Total() *big.Int { return sd.total }

// States returns the number of distinct databases indexed.
func (sd *SequenceDAG) States() int { return sd.states }

// Edges returns the number of support transitions indexed.
func (sd *SequenceDAG) Edges() int { return sd.edges }

// Sample draws one complete repairing sequence uniformly at random from the
// chain's support and returns its absorbing state. Each of the Total()
// complete sequences is drawn with probability exactly 1/Total(): the walk
// steps into each child with probability proportional to the number of
// completions below it, which telescopes to the uniform distribution over
// complete sequences. One RNG draw is consumed per step. Safe for
// concurrent callers with distinct RNGs.
func (sd *SequenceDAG) Sample(rng *rand.Rand) (*repair.State, error) {
	s := sd.inst.Root()
	rootKey := relation.AppendIDKey(make([]byte, 0, 4*s.Result().Size()), s.FactIDs())
	n := sd.nodes[string(rootKey)]
	if n == nil {
		return nil, fmt.Errorf("markov: sequence DAG does not index the root database")
	}
	for len(n.ops) > 0 {
		i := prob.PickBigInt(rng, n.counts)
		next := sd.nodes[n.childKeys[i]]
		if next == nil {
			return nil, fmt.Errorf("markov: sequence DAG is missing node %x", n.childKeys[i])
		}
		// The walk never revisits the parent, so the state's database is
		// transferred, not cloned.
		s = s.ChildInPlace(n.ops[i])
		n = next
	}
	return s, nil
}
