package markov

import (
	"fmt"
	"math/big"
	"strings"

	"repro/internal/prob"
	"repro/internal/repair"
)

// Node is a state of the chain tree with its outgoing edges resolved; it is
// produced by BuildTree and used for inspection and for rendering the
// Section 3 figure of the paper.
type Node struct {
	State    *repair.State
	Pi       *big.Rat // path probability from ε to this state
	Children []ChildEdge
}

// ChildEdge pairs a transition edge with its resolved subtree.
type ChildEdge struct {
	Edge
	Node *Node
}

// IsLeaf reports whether the node is absorbing (a complete sequence).
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// BuildTree materializes the whole chain tree. Use only on small instances
// (the tree is exponential in general); opt.MaxStates guards runaway
// inputs.
func BuildTree(inst *repair.Instance, g Generator, opt ExploreOptions) (*Node, error) {
	visited := 0
	var build func(s *repair.State, pi *big.Rat) (*Node, error)
	build = func(s *repair.State, pi *big.Rat) (*Node, error) {
		visited++
		if opt.MaxStates > 0 && visited > opt.MaxStates {
			return nil, ErrStateBudget
		}
		edges, err := Step(g, s)
		if err != nil {
			return nil, err
		}
		node := &Node{State: s, Pi: pi}
		for _, e := range edges {
			child, err := build(s.Child(e.Op), new(big.Rat).Mul(pi, e.P))
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, ChildEdge{Edge: e, Node: child})
		}
		return node, nil
	}
	return build(inst.Root(), prob.One())
}

// Leaves returns the absorbing states of the tree in DFS order.
func (n *Node) Leaves() []Leaf {
	var out []Leaf
	var walk func(*Node)
	walk = func(m *Node) {
		if m.IsLeaf() {
			out = append(out, Leaf{State: m.State, Pi: m.Pi})
			return
		}
		for _, c := range m.Children {
			walk(c.Node)
		}
	}
	walk(n)
	return out
}

// CountStates returns the number of states in the tree (|RS(D,Σ)| within
// the chain support, including ε).
func (n *Node) CountStates() int {
	total := 1
	for _, c := range n.Children {
		total += c.Node.CountStates()
	}
	return total
}

// Render prints the tree with one state per line, indenting children and
// annotating edges with their probabilities, in the spirit of the paper's
// Section 3 figure:
//
//	ε
//	├─ 2/9 → -Pref(a, b)
//	│   ├─ 1/3 → -Pref(a, b), -Pref(a, c)   [absorbing]
//	...
func (n *Node) Render() string {
	var b strings.Builder
	b.WriteString(n.State.String())
	b.WriteByte('\n')
	renderChildren(&b, n, "")
	return b.String()
}

func renderChildren(b *strings.Builder, n *Node, prefix string) {
	for i, c := range n.Children {
		last := i == len(n.Children)-1
		connector, childPrefix := "├─ ", prefix+"│   "
		if last {
			connector, childPrefix = "└─ ", prefix+"    "
		}
		suffix := ""
		if c.Node.IsLeaf() {
			suffix = "   [absorbing]"
		}
		fmt.Fprintf(b, "%s%s%s → %s%s\n", prefix, connector, c.P.RatString(), c.Node.State, suffix)
		renderChildren(b, c.Node, childPrefix)
	}
}
