package fo

import (
	"fmt"
	"slices"
	"strings"

	"repro/internal/intern"
	"repro/internal/logic"
	"repro/internal/relation"
)

// Formula is a first-order formula over relational atoms and equalities.
type Formula interface {
	fmt.Stringer
	// Eval reports whether the formula holds in d under the environment
	// env (which must bind all free variables of the formula); quantifiers
	// range over the active domain dom — passed in as interned symbols so
	// that it is computed once per evaluation and every binding is an
	// integer assignment.
	Eval(d *relation.Database, dom []intern.Sym, env logic.Subst) bool
	// collectFree adds the free variables of the formula (minus bound) to
	// acc in order of first occurrence.
	collectFree(bound map[string]bool, acc *freeAcc)
}

type freeAcc struct {
	seen  map[string]bool
	order []string
}

func (a *freeAcc) add(v string) {
	if !a.seen[v] {
		a.seen[v] = true
		a.order = append(a.order, v)
	}
}

// FreeVars returns the free variables of a formula in order of first
// occurrence.
func FreeVars(f Formula) []string {
	acc := &freeAcc{seen: map[string]bool{}}
	f.collectFree(map[string]bool{}, acc)
	return acc.order
}

// Atom is an atomic formula R(t1, ..., tn).
type Atom struct{ A logic.Atom }

// Eq is the equality t1 = t2.
type Eq struct{ L, R logic.Term }

// Truth is the constant true or false.
type Truth struct{ Value bool }

// Not is negation.
type Not struct{ F Formula }

// And is binary conjunction.
type And struct{ L, R Formula }

// Or is binary disjunction.
type Or struct{ L, R Formula }

// Implies is material implication.
type Implies struct{ L, R Formula }

// Iff is biconditional.
type Iff struct{ L, R Formula }

// Exists is existential quantification over one or more variables.
type Exists struct {
	Vars []logic.Term
	F    Formula
}

// ForAll is universal quantification over one or more variables.
type ForAll struct {
	Vars []logic.Term
	F    Formula
}

// Conj builds a right-nested conjunction of the given formulas (Truth true
// for an empty list).
func Conj(fs ...Formula) Formula {
	if len(fs) == 0 {
		return Truth{Value: true}
	}
	out := fs[len(fs)-1]
	for i := len(fs) - 2; i >= 0; i-- {
		out = And{L: fs[i], R: out}
	}
	return out
}

// Disj builds a right-nested disjunction (Truth false for an empty list).
func Disj(fs ...Formula) Formula {
	if len(fs) == 0 {
		return Truth{Value: false}
	}
	out := fs[len(fs)-1]
	for i := len(fs) - 2; i >= 0; i-- {
		out = Or{L: fs[i], R: out}
	}
	return out
}

func (f Atom) Eval(d *relation.Database, _ []intern.Sym, env logic.Subst) bool {
	// Inline grounding: look the atom's argument symbols up through env and
	// probe the fact table without interning, so evaluation allocates
	// nothing and never grows the table.
	var stack [16]intern.Sym
	args := stack[:0]
	for _, t := range f.A.Args {
		if t.IsVar() {
			c, ok := env[t.Sym()]
			if !ok {
				panic(fmt.Sprintf("fo: unbound variable in atom %s under %s", f.A, env))
			}
			args = append(args, c)
		} else {
			args = append(args, t.Sym())
		}
	}
	fact, ok := relation.LookupFact(f.A.Pred, args)
	if !ok {
		return false
	}
	return d.Contains(fact)
}

func (f Eq) Eval(_ *relation.Database, _ []intern.Sym, env logic.Subst) bool {
	l := env.ApplyTerm(f.L)
	r := env.ApplyTerm(f.R)
	if l.IsVar() || r.IsVar() {
		panic(fmt.Sprintf("fo: unbound variable in equality %s = %s under %s", f.L, f.R, env))
	}
	return l.Sym() == r.Sym()
}

func (f Truth) Eval(*relation.Database, []intern.Sym, logic.Subst) bool { return f.Value }

func (f Not) Eval(d *relation.Database, dom []intern.Sym, env logic.Subst) bool {
	return !f.F.Eval(d, dom, env)
}

func (f And) Eval(d *relation.Database, dom []intern.Sym, env logic.Subst) bool {
	return f.L.Eval(d, dom, env) && f.R.Eval(d, dom, env)
}

func (f Or) Eval(d *relation.Database, dom []intern.Sym, env logic.Subst) bool {
	return f.L.Eval(d, dom, env) || f.R.Eval(d, dom, env)
}

func (f Implies) Eval(d *relation.Database, dom []intern.Sym, env logic.Subst) bool {
	return !f.L.Eval(d, dom, env) || f.R.Eval(d, dom, env)
}

func (f Iff) Eval(d *relation.Database, dom []intern.Sym, env logic.Subst) bool {
	return f.L.Eval(d, dom, env) == f.R.Eval(d, dom, env)
}

func (f Exists) Eval(d *relation.Database, dom []intern.Sym, env logic.Subst) bool {
	return quantify(f.Vars, d, dom, env, f.F, false)
}

func (f ForAll) Eval(d *relation.Database, dom []intern.Sym, env logic.Subst) bool {
	return quantify(f.Vars, d, dom, env, f.F, true)
}

// quantify evaluates ∃/∀ vars. body by iterating assignments over the
// active domain; universal quantification is early-exited on a falsifying
// assignment, existential on a satisfying one.
func quantify(vars []logic.Term, d *relation.Database, dom []intern.Sym, env logic.Subst, body Formula, universal bool) bool {
	if len(vars) == 0 {
		return body.Eval(d, dom, env)
	}
	v := vars[0].Sym()
	saved, had := env[v]
	for _, c := range dom {
		env[v] = c
		holds := quantify(vars[1:], d, dom, env, body, universal)
		if universal && !holds {
			restore(env, v, saved, had)
			return false
		}
		if !universal && holds {
			restore(env, v, saved, had)
			return true
		}
	}
	restore(env, v, saved, had)
	return universal
}

func restore(env logic.Subst, v, saved intern.Sym, had bool) {
	if had {
		env[v] = saved
	} else {
		delete(env, v)
	}
}

func (f Atom) collectFree(bound map[string]bool, acc *freeAcc) {
	for _, t := range f.A.Args {
		if t.IsVar() && !bound[t.Name()] {
			acc.add(t.Name())
		}
	}
}

func (f Eq) collectFree(bound map[string]bool, acc *freeAcc) {
	for _, t := range []logic.Term{f.L, f.R} {
		if t.IsVar() && !bound[t.Name()] {
			acc.add(t.Name())
		}
	}
}

func (f Truth) collectFree(map[string]bool, *freeAcc) {}

func (f Not) collectFree(bound map[string]bool, acc *freeAcc) { f.F.collectFree(bound, acc) }

func (f And) collectFree(bound map[string]bool, acc *freeAcc) {
	f.L.collectFree(bound, acc)
	f.R.collectFree(bound, acc)
}

func (f Or) collectFree(bound map[string]bool, acc *freeAcc) {
	f.L.collectFree(bound, acc)
	f.R.collectFree(bound, acc)
}

func (f Implies) collectFree(bound map[string]bool, acc *freeAcc) {
	f.L.collectFree(bound, acc)
	f.R.collectFree(bound, acc)
}

func (f Iff) collectFree(bound map[string]bool, acc *freeAcc) {
	f.L.collectFree(bound, acc)
	f.R.collectFree(bound, acc)
}

func (f Exists) collectFree(bound map[string]bool, acc *freeAcc) {
	collectQuantified(f.Vars, f.F, bound, acc)
}

func (f ForAll) collectFree(bound map[string]bool, acc *freeAcc) {
	collectQuantified(f.Vars, f.F, bound, acc)
}

func collectQuantified(vars []logic.Term, body Formula, bound map[string]bool, acc *freeAcc) {
	inner := make(map[string]bool, len(bound)+len(vars))
	for k := range bound {
		inner[k] = true
	}
	for _, v := range vars {
		inner[v.Name()] = true
	}
	body.collectFree(inner, acc)
}

func (f Atom) String() string { return f.A.String() }
func (f Eq) String() string   { return f.L.String() + " = " + f.R.String() }
func (f Truth) String() string {
	if f.Value {
		return "true"
	}
	return "false"
}
func (f Not) String() string     { return "!" + parens(f.F) }
func (f And) String() string     { return parens(f.L) + " & " + parens(f.R) }
func (f Or) String() string      { return parens(f.L) + " | " + parens(f.R) }
func (f Implies) String() string { return parens(f.L) + " -> " + parens(f.R) }
func (f Iff) String() string     { return parens(f.L) + " <-> " + parens(f.R) }

func (f Exists) String() string { return quantString("exists", f.Vars, f.F) }
func (f ForAll) String() string { return quantString("forall", f.Vars, f.F) }

func quantString(q string, vars []logic.Term, body Formula) string {
	names := make([]string, len(vars))
	for i, v := range vars {
		names[i] = v.Name()
	}
	return q + " " + strings.Join(names, ", ") + ": " + parens(body)
}

// parens wraps compound subformulas in parentheses for unambiguous output.
func parens(f Formula) string {
	switch f.(type) {
	case Atom, Eq, Truth, Not:
		return f.String()
	default:
		return "(" + f.String() + ")"
	}
}

// SortTuples orders tuples lexicographically; used for deterministic
// output.
func SortTuples(ts [][]string) {
	slices.SortFunc(ts, slices.Compare)
}
