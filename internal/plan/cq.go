package plan

import (
	"fmt"

	"repro/internal/fo"
	"repro/internal/intern"
	"repro/internal/logic"
)

// AsQuery compiles a plan into an equivalent first-order conjunctive query
// when the plan is one: a Distinct over any composition of Scan, natural
// Join, equality Select (col = col, col = value), and Project. The
// compiled query evaluates through the indexed homomorphism search of the
// relation package — the same join machinery the chain engine uses — which
// beats materializing intermediate relations whenever join arguments are
// selective. Plans using Diff, Union, GroupCount, Literal leaves, order
// comparisons, negation/disjunction, or projecting a constant-bound or
// duplicated column do not compile; ok is false and the caller falls back
// to algebraic evaluation.
//
// Every Scan allocates fresh variables for its columns and every operator
// threads a column → variable scope: Join unifies the variables of shared
// column names, Project narrows the scope. Columns projected away are
// therefore invisible to later joins — exactly the algebra's semantics —
// and self-joins of projections of one table stay independent.
func AsQuery(p Plan, c *Catalog) (*fo.Query, bool) {
	d, ok := p.(Distinct)
	if !ok {
		return nil, false
	}
	b := &cqBuilder{cat: c, parent: map[string]string{}, consts: map[string]string{}}
	sc, ok := b.build(d.Input)
	if !ok {
		return nil, false
	}
	// Resolve every variable through the union-find and substitute into
	// the collected atoms.
	subst := func(varName string) (logic.Term, bool) {
		root := b.find(varName)
		if v, bound := b.consts[root]; bound {
			return logic.Const(v), true
		}
		return logic.Var(root), false
	}
	atoms := make([]logic.Atom, len(b.atoms))
	for i, a := range b.atoms {
		args := make([]logic.Term, len(a.Args))
		for j, t := range a.Args {
			args[j], _ = subst(t.Name())
		}
		atoms[i] = logic.Atom{Pred: a.Pred, Args: args}
	}
	// Output variables: one distinct variable per projected column.
	out := make([]logic.Term, len(sc.cols))
	seen := map[string]bool{}
	outSyms := map[intern.Sym]bool{}
	for i, col := range sc.cols {
		t, isConst := subst(sc.vars[col])
		if isConst || seen[t.Name()] {
			// A constant-bound output column would have to range over the
			// active domain under fo semantics, and duplicate output
			// variables are invalid: both fall back to the algebra.
			return nil, false
		}
		seen[t.Name()] = true
		outSyms[t.Sym()] = true
		out[i] = t
	}
	// Existentially close the body variables that are not projected, in
	// first-occurrence order.
	var exVars []logic.Term
	exSeen := map[intern.Sym]bool{}
	for _, a := range atoms {
		for _, t := range a.Args {
			if t.IsVar() && !outSyms[t.Sym()] && !exSeen[t.Sym()] {
				exSeen[t.Sym()] = true
				exVars = append(exVars, t)
			}
		}
	}
	fs := make([]fo.Formula, len(atoms))
	for i, a := range atoms {
		fs[i] = fo.Atom{A: a}
	}
	var body fo.Formula = fo.Conj(fs...)
	if len(exVars) > 0 {
		body = fo.Exists{Vars: exVars, F: body}
	}
	q, err := fo.NewQuery("Plan", out, body)
	if err != nil {
		return nil, false
	}
	return q, true
}

// scope is the output shape of a subplan during compilation: its column
// list in header order and, per column, the name of the query variable
// currently carrying it.
type scope struct {
	cols []string
	vars map[string]string
}

// cqBuilder accumulates atoms and variable equalities while walking a
// plan. Variables are allocated fresh per Scan column; the union-find
// merges variables equated by Join and Select, and consts pins roots bound
// to literal values.
type cqBuilder struct {
	cat    *Catalog
	atoms  []logic.Atom
	nextID int
	parent map[string]string
	consts map[string]string
}

func (b *cqBuilder) freshVar(col string) string {
	b.nextID++
	return fmt.Sprintf("%s#%d", col, b.nextID)
}

func (b *cqBuilder) find(v string) string {
	r, ok := b.parent[v]
	if !ok || r == v {
		return v
	}
	root := b.find(r)
	b.parent[v] = root
	return root
}

func (b *cqBuilder) union(a, c string) bool {
	ra, rc := b.find(a), b.find(c)
	if ra == rc {
		return true
	}
	va, aBound := b.consts[ra]
	vc, cBound := b.consts[rc]
	if aBound && cBound && va != vc {
		return false // unsatisfiable; let the algebra return the empty result
	}
	b.parent[ra] = rc
	if aBound {
		b.consts[rc] = va
	}
	return true
}

func (b *cqBuilder) bindConst(v, val string) bool {
	r := b.find(v)
	if prev, bound := b.consts[r]; bound {
		return prev == val
	}
	b.consts[r] = val
	return true
}

// build walks the plan, returning the subplan's scope; ok is false when
// any node falls outside the conjunctive fragment.
func (b *cqBuilder) build(p Plan) (scope, bool) {
	switch n := p.(type) {
	case Scan:
		t, err := b.cat.Table(n.Table)
		if err != nil {
			return scope{}, false
		}
		sc := scope{cols: t.Cols, vars: make(map[string]string, len(t.Cols))}
		args := make([]logic.Term, len(t.Cols))
		for i, col := range t.Cols {
			v := b.freshVar(col)
			sc.vars[col] = v
			args[i] = logic.Var(v)
		}
		b.atoms = append(b.atoms, logic.Atom{Pred: t.Pred, Args: args})
		return sc, true
	case Join:
		l, ok := b.build(n.L)
		if !ok {
			return scope{}, false
		}
		r, ok := b.build(n.R)
		if !ok {
			return scope{}, false
		}
		out := scope{cols: append([]string(nil), l.cols...), vars: l.vars}
		for _, col := range r.cols {
			if _, shared := l.vars[col]; shared {
				if !b.union(l.vars[col], r.vars[col]) {
					return scope{}, false
				}
			} else {
				out.cols = append(out.cols, col)
				out.vars[col] = r.vars[col]
			}
		}
		return out, true
	case Select:
		sc, ok := b.build(n.Input)
		if !ok {
			return scope{}, false
		}
		if !b.cond(n.Cond, sc) {
			return scope{}, false
		}
		return sc, true
	case Project:
		sc, ok := b.build(n.Input)
		if !ok {
			return scope{}, false
		}
		out := scope{cols: n.Cols, vars: make(map[string]string, len(n.Cols))}
		for _, col := range n.Cols {
			v, ok := sc.vars[col]
			if !ok {
				return scope{}, false
			}
			out.vars[col] = v
		}
		return out, true
	case Distinct:
		return b.build(n.Input)
	default:
		return scope{}, false
	}
}

// cond folds an equality condition into the builder; non-equality
// operators, disjunction, and negation are outside the fragment.
func (b *cqBuilder) cond(c Cond, sc scope) bool {
	switch n := c.(type) {
	case ColEqVal:
		return n.Op == "=" && sc.vars[n.Col] != "" && b.bindConst(sc.vars[n.Col], n.Val)
	case ColEqCol:
		return n.Op == "=" && sc.vars[n.Col1] != "" && sc.vars[n.Col2] != "" && b.union(sc.vars[n.Col1], sc.vars[n.Col2])
	case AndCond:
		for _, sub := range n.Conds {
			if !b.cond(sub, sc) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
