package sampling

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/generators"
	"repro/internal/logic"
	"repro/internal/markov"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/repair"
)

func v(n string) logic.Term                    { return logic.Var(n) }
func at(p string, ts ...logic.Term) logic.Atom { return logic.NewAtom(p, ts...) }
func f(p string, args ...string) relation.Fact { return relation.NewFact(p, args...) }

// preferenceInstance is the paper's running example (Section 3).
func preferenceInstance(t *testing.T) (*repair.Instance, *fo.Query) {
	t.Helper()
	d := relation.FromFacts(
		f("Pref", "a", "b"), f("Pref", "a", "c"), f("Pref", "a", "d"),
		f("Pref", "b", "a"), f("Pref", "b", "d"), f("Pref", "c", "a"),
	)
	dc := constraint.MustDC([]logic.Atom{at("Pref", v("x"), v("y")), at("Pref", v("y"), v("x"))})
	inst := repair.MustInstance(d, constraint.NewSet(dc))
	x, y := v("x"), v("y")
	q := fo.MustQuery("Q", []logic.Term{x}, fo.ForAll{
		Vars: []logic.Term{y},
		F:    fo.Or{L: fo.Atom{A: at("Pref", x, y)}, R: fo.Eq{L: x, R: y}},
	})
	return inst, q
}

func TestWalkReachesAbsorbingState(t *testing.T) {
	inst, _ := preferenceInstance(t)
	rng := rand.New(rand.NewSource(1))
	s, err := Walk(inst, generators.Preference{}, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsComplete() {
		t.Error("walk must end in an absorbing state")
	}
	if !s.IsSuccessful() {
		t.Error("deletion-only chain walks always succeed")
	}
	if s.Len() != 2 {
		t.Errorf("walk length = %d, want 2 (two conflicts)", s.Len())
	}
}

func TestWalkBudget(t *testing.T) {
	inst, _ := preferenceInstance(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := Walk(inst, generators.Preference{}, rng, 1); err != ErrWalkBudget {
		t.Errorf("err = %v, want ErrWalkBudget", err)
	}
}

func TestSampleMatchesCP(t *testing.T) {
	// Pr(Sample = 1) = CP(a) = 0.45 for the paper's example; check the
	// frequency over many runs.
	inst, q := preferenceInstance(t)
	rng := rand.New(rand.NewSource(7))
	n := 20000
	ones := 0
	for i := 0; i < n; i++ {
		b, err := Sample(inst, generators.Preference{}, q, []string{"a"}, rng)
		if err != nil {
			t.Fatal(err)
		}
		ones += b
	}
	got := float64(ones) / float64(n)
	if math.Abs(got-0.45) > 0.01 {
		t.Errorf("Sample frequency = %.4f, want ≈ 0.45", got)
	}
}

func TestEstimateTupleWithinEps(t *testing.T) {
	inst, q := preferenceInstance(t)
	est := &Estimator{Inst: inst, Gen: generators.Preference{}, Seed: 11}
	e, run, err := est.EstimateTuple(q, []string{"a"}, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if run.N != 150 {
		t.Errorf("n = %d, want the paper's 150 at ε = δ = 0.1", run.N)
	}
	if run.FailingWalks != 0 {
		t.Errorf("failing walks = %d, want 0", run.FailingWalks)
	}
	if math.Abs(e.P-0.45) > 0.1 {
		t.Errorf("estimate %.4f deviates from 0.45 by more than ε", e.P)
	}
}

// TestAdditiveErrorGuarantee measures the empirical coverage of the (ε,δ)
// guarantee: over many independent estimations, the fraction within ε of
// the exact CP must be at least 1−δ (Theorem 9). Exact value from the
// exact engine.
func TestAdditiveErrorGuarantee(t *testing.T) {
	inst, q := preferenceInstance(t)
	sem, err := core.Compute(inst, generators.Preference{}, markov.ExploreOptions{MaxStates: 1000})
	if err != nil {
		t.Fatal(err)
	}
	exact := prob.Float(sem.CP(q, []string{"a"}))

	const eps, delta = 0.1, 0.1
	trials := 60
	within := 0
	for i := 0; i < trials; i++ {
		est := &Estimator{Inst: inst, Gen: generators.Preference{}, Seed: int64(1000 + i)}
		e, _, err := est.EstimateTuple(q, []string{"a"}, eps, delta)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(e.P-exact) <= eps {
			within++
		}
	}
	coverage := float64(within) / float64(trials)
	if coverage < 1-delta {
		t.Errorf("coverage %.3f below the 1-δ = %.2f guarantee", coverage, 1-delta)
	}
}

func TestEstimateAnswersAllTuples(t *testing.T) {
	inst, q := preferenceInstance(t)
	est := &Estimator{Inst: inst, Gen: generators.Preference{}, Seed: 3}
	run, err := est.EstimateWithN(q, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// Only tuple (a) can be an answer in any repair.
	if len(run.Estimates) != 1 {
		t.Fatalf("estimates = %v, want just (a)", run.Estimates)
	}
	e := run.Estimates[0]
	if e.Tuple[0] != "a" {
		t.Errorf("tuple = %v", e.Tuple)
	}
	if math.Abs(e.P-0.45) > 0.05 {
		t.Errorf("estimate %.4f too far from 0.45", e.P)
	}
	if e.Conditional != e.P {
		t.Errorf("non-failing chain: conditional %.4f must equal plain estimate %.4f", e.Conditional, e.P)
	}
}

func TestEstimatorDeterministicForSeed(t *testing.T) {
	inst, q := preferenceInstance(t)
	a := &Estimator{Inst: inst, Gen: generators.Preference{}, Seed: 42}
	b := &Estimator{Inst: inst, Gen: generators.Preference{}, Seed: 42}
	runA, err := a.EstimateWithN(q, 500)
	if err != nil {
		t.Fatal(err)
	}
	runB, err := b.EstimateWithN(q, 500)
	if err != nil {
		t.Fatal(err)
	}
	if runA.Lookup([]string{"a"}).Count != runB.Lookup([]string{"a"}).Count {
		t.Error("same seed must reproduce identical counts")
	}
}

func TestEstimatorParallelWorkers(t *testing.T) {
	inst, q := preferenceInstance(t)
	est := &Estimator{Inst: inst, Gen: generators.Preference{}, Seed: 5, Workers: 4}
	run, err := est.EstimateWithN(q, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if run.SuccessfulWalks != 2000 {
		t.Errorf("successful walks = %d, want 2000", run.SuccessfulWalks)
	}
	e := run.Lookup([]string{"a"})
	if math.Abs(e.P-0.45) > 0.05 {
		t.Errorf("parallel estimate %.4f too far from 0.45", e.P)
	}
}

// TestFailingChainConditional: on the paper's failing instance
// (D = {R(a)}, Σ = {R→T, ¬T}) under the uniform chain, half the walks fail;
// the conditional estimate of the empty database's answers normalizes by
// the successful half.
func TestFailingChainConditional(t *testing.T) {
	d := relation.FromFacts(f("R", "a"))
	tgd := constraint.MustTGD([]logic.Atom{at("R", v("x"))}, []logic.Atom{at("T", v("x"))})
	dc := constraint.MustDC([]logic.Atom{at("T", v("x"))})
	inst := repair.MustInstance(d, constraint.NewSet(tgd, dc))

	// Boolean query: is there any R fact? (False on the empty repair.)
	q := fo.MustQuery("AnyR", nil,
		fo.Exists{Vars: []logic.Term{v("x")}, F: fo.Atom{A: at("R", v("x"))}})

	est := &Estimator{Inst: inst, Gen: generators.Uniform{}, Seed: 9}
	run, err := est.EstimateWithN(q, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if run.FailingWalks == 0 {
		t.Fatal("uniform chain on this instance must produce failing walks")
	}
	frac := float64(run.FailingWalks) / float64(run.N)
	if math.Abs(frac-0.5) > 0.03 {
		t.Errorf("failing fraction = %.3f, want ≈ 0.5 (two equiprobable root edges)", frac)
	}
	// The only repair is ∅, which answers nothing: no estimates.
	if len(run.Estimates) != 0 {
		t.Errorf("estimates = %v, want none", run.Estimates)
	}
}

// TestSampleAgainstExactOCA compares sampled estimates with the exact OCA
// across all tuples on a trust-weighted instance.
func TestSampleAgainstExactOCA(t *testing.T) {
	d := relation.FromFacts(
		f("R", "a", "b"), f("R", "a", "c"),
		f("R", "q", "r"), f("R", "q", "s"),
	)
	eta := constraint.MustEGD(
		[]logic.Atom{at("R", v("x"), v("y")), at("R", v("x"), v("z"))},
		v("y"), v("z"),
	)
	inst := repair.MustInstance(d, constraint.NewSet(eta))
	gen := generators.NewTrust(prob.R(1, 2))
	if err := gen.Set(f("R", "a", "b"), prob.R(4, 5)); err != nil {
		t.Fatal(err)
	}
	if err := gen.Set(f("R", "a", "c"), prob.R(1, 5)); err != nil {
		t.Fatal(err)
	}

	x, y := v("x"), v("y")
	q := fo.MustQuery("Keys", []logic.Term{x},
		fo.Exists{Vars: []logic.Term{y}, F: fo.Atom{A: at("R", x, y)}})

	sem, err := core.Compute(inst, gen, markov.ExploreOptions{MaxStates: 100000})
	if err != nil {
		t.Fatal(err)
	}
	exactOCA := sem.OCA(q)

	est := &Estimator{Inst: inst, Gen: gen, Seed: 13}
	run, err := est.EstimateWithN(q, 4000)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range exactOCA.Answers {
		e := run.Lookup(a.Tuple)
		if diff := prob.AbsDiff(e.P, a.P); diff > 0.05 {
			t.Errorf("tuple %v: estimate %.4f vs exact %s (diff %.4f)",
				a.Tuple, e.P, a.P.RatString(), diff)
		}
	}
}

func TestEstimateBadParams(t *testing.T) {
	inst, q := preferenceInstance(t)
	est := &Estimator{Inst: inst, Gen: generators.Preference{}, Seed: 1}
	if _, err := est.EstimateAnswers(q, 0, 0.1); err == nil {
		t.Error("ε = 0 must fail")
	}
	if _, err := est.EstimateWithN(q, 0); err == nil {
		t.Error("n = 0 must fail")
	}
}

// ratOnly hides a generator's IntWeighter implementation, forcing Walk onto
// the exact big.Rat path through markov.Step.
type ratOnly struct{ markov.Generator }

// TestWalkIntWeightFastPathBitIdentical: for integer-weight generators the
// fast sampling path must follow exactly the same edges as the exact
// rational path from the same seed — the RNG consumption and the picked
// indexes coincide, so the final states are identical, not just equal in
// distribution.
func TestWalkIntWeightFastPathBitIdentical(t *testing.T) {
	inst, _ := preferenceInstance(t)
	gens := []markov.Generator{generators.Uniform{}, generators.Preference{}}
	for _, g := range gens {
		if _, ok := g.(markov.IntWeighter); !ok {
			t.Fatalf("generator %s does not implement IntWeighter", g.Name())
		}
		for seed := int64(0); seed < 200; seed++ {
			fast, err := Walk(inst, g, rand.New(rand.NewSource(seed)), 0)
			if err != nil {
				t.Fatalf("%s fast walk: %v", g.Name(), err)
			}
			exact, err := Walk(inst, ratOnly{g}, rand.New(rand.NewSource(seed)), 0)
			if err != nil {
				t.Fatalf("%s exact walk: %v", g.Name(), err)
			}
			if fast.Key() != exact.Key() {
				t.Fatalf("%s seed %d: fast walk %q, exact walk %q", g.Name(), seed, fast, exact)
			}
		}
	}
}

// TestEstimatorDeterministicAcrossWorkerCounts: for a fixed seed the run is
// BIT-IDENTICAL no matter how many workers split the walks, because each
// walk's RNG is derived from (Seed, walk index) — the worker that happens
// to execute a walk never influences its trajectory. (A previous version
// derived RNGs per worker, so the estimate silently depended on Workers.)
func TestEstimatorDeterministicAcrossWorkerCounts(t *testing.T) {
	inst, q := preferenceInstance(t)
	var want *Run
	for _, workers := range []int{1, 2, 3, 4, 8} {
		est := &Estimator{Inst: inst, Gen: generators.Preference{}, Seed: 99, Workers: workers}
		run, err := est.EstimateWithN(q, 401) // odd n: shares are deliberately uneven
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = run
			continue
		}
		if !reflect.DeepEqual(run, want) {
			t.Fatalf("workers=%d: run differs from workers=1:\n got %+v\nwant %+v", workers, run, want)
		}
	}
}

// TestEstimatorWorkerInvariantUniformIntPath covers the IntWeighter walk
// fast path (uniform generator) with the same bit-identity requirement.
func TestEstimatorWorkerInvariantUniformIntPath(t *testing.T) {
	d := relation.FromFacts(
		f("R", "a", "1"), f("R", "a", "2"),
		f("R", "b", "1"), f("R", "b", "2"),
		f("R", "c", "1"), f("R", "c", "2"),
	)
	eta := constraint.MustEGD(
		[]logic.Atom{at("R", v("x"), v("y")), at("R", v("x"), v("z"))},
		v("y"), v("z"),
	)
	inst := repair.MustInstance(d, constraint.NewSet(eta))
	x, y := v("x"), v("y")
	q := fo.MustQuery("Keys", []logic.Term{x},
		fo.Exists{Vars: []logic.Term{y}, F: fo.Atom{A: at("R", x, y)}})
	var want *Run
	for _, workers := range []int{1, 5} {
		est := &Estimator{Inst: inst, Gen: generators.Uniform{}, Seed: 7, Workers: workers}
		run, err := est.EstimateWithN(q, 203)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = run
			continue
		}
		if !reflect.DeepEqual(run, want) {
			t.Fatalf("workers=%d: run differs from workers=1", workers)
		}
	}
}
