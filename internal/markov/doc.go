// Package markov implements repairing Markov chains (Definition 5 of the
// paper): tree-shaped Markov chains whose states are repairing sequences,
// whose absorbing states are exactly the complete sequences, and whose
// transition probabilities are supplied by a Generator (the paper's
// repairing Markov chain generator M_Σ).
//
// # Key types
//
//   - Generator: assigns transition probabilities to the valid extensions
//     of a state. Implementations live in internal/generators.
//   - Markovian: the capability interface for memoryless generators —
//     Transitions is a pure function of (s.Result(), exts). Combined with
//     a TGD-free Σ (Collapsible), it licenses collapsing the sequence
//     tree into the DAG of distinct sub-databases.
//   - IntWeighter: the integer-weight fast path; random walks step with a
//     single RNG draw and zero big.Rat work, bit-identical to the exact
//     path.
//   - Explore / ExploreDAG: exact exploration. Explore walks the sequence
//     tree; ExploreDAG (dag.go) merges states by Database.Key(), sweeps
//     size levels in decreasing order (every deletion-only edge shrinks
//     the database, so size classes are a topological order), accumulates
//     exact path mass π and big.Int sequence counts per node, and expands
//     each frontier with a worker pool.
//   - SemanticsMode (mode.go): walk-induced vs sequence-uniform — which
//     distribution over complete sequences the layers above compute.
//   - SequenceDAG (seqdag.go): the counting-to-sampling reduction. A
//     second, upward sweep turns the collapsed DAG into per-node
//     completion counts; count-guided walks then draw complete sequences
//     exactly uniformly, which internal/sampling uses for the uniform
//     semantics.
//
// # Invariants (the determinism contract)
//
//   - Exact arithmetic is big.Rat end to end; hitting distributions sum to
//     exactly 1 or the exploration errors (ErrNotWellDefined).
//   - ExploreDAG and BuildSequenceDAG produce bit-identical results for
//     every Workers value: levels merge sequentially in sorted-key order,
//     and workers only compute per-node expansions.
//   - Markovian implementations must be safe for concurrent Transitions /
//     IntWeights calls (the worker pool calls them from goroutines).
//   - Collapsing is gated, never assumed: history-dependent generators and
//     TGD constraint sets take the sequence tree (ErrNotCollapsible), and
//     the equivalence suite in internal/core proves the gate is
//     load-bearing.
//
// # Neighbors
//
// Below: internal/repair (states), internal/ops, internal/prob. Above:
// internal/generators (implementations), internal/sampling (walks),
// internal/core (assembles Semantics from explorations).
package markov
