package abc

import (
	"sort"

	"repro/internal/constraint"
	"repro/internal/relation"
)

// ConflictGraph is the conflict hypergraph of an inconsistent database:
// one hyperedge per violation, containing the facts of the violation body.
// It supports the repair-localization optimization sketched in Section 6 of
// the paper (Eiter et al.): repairing can be restricted to the connected
// components of the conflict graph, since facts outside every violation are
// never touched by deletion-only repairing sequences.
type ConflictGraph struct {
	edges [][]relation.Fact
}

// BuildConflictGraph computes the hypergraph from V(D,Σ).
func BuildConflictGraph(d *relation.Database, sigma *constraint.Set) *ConflictGraph {
	return NewConflictGraph(constraint.FindViolations(d, sigma))
}

// NewConflictGraph builds the hypergraph from an already-computed violation
// set, so callers holding a cached V(D,Σ) (repair.Instance.Root keeps one)
// skip the second homomorphism search. Hyperedges are deduplicated by the
// interned body image, which the two orientations of an EGD match share, so
// symmetric homomorphisms collapse into one edge without building strings.
func NewConflictGraph(vs *constraint.Violations) *ConflictGraph {
	seen := map[string]bool{}
	g := &ConflictGraph{}
	for _, v := range vs.ByID() {
		key := v.BodyPack()
		if !seen[key] {
			seen[key] = true
			g.edges = append(g.edges, v.BodyFacts())
		}
	}
	return g
}

// Edges returns the hyperedges (violation bodies), deduplicated.
func (g *ConflictGraph) Edges() [][]relation.Fact { return g.edges }

// Facts returns the sorted set of facts involved in at least one conflict.
func (g *ConflictGraph) Facts() []relation.Fact {
	seen := map[relation.Fact]bool{}
	var out []relation.Fact
	for _, e := range g.edges {
		for _, f := range e {
			if !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	relation.SortFacts(out)
	return out
}

// Components returns the connected components of the hypergraph as fact
// sets, each sorted, with the components ordered by their smallest fact.
// Two facts are connected when some chain of overlapping hyperedges links
// them. The union-find runs over dense integer indexes keyed by interned
// fact handles, so component formation allocates no per-fact strings.
func (g *ConflictGraph) Components() [][]relation.Fact {
	idx := map[relation.Fact]int32{}
	var facts []relation.Fact
	var parent []int32
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	indexOf := func(f relation.Fact) int32 {
		if i, ok := idx[f]; ok {
			return i
		}
		i := int32(len(facts))
		idx[f] = i
		facts = append(facts, f)
		parent = append(parent, i)
		return i
	}
	for _, e := range g.edges {
		if len(e) == 0 {
			continue
		}
		ra := find(indexOf(e[0]))
		for _, f := range e[1:] {
			rb := find(indexOf(f))
			if ra != rb {
				parent[rb] = ra
			}
		}
	}
	byRoot := map[int32][]relation.Fact{}
	var roots []int32
	for i, f := range facts {
		r := find(int32(i))
		if _, ok := byRoot[r]; !ok {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], f)
	}
	out := make([][]relation.Fact, 0, len(roots))
	for _, r := range roots {
		fs := byRoot[r]
		relation.SortFacts(fs)
		out = append(out, fs)
	}
	// Deterministic component order, independent of map iteration and of
	// the process-local fact interning order: sort by the smallest fact.
	sort.Slice(out, func(i, j int) bool {
		return relation.CompareFacts(out[i][0], out[j][0]) < 0
	})
	return out
}
