package prob

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/bits"
	"math/rand"
)

// Zero returns a fresh rational 0.
func Zero() *big.Rat { return new(big.Rat) }

// One returns a fresh rational 1.
func One() *big.Rat { return big.NewRat(1, 1) }

// R is shorthand for big.NewRat.
func R(num, den int64) *big.Rat { return big.NewRat(num, den) }

// Sum returns the sum of the rationals (zero for an empty list).
func Sum(rs []*big.Rat) *big.Rat {
	total := new(big.Rat)
	for _, r := range rs {
		total.Add(total, r)
	}
	return total
}

// IsZero reports whether r equals 0.
func IsZero(r *big.Rat) bool { return r.Sign() == 0 }

// IsOne reports whether r equals 1.
func IsOne(r *big.Rat) bool { return r.Cmp(One()) == 0 }

// InUnit reports whether 0 ≤ r ≤ 1.
func InUnit(r *big.Rat) bool { return r.Sign() >= 0 && r.Cmp(One()) <= 0 }

// ErrBadWeights is returned by Normalize when weights are unusable.
var ErrBadWeights = errors.New("prob: weights must be non-negative with positive sum")

// Normalize scales non-negative weights to sum to exactly 1. It fails when
// any weight is negative or all weights are zero. The input is not
// modified.
func Normalize(ws []*big.Rat) ([]*big.Rat, error) {
	total := new(big.Rat)
	for _, w := range ws {
		if w.Sign() < 0 {
			return nil, ErrBadWeights
		}
		total.Add(total, w)
	}
	if total.Sign() == 0 {
		return nil, ErrBadWeights
	}
	out := make([]*big.Rat, len(ws))
	for i, w := range ws {
		out[i] = new(big.Rat).Quo(w, total)
	}
	return out, nil
}

// SumsToOne reports whether the rationals sum to exactly 1.
func SumsToOne(rs []*big.Rat) bool { return IsOne(Sum(rs)) }

// Float converts a rational to float64 (for reporting only; all chain
// arithmetic stays exact).
func Float(r *big.Rat) float64 {
	f, _ := r.Float64()
	return f
}

// Format renders a rational as "num/den (decimal)", e.g. "9/20 (0.4500)".
func Format(r *big.Rat) string {
	if r.IsInt() {
		return fmt.Sprintf("%s (%.4f)", r.Num().String(), Float(r))
	}
	return fmt.Sprintf("%s/%s (%.4f)", r.Num().String(), r.Denom().String(), Float(r))
}

// HoeffdingSamples returns the number of independent samples
// n = ⌈ln(2/δ) / (2ε²)⌉ sufficient for the sample mean of {0,1} variables
// to lie within ε of its expectation with probability at least 1−δ
// (Hoeffding's inequality, as used in the proof of Theorem 9). For
// ε = δ = 0.1 this yields the paper's n = 150.
func HoeffdingSamples(eps, delta float64) (int, error) {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("prob: need ε > 0 and 0 < δ < 1, got ε=%v δ=%v", eps, delta)
	}
	n := math.Ceil(math.Log(2/delta) / (2 * eps * eps))
	if n < 1 {
		n = 1
	}
	if n > math.MaxInt32 {
		return 0, fmt.Errorf("prob: sample size %.0f is impractically large", n)
	}
	return int(n), nil
}

// Pick draws an index with probability proportional to the given
// non-negative weights, using the provided source of randomness. It panics
// on an empty or all-zero weight list (the chain machinery validates
// weights before sampling).
func Pick(rng *rand.Rand, ws []*big.Rat) int {
	const resolution = 1 << 53
	if len(ws) == 0 {
		panic("prob: Pick requires non-empty weights with positive sum")
	}
	// Equal-weight fast path (e.g. the uniform generator): the index is
	// floor(u·k / 2^53), which is exactly what the general cumulative walk
	// below computes for equal weights from the same single RNG draw — the
	// random stream and the outcome are bit-identical, only the big.Rat
	// arithmetic is skipped.
	if AllEqual(ws) {
		if ws[0].Sign() <= 0 {
			panic("prob: Pick requires non-empty weights with positive sum")
		}
		u := rng.Int63n(resolution)
		hi, lo := bits.Mul64(uint64(u), uint64(len(ws)))
		return int(hi<<(64-53) | lo>>53)
	}
	total := Sum(ws)
	if total.Sign() <= 0 {
		panic("prob: Pick requires non-empty weights with positive sum")
	}
	// Draw u uniform in [0, total) as an exact rational with a 53-bit
	// numerator, then walk the cumulative sum. Precision is bounded by the
	// RNG, not by floating-point accumulation.
	u := new(big.Rat).SetFrac64(rng.Int63n(resolution), resolution)
	u.Mul(u, total)
	acc := new(big.Rat)
	for i, w := range ws {
		if w.Sign() == 0 {
			continue
		}
		acc.Add(acc, w)
		if u.Cmp(acc) < 0 {
			return i
		}
	}
	// Numerically unreachable; return the last positive-weight index.
	for i := len(ws) - 1; i >= 0; i-- {
		if ws[i].Sign() > 0 {
			return i
		}
	}
	panic("prob: unreachable")
}

// AllEqual reports whether every rational in the list is equal; shared
// pointers short-circuit without arithmetic, so generators that return one
// Rat for every edge are recognized in O(n) pointer compares.
func AllEqual(ws []*big.Rat) bool {
	for i := 1; i < len(ws); i++ {
		if ws[i] != ws[0] && ws[i].Cmp(ws[0]) != 0 {
			return false
		}
	}
	return true
}

// MulInt64 returns r·k as a fresh rational.
func MulInt64(r *big.Rat, k int64) *big.Rat {
	return new(big.Rat).Mul(r, new(big.Rat).SetInt64(k))
}

// PickInt draws an index with probability proportional to the given
// non-negative integer weights. It consumes exactly one RNG draw — the
// same draw Pick makes — and returns exactly the index Pick would return
// for the rational weights w_i/Σw, so integer-weight generators sample
// bit-identical walks without big.Rat arithmetic. It panics on an empty or
// non-positive weight list.
func PickInt(rng *rand.Rand, ws []int64) int {
	const resolution = 1 << 53
	var total uint64
	for _, w := range ws {
		if w < 0 {
			panic("prob: PickInt requires non-negative weights")
		}
		total += uint64(w)
	}
	if len(ws) == 0 || total == 0 {
		panic("prob: PickInt requires non-empty weights with positive sum")
	}
	u := uint64(rng.Int63n(resolution))
	// Index = smallest i with u·total < cum_i·2^53 over 128-bit products.
	lhsHi, lhsLo := bits.Mul64(u, total)
	var cum uint64
	for i, w := range ws {
		if w == 0 {
			continue
		}
		cum += uint64(w)
		rhsHi, rhsLo := cum>>(64-53), cum<<53
		if lhsHi < rhsHi || (lhsHi == rhsHi && lhsLo < rhsLo) {
			return i
		}
	}
	for i := len(ws) - 1; i >= 0; i-- {
		if ws[i] > 0 {
			return i
		}
	}
	panic("prob: unreachable")
}

// PickBigInt is PickInt over arbitrary-precision weights: it draws an index
// with probability proportional to the given non-negative big.Int weights,
// consuming exactly one RNG draw, and returns exactly the index PickInt
// (and hence Pick) would return whenever the weights fit in int64. The
// sequence-uniform sampler uses it to step through DAG nodes whose
// completion counts exceed 2^63. It panics on an empty or non-positive
// weight list.
func PickBigInt(rng *rand.Rand, ws []*big.Int) int {
	const resolution = 53 // u is drawn from [0, 2^53)
	total := new(big.Int)
	for _, w := range ws {
		if w.Sign() < 0 {
			panic("prob: PickBigInt requires non-negative weights")
		}
		total.Add(total, w)
	}
	if len(ws) == 0 || total.Sign() == 0 {
		panic("prob: PickBigInt requires non-empty weights with positive sum")
	}
	u := rng.Int63n(1 << resolution)
	// Index = smallest i with u·total < cum_i·2^53 — the same comparison
	// PickInt makes over 128-bit products, here over big.Ints.
	lhs := new(big.Int).Mul(big.NewInt(u), total)
	cum := new(big.Int)
	rhs := new(big.Int)
	for i, w := range ws {
		if w.Sign() == 0 {
			continue
		}
		cum.Add(cum, w)
		rhs.Lsh(cum, resolution)
		if lhs.Cmp(rhs) < 0 {
			return i
		}
	}
	for i := len(ws) - 1; i >= 0; i-- {
		if ws[i].Sign() > 0 {
			return i
		}
	}
	panic("prob: unreachable")
}

// Equal reports whether two rationals are equal.
func Equal(a, b *big.Rat) bool { return a.Cmp(b) == 0 }

// AbsDiff returns |a − b| as a float64; used by approximation tests to
// compare estimates against exact values.
func AbsDiff(a float64, b *big.Rat) float64 {
	return math.Abs(a - Float(b))
}
