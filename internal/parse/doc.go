// Package parse implements the text formats of the library: databases
// (lists of facts), constraint sets (TGDs, EGDs, DCs), and first-order
// queries. The formats follow the Prolog case convention — identifiers
// beginning with an uppercase letter are variables, everything else is a
// constant — because the paper's mathematical convention (x, y vs. a, b)
// cannot be distinguished lexically.
//
// Grammar sketch (all statements end with '.'):
//
//	fact        := pred '(' const {',' const} ')'
//	constraint  := atoms '->' (atoms | var '=' var | 'false')
//	             | '!' '(' atoms ')'
//	query       := name '(' vars ')' ':=' formula
//	formula     := iff
//	iff         := implies {'<->' implies}
//	implies     := or ['->' implies]
//	or          := and {'|' and}
//	and         := unary {'&' unary}
//	unary       := '!' unary | 'exists' vars ':' unary
//	             | 'forall' vars ':' unary | primary
//	primary     := '(' formula ')' | atom | term '=' term
//	             | term '!=' term | 'true' | 'false'
//
// # Key pieces
//
//   - Database / Constraints / Query: the three entry points (used by
//     internal/cliutil and every example).
//   - render.go: the inverse of the parser — Render* functions quote
//     anything the lexer would not re-read verbatim, and
//     parse → render → reparse is a fixed point.
//   - fuzz_test.go: native fuzz targets (FuzzDatabase, FuzzConstraints,
//     FuzzQuery) with checked-in corpora enforcing no-panic and the
//     round-trip fixed point; CI runs a short pass per target.
//
// # Invariants
//
//   - Parsing is deterministic and side-effect-free apart from symbol
//     interning; errors carry line/column positions.
//   - Everything the parser accepts, the renderer can print back such
//     that reparsing yields the same value — tools may round-trip freely.
//
// # Neighbors
//
// Below: internal/logic, internal/relation, internal/constraint,
// internal/fo (the parsed value types). Above: internal/cliutil, cmd/*,
// examples/*.
package parse
