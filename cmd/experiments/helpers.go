package main

// Small constructors shared by the experiment files, avoiding repeated
// package-qualified boilerplate.

import (
	"math/rand"

	"repro/internal/constraint"
	"repro/internal/logic"
	"repro/internal/plan"
	"repro/internal/practical"
	"repro/internal/relation"
	"repro/internal/workload"
)

func relationFromFacts(fs ...relation.Fact) *relation.Database {
	return relation.FromFacts(fs...)
}

func mustTGD(body logic.Atom, head logic.Atom) *constraint.Constraint {
	return constraint.MustTGD([]logic.Atom{body}, []logic.Atom{head})
}

func mustDC(body ...logic.Atom) *constraint.Constraint {
	return constraint.MustDC(body)
}

func newSet(cs ...*constraint.Constraint) *constraint.Set {
	return constraint.NewSet(cs...)
}

// newPracticalSampler draws one R_del per keyed table of the catalog, for
// timing the rewritten plan shape.
func newPracticalSampler(oc *workload.OrdersCatalog) map[string]*plan.Relation {
	rng := rand.New(rand.NewSource(99))
	repl := map[string]*plan.Relation{}
	for _, table := range oc.Catalog.KeyedTables() {
		t, err := oc.Catalog.Table(table)
		if err != nil {
			panic(err)
		}
		groups := practical.KeyGroups(oc.Catalog.DB(), t.Pred, len(t.Cols), oc.Catalog.Key(table))
		del := practical.SampleRdel(rng, groups, practical.Policy{})
		repl[table] = plan.FromFacts(table+"_del", t.Cols, del)
	}
	return repl
}
