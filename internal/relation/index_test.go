package relation

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/intern"
	"repro/internal/logic"
)

// scanCountAt is the from-scratch reference for CountAt: a filtered scan of
// the full fact list.
func scanCountAt(fs []Fact, pred intern.Sym, pos int, sym intern.Sym) int {
	n := 0
	for _, f := range fs {
		if f.Pred() == pred && pos < f.Arity() && f.Arg(pos) == sym {
			n++
		}
	}
	return n
}

// TestSealedIndexMatchesScan: after Seal, every (pred, pos, sym) bucket
// agrees with a filtered scan, both in cardinality and in membership.
func TestSealedIndexMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDatabase()
	consts := make([]string, 9)
	for i := range consts {
		consts[i] = fmt.Sprintf("c%d", i)
	}
	for i := 0; i < 300; i++ {
		switch rng.Intn(3) {
		case 0:
			d.Insert(NewFact("R", consts[rng.Intn(9)], consts[rng.Intn(9)]))
		case 1:
			d.Insert(NewFact("S", consts[rng.Intn(9)]))
		default:
			d.Insert(NewFact("T", consts[rng.Intn(9)], consts[rng.Intn(9)], consts[rng.Intn(9)]))
		}
	}
	d.Seal()
	facts := d.Facts()
	for _, pred := range []string{"R", "S", "T", "Absent"} {
		p := intern.S(pred)
		for pos := 0; pos < 3; pos++ {
			for _, c := range append(consts, "absent") {
				sym := intern.S(c)
				want := scanCountAt(facts, p, pos, sym)
				if got := d.CountAt(p, pos, sym); got != want {
					t.Fatalf("CountAt(%s, %d, %s) = %d, want %d", pred, pos, c, got, want)
				}
				seen := 0
				d.forEachMatch(p, pos, sym, func(f Fact) bool {
					if f.Pred() != p || pos >= f.Arity() || f.Arg(pos) != sym {
						t.Fatalf("forEachMatch(%s, %d, %s) yielded non-matching fact %s", pred, pos, c, f)
					}
					if !d.Contains(f) {
						t.Fatalf("forEachMatch yielded phantom fact %s", f)
					}
					seen++
					return true
				})
				if seen != want {
					t.Fatalf("forEachMatch(%s, %d, %s) yielded %d facts, want %d", pred, pos, c, seen, want)
				}
			}
		}
	}
}

// TestCountAtAcrossDelta: CountAt stays exact while inserts and deletes
// accumulate in the copy-on-write delta on top of a sealed snapshot.
func TestCountAtAcrossDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := NewDatabase()
	consts := []string{"a", "b", "c", "d"}
	randomFact := func() Fact {
		return NewFact("R", consts[rng.Intn(4)], consts[rng.Intn(4)])
	}
	for i := 0; i < 40; i++ {
		d.Insert(randomFact())
	}
	d.Seal()
	for step := 0; step < 120; step++ {
		if rng.Intn(2) == 0 {
			d.Insert(randomFact())
		} else {
			d.Delete(randomFact())
		}
		facts := d.Facts()
		p := intern.S("R")
		for pos := 0; pos < 2; pos++ {
			for _, c := range consts {
				sym := intern.S(c)
				if got, want := d.CountAt(p, pos, sym), scanCountAt(facts, p, pos, sym); got != want {
					t.Fatalf("step %d: CountAt(R, %d, %s) = %d, want %d", step, pos, c, got, want)
				}
			}
		}
	}
}

// TestForEachHomSealsBulkDeltas: a join search over a database with a
// bulk-load-sized pending delta folds the delta into an indexed snapshot
// first and still finds exactly the right homomorphisms.
func TestForEachHomSealsBulkDeltas(t *testing.T) {
	d := NewDatabase()
	n := 0
	for ; n < 600; n++ {
		d.Insert(NewFact("E", fmt.Sprintf("n%d", n), fmt.Sprintf("n%d", n+1)))
	}
	d.Seal()
	// A delta above the floor but below half the size dodges the geometric
	// auto-seal, leaving the search itself to fold it in.
	for ; n < 900; n++ {
		d.Insert(NewFact("E", fmt.Sprintf("n%d", n), fmt.Sprintf("n%d", n+1)))
	}
	if d.DeltaSize() < autoSealFloor {
		t.Fatalf("setup: delta %d below the auto-seal floor", d.DeltaSize())
	}
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	path := []logic.Atom{logic.NewAtom("E", x, y), logic.NewAtom("E", y, z)}
	got := CountHoms(path, d, nil)
	if want := n - 1; got != want {
		t.Fatalf("CountHoms on chain of %d edges = %d, want %d", n, got, want)
	}
	if d.DeltaSize() != 0 {
		t.Fatalf("ForEachHom left a %d-fact delta unsealed", d.DeltaSize())
	}
	if d.Size() != n {
		t.Fatalf("sealing during search changed the database: size %d, want %d", d.Size(), n)
	}
}

// TestIndexIgnoresArityMismatch: facts of the same predicate with different
// arities are indexed at the positions they have, and unification still
// filters by arity.
func TestIndexIgnoresArityMismatch(t *testing.T) {
	d := FromFacts(NewFact("R", "a"), NewFact("R", "a", "b"), NewFact("R", "a", "b", "c"))
	d.Seal()
	if got := d.CountAt(intern.S("R"), 0, intern.S("a")); got != 3 {
		t.Fatalf("CountAt(R, 0, a) = %d, want 3", got)
	}
	if got := d.CountAt(intern.S("R"), 2, intern.S("c")); got != 1 {
		t.Fatalf("CountAt(R, 2, c) = %d, want 1", got)
	}
	homs := FindHoms([]logic.Atom{logic.NewAtom("R", logic.Const("a"), logic.Var("y"))}, d, nil)
	if len(homs) != 1 {
		t.Fatalf("constant-pinned search found %d homs, want 1 (arity filter)", len(homs))
	}
}

// groupsOf collects ForEachGroupAt output into a comparable map of sorted
// fact keys.
func groupsOf(d *Database, pred intern.Sym, pos int) map[intern.Sym][]string {
	out := map[intern.Sym][]string{}
	d.ForEachGroupAt(pred, pos, func(s intern.Sym, fs []Fact) bool {
		keys := make([]string, len(fs))
		for i, f := range fs {
			keys[i] = f.Key()
		}
		sort.Strings(keys)
		out[s] = keys
		return true
	})
	return out
}

// TestForEachGroupAtSealedVsDirty: the sealed (index-bucket) enumeration
// and the dirty (merged-view) enumeration must group identically, across
// inserts and deletes straddling the snapshot boundary.
func TestForEachGroupAtSealedVsDirty(t *testing.T) {
	pred := intern.S("G")
	d := NewDatabase()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 120; i++ {
		d.Insert(NewFact("G", fmt.Sprintf("k%d", rng.Intn(20)), fmt.Sprintf("v%d", i)))
	}
	d.Seal()
	sealed := groupsOf(d, pred, 0)

	// Mutate without sealing: delete a few snapshot facts, add fresh ones.
	facts := d.FactsByPred(pred)
	for i := 0; i < 10; i++ {
		d.Delete(facts[i*3])
	}
	for i := 0; i < 15; i++ {
		d.Insert(NewFact("G", fmt.Sprintf("k%d", rng.Intn(20)), fmt.Sprintf("w%d", i)))
	}
	dirty := groupsOf(d, pred, 0)

	// Reference: group the current fact list directly.
	want := map[intern.Sym][]string{}
	for _, f := range d.FactsByPred(pred) {
		want[f.Arg(0)] = append(want[f.Arg(0)], f.Key())
	}
	for _, keys := range want {
		sort.Strings(keys)
	}
	if !reflect.DeepEqual(dirty, want) {
		t.Errorf("dirty grouping diverges from the fact list")
	}
	d.Seal()
	resealed := groupsOf(d, pred, 0)
	if !reflect.DeepEqual(resealed, want) {
		t.Errorf("sealed grouping diverges from the fact list")
	}
	_ = sealed
}

// TestForEachGroupAtEarlyStop: a false return stops the enumeration.
func TestForEachGroupAtEarlyStop(t *testing.T) {
	d := FromFacts(NewFact("G", "a", "1"), NewFact("G", "b", "2"), NewFact("G", "c", "3"))
	d.Seal()
	calls := 0
	d.ForEachGroupAt(intern.S("G"), 0, func(intern.Sym, []Fact) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("enumeration continued after false: %d calls", calls)
	}
}

// TestForEachPredFactMatchesFactsByPred: the non-materializing iterator
// visits exactly the facts of FactsByPred, in the same order, whether the
// database is sealed or carries a delta.
func TestForEachPredFactMatchesFactsByPred(t *testing.T) {
	pred := intern.S("P")
	d := NewDatabase()
	for i := 0; i < 40; i++ {
		d.Insert(NewFact("P", fmt.Sprintf("x%d", i)))
	}
	d.Seal()
	check := func() {
		var got []Fact
		d.ForEachPredFact(pred, func(f Fact) bool {
			got = append(got, f)
			return true
		})
		want := d.FactsByPred(pred)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iterator facts diverge: %d vs %d", len(got), len(want))
		}
	}
	check()
	facts := d.FactsByPred(pred)
	d.Delete(facts[3])
	d.Delete(facts[7])
	d.Insert(NewFact("P", "fresh1"))
	d.Insert(NewFact("P", "fresh2"))
	check()

	stopped := d.ForEachPredFact(pred, func(Fact) bool { return false })
	if stopped {
		t.Error("early stop must report false")
	}
}
