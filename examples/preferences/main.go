// Preferences reproduces the paper's Section 3 running example end to end:
// the product-preference database, the support-based repairing Markov chain
// generator of Example 4, the chain figure, the repair probabilities of
// Example 6, and the operational consistent answers of Example 7 — all with
// exact rational arithmetic — contrasted against the classical ABC
// semantics, which returns nothing.
//
// Run with: go run ./examples/preferences
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/abc"
	"repro/internal/core"
	"repro/internal/generators"
	"repro/internal/markov"
	"repro/internal/parse"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/repair"
	"repro/internal/workload"
)

func main() {
	// D: who is preferred over whom. Pref(a, b) reads "a beats b".
	db, err := parse.Database(`
		Pref(a, b). Pref(a, c). Pref(a, d).
		Pref(b, a). Pref(b, d). Pref(c, a).
	`)
	if err != nil {
		log.Fatal(err)
	}
	// Σ: preference is not symmetric.
	sigma, err := parse.Constraints(`Pref(X, Y), Pref(Y, X) -> false.`)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := repair.NewInstance(db, sigma)
	if err != nil {
		log.Fatal(err)
	}

	// The Example 4 generator: the probability of removing Pref(a,b) is the
	// relative support of its symmetric atom Pref(b,a) — well-supported
	// products keep their wins.
	gen := generators.Preference{}

	fmt.Println("repairing Markov chain (the paper's Section 3 figure):")
	tree, err := markov.BuildTree(inst, gen, markov.ExploreOptions{MaxStates: 1000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tree.Render())

	sem, err := core.Compute(inst, gen, markov.ExploreOptions{MaxStates: 1000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noperational repairs (Example 6):")
	for _, r := range sem.Repairs {
		removed, _ := inst.Initial().SymmetricDiff(r.DB)
		fmt.Printf("  D − %-26s P = %s via %d sequences\n",
			relation.FactsString(removed), prob.Format(r.P), r.Sequences)
	}

	// Example 7: "x is the most preferred product".
	q, err := parse.Query(`Q(X) := forall Y: (Pref(X, Y) | X = Y).`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(sem.OCA(q))

	certain, err := abc.CertainAnswers(inst.Initial(), inst.Sigma(), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclassical CQA (ABC certain answers): %v — the traditional approach\n", certain)
	fmt.Println("cannot say anything, while the operational semantics reports that a")
	fmt.Println("is the most preferred product with probability 0.45.")

	scaledExact()
}

// scaledExact runs the same Example 4 semantics on a tournament whose
// sequence tree is astronomically large. The preference generator is
// memoryless (its weights depend only on the current database), so the
// exact engine collapses the tree into the DAG of distinct sub-databases —
// and because its weights span the whole database it is NOT local, so the
// conflict-component factorization of examples/localization would be
// unsound here: the DAG engine is the only exact option at this scale.
func scaledExact() {
	d, sigma := workload.Preferences(workload.PreferenceConfig{
		Products: 20, Prefs: 26, ConflictRate: 0.4, Seed: 42,
	})
	inst, err := repair.NewInstance(d, sigma)
	if err != nil {
		log.Fatal(err)
	}
	gen := generators.Preference{}

	start := time.Now()
	dag, err := markov.ExploreDAG(inst, gen, markov.ExploreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start).Round(time.Millisecond)
	repairs := 0
	for _, leaf := range dag.Leaves {
		if leaf.State.IsSuccessful() {
			repairs++
		}
	}

	fmt.Printf("\nat scale (%d preference facts, %d symmetric conflict pairs):\n",
		d.Size(), inst.Root().Violations().Len()/2)
	fmt.Printf("  sequence tree: %s absorbing sequences — out of reach\n", dag.Sequences)
	fmt.Printf("  DAG collapse:  %d distinct databases, %d exact repairs, computed in %s\n",
		dag.States, repairs, elapsed)
}
