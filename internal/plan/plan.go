package plan

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"

	"repro/internal/intern"
	"repro/internal/relation"
)

// Relation is an evaluated result: a column header and rows of interned
// symbols. Rows are bags (duplicates allowed) unless passed through
// Distinct; base tables, being fact sets, are duplicate-free by
// construction. Row slices handed out by Scan alias the interned fact
// storage and must not be modified.
type Relation struct {
	Name string
	Cols []string
	Rows [][]intern.Sym
}

// NewRelation creates an empty relation with the given columns.
func NewRelation(name string, cols ...string) *Relation {
	return &Relation{Name: name, Cols: cols}
}

// Add appends a row of constants (interning them); the row length must
// match the column count.
func (r *Relation) Add(row ...string) *Relation {
	if len(row) != len(r.Cols) {
		panic(fmt.Sprintf("plan: row width %d does not match %d columns of %s", len(row), len(r.Cols), r.Name))
	}
	syms := make([]intern.Sym, len(row))
	for i, v := range row {
		syms[i] = intern.S(v)
	}
	r.Rows = append(r.Rows, syms)
	return r
}

// FromFacts wraps a fact list as a relation (for Literal leaves, e.g. the
// R_del sets of the practical scheme). Facts whose arity differs from the
// column count are skipped; the rows alias the facts' interned argument
// storage.
func FromFacts(name string, cols []string, fs []relation.Fact) *Relation {
	out := &Relation{Name: name, Cols: cols}
	for _, f := range fs {
		if args := f.Args(); len(args) == len(cols) {
			out.Rows = append(out.Rows, args)
		}
	}
	return out
}

// Len reports the number of rows.
func (r *Relation) Len() int { return len(r.Rows) }

// RowStrings returns row i as constant names.
func (r *Relation) RowStrings(i int) []string { return intern.Names(r.Rows[i]) }

// Sorted returns the rows as constant names, sorted lexicographically (for
// deterministic comparisons in tests and rendering).
func (r *Relation) Sorted() [][]string {
	out := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = intern.Names(row)
	}
	sort.Slice(out, func(i, j int) bool { return slices.Compare(out[i], out[j]) < 0 })
	return out
}

// Equal reports whether two relations hold the same bag of rows over the
// same columns (row order is ignored).
func (r *Relation) Equal(o *Relation) bool {
	if len(r.Cols) != len(o.Cols) || len(r.Rows) != len(o.Rows) {
		return false
	}
	for i := range r.Cols {
		if r.Cols[i] != o.Cols[i] {
			return false
		}
	}
	counts := map[string]int{}
	var buf [64]byte
	for _, row := range r.Rows {
		counts[string(intern.PackSyms(buf[:0], row))]++
	}
	for _, row := range o.Rows {
		counts[string(intern.PackSyms(buf[:0], row))]--
	}
	for _, c := range counts {
		if c != 0 {
			return false
		}
	}
	return true
}

// String renders the relation as a simple table.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s): %d rows\n", r.Name, strings.Join(r.Cols, ", "), len(r.Rows))
	for _, row := range r.Sorted() {
		fmt.Fprintf(&b, "  (%s)\n", strings.Join(row, ", "))
	}
	return b.String()
}

// Plan is a relational algebra expression evaluated against a catalog (the
// catalog supplies both schemas and the backing database; use Catalog.With
// to evaluate the same plan over a different database, e.g. a per-round
// repair).
type Plan interface {
	fmt.Stringer
	// Exec evaluates the plan.
	Exec(c *Catalog) (*Relation, error)
}

// Scan reads a base table: the facts of the table's predicate.
type Scan struct{ Table string }

// Literal wraps an in-memory relation as a leaf (used by the rewriter to
// splice R_del relations into plans).
type Literal struct{ Rel *Relation }

// Select filters rows by a condition.
type Select struct {
	Input Plan
	Cond  Cond
}

// Project keeps the named columns (in the given order; duplicates allowed).
type Project struct {
	Input Plan
	Cols  []string
}

// Join is a natural join: rows agreeing on all shared columns are combined;
// with no shared columns it degenerates to a cross product. The join is a
// symbol-id hash join — keys are packed symbol tuples, never strings.
type Join struct{ L, R Plan }

// Diff is set difference L − R over identical headers (bag semantics:
// every row of L whose value appears anywhere in R is dropped, matching
// SQL's EXCEPT over the deduplicated R, which is what the R − R_del
// rewriting needs).
type Diff struct{ L, R Plan }

// Union concatenates two inputs with identical headers (bag semantics).
type Union struct{ L, R Plan }

// Distinct removes duplicate rows.
type Distinct struct{ Input Plan }

// GroupCount groups by the given columns and appends a count column.
type GroupCount struct {
	Input   Plan
	By      []string
	CountAs string
}

// Cond is a row predicate for Select. Conditions compile once per Exec to
// a closure over column indexes and pre-resolved constants, so the per-row
// work for equality tests is pure symbol comparison.
type Cond interface {
	fmt.Stringer
	compile(t condTable) (func(row []intern.Sym) bool, error)
}

// condTable resolves column names for condition compilation.
type condTable map[string]int

// ColEqVal compares a column to a literal value with the given operator
// (=, !=, <, <=, >, >=; order comparisons are numeric when both sides
// parse as numbers, lexicographic otherwise).
type ColEqVal struct {
	Col string
	Op  string
	Val string
}

// ColEqCol compares two columns with the given operator.
type ColEqCol struct {
	Col1 string
	Op   string
	Col2 string
}

// AndCond conjoins conditions.
type AndCond struct{ Conds []Cond }

// OrCond disjoins conditions.
type OrCond struct{ Conds []Cond }

// NotCond negates a condition.
type NotCond struct{ C Cond }

// orderCompare is the <, <=, >, >= comparison over constant names: numeric
// when both parse as numbers, lexicographic otherwise.
func orderCompare(a, op, b string) (bool, error) {
	var less, eq bool
	fa, errA := strconv.ParseFloat(a, 64)
	fb, errB := strconv.ParseFloat(b, 64)
	if errA == nil && errB == nil {
		less, eq = fa < fb, fa == fb
	} else {
		less, eq = a < b, a == b
	}
	switch op {
	case "<":
		return less, nil
	case "<=":
		return less || eq, nil
	case ">":
		return !less && !eq, nil
	case ">=":
		return !less, nil
	}
	return false, fmt.Errorf("plan: unknown comparison operator %q", op)
}

func (c ColEqVal) compile(t condTable) (func([]intern.Sym) bool, error) {
	i, ok := t[c.Col]
	if !ok {
		return nil, fmt.Errorf("plan: unknown column %q in condition", c.Col)
	}
	switch c.Op {
	case "=", "!=":
		// A constant that was never interned cannot equal any row symbol.
		sym, interned := intern.Lookup(c.Val)
		eq := c.Op == "="
		return func(row []intern.Sym) bool {
			return (interned && row[i] == sym) == eq
		}, nil
	}
	if _, err := orderCompare("", c.Op, ""); err != nil {
		return nil, err
	}
	val := c.Val
	op := c.Op
	fv, valNumeric := 0.0, false
	if f, err := strconv.ParseFloat(val, 64); err == nil {
		fv, valNumeric = f, true
	}
	return func(row []intern.Sym) bool {
		name := intern.Name(row[i])
		if valNumeric {
			// The constant parses once at compile time; rows that also parse
			// compare numerically, matching orderCompare.
			if fr, err := strconv.ParseFloat(name, 64); err == nil {
				switch op {
				case "<":
					return fr < fv
				case "<=":
					return fr <= fv
				case ">":
					return fr > fv
				default:
					return fr >= fv
				}
			}
		}
		ok, _ := orderCompare(name, op, val)
		return ok
	}, nil
}

func (c ColEqCol) compile(t condTable) (func([]intern.Sym) bool, error) {
	i, ok := t[c.Col1]
	if !ok {
		return nil, fmt.Errorf("plan: unknown column %q in condition", c.Col1)
	}
	j, ok := t[c.Col2]
	if !ok {
		return nil, fmt.Errorf("plan: unknown column %q in condition", c.Col2)
	}
	switch c.Op {
	case "=":
		return func(row []intern.Sym) bool { return row[i] == row[j] }, nil
	case "!=":
		return func(row []intern.Sym) bool { return row[i] != row[j] }, nil
	}
	if _, err := orderCompare("", c.Op, ""); err != nil {
		return nil, err
	}
	op := c.Op
	return func(row []intern.Sym) bool {
		ok, _ := orderCompare(intern.Name(row[i]), op, intern.Name(row[j]))
		return ok
	}, nil
}

func (c AndCond) compile(t condTable) (func([]intern.Sym) bool, error) {
	subs := make([]func([]intern.Sym) bool, len(c.Conds))
	for i, sub := range c.Conds {
		f, err := sub.compile(t)
		if err != nil {
			return nil, err
		}
		subs[i] = f
	}
	return func(row []intern.Sym) bool {
		for _, f := range subs {
			if !f(row) {
				return false
			}
		}
		return true
	}, nil
}

func (c OrCond) compile(t condTable) (func([]intern.Sym) bool, error) {
	subs := make([]func([]intern.Sym) bool, len(c.Conds))
	for i, sub := range c.Conds {
		f, err := sub.compile(t)
		if err != nil {
			return nil, err
		}
		subs[i] = f
	}
	return func(row []intern.Sym) bool {
		for _, f := range subs {
			if f(row) {
				return true
			}
		}
		return false
	}, nil
}

func (c NotCond) compile(t condTable) (func([]intern.Sym) bool, error) {
	f, err := c.C.compile(t)
	if err != nil {
		return nil, err
	}
	return func(row []intern.Sym) bool { return !f(row) }, nil
}

func (c ColEqVal) String() string { return fmt.Sprintf("%s %s %q", c.Col, c.Op, c.Val) }
func (c ColEqCol) String() string { return fmt.Sprintf("%s %s %s", c.Col1, c.Op, c.Col2) }
func (c AndCond) String() string  { return joinConds(c.Conds, " AND ") }
func (c OrCond) String() string   { return "(" + joinConds(c.Conds, " OR ") + ")" }
func (c NotCond) String() string  { return "NOT (" + c.C.String() + ")" }

func joinConds(cs []Cond, sep string) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, sep)
}

func colIndexMap(cols []string) condTable {
	m := make(condTable, len(cols))
	for i, c := range cols {
		m[c] = i
	}
	return m
}

func (p Scan) Exec(c *Catalog) (*Relation, error) {
	t, err := c.Table(p.Table)
	if err != nil {
		return nil, err
	}
	out := &Relation{Name: t.Name, Cols: t.Cols}
	width := len(t.Cols)
	c.db.ForEachPredFact(t.Pred, func(f relation.Fact) bool {
		if args := f.Args(); len(args) == width {
			out.Rows = append(out.Rows, args)
		}
		return true
	})
	return out, nil
}

func (p Literal) Exec(*Catalog) (*Relation, error) { return p.Rel, nil }

func (p Select) Exec(c *Catalog) (*Relation, error) {
	in, err := p.Input.Exec(c)
	if err != nil {
		return nil, err
	}
	pred, err := p.Cond.compile(colIndexMap(in.Cols))
	if err != nil {
		return nil, err
	}
	out := &Relation{Name: "σ", Cols: in.Cols}
	for _, row := range in.Rows {
		if pred(row) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func (p Project) Exec(c *Catalog) (*Relation, error) {
	in, err := p.Input.Exec(c)
	if err != nil {
		return nil, err
	}
	idx, err := projectIdx(in, p.Cols)
	if err != nil {
		return nil, err
	}
	out := &Relation{Name: "π", Cols: append([]string(nil), p.Cols...)}
	for _, row := range in.Rows {
		proj := make([]intern.Sym, len(idx))
		for i, j := range idx {
			proj[i] = row[j]
		}
		out.Rows = append(out.Rows, proj)
	}
	return out, nil
}

func projectIdx(in *Relation, cols []string) ([]int, error) {
	idx := make([]int, len(cols))
	for i, col := range cols {
		j := -1
		for k, c := range in.Cols {
			if c == col {
				j = k
				break
			}
		}
		if j < 0 {
			return nil, fmt.Errorf("plan: relation %s has no column %q (columns: %s)", in.Name, col, strings.Join(in.Cols, ", "))
		}
		idx[i] = j
	}
	return idx, nil
}

func (p Join) Exec(c *Catalog) (*Relation, error) {
	l, err := p.L.Exec(c)
	if err != nil {
		return nil, err
	}
	r, err := p.R.Exec(c)
	if err != nil {
		return nil, err
	}
	// Shared columns join; right-only columns are appended.
	var sharedL, sharedR []int
	rCols := colIndexMap(r.Cols)
	for i, col := range l.Cols {
		if j, ok := rCols[col]; ok {
			sharedL = append(sharedL, i)
			sharedR = append(sharedR, j)
		}
	}
	var rightOnly []int
	outCols := append([]string(nil), l.Cols...)
	lCols := colIndexMap(l.Cols)
	for j, col := range r.Cols {
		if _, ok := lCols[col]; !ok {
			rightOnly = append(rightOnly, j)
			outCols = append(outCols, col)
		}
	}
	out := &Relation{Name: "⋈", Cols: outCols}

	// Hash join on the shared columns, keyed by packed symbol tuples.
	buckets := map[string][][]intern.Sym{}
	var keyBuf [64]byte
	key := make([]intern.Sym, len(sharedR))
	for _, rrow := range r.Rows {
		for i, j := range sharedR {
			key[i] = rrow[j]
		}
		k := string(intern.PackSyms(keyBuf[:0], key))
		buckets[k] = append(buckets[k], rrow)
	}
	for _, lrow := range l.Rows {
		for i, j := range sharedL {
			key[i] = lrow[j]
		}
		for _, rrow := range buckets[string(intern.PackSyms(keyBuf[:0], key))] {
			combined := make([]intern.Sym, 0, len(lrow)+len(rightOnly))
			combined = append(combined, lrow...)
			for _, j := range rightOnly {
				combined = append(combined, rrow[j])
			}
			out.Rows = append(out.Rows, combined)
		}
	}
	return out, nil
}

func (p Diff) Exec(c *Catalog) (*Relation, error) {
	l, err := p.L.Exec(c)
	if err != nil {
		return nil, err
	}
	r, err := p.R.Exec(c)
	if err != nil {
		return nil, err
	}
	if len(l.Cols) != len(r.Cols) {
		return nil, fmt.Errorf("plan: difference over mismatched headers (%d vs %d columns)", len(l.Cols), len(r.Cols))
	}
	drop := make(map[string]bool, len(r.Rows))
	var buf [64]byte
	for _, row := range r.Rows {
		drop[string(intern.PackSyms(buf[:0], row))] = true
	}
	out := &Relation{Name: "−", Cols: l.Cols}
	for _, row := range l.Rows {
		if !drop[string(intern.PackSyms(buf[:0], row))] {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func (p Union) Exec(c *Catalog) (*Relation, error) {
	l, err := p.L.Exec(c)
	if err != nil {
		return nil, err
	}
	r, err := p.R.Exec(c)
	if err != nil {
		return nil, err
	}
	if len(l.Cols) != len(r.Cols) {
		return nil, fmt.Errorf("plan: union over mismatched headers (%d vs %d columns)", len(l.Cols), len(r.Cols))
	}
	out := &Relation{Name: "∪", Cols: l.Cols}
	out.Rows = append(append(out.Rows, l.Rows...), r.Rows...)
	return out, nil
}

func (p Distinct) Exec(c *Catalog) (*Relation, error) {
	in, err := p.Input.Exec(c)
	if err != nil {
		return nil, err
	}
	out := &Relation{Name: "δ", Cols: in.Cols}
	seen := make(map[string]bool, len(in.Rows))
	var buf [64]byte
	for _, row := range in.Rows {
		k := string(intern.PackSyms(buf[:0], row))
		if !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func (p GroupCount) Exec(c *Catalog) (*Relation, error) {
	in, err := p.Input.Exec(c)
	if err != nil {
		return nil, err
	}
	idx, err := projectIdx(in, p.By)
	if err != nil {
		return nil, err
	}
	countCol := p.CountAs
	if countCol == "" {
		countCol = "count"
	}
	type group struct {
		rep   []intern.Sym
		count int
	}
	groups := map[string]*group{}
	var buf [64]byte
	key := make([]intern.Sym, len(idx))
	for _, row := range in.Rows {
		for i, j := range idx {
			key[i] = row[j]
		}
		k := string(intern.PackSyms(buf[:0], key))
		g := groups[k]
		if g == nil {
			g = &group{rep: append([]intern.Sym(nil), key...)}
			groups[k] = g
		}
		g.count++
	}
	out := &Relation{Name: "γ", Cols: append(append([]string(nil), p.By...), countCol)}
	ordered := make([]*group, 0, len(groups))
	for _, g := range groups {
		ordered = append(ordered, g)
	}
	// Deterministic output order: sort groups by their value names.
	sort.Slice(ordered, func(i, j int) bool {
		return slices.Compare(intern.Names(ordered[i].rep), intern.Names(ordered[j].rep)) < 0
	})
	for _, g := range ordered {
		row := append(append([]intern.Sym(nil), g.rep...), intern.S(strconv.Itoa(g.count)))
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func (p Scan) String() string    { return p.Table }
func (p Literal) String() string { return fmt.Sprintf("literal(%s)", p.Rel.Name) }
func (p Select) String() string  { return fmt.Sprintf("σ[%s](%s)", p.Cond, p.Input) }
func (p Project) String() string {
	return fmt.Sprintf("π[%s](%s)", strings.Join(p.Cols, ","), p.Input)
}
func (p Join) String() string  { return fmt.Sprintf("(%s ⋈ %s)", p.L, p.R) }
func (p Diff) String() string  { return fmt.Sprintf("(%s − %s)", p.L, p.R) }
func (p Union) String() string { return fmt.Sprintf("(%s ∪ %s)", p.L, p.R) }
func (p Distinct) String() string {
	return fmt.Sprintf("δ(%s)", p.Input)
}
func (p GroupCount) String() string {
	return fmt.Sprintf("γ[%s;count](%s)", strings.Join(p.By, ","), p.Input)
}

// RewriteScans returns a copy of the plan in which every Scan of a table
// with an entry in repl is replaced by (Scan − literal): the R → R − R_del
// rewriting of Section 5. Tables without an entry are left untouched.
func RewriteScans(p Plan, repl map[string]*Relation) Plan {
	switch n := p.(type) {
	case Scan:
		if del, ok := repl[n.Table]; ok {
			return Diff{L: n, R: Literal{Rel: del}}
		}
		return n
	case Literal:
		return n
	case Select:
		return Select{Input: RewriteScans(n.Input, repl), Cond: n.Cond}
	case Project:
		return Project{Input: RewriteScans(n.Input, repl), Cols: n.Cols}
	case Join:
		return Join{L: RewriteScans(n.L, repl), R: RewriteScans(n.R, repl)}
	case Diff:
		return Diff{L: RewriteScans(n.L, repl), R: RewriteScans(n.R, repl)}
	case Union:
		return Union{L: RewriteScans(n.L, repl), R: RewriteScans(n.R, repl)}
	case Distinct:
		return Distinct{Input: RewriteScans(n.Input, repl)}
	case GroupCount:
		return GroupCount{Input: RewriteScans(n.Input, repl), By: n.By, CountAs: n.CountAs}
	default:
		panic(fmt.Sprintf("plan: unknown plan node %T", p))
	}
}
