package relation

import (
	"fmt"
	"sort"
)

// Schema is a finite set of relation symbols with associated arities.
type Schema struct {
	arity map[string]int
}

// NewSchema returns an empty schema.
func NewSchema() *Schema { return &Schema{arity: map[string]int{}} }

// Add records a predicate with its arity. Re-adding with the same arity is
// a no-op; a conflicting arity is an error.
func (s *Schema) Add(pred string, arity int) error {
	if existing, ok := s.arity[pred]; ok {
		if existing != arity {
			return fmt.Errorf("predicate %s declared with arity %d and %d", pred, existing, arity)
		}
		return nil
	}
	s.arity[pred] = arity
	return nil
}

// Arity reports the arity of a predicate and whether it is declared.
func (s *Schema) Arity(pred string) (int, bool) {
	a, ok := s.arity[pred]
	return a, ok
}

// Predicates returns the sorted predicate names.
func (s *Schema) Predicates() []string {
	out := make([]string, 0, len(s.arity))
	for p := range s.arity {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Clone returns an independent copy.
func (s *Schema) Clone() *Schema {
	out := NewSchema()
	for p, a := range s.arity {
		out.arity[p] = a
	}
	return out
}

// AddDatabase records every predicate of the database, inferring arities
// from the facts.
func (s *Schema) AddDatabase(d *Database) error {
	for _, f := range d.Facts() {
		if err := s.Add(f.Pred, len(f.Args)); err != nil {
			return err
		}
	}
	return nil
}

// Base describes B(D,Σ): the set of all facts R(c1, ..., cn) where R is a
// schema predicate and each ci is a constant occurring in dom(D) or in Σ.
// The set is typically astronomically large, so it is never materialized;
// Base answers membership queries and exposes its constant domain.
type Base struct {
	schema *Schema
	consts map[string]bool
}

// NewBase builds a base from a schema and a set of constants.
func NewBase(schema *Schema, consts []string) *Base {
	m := make(map[string]bool, len(consts))
	for _, c := range consts {
		m[c] = true
	}
	return &Base{schema: schema, consts: m}
}

// Schema returns the underlying schema.
func (b *Base) Schema() *Schema { return b.schema }

// Dom returns the sorted constant domain dom(B(D,Σ)).
func (b *Base) Dom() []string {
	out := make([]string, 0, len(b.consts))
	for c := range b.consts {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// HasConst reports whether the constant belongs to the base domain.
func (b *Base) HasConst(c string) bool { return b.consts[c] }

// Contains reports whether the fact belongs to B(D,Σ): its predicate is in
// the schema with matching arity and all its constants are in the domain.
func (b *Base) Contains(f Fact) bool {
	arity, ok := b.schema.Arity(f.Pred)
	if !ok || arity != len(f.Args) {
		return false
	}
	for _, c := range f.Args {
		if !b.consts[c] {
			return false
		}
	}
	return true
}

// ContainsAll reports whether every fact of the slice is in the base.
func (b *Base) ContainsAll(fs []Fact) bool {
	for _, f := range fs {
		if !b.Contains(f) {
			return false
		}
	}
	return true
}

// Size returns the total number of facts in the base, i.e.
// Σ_R |dom|^arity(R). It saturates at MaxInt on overflow.
func (b *Base) Size() int {
	n := len(b.consts)
	total := 0
	for _, p := range b.schema.Predicates() {
		a, _ := b.schema.Arity(p)
		count := 1
		for i := 0; i < a; i++ {
			if n != 0 && count > (int(^uint(0)>>1))/n {
				return int(^uint(0) >> 1)
			}
			count *= n
		}
		if total > (int(^uint(0)>>1))-count {
			return int(^uint(0) >> 1)
		}
		total += count
	}
	return total
}
