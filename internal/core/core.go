package core

import (
	"fmt"
	"math"
	"math/big"
	"slices"
	"sort"

	"repro/internal/fo"
	"repro/internal/markov"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/repair"
)

// Repair is an operational repair: a consistent database s(D) for some
// reachable absorbing state s, together with its probability
// P_{D,MΣ}(D') — under the walk-induced mode, Σ π(s) over the absorbing
// states producing it; under the sequence-uniform mode, the fraction of
// complete sequences producing it.
type Repair struct {
	// DB is the repaired database.
	DB *relation.Database
	// P is the repair's probability under the selected semantics mode.
	P *big.Rat
	// Sequences counts the absorbing sequences s with s(D) = DB, saturating
	// at the int limit (display only; SeqCount is exact).
	Sequences int
	// SeqCount is the exact count of absorbing sequences producing DB. The
	// sequence-uniform mode weighs repairs by SeqCount / total sequences.
	SeqCount *big.Int
}

// Semantics is [[D]]_{MΣ} together with bookkeeping about the chain: the
// set of repair/probability pairs, the total success mass (the denominator
// of the conditional probability CP), and leaf statistics.
type Semantics struct {
	// Mode records which distribution over complete sequences the
	// probabilities were computed under.
	Mode SemanticsMode
	// Repairs lists the operational repairs with positive probability, in
	// deterministic (database-key) order.
	Repairs []Repair
	// SuccessP is Σ_{(D',p) ∈ [[D]]} p: the probability that the repairing
	// process succeeds. It is 1 exactly when no failing sequence has
	// positive probability (e.g. for non-failing generators, Prop. 8).
	SuccessP *big.Rat
	// FailP is the probability mass on failing sequences.
	FailP *big.Rat
	// AbsorbingStates counts the reachable absorbing states (chain leaves),
	// saturating at the int limit; TotalSequences is exact.
	AbsorbingStates int
	// FailingStates counts the failing leaves (saturating).
	FailingStates int
	// TotalSequences is the exact number of complete sequences of the
	// chain's support (successful and failing).
	TotalSequences *big.Int
	// FailingSequences is the exact number of failing complete sequences.
	FailingSequences *big.Int
	// SequencesByLength[l] is the exact number of complete sequences of
	// length l (successful and failing); Σ_l SequencesByLength[l] =
	// TotalSequences. Populated only when the exploration ran with
	// markov.ExploreOptions.TrackLengths (nil otherwise). The per-length
	// stratification is what lets sequence-uniform counts factorize across
	// conflict components: complete sequences of a factored instance are
	// exactly the interleavings of per-component complete sequences, and
	// interleavings are counted by binomial convolution over lengths
	// (Factored.TotalSequences).
	SequencesByLength []*big.Int
}

// Compute explores the chain M_Σ(D) exactly and assembles [[D]]_{MΣ}
// under the walk-induced semantics. opt.MaxStates bounds the exploration
// (0 = unlimited). It is shorthand for ComputeMode with WalkInduced.
//
// When the chain is collapsible — the generator declares markov.Markovian
// memorylessness and Σ has no TGDs — the exploration runs on the DAG of
// distinct sub-databases (markov.ExploreDAG), which is exponentially
// smaller than the sequence tree yet yields the identical semantics: same
// repairs, same exact probabilities, same sequence counts. Everything else
// falls back to the sequence-tree walk.
func Compute(inst *repair.Instance, g markov.Generator, opt markov.ExploreOptions) (*Semantics, error) {
	return ComputeMode(inst, g, opt, WalkInduced)
}

// ComputeMode is Compute under an explicit semantics mode. Under
// SequenceUniform the chain's support is explored exactly like the
// walk-induced case (the support does not depend on the mode), but every
// repair is weighted by its share of complete sequences instead of its
// walk mass π — the DAG engine reads the weights off the propagated
// big.Int sequence counts, and the tree engine counts leaves directly
// (each tree leaf is one sequence), which doubles as the brute-force
// reference the equivalence suite checks the DAG against.
func ComputeMode(inst *repair.Instance, g markov.Generator, opt markov.ExploreOptions, mode SemanticsMode) (*Semantics, error) {
	if markov.Collapsible(inst, g) {
		return ComputeDAGMode(inst, g, opt, mode)
	}
	return ComputeTreeMode(inst, g, opt, mode)
}

// ComputeTree assembles the walk-induced semantics from the sequence-tree
// walk of Definition 5 — the reference engine, correct for every
// generator. Tests and benchmarks call it directly to compare against
// ComputeDAG.
func ComputeTree(inst *repair.Instance, g markov.Generator, opt markov.ExploreOptions) (*Semantics, error) {
	return ComputeTreeMode(inst, g, opt, WalkInduced)
}

// ComputeTreeMode is ComputeTree under an explicit semantics mode. With
// SequenceUniform it *is* brute-force sequence enumeration: every leaf of
// the tree is one complete sequence, so uniform probabilities are exact
// leaf-count ratios.
func ComputeTreeMode(inst *repair.Instance, g markov.Generator, opt markov.ExploreOptions, mode SemanticsMode) (*Semantics, error) {
	leaves, err := markov.Explore(inst, g, opt)
	if err != nil {
		return nil, err
	}
	type agg struct {
		db   *relation.Database
		key  string // legacy database key, for the reported repair order
		p    prob.Rat
		seqs int
	}
	// Leaves are merged by the packed binary Database.IDKey (cheap, id-order
	// grouping ≡ legacy Key grouping); the human-readable Key is computed
	// once per distinct repair, only to report Repairs in the documented
	// database-key order.
	byDB := map[string]*agg{}
	sem := &Semantics{SuccessP: prob.Zero(), FailP: prob.Zero()}
	for _, leaf := range leaves {
		if opt.TrackLengths {
			l := leaf.State.Len()
			for len(sem.SequencesByLength) < l+1 {
				sem.SequencesByLength = append(sem.SequencesByLength, new(big.Int))
			}
			// Each tree leaf is exactly one complete sequence.
			sem.SequencesByLength[l].Add(sem.SequencesByLength[l], big.NewInt(1))
		}
		sem.AbsorbingStates++
		if !leaf.State.IsSuccessful() {
			sem.FailingStates++
			sem.FailP.Add(sem.FailP, leaf.Pi)
			continue
		}
		sem.SuccessP.Add(sem.SuccessP, leaf.Pi)
		db := leaf.State.Result()
		k := db.IDKey()
		a, ok := byDB[k]
		if !ok {
			a = &agg{db: db.Clone()}
			a.key = a.db.Key()
			byDB[k] = a
		}
		a.p.AddBig(leaf.Pi)
		a.seqs++
	}
	aggs := make([]*agg, 0, len(byDB))
	for _, a := range byDB {
		aggs = append(aggs, a)
	}
	sort.Slice(aggs, func(i, j int) bool { return aggs[i].key < aggs[j].key })
	for _, a := range aggs {
		sem.Repairs = append(sem.Repairs, Repair{
			DB: a.db, P: a.p.Big(), Sequences: a.seqs, SeqCount: big.NewInt(int64(a.seqs)),
		})
	}
	sem.TotalSequences = big.NewInt(int64(len(leaves)))
	sem.FailingSequences = big.NewInt(int64(sem.FailingStates))
	return applyMode(sem, mode), nil
}

// ComputeDAG assembles the walk-induced semantics from the DAG-collapsed
// exploration. It returns markov.ErrNotCollapsible for chains the DAG
// cannot represent (history-dependent generators, TGDs); Compute handles
// the fallback.
//
// The DAG merges absorbing sequences by result database, so each leaf is
// already one repair; the sequence statistics (Repair.Sequences,
// AbsorbingStates, FailingStates) are recovered from the propagated path
// counts and saturate at the int limit when the collapsed tree is larger
// than 2^63 sequences — sizes the tree engine could never enumerate. The
// exact counts survive in Repair.SeqCount / Semantics.TotalSequences.
func ComputeDAG(inst *repair.Instance, g markov.Generator, opt markov.ExploreOptions) (*Semantics, error) {
	return ComputeDAGMode(inst, g, opt, WalkInduced)
}

// ComputeDAGMode is ComputeDAG under an explicit semantics mode. The
// sequence-uniform weights reuse the big.Int path counts the exploration
// propagates anyway, so the uniform semantics costs the same as the
// walk-induced one — and stays exact at sizes where the counts exceed
// 2^63 and brute-force enumeration is unthinkable.
func ComputeDAGMode(inst *repair.Instance, g markov.Generator, opt markov.ExploreOptions, mode SemanticsMode) (*Semantics, error) {
	dag, err := markov.ExploreDAG(inst, g, opt)
	if err != nil {
		return nil, err
	}
	sem := &Semantics{}
	absorbing, failing := new(big.Int), new(big.Int)
	var succP, failP prob.Rat
	var repairKeys []string
	for _, leaf := range dag.Leaves {
		absorbing.Add(absorbing, leaf.Sequences)
		if opt.TrackLengths {
			for len(sem.SequencesByLength) < len(leaf.SeqsByLength) {
				sem.SequencesByLength = append(sem.SequencesByLength, new(big.Int))
			}
			for l, cnt := range leaf.SeqsByLength {
				sem.SequencesByLength[l].Add(sem.SequencesByLength[l], cnt)
			}
		}
		if !leaf.State.IsSuccessful() {
			failing.Add(failing, leaf.Sequences)
			failP.AddBig(leaf.Pi)
			continue
		}
		succP.AddBig(leaf.Pi)
		// The DAG's leaves are materialized fresh for this exploration and
		// the dag value never escapes, so the semantics adopts leaf.Pi and
		// leaf.Sequences instead of copying them.
		sem.Repairs = append(sem.Repairs, Repair{
			DB:        leaf.State.Result().Clone(),
			P:         leaf.Pi,
			Sequences: satInt(leaf.Sequences),
			SeqCount:  leaf.Sequences,
		})
		repairKeys = append(repairKeys, leaf.Key)
	}
	sem.SuccessP, sem.FailP = succP.Big(), failP.Big()
	sem.AbsorbingStates = satInt(absorbing)
	sem.FailingStates = satInt(failing)
	sem.TotalSequences = absorbing
	sem.FailingSequences = failing
	// Leaves arrive in level order; repairs are reported in database-key
	// order like the tree engine.
	sort.Sort(&repairsByKey{keys: repairKeys, repairs: sem.Repairs})
	return applyMode(sem, mode), nil
}

// applyMode finalizes the semantics for the requested mode. The engines
// always assemble the walk-induced masses (they fall out of the
// exploration for free); the sequence-uniform mode replaces every
// probability with the corresponding exact sequence-count ratio.
func applyMode(sem *Semantics, mode SemanticsMode) *Semantics {
	sem.Mode = mode
	if mode != SequenceUniform {
		return sem
	}
	total := sem.TotalSequences
	if total.Sign() == 0 {
		// Cannot happen: every chain has at least the shortest complete
		// sequence (the empty one, when D is consistent).
		return sem
	}
	for i := range sem.Repairs {
		sem.Repairs[i].P = new(big.Rat).SetFrac(sem.Repairs[i].SeqCount, total)
	}
	success := new(big.Int).Sub(total, sem.FailingSequences)
	sem.SuccessP = new(big.Rat).SetFrac(success, total)
	sem.FailP = new(big.Rat).SetFrac(sem.FailingSequences, total)
	return sem
}

// repairsByKey sorts repairs by precomputed database key (Database.Key
// rebuilds its encoding on every call, so the comparator must not).
type repairsByKey struct {
	keys    []string
	repairs []Repair
}

func (r *repairsByKey) Len() int           { return len(r.keys) }
func (r *repairsByKey) Less(i, j int) bool { return r.keys[i] < r.keys[j] }
func (r *repairsByKey) Swap(i, j int) {
	r.keys[i], r.keys[j] = r.keys[j], r.keys[i]
	r.repairs[i], r.repairs[j] = r.repairs[j], r.repairs[i]
}

// satInt converts a path count to int, saturating at the int limit.
func satInt(x *big.Int) int {
	if x.IsInt64() {
		if n := x.Int64(); n <= math.MaxInt {
			return int(n)
		}
	}
	return math.MaxInt
}

// UniformOverRepairs reweights the semantics so that every distinct repair
// is equally likely, the "equally likely repairs" measure of certainty
// discussed in Section 6 (after Greco and Molinaro). The chain structure is
// kept only to determine which repairs exist.
func (s *Semantics) UniformOverRepairs() *Semantics {
	out := &Semantics{
		SuccessP:        prob.Zero(),
		FailP:           prob.Zero(),
		AbsorbingStates: s.AbsorbingStates,
		FailingStates:   s.FailingStates,
	}
	n := int64(len(s.Repairs))
	if n == 0 {
		return out
	}
	for _, r := range s.Repairs {
		out.Repairs = append(out.Repairs, Repair{DB: r.DB, P: big.NewRat(1, n), Sequences: r.Sequences})
	}
	out.SuccessP = prob.One()
	return out
}

// CP computes the conditional probability CP_{D,MΣ,Q}(t̄) of Section 4:
// the probability mass of repairs answering t̄, normalized by the success
// mass; it is 0 when no operational repair exists.
func (s *Semantics) CP(q *fo.Query, tuple []string) *big.Rat {
	if s.SuccessP.Sign() == 0 {
		return prob.Zero()
	}
	num := prob.Zero()
	for _, r := range s.Repairs {
		if q.Holds(r.DB, tuple) {
			num.Add(num, r.P)
		}
	}
	return num.Quo(num, s.SuccessP)
}

// Answer is a tuple together with its conditional probability.
type Answer struct {
	Tuple []string
	P     *big.Rat
}

// AnswerSet is the operational consistent answers OCA_{MΣ}(D,Q) restricted
// to tuples with positive probability (every tuple not listed has CP 0;
// Definition 7 formally assigns a probability to all of
// dom(B(D,Σ))^{|x̄|}, which is exponentially large and almost everywhere
// zero).
type AnswerSet struct {
	Query   *fo.Query
	Answers []Answer
}

// OCA evaluates the query over every operational repair and returns the
// tuples with positive conditional probability, sorted lexicographically.
func (s *Semantics) OCA(q *fo.Query) *AnswerSet {
	// Numerators accumulate on the small-rational fast path: one AddBig per
	// (repair, answer) pair is the hot loop of exact query answering.
	type acc struct {
		tuple []string
		p     prob.Rat
	}
	num := map[string]*acc{}
	for _, r := range s.Repairs {
		for _, tuple := range q.Answers(r.DB) {
			k := fo.TupleKey(tuple)
			a, ok := num[k]
			if !ok {
				a = &acc{tuple: tuple}
				num[k] = a
			}
			a.p.AddBig(r.P)
		}
	}
	out := &AnswerSet{Query: q}
	for _, a := range num {
		p := a.p.Big()
		if s.SuccessP.Sign() != 0 {
			p.Quo(p, s.SuccessP)
		} else {
			p = prob.Zero()
		}
		if p.Sign() > 0 {
			out.Answers = append(out.Answers, Answer{Tuple: a.tuple, P: p})
		}
	}
	// Sort by the tuples themselves: TupleKey is a process-local interned
	// encoding with no stable order.
	sort.Slice(out.Answers, func(i, j int) bool {
		return slices.Compare(out.Answers[i].Tuple, out.Answers[j].Tuple) < 0
	})
	return out
}

// Certain returns the tuples with CP = 1: answers that hold in every
// operational repair. Under the uniform chain and a non-failing setting
// these coincide with the certain answers over the reachable repairs.
func (s *Semantics) Certain(q *fo.Query) [][]string {
	var out [][]string
	for _, a := range s.OCA(q).Answers {
		if prob.IsOne(a.P) {
			out = append(out, a.Tuple)
		}
	}
	return out
}

// TPC decides the tuple probability checking problem of Section 5:
// is CP_{D,MΣ,Q}(t̄) > 0?
func (s *Semantics) TPC(q *fo.Query, tuple []string) bool {
	return s.CP(q, tuple).Sign() > 0
}

// Lookup returns the answer for a tuple in the answer set (zero probability
// when absent).
func (as *AnswerSet) Lookup(tuple []string) *big.Rat {
	k := fo.TupleKey(tuple)
	for _, a := range as.Answers {
		if fo.TupleKey(a.Tuple) == k {
			return a.P
		}
	}
	return prob.Zero()
}

// String renders the answer set one tuple per line with exact and decimal
// probabilities.
func (as *AnswerSet) String() string {
	out := fmt.Sprintf("OCA for %s:\n", as.Query)
	if len(as.Answers) == 0 {
		return out + "  (no tuple has positive probability)\n"
	}
	for _, a := range as.Answers {
		out += fmt.Sprintf("  %s : %s\n", fo.TupleString(a.Tuple), prob.Format(a.P))
	}
	return out
}
