package sat

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/constraint"
	"repro/internal/fo"
	"repro/internal/intern"
	"repro/internal/logic"
	"repro/internal/plan"
	"repro/internal/relation"
)

// ErrUnsupportedConstraints reports that the constraint set is not a set
// of key-shaped EGDs, the only fragment the SAT compilation covers.
var ErrUnsupportedConstraints = errors.New("sat: constraints are not all key-shaped EGDs")

// ErrUnsupportedQuery reports that the query is outside the compilable
// fragment: not a conjunction of positive atoms, or with an output
// variable that does not occur in the body (such variables range over the
// repair's active domain, which the boolean encoding does not track).
var ErrUnsupportedQuery = errors.New("sat: query is not a compilable conjunctive query")

// Options tunes the repair space the encoding quantifies over.
type Options struct {
	// MaximalRepairs switches the per-group cardinality constraint from
	// at-most-one to exactly-one surviving fact.
	//
	// The operational semantics justifies deleting ANY non-empty subset of
	// a violation's facts (ops: Proposition 1), so its absorbing states
	// keep at most one fact per violating key group — including the
	// "trust neither" empty resolution — and at-most-one is what matches
	// the tree/DAG/factored engines. Exactly-one instead quantifies over
	// the classical maximal repairs (subset-maximal consistent
	// subinstances), the space CAvSAT-style systems use; it is strictly
	// smaller, so it can only grow the certain set. The default (false)
	// matches the repo's chain engines.
	MaximalRepairs bool
}

// Encoder compiles certain-answer questions over one (database, key
// constraints) pair to CNF. Construction validates the constraint
// fragment, finds the violating key groups, assigns one boolean per
// conflicted fact ("the repair keeps this fact"), and builds the shared
// cardinality clauses; per-query compilation then stacks witness clauses
// on a clone. Facts outside every violating group survive in every
// repair and need no variable.
//
// An Encoder is read-only after construction and safe for concurrent use.
type Encoder struct {
	db     *relation.Database
	opts   Options
	base   *CNF
	vars   map[uint32]Var    // fact ID → keep-variable
	facts  []relation.Fact   // facts[v-1] = fact of variable v (v ≤ len(facts); ladder auxiliaries come after)
	groups [][]relation.Fact // violating key groups, deterministic order
}

// NewEncoder validates that sigma consists solely of key-shaped EGDs
// (table keys, per plan.Catalog.DeriveKeys; an empty set is fine — the
// database is then consistent) and builds the shared group constraints.
func NewEncoder(db *relation.Database, sigma *constraint.Set, opts Options) (*Encoder, error) {
	cat := plan.NewCatalogOn(db)
	keyed, unrecognized := cat.DeriveKeys(sigma)
	if unrecognized > 0 {
		return nil, fmt.Errorf("%w: %d of %d constraints unrecognized", ErrUnsupportedConstraints, unrecognized, len(sigma.All()))
	}
	e := &Encoder{db: db, opts: opts, vars: map[uint32]Var{}}
	for _, name := range keyed {
		t, err := cat.Table(name)
		if err != nil {
			return nil, err
		}
		e.groups = append(e.groups, relation.KeyViolatingGroups(db, t.Pred, len(t.Cols), cat.Key(name))...)
	}
	// All fact variables first, cardinality clauses second: ladder
	// auxiliaries then number past len(e.facts), keeping the fact↔variable
	// mapping a plain slice.
	cnf := NewCNF(0)
	for _, g := range e.groups {
		for _, f := range g {
			if _, ok := e.vars[f.ID()]; !ok {
				e.vars[f.ID()] = cnf.NewVar()
				e.facts = append(e.facts, f)
			}
		}
	}
	gv := make([]Var, 0, 8)
	for _, g := range e.groups {
		gv = gv[:0]
		for _, f := range g {
			gv = append(gv, e.vars[f.ID()])
		}
		if opts.MaximalRepairs {
			cnf.ExactlyOne(gv)
		} else {
			cnf.AtMostOne(gv)
		}
	}
	e.base = cnf
	return e, nil
}

// Groups reports the number of violating key groups.
func (e *Encoder) Groups() int { return len(e.groups) }

// ConflictFacts reports the number of facts carrying a variable.
func (e *Encoder) ConflictFacts() int { return len(e.facts) }

// candidate is one potential answer tuple with its compiled witness
// clauses. A witness is one homomorphism's image; the tuple is an answer
// in exactly the repairs where some witness survives intact. Each clause
// lists the negated keep-variables of one witness's conflicted facts, so
// the conjunction base ∧ clauses is satisfiable iff some repair breaks
// every witness — iff the tuple is NOT certain. A witness whose facts are
// all conflict-free survives in every repair: the tuple is certain with
// no solver call (certain=true, clauses dropped).
type candidate struct {
	tuple   []string
	witness [][]Lit
	witSeen map[string]bool
	certain bool
}

// collect enumerates the query's homomorphisms over the full database
// once — repairs are subsets and the query is monotone, so every witness
// in every repair appears here — grouping witness clauses by answer
// tuple. Candidates come back sorted by tuple.
func (e *Encoder) collect(q *fo.Query) ([]*candidate, error) {
	atoms, unconstrained, ok := q.CQ()
	if !ok {
		return nil, fmt.Errorf("%w: body is not a conjunction of positive atoms", ErrUnsupportedQuery)
	}
	if len(unconstrained) > 0 {
		return nil, fmt.Errorf("%w: %d output variables do not occur in the body", ErrUnsupportedQuery, len(unconstrained))
	}
	byKey := map[string]*candidate{}
	var cands []*candidate
	var packBuf [64]byte
	var keyBuf [64]byte
	tuple := make([]intern.Sym, len(q.Out))
	wvars := make([]Var, 0, 8)
	relation.ForEachHom(atoms, e.db, logic.NewSubst(), func(h logic.Subst) bool {
		for i, v := range q.Out {
			c, _ := h.Lookup(v.Sym())
			tuple[i] = c
		}
		k := string(intern.PackSyms(packBuf[:0], tuple))
		cand := byKey[k]
		if cand == nil {
			cand = &candidate{tuple: intern.Names(tuple), witSeen: map[string]bool{}}
			byKey[k] = cand
			cands = append(cands, cand)
		}
		if cand.certain {
			return true
		}
		wvars = wvars[:0]
		for _, a := range atoms {
			f := relation.MustFactFromAtom(h.ApplyAtom(a))
			v, conflicted := e.vars[f.ID()]
			if !conflicted {
				continue
			}
			dup := false
			for _, have := range wvars {
				if have == v {
					dup = true
					break
				}
			}
			if !dup {
				wvars = append(wvars, v)
			}
		}
		if len(wvars) == 0 {
			// A conflict-free witness: present in every repair.
			cand.certain = true
			cand.witness = nil
			cand.witSeen = nil
			return true
		}
		sort.Slice(wvars, func(i, j int) bool { return wvars[i] < wvars[j] })
		kb := keyBuf[:0]
		for _, v := range wvars {
			kb = append(kb, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		wk := string(kb)
		if !cand.witSeen[wk] {
			cand.witSeen[wk] = true
			cl := make([]Lit, len(wvars))
			for i, v := range wvars {
				cl[i] = -v
			}
			cand.witness = append(cand.witness, cl)
		}
		return true
	})
	sort.Slice(cands, func(i, j int) bool {
		return lessTuples(cands[i].tuple, cands[j].tuple)
	})
	return cands, nil
}

func lessTuples(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// CertainResult is the outcome of one SAT certain-answer computation.
type CertainResult struct {
	// Answers is the sorted certain set.
	Answers [][]string
	// Candidates counts distinct tuples with at least one witness on the
	// full database (a superset of the certain set, by monotonicity);
	// CandidateTuples lists them, sorted.
	Candidates      int
	CandidateTuples [][]string
	// Immediate counts candidates decided without a solver call: some
	// witness used only conflict-free facts.
	Immediate int
	// Solved counts solver invocations (one per remaining candidate).
	Solved int
	// Vars and Clauses describe the shared base formula (group cardinality
	// constraints, including ladder auxiliaries); Groups the violating key
	// groups it encodes.
	Vars, Clauses, Groups int
	// Stats aggregates solver work across all invocations.
	Stats Stats
}

// CertainAnswers computes the certain answers of q: the tuples that are
// answers in every repair. A candidate tuple is certain iff
// base ∧ its witness clauses is unsatisfiable.
func (e *Encoder) CertainAnswers(q *fo.Query) (*CertainResult, error) {
	cands, err := e.collect(q)
	if err != nil {
		return nil, err
	}
	res := &CertainResult{
		Candidates: len(cands),
		Vars:       e.base.NumVars(),
		Clauses:    e.base.NumClauses(),
		Groups:     len(e.groups),
	}
	for _, c := range cands {
		res.CandidateTuples = append(res.CandidateTuples, c.tuple)
	}
	for _, c := range cands {
		certain := c.certain
		if certain {
			res.Immediate++
		} else {
			f := e.base.Clone()
			for _, cl := range c.witness {
				f.Add(cl...)
			}
			s := NewSolver(f)
			res.Solved++
			certain = !s.Solve()
			res.Stats.Add(s.Stats)
		}
		if certain {
			res.Answers = append(res.Answers, c.tuple)
		}
	}
	fo.SortTuples(res.Answers)
	return res, nil
}

// Certain decides one tuple: is it an answer in every repair? A tuple
// with no witness on the full database is not certain (monotonicity).
func (e *Encoder) Certain(q *fo.Query, tuple []string) (bool, error) {
	cnf, found, err := e.TupleCNF(q, tuple)
	if err != nil {
		return false, err
	}
	if !found {
		return false, nil
	}
	if cnf == nil {
		return true, nil // conflict-free witness
	}
	s := NewSolver(cnf)
	return !s.Solve(), nil
}

// TupleCNF compiles the "tuple is NOT certain" formula for one tuple.
// found reports whether the tuple has any witness at all; a nil CNF with
// found=true means a conflict-free witness made the tuple certain
// outright (the formula would contain the empty clause).
func (e *Encoder) TupleCNF(q *fo.Query, tuple []string) (cnf *CNF, found bool, err error) {
	cands, err := e.collect(q)
	if err != nil {
		return nil, false, err
	}
	for _, c := range cands {
		if !equalTuples(c.tuple, tuple) {
			continue
		}
		if c.certain {
			return nil, true, nil
		}
		f := e.base.Clone()
		for _, cl := range c.witness {
			f.Add(cl...)
		}
		return f, true, nil
	}
	return nil, false, nil
}

func equalTuples(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WriteTupleDIMACS exports the "tuple is NOT certain" formula in DIMACS
// CNF for cross-checking with an external solver: UNSAT means certain.
// Tuples decided without a solver (no witness, or a conflict-free
// witness) export a trivial equivalent — the empty formula (trivially
// SAT: not certain) or a single empty clause (trivially UNSAT: certain)
// — so the external verdict always matches the engine's.
func (e *Encoder) WriteTupleDIMACS(w io.Writer, q *fo.Query, tuple []string) error {
	cnf, found, err := e.TupleCNF(q, tuple)
	if err != nil {
		return err
	}
	head := fmt.Sprintf("%s%s is NOT certain iff SAT", q.Name, fo.TupleString(tuple))
	switch {
	case !found:
		cnf = NewCNF(0)
		return cnf.WriteDIMACS(w, head, "tuple has no witness on the full database: trivially not certain")
	case cnf == nil:
		cnf = NewCNF(0)
		cnf.Add()
		return cnf.WriteDIMACS(w, head, "tuple has a conflict-free witness: certain in every repair")
	}
	comments := make([]string, 0, len(e.facts)+1)
	comments = append(comments, head)
	for v, f := range e.facts {
		comments = append(comments, fmt.Sprintf("var %d = keep %s", v+1, f))
	}
	return cnf.WriteDIMACS(w, comments...)
}
