// Package practical implements the implementation sketch at the end of
// Section 5 of the paper for the common case of key violations and
// deletion updates:
//
//	The user sets ε and δ and computes n = ⌈ln(2/δ)/(2ε²)⌉. Then, n times:
//	from each group of tuples violating a key, randomly pick at most one
//	tuple to be left, collecting the others in R_del; run the original
//	query with each relation R replaced by R − R_del; append the outcome
//	to a table T. Finally return n_t̄ / n for every tuple t̄ of T.
//
// The random draw "keep exactly one, uniformly" corresponds to the
// classical one-tuple-per-key repairs; the optional drop-all probability
// implements the paper's "at most one" reading, mirroring the trust
// example of the introduction where neither conflicting source is
// believed.
//
// # Key types
//
//   - Runner: the n-round pipeline over a plan.Catalog. It seals the
//     catalog's database once, enumerates key-violating groups through the
//     per-predicate argument indexes (once per run, not per round), and
//     runs rounds on a worker pool; each round's repair R − R_del is an
//     O(|R_del| log |R_del|) copy-on-write clone. RunQuery accepts fo
//     queries directly (the cmd/ocqa path); Run accepts plans, routing
//     conjunctive ones through the compiled-CQ path.
//   - Policy / SampleRdel / KeyGroups: the per-group draw law (keep member
//     i with probability (1−DropAll)/m, drop all with probability
//     DropAll), pinned by TestSampleRdelKeptTupleLaw.
//
// # Invariants
//
//   - Per-round RNGs derive from (Seed, round) via prob.SplitMix and group
//     enumeration is canonically ordered, so a Result is bit-identical for
//     every Workers value and between the compiled-CQ and algebra
//     evaluation paths.
//   - The scheme estimates the walk-induced practical distribution over
//     one-tuple-per-key repairs; it is NOT an estimator for the
//     sequence-uniform semantics (cmd/ocqa rejects that combination).
//
// # Neighbors
//
// Below: internal/plan (catalog + algebra), internal/relation,
// internal/fo, internal/prob. Siblings: internal/sampling estimates the
// chain semantics the exact engines in internal/core compute.
package practical
