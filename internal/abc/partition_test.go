package abc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/constraint"
	"repro/internal/logic"
	"repro/internal/relation"
)

func partitionSet(t *testing.T) *constraint.Set {
	t.Helper()
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	key := constraint.MustEGD(
		[]logic.Atom{logic.NewAtom("R", x, y), logic.NewAtom("R", x, z)},
		y, z,
	)
	dc := constraint.MustDC([]logic.Atom{
		logic.NewAtom("E", x, y),
		logic.NewAtom("E", y, z),
	})
	return constraint.NewSet(key, dc)
}

func randomPartitionDB(rng *rand.Rand) *relation.Database {
	dom := []string{"a", "b", "c", "d", "e"}
	d := relation.NewDatabase()
	n := 2 + rng.Intn(10)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			d.Insert(relation.NewFact("R", dom[rng.Intn(5)], dom[rng.Intn(5)]))
		} else {
			d.Insert(relation.NewFact("E", dom[rng.Intn(5)], dom[rng.Intn(5)]))
		}
	}
	return d
}

// TestNewPartitionMatchesConflictGraph: the partition's islands are exactly
// ConflictGraph.Components over the same violations, in the same order, and
// IslandOf inverts the fact→island relation.
func TestNewPartitionMatchesConflictGraph(t *testing.T) {
	set := partitionSet(t)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomPartitionDB(rng)
		vs := constraint.FindViolations(d, set)
		p := NewPartition(vs)
		want := NewConflictGraph(vs).Components()
		if !reflect.DeepEqual(p.Components(), want) {
			t.Logf("seed %d: partition %v, conflict graph %v", seed, p.Components(), want)
			return false
		}
		for _, isl := range p.Islands() {
			for _, f := range isl.Facts {
				if p.IslandOf(f) != isl {
					t.Logf("seed %d: IslandOf(%s) does not return its island", seed, f)
					return false
				}
			}
		}
		nvios := 0
		for _, isl := range p.Islands() {
			nvios += len(isl.Violations())
		}
		if nvios != vs.Len() {
			t.Logf("seed %d: islands hold %d violations, want %d", seed, nvios, vs.Len())
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPartitionUpdateMatchesRebuild: a chain of random single-fact updates,
// each maintained incrementally via UpdateViolationsDelta + Update, always
// matches the from-scratch partition of the current database — islands,
// order, violations, and the fact index (exercised far past the index-fold
// depth). Along the way every returned fresh island must carry a nil
// Payload and every island outside the churn must be shared by pointer.
func TestPartitionUpdateMatchesRebuild(t *testing.T) {
	set := partitionSet(t)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomPartitionDB(rng)
		vs := constraint.FindViolations(d, set)
		p := NewPartition(vs)
		for _, isl := range p.Islands() {
			isl.Payload = isl // mark: pre-existing island
		}
		dom := []string{"a", "b", "c", "d", "e"}
		steps := 30 + rng.Intn(20) // depth 30+ crosses maxIndexDepth folds
		for s := 0; s < steps; s++ {
			var f relation.Fact
			if rng.Intn(2) == 0 {
				f = relation.NewFact("R", dom[rng.Intn(5)], dom[rng.Intn(5)])
			} else {
				f = relation.NewFact("E", dom[rng.Intn(5)], dom[rng.Intn(5)])
			}
			insert := rng.Intn(2) == 0
			var ok bool
			if insert {
				ok = d.Insert(f)
			} else {
				ok = d.Delete(f)
			}
			if !ok {
				continue
			}
			after, elim, intro := constraint.UpdateViolationsDelta(d, set, vs, []relation.Fact{f}, insert)
			next, fresh, removed := p.Update(elim, intro, []relation.Fact{f})
			vs = after

			for _, isl := range fresh {
				if isl.Payload != nil {
					t.Logf("seed %d step %d: fresh island has a payload", seed, s)
					return false
				}
				isl.Payload = isl
			}
			rem := map[*Island]bool{}
			for _, isl := range removed {
				rem[isl] = true
			}
			for _, isl := range next.Islands() {
				if rem[isl] {
					t.Logf("seed %d step %d: removed island still listed", seed, s)
					return false
				}
				if isl.Payload == nil {
					t.Logf("seed %d step %d: island lost its payload", seed, s)
					return false
				}
			}
			p = next

			want := NewPartition(constraint.FindViolations(d, set))
			if !reflect.DeepEqual(p.Components(), want.Components()) {
				t.Logf("seed %d step %d: incremental %v, rebuild %v", seed, s, p.Components(), want.Components())
				return false
			}
			for _, isl := range p.Islands() {
				for _, g := range isl.Facts {
					if p.IslandOf(g) != isl {
						t.Logf("seed %d step %d: index maps %s to the wrong island", seed, s, g)
						return false
					}
				}
			}
			for _, g := range d.Facts() {
				if p.IslandOf(g) != nil && !factInIslands(p, g) {
					t.Logf("seed %d step %d: stale index entry for %s", seed, s, g)
					return false
				}
			}
			nvios := 0
			for _, isl := range p.Islands() {
				nvios += len(isl.Violations())
			}
			if nvios != vs.Len() {
				t.Logf("seed %d step %d: islands hold %d violations, want %d", seed, s, nvios, vs.Len())
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func factInIslands(p *Partition, f relation.Fact) bool {
	isl := p.IslandOf(f)
	for _, g := range isl.Facts {
		if g == f {
			return true
		}
	}
	return false
}

// TestPartitionUpdateNoChurnSharing: an update outside the conflict region
// returns the same partition with no churn.
func TestPartitionUpdateNoChurnSharing(t *testing.T) {
	set := partitionSet(t)
	d := relation.FromFacts(
		relation.NewFact("R", "a", "b"),
		relation.NewFact("R", "a", "c"),
	)
	vs := constraint.FindViolations(d, set)
	p := NewPartition(vs)
	if p.Len() != 1 {
		t.Fatalf("want 1 island, got %d", p.Len())
	}
	f := relation.NewFact("R", "z", "w")
	if !d.Insert(f) {
		t.Fatal("insert was a no-op")
	}
	_, elim, intro := constraint.UpdateViolationsDelta(d, set, vs, []relation.Fact{f}, true)
	next, fresh, removed := p.Update(elim, intro, []relation.Fact{f})
	if next != p || fresh != nil || removed != nil {
		t.Fatalf("clean insert churned the partition: fresh=%v removed=%v", fresh, removed)
	}
}
