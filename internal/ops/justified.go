package ops

import (
	"fmt"

	"repro/internal/constraint"
	"repro/internal/logic"
	"repro/internal/relation"
)

// maxSubsetFacts bounds the violation-body sizes for which the direct
// (exponential in |F|) Definition 3 test enumerates subsets. Constraint
// bodies are tiny in practice; 20 facts is far beyond anything realistic
// and keeps the bitmask enumeration within int range.
const maxSubsetFacts = 20

// IsFixing reports whether op is (D,Σ)-fixing: applying it removes at least
// one violation, i.e. V(D,Σ) − V(op(D),Σ) ≠ ∅ (requirement req1).
func IsFixing(op Op, d *relation.Database, sigma *constraint.Set) bool {
	before := constraint.FindViolations(d, sigma)
	if before.Empty() {
		return false
	}
	after := constraint.FindViolations(op.Apply(d), sigma)
	return len(before.Minus(after)) > 0
}

// IsJustified implements Definition 3 directly: op is (D,Σ)-justified if
// some violation (κ,h) eliminated by op satisfies the minimality side
// conditions over every non-empty proper subset G ⊊ F. This is the
// reference implementation used to validate the efficient enumeration in
// JustifiedOps and to check global justification of additions.
func IsJustified(op Op, d *relation.Database, sigma *constraint.Set) bool {
	if len(op.facts) > maxSubsetFacts {
		panic(fmt.Sprintf("ops: |F| = %d exceeds the supported subset-enumeration bound", len(op.facts)))
	}
	before := constraint.FindViolations(d, sigma)
	after := constraint.FindViolations(op.Apply(d), sigma)
	eliminated := before.Minus(after)
	if len(eliminated) == 0 {
		return false
	}
	// Precompute V(op_G(D)) for every non-empty proper subset G ⊊ F.
	n := len(op.facts)
	subsetViolations := make(map[int]*constraint.Violations)
	for mask := 1; mask < (1<<n)-1; mask++ {
		var g []relation.Fact
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				g = append(g, op.facts[i])
			}
		}
		var sub Op
		if op.insert {
			sub = Insert(g...)
		} else {
			sub = Delete(g...)
		}
		subsetViolations[mask] = constraint.FindViolations(sub.Apply(d), sigma)
	}
	for _, v := range eliminated {
		key := v.Key()
		ok := true
		for mask := 1; mask < (1<<n)-1; mask++ {
			vg := subsetViolations[mask]
			if op.insert {
				// Condition 1: (κ,h) must still be violated after adding
				// any proper subset.
				if !vg.Has(key) {
					ok = false
					break
				}
			} else {
				// Condition 2: (κ,h) must already be eliminated after
				// deleting any proper subset.
				if vg.Has(key) {
					ok = false
					break
				}
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// JustifiedOps enumerates every justified operation at the state d, given
// its violation set vs = V(d,Σ) and the base B(D,Σ). Following
// Proposition 1:
//
//   - for every violation (κ,h) and every non-empty F ⊆ h(ϕ), the deletion
//     −F is justified;
//   - for every TGD violation (κ,h), the insertions +F with
//     F = h'(ψ) − d minimal (under strict inclusion) over the extensions h'
//     of h into dom(B(D,Σ)) are justified.
//
// The result is deduplicated and canonically ordered.
func JustifiedOps(d *relation.Database, sigma *constraint.Set, vs *constraint.Violations, base *relation.Base) []Op {
	byKey := map[string]Op{}
	for _, v := range vs.All() {
		for _, op := range JustifiedDeletions(v) {
			byKey[op.Key()] = op
		}
		if v.Constraint.Kind() == constraint.TGD {
			for _, op := range JustifiedAdditions(v, d, base) {
				byKey[op.Key()] = op
			}
		}
	}
	out := make([]Op, 0, len(byKey))
	for _, op := range byKey {
		out = append(out, op)
	}
	SortOps(out)
	return out
}

// JustifiedDeletions returns −F for every non-empty F ⊆ h(ϕ): the justified
// deletions fixing the violation (Proposition 1). The result depends only
// on the violation's body image, so callers may cache it by body key.
func JustifiedDeletions(v constraint.Violation) []Op {
	body := v.BodyFacts()
	n := len(body)
	if n > maxSubsetFacts {
		panic(fmt.Sprintf("ops: violation body with %d facts exceeds the subset-enumeration bound", n))
	}
	out := make([]Op, 0, (1<<n)-1)
	for mask := 1; mask < 1<<n; mask++ {
		var f []relation.Fact
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				f = append(f, body[i])
			}
		}
		out = append(out, Delete(f...))
	}
	return out
}

// JustifiedAdditions returns the minimal head-completion insertions for a
// TGD violation: +F with F = h'(ψ) − d over extensions h' of h that map the
// existential variables into the base domain, keeping only the candidates
// minimal under strict inclusion (Definition 3, condition 1).
func JustifiedAdditions(v constraint.Violation, d *relation.Database, base *relation.Base) []Op {
	c := v.Constraint
	exVars := c.ExistentialVars()
	dom := base.Dom()

	// Enumerate every extension of h over the existential variables.
	var candidates [][]relation.Fact
	keys := map[string]bool{}
	var extend func(i int, h logic.Subst)
	extend = func(i int, h logic.Subst) {
		if i == len(exVars) {
			var f []relation.Fact
			seen := map[string]bool{}
			for _, a := range h.ApplyAtoms(c.Head()) {
				fact, err := relation.FactFromAtom(a)
				if err != nil {
					panic(fmt.Sprintf("ops: TGD head atom %s not grounded by extension %s", a, h))
				}
				if d.Contains(fact) {
					continue
				}
				if k := fact.Key(); !seen[k] {
					seen[k] = true
					f = append(f, fact)
				}
			}
			if len(f) == 0 {
				// The head is already satisfied; (κ,h) was not a violation.
				return
			}
			relation.SortFacts(f)
			k := factSetKey(f)
			if !keys[k] {
				keys[k] = true
				candidates = append(candidates, f)
			}
			return
		}
		for _, cst := range dom {
			h[exVars[i].Name()] = cst
			extend(i+1, h)
			delete(h, exVars[i].Name())
		}
	}
	extend(0, v.H.Clone())

	// Keep only candidates minimal under strict inclusion: +F is justified
	// iff no other candidate F' ⊊ F (Definition 3, condition 1).
	var out []Op
	for i, f := range candidates {
		minimal := true
		for j, g := range candidates {
			if i != j && strictSubset(g, f) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, Insert(f...))
		}
	}
	return out
}

func factSetKey(fs []relation.Fact) string {
	out := ""
	for i, f := range fs {
		if i > 0 {
			out += ";"
		}
		out += f.Key()
	}
	return out
}

// strictSubset reports whether a ⊊ b for canonically sorted fact slices.
func strictSubset(a, b []relation.Fact) bool {
	if len(a) >= len(b) {
		return false
	}
	bKeys := make(map[string]bool, len(b))
	for _, f := range b {
		bKeys[f.Key()] = true
	}
	for _, f := range a {
		if !bKeys[f.Key()] {
			return false
		}
	}
	return true
}
