package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/constraint"
	"repro/internal/relation"
)

// This file generates the mixed read/write workload driven against the
// resident server (internal/serve, cmd/ocqad): an Islands database plus a
// deterministic operation stream interleaving fact toggles with query
// probes. Each toggle touches exactly one island — deleting an interior
// chain edge splits an island, reinserting it merges the halves back — so
// at Islands ≥ 100 every delta dissolves well under 1% of the components,
// the regime the delta-scoped recomputation is built for.

// ServeOp is one step of the mixed workload: an ingest (insert or delete
// of Fact) or, when Ingest is false, a query probe for Fact's survival
// probability.
type ServeOp struct {
	Ingest bool
	Insert bool
	Fact   relation.Fact
}

// ServeMixConfig sizes the mixed workload.
type ServeMixConfig struct {
	// Islands and FactsPerIsland and IsoRatio size the underlying Islands
	// database (same construction, same constraint).
	Islands        int
	FactsPerIsland int
	IsoRatio       float64
	// Ops is the number of operations in the stream.
	Ops int
	// IngestRatio is the fraction of operations that are fact toggles
	// (the rest are query probes). 0 yields a read-only stream.
	IngestRatio float64
	Seed        int64
}

// ServeMix generates the Islands database, its constraint set, and a
// deterministic operation stream. Toggles pick a random island and flip
// its middle chain edge: the first toggle deletes it (splitting the
// island), the next reinserts it (merging the halves), tracked so every
// ingest actually changes the database. Probes ask for a random fact of a
// random island. The stream is a pure function of the config.
func ServeMix(cfg ServeMixConfig) (*relation.Database, *constraint.Set, []ServeOp) {
	d, sigma := Islands(IslandsConfig{
		Islands:        cfg.Islands,
		FactsPerIsland: cfg.FactsPerIsland,
		IsoRatio:       cfg.IsoRatio,
		Seed:           cfg.Seed,
	})
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	// Reconstruct each island's canonical middle edge. The Islands
	// generator may have permuted node orders, but the fact set per island
	// is all E(n_j, n_{j+1}) edges over that island's private constants;
	// toggling the canonical middle edge (which exists in canonical
	// islands and may or may not exist in shuffled ones) is made
	// change-effective by tracking presence.
	mid := cfg.FactsPerIsland / 2
	name := func(i, n int) string { return fmt.Sprintf("i%08d_n%03d", i, n) }
	present := make([]bool, cfg.Islands)
	edge := make([]relation.Fact, cfg.Islands)
	for i := 0; i < cfg.Islands; i++ {
		edge[i] = relation.NewFact("E", name(i, mid), name(i, mid+1))
		present[i] = d.Contains(edge[i])
	}
	ops := make([]ServeOp, 0, cfg.Ops)
	for k := 0; k < cfg.Ops; k++ {
		i := rng.Intn(cfg.Islands)
		if rng.Float64() < cfg.IngestRatio {
			ops = append(ops, ServeOp{Ingest: true, Insert: !present[i], Fact: edge[i]})
			present[i] = !present[i]
		} else {
			n := rng.Intn(cfg.FactsPerIsland)
			ops = append(ops, ServeOp{Fact: relation.NewFact("E", name(i, n), name(i, n+1))})
		}
	}
	return d, sigma, ops
}

// ServeStreams generates the Islands database, its constraint set, and
// `streams` operation streams of cfg.Ops operations each, built like
// ServeMix but over disjoint island sets: island i belongs to stream
// i mod streams, and only that stream toggles or probes it. Because each
// island's middle edge is flipped by exactly one stream, the database
// reached by running the streams concurrently is independent of how the
// server interleaves or coalesces them — island i's edge ends up wherever
// stream (i mod streams)'s toggle count left it — so a deterministic
// oracle recompute of the final state exists even under racing writers.
// Each stream is a pure function of (cfg, streams, its index).
func ServeStreams(cfg ServeMixConfig, streams int) (*relation.Database, *constraint.Set, [][]ServeOp) {
	d, sigma := Islands(IslandsConfig{
		Islands:        cfg.Islands,
		FactsPerIsland: cfg.FactsPerIsland,
		IsoRatio:       cfg.IsoRatio,
		Seed:           cfg.Seed,
	})
	mid := cfg.FactsPerIsland / 2
	name := func(i, n int) string { return fmt.Sprintf("i%08d_n%03d", i, n) }
	out := make([][]ServeOp, streams)
	for s := 0; s < streams; s++ {
		var mine []int
		for i := s; i < cfg.Islands; i += streams {
			mine = append(mine, i)
		}
		if len(mine) == 0 {
			out[s] = []ServeOp{}
			continue
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 2 + int64(s)))
		present := make(map[int]bool, len(mine))
		for _, i := range mine {
			present[i] = d.Contains(relation.NewFact("E", name(i, mid), name(i, mid+1)))
		}
		ops := make([]ServeOp, 0, cfg.Ops)
		for k := 0; k < cfg.Ops; k++ {
			i := mine[rng.Intn(len(mine))]
			if rng.Float64() < cfg.IngestRatio {
				edge := relation.NewFact("E", name(i, mid), name(i, mid+1))
				ops = append(ops, ServeOp{Ingest: true, Insert: !present[i], Fact: edge})
				present[i] = !present[i]
			} else {
				n := rng.Intn(cfg.FactsPerIsland)
				ops = append(ops, ServeOp{Fact: relation.NewFact("E", name(i, n), name(i, n+1))})
			}
		}
		out[s] = ops
	}
	return d, sigma, out
}
