// Package practical implements the implementation sketch at the end of
// Section 5 of the paper for the common case of key violations and deletion
// updates:
//
//	The user sets ε and δ and computes n = ⌈ln(2/δ)/(2ε²)⌉. Then, n times:
//	from each group of tuples violating a key, randomly pick at most one
//	tuple to be left, collecting the others in R_del; run the original
//	query with each relation R replaced by R − R_del; append the outcome
//	to a table T. Finally return n_t̄ / n for every tuple t̄ of T.
//
// The random draw "keep exactly one, uniformly" corresponds to the
// classical one-tuple-per-key repairs; the optional drop-all probability
// implements the paper's "at most one" reading, mirroring the trust
// example of the introduction where neither conflicting source is
// believed.
package practical

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/engine"
	"repro/internal/prob"
)

// Policy controls how a violating key group is repaired in one round.
type Policy struct {
	// DropAll is the probability that a violating group keeps no tuple at
	// all (the introduction's "trust neither source" case). Zero reproduces
	// the classical keep-exactly-one scheme.
	DropAll float64
}

// KeyGroups returns the row-index groups of rel that agree on the key
// columns and have more than one member — the violating groups.
func KeyGroups(rel *engine.Relation, keyIdx []int) [][]int {
	byKey := map[string][]int{}
	var order []string
	for i, row := range rel.Rows {
		parts := make([]string, len(keyIdx))
		for j, k := range keyIdx {
			parts[j] = fmt.Sprintf("%q", row[k])
		}
		key := fmt.Sprint(parts)
		if _, ok := byKey[key]; !ok {
			order = append(order, key)
		}
		byKey[key] = append(byKey[key], i)
	}
	var out [][]int
	for _, k := range order {
		if g := byKey[k]; len(g) > 1 {
			out = append(out, g)
		}
	}
	return out
}

// SampleRdel draws one R_del for the relation: for every violating key
// group, with probability pol.DropAll all members are deleted; otherwise
// one member is kept uniformly at random and the rest are deleted.
func SampleRdel(rng *rand.Rand, rel *engine.Relation, keyIdx []int, pol Policy) *engine.Relation {
	del := &engine.Relation{Name: rel.Name + "_del", Cols: rel.Cols}
	for _, group := range KeyGroups(rel, keyIdx) {
		keep := -1
		if pol.DropAll <= 0 || rng.Float64() >= pol.DropAll {
			keep = group[rng.Intn(len(group))]
		}
		for _, i := range group {
			if i != keep {
				del.Rows = append(del.Rows, rel.Rows[i])
			}
		}
	}
	return del
}

// TupleFreq is an output tuple with its frequency over the n rounds.
type TupleFreq struct {
	Row   []string
	Count int
	P     float64 // Count / n — the approximation of CP
}

// Result is the outcome of a practical-scheme run.
type Result struct {
	N          int
	Eps, Delta float64
	Tuples     []TupleFreq
}

// Lookup returns the frequency entry for a row (zero entry when absent).
func (r *Result) Lookup(row []string) TupleFreq {
	k := fmt.Sprint(row)
	for _, t := range r.Tuples {
		if fmt.Sprint(t.Row) == k {
			return t
		}
	}
	return TupleFreq{Row: row}
}

// Runner executes the scheme against a catalog.
type Runner struct {
	Catalog *engine.Catalog
	Policy  Policy
	Seed    int64
}

// Run executes n rounds of the scheme for the query plan and returns the
// per-tuple frequencies. Output rows are deduplicated within each round
// (the scheme counts whether a tuple is in the round's answer, not how many
// times).
func (r *Runner) Run(plan engine.Plan, n int) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("practical: need at least one round, got %d", n)
	}
	rng := rand.New(rand.NewSource(r.Seed))
	counts := map[string]int{}
	rows := map[string][]string{}
	for round := 0; round < n; round++ {
		repl := map[string]*engine.Relation{}
		for _, table := range r.Catalog.KeyedTables() {
			rel, err := r.Catalog.Table(table)
			if err != nil {
				return nil, err
			}
			repl[table] = SampleRdel(rng, rel, r.Catalog.Key(table), r.Policy)
		}
		rewritten := engine.RewriteScans(plan, repl)
		out, err := rewritten.Exec(r.Catalog)
		if err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		for _, row := range out.Rows {
			k := fmt.Sprint(row)
			if seen[k] {
				continue
			}
			seen[k] = true
			counts[k]++
			if _, ok := rows[k]; !ok {
				rows[k] = append([]string(nil), row...)
			}
		}
	}
	res := &Result{N: n}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		res.Tuples = append(res.Tuples, TupleFreq{
			Row:   rows[k],
			Count: counts[k],
			P:     float64(counts[k]) / float64(n),
		})
	}
	return res, nil
}

// RunWithGuarantee computes n from (ε, δ) via the Hoeffding bound and runs
// the scheme; for ε = δ = 0.1 this is the paper's n = 150.
func (r *Runner) RunWithGuarantee(plan engine.Plan, eps, delta float64) (*Result, error) {
	n, err := prob.HoeffdingSamples(eps, delta)
	if err != nil {
		return nil, err
	}
	res, rerr := r.Run(plan, n)
	if rerr != nil {
		return nil, rerr
	}
	res.Eps, res.Delta = eps, delta
	return res, nil
}
