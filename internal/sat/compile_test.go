package sat_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/fo"
	"repro/internal/logic"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/sat"
	"repro/internal/workload"
)

// bruteCertain computes the certain answers by enumerating the repair
// space directly: every combination of "keep at most one fact per
// violating group" (or exactly one, for maximal repairs) over the
// conflict-free backbone, intersecting the query answers. This is the
// semantic ground truth the encoder must match; the equivalence suite in
// internal/core separately pins it to the chain engines.
func bruteCertain(t *testing.T, db *relation.Database, sigma *constraint.Set, q *fo.Query, maximal bool) [][]string {
	t.Helper()
	cat := plan.NewCatalogOn(db)
	keyed, unrec := cat.DeriveKeys(sigma)
	if unrec != 0 {
		t.Fatalf("bruteCertain: %d unrecognized constraints", unrec)
	}
	var groups [][]relation.Fact
	for _, name := range keyed {
		tbl, err := cat.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		groups = append(groups, relation.KeyViolatingGroups(db, tbl.Pred, len(tbl.Cols), cat.Key(name))...)
	}
	inGroup := map[uint32]bool{}
	for _, g := range groups {
		for _, f := range g {
			inGroup[f.ID()] = true
		}
	}
	var core []relation.Fact
	for _, f := range db.Facts() {
		if !inGroup[f.ID()] {
			core = append(core, f)
		}
	}
	var certain [][]string
	first := true
	choice := make([]int, len(groups)) // -1 = drop all, i = keep g[i]
	var rec func(i int)
	rec = func(i int) {
		if i == len(groups) {
			rep := relation.NewDatabase()
			for _, f := range core {
				rep.Insert(f)
			}
			for gi, c := range choice {
				if c >= 0 {
					rep.Insert(groups[gi][c])
				}
			}
			ans := q.Answers(rep)
			if first {
				certain = ans
				first = false
				return
			}
			keep := certain[:0]
			for _, c := range certain {
				for _, a := range ans {
					if len(a) == len(c) && equalTuple(a, c) {
						keep = append(keep, c)
						break
					}
				}
			}
			certain = keep
			return
		}
		start := -1
		if maximal {
			start = 0
		}
		for c := start; c < len(groups[i]); c++ {
			choice[i] = c
			rec(i + 1)
		}
	}
	rec(0)
	fo.SortTuples(certain)
	return certain
}

func equalTuple(a, b []string) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func tuplesEqual(a, b [][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) || !equalTuple(a[i], b[i]) {
			return false
		}
	}
	return true
}

func existsQuery(pred string) *fo.Query {
	x, y := logic.Var("x"), logic.Var("y")
	return fo.MustQuery("Q", []logic.Term{x},
		fo.Exists{Vars: []logic.Term{y}, F: fo.Atom{A: logic.NewAtom(pred, x, y)}})
}

// TestCertainAgainstBruteForce drives the full compile+solve pipeline
// against subset enumeration on families with different conflict shapes,
// under both repair-space options.
func TestCertainAgainstBruteForce(t *testing.T) {
	type inst struct {
		name  string
		db    *relation.Database
		sigma *constraint.Set
		q     *fo.Query
	}
	var cases []inst

	d1, s1 := workload.KeyViolations(workload.KeyConfig{Keys: 6, Violations: 3, Seed: 2})
	cases = append(cases, inst{"key-violations", d1, s1, existsQuery("R")})

	d2, s2 := workload.Cliques(workload.CliqueConfig{Groups: 2, GroupSize: 3, Core: 2, Seed: 5})
	cases = append(cases, inst{"cliques", d2, s2, existsQuery("R")})

	// Join across two keyed tables: witnesses mixing conflicted facts of
	// both, plus a certain join pair.
	d3 := relation.NewDatabase()
	for _, f := range [][3]string{
		{"R", "a", "1"}, {"R", "a", "2"}, // group in R
		{"R", "b", "3"},
		{"S", "a", "x"},
		{"S", "b", "y"}, {"S", "b", "z"}, // group in S
		{"S", "c", "w"},
	} {
		d3.Insert(relation.NewFact(f[0], f[1], f[2]))
	}
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	keyOf := func(pred string) *constraint.Constraint {
		return constraint.MustEGD(
			[]logic.Atom{logic.NewAtom(pred, x, y), logic.NewAtom(pred, x, z)}, y, z)
	}
	s3 := constraint.NewSet(keyOf("R"), keyOf("S"))
	joinQ := fo.MustQuery("J", []logic.Term{x},
		fo.Exists{Vars: []logic.Term{y, z}, F: fo.And{
			L: fo.Atom{A: logic.NewAtom("R", x, y)},
			R: fo.Atom{A: logic.NewAtom("S", x, z)},
		}})
	cases = append(cases, inst{"two-table-join", d3, s3, joinQ})

	// Boolean query over the same instance.
	boolQ := fo.MustQuery("B", nil,
		fo.Exists{Vars: []logic.Term{x, y}, F: fo.Atom{A: logic.NewAtom("S", x, y)}})
	cases = append(cases, inst{"boolean", d3, s3, boolQ})

	// Consistent instance (no violations): everything certain.
	d5, s5 := workload.KeyViolations(workload.KeyConfig{Keys: 4, Violations: 0, Seed: 3})
	cases = append(cases, inst{"consistent", d5, s5, existsQuery("R")})

	for _, tc := range cases {
		for _, maximal := range []bool{false, true} {
			name := tc.name
			if maximal {
				name += "/maximal"
			}
			t.Run(name, func(t *testing.T) {
				enc, err := sat.NewEncoder(tc.db, tc.sigma, sat.Options{MaximalRepairs: maximal})
				if err != nil {
					t.Fatal(err)
				}
				res, err := enc.CertainAnswers(tc.q)
				if err != nil {
					t.Fatal(err)
				}
				want := bruteCertain(t, tc.db, tc.sigma, tc.q, maximal)
				if !tuplesEqual(res.Answers, want) {
					t.Fatalf("certain mismatch:\n sat  = %v\n brute= %v", res.Answers, want)
				}
				// Per-tuple Certain must agree with the set computation,
				// including on a non-candidate tuple.
				for _, tup := range res.Answers {
					ok, err := enc.Certain(tc.q, tup)
					if err != nil || !ok {
						t.Fatalf("Certain(%v) = %v, %v; want true", tup, ok, err)
					}
				}
				if !tc.q.IsBoolean() {
					ok, err := enc.Certain(tc.q, []string{"no-such-constant"})
					if err != nil || ok {
						t.Fatalf("Certain(no-such-constant) = %v, %v; want false", ok, err)
					}
				}
			})
		}
	}
}

// TestMaximalGrowsCertainSet: the "trust neither" resolution is what
// makes violating keys uncertain operationally; excluding it (maximal
// repairs) must make every key of every group certain again for the
// exists-query.
func TestMaximalRepairsGrowCertainSet(t *testing.T) {
	db, sigma := workload.Cliques(workload.CliqueConfig{Groups: 3, GroupSize: 3, Core: 2, Seed: 1})
	q := existsQuery("R")

	op, err := sat.NewEncoder(db, sigma, sat.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opRes, err := op.CertainAnswers(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(opRes.Answers) != 2 {
		t.Fatalf("operational certain = %v, want exactly the 2 core keys", opRes.Answers)
	}

	mx, err := sat.NewEncoder(db, sigma, sat.Options{MaximalRepairs: true})
	if err != nil {
		t.Fatal(err)
	}
	mxRes, err := mx.CertainAnswers(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(mxRes.Answers) != 5 {
		t.Fatalf("maximal certain = %v, want all 5 keys", mxRes.Answers)
	}
}

// TestPlanAsQueryCompilation: a relational-algebra plan compiled through
// plan.AsQuery is a first-class input to the SAT engine — the second
// compilation target of the plan layer.
func TestPlanAsQueryCompilation(t *testing.T) {
	db, sigma := workload.KeyViolations(workload.KeyConfig{Keys: 5, Violations: 2, Seed: 4})
	cat := plan.NewCatalogOn(db)
	cat.MustAddTable("R", "k", "v")
	p := plan.Distinct{Input: plan.Project{Input: plan.Scan{Table: "R"}, Cols: []string{"k"}}}
	q, ok := plan.AsQuery(p, cat)
	if !ok {
		t.Fatal("plan should compile to a CQ")
	}
	enc, err := sat.NewEncoder(db, sigma, sat.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := enc.CertainAnswers(q)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteCertain(t, db, sigma, q, false)
	if !tuplesEqual(res.Answers, want) {
		t.Fatalf("plan-compiled certain mismatch:\n sat  = %v\n brute= %v", res.Answers, want)
	}
}

// TestUnsupportedInputs pins the error surface.
func TestUnsupportedInputs(t *testing.T) {
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	db := relation.NewDatabase()
	db.Insert(relation.NewFact("E", "a", "b"))
	db.Insert(relation.NewFact("E", "b", "c"))

	dc := constraint.MustDC([]logic.Atom{logic.NewAtom("E", x, y), logic.NewAtom("E", y, z)})
	if _, err := sat.NewEncoder(db, constraint.NewSet(dc), sat.Options{}); !errors.Is(err, sat.ErrUnsupportedConstraints) {
		t.Errorf("DC constraint: err = %v, want ErrUnsupportedConstraints", err)
	}

	// A functional dependency that is not a key (wide table, one EGD).
	fd := constraint.MustEGD(
		[]logic.Atom{logic.NewAtom("T", x, y, logic.Var("u")), logic.NewAtom("T", x, z, logic.Var("w"))},
		y, z)
	if _, err := sat.NewEncoder(db, constraint.NewSet(fd), sat.Options{}); !errors.Is(err, sat.ErrUnsupportedConstraints) {
		t.Errorf("non-key FD: err = %v, want ErrUnsupportedConstraints", err)
	}

	dbR, sigma := workload.KeyViolations(workload.KeyConfig{Keys: 3, Violations: 1, Seed: 1})
	enc, err := sat.NewEncoder(dbR, sigma, sat.Options{})
	if err != nil {
		t.Fatal(err)
	}

	orQ := fo.MustQuery("O", []logic.Term{x, y}, fo.Or{
		L: fo.Atom{A: logic.NewAtom("R", x, y)},
		R: fo.Atom{A: logic.NewAtom("R", y, x)},
	})
	if _, err := enc.CertainAnswers(orQ); !errors.Is(err, sat.ErrUnsupportedQuery) {
		t.Errorf("disjunctive query: err = %v, want ErrUnsupportedQuery", err)
	}

	freeQ := fo.MustQuery("F", []logic.Term{x, z},
		fo.Exists{Vars: []logic.Term{y}, F: fo.Atom{A: logic.NewAtom("R", x, y)}})
	if _, err := enc.CertainAnswers(freeQ); !errors.Is(err, sat.ErrUnsupportedQuery) {
		t.Errorf("unconstrained output: err = %v, want ErrUnsupportedQuery", err)
	}
}

// TestEmptySigma: with no constraints the database is its only repair.
func TestEmptySigma(t *testing.T) {
	db, _ := workload.KeyViolations(workload.KeyConfig{Keys: 3, Violations: 2, Seed: 1})
	enc, err := sat.NewEncoder(db, constraint.NewSet(), sat.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := existsQuery("R")
	res, err := enc.CertainAnswers(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups != 0 || res.Solved != 0 || len(res.Answers) != 3 {
		t.Fatalf("empty sigma: groups=%d solved=%d answers=%v", res.Groups, res.Solved, res.Answers)
	}
}

// TestWriteTupleDIMACS exercises the three export shapes: a solver-backed
// formula, a conflict-free-witness tuple, and a non-candidate tuple.
func TestWriteTupleDIMACS(t *testing.T) {
	db, sigma := workload.Cliques(workload.CliqueConfig{Groups: 1, GroupSize: 2, Core: 1, Seed: 1})
	enc, err := sat.NewEncoder(db, sigma, sat.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := existsQuery("R")

	var buf bytes.Buffer
	if err := enc.WriteTupleDIMACS(&buf, q, []string{"g0"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "p cnf ") || !strings.Contains(out, "c var 1 = keep R(") {
		t.Errorf("conflicted-tuple export missing header/comments:\n%s", out)
	}

	buf.Reset()
	if err := enc.WriteTupleDIMACS(&buf, q, []string{"c0"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "p cnf 0 1\n0\n") {
		t.Errorf("certain tuple should export the empty clause:\n%s", buf.String())
	}

	buf.Reset()
	if err := enc.WriteTupleDIMACS(&buf, q, []string{"nowhere"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "p cnf 0 0") {
		t.Errorf("non-candidate tuple should export the empty formula:\n%s", buf.String())
	}
}

// TestResultAccounting sanity-checks the CertainResult counters on an
// instance where they are all predictable.
func TestResultAccounting(t *testing.T) {
	db, sigma := workload.Cliques(workload.CliqueConfig{Groups: 4, GroupSize: 3, Core: 2, Seed: 9})
	enc, err := sat.NewEncoder(db, sigma, sat.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if enc.Groups() != 4 || enc.ConflictFacts() != 12 {
		t.Fatalf("groups=%d facts=%d, want 4/12", enc.Groups(), enc.ConflictFacts())
	}
	res, err := enc.CertainAnswers(existsQuery("R"))
	if err != nil {
		t.Fatal(err)
	}
	// 6 candidate keys: 4 group keys (solver: SAT → not certain) + 2 core
	// keys (immediate).
	if res.Candidates != 6 || res.Immediate != 2 || res.Solved != 4 || len(res.Answers) != 2 {
		t.Fatalf("accounting: %+v", res)
	}
	if res.Stats.Propagations == 0 {
		t.Error("expected some solver propagations")
	}
}

func ExampleEncoder_CertainAnswers() {
	db, sigma := workload.Cliques(workload.CliqueConfig{Groups: 2, GroupSize: 2, Core: 1, Seed: 1})
	enc, _ := sat.NewEncoder(db, sigma, sat.Options{})
	x, y := logic.Var("x"), logic.Var("y")
	q := fo.MustQuery("Q", []logic.Term{x},
		fo.Exists{Vars: []logic.Term{y}, F: fo.Atom{A: logic.NewAtom("R", x, y)}})
	res, _ := enc.CertainAnswers(q)
	for _, t := range res.Answers {
		fmt.Println(fo.TupleString(t))
	}
	// Output:
	// (c0)
}
