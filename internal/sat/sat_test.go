package sat

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// bruteSAT decides a CNF by enumerating all 2^n assignments.
func bruteSAT(c *CNF) bool {
	return bruteCount(c, nil) > 0
}

// bruteCount counts satisfying assignments; when keep is non-nil, models
// are first projected onto the keep variables and counted once per
// distinct projection (for checking projection-equivalence of the
// cardinality encodings, whose auxiliaries must not add or remove
// projected models).
func bruteCount(c *CNF, keep []Var) int {
	if c.hasEmpty {
		return 0
	}
	n := c.NumVars()
	if n > 22 {
		panic("bruteCount: too many variables")
	}
	seen := map[string]bool{}
	count := 0
	assign := make([]bool, n+1)
	var rec func(v int)
	rec = func(v int) {
		if v > n {
			for _, cl := range c.clauses {
				ok := false
				for _, l := range cl {
					if l > 0 && assign[l] || l < 0 && !assign[-l] {
						ok = true
						break
					}
				}
				if !ok {
					return
				}
			}
			if keep == nil {
				count++
				return
			}
			var sb strings.Builder
			for _, k := range keep {
				if assign[k] {
					sb.WriteByte('1')
				} else {
					sb.WriteByte('0')
				}
			}
			if !seen[sb.String()] {
				seen[sb.String()] = true
				count++
			}
			return
		}
		assign[v] = false
		rec(v + 1)
		assign[v] = true
		rec(v + 1)
	}
	rec(1)
	return count
}

// modelSatisfies checks a solver model against the original CNF.
func modelSatisfies(c *CNF, model []bool) bool {
	for _, cl := range c.clauses {
		ok := false
		for _, l := range cl {
			if l > 0 && model[l] || l < 0 && !model[-l] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// TestSolverAgainstBruteForce cross-checks the CDCL solver against
// exhaustive enumeration on random 3-ish-CNF instances across the
// under/over-constrained spectrum, and validates returned models.
func TestSolverAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		nv := 1 + rng.Intn(12)
		// Clause/variable ratios spanning easy-SAT to easy-UNSAT around
		// the ~4.26 threshold.
		nc := 1 + rng.Intn(6*nv)
		c := NewCNF(nv)
		for i := 0; i < nc; i++ {
			k := 1 + rng.Intn(3)
			lits := make([]Lit, k)
			for j := range lits {
				v := Lit(1 + rng.Intn(nv))
				if rng.Intn(2) == 0 {
					v = -v
				}
				lits[j] = v
			}
			c.Add(lits...)
		}
		want := bruteSAT(c)
		s := NewSolver(c)
		got := s.Solve()
		if got != want {
			t.Fatalf("trial %d (nv=%d nc=%d): solver=%v brute=%v", trial, nv, nc, got, want)
		}
		if got && !modelSatisfies(c, s.Model()) {
			t.Fatalf("trial %d: solver returned a non-model", trial)
		}
	}
}

// TestSolverDeterministic: same formula, same verdict, same model, same
// statistics — the solver has no hidden nondeterminism.
func TestSolverDeterministic(t *testing.T) {
	build := func() *CNF {
		c := NewCNF(10)
		for i := 0; i < 35; i++ {
			a, b, d := Lit(1+i%10), Lit(1+(i*3)%10), Lit(1+(i*7)%10)
			c.Add(a, -b, d)
		}
		return c
	}
	s1, s2 := NewSolver(build()), NewSolver(build())
	r1, r2 := s1.Solve(), s2.Solve()
	if r1 != r2 || s1.Stats != s2.Stats {
		t.Fatalf("nondeterministic solve: %v/%v stats %+v vs %+v", r1, r2, s1.Stats, s2.Stats)
	}
	if r1 {
		m1, m2 := s1.Model(), s2.Model()
		for i := range m1 {
			if m1[i] != m2[i] {
				t.Fatalf("models differ at var %d", i)
			}
		}
	}
}

// TestAtMostOne checks the cardinality encoding by projected model
// counting on both sides of the pairwise/sequential threshold: the
// number of projected models must be n+1 (each singleton plus all-false),
// and every ≥2-true assignment must be excluded.
func TestAtMostOne(t *testing.T) {
	for n := 0; n <= pairwiseAtMostOneLimit+3; n++ {
		c := NewCNF(n)
		vars := make([]Var, n)
		for i := range vars {
			vars[i] = Var(i + 1)
		}
		c.AtMostOne(vars)
		want := n + 1
		if n == 0 {
			want = 1
		}
		if got := bruteCount(c, vars); got != want {
			t.Errorf("AtMostOne(%d): %d projected models, want %d", n, got, want)
		}
		// Forcing two variables true must be UNSAT for n ≥ 2.
		if n >= 2 {
			forced := c.Clone()
			forced.Add(vars[0])
			forced.Add(vars[n-1])
			if s := NewSolver(forced); s.Solve() {
				t.Errorf("AtMostOne(%d): two forced trues still satisfiable", n)
			}
		}
		// Forcing any single variable true must stay SAT.
		for _, v := range vars {
			forced := c.Clone()
			forced.Add(v)
			if s := NewSolver(forced); !s.Solve() {
				t.Errorf("AtMostOne(%d): singleton %d unsatisfiable", n, v)
			}
		}
	}
}

// TestExactlyOne mirrors TestAtMostOne: exactly n projected models, the
// all-false assignment excluded.
func TestExactlyOne(t *testing.T) {
	for n := 1; n <= pairwiseAtMostOneLimit+3; n++ {
		c := NewCNF(n)
		vars := make([]Var, n)
		for i := range vars {
			vars[i] = Var(i + 1)
		}
		c.ExactlyOne(vars)
		if got := bruteCount(c, vars); got != n {
			t.Errorf("ExactlyOne(%d): %d projected models, want %d", n, got, n)
		}
		allFalse := c.Clone()
		for _, v := range vars {
			allFalse.Add(-v)
		}
		if s := NewSolver(allFalse); s.Solve() {
			t.Errorf("ExactlyOne(%d): all-false still satisfiable", n)
		}
	}
}

// TestUnitPropagation: an implication chain resolves by propagation
// alone — zero decisions and zero conflicts.
func TestUnitPropagation(t *testing.T) {
	const n = 40
	c := NewCNF(n)
	c.Add(1)
	for v := Lit(1); v < n; v++ {
		c.Add(-v, v+1) // v → v+1
	}
	s := NewSolver(c)
	if !s.Solve() {
		t.Fatal("implication chain should be satisfiable")
	}
	for v := 1; v <= n; v++ {
		if !s.Model()[v] {
			t.Fatalf("var %d should be forced true", v)
		}
	}
	if s.Stats.Decisions != 0 || s.Stats.Conflicts != 0 {
		t.Fatalf("chain should solve by pure propagation, got %+v", s.Stats)
	}

	// Close the chain with ¬x_n: contradiction at level 0.
	c2 := NewCNF(n)
	c2.Add(1)
	for v := Lit(1); v < n; v++ {
		c2.Add(-v, v+1)
	}
	c2.Add(-Lit(n))
	if s := NewSolver(c2); s.Solve() {
		t.Fatal("contradictory chain should be unsatisfiable")
	}
}

// TestConflictLearning: pigeonhole instances are UNSAT and force the
// solver through genuine conflict analysis (learned clauses > 0).
func TestConflictLearning(t *testing.T) {
	for _, holes := range []int{3, 4, 5} {
		pigeons := holes + 1
		c := NewCNF(pigeons * holes)
		x := func(p, h int) Lit { return Lit(p*holes + h + 1) }
		for p := 0; p < pigeons; p++ {
			row := make([]Lit, holes)
			for h := 0; h < holes; h++ {
				row[h] = x(p, h)
			}
			c.Add(row...)
		}
		for h := 0; h < holes; h++ {
			for p := 0; p < pigeons; p++ {
				for q := p + 1; q < pigeons; q++ {
					c.Add(-x(p, h), -x(q, h))
				}
			}
		}
		s := NewSolver(c)
		if s.Solve() {
			t.Fatalf("PHP(%d,%d) should be UNSAT", pigeons, holes)
		}
		if s.Stats.Learned == 0 || s.Stats.Conflicts == 0 {
			t.Fatalf("PHP(%d,%d): expected learned conflict clauses, got %+v", pigeons, holes, s.Stats)
		}
	}
}

// TestDegenerateInputs: empty formulas, empty clauses, contradictory
// units, tautologies, and duplicate literals.
func TestDegenerateInputs(t *testing.T) {
	if s := NewSolver(NewCNF(0)); !s.Solve() {
		t.Error("empty formula should be SAT")
	}
	c := NewCNF(3)
	c.Add()
	if s := NewSolver(c); s.Solve() {
		t.Error("empty clause should be UNSAT")
	}
	c = NewCNF(1)
	c.Add(1)
	c.Add(-1)
	if s := NewSolver(c); s.Solve() {
		t.Error("contradictory units should be UNSAT")
	}
	c = NewCNF(2)
	c.Add(1, -1) // tautology: dropped
	c.Add(2, 2, 2)
	s := NewSolver(c)
	if !s.Solve() || !s.Model()[2] {
		t.Error("tautology+duplicate handling broken")
	}
}

// TestAddPanicsOnUnallocated pins the literal-range guard.
func TestAddPanicsOnUnallocated(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add of an unallocated variable should panic")
		}
	}()
	NewCNF(2).Add(3)
}

// TestCloneIsolation: clauses added to a clone do not leak back.
func TestCloneIsolation(t *testing.T) {
	c := NewCNF(2)
	c.Add(1, 2)
	cl := c.Clone()
	cl.Add(-1)
	cl.Add(-2)
	if s := NewSolver(cl); s.Solve() {
		t.Error("clone with both negations should be UNSAT")
	}
	if c.NumClauses() != 1 {
		t.Errorf("clone leaked clauses into parent: %d", c.NumClauses())
	}
	if s := NewSolver(c); !s.Solve() {
		t.Error("parent should still be SAT")
	}
}

// TestWriteDIMACS pins the export format.
func TestWriteDIMACS(t *testing.T) {
	c := NewCNF(3)
	c.Add(1, -2)
	c.Add(2, 3)
	var buf bytes.Buffer
	if err := c.WriteDIMACS(&buf, "hello"); err != nil {
		t.Fatal(err)
	}
	want := "c hello\np cnf 3 2\n1 -2 0\n2 3 0\n"
	if buf.String() != want {
		t.Errorf("DIMACS output:\n%q\nwant:\n%q", buf.String(), want)
	}
}

// TestRestarts drives the solver into its restart schedule on a hard
// instance and checks it still terminates with the right verdict.
func TestRestarts(t *testing.T) {
	holes := 7
	pigeons := holes + 1
	c := NewCNF(pigeons * holes)
	x := func(p, h int) Lit { return Lit(p*holes + h + 1) }
	for p := 0; p < pigeons; p++ {
		row := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			row[h] = x(p, h)
		}
		c.Add(row...)
	}
	for h := 0; h < holes; h++ {
		for p := 0; p < pigeons; p++ {
			for q := p + 1; q < pigeons; q++ {
				c.Add(-x(p, h), -x(q, h))
			}
		}
	}
	s := NewSolver(c)
	if s.Solve() {
		t.Fatalf("PHP(%d,%d) should be UNSAT", pigeons, holes)
	}
	if s.Stats.Restarts == 0 {
		t.Logf("note: PHP(%d,%d) solved without restarting (%d conflicts)", pigeons, holes, s.Stats.Conflicts)
	}
}

func ExampleCNF_WriteDIMACS() {
	c := NewCNF(2)
	c.Add(1, 2)
	c.Add(-1, -2)
	var buf bytes.Buffer
	_ = c.WriteDIMACS(&buf, "x xor y")
	fmt.Print(buf.String())
	// Output:
	// c x xor y
	// p cnf 2 2
	// 1 2 0
	// -1 -2 0
}
