package repair

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/logic"
	"repro/internal/ops"
	"repro/internal/relation"
)

// inclusionInstance builds R(x,y) → ∃z S(y,z) over two dangling R facts.
func inclusionInstance(t *testing.T, opts Options) *Instance {
	t.Helper()
	d := relation.FromFacts(
		f("R", "x1", "y1"),
		f("R", "x2", "y2"),
	)
	tgd := constraint.MustTGD(
		[]logic.Atom{at("R", v("x"), v("y"))},
		[]logic.Atom{at("S", v("y"), v("z"))},
	)
	inst, err := NewInstanceOpts(d, constraint.NewSet(tgd), opts)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestNullModeSingleInsertionPerViolation: grounded mode offers
// |dom|^1 = 4 insertions per violation; null mode offers exactly one.
func TestNullModeSingleInsertionPerViolation(t *testing.T) {
	grounded := inclusionInstance(t, Options{})
	groundedExts := grounded.Root().Extensions()
	groundedInserts := 0
	for _, op := range groundedExts {
		if op.IsInsert() {
			groundedInserts++
		}
	}
	// 2 violations × 4 base constants.
	if groundedInserts != 8 {
		t.Errorf("grounded insertions = %d, want 8", groundedInserts)
	}

	nulled := inclusionInstance(t, Options{NullInsertions: true})
	nulledExts := nulled.Root().Extensions()
	nulledInserts := 0
	for _, op := range nulledExts {
		if op.IsInsert() {
			nulledInserts++
			for _, fact := range op.Facts() {
				if !ops.HasNulls(fact) {
					t.Errorf("null-mode insertion %s has no null", op)
				}
			}
		}
	}
	if nulledInserts != 2 {
		t.Errorf("null-mode insertions = %d, want 2 (one per violation)", nulledInserts)
	}
	// Deletions are unaffected by the mode.
	if len(nulledExts)-nulledInserts != 2 {
		t.Errorf("null-mode deletions = %d, want 2", len(nulledExts)-nulledInserts)
	}
}

// TestNullModeRepairsConsistent: every complete sequence in null mode
// yields a consistent database, and sequences validate.
func TestNullModeRepairsConsistent(t *testing.T) {
	inst := inclusionInstance(t, Options{NullInsertions: true})
	leaves := 0
	Walk(inst, func(s *State) bool {
		if err := Validate(inst, s.Ops()); err != nil {
			t.Errorf("sequence %q fails validation: %v", s, err)
			return false
		}
		if s.IsComplete() {
			leaves++
			if !s.IsSuccessful() {
				t.Errorf("complete sequence %q is failing", s)
			}
		}
		return true
	})
	// Each violation independently: delete R or insert S(y, null): 2 × 2
	// outcomes in either order = 8 ordered leaves.
	if leaves != 8 {
		t.Errorf("leaves = %d, want 8", leaves)
	}
}

// TestNullModeDeterministicNullNames: the same violation always yields the
// same null constant, keeping chains reproducible.
func TestNullModeDeterministicNullNames(t *testing.T) {
	a := inclusionInstance(t, Options{NullInsertions: true})
	b := inclusionInstance(t, Options{NullInsertions: true})
	opsA := a.Root().Extensions()
	opsB := b.Root().Extensions()
	if len(opsA) != len(opsB) {
		t.Fatalf("extension counts differ: %d vs %d", len(opsA), len(opsB))
	}
	for i := range opsA {
		if !opsA[i].Equal(opsB[i]) {
			t.Errorf("extension %d differs: %s vs %s", i, opsA[i], opsB[i])
		}
	}
}

// TestNullModeChaseDepth: inserted null facts can themselves trigger
// further TGD violations (a chase); the process still terminates here and
// remains validated.
func TestNullModeChaseDepth(t *testing.T) {
	// R(x) → ∃z S(x,z); S(x,z) → T(z). A null inserted for S cascades into
	// a ground T fact over the null.
	d := relation.FromFacts(f("R", "a"))
	tgd1 := constraint.MustTGD(
		[]logic.Atom{at("R", v("x"))},
		[]logic.Atom{at("S", v("x"), v("z"))},
	)
	tgd2 := constraint.MustTGD(
		[]logic.Atom{at("S", v("x"), v("z"))},
		[]logic.Atom{at("T", v("z"))},
	)
	inst, err := NewInstanceOpts(d, constraint.NewSet(tgd1, tgd2), Options{NullInsertions: true})
	if err != nil {
		t.Fatal(err)
	}
	st := Survey(inst)
	if st.Successful == 0 {
		t.Error("expected at least one successful sequence")
	}
	// Check one successful path explicitly: +S(a, null), +T(null).
	s := inst.Root()
	var insertS ops.Op
	for _, op := range s.Extensions() {
		if op.IsInsert() {
			insertS = op
		}
	}
	s = s.Child(insertS)
	if s.Consistent() {
		t.Fatal("T violation should remain after inserting S")
	}
	var insertT ops.Op
	found := false
	for _, op := range s.Extensions() {
		if op.IsInsert() {
			insertT = op
			found = true
		}
	}
	if !found {
		t.Fatal("expected a follow-up insertion for the T violation")
	}
	s = s.Child(insertT)
	if !s.IsSuccessful() {
		t.Errorf("chase path did not terminate consistently: %q", s)
	}
	if err := Validate(inst, s.Ops()); err != nil {
		t.Errorf("chase path fails validation: %v", err)
	}
}

// TestGroundedModeRejectsNullFacts: without the option, operations with
// nulls are outside B(D,Σ) and rejected by the validator.
func TestGroundedModeRejectsNullFacts(t *testing.T) {
	inst := inclusionInstance(t, Options{})
	bad := []ops.Op{ops.Insert(f("S", "y1", ops.NullPrefix+"zz"))}
	if err := Validate(inst, bad); err == nil {
		t.Error("grounded mode must reject null facts")
	}
}
