package prob

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// ratOracle mirrors a Rat with all-big.Rat arithmetic; every test drives
// both and demands bit-identical materialization (big.Rat is canonical, so
// Cmp == 0 together with RatString equality is the full check).
func checkAgainst(t *testing.T, r *Rat, oracle *big.Rat, ctx string) {
	t.Helper()
	got := r.Big()
	if got.Cmp(oracle) != 0 || got.RatString() != oracle.RatString() {
		t.Fatalf("%s: Rat = %s, oracle = %s (promoted=%v)", ctx, got.RatString(), oracle.RatString(), r.IsBig())
	}
}

func TestRatZeroValue(t *testing.T) {
	var r Rat
	if r.Sign() != 0 {
		t.Errorf("zero value Sign = %d, want 0", r.Sign())
	}
	if r.Big().Sign() != 0 {
		t.Errorf("zero value Big = %s, want 0", r.Big().RatString())
	}
	r.AddBig(big.NewRat(1, 3))
	checkAgainst(t, &r, big.NewRat(1, 3), "0 + 1/3")
}

// TestRatAddMulSmallStaysSmall: typical chain arithmetic (products of
// per-step fractions) never leaves the fast path.
func TestRatAddMulSmallStaysSmall(t *testing.T) {
	r := RatOne()
	oracle := big.NewRat(1, 1)
	for d := int64(2); d <= 20; d++ {
		p := big.NewRat(1, d)
		r = r.MulBig(p)
		oracle.Mul(oracle, p)
	}
	if r.IsBig() {
		t.Error("1/20! of magnitude should stay in the fast path")
	}
	checkAgainst(t, &r, oracle, "Π 1/d")

	var sum Rat
	sumOracle := new(big.Rat)
	for d := int64(1); d <= 50; d++ {
		w := RatFrac(1, d)
		sum.AddMul(&w, big.NewRat(3, 7))
		sumOracle.Add(sumOracle, new(big.Rat).Mul(big.NewRat(1, d), big.NewRat(3, 7)))
	}
	checkAgainst(t, &sum, sumOracle, "Σ (1/d)·(3/7)")
}

// TestRatPromotionBoundary drives values that straddle int64: products of
// large primes overflow mulSmall, harmonic-style sums overflow addSmall's
// lcm, and both must promote without changing the value.
func TestRatPromotionBoundary(t *testing.T) {
	big1 := int64(1)<<62 - 57 // near-2^62 odd values with no common factors
	big2 := int64(1)<<62 - 87

	r := RatFrac(big1, 1)
	oracle := new(big.Rat).SetInt64(big1)
	p := new(big.Rat).SetInt64(big2)
	r = r.MulBig(p)
	oracle.Mul(oracle, p)
	if !r.IsBig() {
		t.Error("2^124-scale product must promote")
	}
	checkAgainst(t, &r, oracle, "big1·big2")

	// Denominator overflow on add: 1/(2^62-57) + 1/(2^62-87) has an lcm
	// beyond int64.
	s := RatFrac(1, big1)
	so := big.NewRat(1, 1).SetFrac64(1, big1)
	other := RatFrac(1, big2)
	s.Add(&other)
	so.Add(so, new(big.Rat).SetFrac64(1, big2))
	if !s.IsBig() {
		t.Error("huge-lcm sum must promote")
	}
	checkAgainst(t, &s, so, "1/big1 + 1/big2")

	// MinInt64 edges: the negation/abs corner cases must not wrap.
	m := RatFrac(math.MinInt64, 3)
	mo := new(big.Rat).SetFrac64(math.MinInt64, 3)
	checkAgainst(t, &m, mo, "MinInt64/3")
	m = RatFrac(5, math.MinInt64+1) // negative denominator normalization
	mo.SetFrac64(5, math.MinInt64+1)
	checkAgainst(t, &m, mo, "5/(MinInt64+1)")

	// Promotion is permanent: later small operations stay exact.
	r.AddBig(big.NewRat(1, 2))
	oracle.Add(oracle, big.NewRat(1, 2))
	checkAgainst(t, &r, oracle, "promoted + 1/2")
}

// TestRatRandomizedOracle: randomized AddMul/Add/MulBig programs with
// operands chosen to straddle the promotion boundary, checked step-by-step
// against the big.Rat oracle. Also exercises add commutativity: the same
// multiset of terms accumulated in reverse yields the identical big.Rat.
func TestRatRandomizedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randRat := func() *big.Rat {
		// Mix small fractions with near-overflow magnitudes.
		if rng.Intn(3) == 0 {
			return new(big.Rat).SetFrac64(rng.Int63()-rng.Int63(), rng.Int63n(1<<40)+1)
		}
		return new(big.Rat).SetFrac64(int64(rng.Intn(41))-20, int64(rng.Intn(17))+1)
	}
	for trial := 0; trial < 50; trial++ {
		var r Rat
		oracle := new(big.Rat)
		var terms []*big.Rat
		for step := 0; step < 40; step++ {
			switch rng.Intn(3) {
			case 0:
				p := randRat()
				r.AddBig(p)
				oracle.Add(oracle, p)
				terms = append(terms, new(big.Rat).Set(p))
			case 1:
				a, p := RatFrac(int64(rng.Intn(9))+1, int64(rng.Intn(9))+1), randRat()
				r.AddMul(&a, p)
				m := new(big.Rat).Mul(a.Big(), p)
				oracle.Add(oracle, m)
				terms = append(terms, m)
			case 2:
				p := randRat()
				if p.Sign() == 0 {
					continue
				}
				r = r.MulBig(p)
				oracle.Mul(oracle, p)
				for i, term := range terms {
					terms[i] = term.Mul(term, p)
				}
			}
			checkAgainst(t, &r, oracle, "randomized step")
		}
		// Commutativity/associativity at the boundary: re-accumulate the
		// recorded terms in reverse order.
		var rev Rat
		for i := len(terms) - 1; i >= 0; i-- {
			rev.AddBig(terms[i])
		}
		checkAgainst(t, &rev, oracle, "reverse-order accumulation")
	}
}

// TestRatFracReduces: constructor normalizes sign and reduces, matching
// big.Rat canonical form on materialization.
func TestRatFracReduces(t *testing.T) {
	for _, tc := range []struct{ n, d int64 }{{6, 8}, {-6, 8}, {6, -8}, {-6, -8}, {0, 5}, {7, 7}} {
		r := RatFrac(tc.n, tc.d)
		checkAgainst(t, &r, new(big.Rat).SetFrac64(tc.n, tc.d), "RatFrac")
		if r.IsBig() {
			t.Errorf("RatFrac(%d,%d) should stay small", tc.n, tc.d)
		}
	}
}
