#!/usr/bin/env python3
"""Markdown link check for the repo's documentation surface.

Scans README.md, docs/*.md, and cmd/*/README.md for markdown links and
verifies that every *relative* target resolves to an existing file or
directory (anchors are stripped; absolute http(s) URLs are skipped so the
check never needs the network and cannot flake in CI).

Exit status: 0 when all links resolve, 1 otherwise (one line per broken
link).
"""

import glob
import os
import re
import sys

# [text](target) — target until the first unescaped ')'; tolerate titles
# like (file.md "title").
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def doc_files(root):
    files = []
    for pattern in ("README.md", "docs/*.md", "cmd/*/README.md"):
        files.extend(sorted(glob.glob(os.path.join(root, pattern))))
    return files


def check(root):
    broken = []
    for path in doc_files(root):
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue  # pure-anchor link into the same file
            resolved = os.path.normpath(os.path.join(os.path.dirname(path), target))
            if not os.path.exists(resolved):
                line = text[: match.start()].count("\n") + 1
                broken.append(f"{os.path.relpath(path, root)}:{line}: broken link {target!r}")
    return broken


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    broken = check(root)
    for b in broken:
        print(b, file=sys.stderr)
    if broken:
        sys.exit(1)
    print(f"checked {len(doc_files(root))} markdown files: all relative links resolve")


if __name__ == "__main__":
    main()
