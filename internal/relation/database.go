package relation

import (
	"sort"
	"strings"

	"repro/internal/logic"
)

// Database is a finite set of facts with per-predicate indexes. It
// implements logic's fact-source interface so that homomorphism search can
// run directly against it.
//
// A Database is mutable; Clone produces an independent copy. All read
// methods are safe for concurrent use provided no writer is active.
type Database struct {
	facts  map[string]Fact   // canonical key -> fact
	byPred map[string][]Fact // predicate -> facts (unordered)
	dirty  map[string]bool   // predicates whose byPred slice has tombstones
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{
		facts:  map[string]Fact{},
		byPred: map[string][]Fact{},
		dirty:  map[string]bool{},
	}
}

// FromFacts builds a database containing the given facts (duplicates are
// collapsed, as databases are sets).
func FromFacts(fs ...Fact) *Database {
	d := NewDatabase()
	for _, f := range fs {
		d.Insert(f)
	}
	return d
}

// Size reports the number of facts.
func (d *Database) Size() int { return len(d.facts) }

// Contains reports whether the fact is present.
func (d *Database) Contains(f Fact) bool {
	_, ok := d.facts[f.Key()]
	return ok
}

// ContainsAtom reports whether the ground atom is present as a fact.
func (d *Database) ContainsAtom(a logic.Atom) bool {
	f, err := FactFromAtom(a)
	if err != nil {
		return false
	}
	return d.Contains(f)
}

// Insert adds a fact; inserting an existing fact is a no-op. It reports
// whether the database changed.
func (d *Database) Insert(f Fact) bool {
	k := f.Key()
	if _, ok := d.facts[k]; ok {
		return false
	}
	// Compact first: a tombstoned copy of f may still sit in the index
	// (delete-then-reinsert), and appending blindly would duplicate it.
	d.compact(f.Pred)
	d.facts[k] = f
	d.byPred[f.Pred] = append(d.byPred[f.Pred], f)
	return true
}

// Delete removes a fact; deleting an absent fact is a no-op. It reports
// whether the database changed. Deletion marks the predicate index dirty;
// the index is compacted lazily on the next read.
func (d *Database) Delete(f Fact) bool {
	k := f.Key()
	if _, ok := d.facts[k]; !ok {
		return false
	}
	delete(d.facts, k)
	d.dirty[f.Pred] = true
	return true
}

// compact drops deleted facts from the predicate index.
func (d *Database) compact(pred string) {
	if !d.dirty[pred] {
		return
	}
	live := d.byPred[pred][:0]
	for _, f := range d.byPred[pred] {
		if _, ok := d.facts[f.Key()]; ok {
			live = append(live, f)
		}
	}
	if len(live) == 0 {
		delete(d.byPred, pred)
	} else {
		d.byPred[pred] = live
	}
	delete(d.dirty, pred)
}

// FactsByPred returns the facts with the given predicate. The returned
// slice must not be modified. This method makes *Database a
// logic.FactSource.
func (d *Database) FactsByPred(pred string) []Fact {
	d.compact(pred)
	return d.byPred[pred]
}

// AtomsByPred returns the facts with the given predicate as ground atoms,
// satisfying logic.FactSource.
func (d *Database) AtomsByPred(pred string) []logic.Atom {
	fs := d.FactsByPred(pred)
	out := make([]logic.Atom, len(fs))
	for i, f := range fs {
		out[i] = f.Atom()
	}
	return out
}

// Facts returns all facts in canonical order.
func (d *Database) Facts() []Fact {
	out := make([]Fact, 0, len(d.facts))
	for _, f := range d.facts {
		out = append(out, f)
	}
	SortFacts(out)
	return out
}

// Predicates returns the sorted list of predicates with at least one fact.
func (d *Database) Predicates() []string {
	var out []string
	for p := range d.byPred {
		d.compact(p)
		if len(d.byPred[p]) > 0 {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Dom returns the active domain dom(D): the sorted set of constants
// appearing in the database.
func (d *Database) Dom() []string {
	seen := map[string]bool{}
	for _, f := range d.facts {
		for _, c := range f.Args {
			seen[c] = true
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Clone returns an independent copy of the database. The copy shares the
// (immutable) Fact values but none of the index structures; canonical keys
// are not recomputed.
func (d *Database) Clone() *Database {
	out := &Database{
		facts:  make(map[string]Fact, len(d.facts)),
		byPred: make(map[string][]Fact, len(d.byPred)),
		dirty:  make(map[string]bool, len(d.dirty)),
	}
	for k, f := range d.facts {
		out.facts[k] = f
	}
	for p, fs := range d.byPred {
		out.byPred[p] = append([]Fact(nil), fs...)
	}
	for p := range d.dirty {
		out.dirty[p] = true
	}
	return out
}

// Equal reports whether two databases contain exactly the same facts.
func (d *Database) Equal(o *Database) bool {
	if len(d.facts) != len(o.facts) {
		return false
	}
	for k := range d.facts {
		if _, ok := o.facts[k]; !ok {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every fact of d is in o.
func (d *Database) SubsetOf(o *Database) bool {
	if len(d.facts) > len(o.facts) {
		return false
	}
	for k := range d.facts {
		if _, ok := o.facts[k]; !ok {
			return false
		}
	}
	return true
}

// Key returns a canonical encoding of the database contents, suitable for
// grouping repairs that arise from different repairing sequences.
func (d *Database) Key() string {
	keys := make([]string, 0, len(d.facts))
	for k := range d.facts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// String renders the database as a sorted fact set.
func (d *Database) String() string { return FactsString(d.Facts()) }

// InsertAll inserts every fact of the slice, reporting how many were new.
func (d *Database) InsertAll(fs []Fact) int {
	n := 0
	for _, f := range fs {
		if d.Insert(f) {
			n++
		}
	}
	return n
}

// DeleteAll deletes every fact of the slice, reporting how many were
// present.
func (d *Database) DeleteAll(fs []Fact) int {
	n := 0
	for _, f := range fs {
		if d.Delete(f) {
			n++
		}
	}
	return n
}

// SymmetricDiff returns ∆(d, o) = (d − o) ∪ (o − d) as two slices: the
// facts only in d, and the facts only in o.
func (d *Database) SymmetricDiff(o *Database) (onlyD, onlyO []Fact) {
	for k, f := range d.facts {
		if _, ok := o.facts[k]; !ok {
			onlyD = append(onlyD, f)
		}
	}
	for k, f := range o.facts {
		if _, ok := d.facts[k]; !ok {
			onlyO = append(onlyO, f)
		}
	}
	SortFacts(onlyD)
	SortFacts(onlyO)
	return onlyD, onlyO
}
