package core_test

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/generators"
	"repro/internal/logic"
	"repro/internal/markov"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/repair"
)

func keyEGD() *constraint.Set {
	x, y, z := v("x"), v("y"), v("z")
	return constraint.NewSet(constraint.MustEGD(
		[]logic.Atom{at("R", x, y), at("R", x, z)},
		y, z,
	))
}

// multiComponentInstance: three independent key conflicts plus clean facts.
func multiComponentInstance(t *testing.T) *repair.Instance {
	t.Helper()
	d := relation.FromFacts(
		f("R", "a", "1"), f("R", "a", "2"),
		f("R", "b", "1"), f("R", "b", "2"),
		f("R", "c", "1"), f("R", "c", "2"),
		f("R", "clean1", "x"), f("R", "clean2", "y"),
	)
	return repair.MustInstance(d, keyEGD())
}

// TestFactoredMatchesMonolithic: the factorized repair distribution equals
// the monolithic chain's, repair by repair, under the uniform generator.
func TestFactoredMatchesMonolithic(t *testing.T) {
	inst := multiComponentInstance(t)
	fac, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatalf("ComputeFactored: %v", err)
	}
	if len(fac.Components) != 3 {
		t.Fatalf("components = %d, want 3", len(fac.Components))
	}
	if fac.Untouched.Size() != 2 {
		t.Errorf("untouched = %d facts, want 2", fac.Untouched.Size())
	}
	if fac.NumRepairs().Int64() != 27 {
		t.Errorf("NumRepairs = %s, want 27 (3 per component)", fac.NumRepairs())
	}

	mono, err := core.Compute(inst, generators.Uniform{}, markov.ExploreOptions{MaxStates: 2_000_000})
	if err != nil {
		t.Fatalf("monolithic Compute: %v", err)
	}
	if len(mono.Repairs) != 27 {
		t.Fatalf("monolithic repairs = %d, want 27", len(mono.Repairs))
	}

	// Compare every repair probability through the factored CP of the
	// boolean query "this repair's facts" — simpler: per-fact marginals and
	// a full-tuple query.
	x, y := v("x"), v("y")
	q := fo.MustQuery("All", []logic.Term{x, y}, fo.Atom{A: at("R", x, y)})
	for _, fact := range inst.Initial().Facts() {
		got := fac.FactProbability(fact)
		want := mono.CP(q, fact.ArgNames()[:2])
		if got.Cmp(want) != 0 {
			t.Errorf("fact %s: factored %s vs monolithic %s", fact, got.RatString(), want.RatString())
		}
	}

	// And exact CP through enumeration of the product distribution.
	cp, err := fac.CP(q, []string{"a", "1"})
	if err != nil {
		t.Fatalf("factored CP: %v", err)
	}
	if want := mono.CP(q, []string{"a", "1"}); cp.Cmp(want) != 0 {
		t.Errorf("CP(a,1): factored %s vs monolithic %s", cp.RatString(), want.RatString())
	}
}

// TestFactoredTrustGenerator: factorization is exact for the (local) trust
// generator with asymmetric levels.
func TestFactoredTrustGenerator(t *testing.T) {
	d := relation.FromFacts(
		f("R", "a", "1"), f("R", "a", "2"),
		f("R", "b", "1"), f("R", "b", "2"),
	)
	inst := repair.MustInstance(d, keyEGD())
	gen := generators.NewTrust(big.NewRat(1, 2))
	if err := gen.Set(f("R", "a", "1"), big.NewRat(9, 10)); err != nil {
		t.Fatal(err)
	}
	if err := gen.Set(f("R", "a", "2"), big.NewRat(1, 10)); err != nil {
		t.Fatal(err)
	}

	fac, err := core.ComputeFactored(inst, gen, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mono, err := core.Compute(inst, gen, markov.ExploreOptions{MaxStates: 100000})
	if err != nil {
		t.Fatal(err)
	}
	x, y := v("x"), v("y")
	q := fo.MustQuery("All", []logic.Term{x, y}, fo.Atom{A: at("R", x, y)})
	for _, fact := range inst.Initial().Facts() {
		got := fac.FactProbability(fact)
		want := mono.CP(q, fact.ArgNames()[:2])
		if got.Cmp(want) != 0 {
			t.Errorf("fact %s: factored %s vs monolithic %s", fact, got.RatString(), want.RatString())
		}
	}
}

// TestFactoredRejectsTGDs: factorization is only sound for deletion-only
// (EGD/DC) settings.
func TestFactoredRejectsTGDs(t *testing.T) {
	d := relation.FromFacts(f("R", "a"))
	tgd := constraint.MustTGD([]logic.Atom{at("R", v("x"))}, []logic.Atom{at("T", v("x"))})
	inst := repair.MustInstance(d, constraint.NewSet(tgd))
	if _, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{}); err == nil {
		t.Error("TGD instance must be rejected")
	}
}

// TestFactoredSampleRepair: sampled repairs are consistent supersets of the
// untouched core, and the empirical fact marginal converges to the exact
// one.
func TestFactoredSampleRepair(t *testing.T) {
	inst := multiComponentInstance(t)
	fac, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	target := f("R", "a", "1")
	exact := prob.Float(fac.FactProbability(target))
	hits, n := 0, 3000
	for i := 0; i < n; i++ {
		db := fac.SampleRepair(rng)
		if !inst.Sigma().Satisfied(db) {
			t.Fatal("sampled repair is inconsistent")
		}
		if !fac.Untouched.SubsetOf(db) {
			t.Fatal("sampled repair lost untouched facts")
		}
		if db.Contains(target) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if diff := got - exact; diff > 0.03 || diff < -0.03 {
		t.Errorf("empirical marginal %.3f vs exact %.3f", got, exact)
	}
}

// TestFactoredEstimateCP: the factored sampler honors the additive bound on
// a larger instance (30 components — monolithic exact would need 3^30
// sequences).
func TestFactoredEstimateCP(t *testing.T) {
	d := relation.NewDatabase()
	for i := 0; i < 30; i++ {
		k := string(rune('a' + i%26))
		d.Insert(f("R", k+"x", "1"))
		d.Insert(f("R", k+"x", "2"))
	}
	inst := repair.MustInstance(d, keyEGD())
	fac, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fac.Components) != 26 && len(fac.Components) != 30 {
		// 26 letters: some keys repeat; just require >1 component.
		if len(fac.Components) < 2 {
			t.Fatalf("components = %d", len(fac.Components))
		}
	}
	x, y := v("x"), v("y")
	q := fo.MustQuery("All", []logic.Term{x, y}, fo.Atom{A: at("R", x, y)})
	target := fac.Components[0].Facts[0]
	exact := prob.Float(fac.FactProbability(target))
	got, err := fac.EstimateCP(q, target.ArgNames()[:2], 0.1, 0.1, 77)
	if err != nil {
		t.Fatal(err)
	}
	if diff := got - exact; diff > 0.1 || diff < -0.1 {
		t.Errorf("estimate %.3f vs exact %.3f beyond ε", got, exact)
	}
}

// TestFactoredCPBudget: over-budget enumeration errors out cleanly.
func TestFactoredCPBudget(t *testing.T) {
	d := relation.NewDatabase()
	for i := 0; i < 26; i++ {
		k := string(rune('a' + i))
		d.Insert(f("R", k, "1"))
		d.Insert(f("R", k, "2"))
	}
	inst := repair.MustInstance(d, keyEGD())
	fac, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 3^26 > 2^20: enumeration must refuse.
	x, y := v("x"), v("y")
	q := fo.MustQuery("All", []logic.Term{x, y}, fo.Atom{A: at("R", x, y)})
	if _, err := fac.CP(q, []string{"a", "1"}); err == nil {
		t.Error("expected the enumeration budget to trigger")
	}
	// But fact marginals remain exact and cheap.
	if p := fac.FactProbability(f("R", "a", "1")); !prob.InUnit(p) || p.Sign() == 0 {
		t.Errorf("FactProbability = %s", p.RatString())
	}
}

// TestFactoredPreferenceNotLocal: the preference generator lacks the
// LocalWeights marker, and the type system enforces it — documented here by
// asserting the interface is not satisfied.
func TestFactoredPreferenceNotLocal(t *testing.T) {
	var g interface{} = generators.Preference{}
	if _, ok := g.(core.LocalGenerator); ok {
		t.Error("Preference must NOT satisfy LocalGenerator: its weights depend on the whole database")
	}
	var u interface{} = generators.Uniform{}
	if _, ok := u.(core.LocalGenerator); !ok {
		t.Error("Uniform must satisfy LocalGenerator")
	}
}
