// Package sat is the repo's third exact certain-answer engine: it
// decides "is tuple t an answer in every repair?" by propositional
// satisfiability instead of chain exploration, following the CAvSAT
// reduction (Dixit & Kolaitis) adapted to the operational repair space
// of the source paper.
//
// # Encoding
//
// For a database with key-shaped EGDs, the absorbing states of the
// operational chain are exactly the subinstances keeping at most one
// fact of every violating key group (the chain may justifiedly delete
// every fact of a group — the introduction's "trust neither source"
// resolution — so this is at-MOST-one, not exactly-one) and all
// conflict-free facts. Every such subinstance is reached with positive
// probability by the uniform, uniform-deletions, and (full-support)
// trust generators, and certain answers are semantics-independent: a
// tuple is certain iff it holds in all of them, under walk-induced and
// sequence-uniform semantics alike.
//
// The Encoder assigns one boolean per conflicted fact ("the repair keeps
// it") and encodes each group's cardinality constraint — pairwise for
// small groups, the sequential ladder encoding above that
// (CNF.AtMostOne). A conjunctive query is compiled per candidate tuple:
// each homomorphism into the FULL database whose projection is the tuple
// contributes one witness clause, the disjunction of the negated
// keep-variables of its conflicted facts (witnesses are found once,
// globally — repairs are subsets of the database and CQs are monotone,
// so no repair has a witness the database lacks). The conjunction
//
//	group constraints ∧ all witness clauses of t
//
// is satisfiable iff some repair breaks every witness, i.e. iff t is NOT
// certain. A witness with no conflicted facts survives every repair and
// short-circuits to "certain" without touching the solver. The sequence
// space of the chain never enters the encoding — instances whose DAG
// exploration would need 2^63+ sequences solve in microseconds when
// their logical structure is shallow.
//
// Options.MaximalRepairs switches the cardinality constraint to
// exactly-one, quantifying over the classical subset-maximal repairs
// instead (the space CAvSAT itself targets); the certain set can only
// grow, and the equivalence suites pin the default against the
// tree/DAG/factored engines.
//
// # Solver
//
// Solver is a small deterministic CDCL solver (two-watched-literal
// propagation, first-UIP clause learning, activity-driven branching with
// phase saving, geometric restarts) — pure Go, no subprocess. The
// false-first default polarity means the all-false model of a pure
// at-most-one base is found in one descent. CNF.WriteDIMACS /
// Encoder.WriteTupleDIMACS export any instance for external
// cross-checks: SAT ⇔ not certain.
//
// core.ComputeCertainSAT is the engine's front door; cmd/ocqa surfaces
// it as -mode sat.
package sat
