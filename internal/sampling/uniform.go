package sampling

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/fo"
	"repro/internal/intern"
	"repro/internal/markov"
	"repro/internal/prob"
	"repro/internal/repair"
)

// This file is the approximate path of the sequence-uniform semantics
// (markov.SequenceUniform): estimating, for each tuple, the fraction of
// complete repairing sequences whose (successful) result answers it. Two
// regimes:
//
//   - Collapsible chains: a markov.SequenceDAG is built once and every
//     walk steps into children with probability proportional to their
//     downstream completion counts, which draws complete sequences exactly
//     uniformly. The draws are i.i.d. Bernoulli per tuple, so the
//     Hoeffding (ε,δ) guarantee of Theorem 9 applies unchanged.
//
//   - Everything else (TGDs, history-dependent generators): self-
//     normalized importance sampling. The proposal walks the chain's
//     support choosing uniformly among the support edges at every state —
//     the uniform-deletions walk, generalized to whatever the support is —
//     so a complete sequence s is proposed with probability Π 1/kᵢ, and
//     the importance weight w(s) = Π kᵢ (the branching factors along s)
//     is proportional to uniform(s)/proposal(s). Estimates are ratios of
//     weighted sums; they converge but carry no finite-sample (ε,δ)
//     guarantee (Run.Weighted = true, Run.ESS reports the Kish effective
//     sample size).
//
// Determinism: walk i's RNG derives from (Seed, i) exactly as in the
// walk-induced estimator, per-walk results are recorded in an indexed
// slice, and the weighted merge runs over that slice in index order — so
// the full Run is bit-identical for every Workers value, floating-point
// summation order included.

// seqDraw is the record of one uniform-mode walk, merged sequentially
// after all workers finish.
type seqDraw struct {
	logW    float64
	success bool
	keys    []string   // packed answer-tuple keys (successful walks only)
	tuples  [][]string // materialized names, aligned with keys
	err     error
}

// runUniform performs n uniform-mode walks and assembles the weighted run.
func (e *Estimator) runUniform(q *fo.Query, n int) (*Run, error) {
	workers := e.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	var sdag *markov.SequenceDAG
	if markov.Collapsible(e.Inst, e.Gen) {
		var err error
		sdag, err = markov.BuildSequenceDAG(e.Inst, e.Gen, markov.ExploreOptions{Workers: e.Workers})
		if err != nil {
			return nil, err
		}
	}

	draws := make([]seqDraw, n)
	var wg sync.WaitGroup
	start := 0
	for w := 0; w < workers; w++ {
		share := n / workers
		if w < n%workers {
			share++
		}
		wg.Add(1)
		go func(start, share int) {
			defer wg.Done()
			src := &prob.SplitMix{}
			rng := rand.New(src)
			var packBuf [64]byte
			for i := start; i < start+share; i++ {
				src.ReseedAt(e.Seed, i)
				d := &draws[i]
				var s *repair.State
				if sdag != nil {
					s, d.err = sdag.Sample(rng)
				} else {
					s, d.logW, d.err = walkUniformSupport(e.Inst, e.Gen, rng, e.MaxSteps)
				}
				if d.err != nil {
					return
				}
				if !s.IsSuccessful() {
					continue
				}
				d.success = true
				q.ForEachAnswerSyms(s.Result(), func(tuple []intern.Sym) {
					d.keys = append(d.keys, string(intern.PackSyms(packBuf[:0], tuple)))
					d.tuples = append(d.tuples, intern.Names(tuple))
				})
			}
		}(start, share)
		start += share
	}
	wg.Wait()

	// Sequential merge in walk-index order. Weights are exponentiated
	// relative to the maximum log-weight so that deep SNIS walks (whose raw
	// weights are products of branching factors) cannot overflow float64.
	maxLog := math.Inf(-1)
	for i := range draws {
		if draws[i].err != nil {
			return nil, draws[i].err
		}
		if draws[i].logW > maxLog {
			maxLog = draws[i].logW
		}
	}
	type weightCell struct {
		tuple []string
		w     float64
		count int
	}
	run := &Run{N: n, Mode: markov.SequenceUniform, Weighted: sdag == nil}
	if sdag != nil {
		run.TotalSequences = sdag.Total()
	}
	cells := map[string]*weightCell{}
	var order []string // first-seen order; re-sorted lexicographically below
	sumAll, sumSuccess, sumSq := 0.0, 0.0, 0.0
	for i := range draws {
		d := &draws[i]
		w := math.Exp(d.logW - maxLog)
		sumAll += w
		sumSq += w * w
		if !d.success {
			run.FailingWalks++
			continue
		}
		run.SuccessfulWalks++
		sumSuccess += w
		for j, k := range d.keys {
			c := cells[k]
			if c == nil {
				c = &weightCell{tuple: d.tuples[j]}
				cells[k] = c
				order = append(order, k)
			}
			c.w += w
			c.count++
		}
	}
	run.ESS = sumAll * sumAll / sumSq

	for _, k := range order {
		c := cells[k]
		est := TupleEstimate{Tuple: c.tuple, Count: c.count}
		if sumAll > 0 {
			est.P = c.w / sumAll
		}
		if sumSuccess > 0 {
			est.Conditional = c.w / sumSuccess
		}
		run.Estimates = append(run.Estimates, est)
	}
	sortEstimates(run.Estimates)
	return run, nil
}

// walkUniformSupport performs one walk that, at every state, steps into a
// uniformly chosen *support* edge of the generator (an extension with
// positive probability) and accumulates the log importance weight
// Σ log kᵢ, where kᵢ is the support size at step i. Under this proposal a
// complete sequence s has probability exp(−logW), so exp(logW) ∝
// uniform(s)/proposal(s) — exactly the SNIS weight runUniform needs.
// Generators exposing integer weights resolve the support without big.Rat
// arithmetic; others go through markov.Step.
func walkUniformSupport(inst *repair.Instance, g markov.Generator, rng *rand.Rand, maxSteps int) (*repair.State, float64, error) {
	iw, fast := g.(markov.IntWeighter)
	s := inst.Root()
	logW := 0.0
	steps := 0
	var support []int
	for {
		if fast {
			exts := s.Extensions()
			if len(exts) == 0 {
				return s, logW, nil
			}
			ws, ok, err := iw.IntWeights(s, exts)
			if err != nil {
				return nil, 0, fmt.Errorf("generator %s at state %q: %w", g.Name(), s, err)
			}
			if ok {
				if maxSteps > 0 && steps >= maxSteps {
					return nil, 0, ErrWalkBudget
				}
				support = support[:0]
				for i, w := range ws {
					if w > 0 {
						support = append(support, i)
					}
				}
				if len(support) == 0 {
					return nil, 0, fmt.Errorf("generator %s at state %q: empty support", g.Name(), s)
				}
				logW += math.Log(float64(len(support)))
				s = s.ChildInPlace(exts[support[rng.Intn(len(support))]])
				steps++
				continue
			}
			fast = false
		}
		edges, err := markov.Step(g, s)
		if err != nil {
			return nil, 0, err
		}
		if len(edges) == 0 {
			return s, logW, nil
		}
		if maxSteps > 0 && steps >= maxSteps {
			return nil, 0, ErrWalkBudget
		}
		logW += math.Log(float64(len(edges)))
		s = s.ChildInPlace(edges[rng.Intn(len(edges))].Op)
		steps++
	}
}
