package ops

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/logic"
	"repro/internal/relation"
)

func v(n string) logic.Term                    { return logic.Var(n) }
func at(p string, ts ...logic.Term) logic.Atom { return logic.NewAtom(p, ts...) }

// example1 is the setting of Example 1: D = {R(a,b), R(a,c), T(a,b)},
// σ = R(x,y) → ∃z S(x,y,z), η = R(x,y), R(x,z) → y = z.
func example1(t *testing.T) (*relation.Database, *constraint.Set, *relation.Base) {
	t.Helper()
	d := relation.FromFacts(f("R", "a", "b"), f("R", "a", "c"), f("T", "a", "b"))
	sigma := constraint.MustTGD(
		[]logic.Atom{at("R", v("x"), v("y"))},
		[]logic.Atom{at("S", v("x"), v("y"), v("z"))},
	)
	eta := constraint.MustEGD(
		[]logic.Atom{at("R", v("x"), v("y")), at("R", v("x"), v("z"))},
		v("y"), v("z"),
	)
	set := constraint.NewSet(sigma, eta)
	base, err := set.Base(d)
	if err != nil {
		t.Fatal(err)
	}
	return d, set, base
}

// TestExample1FixingButUnjustified: op1 = +{S(a,b,c), S(a,a,a)} is fixing
// but not justified (S(a,a,a) is gratuitous); op2 = -{R(a,b), T(a,b)} is
// fixing but not justified (T(a,b) contributes to no violation).
func TestExample1FixingButUnjustified(t *testing.T) {
	d, set, _ := example1(t)

	op1 := Insert(f("S", "a", "b", "c"), f("S", "a", "a", "a"))
	if !IsFixing(op1, d, set) {
		t.Error("op1 must be fixing")
	}
	if IsJustified(op1, d, set) {
		t.Error("op1 must not be justified (adds the unnecessary S(a,a,a))")
	}

	op2 := Delete(f("R", "a", "b"), f("T", "a", "b"))
	if !IsFixing(op2, d, set) {
		t.Error("op2 must be fixing")
	}
	if IsJustified(op2, d, set) {
		t.Error("op2 must not be justified (T(a,b) is in no violation)")
	}
}

// TestExample1JustifiedOps: the justified operations called out in
// Example 1 are recognized, and the minimal insertion +S(a,b,c) is
// justified.
func TestExample1JustifiedOps(t *testing.T) {
	d, set, _ := example1(t)
	for _, op := range []Op{
		Insert(f("S", "a", "b", "c")),
		Delete(f("R", "a", "b")),
		Delete(f("R", "a", "c")),
		Delete(f("R", "a", "b"), f("R", "a", "c")),
	} {
		if !IsJustified(op, d, set) {
			t.Errorf("%s must be justified", op)
		}
	}
	if IsJustified(Delete(f("T", "a", "b")), d, set) {
		t.Error("-T(a,b) must not be justified")
	}
}

// TestJustifiedOpsEnumeration cross-checks the efficient enumeration
// against the direct Definition 3 test on Example 1.
func TestJustifiedOpsEnumeration(t *testing.T) {
	d, set, base := example1(t)
	vs := constraint.FindViolations(d, set)
	enumerated := JustifiedOps(d, set, vs, base)

	if len(enumerated) == 0 {
		t.Fatal("no justified operations found")
	}
	seen := map[string]bool{}
	for _, op := range enumerated {
		seen[op.Key()] = true
		if !IsJustified(op, d, set) {
			t.Errorf("enumerated operation %s fails the direct Definition 3 test", op)
		}
		if op.IsInsert() && !op.InBase(base) {
			t.Errorf("insertion %s leaves the base", op)
		}
	}

	// Expected members.
	for _, op := range []Op{
		Delete(f("R", "a", "b")),
		Delete(f("R", "a", "c")),
		Delete(f("R", "a", "b"), f("R", "a", "c")),
		Insert(f("S", "a", "b", "a")), // any z from the base domain {a,b,c}
		Insert(f("S", "a", "b", "b")),
		Insert(f("S", "a", "b", "c")),
		Insert(f("S", "a", "c", "a")),
	} {
		if !seen[op.Key()] {
			t.Errorf("missing justified operation %s", op)
		}
	}
	// Non-members.
	for _, op := range []Op{
		Delete(f("T", "a", "b")),
		Insert(f("S", "a", "a", "a")),
		Delete(f("R", "a", "b"), f("T", "a", "b")),
	} {
		if seen[op.Key()] {
			t.Errorf("operation %s must not be enumerated", op)
		}
	}
}

// TestJustifiedOpsCountExample1: deletions: 3 (from the two EGD violations,
// which share the pair {R(a,b), R(a,c)}) plus the two σ-violations' single
// deletions (already among them); insertions: 3 choices of z for each of
// the two σ violations = 6.
func TestJustifiedOpsCountExample1(t *testing.T) {
	d, set, base := example1(t)
	vs := constraint.FindViolations(d, set)
	enumerated := JustifiedOps(d, set, vs, base)
	dels, ins := 0, 0
	for _, op := range enumerated {
		if op.IsDelete() {
			dels++
		} else {
			ins++
		}
	}
	if dels != 3 {
		t.Errorf("justified deletions = %d, want 3", dels)
	}
	if ins != 6 {
		t.Errorf("justified insertions = %d, want 6 (2 violations × 3 base constants)", ins)
	}
}

// TestMultiHeadTGDAdditions: a TGD with a two-atom head requires inserting
// both atoms at once; single-atom insertions are not justified
// (Proposition 1 remark on multi-head TGDs).
func TestMultiHeadTGDAdditions(t *testing.T) {
	d := relation.FromFacts(f("R", "a"))
	tgd := constraint.MustTGD(
		[]logic.Atom{at("R", v("x"))},
		[]logic.Atom{at("S", v("x"), v("z")), at("U", v("z"))},
	)
	set := constraint.NewSet(tgd)
	base, err := set.Base(d)
	if err != nil {
		t.Fatal(err)
	}
	vs := constraint.FindViolations(d, set)
	enumerated := JustifiedOps(d, set, vs, base)
	for _, op := range enumerated {
		if op.IsInsert() && op.Size() != 2 {
			t.Errorf("insertion %s must add both head atoms", op)
		}
	}
	// With dom = {a}: +{S(a,a), U(a)} and the deletion -R(a).
	if len(enumerated) != 2 {
		t.Errorf("enumerated %d operations, want 2: %v", len(enumerated), enumerated)
	}
}

// TestAdditionMinimality: when one head atom already exists, the justified
// insertion adds only the missing one.
func TestAdditionMinimality(t *testing.T) {
	d := relation.FromFacts(f("R", "a"), f("U", "a"))
	tgd := constraint.MustTGD(
		[]logic.Atom{at("R", v("x"))},
		[]logic.Atom{at("S", v("x"), v("z")), at("U", v("z"))},
	)
	set := constraint.NewSet(tgd)
	base, err := set.Base(d)
	if err != nil {
		t.Fatal(err)
	}
	vs := constraint.FindViolations(d, set)
	enumerated := JustifiedOps(d, set, vs, base)

	// Candidates per extension z→a: {S(a,a)} (U(a) exists); the singleton
	// is minimal, so no two-atom insertion with z = a may appear.
	wantKey := Insert(f("S", "a", "a")).Key()
	foundMinimal := false
	for _, op := range enumerated {
		if op.Key() == wantKey {
			foundMinimal = true
		}
		if op.IsInsert() {
			for _, fact := range op.Facts() {
				if fact.Equal(f("U", "a")) {
					t.Errorf("insertion %s re-adds existing U(a)", op)
				}
			}
		}
	}
	if !foundMinimal {
		t.Error("minimal insertion +S(a,a) missing")
	}
}

// TestDCJustifiedOpsAreDeletions: DC violations admit only deletions.
func TestDCJustifiedOpsAreDeletions(t *testing.T) {
	d := relation.FromFacts(f("Pref", "a", "b"), f("Pref", "b", "a"))
	dc := constraint.MustDC([]logic.Atom{at("Pref", v("x"), v("y")), at("Pref", v("y"), v("x"))})
	set := constraint.NewSet(dc)
	base, err := set.Base(d)
	if err != nil {
		t.Fatal(err)
	}
	vs := constraint.FindViolations(d, set)
	enumerated := JustifiedOps(d, set, vs, base)
	if len(enumerated) != 3 {
		t.Fatalf("enumerated %d ops, want 3 (two singles + the pair)", len(enumerated))
	}
	for _, op := range enumerated {
		if !op.IsDelete() {
			t.Errorf("op %s must be a deletion", op)
		}
	}
}

// TestIsFixingOnConsistent: nothing is fixing on a consistent database.
func TestIsFixingOnConsistent(t *testing.T) {
	d := relation.FromFacts(f("R", "a", "b"))
	eta := constraint.MustEGD(
		[]logic.Atom{at("R", v("x"), v("y")), at("R", v("x"), v("z"))},
		v("y"), v("z"),
	)
	set := constraint.NewSet(eta)
	if IsFixing(Delete(f("R", "a", "b")), d, set) {
		t.Error("no violations to fix")
	}
	if IsJustified(Delete(f("R", "a", "b")), d, set) {
		t.Error("nothing is justified on a consistent database")
	}
}
