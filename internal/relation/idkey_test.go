package relation

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"slices"
	"testing"
)

// TestIDKeyMatchesSortedFactIDs: the packed key is exactly the database's
// fact ids, sorted ascending, 4 bytes big-endian each — so byte-wise
// lexicographic order on keys equals numeric order on id sequences.
func TestIDKeyMatchesSortedFactIDs(t *testing.T) {
	d := NewDatabase()
	for i := 0; i < 17; i++ {
		d.Insert(NewFact("R", fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i%3)))
	}
	var want []uint32
	for _, f := range d.Facts() {
		want = append(want, f.ID())
	}
	slices.Sort(want)

	key := d.IDKey()
	if len(key) != 4*len(want) {
		t.Fatalf("key length = %d, want %d", len(key), 4*len(want))
	}
	for i, id := range want {
		if got := binary.BigEndian.Uint32([]byte(key[4*i : 4*i+4])); got != id {
			t.Errorf("key[%d] = %d, want %d", i, got, id)
		}
	}

	got := d.AppendFactIDs(nil)
	if !slices.Equal(got, want) {
		t.Errorf("AppendFactIDs = %v, want %v", got, want)
	}
}

// TestIDKeyGroupingMatchesKey is the property suite for the two-tier key
// scheme: across randomized Insert/Delete/Clone/Seal interleavings, two
// databases have equal IDKey iff they have equal legacy Key — the binary
// merge tier and the string presentation tier group identically.
func TestIDKeyGroupingMatchesKey(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// A small closed fact universe so random trajectories collide often.
	var universe []Fact
	for i := 0; i < 12; i++ {
		universe = append(universe, NewFact("S", fmt.Sprintf("c%d", i/4), fmt.Sprintf("d%d", i%4)))
	}

	var dbs []*Database
	seed := NewDatabase()
	for _, f := range universe[:6] {
		seed.Insert(f)
	}
	dbs = append(dbs, seed)
	for step := 0; step < 400; step++ {
		d := dbs[rng.Intn(len(dbs))]
		switch rng.Intn(5) {
		case 0:
			dbs = append(dbs, d.Clone())
		case 1:
			d.Seal()
		case 2, 3:
			d.Insert(universe[rng.Intn(len(universe))])
		case 4:
			d.Delete(universe[rng.Intn(len(universe))])
		}
	}

	for i, a := range dbs {
		ik, sk := a.IDKey(), a.Key()
		for _, b := range dbs[i+1:] {
			sameID := ik == b.IDKey()
			sameKey := sk == b.Key()
			if sameID != sameKey {
				t.Fatalf("grouping disagrees: IDKey equal=%v, Key equal=%v for %s vs %s",
					sameID, sameKey, a, b)
			}
		}
	}
}

// TestAppendFactIDsMergesDeltas: the delta weave (snapshot minus removed
// plus added) equals a from-scratch enumeration at every step of a mixed
// trajectory, including after sealing.
func TestAppendFactIDsMergesDeltas(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var universe []Fact
	for i := 0; i < 20; i++ {
		universe = append(universe, NewFact("T", fmt.Sprintf("x%d", i)))
	}
	d := NewDatabase()
	check := func() {
		t.Helper()
		var want []uint32
		for _, f := range d.Facts() {
			want = append(want, f.ID())
		}
		slices.Sort(want)
		if got := d.AppendFactIDs(make([]uint32, 0, d.Size())); !slices.Equal(got, want) {
			t.Fatalf("AppendFactIDs = %v, want %v (db %s)", got, want, d)
		}
	}
	for step := 0; step < 300; step++ {
		f := universe[rng.Intn(len(universe))]
		switch rng.Intn(4) {
		case 0:
			d.Delete(f)
		case 1:
			if rng.Intn(10) == 0 {
				d.Seal()
			}
			d.Insert(f)
		default:
			d.Insert(f)
		}
		check()
	}
}
