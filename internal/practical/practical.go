package practical

import (
	"fmt"
	"math/rand"
	"slices"
	"sync"

	"repro/internal/fo"
	"repro/internal/intern"
	"repro/internal/plan"
	"repro/internal/prob"
	"repro/internal/relation"
)

// Policy controls how a violating key group is repaired in one round.
type Policy struct {
	// DropAll is the probability that a violating group keeps no tuple at
	// all (the introduction's "trust neither source" case). Zero reproduces
	// the classical keep-exactly-one scheme.
	DropAll float64
}

// KeyGroups returns the groups of facts of pred with the given arity that
// agree on the key argument positions and have more than one member — the
// violating groups the per-round repair scheme resolves. It is
// relation.KeyViolatingGroups (which also feeds the SAT certain-answer
// compiler), kept here under its historical name.
func KeyGroups(db *relation.Database, pred intern.Sym, arity int, keyPos []int) [][]relation.Fact {
	return relation.KeyViolatingGroups(db, pred, arity, keyPos)
}

// SampleRdel draws one R_del from precomputed violating groups: for every
// group, with probability pol.DropAll all members are deleted; otherwise
// one member is kept uniformly at random and the rest are deleted.
func SampleRdel(rng *rand.Rand, groups [][]relation.Fact, pol Policy) []relation.Fact {
	return sampleRdelInto(rng, groups, pol, nil)
}

func sampleRdelInto(rng *rand.Rand, groups [][]relation.Fact, pol Policy, dst []relation.Fact) []relation.Fact {
	for _, g := range groups {
		keep := -1
		if pol.DropAll <= 0 || rng.Float64() >= pol.DropAll {
			keep = rng.Intn(len(g))
		}
		for i, f := range g {
			if i != keep {
				dst = append(dst, f)
			}
		}
	}
	return dst
}

// TupleFreq is an output tuple with its frequency over the n rounds.
type TupleFreq struct {
	Row   []string
	Count int
	P     float64 // Count / n — the approximation of CP
}

// Result is the outcome of a practical-scheme run.
type Result struct {
	N          int
	Eps, Delta float64
	Tuples     []TupleFreq
}

// Lookup returns the frequency entry for a row (zero entry when absent).
func (r *Result) Lookup(row []string) TupleFreq {
	for _, t := range r.Tuples {
		if slices.Equal(t.Row, row) {
			return t
		}
	}
	return TupleFreq{Row: row}
}

// Runner executes the scheme against a catalog.
type Runner struct {
	Catalog *plan.Catalog
	Policy  Policy
	// Seed makes runs reproducible: every round's RNG is derived from
	// (Seed, round index), so a run is bit-identical for a fixed seed no
	// matter how the rounds are scheduled.
	Seed int64
	// Workers is the number of concurrent round evaluators (≤ 1 means
	// sequential). Round RNGs are per-round and counts are merged, so the
	// result is bit-identical for every worker count.
	Workers int
}

// Run executes n rounds of the scheme for the query plan and returns the
// per-tuple frequencies. Output rows are deduplicated within each round
// (the scheme counts whether a tuple is in the round's answer, not how
// many times). Conjunctive plans are compiled to indexed CQ evaluation;
// everything else evaluates through the plan algebra.
func (r *Runner) Run(p plan.Plan, n int) (*Result, error) {
	if q, ok := plan.AsQuery(p, r.Catalog); ok {
		return r.runRounds(r.queryEval(q), n)
	}
	return r.runRounds(r.planEval(p), n)
}

// RunQuery executes the scheme for a first-order query on the catalog's
// database — the unified-substrate path with no plan at all: each round
// evaluates q over the repaired database (indexed CQ search when q is
// conjunctive).
func (r *Runner) RunQuery(q *fo.Query, n int) (*Result, error) {
	return r.runRounds(r.queryEval(q), n)
}

// RunWithGuarantee computes n from (ε, δ) via the Hoeffding bound and runs
// the scheme; for ε = δ = 0.1 this is the paper's n = 150.
func (r *Runner) RunWithGuarantee(p plan.Plan, eps, delta float64) (*Result, error) {
	n, err := prob.HoeffdingSamples(eps, delta)
	if err != nil {
		return nil, err
	}
	res, rerr := r.Run(p, n)
	if rerr != nil {
		return nil, rerr
	}
	res.Eps, res.Delta = eps, delta
	return res, nil
}

// RunQueryWithGuarantee is RunWithGuarantee for a first-order query.
func (r *Runner) RunQueryWithGuarantee(q *fo.Query, eps, delta float64) (*Result, error) {
	n, err := prob.HoeffdingSamples(eps, delta)
	if err != nil {
		return nil, err
	}
	res, rerr := r.RunQuery(q, n)
	if rerr != nil {
		return nil, rerr
	}
	res.Eps, res.Delta = eps, delta
	return res, nil
}

// roundEval evaluates one round's repaired database, calling emit once per
// distinct answer tuple; the tuple slice may be reused between calls.
type roundEval func(db *relation.Database, emit func(tuple []intern.Sym)) error

func (r *Runner) queryEval(q *fo.Query) roundEval {
	return func(db *relation.Database, emit func(tuple []intern.Sym)) error {
		q.ForEachAnswerSyms(db, emit)
		return nil
	}
}

func (r *Runner) planEval(p plan.Plan) roundEval {
	return func(db *relation.Database, emit func(tuple []intern.Sym)) error {
		out, err := p.Exec(r.Catalog.With(db))
		if err != nil {
			return err
		}
		seen := make(map[string]bool, len(out.Rows))
		var buf [64]byte
		for _, row := range out.Rows {
			k := string(intern.PackSyms(buf[:0], row))
			if !seen[k] {
				seen[k] = true
				emit(row)
			}
		}
		return nil
	}
}

// tallyCell accumulates one tuple's observations across rounds.
type tallyCell struct {
	count int
	row   []string
}

type roundTally struct {
	cells map[string]*tallyCell
	err   error
}

func (r *Runner) runRounds(eval roundEval, n int) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("practical: need at least one round, got %d", n)
	}
	base := r.Catalog.DB()
	// Seal so every round clones an indexed snapshot in O(1) and the group
	// enumeration below reads index buckets. The runner is the only writer
	// during a run by contract.
	base.Seal()
	// Violating groups per keyed table (in KeyedTables order); groups are
	// immutable across rounds, so they are enumerated exactly once per run
	// instead of once per round.
	var tables [][][]relation.Fact
	for _, table := range r.Catalog.KeyedTables() {
		t, err := r.Catalog.Table(table)
		if err != nil {
			return nil, err
		}
		tables = append(tables, KeyGroups(base, t.Pred, len(t.Cols), r.Catalog.Key(table)))
	}

	workers := r.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	tallies := make([]roundTally, workers)
	var wg sync.WaitGroup
	start := 0
	for w := 0; w < workers; w++ {
		share := n / workers
		if w < n%workers {
			share++
		}
		wg.Add(1)
		go func(w, start, share int) {
			defer wg.Done()
			t := &tallies[w]
			t.cells = map[string]*tallyCell{}
			src := &prob.SplitMix{}
			rng := rand.New(src)
			var dels []relation.Fact
			var packBuf [64]byte
			emit := func(tuple []intern.Sym) {
				// Key by packed symbols; names materialize once per
				// distinct tuple, never per round.
				k := string(intern.PackSyms(packBuf[:0], tuple))
				c := t.cells[k]
				if c == nil {
					c = &tallyCell{row: intern.Names(tuple)}
					t.cells[k] = c
				}
				c.count++
			}
			for round := start; round < start+share; round++ {
				// Each round's randomness is a pure function of (Seed,
				// round index), never of the worker that runs the round:
				// partitioning the same n rounds across any number of
				// workers draws the same n repairs, and merged tallies are
				// sums, so runs are bit-identical for every Workers value.
				src.ReseedAt(r.Seed, round)
				dels = dels[:0]
				for _, groups := range tables {
					dels = sampleRdelInto(rng, groups, r.Policy, dels)
				}
				db := base
				if len(dels) > 0 {
					// Sorting by interned id makes every DeleteAll insertion
					// an append into the clone's removed set: the round's
					// repair costs O(|R_del| log |R_del|), not O(|D|).
					slices.SortFunc(dels, func(a, b relation.Fact) int {
						if a.ID() < b.ID() {
							return -1
						}
						if a.ID() > b.ID() {
							return 1
						}
						return 0
					})
					db = base.Clone()
					db.DeleteAll(dels)
				}
				if err := eval(db, emit); err != nil {
					t.err = err
					return
				}
			}
		}(w, start, share)
		start += share
	}
	wg.Wait()

	merged := map[string]*tallyCell{}
	for i := range tallies {
		t := &tallies[i]
		if t.err != nil {
			return nil, t.err
		}
		for k, c := range t.cells {
			m := merged[k]
			if m == nil {
				m = &tallyCell{row: c.row}
				merged[k] = m
			}
			m.count += c.count
		}
	}
	res := &Result{N: n}
	for _, c := range merged {
		res.Tuples = append(res.Tuples, TupleFreq{
			Row:   c.row,
			Count: c.count,
			P:     float64(c.count) / float64(n),
		})
	}
	// Sort by the tuples themselves: TupleKey is a process-local interned
	// encoding with no stable order.
	slices.SortFunc(res.Tuples, func(a, b TupleFreq) int {
		return slices.Compare(a.Row, b.Row)
	})
	return res, nil
}
