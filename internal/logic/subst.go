package logic

import (
	"fmt"
	"strings"

	"repro/internal/intern"
)

// Subst is a substitution: a finite mapping from variable symbols to
// constant symbols. Substitutions represent the homomorphisms h of the
// paper, which are the identity on constants; applying a substitution
// leaves constants and unmapped variables untouched.
//
// Keys and values are interned symbols, so binding, lookup, and equality
// are integer operations; the string-facing methods resolve names through
// the symbol table.
type Subst map[intern.Sym]intern.Sym

// NewSubst returns an empty substitution.
func NewSubst() Subst { return Subst{} }

// Clone returns a copy of the substitution that can be extended
// independently.
func (s Subst) Clone() Subst {
	out := make(Subst, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Bind returns whether the variable can be bound (or is already bound) to
// the constant; if the variable is free it is bound in place.
func (s Subst) Bind(variable, constant intern.Sym) bool {
	if existing, ok := s[variable]; ok {
		return existing == constant
	}
	s[variable] = constant
	return true
}

// Val resolves a term to the constant symbol it denotes under the
// substitution: a constant denotes itself, a bound variable its binding.
// ok is false exactly for unbound variables. The join planner and matcher
// use this to decide whether an atom argument pins an index probe.
func (s Subst) Val(t Term) (intern.Sym, bool) {
	if !t.isVar {
		return t.sym, true
	}
	c, ok := s[t.sym]
	return c, ok
}

// Lookup reports the binding of a variable symbol, if any.
func (s Subst) Lookup(variable intern.Sym) (intern.Sym, bool) {
	v, ok := s[variable]
	return v, ok
}

// LookupName reports the binding of a variable by name, if any; it is the
// string-facing convenience over Lookup.
func (s Subst) LookupName(variable string) (string, bool) {
	sym, ok := intern.Lookup(variable)
	if !ok {
		return "", false
	}
	v, ok := s[sym]
	if !ok {
		return "", false
	}
	return intern.Name(v), true
}

// ApplyTerm maps a term through the substitution: constants are fixed,
// bound variables become constants, free variables are returned unchanged.
func (s Subst) ApplyTerm(t Term) Term {
	if !t.IsVar() {
		return t
	}
	if c, ok := s[t.sym]; ok {
		return ConstSym(c)
	}
	return t
}

// ApplyAtom maps an atom through the substitution.
func (s Subst) ApplyAtom(a Atom) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = s.ApplyTerm(t)
	}
	return Atom{Pred: a.Pred, Args: args}
}

// ApplyAtoms maps every atom of the list through the substitution. This is
// h(A) = {R(h(t̄)) | R(t̄) ∈ A} in the paper's notation.
func (s Subst) ApplyAtoms(atoms []Atom) []Atom {
	out := make([]Atom, len(atoms))
	for i, a := range atoms {
		out[i] = s.ApplyAtom(a)
	}
	return out
}

// Grounds reports whether the substitution binds every variable of the
// given atoms.
func (s Subst) Grounds(atoms []Atom) bool {
	for _, a := range atoms {
		for _, t := range a.Args {
			if t.IsVar() {
				if _, ok := s[t.sym]; !ok {
					return false
				}
			}
		}
	}
	return true
}

// Restrict returns a new substitution containing only the bindings for the
// given variables.
func (s Subst) Restrict(vars []Term) Subst {
	out := make(Subst, len(vars))
	for _, v := range vars {
		if !v.IsVar() {
			continue
		}
		if c, ok := s[v.sym]; ok {
			out[v.sym] = c
		}
	}
	return out
}

// Extends reports whether s extends base: every binding of base appears
// unchanged in s.
func (s Subst) Extends(base Subst) bool {
	for k, v := range base {
		if sv, ok := s[k]; !ok || sv != v {
			return false
		}
	}
	return true
}

// sortedVars returns the bound variable symbols ordered by variable name
// (the canonical order of the string-keyed predecessor).
func (s Subst) sortedVars() []intern.Sym {
	keys := make([]intern.Sym, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	intern.SortSyms(keys)
	return keys
}

// Key returns a canonical string encoding of the substitution, suitable as
// a map key; bindings are sorted by variable name. Violations (κ, h) are
// identified by the constraint id together with this key. Hot paths
// identify substitutions by interned violation ids instead; Key remains for
// display, stable external encodings, and tests.
func (s Subst) Key() string {
	if len(s) == 0 {
		return ""
	}
	var b strings.Builder
	for i, k := range s.sortedVars() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q=%q", intern.Name(k), intern.Name(s[k]))
	}
	return b.String()
}

// String renders the substitution as {x -> a, y -> b} with sorted variables.
func (s Subst) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range s.sortedVars() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(intern.Name(k))
		b.WriteString(" -> ")
		b.WriteString(intern.Name(s[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// Equal reports whether two substitutions contain exactly the same bindings.
func (s Subst) Equal(o Subst) bool {
	if len(s) != len(o) {
		return false
	}
	for k, v := range s {
		if ov, ok := o[k]; !ok || ov != v {
			return false
		}
	}
	return true
}
