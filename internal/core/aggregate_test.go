package core_test

import (
	"math/big"
	"testing"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/generators"
	"repro/internal/logic"
	"repro/internal/markov"
	"repro/internal/ops"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/repair"
)

// TestAnswerCountDistribution on the employee scenario: the repairs keep
// {m}, {s}, or {} for eve, so the department count is 3 with probability
// 2/3 and 2 with probability 1/3.
func TestAnswerCountDistribution(t *testing.T) {
	d := relation.FromFacts(
		f("emp", "alice", "sales"),
		f("emp", "bob", "engineering"),
		f("emp", "eve", "marketing"),
		f("emp", "eve", "support"),
	)
	x, y, z := v("x"), v("y"), v("z")
	key := constraint.MustEGD(
		[]logic.Atom{at("emp", x, y), at("emp", x, z)},
		y, z,
	)
	inst := repair.MustInstance(d, constraint.NewSet(key))
	sem, err := core.Compute(inst, generators.Uniform{}, markov.ExploreOptions{MaxStates: 10000})
	if err != nil {
		t.Fatal(err)
	}
	q := fo.MustQuery("Dept", []logic.Term{v("d")},
		fo.Exists{Vars: []logic.Term{v("e")}, F: fo.Atom{A: at("emp", v("e"), v("d"))}})

	dist := sem.AnswerCountDistribution(q)
	if len(dist.Points) != 2 {
		t.Fatalf("distribution = %+v, want two points", dist.Points)
	}
	if dist.Min() != 2 || dist.Max() != 3 {
		t.Errorf("range = [%d, %d], want [2, 3]", dist.Min(), dist.Max())
	}
	for _, pt := range dist.Points {
		switch pt.Count {
		case 2:
			if pt.P.Cmp(big.NewRat(1, 3)) != 0 {
				t.Errorf("P(2 depts) = %s, want 1/3", pt.P.RatString())
			}
		case 3:
			if pt.P.Cmp(big.NewRat(2, 3)) != 0 {
				t.Errorf("P(3 depts) = %s, want 2/3", pt.P.RatString())
			}
		}
	}
	// E = 2·1/3 + 3·2/3 = 8/3.
	if e := dist.Expectation(); e.Cmp(big.NewRat(8, 3)) != 0 {
		t.Errorf("expectation = %s, want 8/3", e.RatString())
	}
	if p := dist.PAtLeast(3); p.Cmp(big.NewRat(2, 3)) != 0 {
		t.Errorf("P(≥3) = %s, want 2/3", p.RatString())
	}
	if p := dist.PAtLeast(4); p.Sign() != 0 {
		t.Errorf("P(≥4) = %s, want 0", p.RatString())
	}
	if p := dist.PAtLeast(0); !prob.IsOne(p) {
		t.Errorf("P(≥0) = %s, want 1", p.RatString())
	}
}

// TestExpectedCountBooleanQuery: for a boolean query the expected count is
// the probability the query holds.
func TestExpectedCountBooleanQuery(t *testing.T) {
	inst := preferenceInstance(t)
	sem, err := core.Compute(inst, generators.Preference{}, markov.ExploreOptions{MaxStates: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// "a is the most preferred product" as a boolean query.
	y := v("y")
	q := fo.MustQuery("ATop", nil, fo.ForAll{
		Vars: []logic.Term{y},
		F: fo.Or{
			L: fo.Atom{A: at("Pref", logic.Const("a"), y)},
			R: fo.Eq{L: logic.Const("a"), R: y},
		},
	})
	e := sem.ExpectedAnswerCount(q)
	if e.Cmp(big.NewRat(9, 20)) != 0 {
		t.Errorf("E[boolean] = %s, want 9/20 (= CP(a) of Example 7)", e.RatString())
	}
}

// TestCountDistributionNoRepairs: all-failing chains yield the empty
// distribution.
func TestCountDistributionNoRepairs(t *testing.T) {
	inst := failingInstance(t)
	insertOnly := generators.WeightFunc{
		Label: "insert-only",
		Fn: func(_ *repair.State, op ops.Op) *big.Rat {
			if op.IsInsert() {
				return prob.One()
			}
			return prob.Zero()
		},
	}
	sem, err := core.Compute(inst, insertOnly, markov.ExploreOptions{MaxStates: 1000})
	if err != nil {
		t.Fatal(err)
	}
	q := fo.MustQuery("True", nil, fo.Truth{Value: true})
	dist := sem.AnswerCountDistribution(q)
	if len(dist.Points) != 0 {
		t.Errorf("distribution = %+v, want empty", dist.Points)
	}
	if e := dist.Expectation(); e.Sign() != 0 {
		t.Errorf("expectation = %s, want 0", e.RatString())
	}
}
