package core_test

// The sequence-uniform semantics (SemanticsMode) must satisfy three laws:
//
//  1. Engine equivalence: ComputeDAGMode(SequenceUniform) is bit-identical
//     (exact big.Rat) to ComputeTreeMode(SequenceUniform) — and the tree
//     under the uniform mode IS brute-force sequence enumeration, since
//     every tree leaf is one complete sequence.
//  2. Independence: for the uniform generator (whose support is ALL
//     repairing sequences), the uniform repair probabilities must equal
//     counts obtained by a raw repair.Walk traversal that never touches
//     the markov layer at all.
//  3. Divergence/coincidence: the two modes provably differ on asymmetric
//     conflict graphs (the 3-fact chain of the acceptance example) and
//     provably agree where symmetry forces them together.

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/generators"
	"repro/internal/logic"
	"repro/internal/markov"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/repair"
	"repro/internal/workload"
)

// checkUniformEngines mirrors checkEngines under the uniform mode.
func checkUniformEngines(t *testing.T, label string, inst *repair.Instance, g markov.Generator, q *fo.Query) {
	t.Helper()
	opt := markov.ExploreOptions{MaxStates: 2_000_000}
	tree, err := core.ComputeTreeMode(inst, g, opt, core.SequenceUniform)
	if err != nil {
		t.Fatalf("%s: tree: %v", label, err)
	}
	dag, err := core.ComputeDAGMode(inst, g, opt, core.SequenceUniform)
	if err != nil {
		t.Fatalf("%s: dag: %v", label, err)
	}
	routed, err := core.ComputeMode(inst, g, opt, core.SequenceUniform)
	if err != nil {
		t.Fatalf("%s: routed: %v", label, err)
	}
	if d := semanticsDiff(tree, dag); d != "" {
		t.Fatalf("%s: uniform tree vs DAG: %s", label, d)
	}
	if d := semanticsDiff(dag, routed); d != "" {
		t.Fatalf("%s: uniform DAG vs routed: %s", label, d)
	}
	if d := derivedDiff(tree, dag, q); d != "" {
		t.Fatalf("%s: uniform derived observables: %s", label, d)
	}
	if tree.TotalSequences.Cmp(dag.TotalSequences) != 0 {
		t.Fatalf("%s: TotalSequences %s vs %s", label, tree.TotalSequences, dag.TotalSequences)
	}
	// Uniform masses must be exactly SeqCount/Total and sum to SuccessP.
	sum := prob.Zero()
	for _, r := range dag.Repairs {
		want := new(big.Rat).SetFrac(r.SeqCount, dag.TotalSequences)
		if r.P.Cmp(want) != 0 {
			t.Fatalf("%s: repair %s: P = %s, want SeqCount/Total = %s", label, r.DB, r.P.RatString(), want.RatString())
		}
		sum.Add(sum, r.P)
	}
	if sum.Cmp(dag.SuccessP) != 0 {
		t.Fatalf("%s: Σ repair P = %s, want SuccessP = %s", label, sum.RatString(), dag.SuccessP.RatString())
	}
}

// TestUniformDAGEqualsBruteForceRandom is the acceptance-criterion suite:
// exact uniform semantics on the DAG, bit-identical to brute-force
// sequence enumeration, on randomized small instances across the three
// shipped memoryless generators and both workload shapes (key cliques and
// conflict chains).
func TestUniformDAGEqualsBruteForceRandom(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(400 + trial)))
		cfg := workload.KeyConfig{
			Keys:       1 + rng.Intn(4),
			Violations: 1 + rng.Intn(3),
			Seed:       int64(trial),
		}
		d, sigma := workload.KeyViolations(cfg)
		inst := repair.MustInstance(d, sigma)
		label := fmt.Sprintf("uniform-gen/trial=%d cfg=%+v", trial, cfg)
		checkUniformEngines(t, label, inst, generators.Uniform{}, keysEquivQuery())

		gen := generators.NewTrust(big.NewRat(1, 2))
		for _, fact := range d.Facts() {
			if err := gen.Set(fact, big.NewRat(int64(1+rng.Intn(4)), 5)); err != nil {
				t.Fatal(err)
			}
		}
		checkUniformEngines(t, "trust-gen/"+label, inst, gen, keysEquivQuery())
	}
	for _, facts := range []int{2, 3, 4, 5, 6} {
		d, sigma := workload.Chain(workload.ChainConfig{Facts: facts})
		inst := repair.MustInstance(d, sigma)
		checkUniformEngines(t, fmt.Sprintf("chain/facts=%d", facts), inst, generators.Uniform{}, chainQuery())
	}
	for trial := 0; trial < 4; trial++ {
		cfg := workload.PreferenceConfig{
			Products: 3 + trial, Prefs: 5 + trial, ConflictRate: 0.5, Seed: int64(trial),
		}
		d, sigma := workload.Preferences(cfg)
		inst := repair.MustInstance(d, sigma)
		checkUniformEngines(t, fmt.Sprintf("preference/trial=%d", trial), inst, generators.Preference{}, topPrefQuery())
	}
}

func chainQuery() *fo.Query {
	x, y := logic.Var("x"), logic.Var("y")
	return fo.MustQuery("Q", []logic.Term{x, y}, fo.Atom{A: logic.NewAtom("E", x, y)})
}

// TestUniformMatchesRawTreeCounts is the independence law: for the uniform
// generator the chain's support is every repairing sequence, so uniform
// repair probabilities must equal complete-sequence counts from a raw
// repair.Walk that never consults the markov layer.
func TestUniformMatchesRawTreeCounts(t *testing.T) {
	instances := []struct {
		label string
		inst  *repair.Instance
	}{}
	for _, facts := range []int{3, 4, 5} {
		d, sigma := workload.Chain(workload.ChainConfig{Facts: facts})
		instances = append(instances, struct {
			label string
			inst  *repair.Instance
		}{fmt.Sprintf("chain/facts=%d", facts), repair.MustInstance(d, sigma)})
	}
	d, sigma := workload.KeyViolations(workload.KeyConfig{Keys: 3, Violations: 2, Seed: 5})
	instances = append(instances, struct {
		label string
		inst  *repair.Instance
	}{"keys", repair.MustInstance(d, sigma)})

	for _, tc := range instances {
		counts := map[string]int64{}
		var total, failing int64
		repair.Walk(tc.inst, func(s *repair.State) bool {
			if s.IsComplete() {
				total++
				if s.IsSuccessful() {
					counts[s.Result().Key()]++
				} else {
					failing++
				}
			}
			return true
		})
		sem, err := core.ComputeMode(tc.inst, generators.Uniform{}, markov.ExploreOptions{}, core.SequenceUniform)
		if err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		if sem.TotalSequences.Int64() != total {
			t.Fatalf("%s: TotalSequences = %s, raw walk found %d", tc.label, sem.TotalSequences, total)
		}
		if sem.FailingSequences.Int64() != failing {
			t.Fatalf("%s: FailingSequences = %s, raw walk found %d", tc.label, sem.FailingSequences, failing)
		}
		if len(counts) != len(sem.Repairs) {
			t.Fatalf("%s: %d distinct results in raw walk, %d repairs", tc.label, len(counts), len(sem.Repairs))
		}
		for _, r := range sem.Repairs {
			want := new(big.Rat).SetFrac64(counts[r.DB.Key()], total)
			if r.P.Cmp(want) != 0 {
				t.Fatalf("%s: repair %s: P = %s, raw count ratio %s", tc.label, r.DB, r.P.RatString(), want.RatString())
			}
		}
	}
}

// TestUniformDivergesFromWalkOnChain pins the acceptance example exactly:
// on the 3-fact conflict chain the repair keeping both end facts has walk
// probability 1/5 but uniform probability 1/9, while on the perfectly
// symmetric single key conflict the two modes coincide.
func TestUniformDivergesFromWalkOnChain(t *testing.T) {
	d, sigma := workload.Chain(workload.ChainConfig{Facts: 3})
	inst := repair.MustInstance(d, sigma)
	walk, err := core.ComputeMode(inst, generators.Uniform{}, markov.ExploreOptions{}, core.WalkInduced)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := core.ComputeMode(inst, generators.Uniform{}, markov.ExploreOptions{}, core.SequenceUniform)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := uni.TotalSequences.Int64(), int64(9); got != want {
		t.Fatalf("chain-3 has %d complete sequences, want %d", got, want)
	}
	// The both-ends repair is the 2-fact database; find it by size.
	found := false
	for i, r := range uni.Repairs {
		if r.DB.Size() != 2 {
			continue
		}
		found = true
		if want := big.NewRat(1, 9); r.P.Cmp(want) != 0 {
			t.Fatalf("uniform P(both ends) = %s, want %s", r.P.RatString(), want.RatString())
		}
		if want := big.NewRat(1, 5); walk.Repairs[i].P.Cmp(want) != 0 {
			t.Fatalf("walk P(both ends) = %s, want %s", walk.Repairs[i].P.RatString(), want.RatString())
		}
	}
	if !found {
		t.Fatal("both-ends repair not found")
	}

	// Symmetric coincidence: one key conflict, both modes give 1/3 each.
	d2, sigma2 := workload.KeyViolations(workload.KeyConfig{Keys: 1, Violations: 1, Seed: 1})
	inst2 := repair.MustInstance(d2, sigma2)
	w2, err := core.ComputeMode(inst2, generators.Uniform{}, markov.ExploreOptions{}, core.WalkInduced)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := core.ComputeMode(inst2, generators.Uniform{}, markov.ExploreOptions{}, core.SequenceUniform)
	if err != nil {
		t.Fatal(err)
	}
	if d := semanticsDiff(w2, u2); d != "" {
		t.Fatalf("single symmetric conflict: modes should coincide, got %s", d)
	}
}

// TestUniformWithFailingSequences: uniform semantics on a failing chain
// (the paper's insertion example {R(a)} with R→T and ¬T) must spread mass
// over ALL complete sequences — failing ones included — and normalize CP
// by the successful share. The chain has TGDs, so this exercises the
// tree-engine uniform path and the exact success/failing sequence split.
func TestUniformWithFailingSequences(t *testing.T) {
	d, sigma := paperFailingInstance(t)
	inst := repair.MustInstance(d, sigma)
	sem, err := core.ComputeMode(inst, generators.Uniform{}, markov.ExploreOptions{}, core.SequenceUniform)
	if err != nil {
		t.Fatal(err)
	}
	if sem.FailingSequences.Sign() == 0 {
		t.Fatal("expected failing sequences on the insertion instance")
	}
	total := new(big.Rat).Add(sem.SuccessP, sem.FailP)
	if !prob.IsOne(total) {
		t.Fatalf("SuccessP + FailP = %s, want 1", total.RatString())
	}
	wantSuccess := new(big.Rat).SetFrac(
		new(big.Int).Sub(sem.TotalSequences, sem.FailingSequences), sem.TotalSequences)
	if sem.SuccessP.Cmp(wantSuccess) != 0 {
		t.Fatalf("SuccessP = %s, want (total−failing)/total = %s", sem.SuccessP.RatString(), wantSuccess.RatString())
	}
	// The brute-force tree is the only engine for TGD chains; Compute must
	// have routed there and produced the same thing.
	tree, err := core.ComputeTreeMode(inst, generators.Uniform{}, markov.ExploreOptions{}, core.SequenceUniform)
	if err != nil {
		t.Fatal(err)
	}
	if diff := semanticsDiff(sem, tree); diff != "" {
		t.Fatalf("routed vs tree on TGD chain: %s", diff)
	}
}

func paperFailingInstance(t *testing.T) (*relation.Database, *constraint.Set) {
	t.Helper()
	d := relation.FromFacts(relation.NewFact("R", "a"))
	x := logic.Var("x")
	tgd := constraint.MustTGD([]logic.Atom{logic.NewAtom("R", x)}, []logic.Atom{logic.NewAtom("T", x)})
	dc := constraint.MustDC([]logic.Atom{logic.NewAtom("T", x)})
	return d, constraint.NewSet(tgd, dc)
}

// TestParseSemanticsMode covers the CLI surface of the mode enum.
func TestParseSemanticsMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want core.SemanticsMode
		ok   bool
	}{
		{"walk", core.WalkInduced, true},
		{"walk-induced", core.WalkInduced, true},
		{"", core.WalkInduced, true},
		{"uniform", core.SequenceUniform, true},
		{"sequence-uniform", core.SequenceUniform, true},
		{"bogus", 0, false},
	} {
		got, err := core.ParseSemanticsMode(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Fatalf("ParseSemanticsMode(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Fatalf("ParseSemanticsMode(%q) succeeded, want error", tc.in)
		}
	}
	if core.WalkInduced.String() != "walk" || core.SequenceUniform.String() != "uniform" {
		t.Fatalf("mode String() mismatch: %q, %q", core.WalkInduced, core.SequenceUniform)
	}
}
