package cliutil

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadTextInline(t *testing.T) {
	got, err := LoadText("inline:R(a, b).")
	if err != nil {
		t.Fatal(err)
	}
	if got != "R(a, b)." {
		t.Errorf("LoadText = %q", got)
	}
}

func TestLoadTextFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.facts")
	if err := os.WriteFile(path, []byte("R(a)."), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadText(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != "R(a)." {
		t.Errorf("LoadText = %q", got)
	}
	if _, err := LoadText(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file must fail")
	}
}

func TestLoadDatabaseAndConstraintsAndQuery(t *testing.T) {
	d, err := LoadDatabase("inline:R(a, b). R(a, c).")
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 2 {
		t.Errorf("size = %d", d.Size())
	}
	if _, err := LoadDatabase("inline:R(X)."); err == nil {
		t.Error("variables in facts must fail")
	}

	set, err := LoadConstraints("inline:R(X, Y), R(X, Z) -> Y = Z.")
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 1 {
		t.Errorf("constraints = %d", set.Len())
	}
	if _, err := LoadConstraints("inline:nonsense"); err == nil {
		t.Error("garbage constraints must fail")
	}

	q, err := LoadQuery("inline:Q(X) := exists Y: R(X, Y).")
	if err != nil {
		t.Fatal(err)
	}
	if q.Arity() != 1 {
		t.Errorf("arity = %d", q.Arity())
	}
	if _, err := LoadQuery("inline:Q(X) :="); err == nil {
		t.Error("garbage query must fail")
	}
}

func TestResolveGenerator(t *testing.T) {
	d, err := LoadDatabase("inline:R(a, b).")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "uniform", "uniform-deletions", "preference", "trust", "trust:42"} {
		g, err := ResolveGenerator(name, d)
		if err != nil {
			t.Errorf("ResolveGenerator(%q): %v", name, err)
			continue
		}
		if g == nil {
			t.Errorf("ResolveGenerator(%q) returned nil", name)
		}
	}
	if _, err := ResolveGenerator("no-such-generator", d); err == nil {
		t.Error("unknown generator must fail")
	}
	if _, err := ResolveGenerator("trust:not-a-number", d); err == nil {
		t.Error("bad trust seed must fail")
	}
}
