// Package logic provides the term-level substrate shared by the whole
// library: constants, variables, atoms, and substitutions. The paper
// (Calautti, Libkin, Pieris, PODS 2018) phrases constraint satisfaction
// and violations in terms of homomorphisms from conjunctions of atoms to
// databases; this package supplies the vocabulary those homomorphisms are
// defined over (the search itself lives in internal/relation, next to the
// indexes that drive it).
//
// # Key types
//
//   - Term: a constant or variable carrying an interned symbol id
//     (intern.Sym), so term comparisons are integer comparisons.
//   - Atom: a predicate applied to terms, the building block of constraint
//     bodies and conjunctive queries.
//   - Subst: a variable → symbol binding set (a partial homomorphism);
//     Subst.Val resolves a term under the binding, which the join planner
//     and matcher in internal/relation use to pin argument positions.
//
// # Invariants
//
//   - Terms are immutable values; identity is (kind, symbol). The
//     string-facing API (Name, String, the text format of internal/parse)
//     is preserved through the symbol table.
//   - Variables follow the Prolog case convention only at the parse layer;
//     here a Term is explicitly a Var or Const regardless of spelling.
//
// # Neighbors
//
// Below: internal/intern (symbols). Above: internal/relation (facts,
// homomorphism search), internal/constraint (TGD/EGD/DC bodies),
// internal/fo (query formulas), internal/plan (conjunctive-plan
// compilation to fo).
package logic
