package practical

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/generators"
	"repro/internal/intern"
	"repro/internal/logic"
	"repro/internal/markov"
	"repro/internal/plan"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/repair"
	"repro/internal/workload"
)

func catalogWithConflicts() *plan.Catalog {
	cat := plan.NewCatalog()
	cat.MustAddTable("orders", "oid", "cust", "amount").
		MustInsert("orders", "o1", "c1", "100").
		MustInsert("orders", "o1", "c2", "150").
		MustInsert("orders", "o2", "c1", "200").
		MustInsert("orders", "o3", "c3", "50").
		MustInsert("orders", "o3", "c4", "60").
		MustInsert("orders", "o3", "c5", "70")
	cat.MustAddTable("customers", "cust", "region").
		MustInsert("customers", "c1", "north").
		MustInsert("customers", "c2", "south").
		MustInsert("customers", "c3", "north").
		MustInsert("customers", "c4", "west").
		MustInsert("customers", "c5", "east")
	if err := cat.DeclareKey("orders", "oid"); err != nil {
		panic(err)
	}
	cat.Seal()
	return cat
}

func ordersGroups(cat *plan.Catalog) [][]relation.Fact {
	t, err := cat.Table("orders")
	if err != nil {
		panic(err)
	}
	return KeyGroups(cat.DB(), t.Pred, len(t.Cols), cat.Key("orders"))
}

func TestKeyGroups(t *testing.T) {
	cat := catalogWithConflicts()
	groups := ordersGroups(cat)
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want 2 (o1 and o3)", groups)
	}
	// Canonical fact order sorts the o1 group (2 members) before o3 (3).
	if len(groups[0]) != 2 || len(groups[1]) != 3 {
		t.Errorf("group sizes = %d,%d, want 2,3", len(groups[0]), len(groups[1]))
	}
	for _, g := range groups {
		key := g[0].Arg(0)
		for _, f := range g {
			if f.Arg(0) != key {
				t.Errorf("group %v mixes keys", g)
			}
		}
	}
}

func TestKeyGroupsMultiColumn(t *testing.T) {
	cat := plan.NewCatalog()
	cat.MustAddTable("T", "a", "b", "v").
		MustInsert("T", "x", "y", "1").
		MustInsert("T", "x", "y", "2").
		MustInsert("T", "x", "z", "3"). // same first key column, different second
		MustInsert("T", "w", "y", "4")
	if err := cat.DeclareKey("T", "a", "b"); err != nil {
		t.Fatal(err)
	}
	cat.Seal()
	tbl, _ := cat.Table("T")
	groups := KeyGroups(cat.DB(), tbl.Pred, len(tbl.Cols), cat.Key("T"))
	if len(groups) != 1 || len(groups[0]) != 2 {
		t.Fatalf("groups = %v, want one group of the two (x,y) facts", groups)
	}
}

func TestSampleRdelKeepsExactlyOne(t *testing.T) {
	cat := catalogWithConflicts()
	groups := ordersGroups(cat)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		del := SampleRdel(rng, groups, Policy{})
		// o1 group: 2 facts → 1 deleted; o3 group: 3 facts → 2 deleted.
		if len(del) != 3 {
			t.Fatalf("R_del size = %d, want 3", len(del))
		}
		deleted := map[relation.Fact]bool{}
		for _, f := range del {
			deleted[f] = true
		}
		for _, g := range groups {
			kept := 0
			for _, f := range g {
				if !deleted[f] {
					kept++
				}
			}
			if kept != 1 {
				t.Fatalf("kept %d of group %v, want 1", kept, g)
			}
		}
	}
}

func TestSampleRdelDropAll(t *testing.T) {
	cat := catalogWithConflicts()
	groups := ordersGroups(cat)
	rng := rand.New(rand.NewSource(2))
	del := SampleRdel(rng, groups, Policy{DropAll: 1.0})
	// Everything in violating groups goes: 2 + 3 facts.
	if len(del) != 5 {
		t.Errorf("R_del size = %d, want 5", len(del))
	}
}

// TestSampleRdelKeptTupleLaw checks the per-group repair distribution the
// scheme induces — the law the retired string-row engine implemented: a
// group of size m keeps member i with probability (1−p)/m and keeps nobody
// with probability p, independently across groups.
func TestSampleRdelKeptTupleLaw(t *testing.T) {
	cat := catalogWithConflicts()
	groups := ordersGroups(cat)
	for _, p := range []float64{0, 0.3} {
		rng := rand.New(rand.NewSource(7))
		const draws = 40000
		keptCount := make([]map[relation.Fact]int, len(groups))
		droppedAll := make([]int, len(groups))
		for i := range groups {
			keptCount[i] = map[relation.Fact]int{}
		}
		for d := 0; d < draws; d++ {
			del := SampleRdel(rng, groups, Policy{DropAll: p})
			deleted := map[relation.Fact]bool{}
			for _, f := range del {
				deleted[f] = true
			}
			for gi, g := range groups {
				kept := 0
				for _, f := range g {
					if !deleted[f] {
						keptCount[gi][f]++
						kept++
					}
				}
				if kept == 0 {
					droppedAll[gi]++
				} else if kept != 1 {
					t.Fatalf("kept %d members, want ≤ 1", kept)
				}
			}
		}
		for gi, g := range groups {
			m := float64(len(g))
			for _, f := range g {
				got := float64(keptCount[gi][f]) / draws
				want := (1 - p) / m
				if math.Abs(got-want) > 0.02 {
					t.Errorf("p=%v: P(keep %s) = %.4f, want ≈ %.4f", p, f, got, want)
				}
			}
			if got := float64(droppedAll[gi]) / draws; math.Abs(got-p) > 0.02 {
				t.Errorf("p=%v: P(drop all) = %.4f in group %d, want ≈ %v", p, got, gi, p)
			}
		}
	}
}

func TestRunnerFrequencies(t *testing.T) {
	cat := catalogWithConflicts()
	r := &Runner{Catalog: cat, Seed: 7}
	// Which customers own an order? Project cust from orders.
	p := plan.Distinct{Input: plan.Project{Input: plan.Scan{Table: "orders"}, Cols: []string{"cust"}}}
	res, err := r.Run(p, 4000)
	if err != nil {
		t.Fatal(err)
	}
	// c1 appears via clean o2 in every round → frequency 1.
	if got := res.Lookup([]string{"c1"}).P; got != 1 {
		t.Errorf("P(c1) = %v, want 1", got)
	}
	// c2 survives only when o1 keeps its second row: ≈ 1/2.
	if got := res.Lookup([]string{"c2"}).P; math.Abs(got-0.5) > 0.03 {
		t.Errorf("P(c2) = %v, want ≈ 0.5", got)
	}
	// c3/c4/c5 each ≈ 1/3 (o3 keeps one of three rows).
	for _, cust := range []string{"c3", "c4", "c5"} {
		if got := res.Lookup([]string{cust}).P; math.Abs(got-1.0/3) > 0.03 {
			t.Errorf("P(%s) = %v, want ≈ 1/3", cust, got)
		}
	}
}

func TestRunnerJoinQuery(t *testing.T) {
	cat := catalogWithConflicts()
	r := &Runner{Catalog: cat, Seed: 11, Workers: 4}
	// Regions with at least one order.
	p := plan.Distinct{Input: plan.Project{
		Input: plan.Join{L: plan.Scan{Table: "orders"}, R: plan.Scan{Table: "customers"}},
		Cols:  []string{"region"},
	}}
	res, err := r.Run(p, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// north holds via o2→c1 regardless of repairs.
	if got := res.Lookup([]string{"north"}).P; got != 1 {
		t.Errorf("P(north) = %v, want 1", got)
	}
	// south requires o1 keeping c2: ≈ 0.5.
	if got := res.Lookup([]string{"south"}).P; math.Abs(got-0.5) > 0.04 {
		t.Errorf("P(south) = %v, want ≈ 0.5", got)
	}
}

// TestPlanAndCQPathsAgree runs the same plan through the compiled-CQ
// evaluator and the algebra evaluator on identical per-round repairs (same
// seed → same R_del draws) and requires bit-identical results.
func TestPlanAndCQPathsAgree(t *testing.T) {
	cat := catalogWithConflicts()
	p := plan.Distinct{Input: plan.Project{
		Input: plan.Join{L: plan.Scan{Table: "orders"}, R: plan.Scan{Table: "customers"}},
		Cols:  []string{"region"},
	}}
	q, ok := plan.AsQuery(p, cat)
	if !ok {
		t.Fatal("join plan should compile to a CQ")
	}
	r := &Runner{Catalog: cat, Seed: 5}
	viaCQ, err := r.runRounds(r.queryEval(q), 500)
	if err != nil {
		t.Fatal(err)
	}
	viaAlgebra, err := r.runRounds(r.planEval(p), 500)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaCQ, viaAlgebra) {
		t.Errorf("CQ path and algebra path disagree:\n%+v\n%+v", viaCQ, viaAlgebra)
	}
}

// TestRunnerDeterministicAcrossWorkerCounts is the practical-pipeline
// analogue of sampling's TestEstimatorDeterministicAcrossWorkerCounts:
// per-round RNGs derive from (Seed, round), so any worker count draws the
// same n repairs and the merged result is bit-identical.
func TestRunnerDeterministicAcrossWorkerCounts(t *testing.T) {
	cat := catalogWithConflicts()
	p := plan.Distinct{Input: plan.Project{
		Input: plan.Join{L: plan.Scan{Table: "orders"}, R: plan.Scan{Table: "customers"}},
		Cols:  []string{"region"},
	}}
	var ref *Result
	for workers := 1; workers <= 8; workers++ {
		r := &Runner{Catalog: cat, Policy: Policy{DropAll: 0.2}, Seed: 9, Workers: workers}
		res, err := r.Run(p, 301)
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			ref = res
			continue
		}
		if !reflect.DeepEqual(ref, res) {
			t.Errorf("Workers=%d result differs from Workers=1", workers)
		}
	}
}

// TestRunnerMatchesExactCP: on key-violation instances whose groups all
// have size 2, the uniform repairing chain factorizes per conflict into
// {keep α, keep β, drop both} with probability 1/3 each — exactly the
// practical scheme's law at DropAll = 1/3. The estimate must therefore
// land within the Hoeffding ε of the exact CP computed by core.Compute.
func TestRunnerMatchesExactCP(t *testing.T) {
	d, sigma := workload.KeyViolations(workload.KeyConfig{Keys: 6, Violations: 3, Seed: 21})
	inst := repair.MustInstance(d, sigma)
	sem, err := core.Compute(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x, y := logic.Var("x"), logic.Var("y")
	q := fo.MustQuery("HasValue", []logic.Term{x},
		fo.Exists{Vars: []logic.Term{y}, F: fo.Atom{A: logic.NewAtom("R", x, y)}})

	cat := plan.NewCatalogOn(d)
	cat.MustAddTable("R", "k", "v")
	if err := cat.DeclareKey("R", "k"); err != nil {
		t.Fatal(err)
	}
	const eps, delta = 0.1, 0.05
	n, err := prob.HoeffdingSamples(eps, delta)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Catalog: cat, Policy: Policy{DropAll: 1.0 / 3.0}, Seed: 3, Workers: 2}
	res, err := r.RunQuery(q, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("k%d", i)
		exact := prob.Float(sem.CP(q, []string{key}))
		got := res.Lookup([]string{key}).P
		if math.Abs(got-exact) > eps {
			t.Errorf("CP(%s): practical %.4f vs exact %.4f exceeds ε = %v", key, got, exact, eps)
		}
	}
}

func TestRunWithGuaranteeUsesHoeffdingN(t *testing.T) {
	cat := catalogWithConflicts()
	r := &Runner{Catalog: cat, Seed: 3}
	p := plan.Distinct{Input: plan.Project{Input: plan.Scan{Table: "orders"}, Cols: []string{"cust"}}}
	res, err := r.RunWithGuarantee(p, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 150 {
		t.Errorf("N = %d, want the paper's 150", res.N)
	}
	if res.Eps != 0.1 || res.Delta != 0.1 {
		t.Errorf("guarantee parameters lost: %+v", res)
	}
}

func TestRunnerDeterministicPerSeed(t *testing.T) {
	cat := catalogWithConflicts()
	p := plan.Distinct{Input: plan.Project{Input: plan.Scan{Table: "orders"}, Cols: []string{"cust"}}}
	a, err := (&Runner{Catalog: cat, Seed: 5}).Run(p, 200)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Runner{Catalog: cat, Seed: 5}).Run(p, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed must reproduce the full result")
	}
}

func TestRunnerBadN(t *testing.T) {
	cat := catalogWithConflicts()
	r := &Runner{Catalog: cat, Seed: 1}
	if _, err := r.Run(plan.Scan{Table: "orders"}, 0); err == nil {
		t.Error("n = 0 must fail")
	}
}

func TestRunnerPlanError(t *testing.T) {
	cat := catalogWithConflicts()
	r := &Runner{Catalog: cat, Seed: 1}
	if _, err := r.Run(plan.Scan{Table: "missing"}, 10); err == nil {
		t.Error("unknown table must surface the evaluation error")
	}
}

// TestKeyGroupsIgnoresArityMismatch: the interned database keys facts by
// predicate alone, so a stray fact of a different arity — invisible to the
// table's Scan and CQ paths — must not manufacture a key violation against
// the table's rows.
func TestKeyGroupsIgnoresArityMismatch(t *testing.T) {
	db := relation.FromFacts(
		relation.NewFact("R", "a", "1"),
		relation.NewFact("R", "a"), // stray arity-1 fact sharing the key symbol
		relation.NewFact("R", "b", "2"),
	)
	db.Seal()
	groups := KeyGroups(db, intern.S("R"), 2, []int{0})
	if len(groups) != 0 {
		t.Fatalf("groups = %v, want none (the arity-1 fact is not a table row)", groups)
	}
	// And the runner keeps the consistent row at frequency 1.
	cat := plan.NewCatalogOn(db)
	cat.MustAddTable("R", "k", "v")
	if err := cat.DeclareKey("R", "k"); err != nil {
		t.Fatal(err)
	}
	p := plan.Distinct{Input: plan.Project{Input: plan.Scan{Table: "R"}, Cols: []string{"k"}}}
	res, err := (&Runner{Catalog: cat, Seed: 1}).Run(p, 200)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Lookup([]string{"a"}).P; got != 1 {
		t.Errorf("P(a) = %v, want 1 (no phantom violation)", got)
	}
}
