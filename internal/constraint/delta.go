package constraint

import (
	"repro/internal/logic"
	"repro/internal/relation"
)

// This file implements incremental maintenance of violation sets: given
// V(D,Σ) and an update that inserted or deleted a set of facts, compute
// V(D',Σ) without re-running homomorphism search for unaffected
// constraints. This realizes the "localization of repairs" optimization
// sketched in Section 6 of the paper and is the workhorse behind fast
// chain walks; FindViolations remains the reference implementation and the
// test suite checks the two agree on random transitions.
//
// Correctness cases:
//
//   - EGD/DC + deletion: a violation disappears iff its body loses a fact;
//     no violation can appear. Pure filtering, no search.
//   - EGD/DC + insertion: existing violations persist (their bodies are
//     untouched); new violations must map at least one body atom to an
//     inserted fact (semi-naive delta search).
//   - TGD: insertions can both create violations (new body matches) and
//     satisfy old ones (new head witnesses); deletions can both remove
//     violations (destroyed bodies) and create them (destroyed witnesses).
//     TGDs whose body or head mentions a changed predicate are recomputed
//     in full.
//   - Constraints mentioning none of the changed predicates keep their
//     violations verbatim.

// UpdateViolations computes V(dNew, Σ) from before = V(dOld, Σ), where
// dNew is dOld with the facts `changed` inserted (insert = true) or
// deleted (insert = false). The facts in `changed` must actually have
// changed (as reported by ops.Op.Do). The input set is not modified.
func UpdateViolations(dNew *relation.Database, s *Set, before *Violations, changed []relation.Fact, insert bool) *Violations {
	changedPreds := map[string]bool{}
	changedKeys := map[string]bool{}
	for _, f := range changed {
		changedPreds[f.Pred] = true
		changedKeys[f.Key()] = true
	}

	out := NewViolations()
	for _, c := range s.constraints {
		switch {
		case !constraintTouches(c, changedPreds):
			// Unaffected: copy this constraint's violations.
			copyConstraintViolations(out, before, c)

		case c.kind == TGD:
			// Full recompute for this constraint only.
			relation.ForEachHom(c.body, dNew, logic.NewSubst(), func(h logic.Subst) bool {
				if c.violatedBy(dNew, h) {
					out.add(NewViolation(c, h))
				}
				return true
			})

		case !insert:
			// EGD/DC + deletion: drop violations whose body lost a fact.
			for _, v := range before.byKey {
				if v.Constraint != c {
					continue
				}
				if !bodyIntersects(v, changedKeys) {
					out.add(v)
				}
			}

		default:
			// EGD/DC + insertion: keep the old violations, add the delta.
			copyConstraintViolations(out, before, c)
			forEachHomTouching(c.body, dNew, changedKeys, changedPreds, func(h logic.Subst) {
				if c.violatedBy(dNew, h) {
					out.add(NewViolation(c, h))
				}
			})
		}
	}
	return out
}

// IntroducedViolations returns only the violations of dNew that were not
// violations before the update — the set after − before. It is the cheap
// side of UpdateViolations, used by the req2 admissibility check: a
// candidate operation is inadmissible iff it reintroduces an eliminated
// violation, and eliminated violations are disjoint from the current set,
// so only genuinely new violations matter. For EGD/DC deletions the answer
// is always empty without any search.
func IntroducedViolations(dNew *relation.Database, s *Set, before *Violations, changed []relation.Fact, insert bool) []Violation {
	changedPreds := map[string]bool{}
	changedKeys := map[string]bool{}
	for _, f := range changed {
		changedPreds[f.Pred] = true
		changedKeys[f.Key()] = true
	}
	var out []Violation
	for _, c := range s.constraints {
		switch {
		case !constraintTouches(c, changedPreds):
			// Unaffected constraints introduce nothing.

		case c.kind == TGD:
			relation.ForEachHom(c.body, dNew, logic.NewSubst(), func(h logic.Subst) bool {
				if c.violatedBy(dNew, h) {
					v := NewViolation(c, h)
					if !before.Has(v.Key()) {
						out = append(out, v)
					}
				}
				return true
			})

		case !insert:
			// EGD/DC deletions can only remove violations.

		default:
			forEachHomTouching(c.body, dNew, changedKeys, changedPreds, func(h logic.Subst) {
				if c.violatedBy(dNew, h) {
					out = append(out, NewViolation(c, h))
				}
			})
		}
	}
	return out
}

// MayIntroduceViolations reports whether an update of the given polarity
// touching the given predicates can possibly create a new violation:
// insertions need a constraint body mentioning a touched predicate;
// deletions can only create TGD violations by destroying head witnesses.
// When this returns false, callers may skip computing the introduced set
// (and the database update itself) entirely.
func (s *Set) MayIntroduceViolations(preds []string, insert bool) bool {
	for _, c := range s.constraints {
		if insert {
			for _, a := range c.body {
				for _, p := range preds {
					if a.Pred == p {
						return true
					}
				}
			}
			continue
		}
		if c.kind != TGD {
			continue
		}
		for _, a := range c.head {
			for _, p := range preds {
				if a.Pred == p {
					return true
				}
			}
		}
	}
	return false
}

// constraintTouches reports whether any body or head predicate of c is in
// the changed set.
func constraintTouches(c *Constraint, preds map[string]bool) bool {
	for _, a := range c.body {
		if preds[a.Pred] {
			return true
		}
	}
	for _, a := range c.head {
		if preds[a.Pred] {
			return true
		}
	}
	return false
}

func copyConstraintViolations(dst *Violations, src *Violations, c *Constraint) {
	for _, v := range src.byKey {
		if v.Constraint == c {
			dst.add(v)
		}
	}
}

// bodyIntersects reports whether h(body) includes any changed fact.
func bodyIntersects(v Violation, changedKeys map[string]bool) bool {
	for k := range changedKeys {
		if v.bodyHasKey(k) {
			return true
		}
	}
	return false
}

// forEachHomTouching enumerates the homomorphisms from atoms into d that
// map at least one atom onto a changed fact (the semi-naive delta): for
// each atom position in turn, the atom is pinned to each changed fact and
// the remaining atoms are matched against the full database. Duplicate
// homomorphisms (touching several changed facts) are emitted once.
func forEachHomTouching(atoms []logic.Atom, d *relation.Database, changedKeys map[string]bool, changedPreds map[string]bool, fn func(logic.Subst)) {
	seen := map[string]bool{}
	for i, pivot := range atoms {
		if !changedPreds[pivot.Pred] {
			continue
		}
		rest := make([]logic.Atom, 0, len(atoms)-1)
		rest = append(rest, atoms[:i]...)
		rest = append(rest, atoms[i+1:]...)
		for _, f := range d.FactsByPred(pivot.Pred) {
			if !changedKeys[f.Key()] || len(f.Args) != len(pivot.Args) {
				continue
			}
			base := logic.NewSubst()
			ok := true
			for j, t := range pivot.Args {
				if t.IsConst() {
					if t.Name() != f.Args[j] {
						ok = false
						break
					}
					continue
				}
				if !base.Bind(t.Name(), f.Args[j]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			relation.ForEachHom(rest, d, base, func(h logic.Subst) bool {
				if k := h.Key(); !seen[k] {
					seen[k] = true
					fn(h)
				}
				return true
			})
		}
	}
}
