#!/usr/bin/env bash
set -euo pipefail
cd /root/repo
# Pre-build both sides so compile time doesn't land in round 1.
(cd .bench-pr7 && go test -run '^$' -bench xxx . >/dev/null 2>&1) || true
go test -run '^$' -bench xxx . >/dev/null 2>&1 || true
for round in 1 2 3; do
  (cd .bench-pr7 && scripts/bench.sh -o bench_b$round.json) 2>&1 | tail -1
  scripts/bench.sh -o bench_a$round.json 2>&1 | tail -1
done
echo DONE
