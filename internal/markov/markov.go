package markov

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/ops"
	"repro/internal/prob"
	"repro/internal/repair"
)

// Generator assigns transition probabilities to the valid extensions of a
// repairing sequence; it is the computational core of a repairing Markov
// chain generator M_Σ. Implementations live in internal/generators.
//
// Transitions receives the current state s and its valid extensions (as
// enumerated by the repair package, never empty) and returns one
// probability per extension, aligned by index. The probabilities must be
// non-negative and sum to exactly 1; extensions assigned probability zero
// are simply absent from the chain's support. Assigning zero to every
// extension of a non-complete state would make the state absorbing without
// being complete, violating Definition 5, and is reported as an error by
// the chain machinery.
type Generator interface {
	// Name identifies the generator in reports and CLI flags.
	Name() string
	// Transitions returns the transition probabilities for the extensions
	// of s.
	Transitions(s *repair.State, exts []ops.Op) ([]*big.Rat, error)
}

// ErrNotWellDefined is returned when a generator's probabilities do not
// form a valid repairing Markov chain at some state.
var ErrNotWellDefined = errors.New("markov: generator does not define a repairing Markov chain")

// Markovian is an optional capability interface for generators whose
// transition probabilities depend only on the state's current database (and
// its extensions, themselves a function of the database in the
// deletion-only regime) — not on how the state was reached. For such
// generators two states with equal Database.Key() are interchangeable: they
// have the same extensions, the same transition probabilities, and the same
// futures, so the sequence tree of Definition 5 collapses into a DAG whose
// size is the number of distinct reachable sub-databases instead of the
// number of repairing sequences. ExploreDAG exploits this; Collapsible
// reports when it applies.
//
// All shipped generators (uniform, uniform-deletions, preference, trust)
// are memoryless: their weights are computed from s.Result() alone.
// History-dependent generators simply do not implement the interface and
// keep the exact tree walk.
//
// Implementing Markovian also opts the generator into parallel frontier
// expansion: ExploreDAG calls Transitions (and walkers call IntWeights)
// from concurrent goroutines, so implementations must be safe for
// concurrent calls — stateless, or synchronized around any internal
// scratch state.
type Markovian interface {
	Generator
	// Memoryless documents (and asserts) that Transitions is a pure
	// function of (s.Result(), exts); implementations return true.
	Memoryless() bool
}

// Collapsible reports whether the chain M_Σ(D) may be explored as a DAG of
// distinct databases: the generator must be memoryless AND the constraint
// set must be TGD-free. The second condition makes the *state space* itself
// memoryless: without TGDs every operation is a deletion, so a state's
// valid extensions are determined by its violation set (a function of the
// database) and the history bookkeeping of Definition 4 (cancellation,
// req2, global justification of additions) never prunes anything. With
// TGDs, states reaching the same database along different histories can
// have different futures, and only the sequence tree is sound.
func Collapsible(inst *repair.Instance, g Generator) bool {
	m, ok := g.(Markovian)
	return ok && m.Memoryless() && !inst.Sigma().HasTGDs()
}

// IntWeighter is an optional fast path for generators whose transition
// probabilities are ratios of small integer weights (uniform choice,
// count-based importance, ...). IntWeights returns one non-negative weight
// per extension; the transition probability of extension i is
// weights[i] / Σ weights, which sums to 1 by construction. Implementations
// return ok = false to fall back to the exact Transitions path (e.g. when
// weights are inherently rational). Random walks use this to step without
// any big.Rat arithmetic — the sampled edge is identical to the one the
// exact path picks from the same RNG draw — while the exact engines
// (Explore, ExploreDAG, HittingDistribution) always use Transitions.
type IntWeighter interface {
	IntWeights(s *repair.State, exts []ops.Op) (weights []int64, ok bool, err error)
}

// Step validates and returns the outgoing edges of a state under a
// generator: the valid extensions with positive probability. A complete
// state has no outgoing edges (it is absorbing).
func Step(g Generator, s *repair.State) ([]Edge, error) {
	exts := s.Extensions()
	if len(exts) == 0 {
		return nil, nil
	}
	ps, err := g.Transitions(s, exts)
	if err != nil {
		return nil, fmt.Errorf("generator %s at state %q: %w", g.Name(), s, err)
	}
	if len(ps) != len(exts) {
		return nil, fmt.Errorf("%w: generator %s returned %d probabilities for %d extensions",
			ErrNotWellDefined, g.Name(), len(ps), len(exts))
	}
	var edges []Edge
	// Equal-weight fast path (the uniform generator shares one Rat across
	// all edges): the sum is p·k, checked with a single multiplication
	// instead of k GCD-normalizing additions.
	if prob.AllEqual(ps) && ps[0].Sign() > 0 {
		if !prob.IsOne(prob.MulInt64(ps[0], int64(len(ps)))) {
			return nil, fmt.Errorf("%w: probabilities at state %q sum to %s, want 1",
				ErrNotWellDefined, s, prob.MulInt64(ps[0], int64(len(ps))).RatString())
		}
		edges = make([]Edge, len(exts))
		for i := range exts {
			edges[i] = Edge{Op: exts[i], P: ps[i]}
		}
		return edges, nil
	}
	total := new(big.Rat)
	for i, p := range ps {
		if p.Sign() < 0 {
			return nil, fmt.Errorf("%w: negative probability %s for %s", ErrNotWellDefined, p, exts[i])
		}
		total.Add(total, p)
		if p.Sign() > 0 {
			edges = append(edges, Edge{Op: exts[i], P: p})
		}
	}
	if !prob.IsOne(total) {
		return nil, fmt.Errorf("%w: probabilities at state %q sum to %s, want 1",
			ErrNotWellDefined, s, total.RatString())
	}
	return edges, nil
}

// Edge is a positive-probability transition of the chain.
type Edge struct {
	Op ops.Op
	P  *big.Rat
}

// ratEdge is an Edge with its probability held as a small-rational
// (prob.Rat) value instead of a *big.Rat pointer. The DAG engine resolves
// edges in this form so the per-node hot loop touches no big.Rat at all
// for integer-weighted generators.
type ratEdge struct {
	op ops.Op
	p  prob.Rat
}

// stepRats is Step in small-rational form, appending the outgoing edges to
// buf (scratch reused across nodes) instead of allocating fresh slices.
// For IntWeighter generators the probabilities w_i/Σw are formed directly
// from the integer weights — exactly the rationals Transitions would
// return, without creating any big.Rat; otherwise it delegates to Step
// (inheriting its full well-definedness validation) and converts. Like the
// walkers, IntWeights errors propagate and a declined fast path (ok=false,
// or a weight sum outside int64) falls back to the exact route.
func stepRats(g Generator, s *repair.State, buf []ratEdge) ([]ratEdge, error) {
	exts := s.Extensions()
	if len(exts) == 0 {
		return buf, nil
	}
	if iw, ok := g.(IntWeighter); ok {
		ws, wok, err := iw.IntWeights(s, exts)
		if err != nil {
			return buf, fmt.Errorf("generator %s at state %q: %w", g.Name(), s, err)
		}
		if wok && len(ws) == len(exts) {
			total := int64(0)
			valid := true
			for _, w := range ws {
				if w < 0 {
					valid = false
					break
				}
				var sok bool
				if total, sok = add64(total, w); !sok {
					valid = false
					break
				}
			}
			if valid && total > 0 {
				for i, w := range ws {
					if w == 0 {
						continue
					}
					buf = append(buf, ratEdge{op: exts[i], p: prob.RatFrac(w, total)})
				}
				return buf, nil
			}
		}
	}
	edges, err := Step(g, s)
	if err != nil {
		return buf, err
	}
	for _, e := range edges {
		buf = append(buf, ratEdge{op: e.Op, p: prob.RatFromBig(e.P)})
	}
	return buf, nil
}

// add64 is overflow-checked int64 addition (mirrors the prob package's
// internal helper).
func add64(a, b int64) (int64, bool) {
	c := a + b
	if (b > 0 && c < a) || (b < 0 && c > a) {
		return 0, false
	}
	return c, true
}

// Leaf is a reachable absorbing state of the chain together with its
// hitting probability π(s) (the product of edge probabilities along the
// unique path from ε, since the chain is a tree).
type Leaf struct {
	State *repair.State
	Pi    *big.Rat
}

// ExploreOptions tunes chain exploration.
type ExploreOptions struct {
	// MaxStates aborts the exploration once more than this many states have
	// been visited (0 means unlimited). Exact exploration is exponential in
	// general — Theorem 5 — so callers on untrusted input should set a
	// bound. The tree walk counts visited sequences; the DAG engine counts
	// distinct databases (its states).
	MaxStates int
	// Workers is the number of goroutines the DAG engine uses to expand
	// each frontier level (≤ 0 means GOMAXPROCS). States are copy-on-write
	// clones, so expansion is embarrassingly parallel; results are
	// bit-identical for every worker count. The tree walk ignores it.
	Workers int
	// TrackLengths additionally propagates, for every absorbing database,
	// the exact number of absorbing sequences of each length
	// (DAGLeaf.SeqsByLength). The per-length counts cost one extra big.Int
	// vector per frontier node, so they are opt-in; they feed the
	// interleaving arithmetic that factorizes sequence-uniform counts
	// across conflict components (core.Factored.TotalSequences).
	TrackLengths bool
}

// ErrStateBudget is returned when exploration exceeds MaxStates.
var ErrStateBudget = errors.New("markov: state budget exceeded during exact exploration")

// Explore walks the support of the repairing Markov chain M_Σ(D) and
// returns its reachable absorbing states with their hitting probabilities.
// The leaf probabilities sum to exactly 1 (Proposition 3: the hitting
// distribution exists because the chain is a finite tree).
func Explore(inst *repair.Instance, g Generator, opt ExploreOptions) ([]Leaf, error) {
	var leaves []Leaf
	visited := 0
	// Path mass is carried as a small-rational (prob.Rat): products of edge
	// probabilities stay in two machine words until they would overflow, and
	// the canonical *big.Rat is materialized once per leaf.
	var dfs func(s *repair.State, pi prob.Rat) error
	dfs = func(s *repair.State, pi prob.Rat) error {
		visited++
		if opt.MaxStates > 0 && visited > opt.MaxStates {
			return ErrStateBudget
		}
		edges, err := Step(g, s)
		if err != nil {
			return err
		}
		if len(edges) == 0 {
			leaves = append(leaves, Leaf{State: s, Pi: pi.Big()})
			return nil
		}
		for _, e := range edges {
			child := s.Child(e.Op)
			if err := dfs(child, pi.MulBig(e.P)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := dfs(inst.Root(), prob.RatOne()); err != nil {
		return nil, err
	}
	return leaves, nil
}

// HittingDistribution returns the leaves keyed by sequence encoding; it is
// Explore plus the Proposition 3 sanity check that probabilities sum to 1.
//
// When the chain is Collapsible the distribution is computed on the DAG:
// absorbing sequences producing the same database are merged into one leaf
// carrying their total mass, keyed by a witness sequence (the distribution
// over result databases — the quantity every downstream consumer uses — is
// unchanged; only the sequence-level granularity is collapsed).
func HittingDistribution(inst *repair.Instance, g Generator, opt ExploreOptions) (map[string]Leaf, error) {
	if Collapsible(inst, g) {
		dag, err := ExploreDAG(inst, g, opt)
		if err != nil {
			return nil, err
		}
		out := make(map[string]Leaf, len(dag.Leaves))
		for _, l := range dag.Leaves {
			out[l.State.Key()] = Leaf{State: l.State, Pi: l.Pi}
		}
		return out, nil
	}
	leaves, err := Explore(inst, g, opt)
	if err != nil {
		return nil, err
	}
	total := new(big.Rat)
	out := make(map[string]Leaf, len(leaves))
	for _, l := range leaves {
		total.Add(total, l.Pi)
		out[l.State.Key()] = l
	}
	if !prob.IsOne(total) {
		return nil, fmt.Errorf("%w: hitting distribution sums to %s", ErrNotWellDefined, total.RatString())
	}
	return out, nil
}
