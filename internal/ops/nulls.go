package ops

import (
	"fmt"
	"hash/crc32"

	"repro/internal/constraint"
	"repro/internal/intern"
	"repro/internal/relation"
)

// This file implements the null-based insertions sketched under "Null
// Values" in Section 6 of the paper (after Bertossi et al.): instead of
// grounding a TGD's existential variables over the |dom|^|z̄| constants of
// the base, a single justified insertion per violation maps each
// existential variable to a fresh labeled null. This both matches how
// practical chase-style systems repair TGDs and collapses the insertion
// branching factor from |dom|^|z̄| to 1.
//
// Nulls are ordinary constants with a reserved prefix; constraint
// satisfaction and query evaluation treat them naively (each null equal
// only to itself), which is sound for satisfaction checking. Null names
// are derived deterministically from the violation identity, so chains
// remain reproducible and re-deriving the operation for the same violation
// yields the same fact. Whether a symbol is a null is recorded at intern
// time, so the per-fact null test never re-examines the string.

// NullPrefix marks labeled nulls among constants.
const NullPrefix = intern.NullPrefix

// IsNullConst reports whether the constant symbol is a labeled null.
func IsNullConst(c intern.Sym) bool { return intern.IsNull(c) }

// HasNulls reports whether the fact mentions a labeled null.
func HasNulls(f relation.Fact) bool {
	for _, a := range f.Args() {
		if intern.IsNull(a) {
			return true
		}
	}
	return false
}

// nullFor derives the canonical null constant for an existential variable
// of a violation; the derivation hashes the violation's stable string key,
// so null names are reproducible across processes.
func nullFor(v constraint.Violation, varName string) string {
	sum := crc32.ChecksumIEEE([]byte(v.Key()))
	return fmt.Sprintf("%s%08x_%s", NullPrefix, sum, varName)
}

// NullAddition returns the single null-based justified insertion fixing a
// TGD violation: +F with F = h'(ψ) − D where h' extends h by mapping each
// existential variable to a fresh labeled null. It returns false when the
// violation is not a TGD violation or the head is (unexpectedly) already
// satisfied by the addition's absence.
func NullAddition(v constraint.Violation, d *relation.Database) (Op, bool) {
	c := v.Constraint
	if c.Kind() != constraint.TGD {
		return Op{}, false
	}
	h := v.H.Clone()
	for _, z := range c.ExistentialVars() {
		h[z.Sym()] = intern.S(nullFor(v, z.Name()))
	}
	var facts []relation.Fact
	seen := map[relation.Fact]struct{}{}
	for _, a := range h.ApplyAtoms(c.Head()) {
		f, err := relation.FactFromAtom(a)
		if err != nil {
			panic(fmt.Sprintf("ops: TGD head atom %s not grounded by null extension %s", a, h))
		}
		if d.Contains(f) {
			continue
		}
		if _, dup := seen[f]; !dup {
			seen[f] = struct{}{}
			facts = append(facts, f)
		}
	}
	if len(facts) == 0 {
		return Op{}, false
	}
	return Insert(facts...), true
}
