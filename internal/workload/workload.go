package workload

import (
	"fmt"
	"math/big"
	"math/rand"

	"repro/internal/constraint"
	"repro/internal/generators"
	"repro/internal/logic"
	"repro/internal/plan"
	"repro/internal/relation"
)

// PreferenceConfig sizes a preference tournament.
type PreferenceConfig struct {
	// Products is the number of distinct products.
	Products int
	// Prefs is the number of preference facts to draw.
	Prefs int
	// ConflictRate is the fraction of drawn preferences that also insert
	// their symmetric (violating) counterpart.
	ConflictRate float64
	Seed         int64
}

// Preferences generates a Pref database with controlled symmetric
// conflicts, plus the paper's asymmetry denial constraint.
func Preferences(cfg PreferenceConfig) (*relation.Database, *constraint.Set) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := relation.NewDatabase()
	product := func(i int) string { return fmt.Sprintf("p%d", i) }
	for len(d.Facts()) < cfg.Prefs {
		i := rng.Intn(cfg.Products)
		j := rng.Intn(cfg.Products)
		if i == j {
			continue
		}
		a, b := product(i), product(j)
		rev := relation.NewFact("Pref", b, a)
		if d.Contains(rev) && rng.Float64() >= cfg.ConflictRate {
			continue // avoid creating a conflict beyond the configured rate
		}
		d.Insert(relation.NewFact("Pref", a, b))
		if rng.Float64() < cfg.ConflictRate {
			d.Insert(rev)
		}
	}
	x, y := logic.Var("x"), logic.Var("y")
	dc := constraint.MustDC([]logic.Atom{
		logic.NewAtom("Pref", x, y),
		logic.NewAtom("Pref", y, x),
	})
	return d, constraint.NewSet(dc)
}

// KeyConfig sizes a key-violating relation R(k, v).
type KeyConfig struct {
	// Keys is the number of distinct key values.
	Keys int
	// Violations is the number of keys that receive a second conflicting
	// tuple (each violating key gets exactly two tuples; the rest get one).
	Violations int
	Seed       int64
}

// KeyViolations generates R(k,v) facts where `Violations` keys carry two
// distinct values, together with the key EGD R(x,y), R(x,z) → y = z.
func KeyViolations(cfg KeyConfig) (*relation.Database, *constraint.Set) {
	if cfg.Violations > cfg.Keys {
		cfg.Violations = cfg.Keys
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := relation.NewDatabase()
	for i := 0; i < cfg.Keys; i++ {
		k := fmt.Sprintf("k%d", i)
		d.Insert(relation.NewFact("R", k, fmt.Sprintf("v%d", rng.Intn(1000))))
		if i < cfg.Violations {
			d.Insert(relation.NewFact("R", k, fmt.Sprintf("w%d", rng.Intn(1000))))
		}
	}
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	key := constraint.MustEGD(
		[]logic.Atom{logic.NewAtom("R", x, y), logic.NewAtom("R", x, z)},
		y, z,
	)
	return d, constraint.NewSet(key)
}

// CliqueConfig sizes a huge-sequence-space / easy-structure instance.
type CliqueConfig struct {
	// Groups is the number of violating key groups (conflict cliques).
	Groups int
	// GroupSize is the number of facts per violating group (≥ 2; each
	// group is one key carrying GroupSize distinct values).
	GroupSize int
	// Core is the number of conflict-free facts (unique keys with a
	// single value) — the certain backbone.
	Core int
	Seed int64
}

// Cliques generates R(k,v) where Groups keys carry GroupSize conflicting
// values each and Core keys carry exactly one, with the key EGD
// R(x,y), R(x,z) → y = z. The family is built so the chain blows up
// while the logic stays shallow: each size-g clique alone has
// Σ_{j<g} g!/j! absorbing sequences and the full instance interleaves
// them across groups, so total sequences grow super-exponentially in
// Groups (a few dozen groups of size 4 pass 2^63), while the certain
// answers of Q(x) = ∃y R(x,y) are exactly the Core keys — every
// violating group can be emptied by justified deletions, so none of its
// keys is certain. The SAT engine decides that from Groups at-most-one
// constraints without exploring any chain; the DAG engine must merge
// (GroupSize+1)^Groups databases.
func Cliques(cfg CliqueConfig) (*relation.Database, *constraint.Set) {
	if cfg.GroupSize < 2 {
		cfg.GroupSize = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := relation.NewDatabase()
	for i := 0; i < cfg.Groups; i++ {
		k := fmt.Sprintf("g%d", i)
		for j := 0; j < cfg.GroupSize; j++ {
			d.Insert(relation.NewFact("R", k, fmt.Sprintf("v%d_%d", j, rng.Intn(1000))))
		}
	}
	for i := 0; i < cfg.Core; i++ {
		d.Insert(relation.NewFact("R", fmt.Sprintf("c%d", i), fmt.Sprintf("u%d", rng.Intn(1000))))
	}
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	key := constraint.MustEGD(
		[]logic.Atom{logic.NewAtom("R", x, y), logic.NewAtom("R", x, z)},
		y, z,
	)
	return d, constraint.NewSet(key)
}

// ChainConfig sizes a conflict chain.
type ChainConfig struct {
	// Facts is the number of E facts; the conflict graph is a path with
	// Facts−1 overlapping violations.
	Facts int
}

// Chain generates the conflict-chain instance E(n0,n1), E(n1,n2), ... with
// the denial constraint ¬∃x,y,z (E(x,y) ∧ E(y,z)): consecutive facts
// conflict, so the conflict graph is a path rather than the cliques key
// violations produce. Chains are the canonical family on which the
// walk-induced and sequence-uniform semantics *provably differ*: the path
// is asymmetric (middle facts sit in two violations, end facts in one), so
// repairs reached by few long sequences carry less uniform mass than walk
// mass. At Facts = 3 the repair keeping both end facts has walk
// probability 1/5 but uniform probability 1/9 (9 complete sequences, one
// of which — deleting the middle fact — produces it).
func Chain(cfg ChainConfig) (*relation.Database, *constraint.Set) {
	d := relation.NewDatabase()
	for i := 0; i < cfg.Facts; i++ {
		d.Insert(relation.NewFact("E", fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1)))
	}
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	dc := constraint.MustDC([]logic.Atom{
		logic.NewAtom("E", x, y),
		logic.NewAtom("E", y, z),
	})
	return d, constraint.NewSet(dc)
}

// RandomTrust assigns pseudo-random trust levels (k/denominator with
// 1 ≤ k ≤ denominator) to every fact of the database, mirroring the
// source-reliability levels of Example 5.
func RandomTrust(d *relation.Database, denominator int64, seed int64) *generators.Trust {
	rng := rand.New(rand.NewSource(seed))
	t := generators.NewTrust(big.NewRat(1, 2))
	for _, f := range d.Facts() {
		level := big.NewRat(1+rng.Int63n(denominator), denominator)
		if err := t.Set(f, level); err != nil {
			panic(err) // level is in (0,1] by construction
		}
	}
	return t
}

// InclusionConfig sizes an inclusion-dependency instance.
type InclusionConfig struct {
	// Rows is the number of R facts.
	Rows int
	// MissingRate is the fraction of R facts without the S fact required
	// by the inclusion dependency R(x,y) → ∃z S(y,z).
	MissingRate float64
	Seed        int64
}

// Inclusion generates an instance of the inclusion dependency
// R(x,y) → ∃z S(y,z) with a configurable fraction of dangling R facts.
// Repairing it exercises insertions (and hence failing-sequence handling).
func Inclusion(cfg InclusionConfig) (*relation.Database, *constraint.Set) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := relation.NewDatabase()
	for i := 0; i < cfg.Rows; i++ {
		y := fmt.Sprintf("y%d", i)
		d.Insert(relation.NewFact("R", fmt.Sprintf("x%d", i), y))
		if rng.Float64() >= cfg.MissingRate {
			d.Insert(relation.NewFact("S", y, fmt.Sprintf("z%d", i)))
		}
	}
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	ind := constraint.MustTGD(
		[]logic.Atom{logic.NewAtom("R", x, y)},
		[]logic.Atom{logic.NewAtom("S", y, z)},
	)
	return d, constraint.NewSet(ind)
}

// IslandsConfig sizes a many-component conflict archipelago.
type IslandsConfig struct {
	// Islands is the number of disjoint conflict components.
	Islands int
	// FactsPerIsland is the number of E facts per island; each island is a
	// conflict chain with FactsPerIsland−1 overlapping violations.
	FactsPerIsland int
	// IsoRatio is the fraction of islands whose constants follow the
	// canonical (sorted) order: those islands share one structural cache
	// key in core.ComputeFactored, so IsoRatio tunes the cache hit rate.
	// The remaining islands use randomly permuted node sequences — still
	// chains, still isomorphic in truth, but their first-occurrence
	// canonical forms differ, so they (almost surely) miss the cache.
	IsoRatio float64
	Seed     int64
}

// Islands generates Islands disjoint copies of the conflict chain of
// Chain, each over private constants, with the single denial constraint
// ¬∃x,y,z (E(x,y) ∧ E(y,z)). The conflict graph has exactly Islands
// components of FactsPerIsland facts each, which makes the family the
// canonical stress test for the factored engine: a million facts split
// into a hundred thousand ten-fact islands repair exactly, component by
// component, while the monolithic chain is unthinkably large.
func Islands(cfg IslandsConfig) (*relation.Database, *constraint.Set) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := relation.NewDatabase()
	iso := int(float64(cfg.Islands) * cfg.IsoRatio)
	nodes := make([]int, cfg.FactsPerIsland+1)
	for i := 0; i < cfg.Islands; i++ {
		for j := range nodes {
			nodes[j] = j
		}
		if i >= iso {
			rng.Shuffle(len(nodes), func(a, b int) { nodes[a], nodes[b] = nodes[b], nodes[a] })
		}
		// Zero-padded private constants: within a canonical island the
		// lexicographic fact order follows the chain, so all canonical
		// islands canonicalize to the same key.
		name := func(n int) string { return fmt.Sprintf("i%08d_n%03d", i, n) }
		for j := 0; j < cfg.FactsPerIsland; j++ {
			d.Insert(relation.NewFact("E", name(nodes[j]), name(nodes[j+1])))
		}
	}
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	dc := constraint.MustDC([]logic.Atom{
		logic.NewAtom("E", x, y),
		logic.NewAtom("E", y, z),
	})
	return d, constraint.NewSet(dc)
}

// OrdersCatalog builds the relational workload for the Section 5
// rewriting experiment: an orders table with key violations joined against
// a clean customers table, as plan-catalog views over an interned
// database (the same substrate the chain machinery runs on).
//
//	orders(oid, cust, amount)   key: oid
//	customers(cust, region)
type OrdersCatalog struct {
	Catalog *plan.Catalog
	// ViolatingOrders counts order ids with conflicting rows.
	ViolatingOrders int
}

// OrdersConfig sizes the engine workload.
type OrdersConfig struct {
	Orders    int
	Customers int
	// ViolationRate is the fraction of order ids with a second conflicting
	// row.
	ViolationRate float64
	Seed          int64
}

// Orders generates the catalog.
func Orders(cfg OrdersConfig) *OrdersCatalog {
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat := plan.NewCatalog()
	cat.MustAddTable("orders", "oid", "cust", "amount")
	cat.MustAddTable("customers", "cust", "region")
	violating := 0
	for i := 0; i < cfg.Orders; i++ {
		oid := fmt.Sprintf("o%d", i)
		cust := fmt.Sprintf("c%d", rng.Intn(cfg.Customers))
		cat.MustInsert("orders", oid, cust, fmt.Sprintf("%d", 10+rng.Intn(990)))
		if rng.Float64() < cfg.ViolationRate {
			violating++
			// Tables are fact sets, so the conflicting row must differ from
			// the first in cust or amount; redraw the (vanishingly rare)
			// exact duplicates.
			for {
				cust2 := fmt.Sprintf("c%d", rng.Intn(cfg.Customers))
				added, err := cat.Insert("orders", oid, cust2, fmt.Sprintf("%d", 10+rng.Intn(990)))
				if err != nil {
					panic(err)
				}
				if added {
					break
				}
			}
		}
	}
	regions := []string{"north", "south", "east", "west"}
	for i := 0; i < cfg.Customers; i++ {
		cat.MustInsert("customers", fmt.Sprintf("c%d", i), regions[rng.Intn(len(regions))])
	}
	if err := cat.DeclareKey("orders", "oid"); err != nil {
		panic(err)
	}
	cat.Seal()
	return &OrdersCatalog{Catalog: cat, ViolatingOrders: violating}
}
