// Package constraint implements the three constraint classes of the paper
// — tuple-generating dependencies (TGDs), equality-generating dependencies
// (EGDs), and denial constraints (DCs) — together with satisfaction
// checking and the violation sets V(D,Σ) of Definition 2.
//
// # Key types
//
//   - Constraint: one dependency; Kind() reports TGD/EGD/DC. Constructors
//     (NewTGD/NewEGD/NewDC and Must* variants) validate shape.
//   - Set: an immutable constraint set Σ with derived facts the layers
//     above branch on: HasTGDs (the DAG-collapse gate), key-shaped-EGD
//     recognition (the practical scheme), MayIntroduceViolations (the
//     req2 fast path).
//   - Violation: one homomorphism witnessing a violated constraint,
//     interned per constraint so violation identity is an integer id and
//     a violation's canonical Key() is built at most once.
//   - Violations: an id-sorted violation set. FindViolations computes
//     V(D,Σ) from scratch; UpdateViolationsDiff maintains it across a
//     single operation (delta.go — the Section 6 localization idea), which
//     is what makes a chain step O(affected) instead of O(|D|).
//
// # Invariants
//
//   - Violations sets are immutable once built; the diff maintenance
//     returns a new set plus the violations that disappeared (the chain
//     layer's req2 bookkeeping depends on that "gone" list being exact).
//   - For EGD/DC constraints, violations only ever disappear along a
//     deletion-only walk — the monotonicity the repair layer's
//     parent-extension filtering and the markov DAG collapse both lean on.
//
// # Neighbors
//
// Below: internal/logic, internal/relation. Above: internal/ops (justified
// tests consult violations), internal/repair (state bookkeeping),
// internal/markov (collapsibility asks Sigma().HasTGDs()).
package constraint
