package main

// E19: the SAT backend for certain answers. The chain engines price a
// query by the size of the repair space they must enumerate or merge;
// the SAT pipeline prices it by the number of conflicted facts, so on
// the cliques family (g independent 3-fact violating groups, 4^g
// repairs) it keeps answering exactly long after the factored engine's
// enumeration budget and any DAG state budget are gone.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/generators"
	"repro/internal/markov"
	"repro/internal/repair"
	"repro/internal/workload"
)

func init() {
	register("E19", "extension: SAT certain answers past any chain budget", func() error {
		fmt.Println("  groups |              repairs | factored OCA | sat time | certain")
		q := existsKeyQuery()
		points := []int{2, 4, 8, 22, 64}
		if fullScale {
			points = append(points, 256)
		}
		const core5 = 5
		for _, g := range points {
			d, sigma := workload.Cliques(workload.CliqueConfig{
				Groups: g, GroupSize: 3, Core: core5, Seed: 11,
			})
			inst := repair.MustInstance(d, sigma)
			fac, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{})
			if err != nil {
				return err
			}

			ocaStatus := "exact"
			if _, err := fac.OCA(q); err != nil {
				if !errors.Is(err, core.ErrEnumerationBudget) {
					return err
				}
				ocaStatus = "over budget"
			}

			start := time.Now()
			res, err := core.ComputeCertainSAT(d, sigma, q)
			if err != nil {
				return err
			}
			satTime := time.Since(start).Round(time.Microsecond)

			// Factored.Certain is the per-instance engine selection: the
			// OCA filter while in budget, the SAT fallback beyond it. Both
			// routes must agree with the direct SAT engine — and the
			// certain set is provably the conflict-free core keys.
			fc, err := fac.Certain(q)
			if err != nil {
				return err
			}
			if err := sameTuples(fc, res.Answers); err != nil {
				return fmt.Errorf("groups=%d: factored vs sat: %w", g, err)
			}
			if len(res.Answers) != core5 {
				return fmt.Errorf("groups=%d: certain = %v, want the %d core keys", g, res.Answers, core5)
			}

			fmt.Printf("  %6d | %20s | %-12s | %8s | %d tuples (%d solver calls)\n",
				g, fac.NumRepairs(), ocaStatus, satTime, len(res.Answers), res.Solved)
		}
		fmt.Println("  every row's certain set is exactly the 5 conflict-free core keys: a")
		fmt.Println("  violated key is never certain (the chain can delete its whole group),")
		fmt.Println("  and the SAT engine proves it per candidate — UNSAT of 'some repair")
		fmt.Println("  avoids every witness' — without touching the 4^g repair space.")
		return nil
	})
}

func sameTuples(a, b [][]string) error {
	if len(a) != len(b) {
		return fmt.Errorf("%v vs %v", a, b)
	}
	for i := range a {
		if fo.TupleKey(a[i]) != fo.TupleKey(b[i]) {
			return fmt.Errorf("tuple %d: %v vs %v", i, a[i], b[i])
		}
	}
	return nil
}
