// Package relation implements the relational storage substrate: ground
// facts, database instances with per-predicate indexes, active domains, and
// the base B(D,Σ) over which repairing operations are defined.
package relation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/logic"
)

// Fact is a ground atom R(c1, ..., cn): a predicate applied to constants.
// Facts are immutable once constructed.
type Fact struct {
	Pred string
	Args []string
}

// NewFact constructs a fact from a predicate name and constant names.
func NewFact(pred string, args ...string) Fact {
	return Fact{Pred: pred, Args: args}
}

// FactFromAtom converts a ground atom to a fact. It returns an error when
// the atom contains variables.
func FactFromAtom(a logic.Atom) (Fact, error) {
	args := make([]string, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() {
			return Fact{}, fmt.Errorf("atom %s is not ground: variable %s", a, t.Name())
		}
		args[i] = t.Name()
	}
	return Fact{Pred: a.Pred, Args: args}, nil
}

// MustFactFromAtom is FactFromAtom that panics on non-ground atoms; for use
// with atoms that are ground by construction.
func MustFactFromAtom(a logic.Atom) Fact {
	f, err := FactFromAtom(a)
	if err != nil {
		panic(err)
	}
	return f
}

// FactsFromAtoms converts a list of ground atoms into facts.
func FactsFromAtoms(atoms []logic.Atom) ([]Fact, error) {
	out := make([]Fact, len(atoms))
	for i, a := range atoms {
		f, err := FactFromAtom(a)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

// Atom converts the fact back into a ground atom.
func (f Fact) Atom() logic.Atom {
	ts := make([]logic.Term, len(f.Args))
	for i, c := range f.Args {
		ts[i] = logic.Const(c)
	}
	return logic.Atom{Pred: f.Pred, Args: ts}
}

// Key returns the canonical encoding of the fact, usable as a map key.
// Every token is length-prefixed, so distinct facts never collide
// regardless of the characters in predicate or constants; the encoding is
// deliberately cheap since Key sits on the hot path of violation
// maintenance and chain walks.
func (f Fact) Key() string {
	n := len(f.Pred) + 8
	for _, a := range f.Args {
		n += len(a) + 8
	}
	var b strings.Builder
	b.Grow(n)
	b.WriteString(strconv.Itoa(len(f.Pred)))
	b.WriteByte(':')
	b.WriteString(f.Pred)
	for _, a := range f.Args {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(len(a)))
		b.WriteByte(':')
		b.WriteString(a)
	}
	return b.String()
}

// String renders the fact in the text format, e.g. R(a, b).
func (f Fact) String() string { return f.Atom().String() }

// Equal reports whether two facts are identical.
func (f Fact) Equal(g Fact) bool {
	if f.Pred != g.Pred || len(f.Args) != len(g.Args) {
		return false
	}
	for i := range f.Args {
		if f.Args[i] != g.Args[i] {
			return false
		}
	}
	return true
}

// CompareFacts orders facts by predicate, then arity, then argument values;
// it is used to produce deterministic output.
func CompareFacts(a, b Fact) int {
	if a.Pred != b.Pred {
		if a.Pred < b.Pred {
			return -1
		}
		return 1
	}
	if len(a.Args) != len(b.Args) {
		if len(a.Args) < len(b.Args) {
			return -1
		}
		return 1
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			if a.Args[i] < b.Args[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// SortFacts sorts a slice of facts in place into the canonical order.
func SortFacts(fs []Fact) {
	sort.Slice(fs, func(i, j int) bool { return CompareFacts(fs[i], fs[j]) < 0 })
}

// FactsString renders a set of facts as a sorted, comma-separated list in
// braces, e.g. {R(a, b), T(a, b)}.
func FactsString(fs []Fact) string {
	sorted := make([]Fact, len(fs))
	copy(sorted, fs)
	SortFacts(sorted)
	parts := make([]string, len(sorted))
	for i, f := range sorted {
		parts[i] = f.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
