package relation

import (
	"repro/internal/intern"
	"repro/internal/logic"
)

// This file implements backtracking homomorphism search from conjunctions
// of atoms into databases. A homomorphism h maps the variables of the atoms
// to constants (it is the identity on constants) so that every atom lands on
// a fact of the database. Constraint satisfaction, violation detection, and
// conjunctive-query evaluation are all phrased in terms of this search.
//
// With interned symbols the inner unification loop is pure integer
// comparison: an atom argument either pins a constant symbol or binds a
// variable symbol to the candidate fact's argument symbol.

// ForEachHom enumerates the homomorphisms from atoms into d that extend
// base. The callback receives a substitution owned by the callee (clone it
// to retain); returning false stops the enumeration early. The base
// substitution itself is not modified. ForEachHom reports whether the
// enumeration ran to completion (i.e. was not stopped by the callback).
func ForEachHom(atoms []logic.Atom, d *Database, base logic.Subst, fn func(logic.Subst) bool) bool {
	if len(atoms) == 0 {
		return fn(base.Clone())
	}
	order := planOrder(atoms, d, base)
	cur := base.Clone()
	return matchFrom(order, 0, d, cur, fn)
}

// FindHoms returns all homomorphisms from atoms into d extending base
// (pass nil for an unconstrained search).
func FindHoms(atoms []logic.Atom, d *Database, base logic.Subst) []logic.Subst {
	if base == nil {
		base = logic.NewSubst()
	}
	var out []logic.Subst
	ForEachHom(atoms, d, base, func(h logic.Subst) bool {
		out = append(out, h.Clone())
		return true
	})
	return out
}

// HasHom reports whether at least one homomorphism from atoms into d
// extends base (pass nil for an unconstrained search).
func HasHom(atoms []logic.Atom, d *Database, base logic.Subst) bool {
	if base == nil {
		base = logic.NewSubst()
	}
	found := false
	ForEachHom(atoms, d, base, func(logic.Subst) bool {
		found = true
		return false
	})
	return found
}

// planOrder chooses an evaluation order for the atoms: at each step pick the
// atom with the smallest estimated number of candidate facts, preferring
// atoms whose variables are already bound. This is the classic greedy
// join-ordering heuristic; it keeps the backtracking search shallow on the
// constraint bodies that arise in practice.
func planOrder(atoms []logic.Atom, d *Database, base logic.Subst) []logic.Atom {
	remaining := make([]logic.Atom, len(atoms))
	copy(remaining, atoms)
	bound := map[intern.Sym]bool{}
	for v := range base {
		bound[v] = true
	}
	order := make([]logic.Atom, 0, len(atoms))
	for len(remaining) > 0 {
		bestIdx, bestScore := 0, int(^uint(0)>>1)
		for i, a := range remaining {
			score := len(d.FactsByPred(a.Pred))
			// Every argument that is a constant or an already-bound
			// variable filters candidates; reward such atoms by halving.
			for _, t := range a.Args {
				if t.IsConst() || (t.IsVar() && bound[t.Sym()]) {
					score /= 2
				}
			}
			if score < bestScore {
				bestScore, bestIdx = score, i
			}
		}
		chosen := remaining[bestIdx]
		order = append(order, chosen)
		for _, t := range chosen.Args {
			if t.IsVar() {
				bound[t.Sym()] = true
			}
		}
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return order
}

// matchFrom extends cur to cover order[i:]; it reports whether enumeration
// completed without the callback requesting a stop.
func matchFrom(order []logic.Atom, i int, d *Database, cur logic.Subst, fn func(logic.Subst) bool) bool {
	if i == len(order) {
		return fn(cur)
	}
	atom := order[i]
	nargs := len(atom.Args)
	for _, f := range d.FactsByPred(atom.Pred) {
		fargs := f.Args()
		if len(fargs) != nargs {
			continue
		}
		// Attempt to unify atom with fact under cur, tracking fresh
		// bindings so they can be undone on backtrack.
		var stackBuf [8]intern.Sym
		added := stackBuf[:0]
		ok := true
		for j, t := range atom.Args {
			c := fargs[j]
			if t.IsConst() {
				if t.Sym() != c {
					ok = false
					break
				}
				continue
			}
			v := t.Sym()
			if existing, bound := cur[v]; bound {
				if existing != c {
					ok = false
					break
				}
				continue
			}
			cur[v] = c
			added = append(added, v)
		}
		if ok {
			if !matchFrom(order, i+1, d, cur, fn) {
				for _, v := range added {
					delete(cur, v)
				}
				return false
			}
		}
		for _, v := range added {
			delete(cur, v)
		}
	}
	return true
}

// CountHoms returns the number of homomorphisms from atoms into d extending
// base; used by benchmarks and tests.
func CountHoms(atoms []logic.Atom, d *Database, base logic.Subst) int {
	if base == nil {
		base = logic.NewSubst()
	}
	n := 0
	ForEachHom(atoms, d, base, func(logic.Subst) bool {
		n++
		return true
	})
	return n
}
