package relation

import (
	"testing"

	"repro/internal/intern"
	"repro/internal/logic"
)

// bound reports whether h maps variable name x to constant name c.
func bound(h logic.Subst, x, c string) bool {
	got, ok := h.LookupName(x)
	return ok && got == c
}

func atom(pred string, terms ...logic.Term) logic.Atom { return logic.NewAtom(pred, terms...) }

func v(n string) logic.Term { return logic.Var(n) }
func c(n string) logic.Term { return logic.Const(n) }

func TestFindHomsSingleAtom(t *testing.T) {
	d := FromFacts(NewFact("R", "a", "b"), NewFact("R", "a", "c"))
	homs := FindHoms([]logic.Atom{atom("R", v("x"), v("y"))}, d, nil)
	if len(homs) != 2 {
		t.Fatalf("found %d homomorphisms, want 2", len(homs))
	}
	for _, h := range homs {
		if !bound(h, "x", "a") {
			t.Errorf("x bound wrongly in %v, want a", h)
		}
	}
}

func TestFindHomsJoin(t *testing.T) {
	d := FromFacts(
		NewFact("R", "a", "b"),
		NewFact("R", "b", "c"),
		NewFact("R", "c", "d"),
	)
	// Path of length 2: R(x,y), R(y,z).
	homs := FindHoms([]logic.Atom{
		atom("R", v("x"), v("y")),
		atom("R", v("y"), v("z")),
	}, d, nil)
	if len(homs) != 2 {
		t.Fatalf("found %d homomorphisms, want 2 (a-b-c and b-c-d)", len(homs))
	}
}

func TestFindHomsConstants(t *testing.T) {
	d := FromFacts(NewFact("R", "a", "b"), NewFact("R", "c", "b"))
	homs := FindHoms([]logic.Atom{atom("R", c("a"), v("y"))}, d, nil)
	if len(homs) != 1 || !bound(homs[0], "y", "b") {
		t.Fatalf("homs = %v", homs)
	}
	if HasHom([]logic.Atom{atom("R", c("z"), v("y"))}, d, nil) {
		t.Error("no fact matches constant z")
	}
}

func TestFindHomsRepeatedVariable(t *testing.T) {
	d := FromFacts(NewFact("R", "a", "a"), NewFact("R", "a", "b"))
	homs := FindHoms([]logic.Atom{atom("R", v("x"), v("x"))}, d, nil)
	if len(homs) != 1 || !bound(homs[0], "x", "a") {
		t.Fatalf("homs = %v, want single x->a", homs)
	}
}

func TestFindHomsSelfJoinSameFact(t *testing.T) {
	// Two body atoms may map to the same fact.
	d := FromFacts(NewFact("R", "a", "b"))
	homs := FindHoms([]logic.Atom{
		atom("R", v("x"), v("y")),
		atom("R", v("x"), v("z")),
	}, d, nil)
	if len(homs) != 1 {
		t.Fatalf("found %d homomorphisms, want 1", len(homs))
	}
	if !bound(homs[0], "y", "b") || !bound(homs[0], "z", "b") {
		t.Errorf("hom = %v", homs[0])
	}
}

func TestFindHomsWithBase(t *testing.T) {
	d := FromFacts(NewFact("R", "a", "b"), NewFact("R", "c", "d"))
	base := logic.Subst{intern.S("x"): intern.S("c")}
	homs := FindHoms([]logic.Atom{atom("R", v("x"), v("y"))}, d, base)
	if len(homs) != 1 || !bound(homs[0], "y", "d") {
		t.Fatalf("homs = %v", homs)
	}
	// The base must not be mutated.
	if len(base) != 1 {
		t.Errorf("base mutated: %v", base)
	}
}

func TestFindHomsEmptyAtoms(t *testing.T) {
	d := FromFacts(NewFact("R", "a"))
	homs := FindHoms(nil, d, logic.Subst{intern.S("x"): intern.S("q")})
	if len(homs) != 1 || !bound(homs[0], "x", "q") {
		t.Fatalf("empty conjunction must yield exactly the base, got %v", homs)
	}
}

func TestForEachHomEarlyStop(t *testing.T) {
	d := FromFacts(NewFact("R", "a"), NewFact("R", "b"), NewFact("R", "c"))
	calls := 0
	completed := ForEachHom([]logic.Atom{atom("R", v("x"))}, d, logic.NewSubst(), func(logic.Subst) bool {
		calls++
		return false
	})
	if completed {
		t.Error("enumeration must report early stop")
	}
	if calls != 1 {
		t.Errorf("callback called %d times, want 1", calls)
	}
}

func TestCountHoms(t *testing.T) {
	d := FromFacts(NewFact("E", "1", "2"), NewFact("E", "2", "1"))
	// Directed 2-cycles: E(x,y), E(y,x).
	n := CountHoms([]logic.Atom{
		atom("E", v("x"), v("y")),
		atom("E", v("y"), v("x")),
	}, d, nil)
	if n != 2 {
		t.Errorf("CountHoms = %d, want 2", n)
	}
}

func TestFindHomsArityMismatchIgnored(t *testing.T) {
	d := FromFacts(NewFact("R", "a"), NewFact("R", "a", "b"))
	homs := FindHoms([]logic.Atom{atom("R", v("x"), v("y"))}, d, nil)
	if len(homs) != 1 {
		t.Fatalf("homs = %v, want only the arity-2 fact", homs)
	}
}

func TestHomomorphismTriangleQuery(t *testing.T) {
	// Triangles in a small directed graph.
	d := FromFacts(
		NewFact("E", "a", "b"), NewFact("E", "b", "c"), NewFact("E", "c", "a"),
		NewFact("E", "a", "d"),
	)
	triangle := []logic.Atom{
		atom("E", v("x"), v("y")),
		atom("E", v("y"), v("z")),
		atom("E", v("z"), v("x")),
	}
	homs := FindHoms(triangle, d, nil)
	if len(homs) != 3 {
		t.Errorf("found %d triangle homomorphisms, want 3 rotations", len(homs))
	}
}
