#!/usr/bin/env bash
# check_alloc_budget.sh — allocation regression gate for the exact engine.
#
# Runs BenchmarkExactDAG/conflicts=5 with -benchmem and fails when
# allocs/op exceeds the checked-in budget (scripts/alloc_budget.txt) by
# more than 20%. Allocation counts — unlike wall-clock time — are exact
# and machine-independent for a deterministic benchmark, so a tight gate
# is safe on shared CI runners where ns/op would be pure noise.
#
# Usage: scripts/check_alloc_budget.sh [slack_percent]
set -euo pipefail

cd "$(dirname "$0")/.."

slack="${1:-20}"
budget="$(grep -v '^#' scripts/alloc_budget.txt | grep -m1 .)"

out="$(go test -run '^$' -bench 'BenchmarkExactDAG/conflicts=5$' -benchmem -benchtime 5x -timeout 10m .)"
echo "$out"

allocs="$(echo "$out" | awk '/BenchmarkExactDAG\/conflicts=5/ {for (i=1; i<NF; i++) if ($(i+1) == "allocs/op") print $i}')"
if [ -z "$allocs" ]; then
  echo "check_alloc_budget: could not parse allocs/op from benchmark output" >&2
  exit 2
fi

limit=$(( budget + budget * slack / 100 ))
echo "allocs/op: $allocs (budget $budget, limit $limit = +${slack}%)"
if [ "$allocs" -gt "$limit" ]; then
  echo "check_alloc_budget: FAIL — allocs/op regressed past the budget." >&2
  echo "If the regression is intentional, re-measure and update scripts/alloc_budget.txt." >&2
  exit 1
fi
echo "check_alloc_budget: OK"
