package abc

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/relation"
)

// TestIslandHashContentBased: the hash is a pure function of the island's
// data — equal across independently built partitions of the same database,
// unchanged on islands carried across an unrelated Update, and spread over
// distinct islands well enough to shard on.
func TestIslandHashContentBased(t *testing.T) {
	sigma := partitionSet(t)
	d := relation.NewDatabase()
	for _, c := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		d.Insert(relation.NewFact("E", c, c+"x"))
		d.Insert(relation.NewFact("E", c+"x", c+"y"))
	}
	vs := constraint.FindViolations(d, sigma)
	p1 := NewPartition(vs)
	p2 := NewPartition(constraint.FindViolations(d, sigma))
	if p1.Len() == 0 {
		t.Fatal("fixture produced no islands")
	}
	if p1.Len() != p2.Len() {
		t.Fatalf("rebuild changed the partition: %d vs %d islands", p1.Len(), p2.Len())
	}
	seen := map[uint64]bool{}
	for i, isl := range p1.Islands() {
		h := isl.Hash()
		if other := p2.Islands()[i].Hash(); other != h {
			t.Fatalf("island %d: hash %#x differs from independent rebuild's %#x", i, h, other)
		}
		if h != isl.Hash() {
			t.Fatalf("island %d: hash not stable across calls", i)
		}
		seen[h] = true
	}
	if len(seen) < 2 {
		t.Fatalf("all %d islands hash identically; useless for sharding", p1.Len())
	}

	// An update in one island must not move any carried island's hash.
	extra := relation.NewFact("E", "zzz", "zzzx")
	d2 := d.Clone()
	d2.Insert(extra)
	after, elim, intro := constraint.UpdateViolationsDelta(d2, sigma, vs, []relation.Fact{extra}, true)
	_ = after
	next, _, _ := p1.Update(elim, intro, []relation.Fact{extra})
	byFirst := map[relation.Fact]uint64{}
	for _, isl := range p1.Islands() {
		byFirst[isl.Facts[0]] = isl.Hash()
	}
	for _, isl := range next.Islands() {
		if want, carried := byFirst[isl.Facts[0]]; carried && isl.Hash() != want {
			t.Fatalf("island %v changed hash across an unrelated update", isl.Facts[0])
		}
	}
}
