package plan

import (
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/logic"
)

func sampleCatalog() *Catalog {
	cat := NewCatalog()
	cat.MustAddTable("orders", "oid", "cust", "amount").
		MustInsert("orders", "o1", "c1", "100").
		MustInsert("orders", "o1", "c2", "150"). // key violation on oid
		MustInsert("orders", "o2", "c1", "200").
		MustInsert("orders", "o3", "c3", "50")
	cat.MustAddTable("customers", "cust", "region").
		MustInsert("customers", "c1", "north").
		MustInsert("customers", "c2", "south").
		MustInsert("customers", "c3", "north")
	if err := cat.DeclareKey("orders", "oid"); err != nil {
		panic(err)
	}
	cat.Seal()
	return cat
}

func TestScan(t *testing.T) {
	cat := sampleCatalog()
	out, err := Scan{Table: "orders"}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 {
		t.Errorf("rows = %d, want 4", out.Len())
	}
	if _, err := (Scan{Table: "missing"}).Exec(cat); err == nil {
		t.Error("unknown table must fail")
	}
}

func TestSelect(t *testing.T) {
	cat := sampleCatalog()
	out, err := Select{
		Input: Scan{Table: "orders"},
		Cond:  ColEqVal{Col: "cust", Op: "=", Val: "c1"},
	}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("rows = %d, want 2", out.Len())
	}
	out, err = Select{
		Input: Scan{Table: "orders"},
		Cond:  ColEqVal{Col: "amount", Op: ">=", Val: "150"},
	}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("numeric >= filter rows = %d, want 2", out.Len())
	}
	// A value that was never interned anywhere can't match…
	out, err = Select{
		Input: Scan{Table: "orders"},
		Cond:  ColEqVal{Col: "cust", Op: "=", Val: "never-seen-constant"},
	}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("uninterned = filter rows = %d, want 0", out.Len())
	}
	// …and its negation matches everything.
	out, err = Select{
		Input: Scan{Table: "orders"},
		Cond:  ColEqVal{Col: "cust", Op: "!=", Val: "never-seen-constant-2"},
	}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 {
		t.Errorf("uninterned != filter rows = %d, want 4", out.Len())
	}
}

func TestSelectCompound(t *testing.T) {
	cat := sampleCatalog()
	out, err := Select{
		Input: Scan{Table: "orders"},
		Cond: AndCond{Conds: []Cond{
			ColEqVal{Col: "cust", Op: "=", Val: "c1"},
			NotCond{C: ColEqVal{Col: "amount", Op: "<", Val: "150"}},
		}},
	}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.RowStrings(0)[0] != "o2" {
		t.Errorf("rows = %v", out.Sorted())
	}
	out, err = Select{
		Input: Scan{Table: "orders"},
		Cond: OrCond{Conds: []Cond{
			ColEqVal{Col: "oid", Op: "=", Val: "o2"},
			ColEqVal{Col: "oid", Op: "=", Val: "o3"},
		}},
	}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("or-filter rows = %d, want 2", out.Len())
	}
}

func TestSelectUnknownColumn(t *testing.T) {
	cat := sampleCatalog()
	_, err := Select{
		Input: Scan{Table: "orders"},
		Cond:  ColEqVal{Col: "nope", Op: "=", Val: "1"},
	}.Exec(cat)
	if err == nil {
		t.Error("unknown column must fail")
	}
}

func TestProject(t *testing.T) {
	cat := sampleCatalog()
	out, err := Project{Input: Scan{Table: "orders"}, Cols: []string{"cust"}}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Cols) != 1 || out.Cols[0] != "cust" {
		t.Errorf("cols = %v", out.Cols)
	}
	if out.Len() != 4 {
		t.Errorf("projection keeps bag semantics: rows = %d, want 4", out.Len())
	}
	d, err := Distinct{Input: Project{Input: Scan{Table: "orders"}, Cols: []string{"cust"}}}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Errorf("distinct customers = %d, want 3", d.Len())
	}
}

func TestJoin(t *testing.T) {
	cat := sampleCatalog()
	out, err := Join{L: Scan{Table: "orders"}, R: Scan{Table: "customers"}}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	// Natural join on cust: every order row matches exactly one customer.
	if out.Len() != 4 {
		t.Errorf("join rows = %d, want 4", out.Len())
	}
	wantCols := []string{"oid", "cust", "amount", "region"}
	if len(out.Cols) != len(wantCols) {
		t.Fatalf("join cols = %v", out.Cols)
	}
	for i, c := range wantCols {
		if out.Cols[i] != c {
			t.Errorf("col[%d] = %s, want %s", i, out.Cols[i], c)
		}
	}
}

func TestJoinCrossProduct(t *testing.T) {
	cat := NewCatalog()
	cat.MustAddTable("a", "x").MustInsert("a", "1").MustInsert("a", "2")
	cat.MustAddTable("b", "y").MustInsert("b", "p").MustInsert("b", "q").MustInsert("b", "r")
	out, err := Join{L: Scan{Table: "a"}, R: Scan{Table: "b"}}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 6 {
		t.Errorf("cross product rows = %d, want 6", out.Len())
	}
}

func TestDiff(t *testing.T) {
	cat := sampleCatalog()
	del := NewRelation("orders_del", "oid", "cust", "amount").Add("o1", "c2", "150")
	out, err := Diff{L: Scan{Table: "orders"}, R: Literal{Rel: del}}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Errorf("rows after diff = %d, want 3", out.Len())
	}
	// Mismatched headers fail.
	bad := NewRelation("bad", "only")
	if _, err := (Diff{L: Scan{Table: "orders"}, R: Literal{Rel: bad}}).Exec(cat); err == nil {
		t.Error("mismatched diff must fail")
	}
}

func TestUnionAndGroupCount(t *testing.T) {
	cat := sampleCatalog()
	u, err := Union{L: Scan{Table: "orders"}, R: Scan{Table: "orders"}}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 8 {
		t.Errorf("union rows = %d, want 8", u.Len())
	}
	g, err := GroupCount{Input: Scan{Table: "orders"}, By: []string{"cust"}, CountAs: "n"}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Fatalf("groups = %d, want 3", g.Len())
	}
	for i := range g.Rows {
		row := g.RowStrings(i)
		if row[0] == "c1" && row[1] != "2" {
			t.Errorf("count(c1) = %s, want 2", row[1])
		}
	}
}

// TestRewriteIdentity: rewriting with empty R_del relations leaves query
// results unchanged.
func TestRewriteIdentity(t *testing.T) {
	cat := sampleCatalog()
	p := Project{
		Input: Join{L: Scan{Table: "orders"}, R: Scan{Table: "customers"}},
		Cols:  []string{"oid", "region"},
	}
	orig, err := p.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	emptyDel := NewRelation("orders_del", "oid", "cust", "amount")
	rewritten := RewriteScans(p, map[string]*Relation{"orders": emptyDel})
	out, err := rewritten.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(out) {
		t.Errorf("rewrite with empty R_del changed the answer:\n%s\n%s", orig, out)
	}
}

func TestRewriteRemovesRows(t *testing.T) {
	cat := sampleCatalog()
	p := Select{Input: Scan{Table: "orders"}, Cond: ColEqVal{Col: "oid", Op: "=", Val: "o1"}}
	del := NewRelation("orders_del", "oid", "cust", "amount").Add("o1", "c2", "150")
	rewritten := RewriteScans(p, map[string]*Relation{"orders": del})
	out, err := rewritten.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.RowStrings(0)[1] != "c1" {
		t.Errorf("rows = %v", out.Sorted())
	}
}

func TestRelationEqualIgnoresOrder(t *testing.T) {
	a := NewRelation("t", "x").Add("1").Add("2")
	b := NewRelation("t", "x").Add("2").Add("1")
	if !a.Equal(b) {
		t.Error("row order must not matter")
	}
	c := NewRelation("t", "x").Add("1").Add("1")
	if a.Equal(c) {
		t.Error("bag multiplicity matters")
	}
}

func TestCatalogKeys(t *testing.T) {
	cat := sampleCatalog()
	if got := cat.Key("orders"); len(got) != 1 || got[0] != 0 {
		t.Errorf("Key(orders) = %v", got)
	}
	if got := cat.KeyedTables(); len(got) != 1 || got[0] != "orders" {
		t.Errorf("KeyedTables = %v", got)
	}
	if err := cat.DeclareKey("orders", "nope"); err == nil {
		t.Error("unknown key column must fail")
	}
	if err := cat.DeclareKey("missing", "x"); err == nil {
		t.Error("unknown table must fail")
	}
}

func TestCatalogViews(t *testing.T) {
	cat := sampleCatalog()
	if got := cat.Count("orders"); got != 4 {
		t.Errorf("Count(orders) = %d, want 4", got)
	}
	if got := len(cat.Facts("customers")); got != 3 {
		t.Errorf("Facts(customers) = %d, want 3", got)
	}
	if got := cat.Tables(); len(got) != 2 || got[0] != "customers" || got[1] != "orders" {
		t.Errorf("Tables = %v", got)
	}
	// With swaps the backing database without copying schemas.
	clone := cat.DB().Clone()
	f := cat.Facts("orders")[0]
	clone.Delete(f)
	view := cat.With(clone)
	if got := view.Count("orders"); got != 3 {
		t.Errorf("view Count(orders) = %d, want 3", got)
	}
	if got := cat.Count("orders"); got != 4 {
		t.Errorf("base catalog mutated: Count(orders) = %d, want 4", got)
	}
	// Duplicate inserts are set no-ops.
	added, err := cat.Insert("customers", "c1", "north")
	if err != nil {
		t.Fatal(err)
	}
	if added {
		t.Error("re-inserting an existing row must report no change")
	}
}

func TestCatalogErrors(t *testing.T) {
	cat := NewCatalog()
	if err := cat.AddTable(""); err == nil {
		t.Error("empty table name must fail")
	}
	if err := cat.AddTable("t", "x", "x"); err == nil {
		t.Error("duplicate columns must fail")
	}
	if err := cat.AddTable("t", "x"); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable("t", "y"); err == nil {
		t.Error("duplicate table must fail")
	}
	if _, err := cat.Insert("t", "1", "2"); err == nil {
		t.Error("row width mismatch must fail")
	}
	if err := cat.DeclareKey("t"); err == nil {
		t.Error("empty key must fail")
	}
}

func TestColEqColCondition(t *testing.T) {
	cat := NewCatalog()
	cat.MustAddTable("pairs", "x", "y").
		MustInsert("pairs", "1", "1").
		MustInsert("pairs", "1", "2").
		MustInsert("pairs", "3", "2")
	out, err := Select{Input: Scan{Table: "pairs"}, Cond: ColEqCol{Col1: "x", Op: "=", Col2: "y"}}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.RowStrings(0)[0] != "1" {
		t.Errorf("rows = %v", out.Sorted())
	}
	out, err = Select{Input: Scan{Table: "pairs"}, Cond: ColEqCol{Col1: "x", Op: ">", Col2: "y"}}.Exec(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.RowStrings(0)[0] != "3" {
		t.Errorf("rows = %v", out.Sorted())
	}
	if _, err := (Select{Input: Scan{Table: "pairs"}, Cond: ColEqCol{Col1: "zz", Op: "=", Col2: "y"}}).Exec(cat); err == nil {
		t.Error("unknown column must fail")
	}
	if _, err := (Select{Input: Scan{Table: "pairs"}, Cond: ColEqCol{Col1: "x", Op: "~", Col2: "y"}}).Exec(cat); err == nil {
		t.Error("unknown operator must fail")
	}
}

func TestPlanAndCondStrings(t *testing.T) {
	p := Project{
		Input: Select{
			Input: Join{L: Scan{Table: "a"}, R: Scan{Table: "b"}},
			Cond: AndCond{Conds: []Cond{
				ColEqVal{Col: "x", Op: "=", Val: "1"},
				NotCond{C: OrCond{Conds: []Cond{
					ColEqCol{Col1: "x", Op: "<", Col2: "y"},
				}}},
			}},
		},
		Cols: []string{"x"},
	}
	s := p.String()
	for _, want := range []string{"π[x]", "σ[", "a ⋈ b", `x = "1"`, "NOT", "x < y"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string %q missing %q", s, want)
		}
	}
	more := []Plan{
		Diff{L: Scan{Table: "a"}, R: Scan{Table: "b"}},
		Union{L: Scan{Table: "a"}, R: Scan{Table: "b"}},
		Distinct{Input: Scan{Table: "a"}},
		GroupCount{Input: Scan{Table: "a"}, By: []string{"x"}},
		Literal{Rel: NewRelation("lit", "x")},
	}
	for _, p := range more {
		if p.String() == "" {
			t.Errorf("%T renders empty", p)
		}
	}
}

func TestRelationString(t *testing.T) {
	rel := NewRelation("t", "x", "y").Add("1", "2")
	if !strings.Contains(rel.String(), "t(x, y): 1 rows") {
		t.Errorf("String = %q", rel.String())
	}
}

func TestAddPanicsOnWidthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on row width mismatch")
		}
	}()
	NewRelation("t", "x").Add("1", "2")
}

func TestDeriveKeysRecognizesOnlyKeyShapes(t *testing.T) {
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	key := constraint.MustEGD(
		[]logic.Atom{logic.NewAtom("R", x, y), logic.NewAtom("R", x, z)}, y, z)
	// A legal EGD, but not a key: it equates x with y, not the cross-atom
	// pair at the non-shared position.
	notKey := constraint.MustEGD(
		[]logic.Atom{logic.NewAtom("S", x, y), logic.NewAtom("S", x, z)}, x, y)
	dc := constraint.MustDC([]logic.Atom{logic.NewAtom("T", x, x)})

	cat := NewCatalog()
	keyed, unrecognized := cat.DeriveKeys(constraint.NewSet(key, notKey, dc))
	if len(keyed) != 1 || keyed[0] != "R" {
		t.Errorf("keyed = %v, want [R]", keyed)
	}
	if unrecognized != 2 {
		t.Errorf("unrecognized = %d, want 2 (the non-key EGD and the DC)", unrecognized)
	}
	if got := cat.Key("R"); len(got) != 1 || got[0] != 0 {
		t.Errorf("Key(R) = %v, want [0]", got)
	}
	if cat.Key("S") != nil {
		t.Errorf("S must not get a key from a non-key EGD")
	}
	rt, err := cat.Table("R")
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Cols) != 2 {
		t.Errorf("derived table R cols = %v, want 2 generated columns", rt.Cols)
	}
}

// TestDeriveKeysRequiresFullCoverage: a single EGD over a wide table is a
// functional dependency, not a key — the key is only declared when the
// predicate's EGDs cross-equate every non-shared position.
func TestDeriveKeysRequiresFullCoverage(t *testing.T) {
	x, y, z, u, w := logic.Var("x"), logic.Var("y"), logic.Var("z"), logic.Var("u"), logic.Var("w")
	// FD only: F(x, y, u), F(x, z, w) → y = z leaves position 2 free.
	fd := constraint.MustEGD(
		[]logic.Atom{logic.NewAtom("F", x, y, u), logic.NewAtom("F", x, z, w)}, y, z)
	cat := NewCatalog()
	keyed, unrecognized := cat.DeriveKeys(constraint.NewSet(fd))
	if len(keyed) != 0 || unrecognized != 1 {
		t.Errorf("keyed = %v, unrecognized = %d; an FD alone must not derive a key", keyed, unrecognized)
	}

	// Adding the second component EGD covers every non-key position → key.
	fd2 := constraint.MustEGD(
		[]logic.Atom{logic.NewAtom("F", x, y, u), logic.NewAtom("F", x, z, w)}, u, w)
	cat = NewCatalog()
	keyed, unrecognized = cat.DeriveKeys(constraint.NewSet(fd, fd2))
	if len(keyed) != 1 || keyed[0] != "F" || unrecognized != 0 {
		t.Errorf("keyed = %v, unrecognized = %d; the full EGD set must derive the key", keyed, unrecognized)
	}
	if got := cat.Key("F"); len(got) != 1 || got[0] != 0 {
		t.Errorf("Key(F) = %v, want [0]", got)
	}
}
