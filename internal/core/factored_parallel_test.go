package core_test

import (
	"fmt"
	"math/big"

	"reflect"
	"repro/internal/constraint"
	"testing"

	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/generators"
	"repro/internal/logic"
	"repro/internal/markov"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/repair"
	"repro/internal/workload"
)

// chainDC is the conflict-chain denial constraint ¬∃x,y,z (E(x,y) ∧ E(y,z)).
func chainDC() *constraint.Set {
	x, y, z := v("x"), v("y"), v("z")
	return constraint.NewSet(constraint.MustDC([]logic.Atom{at("E", x, y), at("E", y, z)}))
}

// islandsInstance builds a small conflict archipelago for determinism and
// cache tests.
func islandsInstance(t *testing.T, islands, factsPerIsland int, isoRatio float64, seed int64) *repair.Instance {
	t.Helper()
	d, sigma := workload.Islands(workload.IslandsConfig{
		Islands:        islands,
		FactsPerIsland: factsPerIsland,
		IsoRatio:       isoRatio,
		Seed:           seed,
	})
	return repair.MustInstance(d, sigma)
}

// repairProj is a normalized, order-insensitive projection of one repair:
// relation.Database internals depend on insertion order, so raw DeepEqual on
// *Factored would be vacuously brittle rather than meaningfully strict.
type repairProj struct {
	Facts string
	P     string
	Seqs  string
}

type componentProj struct {
	Facts   []string
	Repairs []repairProj
	Success string
}

type factoredProj struct {
	Untouched  []string
	Components []componentProj
	Hits       int
	Misses     int
	CPs        []string
}

// project flattens a *Factored into comparable value types, including a few
// exact query answers so the projection covers the full read path.
func project(t *testing.T, fac *core.Factored, inst *repair.Instance) factoredProj {
	t.Helper()
	p := factoredProj{Hits: fac.CacheHits, Misses: fac.CacheMisses}
	for _, uf := range fac.Untouched.Facts() {
		p.Untouched = append(p.Untouched, uf.String())
	}
	for _, c := range fac.Components {
		sem := c.Semantics()
		cp := componentProj{Success: sem.SuccessP.RatString()}
		for _, cf := range c.Facts {
			cp.Facts = append(cp.Facts, cf.String())
		}
		for _, r := range sem.Repairs {
			cp.Repairs = append(cp.Repairs, repairProj{
				Facts: r.DB.Key(),
				P:     r.P.RatString(),
				Seqs:  r.SeqCount.String(),
			})
		}
		p.Components = append(p.Components, cp)
	}
	x, y := v("x"), v("y")
	q := fo.MustQuery("Q", []logic.Term{x, y}, fo.Atom{A: at("E", x, y)})
	for _, fact := range inst.Initial().Facts()[:4] {
		args := fact.ArgNames()
		cp, err := fac.CP(q, args[:2])
		if err != nil {
			t.Fatalf("CP(%s): %v", fact, err)
		}
		p.CPs = append(p.CPs, cp.RatString())
	}
	return p
}

// TestFactoredBitIdenticalAcrossWorkers: the worker pool must not leak
// scheduling into results — Workers = 1..8, with and without the structural
// cache, all produce the same projection, bit for bit.
func TestFactoredBitIdenticalAcrossWorkers(t *testing.T) {
	inst := islandsInstance(t, 12, 4, 0.5, 7)
	var want factoredProj
	for workers := 1; workers <= 8; workers++ {
		for _, nocache := range []bool{false, true} {
			fac, err := core.ComputeFactoredOpts(inst, generators.Uniform{},
				markov.ExploreOptions{Workers: workers}, core.FactoredOptions{NoCache: nocache})
			if err != nil {
				t.Fatalf("workers=%d nocache=%v: %v", workers, nocache, err)
			}
			got := project(t, fac, inst)
			// Counters legitimately differ with the cache off; compare them
			// only among cached runs.
			if nocache {
				if got.Hits != 0 || got.Misses != 0 {
					t.Fatalf("nocache run reported cache traffic: %d/%d", got.Hits, got.Misses)
				}
				got.Hits, got.Misses = want.Hits, want.Misses
			}
			if workers == 1 && !nocache {
				want = got
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d nocache=%v: projection differs from workers=1", workers, nocache)
			}
		}
	}
	if want.Hits == 0 {
		t.Error("expected structural cache hits on a 50%-isomorphic archipelago")
	}
}

// TestFactoredParallelMatchesMonolithic: on an instance small enough to
// explore monolithically, the parallel factored engine reproduces the exact
// walk-induced OCA for both a structural (uniform) and a non-structural
// (trust) generator.
func TestFactoredParallelMatchesMonolithic(t *testing.T) {
	for _, seed := range []int64{3, 41} {
		d, sigma := workload.Islands(workload.IslandsConfig{
			Islands: 3, FactsPerIsland: 3,
			IsoRatio: float64(seed%2) / 2.0, // alternate shuffled and canonical mixes
			Seed:     seed,
		})
		// A conflict-free fact makes the certain-answer comparison
		// non-vacuous: it survives every repair, so CP = 1 on both engines.
		d.Insert(f("E", "zz_clean", "zz_end"))
		inst := repair.MustInstance(d, sigma)
		trust := workload.RandomTrust(d, 7, seed+8)
		gens := []struct {
			name string
			g    core.LocalGenerator
		}{
			{"uniform", generators.Uniform{}},
			{"trust", trust},
		}
		x, y := v("x"), v("y")
		q := fo.MustQuery("Q", []logic.Term{x, y}, fo.Atom{A: at("E", x, y)})
		for _, tc := range gens {
			t.Run(fmt.Sprintf("%s/seed=%d", tc.name, seed), func(t *testing.T) {
				mono, err := core.Compute(inst, tc.g, markov.ExploreOptions{MaxStates: 5_000_000})
				if err != nil {
					t.Fatalf("monolithic: %v", err)
				}
				fac, err := core.ComputeFactored(inst, tc.g, markov.ExploreOptions{Workers: 4})
				if err != nil {
					t.Fatalf("factored: %v", err)
				}
				for _, fact := range inst.Initial().Facts() {
					got := fac.FactProbability(fact)
					want := mono.CP(q, fact.ArgNames()[:2])
					if got.Cmp(want) != 0 {
						t.Errorf("%s: factored %s vs monolithic %s", fact, got.RatString(), want.RatString())
					}
				}
				as, err := fac.OCA(q)
				if err != nil {
					t.Fatalf("factored OCA: %v", err)
				}
				monoAS := mono.OCA(q)
				if len(as.Answers) != len(monoAS.Answers) {
					t.Fatalf("OCA sizes: factored %d vs monolithic %d", len(as.Answers), len(monoAS.Answers))
				}
				monoP := map[string]string{}
				for _, a := range monoAS.Answers {
					monoP[a.Tuple[0]+"|"+a.Tuple[1]] = a.P.RatString()
				}
				facCertain := map[string]bool{}
				for _, a := range as.Answers {
					if monoP[a.Tuple[0]+"|"+a.Tuple[1]] != a.P.RatString() {
						t.Errorf("OCA(%v): factored %s vs monolithic %s",
							a.Tuple, a.P.RatString(), monoP[a.Tuple[0]+"|"+a.Tuple[1]])
					}
					if a.P.Cmp(prob.One()) == 0 {
						facCertain[a.Tuple[0]+"|"+a.Tuple[1]] = true
					}
				}
				// Certain answers (CP = 1) agree with the monolithic engine's.
				monoCertain := mono.Certain(q)
				if len(monoCertain) != len(facCertain) {
					t.Fatalf("certain answers: factored %d vs monolithic %d", len(facCertain), len(monoCertain))
				}
				for _, tup := range monoCertain {
					if !facCertain[tup[0]+"|"+tup[1]] {
						t.Errorf("monolithic certain answer %v missing from factored CP=1 set", tup)
					}
				}
			})
		}
	}
}

// TestFactoredStructuralCacheRenames: two isomorphic islands over disjoint
// constants explore once and rename once; the renamed semantics is equal to
// the explored one up to the constant bijection.
func TestFactoredStructuralCacheRenames(t *testing.T) {
	d := relation.FromFacts(
		f("E", "a0", "a1"), f("E", "a1", "a2"), f("E", "a2", "a3"),
		f("E", "b0", "b1"), f("E", "b1", "b2"), f("E", "b2", "b3"),
	)
	inst := repair.MustInstance(d, chainDC())
	fac, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fac.Components) != 2 {
		t.Fatalf("components = %d, want 2", len(fac.Components))
	}
	if fac.CacheMisses != 1 || fac.CacheHits != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1", fac.CacheHits, fac.CacheMisses)
	}
	ca, cb := fac.Components[0], fac.Components[1]
	sa, sb := ca.Semantics(), cb.Semantics()
	if sa.SuccessP.Cmp(sb.SuccessP) != 0 || len(sa.Repairs) != len(sb.Repairs) {
		t.Fatalf("isomorphic components disagree: %d/%s vs %d/%s",
			len(sa.Repairs), sa.SuccessP.RatString(), len(sb.Repairs), sb.SuccessP.RatString())
	}
	for i := range sa.Repairs {
		ra, rb := sa.Repairs[i], sb.Repairs[i]
		if ra.P.Cmp(rb.P) != 0 {
			t.Errorf("repair %d: P %s vs %s", i, ra.P.RatString(), rb.P.RatString())
		}
		if ra.DB.Size() != rb.DB.Size() {
			t.Errorf("repair %d: sizes differ", i)
		}
		// The b-side repair must contain only b-side constants: renaming, not
		// sharing, of the cached semantics.
		for _, bf := range rb.DB.Facts() {
			for _, arg := range bf.ArgNames() {
				if arg[0] != 'b' {
					t.Fatalf("repair fact %s of the renamed component mentions foreign constant %s", bf, arg)
				}
			}
		}
	}
	// Corresponding marginals are equal under the bijection a_i ↦ b_i.
	pa := fac.FactProbability(f("E", "a1", "a2"))
	pb := fac.FactProbability(f("E", "b1", "b2"))
	if pa.Cmp(pb) != 0 {
		t.Errorf("marginals: a-side %s vs b-side %s", pa.RatString(), pb.RatString())
	}
}

// TestFactoredTrustBypassesCache: trust weights depend on fact identity, so
// structurally identical components must not share cached semantics — the
// engine reports zero cache traffic and stays exact.
func TestFactoredTrustBypassesCache(t *testing.T) {
	d := relation.FromFacts(
		f("E", "a0", "a1"), f("E", "a1", "a2"),
		f("E", "b0", "b1"), f("E", "b1", "b2"),
	)
	inst := repair.MustInstance(d, chainDC())
	trust := generators.NewTrust(big.NewRat(1, 2))
	if err := trust.Set(f("E", "a0", "a1"), big.NewRat(99, 100)); err != nil {
		t.Fatal(err)
	}
	fac, err := core.ComputeFactored(inst, trust, markov.ExploreOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if fac.CacheHits != 0 || fac.CacheMisses != 0 {
		t.Fatalf("trust run reported cache traffic %d/%d; the structural cache must be bypassed",
			fac.CacheHits, fac.CacheMisses)
	}
	// The high-trust a-fact must be strictly more likely to survive than its
	// structural twin on the b island.
	pa := fac.FactProbability(f("E", "a0", "a1"))
	pb := fac.FactProbability(f("E", "b0", "b1"))
	if pa.Cmp(pb) <= 0 {
		t.Errorf("trusted fact marginal %s not above untrusted twin %s", pa.RatString(), pb.RatString())
	}
	mono, err := core.Compute(inst, trust, markov.ExploreOptions{MaxStates: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	x, y := v("x"), v("y")
	q := fo.MustQuery("Q", []logic.Term{x, y}, fo.Atom{A: at("E", x, y)})
	for _, fact := range inst.Initial().Facts() {
		if got, want := fac.FactProbability(fact), mono.CP(q, fact.ArgNames()[:2]); got.Cmp(want) != 0 {
			t.Errorf("%s: factored %s vs monolithic %s", fact, got.RatString(), want.RatString())
		}
	}
}

// TestFactoredTotalSequences: with TrackLengths the factored engine recovers
// the monolithic chain's exact complete-sequence count via the binomial
// interleaving convolution — for uniform and trust weights alike (the count
// is weight-independent).
func TestFactoredTotalSequences(t *testing.T) {
	d, sigma := workload.Islands(workload.IslandsConfig{Islands: 3, FactsPerIsland: 3, IsoRatio: 1, Seed: 5})
	inst := repair.MustInstance(d, sigma)
	mono, err := core.Compute(inst, generators.Uniform{}, markov.ExploreOptions{MaxStates: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		g    core.LocalGenerator
	}{
		{"uniform", generators.Uniform{}},
		{"trust", workload.RandomTrust(d, 5, 9)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fac, err := core.ComputeFactored(inst, tc.g, markov.ExploreOptions{TrackLengths: true, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			total, err := fac.TotalSequences()
			if err != nil {
				t.Fatal(err)
			}
			if total.Cmp(mono.TotalSequences) != 0 {
				t.Errorf("factored TotalSequences = %s, monolithic = %s", total, mono.TotalSequences)
			}
		})
	}
	// Without TrackLengths the per-length histograms are absent and the
	// convolution must refuse rather than guess.
	fac, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fac.TotalSequences(); err == nil {
		t.Error("TotalSequences without TrackLengths must error")
	}
}

// TestWorkloadIslands: the generator delivers exactly the advertised
// component structure.
func TestWorkloadIslands(t *testing.T) {
	cfg := workload.IslandsConfig{Islands: 20, FactsPerIsland: 5, IsoRatio: 0.5, Seed: 2}
	d, sigma := workload.Islands(cfg)
	if got, want := d.Size(), cfg.Islands*cfg.FactsPerIsland; got != want {
		t.Fatalf("size = %d, want %d", got, want)
	}
	inst := repair.MustInstance(d, sigma)
	fac, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fac.Components) != cfg.Islands {
		t.Errorf("components = %d, want %d", len(fac.Components), cfg.Islands)
	}
	if fac.Untouched.Size() != 0 {
		t.Errorf("untouched = %d, want 0 (every fact is in some violation)", fac.Untouched.Size())
	}
	for _, c := range fac.Components {
		if len(c.Facts) != cfg.FactsPerIsland {
			t.Errorf("component size = %d, want %d", len(c.Facts), cfg.FactsPerIsland)
		}
	}
	// 50% canonical islands share one cache key; shuffled islands may
	// accidentally collide but can never fall below one exploration each.
	if fac.CacheMisses > 11 || fac.CacheHits < 9 {
		t.Errorf("cache hits/misses = %d/%d; want ≥9 hits from the canonical half",
			fac.CacheHits, fac.CacheMisses)
	}
	prob.Float(fac.FactProbability(d.Facts()[0])) // smoke: marginal works
}
