package abc

import (
	"sort"

	"repro/internal/constraint"
	"repro/internal/relation"
)

// ConflictGraph is the conflict hypergraph of an inconsistent database:
// one hyperedge per violation, containing the facts of the violation body.
// It supports the repair-localization optimization sketched in Section 6 of
// the paper (Eiter et al.): repairing can be restricted to the connected
// components of the conflict graph, since facts outside every violation are
// never touched by deletion-only repairing sequences.
type ConflictGraph struct {
	edges [][]relation.Fact
}

// BuildConflictGraph computes the hypergraph from V(D,Σ).
func BuildConflictGraph(d *relation.Database, sigma *constraint.Set) *ConflictGraph {
	vs := constraint.FindViolations(d, sigma)
	seen := map[string]bool{}
	g := &ConflictGraph{}
	for _, v := range vs.All() {
		body := v.BodyFacts()
		key := ""
		for _, f := range body {
			key += f.Key() + "|"
		}
		if !seen[key] {
			seen[key] = true
			g.edges = append(g.edges, body)
		}
	}
	return g
}

// Edges returns the hyperedges (violation bodies), deduplicated.
func (g *ConflictGraph) Edges() [][]relation.Fact { return g.edges }

// Facts returns the sorted set of facts involved in at least one conflict.
func (g *ConflictGraph) Facts() []relation.Fact {
	seen := map[string]bool{}
	var out []relation.Fact
	for _, e := range g.edges {
		for _, f := range e {
			if k := f.Key(); !seen[k] {
				seen[k] = true
				out = append(out, f)
			}
		}
	}
	relation.SortFacts(out)
	return out
}

// Components returns the connected components of the hypergraph as fact
// sets, sorted for determinism. Two facts are connected when some chain of
// overlapping hyperedges links them.
func (g *ConflictGraph) Components() [][]relation.Fact {
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	factByKey := map[string]relation.Fact{}
	for _, e := range g.edges {
		for _, f := range e {
			k := f.Key()
			factByKey[k] = f
			if _, ok := parent[k]; !ok {
				parent[k] = k
			}
		}
		for i := 1; i < len(e); i++ {
			union(e[0].Key(), e[i].Key())
		}
	}
	groups := map[string][]relation.Fact{}
	for k, f := range factByKey {
		root := find(k)
		groups[root] = append(groups[root], f)
	}
	var roots []string
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	out := make([][]relation.Fact, 0, len(groups))
	for _, r := range roots {
		fs := groups[r]
		relation.SortFacts(fs)
		out = append(out, fs)
	}
	return out
}
