// Package fo implements first-order queries Q(x̄) = {x̄ | ϕ} over
// relational databases, with active-domain semantics as in the paper: the
// output of Q on D is {c̄ ∈ dom(D)^{|x̄|} | D ⊨ ϕ(c̄)}, and quantifiers
// range over dom(D).
//
// # Key types
//
//   - Query: a named query with output variables and a Formula body.
//     Holds(db, tuple) decides membership; Answers(db) enumerates the
//     output sorted lexicographically; ForEachAnswerSyms streams unsorted
//     symbol tuples for tally-style consumers (the samplers) without
//     string round trips.
//   - Formula: the usual connectives (Atom, And, Or, Not, Implies, Iff,
//     Eq/Neq, Exists, ForAll, Truth) over internal/logic terms.
//   - TupleKey: a packed-symbol map key for answer tuples —
//     process-local, no stable order; user-visible output must sort by
//     the tuples themselves.
//
// # Invariants
//
//   - Conjunctive queries (existentially quantified conjunctions of atoms
//     with free output variables) take a fast path through the indexed
//     homomorphism search of internal/relation; arbitrary formulas are
//     evaluated recursively over the active domain. Both paths agree
//     (property-tested), so consumers never need to know which ran.
//   - Evaluation never mutates the database and is safe to run
//     concurrently against a sealed snapshot — the parallel samplers
//     evaluate one query against many repairs at once.
//
// # Neighbors
//
// Below: internal/logic, internal/relation, internal/intern. Above:
// internal/core (CP/OCA over repairs), internal/sampling and
// internal/practical (per-walk / per-round evaluation), internal/plan
// (AsQuery compiles conjunctive plans into this package).
package fo
