// Command ocqad is the resident OCQA server: it loads a database and its
// constraints once, builds the factored walk-induced semantics, and then
// serves exact query answers over HTTP while absorbing fact insertions and
// retractions with work proportional to each delta. Readers never block:
// every query answers from an immutable snapshot published through an
// atomic pointer, and every response carries the snapshot version.
//
// Usage:
//
//	ocqad -db data.facts -constraints schema.rules \
//	      [-gen uniform|uniform-deletions|preference|trust[:seed]] \
//	      [-addr :8080] [-workers 4] [-shards 4] [-max-states 1000000] \
//	      [-eps 0.05] [-delta 0.05] [-seed 1] [-compact 4096] \
//	      [-log ocqad.oplog]
//
// File arguments also accept "inline:<text>". The generator must be local
// (per-component weights) and the constraints TGD-free — the factored
// engine's requirements. See cmd/ocqad/README.md for the HTTP API.
//
// -shards sizes the resident writer shard pool that explores conflict
// islands in parallel; served answers are bit-identical for every value.
// -log names an append-only ingest log: every published batch is recorded
// and replayed on the next startup against the same -db corpus, so a
// restart resumes from the exact pre-shutdown snapshot — same version,
// same stats — instead of the stale base database.
//
// The -smoke N flag runs a self-test instead of serving: it generates an
// islands workload, starts the server on a loopback port, drives N mixed
// ingest/query operations over real HTTP, cross-checks served
// probabilities against a from-scratch recompute and — when -log is set —
// restarts the server from the log and verifies the replayed snapshot
// matches exactly, then exits 0 on success. CI runs it under the race
// detector, with shards > 1 and a kill-and-replay cycle.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/serve"
)

func main() {
	var (
		dbPath    = flag.String("db", "", "database file (facts terminated by '.'), or inline:<text>")
		sigmaPath = flag.String("constraints", "", "constraint file (EGDs/DCs; TGD-free), or inline:<text>")
		genName   = flag.String("gen", "uniform", "chain generator: "+cliutil.GeneratorNames())
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "component workers per recompute (0 = GOMAXPROCS)")
		shards    = flag.Int("shards", 0, "writer shards exploring conflict islands (0 = min(GOMAXPROCS, 8))")
		maxStates = flag.Int("max-states", 1_000_000, "per-component state budget (0 = unlimited)")
		eps       = flag.Float64("eps", 0.05, "additive error ε of the degradation estimator")
		delta     = flag.Float64("delta", 0.05, "failure probability δ of the degradation estimator")
		seed      = flag.Int64("seed", 1, "degradation estimator seed")
		compact   = flag.Int("compact", 4096, "copy-on-write delta size that triggers a snapshot fold")
		logPath   = flag.String("log", "", "append-only ingest log, replayed on startup (empty = no persistence)")
		smoke     = flag.Int("smoke", 0, "run a self-test with N mixed operations instead of serving")
	)
	flag.Parse()
	opts := serve.Options{
		Workers:      *workers,
		Shards:       *shards,
		MaxStates:    *maxStates,
		Eps:          *eps,
		Delta:        *delta,
		Seed:         *seed,
		CompactLimit: *compact,
		LogPath:      *logPath,
	}
	if *smoke > 0 {
		if err := runSmoke(*smoke, opts); err != nil {
			fmt.Fprintln(os.Stderr, "ocqad: smoke:", err)
			os.Exit(1)
		}
		fmt.Println("ocqad: smoke ok")
		return
	}
	if *dbPath == "" || *sigmaPath == "" {
		fmt.Fprintln(os.Stderr, "ocqad: -db and -constraints are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*dbPath, *sigmaPath, *genName, *addr, opts); err != nil {
		fmt.Fprintln(os.Stderr, "ocqad:", err)
		os.Exit(1)
	}
}

func run(dbPath, sigmaPath, genName, addr string, opts serve.Options) error {
	d, err := cliutil.LoadDatabase(dbPath)
	if err != nil {
		return err
	}
	sigma, err := cliutil.LoadConstraints(sigmaPath)
	if err != nil {
		return err
	}
	gen, err := cliutil.ResolveGenerator(genName, d)
	if err != nil {
		return err
	}
	local, ok := gen.(core.LocalGenerator)
	if !ok {
		return fmt.Errorf("generator %s is not local; the resident engine needs per-component weights (uniform, uniform-deletions, trust)", gen.Name())
	}
	s, err := serve.New(d, sigma, local, opts)
	if err != nil {
		return err
	}
	defer s.Close()
	st := s.Stats()
	fmt.Printf("ocqad: %d facts, %d violations, %d conflict components (%d untouched facts); generator %s\n",
		st.Facts, st.Violations, st.Components, st.Untouched, gen.Name())

	srv := &http.Server{
		Addr:    addr,
		Handler: serve.Handler(s),
		// A slow or hostile client must not pin the listener: bound the
		// header, the whole request, and idle keep-alives.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			errc <- err
			return
		}
		fmt.Printf("ocqad: listening on %s\n", ln.Addr())
		errc <- srv.Serve(ln)
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("ocqad: shutting down")
	shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shctx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
