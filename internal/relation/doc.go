// Package relation implements the relational storage substrate: ground
// facts, database instances, active domains, the base B(D,Σ) over which
// repairing operations are defined, and the index-driven homomorphism
// search every layer above joins through.
//
// # Key types
//
//   - Fact: an interned ground atom — a dense 32-bit id into a
//     process-wide fact table keyed by (predicate symbol, argument
//     symbols). Fact identity is one integer comparison; the canonical
//     string Key() is cached and built at most once per distinct fact.
//   - Database: a copy-on-write instance. A database is an immutable
//     *sealed snapshot* plus a small sorted-slice delta of insertions and
//     deletions; Clone is O(|delta|), Seal folds the delta into a fresh
//     snapshot, and bulk loading auto-seals geometrically. The active
//     domain is maintained incrementally and its sorted form is cached.
//   - Index (index.go): per-predicate, per-argument-position secondary
//     indexes ((pred, pos, sym) → packed fact refs, CSR-style buckets)
//     built by Seal and stored only in the snapshot — clones share them
//     for free, and Insert/Delete never maintain them.
//   - ForEachHom / CountHoms (homomorphism.go): backtracking join search
//     over atom lists. planOrder scores atoms with real bucket
//     cardinalities; matchFrom probes the smallest bucket among pinned
//     argument positions.
//   - Base: B(D,Σ), the fact space operations may draw from.
//
// # Invariants (the index-layer contract)
//
//  1. On a sealed database an index probe sees exactly the fact set.
//  2. With a pending delta, reads are snapshot-bucket ∪ added-delta minus
//     removed; ForEachHom folds any delta past the auto-seal floor into a
//     fresh snapshot before searching, so deltas stay small.
//  3. Indexed enumeration preserves the relative order of a filtered
//     FactsByPred scan, keeping all downstream output deterministic.
//  4. Database.Key() is a canonical byte encoding of the fact set —
//     equal databases, equal keys — used by the DAG engine as its merge
//     key. It is rebuilt per call; callers that compare repeatedly must
//     cache it.
//
// # Neighbors
//
// Below: internal/intern, internal/logic. Above: internal/constraint
// (violation detection via the homomorphism search), internal/ops
// (operations mutate databases), internal/repair (states own clones),
// internal/plan (catalogs are schema views over a Database).
package relation
