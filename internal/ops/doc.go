// Package ops implements the (D,Σ)-operations of the paper: updates +F
// that insert a set of facts from the base B(D,Σ) and updates −F that
// remove a set of facts (Definition 1), the fixing test, the
// justified-operation test of Definition 3, and the enumeration of all
// justified operations at a database state following the shape result of
// Proposition 1.
//
// # Key types
//
//   - Op: an interned operation value (sign + fact set). Interned ops
//     compare by pointer, carry a precomputed identity, and build their
//     canonical Key() at most once — the repair layer dedups candidate
//     lists by pointer equality.
//   - JustifiedDeletions / JustifiedAdditions: enumeration of the
//     justified operations fixing one violation (deletions are the
//     non-empty subsets of a violation body; additions ground TGD heads
//     over the base).
//   - NullAddition (nulls.go): the Section 6 extension — one canonical
//     insertion per TGD violation with fresh labeled nulls in the
//     existential positions, replacing the |dom|^|z̄| grounded candidates.
//
// # Invariants
//
//   - Ops are immutable and canonically ordered by SortOps; every consumer
//     (extension enumeration, chain edges, rendering) relies on that order
//     for determinism.
//   - Do/Undo are exact inverses over a Database's delta; the repair
//     layer's admissibility probe applies an op, inspects violations, and
//     undoes it without cloning.
//
// # Neighbors
//
// Below: internal/relation (facts, databases, Base), internal/constraint
// (violations justify operations). Above: internal/repair (sequences of
// ops), internal/markov (chain edges are ops).
package ops
