package generators

import (
	"fmt"
	"math/big"

	"repro/internal/markov"
	"repro/internal/ops"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/repair"
)

// Preference is the support-based generator of Example 4, defined for a
// schema with a binary preference relation (by default Pref) under the
// denial constraint Pref(x,y), Pref(y,x) → ⊥ stating that preference is
// not symmetric.
//
// The weight w(α, D) of an atom α = Pref(a,b) is the number of facts
// Pref(a, ·) in D (how often a is preferred); the importance I_Σ(α, D) is
// the weight of α relative to all atoms involved in a violation; and the
// probability of removing α is the importance of its symmetric atom
// ᾱ = Pref(b,a). Intuitively, the more support a product has, the more
// likely the facts preferring something over it are to be removed.
//
// The generator assigns probability zero to every non-singleton deletion
// (and to insertions, which never arise for a DC); the singleton deletion
// probabilities sum to 1 because the involved-atom set is closed under the
// symmetry α ↔ ᾱ.
type Preference struct {
	// Pred is the preference predicate; empty means "Pref".
	Pred string
}

// Name implements markov.Generator.
func (p Preference) Name() string { return "preference" }

func (p Preference) pred() string {
	if p.Pred == "" {
		return "Pref"
	}
	return p.Pred
}

// weight returns w(α, D): the number of facts Pref(a, ·) where a is the
// first argument of α.
func (p Preference) weight(db *relation.Database, first string) int64 {
	var n int64
	for _, f := range db.FactsByPred(p.pred()) {
		if len(f.Args) == 2 && f.Args[0] == first {
			n++
		}
	}
	return n
}

// Transitions implements markov.Generator.
func (p Preference) Transitions(s *repair.State, exts []ops.Op) ([]*big.Rat, error) {
	db := s.Result()
	involved := s.Violations().InvolvedFacts()

	// Σ_{β ∈ V_Σ(D)} w(β, D), the normalizing constant of the importance.
	totalWeight := new(big.Rat)
	for _, f := range involved {
		if f.Pred != p.pred() || len(f.Args) != 2 {
			return nil, fmt.Errorf("generators: preference generator saw violation atom %s outside %s/2", f, p.pred())
		}
		totalWeight.Add(totalWeight, new(big.Rat).SetInt64(p.weight(db, f.Args[0])))
	}
	if totalWeight.Sign() == 0 {
		return nil, fmt.Errorf("generators: preference generator has zero total weight at state %q", s)
	}

	out := make([]*big.Rat, len(exts))
	for i, op := range exts {
		if !op.IsDelete() || op.Size() != 1 {
			out[i] = prob.Zero()
			continue
		}
		alpha := op.Facts()[0]
		// The probability of removing α = Pref(a,b) is the importance of
		// the symmetric atom ᾱ = Pref(b,a).
		sym := relation.NewFact(p.pred(), alpha.Args[1], alpha.Args[0])
		w := new(big.Rat).SetInt64(p.weight(db, sym.Args[0]))
		out[i] = w.Quo(w, totalWeight)
	}
	return out, nil
}

var _ markov.Generator = Preference{}
